package memsim

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if HBM.String() != "HBM" || DDR.String() != "DDR" || OnChip.String() != "OnChip" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestAccessNS(t *testing.T) {
	tm := Timing{PipeNS: 100, RowNS: 50, PerByteNS: 2}
	if got := tm.AccessNS(10); got != 170 {
		t.Errorf("AccessNS(10) = %v, want 170", got)
	}
	if got := tm.AccessNS(-5); got != 150 {
		t.Errorf("AccessNS(-5) = %v, want 150 (clamped)", got)
	}
}

// TestHBMTimingMatchesTable5 validates the calibration against every
// measured single-round and double-round cell of the paper's Table 5.
func TestHBMTimingMatchesTable5(t *testing.T) {
	cases := []struct {
		name   string
		rounds int
		dim    int
		wantNS float64
	}{
		{"8tab-dim4", 1, 4, 334.5},
		{"8tab-dim8", 1, 8, 353.7},
		{"8tab-dim16", 1, 16, 411.6},
		{"8tab-dim32", 1, 32, 486.3},
		{"8tab-dim64", 1, 64, 648.4},
		{"12tab-dim4", 2, 4, 648.5},
		{"12tab-dim8", 2, 8, 707.4},
		{"12tab-dim16", 2, 16, 817.4},
		{"12tab-dim32", 2, 32, 972.7},
		{"12tab-dim64", 2, 64, 1296.9},
	}
	for _, c := range cases {
		got := RoundsLatencyNS(HBMTiming, c.rounds, c.dim*4)
		if !ApproxEqual(got, c.wantNS, 0.06) {
			t.Errorf("%s: modeled %.1f ns, paper %.1f ns (>6%% off)", c.name, got, c.wantNS)
		}
	}
}

func TestOnChipIsRoughlyOneThirdOfDRAM(t *testing.T) {
	// §3.2.2: on-chip retrieval takes up to around 1/3 of DDR4/HBM time.
	for _, bytes := range []int{16, 64, 128} {
		on := OnChipTiming.AccessNS(bytes)
		off := HBMTiming.AccessNS(bytes)
		ratio := on / off
		if ratio < 0.2 || ratio > 0.45 {
			t.Errorf("on/off-chip latency ratio at %dB = %.2f, want ~1/3", bytes, ratio)
		}
	}
}

func TestU280Shape(t *testing.T) {
	s := U280(8)
	if len(s.Banks) != 42 {
		t.Fatalf("U280(8) has %d banks, want 42", len(s.Banks))
	}
	if len(s.OffChipBanks()) != 34 {
		t.Errorf("off-chip banks = %d, want 34 (32 HBM + 2 DDR, §3.3)", len(s.OffChipBanks()))
	}
	if len(s.OnChipBanks()) != 8 {
		t.Errorf("on-chip banks = %d, want 8", len(s.OnChipBanks()))
	}
	var hbmBytes int64
	for _, b := range s.Banks {
		if b.Kind == HBM {
			hbmBytes += b.Capacity
		}
	}
	if hbmBytes != 8<<30 {
		t.Errorf("total HBM = %d, want 8 GB", hbmBytes)
	}
}

func TestCPUServerShape(t *testing.T) {
	s := CPUServer()
	if len(s.Banks) != 8 {
		t.Errorf("CPU server channels = %d, want 8 (§5.1)", len(s.Banks))
	}
	for _, b := range s.Banks {
		if b.Kind != DDR {
			t.Errorf("CPU server bank kind = %v, want DDR", b.Kind)
		}
	}
}

func TestEvaluate(t *testing.T) {
	s := System{Banks: []Bank{
		{Kind: HBM, Capacity: 1000, Timing: Timing{PipeNS: 10, RowNS: 10, PerByteNS: 1}},
		{Kind: HBM, Capacity: 1000, Timing: Timing{PipeNS: 10, RowNS: 10, PerByteNS: 1}},
	}}
	loads := []BankLoad{
		{Accesses: []Access{{Bytes: 10, Count: 2}}, Bytes: 500}, // 2*(20+10)=60
		{Accesses: []Access{{Bytes: 30, Count: 1}}, Bytes: 100}, // 50
	}
	rep, err := s.Evaluate(loads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyNS != 60 {
		t.Errorf("LatencyNS = %v, want 60", rep.LatencyNS)
	}
	if rep.Bottleneck != 0 {
		t.Errorf("Bottleneck = %d, want 0", rep.Bottleneck)
	}
	if rep.MaxRounds != 2 || rep.MaxOffChipRounds != 2 {
		t.Errorf("rounds = %d/%d, want 2/2", rep.MaxRounds, rep.MaxOffChipRounds)
	}
	if rep.PerBankNS[1] != 50 {
		t.Errorf("PerBankNS[1] = %v, want 50", rep.PerBankNS[1])
	}
}

func TestEvaluateErrors(t *testing.T) {
	s := U280(2)
	if _, err := s.Evaluate(nil); err == nil {
		t.Error("wrong load count: want error")
	}
	loads := make([]BankLoad, len(s.Banks))
	loads[0].Bytes = HBMBankBytes + 1
	if _, err := s.Evaluate(loads); err == nil {
		t.Error("capacity violation: want error")
	}
	loads[0] = BankLoad{Accesses: []Access{{Bytes: -1, Count: 1}}}
	if _, err := s.Evaluate(loads); err == nil {
		t.Error("negative access: want error")
	}
}

func TestOnChipExcludedFromOffChipRounds(t *testing.T) {
	s := System{Banks: []Bank{
		{Kind: HBM, Capacity: 1 << 20, Timing: HBMTiming},
		{Kind: OnChip, Capacity: 1 << 20, Timing: OnChipTiming},
	}}
	loads := []BankLoad{
		{Accesses: []Access{{Bytes: 16, Count: 1}}},
		{Accesses: []Access{{Bytes: 16, Count: 3}}},
	}
	rep, err := s.Evaluate(loads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRounds != 3 {
		t.Errorf("MaxRounds = %d, want 3", rep.MaxRounds)
	}
	if rep.MaxOffChipRounds != 1 {
		t.Errorf("MaxOffChipRounds = %d, want 1", rep.MaxOffChipRounds)
	}
}

func TestSimulateStream(t *testing.T) {
	s := System{Banks: []Bank{{Kind: HBM, Capacity: 1 << 20, Timing: Timing{PipeNS: 0, RowNS: 100, PerByteNS: 0}}}}
	loads := []BankLoad{{Accesses: []Access{{Bytes: 4, Count: 1}}}}
	st, err := s.SimulateStream(loads, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.IntervalNS != 100 || st.MakespanNS != 1000 {
		t.Errorf("stream = %+v, want interval 100, makespan 1000", st)
	}
	if _, err := s.SimulateStream(loads, 0); err == nil {
		t.Error("items=0: want error")
	}
}

func TestEmptySystemEvaluate(t *testing.T) {
	s := System{}
	rep, err := s.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyNS != 0 || rep.Bottleneck != -1 {
		t.Errorf("empty system report = %+v", rep)
	}
}

// Property: latency is monotone in bytes, rounds, and never below the
// row+pipe floor.
func TestLatencyMonotoneProperty(t *testing.T) {
	prop := func(b1, b2 uint8, c uint8) bool {
		small, big := int(b1), int(b1)+int(b2)
		count := int(c%4) + 1
		lSmall := RoundsLatencyNS(HBMTiming, count, small)
		lBig := RoundsLatencyNS(HBMTiming, count, big)
		lMore := RoundsLatencyNS(HBMTiming, count+1, small)
		floor := float64(count) * (HBMTiming.PipeNS + HBMTiming.RowNS)
		return lBig >= lSmall && lMore > lSmall && lSmall >= floor
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: evaluating a permutation-balanced load never reports a latency
// below any single bank's busy time (max semantics).
func TestEvaluateMaxSemanticsProperty(t *testing.T) {
	s := U280(0)
	prop := func(seed uint8) bool {
		loads := make([]BankLoad, len(s.Banks))
		for i := range loads {
			loads[i] = BankLoad{Accesses: []Access{{Bytes: int(seed%64) + 4, Count: i%3 + 1}}}
		}
		rep, err := s.Evaluate(loads)
		if err != nil {
			return false
		}
		for _, ns := range rep.PerBankNS {
			if ns > rep.LatencyNS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvaluateU280(b *testing.B) {
	s := U280(8)
	loads := make([]BankLoad, len(s.Banks))
	for i := range loads {
		bytes := int64(1 << 20)
		if s.Banks[i].Kind == OnChip {
			bytes = 64 << 10 // stay inside the 256 KB on-chip banks
		}
		loads[i] = BankLoad{Accesses: []Access{{Bytes: 64, Count: 1 + i%2}}, Bytes: bytes}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(loads); err != nil {
			b.Fatal(err)
		}
	}
}
