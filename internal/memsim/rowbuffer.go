package memsim

// Row-buffer locality analysis, quantifying §3.3's core claim: embedding
// vectors are so short that a random DRAM access is dominated by row
// activation, so merging two tables into one longer-vector table saves
// "almost 2x" — the sequential tail of the merged access is cheap compared
// to a second full random access.

// AccessBreakdown decomposes one access's latency into its fixed (pipe+row)
// and streaming (per-byte) parts.
type AccessBreakdown struct {
	FixedNS     float64
	StreamingNS float64
}

// Breakdown returns the cost decomposition of one access.
func (t Timing) Breakdown(bytes int) AccessBreakdown {
	if bytes < 0 {
		bytes = 0
	}
	return AccessBreakdown{
		FixedNS:     t.PipeNS + t.RowNS,
		StreamingNS: float64(bytes) * t.PerByteNS,
	}
}

// TotalNS returns the access latency.
func (b AccessBreakdown) TotalNS() float64 { return b.FixedNS + b.StreamingNS }

// FixedShare returns the fraction of the access spent on row activation and
// controller latency rather than data movement. For typical embedding
// vectors (16–256 B) this exceeds 50%, which is why halving the access count
// nearly halves lookup latency (§3.3).
func (b AccessBreakdown) FixedShare() float64 {
	total := b.TotalNS()
	if total == 0 {
		return 0
	}
	return b.FixedNS / total
}

// MergeGain returns the speedup of retrieving two vectors through one merged
// (Cartesian-product) access instead of two separate random accesses:
//
//	gain = (access(a) + access(b)) / access(a+b)
//
// For short vectors the gain approaches 2 (the paper's "speedup of almost
// 2x"); it decays toward 1 as vectors grow long enough to amortise the row
// activation.
func MergeGain(t Timing, bytesA, bytesB int) float64 {
	separate := t.AccessNS(bytesA) + t.AccessNS(bytesB)
	merged := t.AccessNS(bytesA + bytesB)
	if merged == 0 {
		return 1
	}
	return separate / merged
}

// MergeGainK generalises MergeGain to k-way merges.
func MergeGainK(t Timing, bytes []int) float64 {
	var separate float64
	total := 0
	for _, b := range bytes {
		separate += t.AccessNS(b)
		total += b
	}
	merged := t.AccessNS(total)
	if merged == 0 || len(bytes) == 0 {
		return 1
	}
	return separate / merged
}
