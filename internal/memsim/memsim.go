// Package memsim models the hybrid memory system of the paper's FPGA
// platform (§3.2): 32 HBM pseudo-channels, 2 DDR4 channels and a set of
// on-chip banks, each serving embedding-vector reads independently.
//
// Timing model. One off-chip access costs
//
//	latency = pipe + row + bytes*perByte
//
// where pipe is the AXI/controller round trip, row the DRAM row activation
// (random accesses always miss the row buffer, §2.2), and perByte the 32-bit
// AXI transfer rate the paper's appendix fixes. Accesses queued on the same
// channel serialise: a channel holding two tables takes two access rounds
// (§3.3's workload-balance argument). The constants are calibrated against
// the ten measured cells of Table 5 (see DESIGN.md); on-chip banks skip the
// row/pipe cost and run at roughly one third of the DRAM latency (§3.2.2).
package memsim

import (
	"fmt"
	"math"
)

// Kind enumerates memory resource classes.
type Kind int

const (
	// HBM is a high-bandwidth-memory pseudo-channel (256 MB on a U280).
	HBM Kind = iota
	// DDR is a DDR4 channel (16 GB each on a U280).
	DDR
	// OnChip is a BRAM/URAM bank.
	OnChip
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case HBM:
		return "HBM"
	case DDR:
		return "DDR"
	case OnChip:
		return "OnChip"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Timing holds the per-access cost parameters of a memory kind, in
// nanoseconds.
type Timing struct {
	// PipeNS is the fixed controller/interconnect round-trip latency.
	PipeNS float64
	// RowNS is the row-activation (random access) cost.
	RowNS float64
	// PerByteNS is the per-byte streaming cost over the channel.
	PerByteNS float64
}

// AccessNS returns the latency of one access transferring the given bytes.
func (t Timing) AccessNS(bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return t.PipeNS + t.RowNS + float64(bytes)*t.PerByteNS
}

// Calibrated default timings (DESIGN.md "Calibration constants").
var (
	// HBMTiming fits Table 5 within 4%: e.g. a 16-byte vector costs
	// 150+164+20.8 = 334.8 ns vs the paper's 334.5 ns.
	HBMTiming = Timing{PipeNS: 150, RowNS: 164, PerByteNS: 1.3}
	// DDRTiming matches HBM: "HBM and DDR show close access latency"
	// (§3.2.2).
	DDRTiming = HBMTiming
	// OnChipTiming is roughly one third of a DRAM access (§3.2.2).
	OnChipTiming = Timing{PipeNS: 0, RowNS: 100, PerByteNS: 0.2}
)

// Bank is one independently addressable memory resource.
type Bank struct {
	Kind     Kind
	Capacity int64 // bytes
	Timing   Timing
}

// System is the set of banks available to the lookup unit.
type System struct {
	Banks []Bank
}

// U280 capacities.
const (
	HBMBankBytes    = 256 << 20 // 8 GB over 32 pseudo-channels
	DDRChannelBytes = 16 << 30  // 32 GB over 2 channels
	OnChipBankBytes = 256 << 10 // per-table BRAM/URAM allocation
)

// U280 returns the paper's evaluation platform: 32 HBM pseudo-channels, 2
// DDR4 channels, and onChipBanks single-table on-chip banks (8 in the small
// accelerator build, 16 in the large one).
func U280(onChipBanks int) System {
	banks := make([]Bank, 0, 34+onChipBanks)
	for i := 0; i < 32; i++ {
		banks = append(banks, Bank{Kind: HBM, Capacity: HBMBankBytes, Timing: HBMTiming})
	}
	for i := 0; i < 2; i++ {
		banks = append(banks, Bank{Kind: DDR, Capacity: DDRChannelBytes, Timing: DDRTiming})
	}
	for i := 0; i < onChipBanks; i++ {
		banks = append(banks, Bank{Kind: OnChip, Capacity: OnChipBankBytes, Timing: OnChipTiming})
	}
	return System{Banks: banks}
}

// CPUServer returns the baseline's memory system: an 8-channel DDR server
// (§5.1). Useful for modelling the CPU side with the same machinery.
func CPUServer() System {
	banks := make([]Bank, 8)
	for i := range banks {
		banks[i] = Bank{Kind: DDR, Capacity: DDRChannelBytes, Timing: DDRTiming}
	}
	return System{Banks: banks}
}

// OffChipBanks returns the indices of the system's DRAM (HBM+DDR) banks.
func (s System) OffChipBanks() []int {
	var out []int
	for i, b := range s.Banks {
		if b.Kind != OnChip {
			out = append(out, i)
		}
	}
	return out
}

// OnChipBanks returns the indices of the system's on-chip banks.
func (s System) OnChipBanks() []int {
	var out []int
	for i, b := range s.Banks {
		if b.Kind == OnChip {
			out = append(out, i)
		}
	}
	return out
}

// Access describes a group of identical reads one inference issues to a bank.
type Access struct {
	// Bytes per read (the physical table's vector size).
	Bytes int
	// Count of reads per inference (the physical table's lookup count).
	Count int
}

// BankLoad is the per-inference work and storage assigned to one bank.
type BankLoad struct {
	// Accesses issued against this bank per inference.
	Accesses []Access
	// Bytes stored on the bank.
	Bytes int64
}

// Rounds returns the number of serialised accesses per inference.
func (l BankLoad) Rounds() int {
	n := 0
	for _, a := range l.Accesses {
		n += a.Count
	}
	return n
}

// Report summarises the memory system's per-inference behaviour under a load
// assignment.
type Report struct {
	// LatencyNS is the embedding-lookup latency: the slowest bank's total
	// serialised access time (banks operate in parallel).
	LatencyNS float64
	// PerBankNS holds each bank's busy time per inference.
	PerBankNS []float64
	// MaxRounds is the largest per-bank serialised access count — the
	// "DRAM access rounds" of Table 3.
	MaxRounds int
	// MaxOffChipRounds restricts MaxRounds to DRAM banks.
	MaxOffChipRounds int
	// Bottleneck is the index of the slowest bank (-1 when idle).
	Bottleneck int
}

// Evaluate computes the lookup-latency report for a load assignment. loads
// must have one entry per bank (empty loads allowed). Capacity violations are
// errors: the placement algorithm must never overcommit a bank.
func (s System) Evaluate(loads []BankLoad) (Report, error) {
	if len(loads) != len(s.Banks) {
		return Report{}, fmt.Errorf("memsim: %d loads for %d banks", len(loads), len(s.Banks))
	}
	r := Report{PerBankNS: make([]float64, len(loads)), Bottleneck: -1}
	for i, load := range loads {
		bank := s.Banks[i]
		if load.Bytes > bank.Capacity {
			return Report{}, fmt.Errorf("memsim: bank %d (%v) holds %d bytes, capacity %d",
				i, bank.Kind, load.Bytes, bank.Capacity)
		}
		var busy float64
		rounds := 0
		for _, a := range load.Accesses {
			if a.Count < 0 || a.Bytes < 0 {
				return Report{}, fmt.Errorf("memsim: bank %d has negative access spec %+v", i, a)
			}
			busy += float64(a.Count) * bank.Timing.AccessNS(a.Bytes)
			rounds += a.Count
		}
		r.PerBankNS[i] = busy
		if busy > r.LatencyNS {
			r.LatencyNS = busy
			r.Bottleneck = i
		}
		if rounds > r.MaxRounds {
			r.MaxRounds = rounds
		}
		if bank.Kind != OnChip && rounds > r.MaxOffChipRounds {
			r.MaxOffChipRounds = rounds
		}
	}
	return r, nil
}

// StreamStats describes a simulated stream of inferences through the memory
// system: the lookup stage's initiation interval and makespan.
type StreamStats struct {
	// IntervalNS is the steady-state per-item initiation interval: the
	// slowest bank's busy time per item.
	IntervalNS float64
	// MakespanNS is the total time to serve `items` inferences.
	MakespanNS float64
}

// SimulateStream models `items` back-to-back inferences. Banks process their
// per-item accesses serially and independently; the lookup unit can only
// retire an item once every bank has served it, so the steady-state interval
// is the maximum per-bank busy time and the makespan is latency of the first
// item plus (items-1) intervals.
func (s System) SimulateStream(loads []BankLoad, items int) (StreamStats, error) {
	if items <= 0 {
		return StreamStats{}, fmt.Errorf("memsim: items %d", items)
	}
	rep, err := s.Evaluate(loads)
	if err != nil {
		return StreamStats{}, err
	}
	return StreamStats{
		IntervalNS: rep.LatencyNS,
		MakespanNS: rep.LatencyNS * float64(items),
	}, nil
}

// RoundsLatencyNS is a convenience for the common uniform case: `rounds`
// serialised accesses of `bytes` each on a bank of the given timing — the
// quantity behind Table 5 ("one/two rounds of HBM lookup").
func RoundsLatencyNS(t Timing, rounds, bytes int) float64 {
	return float64(rounds) * t.AccessNS(bytes)
}

// ApproxEqual reports whether two latencies agree within relative tolerance,
// a helper for calibration tests.
func ApproxEqual(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den <= relTol
}
