package memsim

import (
	"testing"
	"testing/quick"
)

func TestBreakdownShares(t *testing.T) {
	// For typical embedding vectors, the fixed (row+pipe) cost dominates —
	// the premise of the Cartesian-product argument (§3.3).
	for _, dim := range []int{4, 8, 16, 32, 64} {
		b := HBMTiming.Breakdown(dim * 4)
		if b.FixedShare() < 0.48 {
			t.Errorf("dim %d: fixed share %.2f — streaming should not dominate", dim, b.FixedShare())
		}
	}
	if got := HBMTiming.Breakdown(-1).StreamingNS; got != 0 {
		t.Errorf("negative bytes streaming = %v", got)
	}
	zero := AccessBreakdown{}
	if zero.FixedShare() != 0 {
		t.Error("zero breakdown share should be 0")
	}
}

func TestMergeGainNearTwoForShortVectors(t *testing.T) {
	// §3.3: "reducing the memory accesses by half can lead to a speedup of
	// almost 2x" for short embedding vectors.
	for _, c := range []struct {
		dim     int
		minGain float64
	}{{4, 1.8}, {8, 1.75}, {16, 1.6}} {
		gain := MergeGain(HBMTiming, c.dim*4, c.dim*4)
		if gain < c.minGain || gain >= 2.0 {
			t.Errorf("dim %d merge gain = %.2f, want in [%.2f, 2.0)", c.dim, gain, c.minGain)
		}
	}
}

func TestMergeGainDecaysWithVectorLength(t *testing.T) {
	prev := 2.0
	for _, dim := range []int{4, 16, 64, 256, 1024, 8192} {
		gain := MergeGain(HBMTiming, dim*4, dim*4)
		if gain >= prev {
			t.Errorf("dim %d: gain %.3f did not decay (prev %.3f)", dim, gain, prev)
		}
		prev = gain
	}
	// Very long vectors: spatial locality amortises the row cost and the
	// gain approaches 1.
	if g := MergeGain(HBMTiming, 1<<20, 1<<20); g > 1.05 {
		t.Errorf("1 MB merge gain = %.3f, want near 1", g)
	}
}

func TestMergeGainKMatchesPairwise(t *testing.T) {
	g2 := MergeGain(HBMTiming, 16, 32)
	gk := MergeGainK(HBMTiming, []int{16, 32})
	if g2 != gk {
		t.Errorf("MergeGainK(2) = %v, MergeGain = %v", gk, g2)
	}
	// Three-way merges of tiny vectors approach 3x.
	g3 := MergeGainK(HBMTiming, []int{16, 16, 16})
	if g3 < 2.4 || g3 >= 3.0 {
		t.Errorf("3-way merge gain = %.2f, want in [2.4, 3.0)", g3)
	}
	if MergeGainK(HBMTiming, nil) != 1 {
		t.Error("empty merge should gain 1")
	}
	if MergeGainK(Timing{}, []int{4}) != 1 {
		t.Error("zero-cost timing should gain 1")
	}
}

// Property: merge gain is always in [1, k] for k-way merges of non-negative
// sizes.
func TestMergeGainBoundsProperty(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		sizes := []int{int(a), int(b), int(c)}
		g := MergeGainK(HBMTiming, sizes)
		return g >= 1-1e-9 && g <= 3+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
