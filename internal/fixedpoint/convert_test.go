package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvertSameFrac(t *testing.T) {
	a := Format{Bits: 32, Frac: 10}
	b := Format{Bits: 16, Frac: 10}
	if got := Convert(100, a, b); got != 100 {
		t.Errorf("Convert same frac = %d", got)
	}
	// Narrowing saturates.
	if got := Convert(1<<20, a, b); got != b.maxRaw() {
		t.Errorf("Convert narrow = %d, want saturation %d", got, b.maxRaw())
	}
}

func TestConvertUpAndDown(t *testing.T) {
	lo := Format{Bits: 16, Frac: 4}
	hi := Format{Bits: 32, Frac: 12}
	x := 3.1415
	raw := lo.Quantize(x)
	up := Convert(raw, lo, hi)
	if math.Abs(hi.Dequantize(up)-lo.RoundTrip(x)) > 1e-9 {
		t.Errorf("up-conversion lost value: %v vs %v", hi.Dequantize(up), lo.RoundTrip(x))
	}
	down := Convert(up, hi, lo)
	if down != raw {
		t.Errorf("down-conversion %d != original %d", down, raw)
	}
}

func TestConvertUpOverflowSaturates(t *testing.T) {
	lo := Format{Bits: 16, Frac: 2}  // range ±8191.75
	hi := Format{Bits: 16, Frac: 12} // range ±7.999
	raw := lo.Quantize(100)          // representable in lo, not hi
	got := Convert(raw, lo, hi)
	if got != hi.maxRaw() {
		t.Errorf("overflowing up-conversion = %d, want saturation %d", got, hi.maxRaw())
	}
	rawNeg := lo.Quantize(-100)
	if got := Convert(rawNeg, lo, hi); got != hi.minRaw() {
		t.Errorf("negative overflow = %d, want %d", got, hi.minRaw())
	}
}

func TestFormatFor(t *testing.T) {
	cases := []struct {
		bits   int
		maxAbs float64
		want   Format
	}{
		{16, 0.9, Format{16, 14}},
		{16, 1.5, Format{16, 14}}, // Q1.14 reaches 1.99994
		{16, 7.9, Format{16, 12}},
		{16, 100, Format{16, 8}},
		{32, 7.9, Format{32, 28}},
		{16, 1e9, Format{16, 1}}, // clamped at minimum resolution
	}
	for _, c := range cases {
		got, err := FormatFor(c.bits, c.maxAbs)
		if err != nil {
			t.Fatalf("FormatFor(%d, %v): %v", c.bits, c.maxAbs, err)
		}
		if got != c.want {
			t.Errorf("FormatFor(%d, %v) = %v, want %v", c.bits, c.maxAbs, got, c.want)
		}
		// The chosen format must actually represent maxAbs (unless
		// clamped at the minimum fractional width).
		if got.Frac > 1 && got.MaxValue() < c.maxAbs {
			t.Errorf("FormatFor(%d, %v) = %v cannot represent the max", c.bits, c.maxAbs, got)
		}
	}
	if _, err := FormatFor(8, 1); err == nil {
		t.Error("width 8: want error")
	}
	if _, err := FormatFor(16, 0); err == nil {
		t.Error("maxAbs 0: want error")
	}
	if _, err := FormatFor(16, math.NaN()); err == nil {
		t.Error("NaN: want error")
	}
}

// Property: Convert never produces a value outside the destination range,
// and up-then-down conversion is the identity for in-range values.
func TestConvertRoundTripProperty(t *testing.T) {
	lo := Format{Bits: 16, Frac: 6}
	hi := Format{Bits: 32, Frac: 20}
	prop := func(v int16) bool {
		raw := int64(v)
		up := Convert(raw, lo, hi)
		if up > hi.maxRaw() || up < hi.minRaw() {
			return false
		}
		return Convert(up, hi, lo) == raw
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: converting preserves value within the coarser format's
// resolution for random in-range floats.
func TestConvertValuePreservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		fromFrac := 4 + rng.Intn(10)
		toFrac := 4 + rng.Intn(10)
		from := Format{Bits: 16, Frac: fromFrac}
		to := Format{Bits: 32, Frac: toFrac}
		x := rng.Float64()*4 - 2
		raw := from.Quantize(x)
		conv := Convert(raw, from, to)
		coarse := from.Resolution()
		if to.Resolution() > coarse {
			coarse = to.Resolution()
		}
		if math.Abs(to.Dequantize(conv)-from.Dequantize(raw)) > coarse {
			t.Fatalf("conversion %v->%v moved value by more than a ULP", from, to)
		}
	}
}
