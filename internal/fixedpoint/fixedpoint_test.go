package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatValidate(t *testing.T) {
	cases := []struct {
		f       Format
		wantErr bool
	}{
		{Fixed16, false},
		{Fixed32, false},
		{Format{Bits: 16, Frac: 1}, false},
		{Format{Bits: 16, Frac: 15}, true},
		{Format{Bits: 16, Frac: 0}, true},
		{Format{Bits: 8, Frac: 4}, true},
		{Format{Bits: 64, Frac: 30}, true},
		{Format{Bits: 32, Frac: 32}, true},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if (err != nil) != c.wantErr {
			t.Errorf("Validate(%+v) error = %v, wantErr %v", c.f, err, c.wantErr)
		}
	}
}

func TestFormatRanges(t *testing.T) {
	// Embedding values (|x| < 8) must be representable in both formats.
	for _, f := range []Format{Fixed16, Fixed32} {
		if f.MaxValue() < 8 {
			t.Errorf("%v max %v too small for embeddings", f, f.MaxValue())
		}
		if f.MinValue() > -8 {
			t.Errorf("%v min %v too large for embeddings", f, f.MinValue())
		}
	}
	// Post-activation sums (|x| < 256) must fit the 32-bit accumulated format.
	if Fixed32.MaxValue() < 256 {
		t.Errorf("Fixed32 max %v too small for activations", Fixed32.MaxValue())
	}
}

func TestFormatString(t *testing.T) {
	if got := Fixed16.String(); got != "Q5.10" {
		t.Errorf("Fixed16.String() = %q, want Q5.10", got)
	}
	if got := Fixed32.String(); got != "Q13.18" {
		t.Errorf("Fixed32.String() = %q, want Q13.18", got)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	for _, f := range []Format{Fixed16, Fixed32} {
		for _, x := range []float64{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 7.999} {
			got := f.RoundTrip(x)
			if math.Abs(got-x) > f.Resolution() {
				t.Errorf("%v RoundTrip(%v) = %v, err %v > resolution %v",
					f, x, got, math.Abs(got-x), f.Resolution())
			}
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	for _, f := range []Format{Fixed16, Fixed32} {
		if got := f.Quantize(1e12); got != f.maxRaw() {
			t.Errorf("%v Quantize(+inf-ish) = %d, want max %d", f, got, f.maxRaw())
		}
		if got := f.Quantize(-1e12); got != f.minRaw() {
			t.Errorf("%v Quantize(-inf-ish) = %d, want min %d", f, got, f.minRaw())
		}
		if got := f.Quantize(math.NaN()); got != 0 {
			t.Errorf("%v Quantize(NaN) = %d, want 0", f, got)
		}
	}
}

func TestAddSubSaturate(t *testing.T) {
	f := Fixed16
	max, min := f.maxRaw(), f.minRaw()
	if got := f.Add(max, 1); got != max {
		t.Errorf("Add(max,1) = %d, want saturation at %d", got, max)
	}
	if got := f.Sub(min, 1); got != min {
		t.Errorf("Sub(min,1) = %d, want saturation at %d", got, min)
	}
	if got := f.Add(100, 200); got != 300 {
		t.Errorf("Add(100,200) = %d, want 300", got)
	}
}

func TestMulMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []Format{Fixed16, Fixed32} {
		for i := 0; i < 200; i++ {
			x := rng.Float64()*8 - 4
			y := rng.Float64()*8 - 4
			a, b := f.Quantize(x), f.Quantize(y)
			got := f.Dequantize(f.Mul(a, b))
			want := f.RoundTrip(x) * f.RoundTrip(y)
			// One multiplication introduces at most one LSB of rounding
			// error on top of input representation error.
			if math.Abs(got-want) > f.Resolution() {
				t.Fatalf("%v Mul(%v,%v) = %v, want approx %v", f, x, y, got, want)
			}
		}
	}
}

func TestRoundShiftSymmetry(t *testing.T) {
	// roundShift must round half away from zero symmetrically.
	cases := []struct {
		v    int64
		s    uint
		want int64
	}{
		{3, 1, 2}, {-3, 1, -2}, // 1.5 -> 2
		{1, 1, 1}, {-1, 1, -1}, // 0.5 -> 1
		{5, 2, 1}, {-5, 2, -1}, // 1.25 -> 1
		{6, 2, 2}, {-6, 2, -2}, // 1.5 -> 2
		{7, 0, 7},
	}
	for _, c := range cases {
		if got := roundShift(c.v, c.s); got != c.want {
			t.Errorf("roundShift(%d,%d) = %d, want %d", c.v, c.s, got, c.want)
		}
	}
}

func TestDot(t *testing.T) {
	f := Fixed16
	a := NewVector(f, []float64{1, 2, 3})
	b := NewVector(f, []float64{0.5, -1, 2})
	got, err := Dot(a, b)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	want := 1*0.5 - 2 + 3*2.0 // 4.5
	if math.Abs(f.Dequantize(got)-want) > 2*f.Resolution() {
		t.Errorf("Dot = %v, want %v", f.Dequantize(got), want)
	}
}

func TestDotErrors(t *testing.T) {
	a := NewVector(Fixed16, []float64{1})
	b := NewVector(Fixed32, []float64{1})
	if _, err := Dot(a, b); err == nil {
		t.Error("Dot with mismatched formats: want error")
	}
	c := NewVector(Fixed16, []float64{1, 2})
	if _, err := Dot(a, c); err == nil {
		t.Error("Dot with mismatched lengths: want error")
	}
}

func TestReLU(t *testing.T) {
	raw := []int64{-5, 0, 5, -1, 100}
	ReLU(raw)
	want := []int64{0, 0, 5, 0, 100}
	for i := range raw {
		if raw[i] != want[i] {
			t.Errorf("ReLU[%d] = %d, want %d", i, raw[i], want[i])
		}
	}
}

func TestSigmoid(t *testing.T) {
	f := Fixed32
	if got := f.Dequantize(f.Sigmoid(f.Quantize(0))); math.Abs(got-0.5) > f.Resolution() {
		t.Errorf("Sigmoid(0) = %v, want 0.5", got)
	}
	big := f.Dequantize(f.Sigmoid(f.Quantize(10)))
	if big < 0.999 {
		t.Errorf("Sigmoid(10) = %v, want near 1", big)
	}
	small := f.Dequantize(f.Sigmoid(f.Quantize(-10)))
	if small > 0.001 {
		t.Errorf("Sigmoid(-10) = %v, want near 0", small)
	}
}

func TestQuantizeDequantizeSlices(t *testing.T) {
	xs := []float32{0.25, -0.75, 3.5}
	raw := QuantizeSlice(Fixed16, xs, nil)
	back := DequantizeSlice(Fixed16, raw, nil)
	for i := range xs {
		if math.Abs(float64(back[i]-xs[i])) > Fixed16.Resolution() {
			t.Errorf("slice round trip [%d]: got %v, want %v", i, back[i], xs[i])
		}
	}
	// In-place destinations are reused.
	dst := make([]int64, 3)
	if got := QuantizeSlice(Fixed16, xs, dst); &got[0] != &dst[0] {
		t.Error("QuantizeSlice did not reuse dst")
	}
}

// Property: quantization error is bounded by half a resolution step inside
// the representable range.
func TestQuantizeErrorBoundProperty(t *testing.T) {
	for _, f := range []Format{Fixed16, Fixed32} {
		f := f
		prop := func(frac float64) bool {
			// Map arbitrary float into the representable range.
			x := math.Mod(math.Abs(frac), f.MaxValue()-1)
			if math.IsNaN(x) {
				return true
			}
			return f.AbsError(x) <= f.Resolution()/2+1e-12
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

// Property: Add is commutative and Mul is commutative under saturation.
func TestCommutativityProperty(t *testing.T) {
	f := Fixed16
	prop := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		return f.Add(x, y) == f.Add(y, x) && f.Mul(x, y) == f.Mul(y, x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: saturation never produces values outside the raw range.
func TestSaturationRangeProperty(t *testing.T) {
	f := Fixed16
	prop := func(a, b int16) bool {
		for _, v := range []int64{f.Add(int64(a), int64(b)), f.Mul(int64(a), int64(b))} {
			if v > f.maxRaw() || v < f.minRaw() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Dot of a vector with a one-hot basis vector recovers the element.
func TestDotBasisProperty(t *testing.T) {
	f := Fixed32
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(64)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.Float64()*4 - 2
		}
		v := NewVector(f, xs)
		k := rng.Intn(n)
		basis := make([]float64, n)
		basis[k] = 1
		e := NewVector(f, basis)
		got, err := Dot(v, e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f.Dequantize(got)-f.RoundTrip(xs[k])) > 2*f.Resolution() {
			t.Fatalf("basis dot: got %v, want %v", f.Dequantize(got), xs[k])
		}
	}
}

func BenchmarkQuantizeSlice(b *testing.B) {
	xs := make([]float32, 1024)
	for i := range xs {
		xs[i] = float32(i%17) * 0.37
	}
	dst := make([]int64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QuantizeSlice(Fixed16, xs, dst)
	}
}

func BenchmarkDot(b *testing.B) {
	n := 512
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%13) * 0.21
	}
	v := NewVector(Fixed16, xs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Dot(v, v); err != nil {
			b.Fatal(err)
		}
	}
}
