package fixedpoint

import (
	"math"
	"testing"
)

// FuzzQuantize checks the fundamental quantization invariants on arbitrary
// floats: outputs stay in the raw range, round trips stay within half a ULP
// inside the representable range, and saturation clamps outside it.
func FuzzQuantize(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(-3.25)
	f.Add(1e30)
	f.Add(-1e30)
	f.Add(math.Pi)
	f.Fuzz(func(t *testing.T, x float64) {
		for _, fm := range []Format{Fixed16, Fixed32} {
			raw := fm.Quantize(x)
			if raw > fm.maxRaw() || raw < fm.minRaw() {
				t.Fatalf("%v: Quantize(%v) = %d out of raw range", fm, x, raw)
			}
			if math.IsNaN(x) {
				if raw != 0 {
					t.Fatalf("%v: Quantize(NaN) = %d", fm, raw)
				}
				return
			}
			back := fm.Dequantize(raw)
			switch {
			case x > fm.MaxValue():
				if back != fm.MaxValue() {
					t.Fatalf("%v: Quantize(%v) should saturate high, got %v", fm, x, back)
				}
			case x < fm.MinValue():
				if back != fm.MinValue() {
					t.Fatalf("%v: Quantize(%v) should saturate low, got %v", fm, x, back)
				}
			default:
				if math.Abs(back-x) > fm.Resolution()/2+1e-12 {
					t.Fatalf("%v: round trip of %v drifted to %v", fm, x, back)
				}
			}
		}
	})
}

// FuzzConvert checks that format conversion never leaves the destination
// range and is value-preserving within a ULP of the coarser format.
func FuzzConvert(f *testing.F) {
	f.Add(int64(0), 8, 12)
	f.Add(int64(1000), 14, 4)
	f.Add(int64(-32768), 4, 14)
	f.Fuzz(func(t *testing.T, raw int64, fromFrac, toFrac int) {
		from := Format{Bits: 16, Frac: fromFrac%13 + 1}
		to := Format{Bits: 32, Frac: toFrac%29 + 1}
		raw = from.saturate(raw)
		got := Convert(raw, from, to)
		if got > to.maxRaw() || got < to.minRaw() {
			t.Fatalf("Convert(%d, %v, %v) = %d out of range", raw, from, to, got)
		}
		want := from.Dequantize(raw)
		back := to.Dequantize(got)
		tol := math.Max(from.Resolution(), to.Resolution())
		if math.Abs(want) <= to.MaxValue() && math.Abs(back-want) > tol {
			t.Fatalf("Convert(%d, %v, %v): value %v -> %v drift exceeds ULP %v",
				raw, from, to, want, back, tol)
		}
	})
}
