// Package fixedpoint implements the saturating fixed-point arithmetic used by
// the MicroRec accelerator datapath.
//
// The paper evaluates two precision levels, 16-bit and 32-bit fixed point
// (Table 2, Table 6). We model them as signed Q-format numbers: a Q(m).(f)
// value stores round(x * 2^f) in an int16 or int32. Multiplications widen to
// the next integer size, accumulate exactly, and saturate on the way back to
// the storage width, which is how HLS arbitrary-precision types behave when
// configured with AP_SAT.
package fixedpoint

import (
	"fmt"
	"math"
)

// Format describes a signed fixed-point representation.
type Format struct {
	// Bits is the total storage width, 16 or 32.
	Bits int
	// Frac is the number of fractional bits.
	Frac int
}

// Common formats used by the accelerator. The fractional widths are chosen so
// that embedding values (|x| < 8) and post-activation ranges (|x| < 256 with
// ReLU) both fit; see TestFormatRanges.
var (
	// Fixed16 is the 16-bit datapath format (Q6.10).
	Fixed16 = Format{Bits: 16, Frac: 10}
	// Fixed32 is the 32-bit datapath format (Q14.18).
	Fixed32 = Format{Bits: 32, Frac: 18}
)

// Validate reports whether the format is one the datapath supports.
func (f Format) Validate() error {
	if f.Bits != 16 && f.Bits != 32 {
		return fmt.Errorf("fixedpoint: unsupported width %d (want 16 or 32)", f.Bits)
	}
	// Reserve the sign bit plus at least one integer bit, since datapath
	// values (embeddings, activations) routinely exceed 1.0 in magnitude.
	if f.Frac <= 0 || f.Frac > f.Bits-2 {
		return fmt.Errorf("fixedpoint: fractional width %d out of range for %d-bit format", f.Frac, f.Bits)
	}
	return nil
}

// Scale returns 2^Frac as a float64.
func (f Format) Scale() float64 { return float64(int64(1) << uint(f.Frac)) }

// MaxValue returns the largest representable value.
func (f Format) MaxValue() float64 {
	return float64(f.maxRaw()) / f.Scale()
}

// MinValue returns the most negative representable value.
func (f Format) MinValue() float64 {
	return float64(f.minRaw()) / f.Scale()
}

// Resolution returns the value of one least-significant bit.
func (f Format) Resolution() float64 { return 1 / f.Scale() }

func (f Format) maxRaw() int64 { return int64(1)<<uint(f.Bits-1) - 1 }
func (f Format) minRaw() int64 { return -(int64(1) << uint(f.Bits-1)) }

// String implements fmt.Stringer, e.g. "Q6.10".
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d", f.Bits-1-f.Frac, f.Frac)
}

// Quantize converts a float64 to the nearest representable raw value,
// saturating at the format bounds. NaN quantizes to zero.
func (f Format) Quantize(x float64) int64 {
	if math.IsNaN(x) {
		return 0
	}
	r := math.RoundToEven(x * f.Scale())
	if r > float64(f.maxRaw()) {
		return f.maxRaw()
	}
	if r < float64(f.minRaw()) {
		return f.minRaw()
	}
	return int64(r)
}

// Dequantize converts a raw value back to float64.
func (f Format) Dequantize(raw int64) float64 {
	return float64(raw) / f.Scale()
}

// RoundTrip quantizes and dequantizes x, returning the representable value
// nearest to x.
func (f Format) RoundTrip(x float64) float64 {
	return f.Dequantize(f.Quantize(x))
}

// saturate clamps a wide accumulator into the storage width.
func (f Format) saturate(v int64) int64 {
	if v > f.maxRaw() {
		return f.maxRaw()
	}
	if v < f.minRaw() {
		return f.minRaw()
	}
	return v
}

// Add returns a+b in the format with saturation. Inputs must already be raw
// values of this format.
func (f Format) Add(a, b int64) int64 { return f.saturate(a + b) }

// Sub returns a-b in the format with saturation.
func (f Format) Sub(a, b int64) int64 { return f.saturate(a - b) }

// Mul returns a*b rescaled into the format with saturation. The product of
// two Q.f numbers is a Q.2f number; shifting right by f (with rounding toward
// nearest) restores the format, exactly like an HLS multiplier followed by a
// shift.
func (f Format) Mul(a, b int64) int64 {
	wide := a * b
	return f.saturate(roundShift(wide, uint(f.Frac)))
}

// MulAcc returns acc + a*b where acc is a *wide* (2f-fractional-bit)
// accumulator; no saturation is applied, matching the exact wide accumulators
// inside a PE's add tree. Use Finish to rescale the accumulator.
func (f Format) MulAcc(acc, a, b int64) int64 { return acc + a*b }

// Finish rescales a wide accumulator (2f fractional bits) back into the
// storage format with saturation.
func (f Format) Finish(acc int64) int64 {
	return f.saturate(roundShift(acc, uint(f.Frac)))
}

// roundShift shifts v right by s bits rounding half away from zero.
func roundShift(v int64, s uint) int64 {
	if s == 0 {
		return v
	}
	half := int64(1) << (s - 1)
	if v >= 0 {
		return (v + half) >> s
	}
	return -((-v + half) >> s)
}

// Vector is a fixed-point vector: raw values plus their shared format.
type Vector struct {
	Format Format
	Raw    []int64
}

// NewVector quantizes xs into a fresh Vector.
func NewVector(f Format, xs []float64) Vector {
	raw := make([]int64, len(xs))
	for i, x := range xs {
		raw[i] = f.Quantize(x)
	}
	return Vector{Format: f, Raw: raw}
}

// Float64s dequantizes the vector.
func (v Vector) Float64s() []float64 {
	out := make([]float64, len(v.Raw))
	for i, r := range v.Raw {
		out[i] = v.Format.Dequantize(r)
	}
	return out
}

// Len returns the number of elements.
func (v Vector) Len() int { return len(v.Raw) }

// Dot computes the dot product of a and b (same format), returning the value
// rescaled into the format with saturation. The accumulation itself is exact,
// as in the hardware add tree.
func Dot(a, b Vector) (int64, error) {
	if a.Format != b.Format {
		return 0, fmt.Errorf("fixedpoint: format mismatch %v vs %v", a.Format, b.Format)
	}
	if len(a.Raw) != len(b.Raw) {
		return 0, fmt.Errorf("fixedpoint: length mismatch %d vs %d", len(a.Raw), len(b.Raw))
	}
	var acc int64
	for i := range a.Raw {
		acc = a.Format.MulAcc(acc, a.Raw[i], b.Raw[i])
	}
	return a.Format.Finish(acc), nil
}

// QuantizeSlice quantizes xs in bulk, writing raw values into dst (allocated
// if nil) and returning it.
func QuantizeSlice(f Format, xs []float32, dst []int64) []int64 {
	if dst == nil {
		dst = make([]int64, len(xs))
	}
	for i, x := range xs {
		dst[i] = f.Quantize(float64(x))
	}
	return dst
}

// DequantizeSlice converts raw values to float32s, writing into dst
// (allocated if nil) and returning it.
func DequantizeSlice(f Format, raw []int64, dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, len(raw))
	}
	for i, r := range raw {
		dst[i] = float32(f.Dequantize(r))
	}
	return dst
}

// ReLU applies max(0, x) elementwise in place on raw values.
func ReLU(raw []int64) {
	for i, v := range raw {
		if v < 0 {
			raw[i] = 0
		}
	}
}

// Sigmoid computes the logistic function on a raw value by dequantizing,
// evaluating in float64 and re-quantizing. The hardware implements this with
// a small lookup table; the table's quantization error is subsumed by the
// output format's resolution.
func (f Format) Sigmoid(raw int64) int64 {
	x := f.Dequantize(raw)
	return f.Quantize(1 / (1 + math.Exp(-x)))
}

// AbsError returns |x - RoundTrip(x)|, the representation error for x inside
// the representable range (and the saturation error outside it).
func (f Format) AbsError(x float64) float64 {
	return math.Abs(x - f.RoundTrip(x))
}

// Convert rescales a raw value from one format into another, saturating at
// the destination's range — the requantization step between pipeline stages
// that use different per-layer formats.
func Convert(raw int64, from, to Format) int64 {
	switch {
	case to.Frac == from.Frac:
		return to.saturate(raw)
	case to.Frac > from.Frac:
		shift := uint(to.Frac - from.Frac)
		// Detect overflow before shifting left.
		if raw > to.maxRaw()>>shift {
			return to.maxRaw()
		}
		if raw < to.minRaw()>>shift {
			return to.minRaw()
		}
		return raw << shift
	default:
		return to.saturate(roundShift(raw, uint(from.Frac-to.Frac)))
	}
}

// FormatFor picks the widest-resolution format of the given bit width that
// still represents values up to maxAbs without saturating — the calibration
// rule used by per-layer quantization.
func FormatFor(bits int, maxAbs float64) (Format, error) {
	if bits != 16 && bits != 32 {
		return Format{}, fmt.Errorf("fixedpoint: unsupported width %d", bits)
	}
	if maxAbs <= 0 || math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) {
		return Format{}, fmt.Errorf("fixedpoint: maxAbs %v", maxAbs)
	}
	intBits := 1
	for float64(int64(1)<<uint(intBits)) <= maxAbs {
		intBits++
		if intBits >= bits-1 {
			break
		}
	}
	frac := bits - 1 - intBits
	if frac < 1 {
		frac = 1
	}
	f := Format{Bits: bits, Frac: frac}
	if err := f.Validate(); err != nil {
		return Format{}, err
	}
	return f, nil
}
