package experiments

import (
	"strings"
	"testing"

	"microrec/internal/memsim"
	"microrec/internal/metrics"
)

func TestAllRunnersExecute(t *testing.T) {
	opts := Options{Items: 2000}
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			tables, err := r.Run(opts)
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", r.Name)
			}
			for _, tb := range tables {
				out := tb.String()
				if len(out) == 0 || !strings.Contains(out, "\n") {
					t.Errorf("%s rendered empty table", r.Name)
				}
			}
		})
	}
}

func TestFindRunner(t *testing.T) {
	if _, err := Find("table2"); err != nil {
		t.Errorf("Find(table2): %v", err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find(nope): want error")
	}
}

// TestTable2SpeedupsMatchPaper is the headline reproduction check: end-to-end
// speedups at B=2048 must land near the paper's 2.5–5.4x range.
func TestTable2SpeedupsMatchPaper(t *testing.T) {
	sum, err := Table2Summary(Options{Items: 4000})
	if err != nil {
		t.Fatal(err)
	}
	for modelName, byPrec := range PaperTable2Speedup {
		for prec, byBatch := range byPrec {
			got := sum[modelName][prec]
			for _, b := range []int{64, 256, 512, 1024, 2048} {
				want := byBatch[b]
				if !memsim.ApproxEqual(got.Speedup[b], want, 0.20) {
					t.Errorf("%s fp%d B=%d speedup = %.2fx, paper %.2fx (>20%% off)",
						modelName, prec, b, got.Speedup[b], want)
				}
			}
			// B=1 speedups are hundreds-x; check order of magnitude.
			if got.Speedup[1] < byBatch[1]*0.5 || got.Speedup[1] > byBatch[1]*2 {
				t.Errorf("%s fp%d B=1 speedup = %.0fx, paper %.0fx (outside 2x band)",
					modelName, prec, got.Speedup[1], byBatch[1])
			}
		}
	}
}

// TestTable2ShapeHolds checks the qualitative claims: MicroRec always wins,
// speedup shrinks with batch size, and the paper's 2.5–5.4x B=2048 range
// holds.
func TestTable2ShapeHolds(t *testing.T) {
	sum, err := Table2Summary(Options{Items: 4000})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64 = 1e18, 0
	for _, byPrec := range sum {
		for _, row := range byPrec {
			prev := 1e18
			for _, b := range PaperBatch {
				s := row.Speedup[b]
				if s <= 1 {
					t.Errorf("%s fp%d B=%d: speedup %.2f <= 1 — FPGA must win everywhere",
						row.Model, row.Precision, b, s)
				}
				if s > prev+1e-9 {
					t.Errorf("%s fp%d: speedup grew with batch size (B=%d)", row.Model, row.Precision, b)
				}
				prev = s
			}
			s := row.Speedup[2048]
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
	}
	if lo < 2.0 || hi > 7.0 {
		t.Errorf("B=2048 speedup range [%.2f, %.2f], paper reports 2.5–5.4x", lo, hi)
	}
}

// TestTable3MatchesPaperCounts asserts the integer-valued placement results
// match Table 3 exactly.
func TestTable3MatchesPaperCounts(t *testing.T) {
	rows, err := Table3Rows(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ref := PaperTable3[r.Model][r.Cartesian]
		if r.Tables != ref.Tables {
			t.Errorf("%s cart=%v: tables %d, paper %d", r.Model, r.Cartesian, r.Tables, ref.Tables)
		}
		if r.TablesInDRAM != ref.TablesInDRAM {
			t.Errorf("%s cart=%v: DRAM tables %d, paper %d", r.Model, r.Cartesian, r.TablesInDRAM, ref.TablesInDRAM)
		}
		if r.DRAMRounds != ref.DRAMRounds {
			t.Errorf("%s cart=%v: rounds %d, paper %d", r.Model, r.Cartesian, r.DRAMRounds, ref.DRAMRounds)
		}
		if !memsim.ApproxEqual(r.StoragePct, ref.StoragePct, 0.005) {
			t.Errorf("%s cart=%v: storage %.1f%%, paper %.1f%%", r.Model, r.Cartesian, r.StoragePct, ref.StoragePct)
		}
	}
}

// TestTable3LatencyShape asserts the Cartesian latency ratio direction and
// rough magnitude (the paper reports 59.2% and 72.1%).
func TestTable3LatencyShape(t *testing.T) {
	rows, err := Table3Rows(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Cartesian {
			continue
		}
		ref := PaperTable3[r.Model][true]
		if r.LatencyPct >= 100 {
			t.Errorf("%s: Cartesian latency %.1f%% >= 100%% — no benefit", r.Model, r.LatencyPct)
		}
		if !memsim.ApproxEqual(r.LatencyPct, ref.LatencyPct, 0.12) {
			t.Errorf("%s: latency ratio %.1f%%, paper %.1f%% (>12%% off)", r.Model, r.LatencyPct, ref.LatencyPct)
		}
	}
}

// TestTable4SpeedupsMatchPaper validates embedding-layer speedups within
// 25% of every published cell (the lookup latencies themselves are checked
// tighter in TestTable4Lookups).
func TestTable4SpeedupsMatchPaper(t *testing.T) {
	results, err := Table4Results(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for cfgName, byBatch := range PaperTable4Speedup[r.Model] {
			for b, want := range byBatch {
				got := r.Speedup[cfgName][b]
				if !memsim.ApproxEqual(got, want, 0.25) {
					t.Errorf("%s %s B=%d: speedup %.1fx, paper %.1fx (>25%% off)",
						r.Model, cfgName, b, got, want)
				}
			}
		}
		// The headline claim: 13.8–14.7x at B=2048 with HBM+Cartesian.
		headline := r.Speedup["hbm+cartesian"][2048]
		if headline < 10 || headline > 20 {
			t.Errorf("%s headline embedding speedup %.1fx outside 10-20x", r.Model, headline)
		}
	}
}

// TestTable4Lookups validates the modeled FPGA lookup latencies against the
// paper's Table 4 values.
func TestTable4Lookups(t *testing.T) {
	results, err := Table4Results(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		ref := PaperTable4FPGA[r.Model]
		if !memsim.ApproxEqual(r.CartesianNS, ref["hbm+cartesian"], 0.10) {
			t.Errorf("%s HBM+Cartesian lookup %.0f ns, paper %.0f (>10%% off)",
				r.Model, r.CartesianNS, ref["hbm+cartesian"])
		}
		if !memsim.ApproxEqual(r.HBMNS, ref["hbm"], 0.20) {
			t.Errorf("%s HBM lookup %.0f ns, paper %.0f (>20%% off)",
				r.Model, r.HBMNS, ref["hbm"])
		}
		if r.CartesianNS >= r.HBMNS {
			t.Errorf("%s: Cartesian lookup %.0f >= HBM-only %.0f", r.Model, r.CartesianNS, r.HBMNS)
		}
	}
}

// TestTable5MatchesPaper validates every cell of Table 5 within 7%.
func TestTable5MatchesPaper(t *testing.T) {
	cells, err := Table5Cells(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 {
		t.Fatalf("Table 5 has %d cells, want 10", len(cells))
	}
	for _, c := range cells {
		ref := PaperTable5[c.Tables][c.Dim]
		if !memsim.ApproxEqual(c.LookupNS, ref.LookupNS, 0.07) {
			t.Errorf("%d tables dim %d: %.1f ns, paper %.1f (>7%% off)",
				c.Tables, c.Dim, c.LookupNS, ref.LookupNS)
		}
		if !memsim.ApproxEqual(c.Speedup, ref.Speedup, 0.07) {
			t.Errorf("%d tables dim %d: speedup %.1fx, paper %.1fx (>7%% off)",
				c.Tables, c.Dim, c.Speedup, ref.Speedup)
		}
	}
	// Shape: 8 tables = 1 round, 12 tables = 2 rounds (§5.4.2).
	for _, c := range cells {
		wantRounds := 1
		if c.Tables == 12 {
			wantRounds = 2
		}
		if c.Rounds != wantRounds {
			t.Errorf("%d tables: %d rounds, want %d", c.Tables, c.Rounds, wantRounds)
		}
	}
}

// TestFigure7Shape validates the robustness curve: flat, then declining, with
// breakpoints within one round of the paper's 6 (small) and 4 (large).
func TestFigure7Shape(t *testing.T) {
	points, err := Figure7Series(Options{Items: 2000}, 8)
	if err != nil {
		t.Fatal(err)
	}
	bp := Figure7Breakpoint(points)
	for m, want := range PaperFigure7Breakpoints {
		got := bp[m]
		if got < want-1 || got > want+1 {
			t.Errorf("%s breakpoint = %d rounds, paper %d (±1 tolerated)", m, got, want)
		}
	}
	// Beyond the breakpoint, throughput must decline monotonically.
	perModel := map[string][]Figure7Point{}
	for _, p := range points {
		perModel[p.Model] = append(perModel[p.Model], p)
	}
	for m, ps := range perModel {
		for i := 1; i < len(ps); i++ {
			if ps[i].ItemsPerS > ps[i-1].ItemsPerS*1.001 {
				t.Errorf("%s: throughput increased from round %d to %d", m, ps[i-1].Rounds, ps[i].Rounds)
			}
		}
		if ps[len(ps)-1].ItemsPerS >= ps[0].ItemsPerS*0.995 {
			t.Errorf("%s: throughput never declined by round 8 — lookup never became the bottleneck", m)
		}
	}
}

func TestTableRenderingIncludesPaperNotes(t *testing.T) {
	tables, err := RunTable3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	if !strings.Contains(out, "With Cartesian") || !strings.Contains(out, "Without Cartesian") {
		t.Errorf("Table 3 output missing configs:\n%s", out)
	}
}

func TestRunCostFavorsFPGA(t *testing.T) {
	tables, err := RunCost(Options{Items: 2000})
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	if !strings.Contains(out, "FPGA") || !strings.Contains(out, "CPU") {
		t.Errorf("cost table malformed:\n%s", out)
	}
}

func TestCSVExport(t *testing.T) {
	tables, err := RunTable5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	csv := tables[0].CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 11 { // header + 10 cells
		t.Errorf("Table 5 CSV has %d lines, want 11", len(lines))
	}
}

var benchTables []*metrics.Table

func BenchmarkRunTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := RunTable3(Options{})
		if err != nil {
			b.Fatal(err)
		}
		benchTables = tb
	}
}
