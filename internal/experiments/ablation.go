package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"microrec/internal/core"
	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
	"microrec/internal/placement"
	"microrec/internal/workload"
)

// RunAllocatorAblation compares the paper-faithful round-robin DRAM
// allocation against the LPT cost-balancing allocator (design-choice ablation
// called out in DESIGN.md), and measures the heuristic search's optimality
// gap against brute force on random small instances.
func RunAllocatorAblation(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	t := metrics.NewTable("Ablation A1a: DRAM allocation strategy (lookup latency, ns)",
		"Model", "Config", "RoundRobin (paper)", "LPT (ours)", "LPT gain")
	for _, target := range []struct {
		spec  *model.Spec
		banks int
	}{
		{model.SmallProduction(), core.SmallFP16().OnChipBanks},
		{model.LargeProduction(), core.LargeFP16().OnChipBanks},
	} {
		for _, cart := range []bool{false, true} {
			rr, err := planFor(target.spec, target.banks, cart, placement.RoundRobin)
			if err != nil {
				return nil, err
			}
			lpt, err := planFor(target.spec, target.banks, cart, placement.LPT)
			if err != nil {
				return nil, err
			}
			cfg := "without Cartesian"
			if cart {
				cfg = "with Cartesian"
			}
			t.AddRow(target.spec.Name, cfg,
				metrics.FmtF(rr.Report.LatencyNS, 0),
				metrics.FmtF(lpt.Report.LatencyNS, 0),
				metrics.FmtSpeedup(rr.Report.LatencyNS/lpt.Report.LatencyNS))
		}
	}

	g := metrics.NewTable("Ablation A1b: heuristic vs brute-force optimality (random 5-table instances)",
		"Trial", "Heuristic (ns)", "Optimal (ns)", "Gap")
	sys := memsim.System{Banks: []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 24, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 24, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 24, Timing: memsim.HBMTiming},
		{Kind: memsim.OnChip, Capacity: 2 << 10, Timing: memsim.OnChipTiming},
	}}
	rng := rand.New(rand.NewSource(opts.Seed + 77))
	var worstGap float64
	for trial := 0; trial < 6; trial++ {
		tables := make([]model.TableSpec, 5)
		for i := range tables {
			tables[i] = model.TableSpec{
				ID: i, Name: fmt.Sprintf("t%d", i),
				Rows: int64(10 + rng.Intn(4000)), Dim: 4, Lookups: 1,
			}
		}
		spec := &model.Spec{Name: fmt.Sprintf("rand-%d", trial), Tables: tables, Hidden: []int{8}}
		h, err := placement.Plan(spec, sys, placement.Options{EnableCartesian: true, Allocator: placement.LPT})
		if err != nil {
			return nil, err
		}
		b, err := placement.BruteForce(spec, sys,
			placement.Options{EnableCartesian: true, Allocator: placement.LPT},
			placement.BruteForceLimits{MaxTables: 6, MaxExhaustiveTables: 6})
		if err != nil {
			return nil, err
		}
		gap := h.Report.LatencyNS/b.Report.LatencyNS - 1
		worstGap = math.Max(worstGap, gap)
		g.AddRow(fmt.Sprint(trial),
			metrics.FmtF(h.Report.LatencyNS, 1),
			metrics.FmtF(b.Report.LatencyNS, 1),
			metrics.FmtPct(gap))
	}
	g.AddNote("worst optimality gap: %s (§3.4.2 claims near-optimal at O(N^2))", metrics.FmtPct(worstGap))
	return []*metrics.Table{t, g}, nil
}

// RunQuantAblation measures fixed-point quantization error against the
// float32 reference on real inference traffic — the accuracy side of the
// fp16-vs-fp32 throughput trade-off of Table 2.
func RunQuantAblation(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	t := metrics.NewTable("Ablation A2: fixed-point CTR error vs float32 reference (100 queries)",
		"Model", "Precision", "Max |err|", "Mean |err|")
	for _, target := range []struct {
		spec *model.Spec
		cfgs []core.Config
	}{
		{model.SmallProduction(), []core.Config{core.SmallFP16(), core.SmallFP32()}},
		{model.LargeProduction(), []core.Config{core.LargeFP16(), core.LargeFP32()}},
	} {
		params, err := target.spec.Materialize(model.MaterializeOptions{Seed: opts.Seed, MaxRowsPerTable: 256})
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(target.spec, workload.Uniform, opts.Seed+1)
		if err != nil {
			return nil, err
		}
		queries, err := gen.Batch(100)
		if err != nil {
			return nil, err
		}
		for _, cfg := range target.cfgs {
			plan, err := planFor(target.spec, cfg.OnChipBanks, true, opts.Allocator)
			if err != nil {
				return nil, err
			}
			eng, err := core.Build(params, plan, cfg)
			if err != nil {
				return nil, err
			}
			var maxErr, sumErr float64
			for _, q := range queries {
				ref, err := eng.ReferenceOne(q)
				if err != nil {
					return nil, err
				}
				got, err := eng.InferOne(q)
				if err != nil {
					return nil, err
				}
				e := math.Abs(float64(got - ref))
				sumErr += e
				maxErr = math.Max(maxErr, e)
			}
			t.AddRow(target.spec.Name, precisionLabel(cfg.Precision),
				fmt.Sprintf("%.5f", maxErr),
				fmt.Sprintf("%.5f", sumErr/float64(len(queries))))
		}
	}
	t.AddNote("fp16 trades a small CTR error for the Table 2 throughput gain; fp32 is near-exact")
	return []*metrics.Table{t}, nil
}
