// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and the appendix): each runner produces the same rows the
// paper reports, next to the paper's published values, so EXPERIMENTS.md can
// record paper-vs-measured for the whole evaluation.
package experiments

// Paper reference values, transcribed from the MLSys'21 camera-ready.

// PaperBatch mirrors the batch sizes of Tables 2 and 4.
var PaperBatch = []int{1, 64, 256, 512, 1024, 2048}

// PaperTable2CPU holds CPU end-to-end latency (ms) per batch size.
var PaperTable2CPU = map[string]map[int]float64{
	"production-small": {1: 3.34, 64: 5.41, 256: 8.15, 512: 11.15, 1024: 17.17, 2048: 28.18},
	"production-large": {1: 7.48, 64: 10.23, 256: 15.62, 512: 21.06, 1024: 31.72, 2048: 56.98},
}

// PaperTable2FPGA holds the FPGA columns of Table 2: single-item latency (ms)
// and throughput (items/s, GOP/s) per model and precision.
var PaperTable2FPGA = map[string]map[int]struct {
	LatencyMS float64
	ItemsPerS float64
	GOPs      float64
}{
	"production-small": {
		16: {1.63e-2, 3.05e5, 619.50},
		32: {2.26e-2, 1.81e5, 367.72},
	},
	"production-large": {
		16: {2.26e-2, 1.95e5, 606.41},
		32: {3.10e-2, 1.22e5, 379.45},
	},
}

// PaperTable2Speedup holds the end-to-end speedup rows of Table 2
// (FPGA vs CPU at each batch size), keyed by model then precision then batch.
var PaperTable2Speedup = map[string]map[int]map[int]float64{
	"production-small": {
		16: {1: 204.72, 64: 24.27, 256: 9.56, 512: 6.59, 1024: 5.09, 2048: 4.19},
		32: {1: 147.54, 64: 14.58, 256: 5.69, 512: 3.91, 1024: 3.02, 2048: 2.48},
	},
	"production-large": {
		16: {1: 331.51, 64: 29.56, 256: 11.73, 512: 7.96, 1024: 6.02, 2048: 5.41},
		32: {1: 241.54, 64: 18.67, 256: 7.36, 512: 4.99, 1024: 3.77, 2048: 3.39},
	},
}

// PaperTable3 holds the Cartesian-product benefit/overhead study.
type PaperTable3Row struct {
	Tables       int
	TablesInDRAM int
	DRAMRounds   int
	StoragePct   float64 // 100 = baseline
	LatencyPct   float64 // 100 = without Cartesian
}

var PaperTable3 = map[string]map[bool]PaperTable3Row{
	"production-small": {
		false: {47, 39, 2, 100.0, 100.0},
		true:  {42, 34, 1, 103.2, 59.2},
	},
	"production-large": {
		false: {98, 82, 3, 100.0, 100.0},
		true:  {84, 68, 2, 101.9, 72.1},
	},
}

// PaperTable4CPU holds CPU embedding-layer latency (ms) per batch size.
var PaperTable4CPU = map[string]map[int]float64{
	"production-small": {1: 2.59, 64: 3.86, 256: 4.71, 512: 5.96, 1024: 8.39, 2048: 12.96},
	"production-large": {1: 6.25, 64: 8.05, 256: 10.92, 512: 13.67, 1024: 18.11, 2048: 31.25},
}

// PaperTable4FPGA holds the FPGA lookup latencies of Table 4 in
// nanoseconds, keyed by model then configuration (HBM vs HBM+Cartesian).
var PaperTable4FPGA = map[string]map[string]float64{
	"production-small": {"hbm": 774, "hbm+cartesian": 458},
	"production-large": {"hbm": 1380, "hbm+cartesian": 1030},
}

// PaperTable4Speedup holds Table 4's speedup rows (embedding layer, FPGA vs
// CPU per batch), keyed by model, then config, then batch.
var PaperTable4Speedup = map[string]map[string]map[int]float64{
	"production-small": {
		"hbm":           {1: 3349.97, 64: 77.91, 256: 23.75, 512: 15.04, 1024: 10.59, 2048: 8.17},
		"hbm+cartesian": {1: 5665.07, 64: 131.76, 256: 40.16, 512: 25.44, 1024: 17.91, 2048: 13.82},
	},
	"production-large": {
		"hbm":           {1: 4531.23, 64: 91.29, 256: 30.94, 512: 19.36, 1024: 12.83, 2048: 11.07},
		"hbm+cartesian": {1: 6019.37, 64: 121.28, 256: 41.10, 512: 25.72, 1024: 17.04, 2048: 14.70},
	},
}

// PaperTable5 holds the Facebook-benchmark lookup study: modeled lookup
// latency (ns) and speedup for 8 and 12 tables across embedding dims.
type PaperTable5Cell struct {
	LookupNS float64
	Speedup  float64
}

var PaperTable5 = map[int]map[int]PaperTable5Cell{
	8: {
		4:  {334.5, 72.4},
		8:  {353.7, 68.4},
		16: {411.6, 58.8},
		32: {486.3, 49.7},
		64: {648.4, 37.3},
	},
	12: {
		4:  {648.5, 37.3},
		8:  {707.4, 34.2},
		16: {817.4, 29.6},
		32: {972.7, 24.8},
		64: {1296.9, 18.7},
	},
}

// PaperTable5Dims are the embedding vector lengths Table 5 sweeps.
var PaperTable5Dims = []int{4, 8, 16, 32, 64}

// PaperFigure7Breakpoints: lookup rounds tolerated without throughput loss
// at 16-bit precision (§5.4.1).
var PaperFigure7Breakpoints = map[string]int{
	"production-small": 6,
	"production-large": 4,
}

// PaperTable6 holds resource utilisation per model and precision.
type PaperTable6Row struct {
	FreqMHz  float64
	BRAM18K  int
	DSP48E   int
	FlipFlop int
	LUT      int
	URAM     int
}

var PaperTable6 = map[string]map[int]PaperTable6Row{
	"production-small": {
		16: {120, 1566, 4625, 683641, 485323, 642},
		32: {140, 1657, 5193, 764067, 568864, 770},
	},
	"production-large": {
		16: {120, 1566, 4625, 691042, 514517, 642},
		32: {135, 1721, 5193, 777527, 584220, 770},
	},
}

// Appendix cost study: hourly AWS rental prices.
const (
	PaperCPUServerUSDPerHour  = 1.82
	PaperFPGAServerUSDPerHour = 1.65
)
