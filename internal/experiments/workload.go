package experiments

import (
	"fmt"

	"microrec/internal/metrics"
	"microrec/internal/model"
)

// RunWorkload reproduces Figure 1's workload-specification panel: per model,
// the embedding stage's random-access character versus the FC tower's dense
// arithmetic.
func RunWorkload(opts Options) ([]*metrics.Table, error) {
	dlrm, err := model.DLRMRMC2(12, 32)
	if err != nil {
		return nil, err
	}
	specs := []*model.Spec{model.SmallProduction(), model.LargeProduction(), dlrm}

	t := metrics.NewTable("Figure 1: workload specification",
		"Model", "Tables", "Lookups/item", "Gathered B/item", "Avg vector B",
		"FC MOP/item", "FC params", "FC op/gathered B")
	for _, s := range specs {
		c, err := model.Characterize(s)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name,
			fmt.Sprint(c.Tables),
			fmt.Sprint(c.LookupsPerItem),
			fmt.Sprint(c.EmbeddingBytesItem),
			metrics.FmtF(c.AvgVectorBytes, 1),
			metrics.FmtF(float64(c.FCOpsPerItem)/1e6, 2),
			metrics.FmtBytes(c.FCParamBytes),
			metrics.FmtF(c.OpsPerByte, 0))
	}
	t.AddNote("tens of random accesses of tiny vectors per inference (memory-bound stage) " +
		"feeding a dense MLP (compute-bound stage) — Figure 1's dichotomy")

	h := metrics.NewTable("Figure 1b: embedding-table size distribution",
		"Model", "<= 64 KiB", "<= 1 MiB", "<= 64 MiB", "<= 1 GiB", "> 1 GiB", "Largest", "Smallest")
	for _, s := range specs {
		c, err := model.Characterize(s)
		if err != nil {
			return nil, err
		}
		row := []string{s.Name}
		for _, b := range c.SizeHistogram {
			row = append(row, fmt.Sprint(b.Count))
		}
		row = append(row, metrics.FmtBytes(c.LargestTableBytes), metrics.FmtBytes(c.SmallestTableBytes))
		h.AddRow(row...)
	}
	h.AddNote("sizes vary by five orders of magnitude (§2.2) — the asymmetry both the " +
		"Cartesian products and the hybrid-memory placement exploit")
	return []*metrics.Table{t, h}, nil
}
