package experiments

import (
	"fmt"

	"microrec/internal/core"
	"microrec/internal/metrics"
	"microrec/internal/model"
)

// Figure7Point is one (rounds, throughput) sample of the multi-round lookup
// robustness study.
type Figure7Point struct {
	Model      string
	Rounds     int
	LookupNS   float64
	ItemsPerS  float64
	Bottleneck string
}

// Figure7Series computes end-to-end throughput (16-bit fixed point) as the
// number of per-table lookup rounds grows from 1 to maxRounds (§5.4.1,
// Figure 7). Lookup work scales linearly with rounds; throughput stays flat
// while the DNN pipeline stages dominate, then degrades once the memory
// system becomes the bottleneck.
func Figure7Series(opts Options, maxRounds int) ([]Figure7Point, error) {
	opts = opts.withDefaults()
	if maxRounds < 1 {
		return nil, fmt.Errorf("experiments: maxRounds %d", maxRounds)
	}
	var out []Figure7Point
	for _, target := range []struct {
		spec *model.Spec
		cfg  core.Config
	}{
		{model.SmallProduction(), core.SmallFP16()},
		{model.LargeProduction(), core.LargeFP16()},
	} {
		base, err := planFor(target.spec, target.cfg.OnChipBanks, true, opts.Allocator)
		if err != nil {
			return nil, err
		}
		for rounds := 1; rounds <= maxRounds; rounds++ {
			// r rounds of retrieval multiply every channel's serialised
			// access count by r.
			lookupNS := base.Report.LatencyNS * float64(rounds)
			rep, err := target.cfg.Simulate(target.spec, lookupNS, opts.Items)
			if err != nil {
				return nil, err
			}
			out = append(out, Figure7Point{
				Model:      target.spec.Name,
				Rounds:     rounds,
				LookupNS:   lookupNS,
				ItemsPerS:  rep.SteadyThroughputItemsPerSec(),
				Bottleneck: rep.BottleneckStage,
			})
		}
	}
	return out, nil
}

// Figure7Breakpoint returns the largest round count whose throughput is
// within 0.5% of the single-round throughput, per model.
func Figure7Breakpoint(points []Figure7Point) map[string]int {
	base := map[string]float64{}
	bp := map[string]int{}
	for _, p := range points {
		if p.Rounds == 1 {
			base[p.Model] = p.ItemsPerS
		}
		if p.ItemsPerS >= base[p.Model]*0.995 {
			if p.Rounds > bp[p.Model] {
				bp[p.Model] = p.Rounds
			}
		}
	}
	return bp
}

// RunFigure7 renders the multi-round throughput series.
func RunFigure7(opts Options) ([]*metrics.Table, error) {
	points, err := Figure7Series(opts, 8)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Figure 7: end-to-end throughput under multi-round lookups (fp16)",
		"Model", "Rounds", "Lookup (ns)", "Throughput (items/s)", "Bottleneck")
	for _, p := range points {
		t.AddRow(p.Model, fmt.Sprint(p.Rounds),
			metrics.FmtF(p.LookupNS, 0),
			metrics.FmtSI(p.ItemsPerS),
			p.Bottleneck)
	}
	bp := Figure7Breakpoint(points)
	for m, rounds := range bp {
		t.AddNote("%s tolerates %d rounds without throughput loss (paper: %d)",
			m, rounds, PaperFigure7Breakpoints[m])
	}
	return []*metrics.Table{t}, nil
}
