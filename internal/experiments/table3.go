package experiments

import (
	"fmt"

	"microrec/internal/core"
	"microrec/internal/metrics"
	"microrec/internal/model"
)

// Table3Row mirrors one row of the paper's Table 3.
type Table3Row struct {
	Model        string
	Cartesian    bool
	Tables       int
	TablesInDRAM int
	DRAMRounds   int
	StoragePct   float64
	LatencyNS    float64
	LatencyPct   float64
}

// Table3Rows computes the Cartesian benefit/overhead study for both
// production models.
func Table3Rows(opts Options) ([]Table3Row, error) {
	opts = opts.withDefaults()
	var rows []Table3Row
	for _, target := range []struct {
		spec  *model.Spec
		banks int
	}{
		{model.SmallProduction(), core.SmallFP16().OnChipBanks},
		{model.LargeProduction(), core.LargeFP16().OnChipBanks},
	} {
		var baseLatency float64
		for _, cart := range []bool{false, true} {
			res, err := planFor(target.spec, target.banks, cart, opts.Allocator)
			if err != nil {
				return nil, err
			}
			if !cart {
				baseLatency = res.Report.LatencyNS
			}
			rows = append(rows, Table3Row{
				Model:        target.spec.Name,
				Cartesian:    cart,
				Tables:       len(res.Layout.Tables),
				TablesInDRAM: res.DRAMTables(),
				DRAMRounds:   res.Report.MaxOffChipRounds,
				StoragePct:   100 * (1 + res.Layout.OverheadFraction()),
				LatencyNS:    res.Report.LatencyNS,
				LatencyPct:   100 * res.Report.LatencyNS / baseLatency,
			})
		}
	}
	return rows, nil
}

// RunTable3 renders the study next to the paper's values.
func RunTable3(opts Options) ([]*metrics.Table, error) {
	rows, err := Table3Rows(opts)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Table 3: benefit and overhead of Cartesian products",
		"Model", "Config", "Table Num", "Tables in DRAM", "DRAM Rounds",
		"Storage", "Lookup Latency", "(paper)")
	for _, r := range rows {
		cfg := "Without Cartesian"
		if r.Cartesian {
			cfg = "With Cartesian"
		}
		ref := PaperTable3[r.Model][r.Cartesian]
		t.AddRow(r.Model, cfg,
			fmt.Sprint(r.Tables),
			fmt.Sprint(r.TablesInDRAM),
			fmt.Sprint(r.DRAMRounds),
			metrics.FmtF(r.StoragePct, 1)+"%",
			metrics.FmtF(r.LatencyPct, 1)+"%",
			fmt.Sprintf("%d tables, %d DRAM, %d rounds, %.1f%%, %.1f%%",
				ref.Tables, ref.TablesInDRAM, ref.DRAMRounds, ref.StoragePct, ref.LatencyPct))
	}
	t.AddNote("latency %% is relative to the same model without Cartesian products")
	return []*metrics.Table{t}, nil
}
