package experiments

import (
	"fmt"
	"math"

	"microrec/internal/core"
	"microrec/internal/fixedpoint"
	"microrec/internal/hotcache"
	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
	"microrec/internal/placement"
	"microrec/internal/quantize"
	"microrec/internal/workload"
)

// RunRule2Ablation validates heuristic rule 2 ("Cartesian products for table
// pairs of two", §3.4.2) by re-running the production placements with
// three-way products.
func RunRule2Ablation(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	t := metrics.NewTable("Ablation A3 (rule 2): product arity, pairs vs triples",
		"Model", "Arity", "Products", "Tables in DRAM", "Rounds", "Lookup (ns)", "Storage overhead")
	for _, target := range []struct {
		spec  *model.Spec
		banks int
	}{
		{model.SmallProduction(), core.SmallFP16().OnChipBanks},
		{model.LargeProduction(), core.LargeFP16().OnChipBanks},
	} {
		for _, arity := range []int{2, 3} {
			res, err := placement.Plan(target.spec, memsim.U280(target.banks), placement.Options{
				EnableCartesian: true,
				Allocator:       opts.Allocator,
				ProductArity:    arity,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(target.spec.Name, fmt.Sprint(arity),
				fmt.Sprint(res.Layout.NumMerged()),
				fmt.Sprint(res.DRAMTables()),
				fmt.Sprint(res.Report.MaxOffChipRounds),
				metrics.FmtF(res.Report.LatencyNS, 0),
				metrics.FmtPct(res.Layout.OverheadFraction()))
		}
	}
	t.AddNote("rule 2 validated: triple products balloon past HBM bank capacity and " +
		"crowd the two DDR channels, so no arity-3 merge beats leaving tables separate — " +
		"the search correctly falls back to zero products")
	return []*metrics.Table{t}, nil
}

// RunHostStream models the deployment concern of footnote 2: streaming input
// features from the host instead of caching them on the FPGA.
func RunHostStream(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	spec := model.SmallProduction()
	base := core.SmallFP16()
	plan, err := planFor(spec, base.OnChipBanks, true, opts.Allocator)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Extension E2: host-to-FPGA feature streaming (small model, fp16)",
		"Host link (GB/s)", "Stream stage (ns)", "Throughput (items/s)", "Loss vs cached", "Bottleneck")
	ref, err := base.Simulate(spec, plan.Report.LatencyNS, opts.Items)
	if err != nil {
		return nil, err
	}
	t.AddRow("cached on FPGA", "0", metrics.FmtSI(ref.SteadyThroughputItemsPerSec()), "0.0%", ref.BottleneckStage)
	bytes := float64(spec.NumLookups()*8 + spec.DenseDim*model.FloatBytes)
	for _, gbps := range []float64{16, 4, 1, 0.25, 0.05} {
		cfg := base
		cfg.HostStreamGBps = gbps
		rep, err := cfg.Simulate(spec, plan.Report.LatencyNS, opts.Items)
		if err != nil {
			return nil, err
		}
		loss := 1 - rep.SteadyThroughputItemsPerSec()/ref.SteadyThroughputItemsPerSec()
		t.AddRow(metrics.FmtF(gbps, 2),
			metrics.FmtF(bytes/gbps, 0),
			metrics.FmtSI(rep.SteadyThroughputItemsPerSec()),
			metrics.FmtPct(loss),
			rep.BottleneckStage)
	}
	t.AddNote("at PCIe-class bandwidth the deep pipeline hides streaming entirely " +
		"(footnote 2's prototype caveat costs nothing in steady state)")
	return []*metrics.Table{t}, nil
}

// RunHotCache evaluates the future-work extension of caching hot embedding
// rows on chip (cf. RecNMP, §6): hit rates and effective per-access latency
// under skewed vs uniform traffic.
func RunHotCache(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	spec := model.SmallProduction()
	const queries = 600
	hitNS := memsim.OnChipTiming.AccessNS(64)
	missNS := memsim.HBMTiming.AccessNS(64)
	t := metrics.NewTable("Extension E1: hot-row cache in front of DRAM lookups (small model)",
		"Distribution", "Cache", "Hit rate", "Effective access (ns)", "vs no cache")
	for _, dist := range []workload.Distribution{workload.Zipf, workload.Uniform} {
		for _, capBytes := range []int64{16 << 10, 256 << 10, 4 << 20} {
			gen, err := workload.NewGenerator(spec, dist, opts.Seed)
			if err != nil {
				return nil, err
			}
			qs, err := gen.Batch(queries)
			if err != nil {
				return nil, err
			}
			res, err := hotcache.Simulate(spec, qs, capBytes, hitNS, missNS, queries/4)
			if err != nil {
				return nil, err
			}
			t.AddRow(dist.String(),
				metrics.FmtBytes(capBytes),
				metrics.FmtPct(res.Stats.HitRate()),
				metrics.FmtF(res.EffectiveAccessNS, 0),
				metrics.FmtSpeedup(missNS/res.EffectiveAccessNS))
		}
	}
	t.AddNote("zipf-skewed production traffic makes even a small on-chip cache absorb " +
		"most random DRAM accesses; uniform traffic (the adversarial case) does not")
	return []*metrics.Table{t}, nil
}

// RunQuantCalibration evaluates the per-layer calibrated quantization
// extension against the paper's single global format at both widths.
func RunQuantCalibration(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: opts.Seed, MaxRowsPerTable: 128})
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(spec, workload.Uniform, opts.Seed+3)
	if err != nil {
		return nil, err
	}
	calib, err := gen.Batch(30)
	if err != nil {
		return nil, err
	}
	eval, err := gen.Batch(60)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Extension E3: per-layer calibrated quantization vs global format (small model)",
		"Width", "Scheme", "Max |err|", "Mean |err|")
	for _, width := range []int{16, 32} {
		globalFmt := fixedpoint.Fixed16
		if width == 32 {
			globalFmt = fixedpoint.Fixed32
		}
		layers := len(spec.LayerDims())
		global := quantize.Scheme{Width: width, Input: globalFmt}
		for l := 0; l < layers; l++ {
			global.Weights = append(global.Weights, globalFmt)
			global.Activations = append(global.Activations, globalFmt)
		}
		calibrated, err := quantize.Calibrate(params, calib, width)
		if err != nil {
			return nil, err
		}
		for _, cfg := range []struct {
			name   string
			scheme quantize.Scheme
		}{
			{fmt.Sprintf("global %v", globalFmt), global},
			{"calibrated per-layer", calibrated},
		} {
			m, err := quantize.New(params, cfg.scheme)
			if err != nil {
				return nil, err
			}
			var maxE, sumE float64
			for _, q := range eval {
				ref, err := m.Reference(q)
				if err != nil {
					return nil, err
				}
				got, err := m.Infer(q)
				if err != nil {
					return nil, err
				}
				e := math.Abs(float64(got - ref))
				sumE += e
				maxE = math.Max(maxE, e)
			}
			t.AddRow(fmt.Sprint(width), cfg.name,
				fmt.Sprintf("%.6f", maxE),
				fmt.Sprintf("%.6f", sumE/float64(len(eval))))
		}
	}
	t.AddNote("calibration picks the highest-resolution Q-format per tensor that " +
		"covers its observed dynamic range (with 2x headroom)")
	return []*metrics.Table{t}, nil
}
