package experiments

import (
	"fmt"

	"microrec/internal/core"
	"microrec/internal/cpu"
	"microrec/internal/metrics"
	"microrec/internal/sla"
)

// RunSLA quantifies §2.3's serving argument: the CPU baseline must trade
// batch size against the tens-of-milliseconds SLA, while MicroRec serves
// item-by-item at microsecond latency and sidesteps batching entirely.
func RunSLA(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()

	// Part 1: the feasible CPU operating points per SLA.
	t := metrics.NewTable("Serving study (a): largest CPU batch and throughput under an SLA",
		"Model", "SLA (ms)", "Max batch", "CPU latency (ms)", "CPU throughput (items/s)", "MicroRec latency")
	for _, target := range []struct {
		m   cpu.Model
		cfg core.Config
	}{
		{cpu.PaperSmall(), core.SmallFP16()},
		{cpu.PaperLarge(), core.LargeFP16()},
	} {
		plan, err := planFor(target.m.Spec, target.cfg.OnChipBanks, true, opts.Allocator)
		if err != nil {
			return nil, err
		}
		rep, err := target.cfg.Simulate(target.m.Spec, plan.Report.LatencyNS, opts.Items)
		if err != nil {
			return nil, err
		}
		for _, slaMS := range []float64{10, 20, 50, 100} {
			b := sla.MaxBatchUnderSLA(target.m, slaMS, 8192)
			var lat, tp string
			if b == 0 {
				lat, tp = "-", "infeasible"
			} else {
				lat = metrics.FmtF(target.m.EndToEndMS(b), 2)
				tp = metrics.FmtSI(target.m.ThroughputItemsPerSec(b))
			}
			t.AddRow(target.m.Spec.Name,
				metrics.FmtF(slaMS, 0),
				fmt.Sprint(b), lat, tp,
				fmt.Sprintf("%.1f µs (itemwise)", rep.LatencyNS/1e3))
		}
	}
	t.AddNote("the paper selects B=2048 as the best CPU configuration that still meets " +
		"tens-of-ms SLAs (Table 2 caption); MicroRec's item latency makes the SLA moot")

	// Part 2: tail latency of a batching queue at increasing offered load.
	q := metrics.NewTable("Serving study (b): batching-queue tail latency (small model, MaxBatch 2048, timeout 10 ms)",
		"Offered load (q/s)", "Mean batch", "p50 (ms)", "p99 (ms)", "Throughput (q/s)")
	m := cpu.PaperSmall()
	pol := sla.Policy{MaxBatch: 2048, TimeoutMS: 10}
	for _, rate := range []float64{2000, 10000, 40000, 70000} {
		res, err := sla.SimulateQueue(m, rate, 4000, pol, 0, opts.Seed)
		if err != nil {
			return nil, err
		}
		q.AddRow(metrics.FmtF(rate, 0),
			metrics.FmtF(res.MeanBatch, 1),
			metrics.FmtF(res.Latency.P50, 1),
			metrics.FmtF(res.Latency.P99, 1),
			metrics.FmtF(res.ThroughputPerSec, 0))
	}
	q.AddNote("queueing pushes CPU tail latency well past the batch service time as load grows")
	return []*metrics.Table{t, q}, nil
}
