package experiments

import (
	"fmt"

	"microrec/internal/metrics"
)

// Table2Row is one model's end-to-end comparison.
type Table2Row struct {
	Model     string
	Precision int
	// FPGA results.
	FPGALatencyUS float64
	FPGAItemsPerS float64
	FPGAGOPs      float64
	// Speedup over the CPU baseline per batch size.
	Speedup map[int]float64
}

// RunTable2 reproduces Table 2: end-to-end recommendation inference on the
// CPU baseline (batch 1–2048) versus MicroRec at both precisions.
func RunTable2(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	var out []*metrics.Table
	for _, pc := range productionCases() {
		if pc.Cfg.Precision.Bits != 16 {
			continue // handle both precisions inside the loop below
		}
		spec := pc.Spec
		cpuModel := pc.CPU
		t := metrics.NewTable(
			fmt.Sprintf("Table 2 (%s): end-to-end inference", spec.Name),
			"Metric", "B=1", "B=64", "B=256", "B=512", "B=1024", "B=2048", "FPGA fp16", "FPGA fp32")

		lat := []string{"Latency (ms)"}
		gop := []string{"Throughput (GOP/s)"}
		items := []string{"Throughput (items/s)"}
		for _, b := range PaperBatch {
			lat = append(lat, metrics.FmtF(cpuModel.EndToEndMS(b), 2))
			gop = append(gop, metrics.FmtF(cpuModel.ThroughputGOPs(b), 2))
			items = append(items, metrics.FmtSI(cpuModel.ThroughputItemsPerSec(b)))
		}

		type fpgaRes struct {
			latencyMS float64
			itemsPerS float64
			gops      float64
		}
		fpga := map[int]fpgaRes{}
		for _, prec := range []int{16, 32} {
			cfg := configFor(spec.Name, prec)
			plan, err := planFor(spec, cfg.OnChipBanks, true, opts.Allocator)
			if err != nil {
				return nil, err
			}
			rep, err := cfg.Simulate(spec, plan.Report.LatencyNS, opts.Items)
			if err != nil {
				return nil, err
			}
			itemsPerS := rep.SteadyThroughputItemsPerSec()
			fpga[prec] = fpgaRes{
				latencyMS: rep.LatencyNS / 1e6,
				itemsPerS: itemsPerS,
				gops:      float64(spec.OpsPerItem()) * itemsPerS / 1e9,
			}
		}
		lat = append(lat, fmt.Sprintf("%.2E", fpga[16].latencyMS), fmt.Sprintf("%.2E", fpga[32].latencyMS))
		gop = append(gop, metrics.FmtF(fpga[16].gops, 2), metrics.FmtF(fpga[32].gops, 2))
		items = append(items, metrics.FmtSI(fpga[16].itemsPerS), metrics.FmtSI(fpga[32].itemsPerS))
		t.AddRow(lat...)
		t.AddRow(gop...)
		t.AddRow(items...)

		// Speedup rows follow the paper's convention (Table 2 caption):
		// CPU batch latency divided by the FPGA's makespan for the same
		// number of items, including pipeline fill and drain.
		for _, prec := range []int{16, 32} {
			cfg := configFor(spec.Name, prec)
			plan, err := planFor(spec, cfg.OnChipBanks, true, opts.Allocator)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("Speedup: FPGA fp%d", prec)}
			for _, b := range PaperBatch {
				rep, err := cfg.Simulate(spec, plan.Report.LatencyNS, b)
				if err != nil {
					return nil, err
				}
				s := metrics.Speedup(cpuModel.EndToEndMS(b)*1e6, rep.MakespanNS)
				row = append(row, metrics.FmtSpeedup(s))
			}
			t.AddRow(row...)
		}
		ref := PaperTable2FPGA[spec.Name]
		t.AddNote("paper FPGA fp16: %.2E ms, %s items/s; fp32: %.2E ms, %s items/s",
			ref[16].LatencyMS, metrics.FmtSI(ref[16].ItemsPerS),
			ref[32].LatencyMS, metrics.FmtSI(ref[32].ItemsPerS))
		sp16 := PaperTable2Speedup[spec.Name][16][2048]
		sp32 := PaperTable2Speedup[spec.Name][32][2048]
		t.AddNote("paper speedup at B=2048: fp16 %.2fx, fp32 %.2fx", sp16, sp32)
		out = append(out, t)
	}
	return out, nil
}

// Table2Summary extracts the headline numbers programmatically (for tests
// and EXPERIMENTS.md): per model and precision, FPGA latency/throughput and
// the B=2048 speedup.
func Table2Summary(opts Options) (map[string]map[int]Table2Row, error) {
	opts = opts.withDefaults()
	out := map[string]map[int]Table2Row{}
	for _, pc := range productionCases() {
		spec, cfg := pc.Spec, pc.Cfg
		plan, err := planFor(spec, cfg.OnChipBanks, true, opts.Allocator)
		if err != nil {
			return nil, err
		}
		rep, err := cfg.Simulate(spec, plan.Report.LatencyNS, opts.Items)
		if err != nil {
			return nil, err
		}
		itemsPerS := rep.SteadyThroughputItemsPerSec()
		row := Table2Row{
			Model:         spec.Name,
			Precision:     cfg.Precision.Bits,
			FPGALatencyUS: rep.LatencyNS / 1e3,
			FPGAItemsPerS: itemsPerS,
			FPGAGOPs:      float64(spec.OpsPerItem()) * itemsPerS / 1e9,
			Speedup:       map[int]float64{},
		}
		// Per the Table 2 caption, speedups divide the CPU batch latency
		// by the FPGA makespan for the same batch (fill/drain included).
		for _, b := range PaperBatch {
			batchRep, err := cfg.Simulate(spec, plan.Report.LatencyNS, b)
			if err != nil {
				return nil, err
			}
			row.Speedup[b] = metrics.Speedup(pc.CPU.EndToEndMS(b)*1e6, batchRep.MakespanNS)
		}
		if out[spec.Name] == nil {
			out[spec.Name] = map[int]Table2Row{}
		}
		out[spec.Name][cfg.Precision.Bits] = row
	}
	return out, nil
}
