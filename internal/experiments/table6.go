package experiments

import (
	"fmt"

	"microrec/internal/core"
	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
	"microrec/internal/placement"
)

// RunTable6 renders the resource-utilisation model next to the paper's
// post-route numbers.
func RunTable6(opts Options) ([]*metrics.Table, error) {
	t := metrics.NewTable("Table 6: FPGA frequency & resource utilisation (Xilinx Alveo U280)",
		"Model", "Precision", "Freq (MHz)", "BRAM18K", "DSP48E", "FF", "LUT", "URAM", "Max rel err")
	for _, pc := range productionCases() {
		res, err := pc.Cfg.EstimateResources(pc.Spec)
		if err != nil {
			return nil, err
		}
		ref := PaperTable6[pc.Spec.Name][pc.Cfg.Precision.Bits]
		worst := 0.0
		for _, pair := range [][2]float64{
			{float64(res.BRAM18K), float64(ref.BRAM18K)},
			{float64(res.DSP48E), float64(ref.DSP48E)},
			{float64(res.FlipFlop), float64(ref.FlipFlop)},
			{float64(res.LUT), float64(ref.LUT)},
			{float64(res.URAM), float64(ref.URAM)},
		} {
			if e := metrics.RelErr(pair[0], pair[1]); e > worst {
				worst = e
			}
		}
		t.AddRow(pc.Spec.Name, precisionLabel(pc.Cfg.Precision),
			metrics.FmtF(res.ClockMHz, 0),
			fmt.Sprintf("%d (%d)", res.BRAM18K, ref.BRAM18K),
			fmt.Sprintf("%d (%d)", res.DSP48E, ref.DSP48E),
			fmt.Sprintf("%d (%d)", res.FlipFlop, ref.FlipFlop),
			fmt.Sprintf("%d (%d)", res.LUT, ref.LUT),
			fmt.Sprintf("%d (%d)", res.URAM, ref.URAM),
			metrics.FmtPct(worst))
	}
	t.AddNote("modeled (paper) — clocks are taken from Table 6; utilisation is modeled per component")

	u := metrics.NewTable("Table 6b: utilisation fractions of the U280",
		"Model", "Precision", "BRAM", "DSP", "FF", "LUT", "URAM")
	for _, pc := range productionCases() {
		res, err := pc.Cfg.EstimateResources(pc.Spec)
		if err != nil {
			return nil, err
		}
		f := res.Utilization()
		u.AddRow(pc.Spec.Name, precisionLabel(pc.Cfg.Precision),
			metrics.FmtPct(f["BRAM18K"]), metrics.FmtPct(f["DSP48E"]),
			metrics.FmtPct(f["FF"]), metrics.FmtPct(f["LUT"]), metrics.FmtPct(f["URAM"]))
	}
	return []*metrics.Table{t, u}, nil
}

// RunAXI renders the appendix's AXI-width trade-off: FIFO BRAM cost and
// clock degradation versus interface width, with the resulting throughput.
func RunAXI(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	spec := model.SmallProduction()
	base := core.SmallFP16()
	t := metrics.NewTable("Appendix: AXI interface width trade-off (small model, fp16)",
		"AXI bits", "FIFO BRAM18K", "share of U280 BRAM", "Clock (MHz)", "Lookup (ns)", "Throughput (items/s)")
	for _, width := range []int{32, 64, 128, 256, 512} {
		fifo, clock, err := core.AXIWidthTradeoff(width, base)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.ClockMHz = clock
		// Wider AXI shortens the streaming part of an access; row
		// activation and controller latency are unchanged.
		sys := memsim.U280(base.OnChipBanks)
		for i := range sys.Banks {
			if sys.Banks[i].Kind != memsim.OnChip {
				sys.Banks[i].Timing.PerByteNS *= 32.0 / float64(width)
			}
		}
		plan, err := placement.Plan(spec, sys, placement.Options{
			EnableCartesian: true,
			Allocator:       opts.Allocator,
		})
		if err != nil {
			return nil, err
		}
		rep, err := cfg.Simulate(spec, plan.Report.LatencyNS, opts.Items)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(width),
			fmt.Sprint(fifo),
			metrics.FmtPct(float64(fifo)/core.U280BRAM18K),
			metrics.FmtF(clock, 0),
			metrics.FmtF(plan.Report.LatencyNS, 0),
			metrics.FmtSI(rep.SteadyThroughputItemsPerSec()))
	}
	t.AddNote("the paper chooses 32-bit AXI: wider interfaces burn BRAM on FIFOs and " +
		"lower the clock, slowing the compute-bound pipeline (appendix)")
	return []*metrics.Table{t}, nil
}

// RunCost renders the appendix's cost comparison: dollars per billion
// inferences on AWS-rented hardware.
func RunCost(opts Options) ([]*metrics.Table, error) {
	opts = opts.withDefaults()
	sum, err := Table2Summary(opts)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Appendix: serving cost, CPU vs FPGA (AWS rental)",
		"Model", "Engine", "Throughput (items/s)", "$/hour", "$ per 1e9 inferences")
	for _, pc := range productionCases() {
		if pc.Cfg.Precision.Bits != 32 {
			continue // the appendix quotes the fixed-32 speedup
		}
		cpuTp := pc.CPU.ThroughputItemsPerSec(2048)
		fpgaTp := sum[pc.Spec.Name][32].FPGAItemsPerS
		cpuCost := PaperCPUServerUSDPerHour / (cpuTp * 3600) * 1e9
		fpgaCost := PaperFPGAServerUSDPerHour / (fpgaTp * 3600) * 1e9
		t.AddRow(pc.Spec.Name, "CPU (B=2048)", metrics.FmtSI(cpuTp),
			metrics.FmtF(PaperCPUServerUSDPerHour, 2), metrics.FmtF(cpuCost, 2))
		t.AddRow(pc.Spec.Name, "FPGA (fp32)", metrics.FmtSI(fpgaTp),
			metrics.FmtF(PaperFPGAServerUSDPerHour, 2), metrics.FmtF(fpgaCost, 2))
	}
	t.AddNote("paper: CPU server $%.2f/h vs FPGA $%.2f/h; with the fp32 speedup, FPGAs win long-term",
		PaperCPUServerUSDPerHour, PaperFPGAServerUSDPerHour)
	return []*metrics.Table{t}, nil
}
