package experiments

import (
	"fmt"

	"microrec/internal/core"
	"microrec/internal/cpu"
	"microrec/internal/metrics"
	"microrec/internal/model"
)

// Table4Result holds the embedding-layer comparison for one model.
type Table4Result struct {
	Model string
	// CPUms is the baseline embedding-layer latency per batch size.
	CPUms map[int]float64
	// HBMNS is the FPGA lookup latency without Cartesian products.
	HBMNS float64
	// CartesianNS is the FPGA lookup latency with Cartesian products.
	CartesianNS float64
	// Speedup[config][batch] is per-item CPU latency / FPGA latency.
	Speedup map[string]map[int]float64
}

// Table4Results computes the embedding-layer study for both production
// models. The speedup convention follows the paper: CPU per-item latency
// (batch latency / batch size) divided by the FPGA's per-item lookup latency.
func Table4Results(opts Options) ([]Table4Result, error) {
	opts = opts.withDefaults()
	var out []Table4Result
	for _, target := range []struct {
		spec  *model.Spec
		banks int
		cpum  cpu.Model
	}{
		{model.SmallProduction(), core.SmallFP16().OnChipBanks, cpu.PaperSmall()},
		{model.LargeProduction(), core.LargeFP16().OnChipBanks, cpu.PaperLarge()},
	} {
		res := Table4Result{
			Model:   target.spec.Name,
			CPUms:   map[int]float64{},
			Speedup: map[string]map[int]float64{"hbm": {}, "hbm+cartesian": {}},
		}
		for _, b := range PaperBatch {
			res.CPUms[b] = target.cpum.EmbeddingMS(b)
		}
		for _, cart := range []bool{false, true} {
			plan, err := planFor(target.spec, target.banks, cart, opts.Allocator)
			if err != nil {
				return nil, err
			}
			key := "hbm"
			if cart {
				key = "hbm+cartesian"
				res.CartesianNS = plan.Report.LatencyNS
			} else {
				res.HBMNS = plan.Report.LatencyNS
			}
			for _, b := range PaperBatch {
				perItemNS := res.CPUms[b] * 1e6 / float64(b)
				res.Speedup[key][b] = metrics.Speedup(perItemNS, plan.Report.LatencyNS)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// RunTable4 renders the embedding-layer study.
func RunTable4(opts Options) ([]*metrics.Table, error) {
	results, err := Table4Results(opts)
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, r := range results {
		t := metrics.NewTable(
			fmt.Sprintf("Table 4 (%s): embedding layer performance", r.Model),
			"Metric", "B=1", "B=64", "B=256", "B=512", "B=1024", "B=2048",
			"FPGA: HBM", "FPGA: HBM+Cartesian")
		lat := []string{"Latency (ms)"}
		for _, b := range PaperBatch {
			lat = append(lat, metrics.FmtF(r.CPUms[b], 2))
		}
		lat = append(lat,
			fmt.Sprintf("%.2E", r.HBMNS/1e6),
			fmt.Sprintf("%.2E", r.CartesianNS/1e6))
		t.AddRow(lat...)
		for _, key := range []string{"hbm", "hbm+cartesian"} {
			row := []string{"Speedup: " + key}
			for _, b := range PaperBatch {
				row = append(row, metrics.FmtSpeedup(r.Speedup[key][b]))
			}
			t.AddRow(row...)
		}
		ref := PaperTable4FPGA[r.Model]
		t.AddNote("paper lookup latency: HBM %.0f ns, HBM+Cartesian %.0f ns; "+
			"paper speedup at B=2048: %.2fx / %.2fx",
			ref["hbm"], ref["hbm+cartesian"],
			PaperTable4Speedup[r.Model]["hbm"][2048],
			PaperTable4Speedup[r.Model]["hbm+cartesian"][2048])
		tables = append(tables, t)
	}
	return tables, nil
}
