package experiments

import (
	"fmt"

	"microrec/internal/core"
	"microrec/internal/cpu"
	"microrec/internal/fixedpoint"
	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
	"microrec/internal/placement"
)

// Options configures experiment runs.
type Options struct {
	// Items is the stream length fed to the timing simulator
	// (default 10000 — long enough for steady state).
	Items int
	// Seed drives workload generation where applicable.
	Seed int64
	// Allocator selects the placement bank-assignment strategy
	// (default placement.RoundRobin, the paper-faithful one).
	Allocator placement.Allocator
}

func (o Options) withDefaults() Options {
	if o.Items == 0 {
		o.Items = 10000
	}
	return o
}

// productionCase bundles one (model, precision) evaluation target.
type productionCase struct {
	Spec *model.Spec
	Cfg  core.Config
	CPU  cpu.Model
}

func productionCases() []productionCase {
	small, large := model.SmallProduction(), model.LargeProduction()
	return []productionCase{
		{small, core.SmallFP16(), cpu.PaperSmall()},
		{small, core.SmallFP32(), cpu.PaperSmall()},
		{large, core.LargeFP16(), cpu.PaperLarge()},
		{large, core.LargeFP32(), cpu.PaperLarge()},
	}
}

// planFor runs the placement search for a model under the given options.
func planFor(spec *model.Spec, onChipBanks int, cart bool, alloc placement.Allocator) (*placement.Result, error) {
	sys := memsim.U280(onChipBanks)
	return placement.Plan(spec, sys, placement.Options{
		EnableCartesian: cart,
		Allocator:       alloc,
	})
}

// Runner is one reproducible experiment.
type Runner struct {
	// Name is the CLI identifier ("table2", "fig7", ...).
	Name string
	// Description says what the experiment regenerates.
	Description string
	// Run produces the rendered report tables.
	Run func(Options) ([]*metrics.Table, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"models", "Table 1: model specifications", func(o Options) ([]*metrics.Table, error) { return RunModels(o) }},
		{"workload", "Figure 1: workload specification", func(o Options) ([]*metrics.Table, error) { return RunWorkload(o) }},
		{"fig3", "Figure 3: embedding layer share of CPU inference", func(o Options) ([]*metrics.Table, error) { return RunFigure3(o) }},
		{"table2", "Table 2: end-to-end inference, CPU vs MicroRec", func(o Options) ([]*metrics.Table, error) { return RunTable2(o) }},
		{"table3", "Table 3: Cartesian-product benefit and overhead", func(o Options) ([]*metrics.Table, error) { return RunTable3(o) }},
		{"table4", "Table 4: embedding-layer lookup performance", func(o Options) ([]*metrics.Table, error) { return RunTable4(o) }},
		{"table5", "Table 5: Facebook DLRM-RMC2 lookup speedups", func(o Options) ([]*metrics.Table, error) { return RunTable5(o) }},
		{"fig7", "Figure 7: throughput under multi-round lookups", func(o Options) ([]*metrics.Table, error) { return RunFigure7(o) }},
		{"table6", "Table 6: FPGA resource utilisation", func(o Options) ([]*metrics.Table, error) { return RunTable6(o) }},
		{"axi", "Appendix: AXI interface width trade-off", func(o Options) ([]*metrics.Table, error) { return RunAXI(o) }},
		{"cost", "Appendix: CPU vs FPGA serving cost", func(o Options) ([]*metrics.Table, error) { return RunCost(o) }},
		{"allocator", "Ablation A1: round-robin vs LPT allocation, heuristic vs brute force", func(o Options) ([]*metrics.Table, error) { return RunAllocatorAblation(o) }},
		{"quant", "Ablation A2: fixed-point quantization error", func(o Options) ([]*metrics.Table, error) { return RunQuantAblation(o) }},
		{"rule2", "Ablation A3: product arity (validates heuristic rule 2)", func(o Options) ([]*metrics.Table, error) { return RunRule2Ablation(o) }},
		{"hotcache", "Extension E1: hot-row caching under skewed traffic", func(o Options) ([]*metrics.Table, error) { return RunHotCache(o) }},
		{"hoststream", "Extension E2: host-to-FPGA feature streaming", func(o Options) ([]*metrics.Table, error) { return RunHostStream(o) }},
		{"quantcal", "Extension E3: per-layer calibrated quantization", func(o Options) ([]*metrics.Table, error) { return RunQuantCalibration(o) }},
		{"sla", "Serving study: batch size vs latency SLA (motivates §2.3)", func(o Options) ([]*metrics.Table, error) { return RunSLA(o) }},
	}
}

// Find returns the runner with the given name.
func Find(name string) (Runner, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// RunModels prints Table 1: the specifications of the evaluated models.
func RunModels(opts Options) ([]*metrics.Table, error) {
	t := metrics.NewTable("Table 1: Specification of the production models",
		"Model", "Table Num", "Feat Len", "Hidden-Layer", "Size")
	for _, spec := range []*model.Spec{model.SmallProduction(), model.LargeProduction()} {
		t.AddRow(spec.Name,
			fmt.Sprint(len(spec.Tables)),
			fmt.Sprint(spec.FeatureLen()),
			fmt.Sprint(spec.Hidden),
			metrics.FmtBytes(spec.TotalBytes()))
	}
	dlrm, err := model.DLRMRMC2(8, 32)
	if err != nil {
		return nil, err
	}
	t.AddRow(dlrm.Name,
		fmt.Sprint(len(dlrm.Tables)),
		fmt.Sprint(dlrm.FeatureLen()),
		fmt.Sprint(dlrm.Hidden),
		metrics.FmtBytes(dlrm.TotalBytes()))
	t.AddNote("paper: small = 47 tables / 352 feat / 1.3 GB; large = 98 / 876 / 15.1 GB")
	return []*metrics.Table{t}, nil
}

// RunFigure3 reproduces Figure 3: the embedding layer's share of CPU
// inference latency at small batch sizes.
func RunFigure3(opts Options) ([]*metrics.Table, error) {
	t := metrics.NewTable("Figure 3: embedding layer cost during CPU inference",
		"Model", "Batch", "Embedding (ms)", "End-to-end (ms)", "Embedding share")
	for _, m := range []cpu.Model{cpu.PaperSmall(), cpu.PaperLarge()} {
		for _, b := range []int{1, 64} {
			t.AddRow(m.Spec.Name, fmt.Sprint(b),
				metrics.FmtF(m.EmbeddingMS(b), 2),
				metrics.FmtF(m.EndToEndMS(b), 2),
				metrics.FmtPct(m.EmbeddingShare(b)))
		}
	}
	t.AddNote("paper's message: the embedding layer dominates at small batches and " +
		"B=1 vs B=64 latencies are close (operator-call overhead)")
	return []*metrics.Table{t}, nil
}

// precisionLabel renders "fp16"/"fp32" in the paper's Table 2 style.
func precisionLabel(f fixedpoint.Format) string { return fmt.Sprintf("fp%d", f.Bits) }

// configFor maps (model name, precision bits) to the calibrated build.
func configFor(modelName string, bits int) core.Config {
	f := fixedpoint.Fixed16
	if bits == 32 {
		f = fixedpoint.Fixed32
	}
	return core.ConfigFor(modelName, f)
}
