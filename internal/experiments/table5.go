package experiments

import (
	"fmt"
	"math"

	"microrec/internal/cpu"
	"microrec/internal/memsim"
	"microrec/internal/metrics"
	"microrec/internal/model"
)

// Table5Cell is one modeled DLRM-RMC2 lookup configuration.
type Table5Cell struct {
	Tables   int
	Dim      int
	Rounds   int
	LookupNS float64
	Speedup  float64
}

// Table5Cells computes the Facebook-benchmark study (§5.4.2): DLRM-RMC2 with
// 8 or 12 tables, each looked up 4 times, across embedding dims 4–64.
//
// Following the paper's setup, each table fits one HBM bank and the 32–48
// lookups are spread over the 32 HBM pseudo-channels (tables are replicated
// across banks so one retrieval round covers 32 parallel accesses); no
// Cartesian products are applied. The lookup latency is therefore
// ceil(lookups/32) serialised access rounds.
func Table5Cells(opts Options) ([]Table5Cell, error) {
	var out []Table5Cell
	const hbmChannels = 32
	for _, numTables := range []int{8, 12} {
		spec, err := model.DLRMRMC2(numTables, 4)
		if err != nil {
			return nil, err
		}
		lookups := spec.NumLookups()
		rounds := (lookups + hbmChannels - 1) / hbmChannels
		for _, dim := range PaperTable5Dims {
			ns := memsim.RoundsLatencyNS(memsim.HBMTiming, rounds, dim*model.FloatBytes)
			out = append(out, Table5Cell{
				Tables:   numTables,
				Dim:      dim,
				Rounds:   rounds,
				LookupNS: ns,
				Speedup:  metrics.Speedup(cpu.FacebookRMC2EmbeddingNSPerItem, ns),
			})
		}
	}
	return out, nil
}

// RunTable5 renders the DLRM-RMC2 comparison next to the paper's cells.
func RunTable5(opts Options) ([]*metrics.Table, error) {
	cells, err := Table5Cells(opts)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Table 5: embedding lookup vs Facebook DLRM-RMC2 baseline",
		"Tables", "Dim", "Rounds", "Lookup (ns)", "Speedup", "Paper (ns)", "Paper speedup", "Rel err")
	var worst float64
	for _, c := range cells {
		ref := PaperTable5[c.Tables][c.Dim]
		relErr := metrics.RelErr(c.LookupNS, ref.LookupNS)
		worst = math.Max(worst, relErr)
		t.AddRow(
			fmt.Sprint(c.Tables),
			fmt.Sprint(c.Dim),
			fmt.Sprint(c.Rounds),
			metrics.FmtF(c.LookupNS, 1),
			metrics.FmtSpeedup(c.Speedup),
			metrics.FmtF(ref.LookupNS, 1),
			metrics.FmtSpeedup(ref.Speedup),
			metrics.FmtPct(relErr))
	}
	t.AddNote("baseline: %.1f µs/item embedding time (2-socket Broadwell, batch 256)",
		cpu.FacebookRMC2EmbeddingNSPerItem/1e3)
	t.AddNote("worst relative error vs paper: %s", metrics.FmtPct(worst))
	return []*metrics.Table{t}, nil
}
