package router

import (
	"errors"
	"sync/atomic"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/serving"
	"microrec/internal/tieredstore"
)

// HotEngine adapts any serving.Engine into a serving.Reloadable one: every
// seam method delegates through an atomic pointer, and Reload swaps the
// delegate under live traffic — the in-place model-refresh path
// Router.Reload drives. The replacement must be timing- and
// geometry-compatible with the engine it replaces (refreshed parameters, not
// a different architecture): the server memoises timing reports and sizes
// planes per batch, and neither is re-derived on reload. A reload takes
// effect at stage-call granularity — a plane gathered by the old engine may
// finish its FC stack on the new one, which the compatibility contract makes
// benign.
//
// Capability forwarding: HotEngine always implements the optional Tiered and
// Prefetcher capabilities, reporting ok=false (and a no-op prefetch) while
// the current delegate lacks them — the pattern the capability docs on the
// Engine seam prescribe for wrappers.
type HotEngine struct {
	cur atomic.Pointer[engineBox]
}

// engineBox exists because atomic.Pointer needs a concrete pointee; it pins
// one delegate.
type engineBox struct{ eng serving.Engine }

// Compile-time seam checks: the wrapper is a full Engine and carries the
// Reloadable plus forwarded tier capabilities.
var (
	_ serving.Engine     = (*HotEngine)(nil)
	_ serving.Reloadable = (*HotEngine)(nil)
	_ serving.Tiered     = (*HotEngine)(nil)
	_ serving.Prefetcher = (*HotEngine)(nil)
)

// NewHotEngine wraps an engine for hot reload.
func NewHotEngine(eng serving.Engine) (*HotEngine, error) {
	if eng == nil {
		return nil, errors.New("router: nil engine")
	}
	h := &HotEngine{}
	h.cur.Store(&engineBox{eng: eng})
	return h, nil
}

// Reload implements serving.Reloadable: subsequent seam calls hit next. The
// caller owns the retired engine's teardown (and must keep it alive until
// in-flight planes drain — in practice until the next server-level quiesce).
func (h *HotEngine) Reload(next serving.Engine) error {
	if next == nil {
		return errors.New("router: reload with nil engine")
	}
	h.cur.Store(&engineBox{eng: next})
	return nil
}

// Current returns the live delegate.
func (h *HotEngine) Current() serving.Engine { return h.cur.Load().eng }

// pipeline.StageEngine delegation.

// EnsurePlane implements the Engine seam by delegation.
func (h *HotEngine) EnsurePlane(s *core.BatchScratch, b int) { h.Current().EnsurePlane(s, b) }

// GatherIntoPlane implements the Engine seam by delegation.
func (h *HotEngine) GatherIntoPlane(queries []embedding.Query, s *core.BatchScratch) {
	h.Current().GatherIntoPlane(queries, s)
}

// DenseFromPlane implements the Engine seam by delegation.
func (h *HotEngine) DenseFromPlane(b int, s *core.BatchScratch) { h.Current().DenseFromPlane(b, s) }

// TailFromPlane implements the Engine seam by delegation.
func (h *HotEngine) TailFromPlane(b int, s *core.BatchScratch, dst []float32) {
	h.Current().TailFromPlane(b, s, dst)
}

// ValidateQuery implements the Engine seam by delegation.
func (h *HotEngine) ValidateQuery(q embedding.Query) error { return h.Current().ValidateQuery(q) }

// InferBatchValidated implements the Engine seam by delegation.
func (h *HotEngine) InferBatchValidated(queries []embedding.Query, dst []float32, scratch *core.BatchScratch) ([]float32, error) {
	return h.Current().InferBatchValidated(queries, dst, scratch)
}

// TimingAt implements the Engine seam by delegation.
func (h *HotEngine) TimingAt(items int, lookupNS float64) (core.TimingReport, error) {
	return h.Current().TimingAt(items, lookupNS)
}

// LookupNS implements the Engine seam by delegation.
func (h *HotEngine) LookupNS() float64 { return h.Current().LookupNS() }

// EffectiveLookupNS implements the Engine seam by delegation.
func (h *HotEngine) EffectiveLookupNS() float64 { return h.Current().EffectiveLookupNS() }

// HotCacheHitRate implements the Engine seam by delegation.
func (h *HotEngine) HotCacheHitRate() (float64, bool) { return h.Current().HotCacheHitRate() }

// HotCache implements the Engine seam by delegation.
func (h *HotEngine) HotCache() (core.HotCacheInfo, bool) { return h.Current().HotCache() }

// Tier forwards the delegate's Tiered capability (ok=false when absent).
func (h *HotEngine) Tier() (tieredstore.Snapshot, bool) {
	if te, ok := h.Current().(serving.Tiered); ok {
		return te.Tier()
	}
	return tieredstore.Snapshot{}, false
}

// PrefetchBatch forwards the delegate's Prefetcher capability (no-op when
// absent).
func (h *HotEngine) PrefetchBatch(queries []embedding.Query) {
	if pf, ok := h.Current().(serving.Prefetcher); ok {
		pf.PrefetchBatch(queries)
	}
}
