package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/loadgen"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
	"microrec/internal/serving"
	"microrec/internal/workload"
)

// The router must satisfy the load harness's target seam: that is what lets
// bench, loadtest and the HTTP mux drive a replicated tier exactly like a
// single server.
var _ loadgen.Target = (*Router)(nil)

// testSpec is a small custom model: cheap to materialise per replica, with
// enough tables/lookups that queries hash well and the hot caches see a
// non-trivial row space.
func testSpec() *model.Spec {
	tables := make([]model.TableSpec, 4)
	for i := range tables {
		tables[i] = model.TableSpec{
			ID:      i,
			Name:    fmt.Sprintf("rt-t%d", i),
			Rows:    50000,
			Dim:     8,
			Lookups: 2,
		}
	}
	return &model.Spec{Name: "router-test", Tables: tables, DenseDim: 4, Hidden: []int{32, 16, 8}}
}

// buildEngine assembles a real engine over testSpec, mirroring the cluster
// test helper. seed controls the materialised parameters: equal seeds give
// bit-identical engines (the replica homogeneity the tier assumes), distinct
// seeds model a new parameter snapshot for swap/reload tests.
func buildEngine(t testing.TB, spec *model.Spec, hotCacheBytes int64, seed int64) *core.Engine {
	t.Helper()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: seed, MaxRowsPerTable: 2048})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ConfigFor(spec.Name, core.SmallFP16().Precision)
	cfg.HotCacheBytes = hotCacheBytes
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func zipfPool(t testing.TB, spec *model.Spec, n int, seed int64) []embedding.Query {
	t.Helper()
	gen, err := workload.NewGenerator(spec, workload.Zipf, seed)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Batch(n)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func newRouter(t testing.TB, p Policy) *Router {
	t.Helper()
	rt, err := New(Options{Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

// fakeEngine mirrors the serving overload tests' deterministic fake: the
// dense stage sleeps a fixed per-batch service time, so load-policy tests
// can manufacture slow and fast replicas without depending on host speed.
type fakeEngine struct {
	service time.Duration
	served  atomic.Uint64
}

func (e *fakeEngine) ValidateQuery(q embedding.Query) error {
	if len(q) == 0 {
		return errors.New("fakeEngine: empty query")
	}
	return nil
}

func (e *fakeEngine) EnsurePlane(s *core.BatchScratch, b int)                         {}
func (e *fakeEngine) GatherIntoPlane(queries []embedding.Query, s *core.BatchScratch) {}
func (e *fakeEngine) DenseFromPlane(b int, s *core.BatchScratch) {
	time.Sleep(e.service)
}
func (e *fakeEngine) TailFromPlane(b int, s *core.BatchScratch, dst []float32) {
	e.served.Add(uint64(b))
	for i := range dst[:b] {
		dst[i] = 0.5
	}
}
func (e *fakeEngine) InferBatchValidated(queries []embedding.Query, dst []float32, s *core.BatchScratch) ([]float32, error) {
	time.Sleep(e.service)
	e.served.Add(uint64(len(queries)))
	for i := range queries {
		dst[i] = 0.5
	}
	return dst[:len(queries)], nil
}
func (e *fakeEngine) TimingAt(items int, lookupNS float64) (core.TimingReport, error) {
	ns := float64(e.service.Nanoseconds())
	return core.TimingReport{Items: items, LatencyNS: ns, MakespanNS: ns, LookupNS: lookupNS}, nil
}
func (e *fakeEngine) LookupNS() float64                   { return 1000 }
func (e *fakeEngine) EffectiveLookupNS() float64          { return 1000 }
func (e *fakeEngine) HotCacheHitRate() (float64, bool)    { return 0, false }
func (e *fakeEngine) HotCache() (core.HotCacheInfo, bool) { return core.HotCacheInfo{}, false }

var fakeQuery = embedding.Query{[]int64{1}}

func fakeOpts() serving.Options {
	return serving.Options{
		Batching:  serving.BatchingOptions{MaxBatch: 4, Window: 50 * time.Microsecond},
		Pipeline:  serving.PipelineOptions{Depth: 2},
		Admission: serving.AdmissionOptions{QueueDepth: 64},
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %q, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(Options{Policy: "bogus"}); err == nil {
		t.Fatal("New accepted a bogus policy")
	}
}

func TestQueryHashStableAndSpread(t *testing.T) {
	q := embedding.Query{{1, 2}, {3}, {4, 5}}
	if queryHash(q) != queryHash(embedding.Query{{1, 2}, {3}, {4, 5}}) {
		t.Fatal("equal queries hash differently")
	}
	if queryHash(q) == queryHash(embedding.Query{{1, 2}, {3}, {4, 6}}) {
		t.Fatal("distinct queries collide on a trivial perturbation")
	}
}

// TestRendezvousMinimalRemap is the property the affinity policy buys from
// rendezvous hashing: draining one replica re-homes only the keys whose
// maximum weight was on it; every other key keeps its replica (and so its
// warm cache).
func TestRendezvousMinimalRemap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ids := []int{1, 2, 3}
	moved := 0
	for i := 0; i < 2000; i++ {
		h := rng.Uint64()
		home := func(ids []int) int {
			best, bestW := ids[0], rendezvousWeight(h, ids[0])
			for _, id := range ids[1:] {
				if w := rendezvousWeight(h, id); w > bestW {
					best, bestW = id, w
				}
			}
			return best
		}
		before := home(ids)
		after := home([]int{1, 3})
		if before != 2 && after != before {
			t.Fatalf("key %d re-homed %d→%d though replica 2 held neither", h, before, after)
		}
		if before == 2 {
			moved++
		}
	}
	if moved < 400 || moved > 950 {
		t.Fatalf("replica 2 held %d/2000 keys; want roughly a third", moved)
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	rt := newRouter(t, RoundRobin)
	for i := 0; i < 3; i++ {
		if _, err := rt.Add(&fakeEngine{}, fakeOpts(), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if _, err := rt.Submit(context.Background(), fakeQuery); err != nil {
			t.Fatal(err)
		}
	}
	for _, rs := range rt.Stats().Router.PerReplica {
		if rs.Routed != 100 {
			t.Fatalf("replica %d routed %d under round-robin; want 100", rs.ID, rs.Routed)
		}
	}
}

// TestLeastLoadedBoundsOccupancyUnderSkew manufactures skew with a 100x
// service-time gap between two replicas. Least-loaded must shift traffic to
// the fast replica once the slow one's queue grows, instead of letting the
// blind half of a round-robin split pile up behind the slow engine.
func TestLeastLoadedBoundsOccupancyUnderSkew(t *testing.T) {
	rt := newRouter(t, LeastLoaded)
	slow := &fakeEngine{service: 10 * time.Millisecond}
	fast := &fakeEngine{service: 100 * time.Microsecond}
	slowID, err := rt.Add(slow, fakeOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Add(fast, fakeOpts(), nil); err != nil {
		t.Fatal(err)
	}
	const total = 240
	var wg sync.WaitGroup
	var failures atomic.Uint64
	maxSlowScore := 0
	var scoreMu sync.Mutex
	done := make(chan struct{})
	go func() {
		// Sample the slow replica's load score while traffic flows: bounded
		// occupancy is the property, so observe it live, not post-hoc.
		for {
			select {
			case <-done:
				return
			case <-time.After(200 * time.Microsecond):
			}
			set := rt.set.Load()
			if rep := set.find(slowID); rep != nil {
				s := rep.srv.LoadScore()
				scoreMu.Lock()
				if s > maxSlowScore {
					maxSlowScore = s
				}
				scoreMu.Unlock()
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/8; i++ {
				if _, err := rt.Submit(context.Background(), fakeQuery); err != nil {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d submits failed", n)
	}
	slowServed := slow.served.Load()
	fastServed := fast.served.Load()
	if fastServed < 3*slowServed {
		t.Fatalf("least-loaded sent %d to the fast replica vs %d to the slow one; want a strong skew", fastServed, slowServed)
	}
	scoreMu.Lock()
	peak := maxSlowScore
	scoreMu.Unlock()
	// The slow replica's backlog must stay bounded well below a full queue:
	// once one batch is in flight and another is queued its score exceeds
	// the fast replica's, and routing moves on.
	if peak > 64 {
		t.Fatalf("slow replica load score peaked at %d; least-loaded should bound it", peak)
	}
}

// TestRoutedBitIdenticalToSingleReplica is the tier's correctness anchor:
// for every policy and replica count, routing changes only *where* a query
// runs, never its prediction.
func TestRoutedBitIdenticalToSingleReplica(t *testing.T) {
	spec := testSpec()
	eng := buildEngine(t, spec, 0, 1)
	pool := zipfPool(t, spec, 96, 3)
	sopts := serving.Options{
		Batching: serving.BatchingOptions{MaxBatch: 8, Window: 100 * time.Microsecond},
	}

	ref, err := serving.New(eng, sopts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, len(pool))
	for i, q := range pool {
		res, err := ref.Submit(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.CTR
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	for _, policy := range Policies() {
		for replicas := 1; replicas <= 3; replicas++ {
			t.Run(fmt.Sprintf("%s/replicas=%d", policy, replicas), func(t *testing.T) {
				rt := newRouter(t, policy)
				for i := 0; i < replicas; i++ {
					// The engine is immutable and safely shared: replicas
					// differ only in serving composition, exactly like
					// same-seed engines would.
					if _, err := rt.Add(eng, sopts, nil); err != nil {
						t.Fatal(err)
					}
				}
				got := make([]float32, len(pool))
				var wg sync.WaitGroup
				var failed atomic.Uint64
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := w; i < len(pool); i += 4 {
							res, err := rt.Submit(context.Background(), pool[i])
							if err != nil {
								failed.Add(1)
								return
							}
							got[i] = res.CTR
						}
					}(w)
				}
				wg.Wait()
				if n := failed.Load(); n != 0 {
					t.Fatalf("%d submits failed", n)
				}
				for i := range pool {
					if got[i] != want[i] {
						t.Fatalf("query %d: routed CTR %v != single-replica CTR %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// measureHitRate drives a 3-replica tier over a Zipf pool under one policy
// and returns the post-warmup pooled hit rate. Each replica's hot cache is
// sized to roughly half the pool's whole row working set: a replica serving
// the full key space cycles an LRU it cannot hold, while a replica serving
// an affinity slice holds its share with room to spare — the N·C effect the
// affinity policy exists to buy.
func measureHitRate(t *testing.T, policy Policy, spec *model.Spec, pool []embedding.Query, capacity int64) float64 {
	t.Helper()
	rt := newRouter(t, policy)
	for i := 0; i < 3; i++ {
		eng := buildEngine(t, spec, capacity, 1)
		if _, err := rt.Add(eng, serving.Options{
			Batching: serving.BatchingOptions{MaxBatch: 1},
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Shuffle the pool each pass: with a fixed order, round-robin would see
	// the same third of the pool on each replica every pass and degenerate
	// into a static partition, hiding exactly the effect under test.
	rng := rand.New(rand.NewSource(11))
	order := rng.Perm(len(pool))
	run := func(passes int) {
		for p := 0; p < passes; p++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				if _, err := rt.Submit(context.Background(), pool[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	run(2) // warm up, uncounted
	rt.MarkHitRateBaseline()
	run(6)
	st := rt.Stats()
	if st.Router == nil {
		t.Fatal("router stats section missing")
	}
	return st.Router.AggregateHitRate
}

// workingSetBytes probes the pool's whole-row working set: one oversized
// cache, one pass, read back the used bytes.
func workingSetBytes(t *testing.T, spec *model.Spec, pool []embedding.Query) int64 {
	t.Helper()
	probe := buildEngine(t, spec, 16<<20, 1)
	if _, err := probe.Infer(pool); err != nil {
		t.Fatal(err)
	}
	info, ok := probe.HotCache()
	if !ok || info.UsedBytes == 0 {
		t.Fatal("probe engine has no usable hot cache")
	}
	return info.UsedBytes
}

// TestAffinityBeatsRoundRobinOnZipf is the acceptance property: on a
// Zipf-skewed workload over 3 replicas, hot-key affinity's aggregate
// hot-cache hit rate must beat round-robin's — the measured form of the
// effective N·C cache argument.
func TestAffinityBeatsRoundRobinOnZipf(t *testing.T) {
	spec := testSpec()
	pool := zipfPool(t, spec, 360, 7)
	capacity := workingSetBytes(t, spec, pool) / 2

	rr := measureHitRate(t, RoundRobin, spec, pool, capacity)
	aff := measureHitRate(t, Affinity, spec, pool, capacity)
	t.Logf("aggregate hit rate: round-robin %.3f, affinity %.3f", rr, aff)
	if aff <= rr+0.05 {
		t.Fatalf("affinity hit rate %.3f does not beat round-robin %.3f by a visible margin", aff, rr)
	}
}

// TestHitRateDeltaAfterPolicySwitch mirrors the loadtest wiring: calibrate
// under round-robin, mark the baseline, switch to affinity, and read the
// lift out of the /stats router section.
func TestHitRateDeltaAfterPolicySwitch(t *testing.T) {
	spec := testSpec()
	pool := zipfPool(t, spec, 360, 7)
	capacity := workingSetBytes(t, spec, pool) / 2

	rt := newRouter(t, RoundRobin)
	for i := 0; i < 3; i++ {
		eng := buildEngine(t, spec, capacity, 1)
		if _, err := rt.Add(eng, serving.Options{
			Batching: serving.BatchingOptions{MaxBatch: 1},
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(13))
	order := rng.Perm(len(pool))
	run := func(passes int) {
		for p := 0; p < passes; p++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, i := range order {
				if _, err := rt.Submit(context.Background(), pool[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	run(4)
	rt.MarkHitRateBaseline()
	if err := rt.SetPolicy(Affinity); err != nil {
		t.Fatal(err)
	}
	run(6)
	st := rt.Stats()
	rs := st.Router
	if rs == nil {
		t.Fatal("router stats section missing")
	}
	if rs.Policy != string(Affinity) {
		t.Fatalf("policy %q after switch", rs.Policy)
	}
	if rs.HitRateDelta <= 0.02 {
		t.Fatalf("hit-rate delta %.3f after switching to affinity; want a visible lift (baseline %.3f, aggregate %.3f)",
			rs.HitRateDelta, rs.BaselineHitRate, rs.AggregateHitRate)
	}
	policies := map[string]uint64{}
	for _, d := range rs.Decisions {
		policies[d.Policy] = d.Total
	}
	if policies[string(RoundRobin)] == 0 || policies[string(Affinity)] == 0 {
		t.Fatalf("decision scoreboard %v should carry both phases", policies)
	}
}

// TestDrainUnderLiveTraffic is the zero-drop acceptance property: removing a
// replica mid-traffic must not fail a single submitted request (race-tested;
// run under -race in CI).
func TestDrainUnderLiveTraffic(t *testing.T) {
	rt := newRouter(t, RoundRobin)
	engines := make([]*fakeEngine, 3)
	for i := range engines {
		engines[i] = &fakeEngine{service: 200 * time.Microsecond}
		if _, err := rt.Add(engines[i], fakeOpts(), nil); err != nil {
			t.Fatal(err)
		}
	}
	const perWorker = 250
	var wg sync.WaitGroup
	var failures atomic.Uint64
	var completed atomic.Uint64
	start := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				if _, err := rt.Submit(context.Background(), fakeQuery); err != nil {
					failures.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}()
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let traffic build before the drain
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Drain(ctx, 2); err != nil {
		t.Fatalf("drain under traffic: %v", err)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d submits failed across the drain; want 0 dropped", n)
	}
	if got := completed.Load(); got != 6*perWorker {
		t.Fatalf("completed %d of %d", got, 6*perWorker)
	}
	if rt.Replicas() != 2 {
		t.Fatalf("%d active replicas after drain; want 2", rt.Replicas())
	}
	rs := rt.Stats().Router
	if rs.Drained != 1 {
		t.Fatalf("drained counter %d; want 1", rs.Drained)
	}
	if err := rt.Drain(ctx, 2); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("second drain of replica 2: %v; want ErrUnknownReplica", err)
	}
}

// TestSwapReplacesModelUnderTraffic swaps a replica to a new parameter
// snapshot (different seed) under live traffic: no request fails, the
// replacement joins before the old replica leaves, and post-swap traffic can
// hit the new model.
func TestSwapReplacesModelUnderTraffic(t *testing.T) {
	spec := testSpec()
	engA := buildEngine(t, spec, 0, 1)
	engB := buildEngine(t, spec, 0, 2)
	pool := zipfPool(t, spec, 32, 5)
	sopts := serving.Options{Batching: serving.BatchingOptions{MaxBatch: 8, Window: 100 * time.Microsecond}}

	rt := newRouter(t, RoundRobin)
	oldID, err := rt.Add(engA, sopts, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rt.Submit(context.Background(), pool[i%len(pool)]); err != nil {
				failures.Add(1)
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	newID, err := rt.Swap(ctx, oldID, engB, sopts, nil)
	if err != nil {
		t.Fatalf("swap: %v", err)
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d submits failed across the swap", n)
	}
	if newID == oldID || rt.Replicas() != 1 {
		t.Fatalf("swap left ids (%d→%d) and %d replicas", oldID, newID, rt.Replicas())
	}
	// Post-swap traffic serves the new model's predictions.
	res, err := rt.Submit(context.Background(), pool[0])
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := engB.Infer(pool[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res.CTR != wantRes.Predictions[0] {
		t.Fatalf("post-swap CTR %v; want new model's %v", res.CTR, wantRes.Predictions[0])
	}
}

// TestHotEngineReload exercises the in-place model swap path: a replica
// whose engine carries the Reloadable capability switches parameter
// snapshots with no drain and no new server.
func TestHotEngineReload(t *testing.T) {
	spec := testSpec()
	engA := buildEngine(t, spec, 0, 1)
	engB := buildEngine(t, spec, 0, 2)
	pool := zipfPool(t, spec, 8, 5)

	hot, err := NewHotEngine(engA)
	if err != nil {
		t.Fatal(err)
	}
	rt := newRouter(t, RoundRobin)
	id, err := rt.Add(hot, serving.Options{Batching: serving.BatchingOptions{MaxBatch: 4, Window: 50 * time.Microsecond}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before, err := rt.Submit(context.Background(), pool[0])
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := engA.Infer(pool[:1])
	if err != nil {
		t.Fatal(err)
	}
	if before.CTR != wantA.Predictions[0] {
		t.Fatalf("pre-reload CTR %v; want %v", before.CTR, wantA.Predictions[0])
	}
	if err := rt.Reload(id, engB); err != nil {
		t.Fatal(err)
	}
	after, err := rt.Submit(context.Background(), pool[0])
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := engB.Infer(pool[:1])
	if err != nil {
		t.Fatal(err)
	}
	if after.CTR != wantB.Predictions[0] {
		t.Fatalf("post-reload CTR %v; want new model's %v", after.CTR, wantB.Predictions[0])
	}
	// A bare engine lacks the capability and must be pointed at Swap.
	id2, err := rt.Add(engA, serving.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Reload(id2, engB); err == nil || !strings.Contains(err.Error(), "Reloadable") {
		t.Fatalf("reload of a non-reloadable engine: %v", err)
	}
}

// TestRouterTraceCarriesReplicaIDs: every span of a routed tier names the
// replica that served it, and the merged stream is start-ordered.
func TestRouterTraceCarriesReplicaIDs(t *testing.T) {
	rt := newRouter(t, RoundRobin)
	opts := fakeOpts()
	opts.Trace = serving.TraceOptions{Sample: 1}
	for i := 0; i < 2; i++ {
		if _, err := rt.Add(&fakeEngine{}, opts, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := rt.Submit(context.Background(), fakeQuery); err != nil {
			t.Fatal(err)
		}
	}
	spans := rt.Trace(0, time.Time{})
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	seen := map[int32]int{}
	for i, sp := range spans {
		if sp.Replica < 1 || sp.Replica > 2 {
			t.Fatalf("span %d carries replica %d; want 1 or 2", i, sp.Replica)
		}
		seen[sp.Replica]++
		if i > 0 && spans[i-1].Start > sp.Start {
			t.Fatalf("merged trace out of order at %d", i)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("spans only from replicas %v; want both", seen)
	}
}

func TestRouterWriteMetrics(t *testing.T) {
	rt := newRouter(t, Affinity)
	for i := 0; i < 2; i++ {
		if _, err := rt.Add(&fakeEngine{}, fakeOpts(), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := rt.Submit(context.Background(), fakeQuery); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := rt.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"microrec_router_replicas 2",
		`microrec_router_decisions_total{policy="affinity"} 20`,
		`microrec_router_replica_routed_total{replica="1"}`,
		"microrec_router_aggregate_hit_rate",
		`policy="affinity"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSubmitWithNoReplicas(t *testing.T) {
	rt := newRouter(t, RoundRobin)
	if _, err := rt.Submit(context.Background(), fakeQuery); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("submit on empty tier: %v", err)
	}
}
