// Package router implements the replicated serving tier: N independent
// replicas — each a full serving.Server composition (micro-batcher, admission
// gate, pipelined drain) over its own engine — fronted by a router with
// swappable policies (round-robin, least-loaded, hot-key affinity).
//
// Replication is the scale axis the sharded tier (internal/cluster) does not
// cover: the cluster scatter/gathers *within* one replica, so every shard
// still touches every batch, while replicas serve disjoint batches in
// parallel. The affinity policy additionally exploits production traffic
// skew: routing by a hash of the query's embedding keys partitions the key
// space across the replicas' hot-row caches, turning N caches of size C into
// an effective ~N·C cache (the hit-rate lift is measured and reported in the
// /stats "router" section).
//
// The hot path is lock-free: membership is a copy-on-write replica set
// behind an atomic pointer, and each routing decision is a set load, a
// policy pick and two atomic counters. Membership changes (Add, Drain, Swap)
// serialize on a mutex that the hot path never touches. Drain removes a
// replica under live traffic without dropping any admitted request: the
// replica leaves the routable set first, in-flight routed requests are
// awaited on a per-replica counter, and only then does the replica's server
// Close (which itself drains every accepted request).
package router

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"microrec/internal/embedding"
	"microrec/internal/metrics"
	"microrec/internal/obs"
	"microrec/internal/serving"
)

// ErrNoReplicas is returned by Submit when the routable set is empty — every
// replica drained or closed, or none ever added.
var ErrNoReplicas = errors.New("router: no active replicas")

// ErrUnknownReplica is returned by Drain/Reload/Swap for an id that is not a
// current member.
var ErrUnknownReplica = errors.New("router: unknown replica id")

// drainPoll is the interval at which Drain and Close re-check a draining
// replica's in-flight counter. The window between a routing decision and the
// replica's Submit is a few hundred nanoseconds, so the counter settles
// within one or two polls.
const drainPoll = 100 * time.Microsecond

// decisionsWindow sizes the per-policy rolling decision-rate meters.
const decisionsWindow = 4096

// Replica is one member of the replicated tier: a serving.Server plus the
// router's per-replica scoreboard.
type Replica struct {
	// id is the replica's 1-based identity, stamped into the server's
	// Options.Router.ReplicaID (and so onto every span it records). Plain
	// fields are written once before the replica is published and read-only
	// after.
	id     int
	srv    *serving.Server
	eng    serving.Engine
	closer func() error

	// routed counts routing decisions that landed here; inflight the routed
	// requests currently between the decision and Submit's return — the
	// counter Drain awaits before closing the server.
	routed   atomic.Uint64
	inflight atomic.Int64
	// draining flips once, before the replica leaves the routable set; a
	// Submit that raced the removal re-checks it after registering in
	// inflight and backs off.
	draining atomic.Bool
}

// ID returns the replica's 1-based id.
func (r *Replica) ID() int { return r.id }

// Server returns the replica's serving server.
func (r *Replica) Server() *serving.Server { return r.srv }

// replicaSet is one immutable membership snapshot: the hot path loads it with
// a single atomic pointer read. all holds every current member (including
// draining ones, which still own in-flight requests); active only the
// routable ones. Both are ordered by id.
type replicaSet struct {
	all    []*Replica
	active []*Replica
}

// newSet derives a snapshot from a member list, excluding draining replicas
// from the routable slice.
func newSet(all []*Replica) *replicaSet {
	s := &replicaSet{all: all}
	for _, r := range all {
		if !r.draining.Load() {
			s.active = append(s.active, r)
		}
	}
	return s
}

func (s *replicaSet) find(id int) *Replica {
	for _, r := range s.all {
		if r.id == id {
			return r
		}
	}
	return nil
}

// primary is the replica whose serving stats anchor the merged /stats and
// /metrics views: the first active one, else the first member.
func (s *replicaSet) primary() *Replica {
	if len(s.active) > 0 {
		return s.active[0]
	}
	if len(s.all) > 0 {
		return s.all[0]
	}
	return nil
}

// Options configures a Router.
type Options struct {
	// Policy is the initial routing policy; default RoundRobin. Swappable
	// at runtime via SetPolicy.
	Policy Policy
}

// Router fronts the replicated tier. It implements the load harness's Target
// seam (Submit) and the serving telemetry surface (Stats, Trace,
// WriteMetrics), so the HTTP mux, bench and loadtest drive it exactly like a
// single server.
type Router struct {
	// mu serializes membership and drains; the Submit hot path never takes
	// it. nextID is guarded by mu.
	mu     sync.Mutex
	nextID int

	set     atomic.Pointer[replicaSet]
	policy  atomic.Int32
	rr      atomic.Uint64
	drained atomic.Uint64

	// Per-policy decision scoreboard: lifetime totals plus rolling rates
	// (the decisions/sec figure in /stats).
	decisions [numPolicies]atomic.Uint64
	decRate   [numPolicies]*metrics.Rolling

	// Affinity-lift baseline mark (MarkHitRateBaseline): the pooled
	// hit/lookup counters and rate at the mark, so the post-mark aggregate
	// rate — and its delta against the pre-mark rate — can be derived from
	// the caches' lifetime counters.
	baseMu      sync.Mutex
	baseMarked  bool
	baseHits    int64
	baseLookups int64
	baseRate    float64
}

// New builds an empty router; replicas join via Add.
func New(opts Options) (*Router, error) {
	p := opts.Policy
	if p == "" {
		p = RoundRobin
	}
	idx, err := p.index()
	if err != nil {
		return nil, err
	}
	rt := &Router{}
	rt.policy.Store(int32(idx))
	for i := range rt.decRate {
		rt.decRate[i] = metrics.NewRolling(decisionsWindow)
	}
	rt.set.Store(&replicaSet{})
	return rt, nil
}

// Add builds one replica — a full serving.Server over eng, with the new
// replica's 1-based id stamped into sopts.Router.ReplicaID so its spans carry
// it — and publishes it to the routable set. closer, when non-nil, is the
// replica's resource teardown (typically the engine's Close), invoked after
// the replica's server closes at drain time. Safe under live traffic; the
// affinity policy remaps ~1/N of the key space onto the newcomer.
func (rt *Router) Add(eng serving.Engine, sopts serving.Options, closer func() error) (int, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	id := rt.nextID + 1
	sopts.Router.ReplicaID = id
	srv, err := serving.New(eng, sopts)
	if err != nil {
		return 0, err
	}
	rt.nextID = id
	rep := &Replica{id: id, srv: srv, eng: eng, closer: closer}
	cur := rt.set.Load()
	rt.set.Store(newSet(append(append([]*Replica{}, cur.all...), rep)))
	return id, nil
}

// Submit routes one query to a replica under the active policy and blocks on
// that replica's serving future — the load harness's Target seam. A decision
// that races a drain backs off and re-picks from the updated set, so no
// request is ever committed to a replica that will not serve it.
func (rt *Router) Submit(ctx context.Context, q embedding.Query) (serving.Result, error) {
	for {
		set := rt.set.Load()
		if len(set.active) == 0 {
			return serving.Result{}, ErrNoReplicas
		}
		pcode := int(rt.policy.Load())
		rep := rt.pick(pcode, set.active, q)
		// Register in the replica's in-flight count *before* re-checking
		// draining: a drain flips the flag first and then waits for this
		// counter, so either we see the flag and back off, or the drain sees
		// our registration and waits for the server to carry the request to
		// completion. Requests cannot fall between.
		rep.inflight.Add(1)
		if rep.draining.Load() {
			rep.inflight.Add(-1)
			continue
		}
		rt.decisions[pcode].Add(1)
		rt.decRate[pcode].Observe(time.Now(), 1)
		rep.routed.Add(1)
		res, err := rep.srv.Submit(ctx, q)
		rep.inflight.Add(-1)
		return res, err
	}
}

// pick applies one policy to the active slice (never empty here).
func (rt *Router) pick(pcode int, active []*Replica, q embedding.Query) *Replica {
	switch pcode {
	case leastLoadedIdx:
		best, bestScore := active[0], rt.loadScore(active[0])
		for _, r := range active[1:] {
			if s := rt.loadScore(r); s < bestScore {
				best, bestScore = r, s
			}
		}
		return best
	case affinityIdx:
		h := queryHash(q)
		best, bestW := active[0], rendezvousWeight(h, active[0].id)
		for _, r := range active[1:] {
			if w := rendezvousWeight(h, r.id); w > bestW {
				best, bestW = r, w
			}
		}
		return best
	default: // round-robin
		return active[int((rt.rr.Add(1)-1)%uint64(len(active)))]
	}
}

// loadScore is the least-loaded policy's scoring input: the replica's live
// serving load (queue depth + flush-size-weighted in-flight batches) plus the
// routed requests not yet inside the server — so a burst of simultaneous
// decisions spreads even before the first one reaches a submit queue.
func (rt *Router) loadScore(r *Replica) int {
	return r.srv.LoadScore() + int(r.inflight.Load())
}

// SetPolicy swaps the routing policy at runtime; in-flight requests finish
// under the policy that routed them.
func (rt *Router) SetPolicy(p Policy) error {
	idx, err := p.index()
	if err != nil {
		return err
	}
	rt.policy.Store(int32(idx))
	return nil
}

// PolicyName reports the active policy.
func (rt *Router) PolicyName() string {
	return string(policyNames[rt.policy.Load()])
}

// Replicas reports the routable replica count.
func (rt *Router) Replicas() int { return len(rt.set.Load().active) }

// Drain removes one replica under live traffic without dropping any admitted
// request: the replica leaves the routable set, the router waits out routed
// requests still en route to it, and only then does the replica's server
// Close — which itself drains every request it accepted. ctx bounds the
// wait; on cancellation the replica stays out of rotation (its in-flight
// requests complete) but is not closed.
func (rt *Router) Drain(ctx context.Context, id int) error {
	rt.mu.Lock()
	set := rt.set.Load()
	rep := set.find(id)
	if rep == nil {
		rt.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownReplica, id)
	}
	if rep.draining.Swap(true) {
		rt.mu.Unlock()
		return fmt.Errorf("router: replica %d already draining", id)
	}
	// Republish with the replica out of the routable slice: no decision made
	// after this store can pick it.
	rt.set.Store(newSet(set.all))
	rt.mu.Unlock()

	if err := rt.awaitIdle(ctx, rep); err != nil {
		return err
	}
	err := rep.srv.Close()
	if rep.closer != nil {
		if cerr := rep.closer(); err == nil {
			err = cerr
		}
	}
	rt.mu.Lock()
	cur := rt.set.Load()
	members := make([]*Replica, 0, len(cur.all))
	for _, r := range cur.all {
		if r.id != id {
			members = append(members, r)
		}
	}
	rt.set.Store(newSet(members))
	rt.mu.Unlock()
	rt.drained.Add(1)
	return err
}

// awaitIdle polls a draining replica's in-flight counter to zero. No router
// lock is held across the wait — membership changes and the Submit hot path
// proceed throughout.
func (rt *Router) awaitIdle(ctx context.Context, rep *Replica) error {
	for rep.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(drainPoll):
		}
	}
	return nil
}

// Swap replaces replica id with a fresh replica serving eng — the
// model-upgrade path for engines without the Reloadable capability. The
// replacement joins the routable set before the old replica starts draining,
// so the tier's capacity never dips, and the drain guarantees zero dropped
// admitted requests. Returns the replacement's id.
func (rt *Router) Swap(ctx context.Context, id int, eng serving.Engine, sopts serving.Options, closer func() error) (int, error) {
	if rt.set.Load().find(id) == nil {
		return 0, fmt.Errorf("%w: %d", ErrUnknownReplica, id)
	}
	newID, err := rt.Add(eng, sopts, closer)
	if err != nil {
		return 0, err
	}
	if err := rt.Drain(ctx, id); err != nil {
		return newID, err
	}
	return newID, nil
}

// Reload hot-swaps replica id's model in place through the engine's
// serving.Reloadable capability — no drain, no new server; the replica keeps
// its caches, meters and id. Engines without the capability (bare
// *core.Engine) must be swapped at replica granularity instead (Swap).
func (rt *Router) Reload(id int, next serving.Engine) error {
	rep := rt.set.Load().find(id)
	if rep == nil {
		return fmt.Errorf("%w: %d", ErrUnknownReplica, id)
	}
	rl, ok := rep.eng.(serving.Reloadable)
	if !ok {
		return fmt.Errorf("router: replica %d engine %T is not serving.Reloadable (use Swap)", id, rep.eng)
	}
	return rl.Reload(next)
}

// MarkHitRateBaseline snapshots the replicas' pooled hot-cache counters as
// the affinity-lift baseline: after the mark, the /stats router section's
// aggregate_hit_rate covers only post-mark traffic and hit_rate_delta is its
// lift over the pre-mark pooled rate. The loadtest harness marks the
// baseline between its round-robin calibration phase and the affinity run.
func (rt *Router) MarkHitRateBaseline() {
	hits, lookups := rt.pooledCounts()
	rate := 0.0
	if lookups > 0 {
		rate = float64(hits) / float64(lookups)
	}
	rt.baseMu.Lock()
	rt.baseMarked = true
	rt.baseHits = hits
	rt.baseLookups = lookups
	rt.baseRate = rate
	rt.baseMu.Unlock()
}

// pooledCounts sums the members' lifetime hot-cache hit/lookup counters.
func (rt *Router) pooledCounts() (hits, lookups int64) {
	for _, rep := range rt.set.Load().all {
		if h, m, ok := rep.srv.HotCacheCounts(); ok {
			hits += h
			lookups += h + m
		}
	}
	return hits, lookups
}

// Stats returns the primary replica's serving stats with the router
// scoreboard merged in as the "router" section — the /stats payload of a
// routed server. The top-level sections (latency, admission, pipeline, …)
// are the primary replica's own view; the router section carries the
// per-replica breakdown.
func (rt *Router) Stats() serving.Stats {
	set := rt.set.Load()
	now := time.Now()
	var st serving.Stats
	if p := set.primary(); p != nil {
		st = p.srv.Stats()
	}
	rs := &serving.RouterStats{
		Policy:   rt.PolicyName(),
		Replicas: len(set.active),
		Drained:  rt.drained.Load(),
	}
	activeIdx := int(rt.policy.Load())
	for i, name := range policyNames {
		total := rt.decisions[i].Load()
		if total == 0 && i != activeIdx {
			continue
		}
		rs.Decisions = append(rs.Decisions, serving.PolicyDecisionStats{
			Policy: string(name),
			Total:  total,
			PerSec: rt.decRate[i].Snapshot(now).RatePerSec,
		})
	}
	var hits, lookups int64
	for _, rep := range set.all {
		ss := rep.srv.Stats()
		state := "active"
		if rep.draining.Load() {
			state = "draining"
		}
		score := rep.srv.LoadScore()
		occ := 0.0
		if capacity := rep.srv.LoadCapacity(); capacity > 0 {
			occ = float64(score) / float64(capacity)
		}
		hr := 0.0
		if h, m, ok := rep.srv.HotCacheCounts(); ok {
			hits += h
			lookups += h + m
			if h+m > 0 {
				hr = float64(h) / float64(h+m)
			}
		}
		rs.PerReplica = append(rs.PerReplica, serving.ReplicaStats{
			ID:               rep.id,
			State:            state,
			Routed:           rep.routed.Load(),
			InFlight:         rep.inflight.Load(),
			QueueDepth:       rep.srv.QueueLen(),
			PipelineInFlight: rep.srv.InFlightBatches(),
			LoadScore:        score,
			Occupancy:        occ,
			Queries:          ss.Queries,
			QPS:              ss.QPS,
			P99US:            ss.LatencyUS.P99,
			HitRate:          hr,
		})
	}
	if lookups > 0 {
		rs.AggregateHitRate = float64(hits) / float64(lookups)
	}
	rt.baseMu.Lock()
	if rt.baseMarked {
		rs.BaselineHitRate = rt.baseRate
		rs.AggregateHitRate = 0
		if dl := lookups - rt.baseLookups; dl > 0 {
			rs.AggregateHitRate = float64(hits-rt.baseHits) / float64(dl)
		}
		rs.HitRateDelta = rs.AggregateHitRate - rs.BaselineHitRate
	}
	rt.baseMu.Unlock()
	st.Router = rs
	return st
}

// Trace merges the members' flight-recorder snapshots into one span stream
// ordered by start time (each span carries its replica id), trimmed to the
// newest `last` when positive — the /trace payload of a routed server.
func (rt *Router) Trace(last int, since time.Time) []obs.Span {
	var spans []obs.Span
	for _, rep := range rt.set.Load().all {
		spans = append(spans, rep.srv.Trace(last, since)...)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	if last > 0 && len(spans) > last {
		spans = spans[len(spans)-last:]
	}
	return spans
}

// RetryAfter is the backoff hint for shed clients: the primary replica's
// figure (replicas are homogeneous; the hint only needs the right scale).
func (rt *Router) RetryAfter() time.Duration {
	if p := rt.set.Load().primary(); p != nil {
		return p.srv.RetryAfter()
	}
	return time.Millisecond
}

// CapacityQPS is the tier's steady-state capacity estimate: the sum of the
// active replicas' knees (replicas serve disjoint traffic, so capacities
// add — the router-level figure the loadtest auto-scaler needs).
func (rt *Router) CapacityQPS() float64 {
	var qps float64
	for _, rep := range rt.set.Load().active {
		qps += rep.srv.CapacityQPS()
	}
	return qps
}

// BuildInfo returns the binary's build provenance (same for every replica).
func (rt *Router) BuildInfo() obs.BuildInfo {
	if p := rt.set.Load().primary(); p != nil {
		return p.srv.BuildInfo()
	}
	return obs.BuildInfo{}
}

// WriteMetrics renders the primary replica's Prometheus exposition followed
// by the router's own families — the GET /metrics payload of a routed
// server. Like the single-server exposition, every router figure derives
// from the same Stats() snapshot /stats serves.
func (rt *Router) WriteMetrics(w io.Writer) error {
	if p := rt.set.Load().primary(); p != nil {
		if err := p.srv.WriteMetrics(w); err != nil {
			return err
		}
	}
	rs := rt.Stats().Router
	m := obs.NewMetricWriter(w)
	m.Info("microrec_router_info", "Replicated-tier routing configuration.", "policy", rs.Policy)
	m.Gauge("microrec_router_replicas", "Routable replica count.", float64(rs.Replicas))
	m.Counter("microrec_router_drained_total", "Replicas drained under live traffic.", float64(rs.Drained))
	dec := m.Family("microrec_router_decisions_total", "Routing decisions per policy.", "counter")
	rate := m.Family("microrec_router_decisions_per_sec", "Rolling routing decision rate per policy.", "gauge")
	for _, d := range rs.Decisions {
		dec.Obs(float64(d.Total), "policy", d.Policy)
		rate.Obs(d.PerSec, "policy", d.Policy)
	}
	routed := m.Family("microrec_router_replica_routed_total", "Requests routed per replica.", "counter")
	occ := m.Family("microrec_router_replica_occupancy", "Replica load score over load capacity.", "gauge")
	hr := m.Family("microrec_router_replica_hit_rate", "Per-replica hot-row cache hit rate.", "gauge")
	for _, r := range rs.PerReplica {
		id := fmt.Sprintf("%d", r.ID)
		routed.Obs(float64(r.Routed), "replica", id)
		occ.Obs(r.Occupancy, "replica", id)
		hr.Obs(r.HitRate, "replica", id)
	}
	m.Gauge("microrec_router_aggregate_hit_rate", "Pooled hot-cache hit rate across replicas (post-mark when a baseline is set).", rs.AggregateHitRate)
	m.Gauge("microrec_router_hit_rate_delta", "Aggregate hit-rate lift over the marked baseline.", rs.HitRateDelta)
	return m.Err()
}

// Close drains every member — no admitted request is dropped — and tears the
// tier down. Idempotent; Submits racing the shutdown fail with ErrNoReplicas
// once the routable set empties.
func (rt *Router) Close() error {
	rt.mu.Lock()
	set := rt.set.Load()
	rt.set.Store(&replicaSet{})
	rt.mu.Unlock()
	var err error
	for _, rep := range set.all {
		rep.draining.Store(true)
		if e := rt.awaitIdle(context.Background(), rep); err == nil {
			err = e
		}
		if e := rep.srv.Close(); err == nil {
			err = e
		}
		if rep.closer != nil {
			if e := rep.closer(); err == nil {
				err = e
			}
		}
	}
	return err
}
