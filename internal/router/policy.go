package router

import (
	"fmt"

	"microrec/internal/embedding"
)

// Policy selects how the router picks a replica for each submitted query.
type Policy string

const (
	// RoundRobin cycles through the active replicas in id order — the
	// oblivious baseline every other policy is compared against.
	RoundRobin Policy = "round-robin"
	// LeastLoaded routes to the replica with the smallest live load score
	// (admission-queue depth + flush-size-weighted in-flight batches; see
	// serving.Server.LoadScore), bounding the occupancy spread between
	// replicas under skewed or bursty arrivals.
	LeastLoaded Policy = "least-loaded"
	// Affinity routes by a hash of the query's embedding keys (rendezvous
	// hashing over the active replicas), so each replica's hot-row cache
	// specializes on a slice of the key space: N caches of size C behave
	// like one ~N·C cache on a skewed workload.
	Affinity Policy = "affinity"
)

// policy indices into the router's per-policy decision scoreboard.
const (
	roundRobinIdx = iota
	leastLoadedIdx
	affinityIdx
	numPolicies
)

var policyNames = [numPolicies]Policy{RoundRobin, LeastLoaded, Affinity}

// Policies lists the supported routing policies in scoreboard order.
func Policies() []Policy { return policyNames[:] }

// ParsePolicy resolves a -route flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case RoundRobin, LeastLoaded, Affinity:
		return Policy(s), nil
	default:
		return "", fmt.Errorf("router: unknown policy %q (have %v)", s, Policies())
	}
}

func (p Policy) index() (int, error) {
	for i, name := range policyNames {
		if p == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("router: unknown policy %q (have %v)", string(p), Policies())
}

// queryHash folds a query's embedding keys — every (table, row-index) pair —
// into one 64-bit affinity key, FNV-1a style over words. Two queries with the
// same lookups always hash alike, so a recurring (hot) query has a stable
// home replica; quality only needs to spread distinct key sets across
// replicas, not resist adversaries.
func queryHash(q embedding.Query) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for t, idxs := range q {
		h = (h ^ uint64(t)) * prime64
		for _, ix := range idxs {
			h = (h ^ uint64(ix)) * prime64
		}
	}
	return h
}

// rendezvousWeight mixes an affinity key with a replica id (splitmix64
// finalizer). Affinity picks the active replica with the maximum weight —
// rendezvous (highest-random-weight) hashing, so adding or draining a replica
// remaps only the keys whose maximum moved (~1/N of the key space), keeping
// the other replicas' caches warm through membership changes.
func rendezvousWeight(h uint64, id int) uint64 {
	x := h ^ (uint64(id)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
