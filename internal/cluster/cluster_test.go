package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"microrec/internal/cluster"
	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
	"microrec/internal/serving"
)

// The cluster must satisfy the serving layer's whole engine seam: that is
// what lets the micro-batcher, pipeline executor, SLA admission and overload
// layer drive a sharded tier unchanged.
var _ serving.Engine = (*cluster.Cluster)(nil)

// buildEngine assembles a real engine for a spec (capacity-scaled),
// mirroring the core and pipeline test helpers.
func buildEngine(t testing.TB, spec *model.Spec, hotCacheBytes int64) *core.Engine {
	t.Helper()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ConfigFor(spec.Name, core.SmallFP16().Precision)
	cfg.HotCacheBytes = hotCacheBytes
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// randomSpec mirrors the core property tests' generator: varying table
// counts, dims, lookup cadences, dense tails and tower shapes exercise the
// shard partition across product strides, virtual fallbacks and span shapes.
func randomSpec(rng *rand.Rand, name string) *model.Spec {
	nt := 3 + rng.Intn(5)
	tables := make([]model.TableSpec, nt)
	for i := range tables {
		tables[i] = model.TableSpec{
			ID:      i,
			Name:    fmt.Sprintf("%s-t%d", name, i),
			Rows:    int64(8 + rng.Intn(300)),
			Dim:     1 + rng.Intn(12),
			Lookups: 1 + rng.Intn(3),
		}
	}
	nh := 1 + rng.Intn(4)
	hidden := make([]int, nh)
	for i := range hidden {
		hidden[i] = 5 + rng.Intn(36)
	}
	return &model.Spec{
		Name:     name,
		Tables:   tables,
		DenseDim: rng.Intn(7),
		Hidden:   hidden,
	}
}

func randomQueries(spec *model.Spec, n int, seed int64) []embedding.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]embedding.Query, n)
	for i := range qs {
		q := make(embedding.Query, len(spec.Tables))
		for ti, tab := range spec.Tables {
			idxs := make([]int64, tab.Lookups)
			for k := range idxs {
				idxs[k] = rng.Int63n(tab.Rows)
			}
			q[ti] = idxs
		}
		qs[i] = q
	}
	return qs
}

// TestShardedBitIdentityProperty is the tier's core contract: for random
// model specs, shard counts in {1,2,3,4} and random query batches, the
// sharded scatter/gather/merge datapath produces bit-identical predictions
// to the single-engine InferBatch.
func TestShardedBitIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		spec := randomSpec(rng, fmt.Sprintf("shard-%d", trial))
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: invalid spec: %v", trial, err)
		}
		eng := buildEngine(t, spec, 0)
		var scratch core.BatchScratch
		for _, shards := range []int{1, 2, 3, 4} {
			c, err := cluster.New(eng, cluster.Options{Shards: shards})
			if err != nil {
				t.Fatalf("trial %d shards=%d: %v", trial, shards, err)
			}
			for _, b := range []int{1, 7, 33, 64} {
				qs := randomQueries(spec, b, int64(trial*1000+shards*100+b))
				want, err := eng.InferBatch(qs, nil, &scratch)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.InferBatch(qs, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d shards=%d b=%d query %d: sharded %v, single-engine %v",
							trial, shards, b, i, got[i], want[i])
					}
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedBitIdentityWithCaches re-checks bit identity with per-shard
// hot-row caches attached: caches model latency, never values.
func TestShardedBitIdentityWithCaches(t *testing.T) {
	spec := model.SmallProduction()
	eng := buildEngine(t, spec, 0)
	c, err := cluster.New(eng, cluster.Options{Shards: 4, HotCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var scratch core.BatchScratch
	for round := 0; round < 3; round++ { // repeats so cache hits occur
		qs := randomQueries(spec, 32, 7)
		want, err := eng.InferBatch(qs, nil, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.InferBatch(qs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d query %d: sharded %v, single-engine %v", round, i, got[i], want[i])
			}
		}
	}
	if hr, ok := c.HotCacheHitRate(); !ok {
		t.Fatal("caches attached but HotCacheHitRate not ok")
	} else if hr <= 0 {
		t.Fatalf("repeated identical batches produced hit rate %v, want > 0", hr)
	}
	info, ok := c.HotCache()
	if !ok || info.CapacityBytes <= 0 || info.Hits == 0 {
		t.Fatalf("aggregated cache info %+v ok=%v", info, ok)
	}
	if info.EffectiveLookupNS > c.LookupNS() {
		t.Fatalf("effective lookup %v exceeds cold bound %v", info.EffectiveLookupNS, c.LookupNS())
	}
}

// TestLookupBoundsMaxOverShards pins the SLA-admission story: the tier's
// cold lookup latency is the slowest shard's subset latency, and never
// exceeds the single engine's (removing tables never slows a bank).
func TestLookupBoundsMaxOverShards(t *testing.T) {
	eng := buildEngine(t, model.SmallProduction(), 0)
	for _, shards := range []int{1, 2, 4} {
		c, err := cluster.New(eng, cluster.Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		parts, err := placement.ShardTables(eng.Plan(), shards)
		if err != nil {
			t.Fatal(err)
		}
		var wantMax float64
		for _, tables := range parts {
			ns, err := eng.Plan().SubsetLatencyNS(tables)
			if err != nil {
				t.Fatal(err)
			}
			if ns > wantMax {
				wantMax = ns
			}
		}
		if got := c.LookupNS(); got != wantMax {
			t.Fatalf("shards=%d: LookupNS %v, want max-over-shards %v", shards, got, wantMax)
		}
		if c.LookupNS() > eng.LookupNS() {
			t.Fatalf("shards=%d: tier bound %v exceeds single-engine %v", shards, c.LookupNS(), eng.LookupNS())
		}
		if c.EffectiveLookupNS() != c.LookupNS() {
			t.Fatalf("shards=%d: cold effective %v != cold %v (no caches)", shards, c.EffectiveLookupNS(), c.LookupNS())
		}
		c.Close()
	}
}

// TestClusterStats checks the tier's metrics: every scatter round counted on
// the coordinator and on every shard, merge waits recorded, and the
// imbalance ratio within [1, shards].
func TestClusterStats(t *testing.T) {
	spec := model.SmallProduction()
	eng := buildEngine(t, spec, 0)
	c, err := cluster.New(eng, cluster.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if _, err := c.InferBatch(randomQueries(spec, 8, int64(i)), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Shards != 3 || st.Batches != rounds {
		t.Fatalf("stats %d shards %d batches, want 3/%d", st.Shards, st.Batches, rounds)
	}
	if st.MergeWaitUS.Count != rounds {
		t.Fatalf("merge-wait count %d, want %d", st.MergeWaitUS.Count, rounds)
	}
	if st.ImbalanceRatio < 1 || st.ImbalanceRatio > float64(st.Shards) {
		t.Fatalf("imbalance ratio %v outside [1, %d]", st.ImbalanceRatio, st.Shards)
	}
	if st.ColdLookupNS <= 0 || st.ColdLookupNS != c.LookupNS() {
		t.Fatalf("stats cold lookup %v vs LookupNS %v", st.ColdLookupNS, c.LookupNS())
	}
	tables := 0
	for _, sh := range st.PerShard {
		if sh.Batches != rounds {
			t.Fatalf("shard %d served %d batches, want %d", sh.ID, sh.Batches, rounds)
		}
		if sh.Tables < 1 {
			t.Fatalf("shard %d owns no tables", sh.ID)
		}
		tables += sh.Tables
	}
	if tables != eng.PhysicalTables() {
		t.Fatalf("shards own %d tables, engine has %d", tables, eng.PhysicalTables())
	}
}

// TestClusterConcurrentInfer drives the scatter/gather protocol from many
// goroutines at once (the worker-pool drain's shape); run under -race this
// is the tier's data-race check.
func TestClusterConcurrentInfer(t *testing.T) {
	spec := model.SmallProduction()
	eng := buildEngine(t, spec, 0)
	c, err := cluster.New(eng, cluster.Options{Shards: 4, RingDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := randomQueries(spec, 16, 3)
	var scratch core.BatchScratch
	want, err := eng.InferBatch(qs, nil, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc core.BatchScratch
			for i := 0; i < 10; i++ {
				got, err := c.InferBatch(qs, nil, &sc)
				if err != nil {
					errs <- err
					return
				}
				for k := range want {
					if got[k] != want[k] {
						errs <- fmt.Errorf("iteration %d query %d: %v != %v", i, k, got[k], want[k])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerWithShards runs the full serving stack — micro-batcher, pipeline
// executor, sharded tier — end to end and checks both the predictions (vs
// direct engine inference) and the /stats cluster section.
func TestServerWithShards(t *testing.T) {
	spec := model.SmallProduction()
	eng := buildEngine(t, spec, 0)
	srv, err := serving.New(eng, serving.Options{
		MaxBatch: 8,
		Window:   50 * time.Microsecond,
		Shards:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := randomQueries(spec, 48, 11)
	var scratch core.BatchScratch
	want, err := eng.InferBatch(qs, nil, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(qs))
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q embedding.Query) {
			defer wg.Done()
			res, err := srv.Submit(context.Background(), q)
			if err != nil {
				errs <- fmt.Errorf("query %d: %w", i, err)
				return
			}
			if res.CTR != want[i] {
				errs <- fmt.Errorf("query %d: served %v, engine %v", i, res.CTR, want[i])
			}
		}(i, q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Cluster == nil {
		t.Fatal("sharded server reported no cluster stats")
	}
	if st.Cluster.Shards != 3 {
		t.Fatalf("cluster stats report %d shards, want 3", st.Cluster.Shards)
	}
	if st.Cluster.Batches == 0 {
		t.Fatal("cluster served no batches")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Close stopped the owned cluster: a later round must fail cleanly.
	if _, err := srv.Submit(context.Background(), qs[0]); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
}

// TestServerShardsRequiresRealEngine pins the wrap rule: Options.Shards on an
// arbitrary Engine implementation (an overload-test fake, say) is a
// configuration error, not a silent fallback.
func TestServerShardsRequiresRealEngine(t *testing.T) {
	if _, err := serving.New(fakeEngine{}, serving.Options{Shards: 2}); err == nil {
		t.Fatal("Shards on a non-core engine did not error")
	}
}

// TestClusterCloseIdempotent double-closes and checks error-free idempotence.
func TestClusterCloseIdempotent(t *testing.T) {
	eng := buildEngine(t, model.SmallProduction(), 0)
	c, err := cluster.New(eng, cluster.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InferBatch(randomQueries(model.SmallProduction(), 1, 1), nil, nil); err == nil {
		t.Fatal("InferBatch after Close succeeded")
	}
}

// fakeEngine is a minimal non-core serving.Engine used to exercise the
// Shards wrap error.
type fakeEngine struct{}

func (fakeEngine) EnsurePlane(s *core.BatchScratch, b int)                         {}
func (fakeEngine) GatherIntoPlane(queries []embedding.Query, s *core.BatchScratch) {}
func (fakeEngine) DenseFromPlane(b int, s *core.BatchScratch)                      {}
func (fakeEngine) TailFromPlane(b int, s *core.BatchScratch, dst []float32)        {}
func (fakeEngine) ValidateQuery(q embedding.Query) error                           { return nil }
func (fakeEngine) TimingAt(items int, lookupNS float64) (core.TimingReport, error) {
	return core.TimingReport{}, nil
}
func (fakeEngine) LookupNS() float64                   { return 1 }
func (fakeEngine) EffectiveLookupNS() float64          { return 1 }
func (fakeEngine) HotCacheHitRate() (float64, bool)    { return 0, false }
func (fakeEngine) HotCache() (core.HotCacheInfo, bool) { return core.HotCacheInfo{}, false }
func (fakeEngine) InferBatchValidated(queries []embedding.Query, dst []float32, scratch *core.BatchScratch) ([]float32, error) {
	return make([]float32, len(queries)), nil
}
