// Package cluster implements the sharded serving tier: the model's embedding
// tables are partitioned across N gather shards (balanced by the placement
// plan's LPT shard assignment), each admitted micro-batch is scattered to
// every shard, each shard gathers its table subset into a shard-local partial
// plane, and the coordinator merges the partials' feature columns into one
// plane before the FC stack runs once. Physical tables write disjoint feature
// columns, so the merged plane — and therefore every prediction — is
// bit-identical to the single-engine InferBatch by construction.
//
// This is MicroRec's channel-parallelism argument applied one level up:
// inside one engine the placement plan spreads tables across memory banks so
// lookups resolve in parallel; across the tier, ShardTables spreads the same
// tables across engine shards so each shard's gather is a fraction of the
// whole, and the tier's lookup latency is the slowest shard's (max over
// shards), not the sum. The fan-out/fan-in plane protocol — scatter the
// query headers, gather partial planes, merge column spans — is the seam a
// future multi-node backend replaces with RPC while keeping the coordinator
// unchanged.
//
//	            ┌─► shard 0: gather tables₀ ─► partial plane ─┐
//	micro-batch ├─► shard 1: gather tables₁ ─► partial plane ─┼─► merge ─► dense GEMM ─► tail
//	 (scatter)  └─► shard 2: gather tables₂ ─► partial plane ─┘  (fan-in, straggler-timed)
//
// A Cluster implements the serving layer's Engine seam (and therefore
// pipeline.StageEngine), so the micro-batcher, the staged pipeline executor,
// SLA admission and the overload layer all drive a sharded tier exactly as
// they drive a single engine — GatherIntoPlane is simply the scatter/gather
// round. SLA admission stays conservative automatically: LookupNS reports the
// max-over-shards cold lookup latency.
//
// Each shard owns a pipeline.PlaneRing of pre-allocated partial planes and a
// per-shard hot-row cache, and the coordinator merges partials in completion
// order, so a fast shard's columns land while stragglers still gather; the
// merge-wait histogram (last minus first shard completion) and the per-batch
// imbalance ratio (max/mean shard service) quantify how balanced the
// partition really is under live traffic.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/hotcache"
	"microrec/internal/metrics"
	"microrec/internal/pipeline"
	"microrec/internal/placement"
	"microrec/internal/tieredstore"
)

// Options configures a Cluster. The zero value of every field but Shards gets
// a sensible default.
type Options struct {
	// Shards is the requested shard count (>= 1). The effective count is
	// capped at the engine's physical table count; Shards == 1 still runs
	// the scatter/gather protocol over one shard (useful for testing the
	// protocol, but NewServer callers should prefer the plain engine).
	Shards int
	// MaxBatch is the partial-plane capacity — the largest micro-batch one
	// scatter/gather round carries. Default 64.
	MaxBatch int
	// RingDepth is each shard's partial-plane ring size: the bound on that
	// shard's outstanding partials (a shard can gather for the next
	// in-flight batch while the coordinator still merges its previous one).
	// Default 2.
	RingDepth int
	// HotCacheBytes is the tier's total hot-row cache capacity, split evenly
	// across shards (each shard caches only its own tables' rows). 0 inherits
	// the engine's Config().HotCacheBytes; negative disables caching.
	HotCacheBytes int64
	// StatsWindow is the number of recent batches retained for the rolling
	// per-shard service statistics. Default 512.
	StatsWindow int
}

// withDefaults returns o with zero fields replaced by defaults.
func (o Options) withDefaults(eng *core.Engine) Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.RingDepth == 0 {
		o.RingDepth = 2
	}
	if o.StatsWindow == 0 {
		o.StatsWindow = 512
	}
	if o.HotCacheBytes == 0 {
		o.HotCacheBytes = eng.Config().HotCacheBytes
	}
	return o
}

// Validate checks the options after defaulting.
func (o Options) Validate() error {
	if o.Shards < 1 {
		return fmt.Errorf("cluster: shard count %d (want >= 1)", o.Shards)
	}
	if o.MaxBatch < 1 {
		return fmt.Errorf("cluster: max batch %d", o.MaxBatch)
	}
	if o.RingDepth < 1 {
		return fmt.Errorf("cluster: ring depth %d", o.RingDepth)
	}
	if o.StatsWindow < 1 {
		return fmt.Errorf("cluster: stats window %d", o.StatsWindow)
	}
	return nil
}

// scatterTask is one micro-batch's work order for one shard.
type scatterTask struct {
	queries []embedding.Query
	done    chan<- shardDone
}

// shardDone is a shard's completion report: the filled partial plane, the
// gather service time, and when the gather finished (stamped on the shard
// worker, so the coordinator's merge cost never inflates straggler metrics).
type shardDone struct {
	sh        *shard
	plane     *core.BatchScratch
	serviceNS int64
	doneAt    time.Time
}

// shard is one gather replica: a disjoint physical-table subset, the feature
// columns those tables write, a ring of partial planes, and an optional
// private hot-row cache over its own tables' access streams.
type shard struct {
	id     int
	tables []int
	spans  []core.ColSpan
	coldNS float64 // modeled per-inference lookup latency of this subset
	cache  *hotcache.Live
	ring   *pipeline.PlaneRing
	tasks  chan scatterTask

	batches atomic.Uint64
	busyNS  atomic.Int64
	service *metrics.Rolling // per-batch gather service time, ns
}

// Cluster is the sharded tier's coordinator. It implements the serving
// layer's Engine seam over a single built *core.Engine: the FC stack, the
// timing model and validation delegate to the engine; only the gather is
// scattered. The engine stays immutable and shared — shards are views onto
// its storage, not copies — so the tier costs planes and caches, not a second
// parameter image.
type Cluster struct {
	eng      *core.Engine
	opts     Options
	shards   []*shard
	coldNS   float64 // max over shards: the tier's cold lookup bound
	hitScale float64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	batches     atomic.Uint64
	mergeWaitUS *metrics.Histogram
	imbalance   *metrics.Rolling
}

// New partitions the engine's physical tables with placement.ShardTables and
// starts one gather worker per shard. The returned cluster owns background
// goroutines; callers must Close it after all inference calls have returned
// (a serving.Server created with Options.Shards does this itself).
func New(eng *core.Engine, opts Options) (*Cluster, error) {
	if eng == nil {
		return nil, fmt.Errorf("cluster: nil engine")
	}
	opts = opts.withDefaults(eng)
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	parts, err := placement.ShardTables(eng.Plan(), opts.Shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		eng:      eng,
		opts:     opts,
		hitScale: eng.CacheHitScale(),
		// Merge waits span sub-µs (balanced shards) to ms (stragglers under
		// contention); 1% relative error over [1, 10s] in µs.
		mergeWaitUS: metrics.NewHistogram(0.01, 1e7),
		imbalance:   metrics.NewRolling(opts.StatsWindow),
	}
	cacheTotal := opts.HotCacheBytes
	if cacheTotal < 0 {
		cacheTotal = 0
	}
	perShardCache := cacheTotal / int64(len(parts))
	for i, tables := range parts {
		spans, err := eng.PartialSpans(tables)
		if err != nil {
			return nil, err
		}
		coldNS, err := eng.Plan().SubsetLatencyNS(tables)
		if err != nil {
			return nil, err
		}
		ring, err := pipeline.NewPlaneRing(eng, opts.RingDepth, opts.MaxBatch)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			id:      i,
			tables:  tables,
			spans:   spans,
			coldNS:  coldNS,
			ring:    ring,
			tasks:   make(chan scatterTask, opts.RingDepth),
			service: metrics.NewRolling(opts.StatsWindow),
		}
		if perShardCache > 0 {
			live, err := hotcache.NewLive(perShardCache, 0)
			if err != nil {
				return nil, err
			}
			sh.cache = live
		}
		if coldNS > c.coldNS {
			c.coldNS = coldNS
		}
		c.shards = append(c.shards, sh)
	}
	// On a tiered engine the shard caches observe all gather traffic (the
	// coordinator's own cache sees none), so they must feed the placement
	// harvest or the sweep would demote everything under sharded serving.
	if store := eng.TierStore(); store != nil {
		for _, sh := range c.shards {
			if sh.cache != nil {
				store.AddSource(sh.cache)
			}
		}
	}
	c.wg.Add(len(c.shards))
	for _, sh := range c.shards {
		go c.shardWorker(sh)
	}
	return c, nil
}

// Shards reports the effective shard count (requested, capped at the
// engine's physical table count).
func (c *Cluster) Shards() int { return len(c.shards) }

// Options returns the cluster's effective (defaulted) options.
func (c *Cluster) Options() Options { return c.opts }

// Close stops the shard workers. It must be called after every in-flight
// inference has returned: GatherIntoPlane has no error path, so a
// scatter/gather round racing Close would panic on the closed task channels.
// The serving layer guarantees this ordering (executor drained first). It is
// idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, sh := range c.shards {
		close(sh.tasks)
	}
	c.wg.Wait()
	return nil
}

// shardWorker serves one shard's scatter tasks in order: acquire a partial
// plane from the shard's ring (the token bound on outstanding partials),
// gather the shard's table subset, report completion. The plane returns to
// the ring only after the coordinator has merged it.
func (c *Cluster) shardWorker(sh *shard) {
	defer c.wg.Done()
	for t := range sh.tasks {
		p := sh.ring.Acquire()
		t0 := time.Now()
		c.eng.GatherPartialIntoPlane(sh.tables, t.queries, p, sh.cache)
		now := time.Now()
		d := now.Sub(t0)
		sh.batches.Add(1)
		sh.busyNS.Add(int64(d))
		sh.service.Observe(now, float64(d))
		t.done <- shardDone{sh: sh, plane: p, serviceNS: int64(d), doneAt: now}
	}
}

// ---- serving.Engine / pipeline.StageEngine ----

// ValidateQuery delegates admission validation to the engine.
func (c *Cluster) ValidateQuery(q embedding.Query) error { return c.eng.ValidateQuery(q) }

// EnsurePlane sizes a coordinator plane via the engine.
func (c *Cluster) EnsurePlane(s *core.BatchScratch, b int) { c.eng.EnsurePlane(s, b) }

// GatherIntoPlane is the scatter/gather round: fan the batch out to every
// shard, zero the coordinator plane's dense tail while the shards gather,
// then merge each partial's feature columns as it completes — fast shards'
// columns land while stragglers still gather. The merged plane is
// bit-identical to the engine's monolithic gather: every value was produced
// by the same quantize loop over the same tables, and the spans of a
// partition exactly cover the embedding region. Queries must have passed
// ValidateQuery and the plane must be sized for len(queries) (the
// StageEngine contract).
func (c *Cluster) GatherIntoPlane(queries []embedding.Query, s *core.BatchScratch) {
	b := len(queries)
	done := make(chan shardDone, len(c.shards))
	for _, sh := range c.shards {
		sh.tasks <- scatterTask{queries: queries, done: done}
	}
	c.eng.ZeroDenseTail(b, s)
	var (
		firstAt, lastAt time.Time
		maxNS, sumNS    int64
		coldFaults      int64
	)
	for range c.shards {
		d := <-done
		// Straggler accounting uses the workers' own completion stamps:
		// receives interleave with merges below, so receive-side clocks
		// would charge coordinator merge cost to "waiting on stragglers".
		if firstAt.IsZero() || d.doneAt.Before(firstAt) {
			firstAt = d.doneAt
		}
		if d.doneAt.After(lastAt) {
			lastAt = d.doneAt
		}
		c.eng.MergePartialPlane(b, d.sh.spans, d.plane, s)
		coldFaults += d.plane.GatherObs().ColdFaults
		d.sh.ring.Release(d.plane)
		if d.serviceNS > maxNS {
			maxNS = d.serviceNS
		}
		sumNS += d.serviceNS
	}
	c.batches.Add(1)
	mergeWait := lastAt.Sub(firstAt)
	c.mergeWaitUS.Observe(float64(mergeWait) / float64(time.Microsecond))
	if sumNS > 0 {
		c.imbalance.Observe(lastAt, float64(maxNS)*float64(len(c.shards))/float64(sumNS))
	}
	// Replace the coordinator plane's (empty) gather record with the
	// scatter-wide one, so the flight recorder sees shard detail per batch.
	s.SetGatherObs(core.GatherObs{
		ColdFaults:  coldFaults,
		Shards:      len(c.shards),
		ShardMaxNS:  maxNS,
		MergeWaitNS: int64(mergeWait),
	})
}

// DenseFromPlane runs the hidden FC tower on the merged plane — once, on the
// coordinator, exactly as the single engine would.
func (c *Cluster) DenseFromPlane(b int, s *core.BatchScratch) { c.eng.DenseFromPlane(b, s) }

// TailFromPlane runs the output layer + sigmoid on the merged plane.
func (c *Cluster) TailFromPlane(b int, s *core.BatchScratch, dst []float32) {
	c.eng.TailFromPlane(b, s, dst)
}

// InferBatchValidated runs the monolithic sharded datapath on pre-validated
// queries: scatter/gather/merge, then the FC stack — the worker-pool drain's
// entry point, and the serial composition the pipelined stages overlap.
func (c *Cluster) InferBatchValidated(queries []embedding.Query, dst []float32, scratch *core.BatchScratch) ([]float32, error) {
	b := len(queries)
	if b == 0 {
		return nil, fmt.Errorf("cluster: no queries")
	}
	if b > c.opts.MaxBatch {
		return nil, fmt.Errorf("cluster: batch %d exceeds plane capacity %d", b, c.opts.MaxBatch)
	}
	if dst == nil {
		dst = make([]float32, b)
	} else if len(dst) != b {
		return nil, fmt.Errorf("cluster: dst length %d, want %d", len(dst), b)
	}
	if scratch == nil {
		scratch = &core.BatchScratch{}
	}
	c.eng.EnsurePlane(scratch, b)
	c.GatherIntoPlane(queries, scratch)
	c.eng.DenseFromPlane(b, scratch)
	c.eng.TailFromPlane(b, scratch, dst)
	return dst, nil
}

// InferBatch validates every query, then runs the sharded datapath. Returns
// an error after Close.
func (c *Cluster) InferBatch(queries []embedding.Query, dst []float32, scratch *core.BatchScratch) ([]float32, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("cluster: closed")
	}
	for i, q := range queries {
		if err := c.eng.ValidateQuery(q); err != nil {
			return nil, fmt.Errorf("cluster: query %d: %w", i, err)
		}
	}
	return c.InferBatchValidated(queries, dst, scratch)
}

// TimingAt delegates to the engine's timing model: the FC pipeline is the
// engine's, and the caller pins the lookup stage (SLA admission passes
// LookupNS — the max-over-shards bound).
func (c *Cluster) TimingAt(items int, lookupNS float64) (core.TimingReport, error) {
	return c.eng.TimingAt(items, lookupNS)
}

// LookupNS is the tier's cache-cold lookup latency: the slowest shard's
// modeled subset latency. Shards gather in parallel, so the tier waits for
// the straggler — max over shards, never the sum — and each shard's figure is
// at most the single engine's (removing tables never slows a bank). On a
// tiered engine the residency-weighted cold-tier bound is added on top:
// every shard resolves rows through the same backing store, so a cold row
// stalls whichever shard owns it and the straggler wait absorbs it. SLA
// admission uses this bound, so sharded admission is conservative against the
// worst shard, not the average.
func (c *Cluster) LookupNS() float64 { return c.coldNS + c.eng.TierBoundNS() }

// EffectiveLookupNS is the tier's lookup latency at the shards' current
// hot-row cache hit rates: each shard's cold latency shrinks with its own hit
// rate (hits cost the on-chip fraction of a DRAM access), and the tier still
// waits for the slowest shard. On a tiered engine the current
// residency-weighted cold-tier bound rides on top — it shrinks as the sweep
// promotes rows, so the figure tracks warm-up without ever understating the
// backing-store term.
func (c *Cluster) EffectiveLookupNS() float64 {
	var worst float64
	for _, sh := range c.shards {
		ns := sh.coldNS
		if sh.cache != nil {
			ns *= 1 - sh.cache.HitRate()*(1-c.hitScale)
		}
		if ns > worst {
			worst = ns
		}
	}
	return worst + c.eng.TierBoundNS()
}

// Tier delegates the tiered-store snapshot to the underlying engine; ok is
// false on an all-DRAM engine.
func (c *Cluster) Tier() (tieredstore.Snapshot, bool) { return c.eng.Tier() }

// PrefetchBatch delegates the cold-row prefetch pass to the engine: shards
// read rows through the same backing store, so warming it before the scatter
// round benefits every shard's gather.
func (c *Cluster) PrefetchBatch(queries []embedding.Query) { c.eng.PrefetchBatch(queries) }

// HotCacheHitRate is the tier-wide hit rate over a coherent snapshot of
// every shard cache's counters; ok is false when caching is disabled.
func (c *Cluster) HotCacheHitRate() (float64, bool) {
	var hits, misses int64
	attached := false
	for _, sh := range c.shards {
		if sh.cache == nil {
			continue
		}
		attached = true
		st := sh.cache.Stats()
		hits += st.Hits
		misses += st.Misses
	}
	if !attached {
		return 0, false
	}
	if hits+misses == 0 {
		return 0, true
	}
	return float64(hits) / float64(hits+misses), true
}

// HotCache aggregates the shard caches into one snapshot; ok is false when
// caching is disabled. EffectiveLookupNS carries the tier's max-over-shards
// figure, so /stats reads the same bound serving decisions use.
func (c *Cluster) HotCache() (core.HotCacheInfo, bool) {
	var info core.HotCacheInfo
	attached := false
	for _, sh := range c.shards {
		if sh.cache == nil {
			continue
		}
		attached = true
		st := sh.cache.Stats()
		info.CapacityBytes += sh.cache.CapacityBytes()
		info.UsedBytes += st.UsedBytes
		info.Entries += st.Entries
		info.Hits += st.Hits
		info.Misses += st.Misses
	}
	if !attached {
		return core.HotCacheInfo{}, false
	}
	if total := info.Hits + info.Misses; total > 0 {
		info.HitRate = float64(info.Hits) / float64(total)
	}
	info.EffectiveLookupNS = c.EffectiveLookupNS()
	return info, true
}

// ---- stats ----

// ShardStats is one shard's point-in-time view.
type ShardStats struct {
	ID int `json:"id"`
	// Tables is the number of physical tables this shard owns.
	Tables int `json:"tables"`
	// ColdLookupNS is the shard's modeled cache-cold lookup latency.
	ColdLookupNS float64 `json:"cold_lookup_ns"`
	// Batches is the lifetime count of scatter rounds served.
	Batches uint64 `json:"batches"`
	// MeanServiceUS / P99ServiceUS summarise the rolling per-batch gather
	// service time.
	MeanServiceUS float64 `json:"mean_service_us"`
	P99ServiceUS  float64 `json:"p99_service_us"`
	// Occupancy is the fraction of recent wall time the shard spent
	// gathering (rolling batch rate x mean service, capped at 1).
	Occupancy float64 `json:"occupancy"`
	// CacheHitRate is the shard's private hot-row cache hit rate (absent
	// when caching is disabled).
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// Stats is the /stats "cluster" section: the shard partition, the
// straggler-aware merge metrics, and per-shard occupancy.
type Stats struct {
	// Shards is the effective shard count; RingDepth each shard's partial-
	// plane ring size.
	Shards    int `json:"shards"`
	RingDepth int `json:"ring_depth"`
	// Batches is the lifetime count of scatter/gather rounds.
	Batches uint64 `json:"batches"`
	// ColdLookupNS is the tier's max-over-shards cache-cold lookup latency
	// (the SLA admission bound); EffectiveLookupNS the same figure at the
	// current shard cache hit rates.
	ColdLookupNS      float64 `json:"cold_lookup_ns"`
	EffectiveLookupNS float64 `json:"effective_lookup_ns"`
	// MergeWaitUS is the distribution of coordinator straggler waits: per
	// batch, the gap between the first and last shard completion. A balanced
	// partition keeps the tail near zero; a skewed one shows up here before
	// it shows up in end-to-end latency.
	MergeWaitUS metrics.HistogramSnapshot `json:"merge_wait_us"`
	// ImbalanceRatio is the rolling mean of per-batch max/mean shard gather
	// service — 1.0 is a perfectly balanced round, N is one shard doing all
	// the work.
	ImbalanceRatio float64 `json:"imbalance_ratio"`
	// PerShard holds each shard's view, in shard order.
	PerShard []ShardStats `json:"per_shard"`
}

// Stats snapshots the tier.
func (c *Cluster) Stats() Stats {
	now := time.Now()
	st := Stats{
		Shards:            len(c.shards),
		RingDepth:         c.opts.RingDepth,
		Batches:           c.batches.Load(),
		ColdLookupNS:      c.coldNS,
		EffectiveLookupNS: c.EffectiveLookupNS(),
		MergeWaitUS:       c.mergeWaitUS.Snapshot(),
		ImbalanceRatio:    c.imbalance.Snapshot(now).Summary.Mean,
		PerShard:          make([]ShardStats, len(c.shards)),
	}
	for i, sh := range c.shards {
		s := sh.service.Snapshot(now)
		occ := s.RatePerSec * s.Summary.Mean / 1e9
		if occ > 1 {
			occ = 1
		}
		st.PerShard[i] = ShardStats{
			ID:            sh.id,
			Tables:        len(sh.tables),
			ColdLookupNS:  sh.coldNS,
			Batches:       sh.batches.Load(),
			MeanServiceUS: s.Summary.Mean / 1e3,
			P99ServiceUS:  s.Summary.P99 / 1e3,
			Occupancy:     occ,
		}
		if sh.cache != nil {
			st.PerShard[i].CacheHitRate = sh.cache.HitRate()
		}
	}
	return st
}
