package cluster_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"microrec/internal/cluster"
	"microrec/internal/core"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
	"microrec/internal/serving"
	"microrec/internal/tieredstore"
)

// The sharded tier must satisfy the serving layer's optional tier
// capabilities too, so a tiered sharded deployment gets the prefetch pass and
// the /stats section.
var (
	_ serving.Tiered     = (*cluster.Cluster)(nil)
	_ serving.Prefetcher = (*cluster.Cluster)(nil)
)

// buildTieredEngine mirrors buildEngine with a manual-sweep cold tier
// attached (tests drive placement explicitly).
func buildTieredEngine(t testing.TB, spec *model.Spec, hotBytes int64) *core.Engine {
	t.Helper()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ConfigFor(spec.Name, core.SmallFP16().Precision)
	cfg.ColdTier = &tieredstore.Config{HotBytes: hotBytes, SweepEvery: -1}
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestShardedTieredBitIdentity is the cluster x cold-tier e2e property: for
// shard counts {1..4} and random placements repinned between batches, the
// sharded scatter/gather over a tiered engine stays bit-identical to the
// all-DRAM single engine.
func TestShardedTieredBitIdentity(t *testing.T) {
	spec := model.SmallProduction()
	ref := buildEngine(t, spec, 0)
	tiered := buildTieredEngine(t, spec, 0)
	store := tiered.TierStore()
	if store == nil {
		t.Fatal("no tier store attached")
	}
	rng := rand.New(rand.NewSource(31))
	repin := func(frac float64) {
		for id := 0; id < store.Streams(); id++ {
			st := store.Stream(id)
			var rows []int64
			for r := int64(0); r < st.Rows(); r++ {
				if rng.Float64() < frac {
					rows = append(rows, r)
				}
			}
			store.SetPlacement(id, rows)
		}
	}
	var scratch core.BatchScratch
	for _, shards := range []int{1, 2, 3, 4} {
		c, err := cluster.New(tiered, cluster.Options{Shards: shards, HotCacheBytes: 1 << 18})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for round, frac := range []float64{0, 0.3, 0.9, 1} {
			repin(frac)
			qs := randomQueries(spec, 33, int64(shards*100+round))
			want, err := ref.InferBatch(qs, nil, &scratch)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.InferBatch(qs, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d frac=%v query %d: tiered %v, all-DRAM %v",
						shards, frac, i, got[i], want[i])
				}
			}
		}
		// The tier's admission bound must carry the cold-tier term on top of
		// the max-over-shards subset latency.
		if got, want := c.LookupNS(), tiered.TierBoundNS(); got <= want {
			t.Fatalf("shards=%d: cluster LookupNS %v not above tier bound %v", shards, got, want)
		}
		if _, ok := c.Tier(); !ok {
			t.Fatalf("shards=%d: cluster does not surface the tier", shards)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedTieredSweepHarvest checks the per-shard caches feed the
// placement sweep: traffic served only through the cluster still promotes
// rows (the coordinator engine's own cache sees no gather traffic).
func TestShardedTieredSweepHarvest(t *testing.T) {
	spec := model.SmallProduction()
	tiered := buildTieredEngine(t, spec, 0)
	store := tiered.TierStore()
	c, err := cluster.New(tiered, cluster.Options{Shards: 3, HotCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := randomQueries(spec, 8, 3)
	for round := 0; round < 30; round++ {
		if _, err := c.InferBatch(qs, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	store.SweepNow()
	snap, ok := c.Tier()
	if !ok {
		t.Fatal("tier not surfaced")
	}
	if snap.HotRows == 0 || snap.Promotions == 0 {
		t.Fatalf("sharded traffic harvested nothing: %+v", snap)
	}
}

// TestServerShardsTieredStats runs the full serving stack — micro-batcher,
// pipelined drain, sharded tier, cold tier — and checks /stats surfaces the
// tiers section and the prefetch pass ran.
func TestServerShardsTieredStats(t *testing.T) {
	spec := model.SmallProduction()
	tiered := buildTieredEngine(t, spec, 0)
	srv, err := serving.New(tiered, serving.Options{
		Shards:   2,
		MaxBatch: 8,
		Window:   100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := randomQueries(spec, 24, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, q := range qs {
		if _, err := srv.Submit(ctx, q); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Tiers == nil {
		t.Fatal("stats missing tiers section")
	}
	if st.Tiers.Prefetches == 0 {
		t.Fatal("prefetch pass never ran on an all-cold tier")
	}
	if st.Tiers.ColdReads == 0 {
		t.Fatal("all-cold serving recorded no cold reads")
	}
	if st.Cluster == nil || st.Cluster.Shards != 2 {
		t.Fatalf("cluster section %+v", st.Cluster)
	}
}
