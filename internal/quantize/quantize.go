// Package quantize implements calibration-based per-layer fixed-point
// quantization — an accuracy extension beyond the paper's single global
// format per precision level (§5.3 evaluates fixed global 16/32-bit
// datapaths).
//
// Calibration runs the float reference model over sample traffic, records
// per-tensor dynamic ranges, and picks for every tensor the highest-
// resolution Q-format of the target width that still covers its range. The
// quantized forward pass then requantizes activations between layers.
package quantize

import (
	"fmt"
	"math"

	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
	"microrec/internal/model"
	"microrec/internal/tensor"
)

// Scheme holds per-tensor formats for one model.
type Scheme struct {
	// Width is the storage width (16 or 32).
	Width int
	// Input is the feature-vector format.
	Input fixedpoint.Format
	// Weights[l] is layer l's weight format.
	Weights []fixedpoint.Format
	// Activations[l] is the format of layer l's output.
	Activations []fixedpoint.Format
}

// Validate checks the scheme.
func (s Scheme) Validate() error {
	if s.Width != 16 && s.Width != 32 {
		return fmt.Errorf("quantize: width %d", s.Width)
	}
	if err := s.Input.Validate(); err != nil {
		return err
	}
	if len(s.Weights) == 0 || len(s.Weights) != len(s.Activations) {
		return fmt.Errorf("quantize: %d weight formats, %d activation formats", len(s.Weights), len(s.Activations))
	}
	for _, f := range append(append([]fixedpoint.Format{}, s.Weights...), s.Activations...) {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Calibrate derives a scheme from sample queries: the float reference model
// runs over the samples while per-tensor maxima are recorded.
func Calibrate(params *model.Parameters, queries []embedding.Query, width int) (Scheme, error) {
	if params == nil {
		return Scheme{}, fmt.Errorf("quantize: nil parameters")
	}
	if len(queries) == 0 {
		return Scheme{}, fmt.Errorf("quantize: no calibration queries")
	}
	store, err := embedding.NewStore(params)
	if err != nil {
		return Scheme{}, err
	}
	dims := params.Spec.LayerDims()
	maxIn := 0.0
	maxAct := make([]float64, len(dims))
	for qi, q := range queries {
		feat, err := store.Gather(q, nil)
		if err != nil {
			return Scheme{}, fmt.Errorf("quantize: query %d: %w", qi, err)
		}
		maxIn = math.Max(maxIn, maxAbs32(feat))
		x := feat
		for l := range dims {
			y, err := tensor.MatVec(params.Weights[l].Transpose(), x, nil)
			if err != nil {
				return Scheme{}, err
			}
			for j := range y {
				y[j] += params.Biases[l][j]
			}
			if l < len(dims)-1 {
				tensor.ReLU(y)
			}
			maxAct[l] = math.Max(maxAct[l], maxAbs32(y))
			x = y
		}
	}
	s := Scheme{Width: width}
	// Headroom keeps unseen traffic from saturating immediately.
	const headroom = 2.0
	if s.Input, err = fixedpoint.FormatFor(width, math.Max(maxIn, 1e-3)*headroom); err != nil {
		return Scheme{}, err
	}
	for l := range dims {
		wMax := maxAbsMatrix(params.Weights[l])
		wf, err := fixedpoint.FormatFor(width, math.Max(wMax, 1e-3))
		if err != nil {
			return Scheme{}, err
		}
		s.Weights = append(s.Weights, wf)
		af, err := fixedpoint.FormatFor(width, math.Max(maxAct[l], 1e-3)*headroom)
		if err != nil {
			return Scheme{}, err
		}
		s.Activations = append(s.Activations, af)
	}
	return s, nil
}

func maxAbs32(xs []float32) float64 {
	m := 0.0
	for _, v := range xs {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

func maxAbsMatrix(m *tensor.Matrix) float64 { return maxAbs32(m.Data) }

// Model is a quantized model instance ready for inference.
type Model struct {
	scheme  Scheme
	params  *model.Parameters
	store   *embedding.Store
	dims    [][2]int
	weights [][]int64 // per layer, raw in scheme.Weights[l]
	biases  [][]int64 // per layer, raw in scheme.Activations[l]
}

// New quantizes the parameters under the scheme.
func New(params *model.Parameters, s Scheme) (*Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if params == nil {
		return nil, fmt.Errorf("quantize: nil parameters")
	}
	dims := params.Spec.LayerDims()
	if len(dims) != len(s.Weights) {
		return nil, fmt.Errorf("quantize: scheme covers %d layers, model has %d", len(s.Weights), len(dims))
	}
	store, err := embedding.NewStore(params)
	if err != nil {
		return nil, err
	}
	m := &Model{scheme: s, params: params, store: store, dims: dims}
	for l := range dims {
		wf := s.Weights[l]
		w := params.Weights[l]
		raw := make([]int64, len(w.Data))
		for i, v := range w.Data {
			raw[i] = wf.Quantize(float64(v))
		}
		m.weights = append(m.weights, raw)
		af := s.Activations[l]
		braw := make([]int64, len(params.Biases[l]))
		for i, v := range params.Biases[l] {
			braw[i] = af.Quantize(float64(v))
		}
		m.biases = append(m.biases, braw)
	}
	return m, nil
}

// Scheme returns the model's formats.
func (m *Model) Scheme() Scheme { return m.scheme }

// Infer runs one query through the per-layer-quantized datapath.
func (m *Model) Infer(q embedding.Query) (float32, error) {
	feat, err := m.store.Gather(q, nil)
	if err != nil {
		return 0, err
	}
	inf := m.scheme.Input
	x := make([]int64, len(feat))
	for i, v := range feat {
		x[i] = inf.Quantize(float64(v))
	}
	xf := inf
	for l, d := range m.dims {
		in, out := d[0], d[1]
		if len(x) != in {
			return 0, fmt.Errorf("quantize: layer %d input %d, want %d", l, len(x), in)
		}
		wf := m.scheme.Weights[l]
		af := m.scheme.Activations[l]
		w := m.weights[l]
		y := make([]int64, out)
		// The product x*w carries xf.Frac + wf.Frac fractional bits;
		// rescale the exact accumulator into the activation format.
		shift := xf.Frac + wf.Frac - af.Frac
		for j := 0; j < out; j++ {
			var acc int64
			for i := 0; i < in; i++ {
				acc += x[i] * w[i*out+j]
			}
			y[j] = af.Add(rescale(acc, shift), m.biases[l][j])
		}
		if l < len(m.dims)-1 {
			fixedpoint.ReLU(y)
		}
		x = y
		xf = af
	}
	// Sigmoid on the final logit.
	out := xf.Sigmoid(x[0])
	return float32(xf.Dequantize(out)), nil
}

// rescale shifts an exact accumulator right (rounding) or left by the given
// amount of fractional bits.
func rescale(acc int64, shift int) int64 {
	switch {
	case shift > 0:
		half := int64(1) << uint(shift-1)
		if acc >= 0 {
			return (acc + half) >> uint(shift)
		}
		return -((-acc + half) >> uint(shift))
	case shift < 0:
		return acc << uint(-shift)
	default:
		return acc
	}
}

// Reference computes the float32 reference prediction for error measurement.
func (m *Model) Reference(q embedding.Query) (float32, error) {
	feat, err := m.store.Gather(q, nil)
	if err != nil {
		return 0, err
	}
	x := feat
	for l := range m.dims {
		y, err := tensor.MatVec(m.params.Weights[l].Transpose(), x, nil)
		if err != nil {
			return 0, err
		}
		for j := range y {
			y[j] += m.params.Biases[l][j]
		}
		if l < len(m.dims)-1 {
			tensor.ReLU(y)
		}
		x = y
	}
	out := []float32{x[0]}
	tensor.Sigmoid(out)
	return out[0], nil
}
