package quantize

import (
	"math"
	"testing"

	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
	"microrec/internal/model"
	"microrec/internal/workload"
)

func setup(t testing.TB) (*model.Parameters, []embedding.Query, []embedding.Query) {
	t.Helper()
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 4, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(spec, workload.Uniform, 17)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := gen.Batch(20)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := gen.Batch(20)
	if err != nil {
		t.Fatal(err)
	}
	return params, calib, eval
}

func TestCalibrateProducesValidScheme(t *testing.T) {
	params, calib, _ := setup(t)
	s, err := Calibrate(params, calib, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Weights) != 4 || len(s.Activations) != 4 {
		t.Errorf("scheme covers %d/%d layers, want 4", len(s.Weights), len(s.Activations))
	}
	// Weights are Xavier-bounded (< 1), so their format should use nearly
	// all fractional bits.
	if s.Weights[0].Frac < 12 {
		t.Errorf("weight format %v wastes integer bits on sub-1.0 weights", s.Weights[0])
	}
}

func TestCalibrateErrors(t *testing.T) {
	params, calib, _ := setup(t)
	if _, err := Calibrate(nil, calib, 16); err == nil {
		t.Error("nil params: want error")
	}
	if _, err := Calibrate(params, nil, 16); err == nil {
		t.Error("no queries: want error")
	}
	if _, err := Calibrate(params, calib, 8); err == nil {
		t.Error("bad width: want error")
	}
}

func TestQuantizedInferTracksReference(t *testing.T) {
	params, calib, eval := setup(t)
	s, err := Calibrate(params, calib, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(params, s)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for _, q := range eval {
		got, err := m.Infer(q)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := m.Reference(q)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 || got > 1 {
			t.Errorf("prediction %v outside [0,1]", got)
		}
		maxErr = math.Max(maxErr, math.Abs(float64(got-ref)))
	}
	if maxErr > 0.02 {
		t.Errorf("calibrated 16-bit max error %.5f > 0.02", maxErr)
	}
}

func TestCalibratedBeatsGlobalFormat(t *testing.T) {
	// The point of the extension: per-layer calibrated formats should not
	// be worse than the single global Q6.10 the engine defaults to.
	params, calib, eval := setup(t)
	s, err := Calibrate(params, calib, 16)
	if err != nil {
		t.Fatal(err)
	}
	calibrated, err := New(params, s)
	if err != nil {
		t.Fatal(err)
	}
	global := Scheme{
		Width: 16,
		Input: fixedpoint.Fixed16,
		Weights: []fixedpoint.Format{
			fixedpoint.Fixed16, fixedpoint.Fixed16, fixedpoint.Fixed16, fixedpoint.Fixed16,
		},
		Activations: []fixedpoint.Format{
			fixedpoint.Fixed16, fixedpoint.Fixed16, fixedpoint.Fixed16, fixedpoint.Fixed16,
		},
	}
	plain, err := New(params, global)
	if err != nil {
		t.Fatal(err)
	}
	var errCal, errGlob float64
	for _, q := range eval {
		ref, err := calibrated.Reference(q)
		if err != nil {
			t.Fatal(err)
		}
		c, err := calibrated.Infer(q)
		if err != nil {
			t.Fatal(err)
		}
		g, err := plain.Infer(q)
		if err != nil {
			t.Fatal(err)
		}
		errCal += math.Abs(float64(c - ref))
		errGlob += math.Abs(float64(g - ref))
	}
	if errCal > errGlob*1.05 {
		t.Errorf("calibrated error %.6f worse than global %.6f", errCal, errGlob)
	}
}

func TestNewErrors(t *testing.T) {
	params, calib, _ := setup(t)
	s, err := Calibrate(params, calib, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, s); err == nil {
		t.Error("nil params: want error")
	}
	bad := s
	bad.Weights = bad.Weights[:2]
	if _, err := New(params, bad); err == nil {
		t.Error("short scheme: want error")
	}
	invalid := s
	invalid.Width = 12
	if _, err := New(params, invalid); err == nil {
		t.Error("invalid width: want error")
	}
}

func TestRescale(t *testing.T) {
	if got := rescale(1000, 2); got != 250 {
		t.Errorf("rescale(1000,2) = %d", got)
	}
	if got := rescale(-1000, 2); got != -250 {
		t.Errorf("rescale(-1000,2) = %d", got)
	}
	if got := rescale(5, -3); got != 40 {
		t.Errorf("rescale(5,-3) = %d", got)
	}
	if got := rescale(7, 0); got != 7 {
		t.Errorf("rescale(7,0) = %d", got)
	}
	// Rounding: 6>>2 with half=2 -> (6+2)>>2 = 2.
	if got := rescale(6, 2); got != 2 {
		t.Errorf("rescale(6,2) = %d", got)
	}
}

func BenchmarkQuantizedInfer(b *testing.B) {
	params, calib, eval := setup(b)
	s, err := Calibrate(params, calib, 16)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(params, s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Infer(eval[i%len(eval)]); err != nil {
			b.Fatal(err)
		}
	}
}
