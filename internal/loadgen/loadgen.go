// Package loadgen is the open-loop load harness for the serving subsystem:
// arrival processes (Poisson, trace replay) that offer requests at a
// configured rate *regardless of completions*, plus a runner and a load
// sweep that locate the knee — the highest offered rate whose admitted-tail
// latency still meets the SLA.
//
// Open-loop matters because it is the only measurement discipline under
// which overload is visible: a closed-loop driver (fixed client count, next
// request after the previous response) slows down in lockstep with a
// saturated server, so queues never build and the tail looks healthy — the
// coordinated-omission failure mode. Production recommendation traffic is
// open-loop by nature (users do not wait for each other), bursty, and
// strictly tail-SLA-bound, which is exactly the regime the serving stack's
// admission control (bounded queue + shed + deadline drops) exists for; this
// package is the instrument that drives the system past saturation and
// verifies the defenses hold.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"microrec/internal/embedding"
	"microrec/internal/metrics"
	"microrec/internal/serving"
)

// Arrivals yields successive inter-arrival gaps of an arrival process.
// Implementations need not be safe for concurrent use; the runner consumes
// them from a single goroutine.
type Arrivals interface {
	Next() time.Duration
}

// Poisson is a memoryless open-loop arrival process: exponentially
// distributed gaps at a fixed offered rate, the standard model for
// independent user traffic (and the arrival process internal/sla's queue
// simulation uses).
type Poisson struct {
	rng  *rand.Rand
	mean float64 // mean gap in ns
}

// NewPoisson builds a deterministic Poisson process offering `qps` requests
// per second.
func NewPoisson(qps float64, seed int64) (*Poisson, error) {
	if qps <= 0 {
		return nil, fmt.Errorf("loadgen: offered rate %v qps", qps)
	}
	return &Poisson{rng: rand.New(rand.NewSource(seed)), mean: float64(time.Second) / qps}, nil
}

// Next returns the next exponential gap.
func (p *Poisson) Next() time.Duration { return time.Duration(p.rng.ExpFloat64() * p.mean) }

// Trace replays a recorded sequence of inter-arrival gaps, cycling when
// exhausted — the trace-driven process for reproducing captured bursts.
type Trace struct {
	gaps []time.Duration
	i    int
}

// NewTrace builds a trace process over the given gaps (all non-negative).
func NewTrace(gaps []time.Duration) (*Trace, error) {
	if len(gaps) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	for i, g := range gaps {
		if g < 0 {
			return nil, fmt.Errorf("loadgen: negative gap %v at trace position %d", g, i)
		}
	}
	return &Trace{gaps: append([]time.Duration(nil), gaps...)}, nil
}

// Next returns the next recorded gap, cycling.
func (t *Trace) Next() time.Duration {
	g := t.gaps[t.i]
	t.i = (t.i + 1) % len(t.gaps)
	return g
}

// Target is the slice of the serving subsystem the runner drives;
// *serving.Server implements it directly.
type Target interface {
	Submit(ctx context.Context, q embedding.Query) (serving.Result, error)
}

// Options configures one open-loop run.
type Options struct {
	// Requests is the number of arrivals to offer. Required.
	Requests int
	// SLA bounds each request: it becomes the per-request context deadline,
	// and admitted p99 is judged against it. Required.
	SLA time.Duration
	// HistEps is the latency histogram's relative quantile error.
	// Default 1%.
	HistEps float64
}

func (o Options) validate() error {
	if o.Requests < 1 {
		return fmt.Errorf("loadgen: %d requests", o.Requests)
	}
	if o.SLA <= 0 {
		return fmt.Errorf("loadgen: SLA %v", o.SLA)
	}
	return nil
}

// Result summarises one open-loop run. Latencies are in µs.
type Result struct {
	// Offered is the number of arrivals fired.
	Offered int `json:"offered"`
	// Admitted counts requests that completed with a prediction.
	Admitted int `json:"admitted"`
	// Shed counts fast-fail rejections (serving.ErrOverloaded).
	Shed int `json:"shed"`
	// Expired counts requests that were admitted into the queue but missed
	// their deadline (dropped at plane-fill time or timed out waiting).
	Expired int `json:"expired"`
	// Failed counts any other error.
	Failed int `json:"failed"`
	// Duration spans the first arrival to the last completion.
	Duration time.Duration `json:"duration_ns"`
	// OfferedQPS is the realised offered rate (arrivals over the offer
	// span); AdmittedQPS is the goodput (admitted completions over the full
	// run).
	OfferedQPS  float64 `json:"offered_qps"`
	AdmittedQPS float64 `json:"admitted_qps"`
	// AdmittedLatencyUS is the latency distribution of admitted requests;
	// ShedLatencyUS is the fail-fast time of shed requests (µs).
	AdmittedLatencyUS metrics.HistogramSnapshot `json:"admitted_latency_us"`
	ShedLatencyUS     metrics.HistogramSnapshot `json:"shed_latency_us"`
}

// MeetsSLA reports whether the run sustained its offered load: some traffic
// was admitted, the admitted p99 fit the budget, and losses (shed + expired
// + failed) stayed within tol as a fraction of offered — a server that meets
// the tail by rejecting half its traffic has not met the SLA at that load.
func (r Result) MeetsSLA(sla time.Duration, tol float64) bool {
	if r.Admitted == 0 {
		return false
	}
	if r.AdmittedLatencyUS.P99 > float64(sla)/float64(time.Microsecond) {
		return false
	}
	return float64(r.Shed+r.Expired+r.Failed) <= tol*float64(r.Offered)
}

// Run drives one open-loop run: requests fire at the arrival process's
// schedule (never waiting for completions; if the runner falls behind it
// fires immediately, preserving the offered count), each bounded by the SLA
// as its context deadline. Queries are taken round-robin from qs.
func Run(target Target, qs []embedding.Query, arr Arrivals, opts Options) (Result, error) {
	if target == nil {
		return Result{}, fmt.Errorf("loadgen: nil target")
	}
	if len(qs) == 0 {
		return Result{}, fmt.Errorf("loadgen: no queries")
	}
	if arr == nil {
		return Result{}, fmt.Errorf("loadgen: nil arrival process")
	}
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	eps := opts.HistEps
	if eps == 0 {
		eps = 0.01
	}
	// Range: 1µs to 1e9µs (~17min) covers any latency a run can observe.
	admittedHist := metrics.NewHistogram(eps, 1e9)
	shedHist := metrics.NewHistogram(eps, 1e9)

	var (
		wg                              sync.WaitGroup
		admitted, shed, expired, failed atomic.Int64
	)
	start := time.Now()
	next := start
	for i := 0; i < opts.Requests; i++ {
		next = next.Add(arr.Next())
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		q := qs[i%len(qs)]
		wg.Add(1)
		go func(q embedding.Query) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), opts.SLA)
			defer cancel()
			t0 := time.Now()
			_, err := target.Submit(ctx, q)
			lat := time.Since(t0)
			switch {
			case err == nil:
				admitted.Add(1)
				admittedHist.ObserveDuration(lat)
			case errors.Is(err, serving.ErrOverloaded):
				shed.Add(1)
				shedHist.ObserveDuration(lat)
			case errors.Is(err, serving.ErrExpired),
				errors.Is(err, context.DeadlineExceeded),
				errors.Is(err, context.Canceled):
				expired.Add(1)
			default:
				failed.Add(1)
			}
		}(q)
	}
	offerSpan := time.Since(start)
	wg.Wait()
	total := time.Since(start)

	res := Result{
		Offered:           opts.Requests,
		Admitted:          int(admitted.Load()),
		Shed:              int(shed.Load()),
		Expired:           int(expired.Load()),
		Failed:            int(failed.Load()),
		Duration:          total,
		AdmittedLatencyUS: admittedHist.Snapshot(),
		ShedLatencyUS:     shedHist.Snapshot(),
	}
	if offerSpan > 0 {
		res.OfferedQPS = float64(opts.Requests) / offerSpan.Seconds()
	}
	if total > 0 {
		res.AdmittedQPS = float64(res.Admitted) / total.Seconds()
	}
	return res, nil
}

// SweepOptions configures a load sweep.
type SweepOptions struct {
	// Loads is the offered-rate ladder in qps, ascending. Required.
	Loads []float64
	// Requests is the arrivals offered per load level. Required.
	Requests int
	// SLA is the per-request deadline and the knee criterion. Required.
	SLA time.Duration
	// Tolerance is the loss fraction (shed+expired+failed over offered)
	// still counted as meeting the SLA. Zero is meaningful — strictly no
	// losses at the knee; negative is rejected.
	Tolerance float64
	// Seed drives the per-level Poisson processes deterministically.
	Seed int64
}

// Point is one sweep level: the configured offered rate plus its run result.
type Point struct {
	TargetQPS float64 `json:"target_qps"`
	Result
}

// SweepResult is a full sweep: every level plus the located knee.
type SweepResult struct {
	Points []Point `json:"points"`
	// KneeQPS is the highest offered rate that met the SLA (0 when none
	// did) — the serving capacity figure the paper's tail-latency claims
	// are made at.
	KneeQPS float64 `json:"knee_qps"`
}

// Sweep runs one open-loop Poisson run per load level, in order, and locates
// the knee. Levels after the first SLA miss still run: the points past the
// knee are the interesting ones (they demonstrate whether shedding holds the
// admitted tail or the server collapses).
func Sweep(target Target, qs []embedding.Query, opts SweepOptions) (SweepResult, error) {
	if len(opts.Loads) == 0 {
		return SweepResult{}, fmt.Errorf("loadgen: empty load ladder")
	}
	for i := 1; i < len(opts.Loads); i++ {
		if opts.Loads[i] <= opts.Loads[i-1] {
			return SweepResult{}, fmt.Errorf("loadgen: load ladder not ascending at position %d (%v after %v)", i, opts.Loads[i], opts.Loads[i-1])
		}
	}
	if opts.Tolerance < 0 || opts.Tolerance >= 1 {
		return SweepResult{}, fmt.Errorf("loadgen: tolerance %v outside [0, 1)", opts.Tolerance)
	}
	tol := opts.Tolerance
	var sweep SweepResult
	for i, qps := range opts.Loads {
		arr, err := NewPoisson(qps, opts.Seed+int64(i))
		if err != nil {
			return SweepResult{}, err
		}
		res, err := Run(target, qs, arr, Options{Requests: opts.Requests, SLA: opts.SLA})
		if err != nil {
			return SweepResult{}, err
		}
		sweep.Points = append(sweep.Points, Point{TargetQPS: qps, Result: res})
		if res.MeetsSLA(opts.SLA, tol) && qps > sweep.KneeQPS {
			sweep.KneeQPS = qps
		}
	}
	return sweep, nil
}
