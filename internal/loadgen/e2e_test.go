package loadgen

import (
	"testing"
	"time"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
	"microrec/internal/serving"
	"microrec/internal/workload"
)

// TestLoadtestSmokeEndToEnd drives a real shedding server open-loop past
// saturation: it calibrates the achievable rate with a deliberately
// overloaded burst, sweeps a ladder through 2x that rate, and asserts the
// measured knee stays at or below the pipesim-predicted capacity while the
// admitted tail holds through overload — the acceptance shape of the
// `microrec loadtest` subcommand, in miniature.
func TestLoadtestSmokeEndToEnd(t *testing.T) {
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SmallFP16()
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Generous budget: the knee-vs-capacity and shed-vs-collapse shapes are
	// what this smoke pins, and they must hold on race-instrumented CI
	// hosts where every stage runs an order of magnitude slower.
	sla := 250 * time.Millisecond
	srv, err := serving.New(eng, serving.Options{
		MaxBatch: 8, Window: 200 * time.Microsecond,
		QueueDepth: 32, PipelineDepth: 3,
		Shed: true, SLA: sla,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gen, err := workload.NewGenerator(spec, workload.Zipf, 17)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]embedding.Query, 64)
	for i := range qs {
		qs[i] = gen.Next()
	}

	// Calibrate: offer far past any plausible capacity; the admitted rate
	// of a shedding server approximates its saturation throughput. The rate
	// must stay far ahead of the datapath as it speeds up: at 100k qps the
	// SIMD kernels drained the 400-request burst without a single shed.
	arr, err := NewPoisson(1e6, 5)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := Run(srv, qs, arr, Options{Requests: 400, SLA: sla})
	if err != nil {
		t.Fatal(err)
	}
	if calib.Admitted == 0 || calib.Shed == 0 {
		t.Fatalf("calibration burst should both admit and shed: %+v", calib)
	}
	capacity := calib.AdmittedQPS

	sweep, err := Sweep(srv, qs, SweepOptions{
		Loads:     []float64{0.25 * capacity, 0.6 * capacity, 2 * capacity},
		Requests:  300,
		SLA:       sla,
		Seed:      9,
		Tolerance: 0.03, // Poisson bursts against a 4-batch queue shed a little even well under capacity
	})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.KneeQPS <= 0 {
		t.Fatalf("no load level met the SLA; points: %+v", sweep.Points)
	}

	// The knee cannot exceed what the pipeline can sustain: pipesim's
	// predicted capacity over the measured stage times bounds it (slack for
	// measurement noise on a shared CI host).
	predicted := srv.CapacityQPS()
	if predicted <= 0 {
		t.Fatal("no pipesim capacity prediction after traffic")
	}
	if sweep.KneeQPS > 1.25*predicted {
		t.Errorf("knee %v qps exceeds pipesim-predicted capacity %v qps", sweep.KneeQPS, predicted)
	}

	// Past-saturation behaviour: the 2x point must shed rather than let the
	// admitted tail collapse (the bounded queue caps queueing delay).
	over := sweep.Points[len(sweep.Points)-1]
	if over.Shed == 0 {
		t.Errorf("2x-capacity point shed nothing: %+v", over.Result)
	}
	// Late completions resolve as expired, so every admitted latency is
	// client-visibly within the deadline; 2% slack covers the histogram's
	// bucket resolution.
	if p99 := over.AdmittedLatencyUS.P99; p99 > 1.02*float64(sla)/float64(time.Microsecond) {
		t.Errorf("admitted p99 %vµs exceeded the %v SLA under 2x overload", p99, sla)
	}
	// Shed requests never wait on the engine: their tail is scheduler noise,
	// far below the SLA (the committed BENCH_loadtest.json shows sub-ms on
	// an unloaded host; race-instrumented CI needs the slack).
	if over.ShedLatencyUS.Count > 0 && over.ShedLatencyUS.P99 > 50000 {
		t.Errorf("shed p99 %vµs — fast-fail path blocked", over.ShedLatencyUS.P99)
	}

	// The admission stats surfaced what the run measured.
	st := srv.Stats()
	if st.Admission.Shed == 0 || st.Admission.KneeQPS <= 0 {
		t.Errorf("admission stats after sweep = %+v", st.Admission)
	}
}

// TestLoadShardedServerEndToEnd drives the open-loop harness against the
// sharded scatter/gather tier: the same measurement discipline must hold when
// Options.Shards partitions the gather, every admitted request must carry a
// real prediction, and the server's cluster stats must account for every
// scatter round the run produced.
func TestLoadShardedServerEndToEnd(t *testing.T) {
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SmallFP16()
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serving.New(eng, serving.Options{
		MaxBatch: 8, Window: 200 * time.Microsecond,
		QueueDepth: 32, Shed: true, SLA: 250 * time.Millisecond,
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gen, err := workload.NewGenerator(spec, workload.Zipf, 23)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]embedding.Query, 64)
	for i := range qs {
		qs[i] = gen.Next()
	}
	arr, err := NewPoisson(2000, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(srv, qs, arr, Options{Requests: 300, SLA: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Fatalf("sharded server admitted nothing: %+v", res)
	}
	st := srv.Stats()
	if st.Cluster == nil {
		t.Fatal("sharded server reported no cluster stats")
	}
	if st.Cluster.Shards != 3 {
		t.Fatalf("cluster reports %d shards, want 3", st.Cluster.Shards)
	}
	if st.Cluster.Batches == 0 || st.Cluster.MergeWaitUS.Count != st.Cluster.Batches {
		t.Fatalf("scatter rounds unaccounted: batches %d, merge waits %d",
			st.Cluster.Batches, st.Cluster.MergeWaitUS.Count)
	}
	for _, sh := range st.Cluster.PerShard {
		if sh.Batches != st.Cluster.Batches {
			t.Fatalf("shard %d served %d of %d rounds", sh.ID, sh.Batches, st.Cluster.Batches)
		}
	}
}
