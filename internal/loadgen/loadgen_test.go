package loadgen

import (
	"context"
	"math"
	"testing"
	"time"

	"microrec/internal/embedding"
	"microrec/internal/metrics"
	"microrec/internal/serving"
)

// fakeTarget models a loss-system server with a fixed concurrency (slots)
// and per-request service time: capacity = slots/service. Requests beyond
// the free slots shed immediately with ErrOverloaded — the admission
// behaviour the runner classifies.
type fakeTarget struct {
	service time.Duration
	slots   chan struct{}
}

func newFakeTarget(slots int, service time.Duration) *fakeTarget {
	return &fakeTarget{service: service, slots: make(chan struct{}, slots)}
}

func (f *fakeTarget) Submit(ctx context.Context, q embedding.Query) (serving.Result, error) {
	select {
	case f.slots <- struct{}{}:
	default:
		return serving.Result{}, serving.ErrOverloaded
	}
	defer func() { <-f.slots }()
	select {
	case <-time.After(f.service):
		return serving.Result{CTR: 0.5}, nil
	case <-ctx.Done():
		return serving.Result{}, ctx.Err()
	}
}

var testQueries = []embedding.Query{{[]int64{1}}, {[]int64{2}}}

func TestPoissonDeterministicMean(t *testing.T) {
	if _, err := NewPoisson(0, 1); err == nil {
		t.Error("zero rate: want error")
	}
	a, err := NewPoisson(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewPoisson(1000, 42)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("same seed diverged at gap %d: %v vs %v", i, ga, gb)
		}
		sum += ga
	}
	// Mean gap of a 1000 qps process is 1ms; 20k samples pin it within 5%.
	mean := float64(sum) / n
	if want := float64(time.Millisecond); math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean gap %v, want ~1ms", time.Duration(mean))
	}
}

func TestTraceCyclesAndValidates(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace: want error")
	}
	if _, err := NewTrace([]time.Duration{time.Millisecond, -1}); err == nil {
		t.Error("negative gap: want error")
	}
	gaps := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	tr, err := NewTrace(gaps)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		for i, want := range gaps {
			if got := tr.Next(); got != want {
				t.Fatalf("cycle %d position %d: %v, want %v", rep, i, got, want)
			}
		}
	}
}

// TestRunClassification overloads the loss-system fake 5x past its capacity
// and checks the runner's accounting: every arrival is classified exactly
// once, sheds fail fast, and admitted latencies sit at the service time.
func TestRunClassification(t *testing.T) {
	// 4 slots x 10ms service = 400 qps capacity; offer 2000 qps.
	target := newFakeTarget(4, 10*time.Millisecond)
	arr, err := NewPoisson(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(target, testQueries, arr, Options{Requests: 300, SLA: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 300 {
		t.Errorf("offered = %d", res.Offered)
	}
	if got := res.Admitted + res.Shed + res.Expired + res.Failed; got != res.Offered {
		t.Errorf("classification leak: %d+%d+%d+%d != %d", res.Admitted, res.Shed, res.Expired, res.Failed, res.Offered)
	}
	if res.Admitted == 0 || res.Shed == 0 {
		t.Fatalf("5x overload should both admit and shed: %+v", res)
	}
	if res.Failed != 0 {
		t.Errorf("failed = %d", res.Failed)
	}
	if uint64(res.Admitted) != res.AdmittedLatencyUS.Count || uint64(res.Shed) != res.ShedLatencyUS.Count {
		t.Errorf("histogram counts disagree with counters: %+v", res)
	}
	// Admitted requests hold a slot for the full 10ms service.
	if res.AdmittedLatencyUS.P50 < 9000 {
		t.Errorf("admitted p50 = %vµs, want >= ~10ms", res.AdmittedLatencyUS.P50)
	}
	// Sheds never touch a slot; generous 5ms bound for scheduler noise.
	if res.ShedLatencyUS.P99 > 5000 {
		t.Errorf("shed p99 = %vµs — the fast-fail path blocked", res.ShedLatencyUS.P99)
	}
	if res.OfferedQPS <= 0 || res.AdmittedQPS <= 0 {
		t.Errorf("rates = %v / %v", res.OfferedQPS, res.AdmittedQPS)
	}
}

func TestRunValidation(t *testing.T) {
	target := newFakeTarget(1, time.Millisecond)
	arr, _ := NewPoisson(100, 1)
	cases := []struct {
		name string
		run  func() error
	}{
		{"nil target", func() error { _, err := Run(nil, testQueries, arr, Options{Requests: 1, SLA: time.Second}); return err }},
		{"no queries", func() error { _, err := Run(target, nil, arr, Options{Requests: 1, SLA: time.Second}); return err }},
		{"nil arrivals", func() error {
			_, err := Run(target, testQueries, nil, Options{Requests: 1, SLA: time.Second})
			return err
		}},
		{"zero requests", func() error { _, err := Run(target, testQueries, arr, Options{SLA: time.Second}); return err }},
		{"zero SLA", func() error { _, err := Run(target, testQueries, arr, Options{Requests: 1}); return err }},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestMeetsSLA(t *testing.T) {
	sla := 10 * time.Millisecond
	good := Result{Offered: 100, Admitted: 100, AdmittedLatencyUS: metrics.HistogramSnapshot{P99: 9000}}
	if !good.MeetsSLA(sla, 0.01) {
		t.Error("clean run should meet the SLA")
	}
	slow := good
	slow.AdmittedLatencyUS.P99 = 11000
	if slow.MeetsSLA(sla, 0.01) {
		t.Error("p99 over budget should fail")
	}
	lossy := good
	lossy.Admitted, lossy.Shed = 80, 20
	if lossy.MeetsSLA(sla, 0.01) {
		t.Error("20% shed should fail the loss tolerance")
	}
	if (Result{Offered: 10}).MeetsSLA(sla, 0.01) {
		t.Error("nothing admitted should fail")
	}
}

// TestSweepKnee sweeps the loss-system fake across its known capacity
// (8 slots x 10ms = 800 qps) and checks the knee lands below it while the
// past-saturation point sheds without collapsing the admitted tail.
func TestSweepKnee(t *testing.T) {
	target := newFakeTarget(8, 10*time.Millisecond)
	sla := 100 * time.Millisecond
	sweep, err := Sweep(target, testQueries, SweepOptions{
		Loads:     []float64{100, 200, 1600},
		Requests:  300,
		SLA:       sla,
		Tolerance: 0.01,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	if sweep.KneeQPS < 100 || sweep.KneeQPS >= 1600 {
		t.Errorf("knee = %v qps, want within [100, 1600) for an 800 qps target", sweep.KneeQPS)
	}
	over := sweep.Points[2]
	if over.Shed == 0 {
		t.Error("2x-capacity point shed nothing")
	}
	if over.MeetsSLA(sla, 0.01) {
		t.Error("2x-capacity point claims to meet the SLA")
	}
	// The loss system bounds every admitted request at its service time:
	// shedding held the admitted tail through overload.
	if over.AdmittedLatencyUS.P99 > float64(sla)/float64(time.Microsecond) {
		t.Errorf("admitted p99 %vµs collapsed past the SLA under overload", over.AdmittedLatencyUS.P99)
	}

	// Ladder and tolerance validation.
	if _, err := Sweep(target, testQueries, SweepOptions{Loads: nil, Requests: 1, SLA: sla}); err == nil {
		t.Error("empty ladder: want error")
	}
	if _, err := Sweep(target, testQueries, SweepOptions{Loads: []float64{200, 100}, Requests: 1, SLA: sla}); err == nil {
		t.Error("descending ladder: want error")
	}
	if _, err := Sweep(target, testQueries, SweepOptions{Loads: []float64{100}, Requests: 1, SLA: sla, Tolerance: -0.1}); err == nil {
		t.Error("negative tolerance: want error")
	}
}
