package cartesian

import (
	"testing"

	"microrec/internal/model"
)

// FuzzIndexUnindex checks the mixed-radix bijection on arbitrary table
// shapes and indices.
func FuzzIndexUnindex(f *testing.F) {
	f.Add(int64(2), int64(3), int64(5), int64(1), int64(2), int64(4))
	f.Add(int64(1), int64(1), int64(1), int64(0), int64(0), int64(0))
	f.Add(int64(100), int64(7), int64(13), int64(99), int64(6), int64(12))
	f.Fuzz(func(t *testing.T, rA, rB, rC, iA, iB, iC int64) {
		norm := func(r int64) int64 { return r%1000 + 1 }
		rA, rB, rC = norm(rA), norm(rB), norm(rC)
		mod := func(i, r int64) int64 {
			i %= r
			if i < 0 {
				i += r
			}
			return i
		}
		iA, iB, iC = mod(iA, rA), mod(iB, rB), mod(iC, rC)
		a := model.TableSpec{ID: 0, Name: "a", Rows: rA, Dim: 2, Lookups: 1}
		b := model.TableSpec{ID: 1, Name: "b", Rows: rB, Dim: 3, Lookups: 1}
		c := model.TableSpec{ID: 2, Name: "c", Rows: rC, Dim: 4, Lookups: 1}
		p, err := Merge(a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		row, err := p.Index([]int64{iA, iB, iC})
		if err != nil {
			t.Fatalf("Index(%d,%d,%d) of (%d,%d,%d): %v", iA, iB, iC, rA, rB, rC, err)
		}
		if row < 0 || row >= p.Rows() {
			t.Fatalf("Index out of range: %d of %d", row, p.Rows())
		}
		back, err := p.Unindex(row)
		if err != nil {
			t.Fatal(err)
		}
		if back[0] != iA || back[1] != iB || back[2] != iC {
			t.Fatalf("Unindex(%d) = %v, want [%d %d %d]", row, back, iA, iB, iC)
		}
	})
}
