// Package cartesian implements the paper's data-structure contribution
// (§3.3): merging embedding tables by relational Cartesian product so one
// memory access retrieves several embedding vectors.
//
// The product of tables A (rA rows, dA dims) and B (rB rows, dB dims) is a
// table with rA*rB rows of dA+dB dims; entry (i, j) is the concatenation
// A[i] ++ B[j]. Looking up the pair (i, j) becomes a single access at row
// i*rB + j. Products generalise to k tables with mixed-radix indexing.
package cartesian

import (
	"fmt"
	"strings"

	"microrec/internal/embedding"
	"microrec/internal/model"
)

// PhysicalTable is a unit of memory allocation: either a single source table
// or the Cartesian product of several. The placement algorithm works on
// physical tables; the lookup unit resolves one memory access per physical
// table per round.
type PhysicalTable struct {
	// Sources are the original tables merged into this one, in
	// concatenation order. len(Sources) == 1 means "not merged".
	Sources []model.TableSpec
}

// Single wraps one source table as a physical table.
func Single(t model.TableSpec) PhysicalTable {
	return PhysicalTable{Sources: []model.TableSpec{t}}
}

// Merge combines two or more tables into a Cartesian product. All sources
// must share the same per-inference lookup count: a single access retrieves
// one vector from each source, so their retrieval cadences must match.
func Merge(tables ...model.TableSpec) (PhysicalTable, error) {
	if len(tables) < 2 {
		return PhysicalTable{}, fmt.Errorf("cartesian: Merge needs at least 2 tables, got %d", len(tables))
	}
	for _, t := range tables {
		if err := t.Validate(); err != nil {
			return PhysicalTable{}, err
		}
		if t.Lookups != tables[0].Lookups {
			return PhysicalTable{}, fmt.Errorf("cartesian: lookup count mismatch: %q has %d, %q has %d",
				t.Name, t.Lookups, tables[0].Name, tables[0].Lookups)
		}
	}
	return PhysicalTable{Sources: append([]model.TableSpec(nil), tables...)}, nil
}

// IsProduct reports whether the physical table merges several sources.
func (p PhysicalTable) IsProduct() bool { return len(p.Sources) > 1 }

// Name returns a label, joining source names for products.
func (p PhysicalTable) Name() string {
	if len(p.Sources) == 1 {
		return p.Sources[0].Name
	}
	names := make([]string, len(p.Sources))
	for i, s := range p.Sources {
		names[i] = s.Name
	}
	return strings.Join(names, "x")
}

// Rows returns the row count: the product of source row counts.
func (p PhysicalTable) Rows() int64 {
	rows := int64(1)
	for _, s := range p.Sources {
		rows *= s.Rows
	}
	return rows
}

// Dim returns the entry vector length: the sum of source dims.
func (p PhysicalTable) Dim() int {
	d := 0
	for _, s := range p.Sources {
		d += s.Dim
	}
	return d
}

// Lookups returns the per-inference access count of the physical table.
func (p PhysicalTable) Lookups() int { return p.Sources[0].Lookups }

// Bytes returns the logical storage footprint.
func (p PhysicalTable) Bytes() int64 { return p.Rows() * int64(p.Dim()) * model.FloatBytes }

// VectorBytes returns the byte size transferred by one access.
func (p PhysicalTable) VectorBytes() int { return p.Dim() * model.FloatBytes }

// SourceBytes returns the summed footprint of the sources, i.e. the storage
// the product replaces.
func (p PhysicalTable) SourceBytes() int64 {
	var n int64
	for _, s := range p.Sources {
		n += s.Bytes()
	}
	return n
}

// Overhead returns the extra storage a product costs versus keeping its
// sources separate (zero for single tables).
func (p PhysicalTable) Overhead() int64 {
	if !p.IsProduct() {
		return 0
	}
	return p.Bytes() - p.SourceBytes()
}

// Index converts per-source row indices into the product's row index using
// row-major mixed-radix encoding: the first source varies slowest.
func (p PhysicalTable) Index(indices []int64) (int64, error) {
	if len(indices) != len(p.Sources) {
		return 0, fmt.Errorf("cartesian: %d indices for %d sources", len(indices), len(p.Sources))
	}
	var idx int64
	for i, s := range p.Sources {
		if indices[i] < 0 || indices[i] >= s.Rows {
			return 0, fmt.Errorf("cartesian: index %d out of range for source %q (%d rows)", indices[i], s.Name, s.Rows)
		}
		idx = idx*s.Rows + indices[i]
	}
	return idx, nil
}

// Unindex is the inverse of Index: it decomposes a product row index into
// per-source indices.
func (p PhysicalTable) Unindex(row int64) ([]int64, error) {
	if row < 0 || row >= p.Rows() {
		return nil, fmt.Errorf("cartesian: row %d out of range (%d rows)", row, p.Rows())
	}
	out := make([]int64, len(p.Sources))
	for i := len(p.Sources) - 1; i >= 0; i-- {
		out[i] = row % p.Sources[i].Rows
		row /= p.Sources[i].Rows
	}
	return out, nil
}

// Layout is a model's physical table set after applying a merge plan. It is
// what the placement algorithm allocates to memory banks.
type Layout struct {
	// Spec is the source model.
	Spec *model.Spec
	// Tables are the physical tables, each covering one or more sources.
	Tables []PhysicalTable
	// tableOf[srcID] locates each source: physical table index and the
	// position within its Sources slice.
	tableOf map[int][2]int
}

// Identity returns the layout with no merges: one physical table per source.
func Identity(spec *model.Spec) *Layout {
	l := &Layout{Spec: spec, tableOf: make(map[int][2]int, len(spec.Tables))}
	for _, t := range spec.Tables {
		l.tableOf[t.ID] = [2]int{len(l.Tables), 0}
		l.Tables = append(l.Tables, Single(t))
	}
	return l
}

// Apply builds a layout from merge groups: each group lists source table IDs
// to merge (order defines concatenation order); sources not mentioned stay
// single. A source may appear in at most one group.
func Apply(spec *model.Spec, groups [][]int) (*Layout, error) {
	used := make(map[int]bool)
	byID := make(map[int]model.TableSpec, len(spec.Tables))
	for _, t := range spec.Tables {
		byID[t.ID] = t
	}
	l := &Layout{Spec: spec, tableOf: make(map[int][2]int, len(spec.Tables))}
	for _, g := range groups {
		if len(g) < 2 {
			return nil, fmt.Errorf("cartesian: merge group %v has fewer than 2 tables", g)
		}
		srcs := make([]model.TableSpec, len(g))
		for i, id := range g {
			t, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("cartesian: unknown table ID %d", id)
			}
			if used[id] {
				return nil, fmt.Errorf("cartesian: table ID %d appears in multiple groups", id)
			}
			used[id] = true
			srcs[i] = t
		}
		pt, err := Merge(srcs...)
		if err != nil {
			return nil, err
		}
		for i, id := range g {
			l.tableOf[id] = [2]int{len(l.Tables), i}
		}
		l.Tables = append(l.Tables, pt)
	}
	for _, t := range spec.Tables {
		if !used[t.ID] {
			l.tableOf[t.ID] = [2]int{len(l.Tables), 0}
			l.Tables = append(l.Tables, Single(t))
		}
	}
	return l, nil
}

// Locate returns the physical table index holding source table id, and the
// source's position within that physical table.
func (l *Layout) Locate(srcID int) (table, pos int, err error) {
	loc, ok := l.tableOf[srcID]
	if !ok {
		return 0, 0, fmt.Errorf("cartesian: unknown source table %d", srcID)
	}
	return loc[0], loc[1], nil
}

// NumMerged returns how many products the layout contains.
func (l *Layout) NumMerged() int {
	n := 0
	for _, t := range l.Tables {
		if t.IsProduct() {
			n++
		}
	}
	return n
}

// TotalBytes returns the layout's logical storage.
func (l *Layout) TotalBytes() int64 {
	var n int64
	for _, t := range l.Tables {
		n += t.Bytes()
	}
	return n
}

// Overhead returns the extra storage versus the unmerged model.
func (l *Layout) Overhead() int64 { return l.TotalBytes() - l.Spec.TotalBytes() }

// OverheadFraction returns Overhead relative to the unmerged model size —
// the quantity Table 3 reports as 103.2% / 101.9% storage.
func (l *Layout) OverheadFraction() float64 {
	return float64(l.Overhead()) / float64(l.Spec.TotalBytes())
}

// AccessesPerInference returns the number of physical memory accesses one
// inference needs under this layout (the quantity Cartesian products reduce).
func (l *Layout) AccessesPerInference() int {
	n := 0
	for _, t := range l.Tables {
		n += t.Lookups()
	}
	return n
}

// Materialized is a functionally materialised product table: its rows are
// physically laid out as concatenations of source rows, proving the data
// structure (as the FPGA's DRAM image would hold it).
type Materialized struct {
	Table PhysicalTable
	// Data is row-major (Rows x Dim) for the materialised (capacity-scaled)
	// source rows.
	Data []float32
	// srcRows are the materialised per-source row counts.
	srcRows []int64
}

// MaxMaterializeElements bounds product materialisation; beyond it the lazy
// view must be used.
const MaxMaterializeElements = 1 << 26 // 256 MB of float32

// MaterializeProduct physically builds a product table from source embedding
// tables (capacity-scaled storage). The resulting rows follow the same
// mixed-radix order as Index applied to materialised indices.
func MaterializeProduct(pt PhysicalTable, sources []*embedding.Table) (*Materialized, error) {
	if len(sources) != len(pt.Sources) {
		return nil, fmt.Errorf("cartesian: %d source tables for %d-way product", len(sources), len(pt.Sources))
	}
	rows := int64(1)
	srcRows := make([]int64, len(sources))
	for i, s := range sources {
		if s.Dim != pt.Sources[i].Dim {
			return nil, fmt.Errorf("cartesian: source %d dim %d, want %d", i, s.Dim, pt.Sources[i].Dim)
		}
		srcRows[i] = s.Rows()
		rows *= s.Rows()
	}
	dim := int64(pt.Dim())
	if rows*dim > MaxMaterializeElements {
		return nil, fmt.Errorf("cartesian: product %q needs %d elements, exceeds materialisation cap %d",
			pt.Name(), rows*dim, MaxMaterializeElements)
	}
	m := &Materialized{Table: pt, Data: make([]float32, rows*dim), srcRows: srcRows}
	idx := make([]int64, len(sources))
	for r := int64(0); r < rows; r++ {
		// Decompose r into materialised source indices.
		rem := r
		for i := len(sources) - 1; i >= 0; i-- {
			idx[i] = rem % srcRows[i]
			rem /= srcRows[i]
		}
		off := r * dim
		for i, s := range sources {
			v, err := s.Lookup(idx[i])
			if err != nil {
				return nil, err
			}
			copy(m.Data[off:off+int64(s.Dim)], v)
			off += int64(s.Dim)
		}
	}
	return m, nil
}

// Lookup returns the materialised product row for per-source materialised
// indices.
func (m *Materialized) Lookup(indices []int64) ([]float32, error) {
	if len(indices) != len(m.srcRows) {
		return nil, fmt.Errorf("cartesian: %d indices for %d sources", len(indices), len(m.srcRows))
	}
	var r int64
	for i, idx := range indices {
		if idx < 0 || idx >= m.srcRows[i] {
			return nil, fmt.Errorf("cartesian: materialised index %d out of range (%d rows)", idx, m.srcRows[i])
		}
		r = r*m.srcRows[i] + idx
	}
	dim := int64(m.Table.Dim())
	return m.Data[r*dim : (r+1)*dim], nil
}
