package cartesian

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microrec/internal/embedding"
	"microrec/internal/model"
)

func spec2(t *testing.T) (*model.Spec, model.TableSpec, model.TableSpec) {
	t.Helper()
	a := model.TableSpec{ID: 0, Name: "A", Rows: 2, Dim: 2, Lookups: 1}
	b := model.TableSpec{ID: 1, Name: "B", Rows: 3, Dim: 4, Lookups: 1}
	s := &model.Spec{Name: "two", Tables: []model.TableSpec{a, b}, Hidden: []int{4}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s, a, b
}

func TestMergeBasics(t *testing.T) {
	_, a, b := spec2(t)
	p, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsProduct() {
		t.Error("merged table not a product")
	}
	if p.Rows() != 6 {
		t.Errorf("Rows = %d, want 6 (Figure 5: |A|x|B|)", p.Rows())
	}
	if p.Dim() != 6 {
		t.Errorf("Dim = %d, want 6 (dA+dB)", p.Dim())
	}
	if p.Name() != "AxB" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Bytes() != 6*6*4 {
		t.Errorf("Bytes = %d", p.Bytes())
	}
	if p.SourceBytes() != (2*2+3*4)*4 {
		t.Errorf("SourceBytes = %d", p.SourceBytes())
	}
	if p.Overhead() != p.Bytes()-p.SourceBytes() {
		t.Errorf("Overhead = %d", p.Overhead())
	}
}

func TestMergeErrors(t *testing.T) {
	_, a, b := spec2(t)
	if _, err := Merge(a); err == nil {
		t.Error("single-table merge: want error")
	}
	c := b
	c.Lookups = 2
	if _, err := Merge(a, c); err == nil {
		t.Error("lookup mismatch merge: want error")
	}
	bad := model.TableSpec{Name: "bad", Rows: 0, Dim: 1, Lookups: 1}
	if _, err := Merge(a, bad); err == nil {
		t.Error("invalid source merge: want error")
	}
}

func TestSingleHasNoOverhead(t *testing.T) {
	_, a, _ := spec2(t)
	s := Single(a)
	if s.IsProduct() || s.Overhead() != 0 || s.Name() != "A" {
		t.Errorf("Single: %+v overhead %d", s, s.Overhead())
	}
}

func TestIndexUnindexRoundTrip(t *testing.T) {
	_, a, b := spec2(t)
	c := model.TableSpec{ID: 2, Name: "C", Rows: 5, Dim: 1, Lookups: 1}
	p, err := Merge(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for i := int64(0); i < a.Rows; i++ {
		for j := int64(0); j < b.Rows; j++ {
			for k := int64(0); k < c.Rows; k++ {
				row, err := p.Index([]int64{i, j, k})
				if err != nil {
					t.Fatal(err)
				}
				if row < 0 || row >= p.Rows() {
					t.Fatalf("Index(%d,%d,%d) = %d out of range", i, j, k, row)
				}
				if seen[row] {
					t.Fatalf("Index collision at %d", row)
				}
				seen[row] = true
				back, err := p.Unindex(row)
				if err != nil {
					t.Fatal(err)
				}
				if back[0] != i || back[1] != j || back[2] != k {
					t.Fatalf("Unindex(%d) = %v, want [%d %d %d]", row, back, i, j, k)
				}
			}
		}
	}
	if len(seen) != int(p.Rows()) {
		t.Errorf("Index covered %d rows of %d", len(seen), p.Rows())
	}
}

func TestIndexErrors(t *testing.T) {
	_, a, b := spec2(t)
	p, _ := Merge(a, b)
	if _, err := p.Index([]int64{0}); err == nil {
		t.Error("short indices: want error")
	}
	if _, err := p.Index([]int64{0, 3}); err == nil {
		t.Error("out-of-range index: want error")
	}
	if _, err := p.Unindex(6); err == nil {
		t.Error("Unindex out of range: want error")
	}
	if _, err := p.Unindex(-1); err == nil {
		t.Error("Unindex(-1): want error")
	}
}

func TestApplyLayout(t *testing.T) {
	s := &model.Spec{
		Name: "four",
		Tables: []model.TableSpec{
			{ID: 0, Name: "t0", Rows: 2, Dim: 2, Lookups: 1},
			{ID: 1, Name: "t1", Rows: 3, Dim: 2, Lookups: 1},
			{ID: 2, Name: "t2", Rows: 4, Dim: 2, Lookups: 1},
			{ID: 3, Name: "t3", Rows: 5, Dim: 2, Lookups: 1},
		},
		Hidden: []int{4},
	}
	l, err := Apply(s, [][]int{{0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Tables) != 3 {
		t.Fatalf("layout has %d physical tables, want 3", len(l.Tables))
	}
	if l.NumMerged() != 1 {
		t.Errorf("NumMerged = %d, want 1", l.NumMerged())
	}
	if l.AccessesPerInference() != 3 {
		t.Errorf("AccessesPerInference = %d, want 3 (4 lookups -> 3 accesses)", l.AccessesPerInference())
	}
	ti, pos, err := l.Locate(3)
	if err != nil || pos != 1 {
		t.Errorf("Locate(3) = %d,%d,%v; want pos 1", ti, pos, err)
	}
	if !l.Tables[ti].IsProduct() {
		t.Error("Locate(3) does not point at the product")
	}
	t1i, _, err := l.Locate(1)
	if err != nil || l.Tables[t1i].Name() != "t1" {
		t.Errorf("Locate(1) -> %q, %v", l.Tables[t1i].Name(), err)
	}
	// Overhead: product 10 rows x 4 dims = 160 B replaces (2+5)*2*4 = 56 B.
	if l.Overhead() != 160-56 {
		t.Errorf("Overhead = %d, want 104", l.Overhead())
	}
	if _, _, err := l.Locate(99); err == nil {
		t.Error("Locate(99): want error")
	}
}

func TestApplyErrors(t *testing.T) {
	s, _, _ := spec2(t)
	if _, err := Apply(s, [][]int{{0}}); err == nil {
		t.Error("1-table group: want error")
	}
	if _, err := Apply(s, [][]int{{0, 9}}); err == nil {
		t.Error("unknown ID: want error")
	}
	if _, err := Apply(s, [][]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate ID across groups: want error")
	}
}

func TestIdentityLayout(t *testing.T) {
	s, _, _ := spec2(t)
	l := Identity(s)
	if len(l.Tables) != 2 || l.NumMerged() != 0 || l.Overhead() != 0 {
		t.Errorf("Identity layout wrong: %d tables, %d merged, %d overhead",
			len(l.Tables), l.NumMerged(), l.Overhead())
	}
	if l.OverheadFraction() != 0 {
		t.Errorf("OverheadFraction = %v", l.OverheadFraction())
	}
}

func TestMaterializeProductMatchesSources(t *testing.T) {
	_, aSpec, bSpec := spec2(t)
	aData := []float32{1, 2, 3, 4}                                     // 2 rows x 2
	bData := []float32{10, 11, 12, 13, 20, 21, 22, 23, 30, 31, 32, 33} // 3 rows x 4
	at, err := embedding.NewTable("A", 2, aSpec.Rows, aData)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := embedding.NewTable("B", 4, bSpec.Rows, bData)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Merge(aSpec, bSpec)
	m, err := MaterializeProduct(p, []*embedding.Table{at, bt})
	if err != nil {
		t.Fatal(err)
	}
	// Every (i, j) entry must equal A[i] ++ B[j] (Figure 5).
	for i := int64(0); i < 2; i++ {
		for j := int64(0); j < 3; j++ {
			got, err := m.Lookup([]int64{i, j})
			if err != nil {
				t.Fatal(err)
			}
			av, _ := at.Lookup(i)
			bv, _ := bt.Lookup(j)
			want := append(append([]float32{}, av...), bv...)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("product(%d,%d) = %v, want %v", i, j, got, want)
				}
			}
		}
	}
}

func TestMaterializeProductErrors(t *testing.T) {
	_, aSpec, bSpec := spec2(t)
	at, _ := embedding.NewTable("A", 2, 2, []float32{1, 2, 3, 4})
	p, _ := Merge(aSpec, bSpec)
	if _, err := MaterializeProduct(p, []*embedding.Table{at}); err == nil {
		t.Error("missing source: want error")
	}
	wrongDim, _ := embedding.NewTable("B", 2, 3, []float32{1, 2, 3, 4, 5, 6})
	if _, err := MaterializeProduct(p, []*embedding.Table{at, wrongDim}); err == nil {
		t.Error("dim mismatch: want error")
	}
	// A product exceeding the cap must be rejected.
	bigA := model.TableSpec{ID: 0, Name: "bigA", Rows: 1 << 20, Dim: 32, Lookups: 1}
	bigB := model.TableSpec{ID: 1, Name: "bigB", Rows: 1 << 20, Dim: 32, Lookups: 1}
	bp, _ := Merge(bigA, bigB)
	bigData := make([]float32, 32)
	bat, _ := embedding.NewTable("bigA", 32, bigA.Rows, bigData)
	bbt, _ := embedding.NewTable("bigB", 32, bigB.Rows, bigData)
	// Materialised rows are 1 each here, so this fits; force the cap with
	// logical rows via the physical table itself only when materialised
	// rows are large. Build genuinely large materialised tables instead.
	_ = bat
	_ = bbt
	hugeData := make([]float32, (1<<13)*32)
	hat, _ := embedding.NewTable("bigA", 32, bigA.Rows, hugeData)
	hbt, _ := embedding.NewTable("bigB", 32, bigB.Rows, hugeData)
	if _, err := MaterializeProduct(bp, []*embedding.Table{hat, hbt}); err == nil {
		t.Error("oversized product: want error")
	}
}

func TestMaterializedLookupErrors(t *testing.T) {
	_, aSpec, bSpec := spec2(t)
	at, _ := embedding.NewTable("A", 2, 2, []float32{1, 2, 3, 4})
	bt, _ := embedding.NewTable("B", 4, 3, make([]float32, 12))
	p, _ := Merge(aSpec, bSpec)
	m, err := MaterializeProduct(p, []*embedding.Table{at, bt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lookup([]int64{0}); err == nil {
		t.Error("short indices: want error")
	}
	if _, err := m.Lookup([]int64{0, 5}); err == nil {
		t.Error("out-of-range: want error")
	}
}

// Property: for random shapes, Index is a bijection onto [0, Rows) — spot
// checked through random probes that Unindex inverts.
func TestIndexBijectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prop := func(r1, r2 uint8, seed int64) bool {
		a := model.TableSpec{ID: 0, Name: "a", Rows: int64(r1%50) + 1, Dim: 2, Lookups: 1}
		b := model.TableSpec{ID: 1, Name: "b", Rows: int64(r2%50) + 1, Dim: 3, Lookups: 1}
		p, err := Merge(a, b)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for n := 0; n < 10; n++ {
			i, j := r.Int63n(a.Rows), r.Int63n(b.Rows)
			row, err := p.Index([]int64{i, j})
			if err != nil {
				return false
			}
			back, err := p.Unindex(row)
			if err != nil || back[0] != i || back[1] != j {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: layout storage overhead is always non-negative (a product can
// never be smaller than its sources since every source row appears at least
// once).
func TestOverheadNonNegativeProperty(t *testing.T) {
	prop := func(r1, r2 uint8, d1, d2 uint8) bool {
		a := model.TableSpec{ID: 0, Name: "a", Rows: int64(r1) + 1, Dim: int(d1)%16 + 1, Lookups: 1}
		b := model.TableSpec{ID: 1, Name: "b", Rows: int64(r2) + 1, Dim: int(d2)%16 + 1, Lookups: 1}
		p, err := Merge(a, b)
		if err != nil {
			return false
		}
		return p.Overhead() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHalvedAccesses(t *testing.T) {
	// The headline claim of Figure 5: merging two tables turns two memory
	// accesses into one.
	s, _, _ := spec2(t)
	before := Identity(s).AccessesPerInference()
	l, err := Apply(s, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	after := l.AccessesPerInference()
	if before != 2 || after != 1 {
		t.Errorf("accesses before/after merge = %d/%d, want 2/1", before, after)
	}
}

func BenchmarkIndex(b *testing.B) {
	a := model.TableSpec{ID: 0, Name: "a", Rows: 1000, Dim: 4, Lookups: 1}
	c := model.TableSpec{ID: 1, Name: "b", Rows: 2000, Dim: 4, Lookups: 1}
	p, err := Merge(a, c)
	if err != nil {
		b.Fatal(err)
	}
	idx := []int64{123, 456}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Index(idx); err != nil {
			b.Fatal(err)
		}
	}
}
