package placement

import (
	"math/rand"
	"testing"

	"microrec/internal/memsim"
	"microrec/internal/model"
)

// smallSystem is a 4-DRAM-bank, 1-on-chip-bank system for unit tests.
func smallSystem() memsim.System {
	banks := []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 20, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 20, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 20, Timing: memsim.HBMTiming},
		{Kind: memsim.DDR, Capacity: 8 << 20, Timing: memsim.DDRTiming},
		{Kind: memsim.OnChip, Capacity: 4 << 10, Timing: memsim.OnChipTiming},
	}
	return memsim.System{Banks: banks}
}

func tinySpec(rows ...int64) *model.Spec {
	tables := make([]model.TableSpec, len(rows))
	for i, r := range rows {
		tables[i] = model.TableSpec{ID: i, Name: string(rune('a' + i)), Rows: r, Dim: 4, Lookups: 1}
	}
	return &model.Spec{Name: "tiny", Tables: tables, Hidden: []int{8}}
}

func TestPlanBasic(t *testing.T) {
	spec := tinySpec(100, 200, 5000, 8000, 12000)
	sys := smallSystem()
	res, err := Plan(spec, sys, Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BankOf) != len(res.Layout.Tables) {
		t.Fatalf("assignment covers %d tables, layout has %d", len(res.BankOf), len(res.Layout.Tables))
	}
	for ti, b := range res.BankOf {
		if b < 0 || b >= len(sys.Banks) {
			t.Errorf("table %d assigned to invalid bank %d", ti, b)
		}
	}
	if res.Report.LatencyNS <= 0 {
		t.Error("plan has zero latency")
	}
}

func TestPlanWithoutCartesianKeepsTables(t *testing.T) {
	spec := tinySpec(100, 200, 300, 400)
	res, err := Plan(spec, smallSystem(), Options{EnableCartesian: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout.NumMerged() != 0 {
		t.Errorf("cartesian disabled but %d merges", res.Layout.NumMerged())
	}
	if res.CandidateCount != 0 {
		t.Errorf("CandidateCount = %d, want 0", res.CandidateCount)
	}
	if len(res.Layout.Tables) != 4 {
		t.Errorf("layout has %d tables, want 4", len(res.Layout.Tables))
	}
}

func TestPlanCartesianReducesLatencyWhenChannelsAreScarce(t *testing.T) {
	// Five DRAM tables, three DRAM banks, no on-chip: without merging some
	// bank serves two tables (two rounds); merging two tiny tables gets
	// back to one round.
	sys := memsim.System{Banks: []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
	}}
	spec := tinySpec(10, 20, 40000, 50000, 60000)
	plain, err := Plan(spec, sys, Options{EnableCartesian: false})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Plan(spec, sys, Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report.MaxOffChipRounds != 2 {
		t.Errorf("plain rounds = %d, want 2", plain.Report.MaxOffChipRounds)
	}
	if merged.Report.MaxOffChipRounds != 1 {
		t.Errorf("merged rounds = %d, want 1", merged.Report.MaxOffChipRounds)
	}
	if merged.Report.LatencyNS >= plain.Report.LatencyNS {
		t.Errorf("cartesian latency %.0f >= plain %.0f", merged.Report.LatencyNS, plain.Report.LatencyNS)
	}
	if merged.Layout.NumMerged() != 1 {
		t.Errorf("merged products = %d, want 1", merged.Layout.NumMerged())
	}
}

func TestPlanUsesOnChipForSmallestTables(t *testing.T) {
	spec := tinySpec(10, 40000, 50000, 60000, 70000)
	res, err := Plan(spec, smallSystem(), Options{EnableCartesian: false})
	if err != nil {
		t.Fatal(err)
	}
	// The 10-row table (160 B) fits the 4 KB on-chip bank.
	if res.OnChipTables() != 1 {
		t.Errorf("on-chip tables = %d, want 1", res.OnChipTables())
	}
	if res.DRAMTables() != 4 {
		t.Errorf("DRAM tables = %d, want 4", res.DRAMTables())
	}
	// The on-chip table must be the smallest.
	for ti, b := range res.BankOf {
		if res.System.Banks[b].Kind == memsim.OnChip {
			if res.Layout.Tables[ti].Rows() != 10 {
				t.Errorf("on-chip table has %d rows, want the 10-row table", res.Layout.Tables[ti].Rows())
			}
		}
	}
}

func TestPlanRespectsBankCapacity(t *testing.T) {
	// A table too large for HBM banks must land on the big DDR bank.
	spec := tinySpec(100, 200, 300_000) // 300k rows x 16 B = 4.8 MB > 1 MB HBM
	res, err := Plan(spec, smallSystem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ti, b := range res.BankOf {
		tab := res.Layout.Tables[ti]
		if tab.Bytes() > res.System.Banks[b].Capacity {
			t.Errorf("table %q (%d B) overflows bank %d", tab.Name(), tab.Bytes(), b)
		}
		if tab.Rows() == 300_000 && res.System.Banks[b].Kind != memsim.DDR {
			t.Errorf("big table placed on %v, want DDR", res.System.Banks[b].Kind)
		}
	}
}

func TestPlanErrorWhenNothingFits(t *testing.T) {
	spec := tinySpec(10_000_000) // 160 MB exceeds every bank in smallSystem
	if _, err := Plan(spec, smallSystem(), Options{}); err == nil {
		t.Error("oversized model: want error")
	}
}

func TestPlanNoOffChip(t *testing.T) {
	sys := memsim.System{Banks: []memsim.Bank{{Kind: memsim.OnChip, Capacity: 1 << 10, Timing: memsim.OnChipTiming}}}
	if _, err := Plan(tinySpec(10), sys, Options{}); err == nil {
		t.Error("no off-chip banks: want error")
	}
}

func TestPlanInvalidSpec(t *testing.T) {
	if _, err := Plan(&model.Spec{Name: "x"}, smallSystem(), Options{}); err == nil {
		t.Error("invalid spec: want error")
	}
}

func TestLoadsMatchAssignment(t *testing.T) {
	spec := tinySpec(100, 200, 300)
	res, err := Plan(spec, smallSystem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	loads := res.Loads()
	var accesses, bytes int64
	for _, l := range loads {
		for _, a := range l.Accesses {
			accesses += int64(a.Count)
		}
		bytes += l.Bytes
	}
	if accesses != int64(res.Layout.AccessesPerInference()) {
		t.Errorf("loads carry %d accesses, layout needs %d", accesses, res.Layout.AccessesPerInference())
	}
	if bytes != res.Layout.TotalBytes() {
		t.Errorf("loads carry %d bytes, layout has %d", bytes, res.Layout.TotalBytes())
	}
}

func TestHeuristicNearOptimalOnRandomInstances(t *testing.T) {
	// Compare Algorithm 1 against the exhaustive search on random small
	// instances; the heuristic must stay within 10% of optimal latency.
	rng := rand.New(rand.NewSource(2024))
	sys := memsim.System{Banks: []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 24, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 24, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 24, Timing: memsim.HBMTiming},
		{Kind: memsim.OnChip, Capacity: 2 << 10, Timing: memsim.OnChipTiming},
	}}
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(2)
		rows := make([]int64, n)
		for i := range rows {
			rows[i] = int64(10 + rng.Intn(5000))
		}
		spec := tinySpec(rows...)
		h, err := Plan(spec, sys, Options{EnableCartesian: true})
		if err != nil {
			t.Fatalf("trial %d: heuristic: %v", trial, err)
		}
		b, err := BruteForce(spec, sys, Options{EnableCartesian: true}, BruteForceLimits{MaxTables: 6, MaxExhaustiveTables: 6})
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		if h.Report.LatencyNS > b.Report.LatencyNS*1.10+1e-9 {
			t.Errorf("trial %d (rows %v): heuristic %.1f ns vs optimal %.1f ns (>10%% off)",
				trial, rows, h.Report.LatencyNS, b.Report.LatencyNS)
		}
		if h.Report.LatencyNS < b.Report.LatencyNS-1e-9 {
			t.Errorf("trial %d: heuristic %.1f beats 'optimal' %.1f — brute force is broken",
				trial, h.Report.LatencyNS, b.Report.LatencyNS)
		}
	}
}

func TestBruteForceRejectsLargeModels(t *testing.T) {
	rows := make([]int64, 20)
	for i := range rows {
		rows[i] = 100
	}
	if _, err := BruteForce(tinySpec(rows...), smallSystem(), Options{}, BruteForceLimits{}); err == nil {
		t.Error("20-table brute force: want error")
	}
}

func TestBruteForceWithoutCartesian(t *testing.T) {
	spec := tinySpec(100, 200, 300)
	res, err := BruteForce(spec, smallSystem(), Options{EnableCartesian: false}, BruteForceLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout.NumMerged() != 0 {
		t.Error("brute force merged tables with cartesian disabled")
	}
}

func TestForEachPairingCounts(t *testing.T) {
	// Involutions of n elements: 1, 1, 2, 4, 10, 26, 76 for n=0..6.
	want := []int{1, 1, 2, 4, 10, 26, 76}
	for n := 0; n <= 6; n++ {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		count := 0
		if err := forEachPairing(ids, nil, func([][]int) error {
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != want[n] {
			t.Errorf("pairings of %d elements = %d, want %d", n, count, want[n])
		}
	}
}

func TestOnChipLatencyConstraint(t *testing.T) {
	// With co-location allowed, rule 4 must stop stacking tables once the
	// on-chip bank's serial latency would exceed the off-chip estimate.
	sys := memsim.System{Banks: []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
		{Kind: memsim.OnChip, Capacity: 1 << 26, Timing: memsim.OnChipTiming},
	}}
	// Ten equal tiny tables: off-chip estimate is ~10 accesses / 1 bank.
	rows := make([]int64, 10)
	for i := range rows {
		rows[i] = 50
	}
	spec := tinySpec(rows...)
	res, err := Plan(spec, sys, Options{MaxTablesPerOnChipBank: 32})
	if err != nil {
		t.Fatal(err)
	}
	// On-chip bank busy time must not exceed the off-chip bank's.
	loads := res.Loads()
	rep, err := sys.Evaluate(loads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerBankNS[1] > rep.PerBankNS[0]+1e-9 && res.OnChipTables() > 0 {
		t.Errorf("on-chip bank (%.0f ns) slower than DRAM (%.0f ns): rule 4 violated",
			rep.PerBankNS[1], rep.PerBankNS[0])
	}
}

func BenchmarkPlanSmallProduction(b *testing.B) {
	spec := model.SmallProduction()
	sys := memsim.U280(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(spec, sys, Options{EnableCartesian: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForce6Tables(b *testing.B) {
	spec := tinySpec(10, 20, 300, 4000, 5000, 6000)
	sys := smallSystem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BruteForce(spec, sys, Options{EnableCartesian: true}, BruteForceLimits{MaxTables: 6, MaxExhaustiveTables: 6}); err != nil {
			b.Fatal(err)
		}
	}
}
