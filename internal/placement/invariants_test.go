package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microrec/internal/memsim"
	"microrec/internal/model"
)

// checkPlanInvariants asserts the structural guarantees every plan must
// satisfy, regardless of model or options.
func checkPlanInvariants(t *testing.T, res *Result) {
	t.Helper()
	sys := res.System
	// Every physical table is assigned to exactly one valid bank.
	if len(res.BankOf) != len(res.Layout.Tables) {
		t.Fatalf("assignment covers %d of %d tables", len(res.BankOf), len(res.Layout.Tables))
	}
	perBank := make([]int64, len(sys.Banks))
	for ti, bi := range res.BankOf {
		if bi < 0 || bi >= len(sys.Banks) {
			t.Fatalf("table %d on invalid bank %d", ti, bi)
		}
		perBank[bi] += res.Layout.Tables[ti].Bytes()
	}
	// No bank over capacity.
	for bi, bytes := range perBank {
		if bytes > sys.Banks[bi].Capacity {
			t.Errorf("bank %d holds %d bytes, capacity %d", bi, bytes, sys.Banks[bi].Capacity)
		}
	}
	// Every source table appears in exactly one physical table.
	seen := make(map[int]int)
	for _, pt := range res.Layout.Tables {
		for _, src := range pt.Sources {
			seen[src.ID]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("source table %d appears %d times", id, n)
		}
	}
	if len(seen) != len(res.Layout.Spec.Tables) {
		t.Errorf("layout covers %d of %d sources", len(seen), len(res.Layout.Spec.Tables))
	}
	// The report is consistent with the loads.
	rep, err := sys.Evaluate(res.Loads())
	if err != nil {
		t.Fatalf("re-evaluating plan: %v", err)
	}
	if rep.LatencyNS != res.Report.LatencyNS {
		t.Errorf("report latency %.1f != re-evaluated %.1f", res.Report.LatencyNS, rep.LatencyNS)
	}
}

func TestPlanInvariantsOnProductionModels(t *testing.T) {
	for _, target := range []struct {
		spec  *model.Spec
		banks int
	}{
		{model.SmallProduction(), 8},
		{model.LargeProduction(), 16},
	} {
		for _, cart := range []bool{false, true} {
			for _, alloc := range []Allocator{RoundRobin, LPT} {
				res, err := Plan(target.spec, memsim.U280(target.banks), Options{
					EnableCartesian: cart,
					Allocator:       alloc,
				})
				if err != nil {
					t.Fatalf("%s cart=%v alloc=%v: %v", target.spec.Name, cart, alloc, err)
				}
				checkPlanInvariants(t, res)
			}
		}
	}
}

// Property: random small models always produce invariant-satisfying plans or
// a clean error (never a corrupt plan).
func TestPlanInvariantsProperty(t *testing.T) {
	sys := memsim.System{Banks: []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 22, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 22, Timing: memsim.HBMTiming},
		{Kind: memsim.DDR, Capacity: 1 << 26, Timing: memsim.DDRTiming},
		{Kind: memsim.OnChip, Capacity: 1 << 12, Timing: memsim.OnChipTiming},
	}}
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		tables := make([]model.TableSpec, n)
		for i := range tables {
			tables[i] = model.TableSpec{
				ID:      i,
				Name:    "t",
				Rows:    int64(1 + rng.Intn(50_000)),
				Dim:     []int{4, 8, 16}[rng.Intn(3)],
				Lookups: 1,
			}
		}
		spec := &model.Spec{Name: "rand", Tables: tables, Hidden: []int{8}}
		res, err := Plan(spec, sys, Options{EnableCartesian: rng.Intn(2) == 0})
		if err != nil {
			return true // infeasible models may error cleanly
		}
		// Inline re-checks (cannot use t.Fatalf inside quick prop).
		if len(res.BankOf) != len(res.Layout.Tables) {
			return false
		}
		perBank := make([]int64, len(sys.Banks))
		for ti, bi := range res.BankOf {
			if bi < 0 || bi >= len(sys.Banks) {
				return false
			}
			perBank[bi] += res.Layout.Tables[ti].Bytes()
		}
		for bi, b := range perBank {
			if b > sys.Banks[bi].Capacity {
				return false
			}
		}
		seen := make(map[int]bool)
		for _, pt := range res.Layout.Tables {
			for _, src := range pt.Sources {
				if seen[src.ID] {
					return false
				}
				seen[src.ID] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
