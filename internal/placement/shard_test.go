package placement

import (
	"math"
	"reflect"
	"testing"

	"microrec/internal/memsim"
	"microrec/internal/model"
)

func planFor(t *testing.T, spec *model.Spec) *Result {
	t.Helper()
	plan, err := Plan(spec, memsim.U280(8), Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestShardTablesPartition checks the structural contract: every physical
// table lands in exactly one shard, no shard is empty, the shard count is
// capped at the table count, and the result is deterministic.
func TestShardTablesPartition(t *testing.T) {
	plan := planFor(t, model.SmallProduction())
	nt := len(plan.Layout.Tables)
	for _, n := range []int{1, 2, 3, 4, 7, nt, nt + 5} {
		shards, err := ShardTables(plan, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantShards := n
		if wantShards > nt {
			wantShards = nt
		}
		if len(shards) != wantShards {
			t.Fatalf("n=%d: got %d shards, want %d", n, len(shards), wantShards)
		}
		seen := make(map[int]bool)
		for si, s := range shards {
			if len(s) == 0 {
				t.Fatalf("n=%d: shard %d empty", n, si)
			}
			for _, ti := range s {
				if ti < 0 || ti >= nt {
					t.Fatalf("n=%d: table %d out of range", n, ti)
				}
				if seen[ti] {
					t.Fatalf("n=%d: table %d in two shards", n, ti)
				}
				seen[ti] = true
			}
		}
		if len(seen) != nt {
			t.Fatalf("n=%d: %d of %d tables assigned", n, len(seen), nt)
		}
		again, err := ShardTables(plan, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(shards, again) {
			t.Fatalf("n=%d: non-deterministic partition", n)
		}
	}
}

// TestShardTablesBalance pins the LPT guarantee on per-shard cost sums: no
// shard exceeds the mean load plus one largest table (the classic LPT bound,
// loose form), so the partition is genuinely balanced rather than arbitrary.
func TestShardTablesBalance(t *testing.T) {
	plan := planFor(t, model.SmallProduction())
	const n = 4
	shards, err := ShardTables(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	var total, largest float64
	for ti := range plan.Layout.Tables {
		c, err := plan.TableCostNS(ti)
		if err != nil {
			t.Fatal(err)
		}
		total += c
		if c > largest {
			largest = c
		}
	}
	for si, s := range shards {
		var load float64
		for _, ti := range s {
			c, _ := plan.TableCostNS(ti)
			load += c
		}
		if bound := total/float64(len(shards)) + largest; load > bound+1e-9 {
			t.Fatalf("shard %d load %v exceeds LPT bound %v", si, load, bound)
		}
	}
}

// TestSubsetLatencyNS checks the shard-latency model: the full table set
// reproduces the plan's own lookup latency, each subset of a partition is no
// slower than the full set, and the subsets' max is positive.
func TestSubsetLatencyNS(t *testing.T) {
	plan := planFor(t, model.SmallProduction())
	all := make([]int, len(plan.Layout.Tables))
	for i := range all {
		all[i] = i
	}
	full, err := plan.SubsetLatencyNS(all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-plan.Report.LatencyNS) > 1e-9 {
		t.Fatalf("full-set subset latency %v, plan reports %v", full, plan.Report.LatencyNS)
	}
	shards, err := ShardTables(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for si, s := range shards {
		ns, err := plan.SubsetLatencyNS(s)
		if err != nil {
			t.Fatal(err)
		}
		if ns <= 0 {
			t.Fatalf("shard %d latency %v", si, ns)
		}
		if ns > full+1e-9 {
			t.Fatalf("shard %d latency %v exceeds full-set %v", si, ns, full)
		}
		if ns > worst {
			worst = ns
		}
	}
	if worst <= 0 {
		t.Fatal("no shard latency measured")
	}
}

// TestShardTablesErrors covers the argument contract.
func TestShardTablesErrors(t *testing.T) {
	plan := planFor(t, model.SmallProduction())
	if _, err := ShardTables(plan, 0); err == nil {
		t.Fatal("n=0 did not error")
	}
	if _, err := plan.SubsetLatencyNS([]int{-1}); err == nil {
		t.Fatal("negative table index did not error")
	}
	if _, err := plan.SubsetLatencyNS([]int{len(plan.Layout.Tables)}); err == nil {
		t.Fatal("out-of-range table index did not error")
	}
	if _, err := plan.TableCostNS(-1); err == nil {
		t.Fatal("TableCostNS(-1) did not error")
	}
}
