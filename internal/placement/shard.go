package placement

import (
	"fmt"
	"sort"

	"microrec/internal/memsim"
)

// This file extends a placement plan one level up: given the plan's physical
// tables, partition them across N serving shards so each shard's modeled
// per-inference lookup cost is balanced — the same longest-processing-time
// discipline the LPT allocator applies to memory banks, applied to engine
// replicas. The cluster tier gathers each shard's tables in parallel, so the
// tier's lookup latency is the slowest shard's, exactly as the plan's lookup
// latency is the slowest bank's.

// TableCostNS returns the modeled per-inference access cost of one physical
// table on its assigned bank: lookups x the bank's per-access latency at the
// table's vector size. This is the weight ShardTables balances.
func (r *Result) TableCostNS(ti int) (float64, error) {
	if ti < 0 || ti >= len(r.Layout.Tables) {
		return 0, fmt.Errorf("placement: physical table %d out of range (plan has %d)", ti, len(r.Layout.Tables))
	}
	t := r.Layout.Tables[ti]
	bank := r.System.Banks[r.BankOf[ti]]
	return float64(t.Lookups()) * bank.Timing.AccessNS(t.VectorBytes()), nil
}

// ShardTables partitions the plan's physical tables into at most n shards,
// balancing the per-shard sum of TableCostNS with a longest-processing-time
// greedy (largest cost first onto the least-loaded shard, deterministic
// tie-breaks). Every returned shard is non-empty, so with fewer tables than
// requested shards the partition has len(Layout.Tables) shards. n == 1
// returns the identity partition.
func ShardTables(r *Result, n int) ([][]int, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("placement: shard count %d (want >= 1)", n)
	}
	nt := len(r.Layout.Tables)
	if n > nt {
		n = nt
	}
	order := make([]int, nt)
	for i := range order {
		order[i] = i
	}
	costs := make([]float64, nt)
	for ti := range costs {
		c, err := r.TableCostNS(ti)
		if err != nil {
			return nil, err
		}
		costs[ti] = c
	}
	sort.SliceStable(order, func(a, b int) bool {
		if costs[order[a]] != costs[order[b]] {
			return costs[order[a]] > costs[order[b]]
		}
		return order[a] < order[b]
	})
	shards := make([][]int, n)
	load := make([]float64, n)
	for _, ti := range order {
		best := 0
		for i := 1; i < n; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		shards[best] = append(shards[best], ti)
		load[best] += costs[ti]
	}
	// Deterministic table order within each shard (the greedy appended in
	// cost order); callers iterate spans and gather loops over these.
	for _, s := range shards {
		sort.Ints(s)
	}
	return shards, nil
}

// LocalityOrder sorts one shard's physical-table indices in place into
// memory-locality order: tables grouped by their assigned bank (ascending),
// then by table index within the bank. A gather goroutine walking the shard
// in this order streams each bank's tables back to back instead of
// ping-ponging between banks' address ranges, which keeps the hardware
// prefetchers on one region at a time — the software analogue of issuing a
// channel's requests consecutively. Out-of-range indices (which Validate
// would reject anyway) sort last by index, so the call never panics on
// malformed input. Returns the slice for chaining.
func (r *Result) LocalityOrder(shard []int) []int {
	nb := len(r.System.Banks)
	bank := func(ti int) int {
		if ti < 0 || ti >= len(r.BankOf) {
			return nb
		}
		return r.BankOf[ti]
	}
	sort.SliceStable(shard, func(a, b int) bool {
		ba, bb := bank(shard[a]), bank(shard[b])
		if ba != bb {
			return ba < bb
		}
		return shard[a] < shard[b]
	})
	return shard
}

// SubsetLatencyNS evaluates the plan's memory system over only the listed
// physical tables' loads, returning the modeled per-inference lookup latency
// of a shard owning exactly those tables. For the full table set it equals
// Report.LatencyNS; for a partition, the max over shards is the cluster
// tier's cold lookup bound (each shard still ≤ the single-engine figure,
// since removing tables never slows a bank).
func (r *Result) SubsetLatencyNS(tables []int) (float64, error) {
	loads := make([]memsim.BankLoad, len(r.System.Banks))
	for _, ti := range tables {
		if ti < 0 || ti >= len(r.Layout.Tables) {
			return 0, fmt.Errorf("placement: physical table %d out of range (plan has %d)", ti, len(r.Layout.Tables))
		}
		t := r.Layout.Tables[ti]
		bi := r.BankOf[ti]
		loads[bi].Accesses = append(loads[bi].Accesses, memsim.Access{
			Bytes: t.VectorBytes(),
			Count: t.Lookups(),
		})
		loads[bi].Bytes += t.Bytes()
	}
	rep, err := r.System.Evaluate(loads)
	if err != nil {
		return 0, err
	}
	return rep.LatencyNS, nil
}
