package placement

import (
	"testing"

	"microrec/internal/memsim"
	"microrec/internal/model"
)

func TestProductArityValidation(t *testing.T) {
	spec := tinySpec(100, 200, 300)
	if _, err := Plan(spec, smallSystem(), Options{ProductArity: 1}); err == nil {
		t.Error("arity 1: want error")
	}
	if _, err := Plan(spec, smallSystem(), Options{ProductArity: 9}); err == nil {
		t.Error("arity 9: want error")
	}
}

func TestTripleProducts(t *testing.T) {
	// Nine tiny tables, three DRAM banks, no on-chip: triples can collapse
	// nine tables into three products -> one round.
	sys := memsim.System{Banks: []memsim.Bank{
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
		{Kind: memsim.HBM, Capacity: 1 << 26, Timing: memsim.HBMTiming},
	}}
	spec := tinySpec(10, 12, 14, 16, 18, 20, 22, 24, 26)
	res, err := Plan(spec, sys, Options{EnableCartesian: true, ProductArity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxOffChipRounds != 1 {
		t.Errorf("triple merge rounds = %d, want 1", res.Report.MaxOffChipRounds)
	}
	if res.Layout.NumMerged() != 3 {
		t.Errorf("products = %d, want 3", res.Layout.NumMerged())
	}
	for _, pt := range res.Layout.Tables {
		if len(pt.Sources) != 3 {
			t.Errorf("product %q has %d sources, want 3", pt.Name(), len(pt.Sources))
		}
	}
}

func TestRule2PairsBeatTriplesOnProduction(t *testing.T) {
	// §3.4.2's justification for rule 2: triples consume small tables too
	// fast — at equal lookup latency the pairwise plan must use no more
	// storage than the triple plan.
	spec := model.SmallProduction()
	sys := memsim.U280(8)
	pairs, err := Plan(spec, sys, Options{EnableCartesian: true, ProductArity: 2})
	if err != nil {
		t.Fatal(err)
	}
	triples, err := Plan(spec, sys, Options{EnableCartesian: true, ProductArity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Report.LatencyNS > triples.Report.LatencyNS+1e-9 {
		t.Errorf("pairs latency %.0f > triples %.0f", pairs.Report.LatencyNS, triples.Report.LatencyNS)
	}
	if pairs.Report.LatencyNS == triples.Report.LatencyNS &&
		pairs.StorageBytes() > triples.StorageBytes() {
		t.Errorf("pairs storage %d > triples %d at equal latency — rule 2 would be wrong",
			pairs.StorageBytes(), triples.StorageBytes())
	}
}

func TestArity2MatchesOriginalPairing(t *testing.T) {
	// The generalised grouping must reproduce the exact smallest-largest
	// pairing on the production model (Table 3's n=10 -> 5 pairs).
	spec := model.SmallProduction()
	sys := memsim.U280(8)
	res, err := Plan(spec, sys, Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateCount != 10 || res.Layout.NumMerged() != 5 {
		t.Errorf("n=%d, products=%d; want 10, 5", res.CandidateCount, res.Layout.NumMerged())
	}
	// Every product pairs one of the five smallest with one of the five
	// largest candidates.
	for _, pt := range res.Layout.Tables {
		if !pt.IsProduct() {
			continue
		}
		small, large := pt.Sources[0].Rows, pt.Sources[1].Rows
		if small > large {
			small, large = large, small
		}
		if small > 520 || large < 620 {
			t.Errorf("product %q pairs rows %d with %d — not smallest-with-largest",
				pt.Name(), pt.Sources[0].Rows, pt.Sources[1].Rows)
		}
	}
}
