package placement

import (
	"fmt"

	"microrec/internal/cartesian"
	"microrec/internal/memsim"
	"microrec/internal/model"
)

// BruteForceLimits bounds the exponential search of §3.4.1 so it stays
// tractable; beyond them BruteForce refuses to run.
type BruteForceLimits struct {
	// MaxTables bounds the model size (pairings grow super-exponentially).
	MaxTables int
	// MaxExhaustiveTables bounds exhaustive bank assignment; larger
	// instances fall back to the greedy allocator for the allocation step
	// while still enumerating all pairings.
	MaxExhaustiveTables int
}

// DefaultBruteForceLimits keeps the search under a second on small instances.
var DefaultBruteForceLimits = BruteForceLimits{MaxTables: 10, MaxExhaustiveTables: 6}

// BruteForce exhaustively searches all pairings of tables into Cartesian
// products (including "no product") and, for small instances, all bank
// assignments, returning the optimal plan under the latency-then-storage
// objective. It exists to validate the heuristic (§3.4.1 explains why it is
// infeasible at production scale).
func BruteForce(spec *model.Spec, sys memsim.System, opts Options, limits BruteForceLimits) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if limits.MaxTables == 0 {
		limits = DefaultBruteForceLimits
	}
	if len(spec.Tables) > limits.MaxTables {
		return nil, fmt.Errorf("placement: brute force limited to %d tables, model has %d",
			limits.MaxTables, len(spec.Tables))
	}
	opts = opts.withDefaults()

	var best *Result
	consider := func(groups [][]int) error {
		layout, err := cartesian.Apply(spec, groups)
		if err != nil {
			return err
		}
		var res *Result
		if len(layout.Tables) <= limits.MaxExhaustiveTables {
			res = exhaustiveAllocate(layout, sys)
		}
		if res == nil {
			r, err := allocate(layout, sys, opts)
			if err != nil {
				return nil // infeasible under greedy; skip
			}
			res = r
		}
		merged := 0
		for _, g := range groups {
			merged += len(g)
		}
		res.CandidateCount = merged
		if better(res, best) {
			best = res
		}
		return nil
	}

	ids := make([]int, len(spec.Tables))
	for i, t := range spec.Tables {
		ids[i] = t.ID
	}
	if !opts.EnableCartesian {
		if err := consider(nil); err != nil {
			return nil, err
		}
	} else if err := forEachPairing(ids, nil, consider); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("placement: brute force found no feasible plan for %q", spec.Name)
	}
	return best, nil
}

// forEachPairing enumerates all partitions of ids into singletons and pairs
// (involutions), invoking fn with the pair groups of each.
func forEachPairing(ids []int, groups [][]int, fn func([][]int) error) error {
	if len(ids) == 0 {
		return fn(groups)
	}
	first, rest := ids[0], ids[1:]
	// first stays single.
	if err := forEachPairing(rest, groups, fn); err != nil {
		return err
	}
	// first pairs with each remaining id.
	for i := range rest {
		next := make([]int, 0, len(rest)-1)
		next = append(next, rest[:i]...)
		next = append(next, rest[i+1:]...)
		if err := forEachPairing(next, append(groups, []int{first, rest[i]}), fn); err != nil {
			return err
		}
	}
	return nil
}

// exhaustiveAllocate tries every bank assignment and returns the best
// feasible one, or nil if none exists (or the instance is too large).
func exhaustiveAllocate(layout *cartesian.Layout, sys memsim.System) *Result {
	nt := len(layout.Tables)
	nb := len(sys.Banks)
	if nb == 0 || nt == 0 {
		return nil
	}
	// nb^nt assignments; callers bound nt.
	total := 1
	for i := 0; i < nt; i++ {
		total *= nb
		if total > 1<<20 {
			return nil
		}
	}
	var best *Result
	assign := make([]int, nt)
	for code := 0; code < total; code++ {
		c := code
		for i := 0; i < nt; i++ {
			assign[i] = c % nb
			c /= nb
		}
		res := &Result{
			Layout: layout,
			BankOf: append([]int(nil), assign...),
			System: sys,
		}
		rep, err := sys.Evaluate(res.Loads())
		if err != nil {
			continue // capacity violation
		}
		res.Report = rep
		if better(res, best) {
			best = res
		}
	}
	return best
}
