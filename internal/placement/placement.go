// Package placement implements the paper's table-combination and
// memory-allocation search (§3.4): given a model's embedding tables and the
// FPGA's hybrid memory system, decide which tables to merge via Cartesian
// products and which bank each resulting physical table lives on, minimising
// embedding-lookup latency with storage as the tie-breaker.
//
// Two searchers are provided: the O(N²) heuristic of Algorithm 1 (the four
// rules of §3.4.2) and an exponential brute force (§3.4.1) practical only for
// small instances, used to validate the heuristic's near-optimality.
package placement

import (
	"fmt"
	"sort"

	"microrec/internal/cartesian"
	"microrec/internal/memsim"
	"microrec/internal/model"
)

// Allocator selects the DRAM bank-assignment strategy.
type Allocator int

const (
	// RoundRobin balances the number of tables per bank, breaking ties in
	// rotating bank order without regard to access cost — the behaviour
	// the paper's measured per-round latencies imply (its channels mix
	// large and small vectors). This is the default, paper-faithful
	// strategy.
	RoundRobin Allocator = iota
	// LPT is a longest-processing-time greedy that balances per-bank
	// access cost instead of table count. It strictly improves on
	// RoundRobin and is provided as an ablation (see EXPERIMENTS.md).
	LPT
)

// String implements fmt.Stringer.
func (a Allocator) String() string {
	switch a {
	case RoundRobin:
		return "round-robin"
	case LPT:
		return "lpt"
	default:
		return fmt.Sprintf("Allocator(%d)", int(a))
	}
}

// Options configures the search.
type Options struct {
	// EnableCartesian allows table merging; disabled, the search only
	// allocates (the paper's "HBM only" configuration, Table 4).
	EnableCartesian bool
	// MaxCandidates bounds the number of smallest tables considered for
	// Cartesian products (the sweep variable n of Algorithm 1). Zero
	// means all tables.
	MaxCandidates int
	// MaxTablesPerOnChipBank bounds co-location on one on-chip bank.
	// The default 1 models the paper's artifact, which instantiates an
	// independent lookup port per cached table; higher values are
	// admitted subject to heuristic rule 4's latency constraint.
	MaxTablesPerOnChipBank int
	// Allocator selects the DRAM assignment strategy (default RoundRobin).
	Allocator Allocator
	// ProductArity is the number of tables merged per Cartesian product.
	// The default 2 follows heuristic rule 2; 3 is admitted as the rule-2
	// ablation (triples consume small tables too fast and inflate
	// storage, §3.4.2).
	ProductArity int
}

func (o Options) withDefaults() Options {
	if o.MaxTablesPerOnChipBank == 0 {
		o.MaxTablesPerOnChipBank = 1
	}
	if o.ProductArity == 0 {
		o.ProductArity = 2
	}
	return o
}

// Result is a complete placement: the merged layout, the bank assignment and
// the evaluated memory behaviour.
type Result struct {
	// Layout holds the physical tables after Cartesian merging.
	Layout *cartesian.Layout
	// BankOf maps each physical table index to a bank index in System.
	BankOf []int
	// System is the memory system the plan targets.
	System memsim.System
	// Report is the evaluated per-inference lookup behaviour.
	Report memsim.Report
	// CandidateCount is the number of tables that were Cartesian
	// candidates (the chosen n).
	CandidateCount int
}

// OnChipTables counts physical tables placed on on-chip banks.
func (r *Result) OnChipTables() int {
	n := 0
	for _, b := range r.BankOf {
		if r.System.Banks[b].Kind == memsim.OnChip {
			n++
		}
	}
	return n
}

// DRAMTables counts physical tables placed on HBM or DDR banks.
func (r *Result) DRAMTables() int { return len(r.BankOf) - r.OnChipTables() }

// Loads converts the assignment into per-bank loads for memsim.
func (r *Result) Loads() []memsim.BankLoad {
	loads := make([]memsim.BankLoad, len(r.System.Banks))
	for ti, bi := range r.BankOf {
		t := r.Layout.Tables[ti]
		loads[bi].Accesses = append(loads[bi].Accesses, memsim.Access{
			Bytes: t.VectorBytes(),
			Count: t.Lookups(),
		})
		loads[bi].Bytes += t.Bytes()
	}
	return loads
}

// StorageBytes returns the plan's total logical storage (including product
// overhead).
func (r *Result) StorageBytes() int64 { return r.Layout.TotalBytes() }

// Validate checks the plan's structural invariants: every physical table
// assigned to exactly one valid bank, no bank over capacity, and every
// source table covered exactly once. Engines call this before trusting a
// plan (e.g. one deserialized or hand-edited).
func (r *Result) Validate() error {
	if r.Layout == nil {
		return fmt.Errorf("placement: plan has no layout")
	}
	if len(r.BankOf) != len(r.Layout.Tables) {
		return fmt.Errorf("placement: assignment covers %d of %d physical tables",
			len(r.BankOf), len(r.Layout.Tables))
	}
	perBank := make([]int64, len(r.System.Banks))
	for ti, bi := range r.BankOf {
		if bi < 0 || bi >= len(r.System.Banks) {
			return fmt.Errorf("placement: physical table %d assigned to invalid bank %d", ti, bi)
		}
		perBank[bi] += r.Layout.Tables[ti].Bytes()
	}
	for bi, bytes := range perBank {
		if bytes > r.System.Banks[bi].Capacity {
			return fmt.Errorf("placement: bank %d holds %d bytes, capacity %d",
				bi, bytes, r.System.Banks[bi].Capacity)
		}
	}
	seen := make(map[int]bool)
	for _, pt := range r.Layout.Tables {
		for _, src := range pt.Sources {
			if seen[src.ID] {
				return fmt.Errorf("placement: source table %d appears in multiple physical tables", src.ID)
			}
			seen[src.ID] = true
		}
	}
	if len(seen) != len(r.Layout.Spec.Tables) {
		return fmt.Errorf("placement: layout covers %d of %d source tables",
			len(seen), len(r.Layout.Spec.Tables))
	}
	return nil
}

// Plan runs the heuristic search of Algorithm 1.
func Plan(spec *model.Spec, sys memsim.System, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(sys.OffChipBanks()) == 0 {
		return nil, fmt.Errorf("placement: system has no off-chip banks")
	}
	opts = opts.withDefaults()

	maxN := len(spec.Tables)
	if !opts.EnableCartesian {
		maxN = 0
	} else if opts.MaxCandidates > 0 && opts.MaxCandidates < maxN {
		maxN = opts.MaxCandidates
	}

	if opts.ProductArity < 2 || opts.ProductArity > 4 {
		return nil, fmt.Errorf("placement: product arity %d (want 2-4)", opts.ProductArity)
	}
	var best *Result
	for n := 0; n <= maxN; n++ {
		groups, ok := candidateGroups(spec, n, sys, opts.ProductArity)
		if !ok {
			continue
		}
		layout, err := cartesian.Apply(spec, groups)
		if err != nil {
			return nil, err
		}
		res, err := allocate(layout, sys, opts)
		if err != nil {
			// Infeasible allocation for this n (capacity); skip.
			continue
		}
		res.CandidateCount = n
		if better(res, best) {
			best = res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("placement: no feasible plan for model %q", spec.Name)
	}
	return best, nil
}

// better implements the paper's objective: minimise lookup latency, break
// ties by storage.
func better(a, b *Result) bool {
	if b == nil {
		return true
	}
	const eps = 1e-9
	switch {
	case a.Report.LatencyNS < b.Report.LatencyNS-eps:
		return true
	case a.Report.LatencyNS > b.Report.LatencyNS+eps:
		return false
	default:
		return a.StorageBytes() < b.StorageBytes()
	}
}

// candidateGroups applies heuristic rules 1–3: select the n smallest tables
// (rule 1), form fixed-arity groups (rule 2 fixes arity at pairs; higher
// arities exist for the rule-2 ablation), combining the smallest candidates
// with the largest (rule 3). Returns false if any product would not fit the
// largest off-chip bank, making the configuration infeasible.
func candidateGroups(spec *model.Spec, n int, sys memsim.System, arity int) ([][]int, bool) {
	if n < arity {
		return nil, true // no merging
	}
	idx := make([]int, len(spec.Tables))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := spec.Tables[idx[a]], spec.Tables[idx[b]]
		if ta.Bytes() != tb.Bytes() {
			return ta.Bytes() < tb.Bytes()
		}
		return idx[a] < idx[b]
	})
	cands := idx[:n]
	var maxBank int64
	for _, bi := range sys.OffChipBanks() {
		if c := sys.Banks[bi].Capacity; c > maxBank {
			maxBank = c
		}
	}
	// Split candidates into `arity` size-sorted segments and take one
	// element from each, walking later segments from the large end — for
	// arity 2 this is exactly rule 3's smallest-with-largest pairing.
	groupCount := n / arity
	var groups [][]int
	for g := 0; g < groupCount; g++ {
		members := make([]model.TableSpec, 0, arity)
		ids := make([]int, 0, arity)
		for seg := 0; seg < arity; seg++ {
			var pos int
			if seg%2 == 0 {
				pos = seg*groupCount + g // from the small end
			} else {
				pos = (seg+1)*groupCount - 1 - g // from the large end
			}
			t := spec.Tables[cands[pos]]
			members = append(members, t)
			ids = append(ids, t.ID)
		}
		for _, m := range members[1:] {
			if m.Lookups != members[0].Lookups {
				return nil, false
			}
		}
		pt, err := cartesian.Merge(members...)
		if err != nil || pt.Bytes() > maxBank {
			return nil, false
		}
		groups = append(groups, ids)
	}
	return groups, true
}

// allocate implements heuristic rule 4 plus balanced DRAM allocation: cache
// the smallest physical tables on chip (capacity- and latency-constrained),
// then spread the rest over HBM/DDR banks minimising the slowest bank
// (longest-processing-time greedy).
func allocate(layout *cartesian.Layout, sys memsim.System, opts Options) (*Result, error) {
	nt := len(layout.Tables)
	bankOf := make([]int, nt)
	for i := range bankOf {
		bankOf[i] = -1
	}
	order := make([]int, nt)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return layout.Tables[order[a]].Bytes() < layout.Tables[order[b]].Bytes()
	})

	// Rule 4: on-chip caching of the smallest tables, subject to capacity
	// and to the latency constraint: an on-chip bank must never become
	// slower than the (balanced) off-chip lookup it displaces. The
	// off-chip estimate shrinks as tables move on chip, so it is
	// recomputed per placement.
	type onBank struct {
		free   int64
		busyNS float64
		tables int
	}
	onIdx := sys.OnChipBanks()
	offCount := len(sys.OffChipBanks())
	onBanks := make([]onBank, len(onIdx))
	for i, bi := range onIdx {
		onBanks[i] = onBank{free: sys.Banks[bi].Capacity}
	}
	var remainingNS float64 // off-chip cost of tables not yet cached
	for _, t := range layout.Tables {
		remainingNS += tableCostNS(t, memsim.HBMTiming)
	}
	for _, ti := range order {
		t := layout.Tables[ti]
		offCost := tableCostNS(t, memsim.HBMTiming)
		placed := false
		for i := range onBanks {
			ob := &onBanks[i]
			if ob.tables >= opts.MaxTablesPerOnChipBank {
				continue
			}
			if t.Bytes() > ob.free {
				continue
			}
			cost := float64(t.Lookups()) * sys.Banks[onIdx[i]].Timing.AccessNS(t.VectorBytes())
			// Rule 4's latency constraint against the balanced off-chip
			// estimate after this table would leave DRAM.
			if ob.busyNS+cost > (remainingNS-offCost)/float64(offCount) {
				continue
			}
			ob.free -= t.Bytes()
			ob.busyNS += cost
			ob.tables++
			bankOf[ti] = onIdx[i]
			remainingNS -= offCost
			placed = true
			break
		}
		if !placed {
			// Tables are visited smallest-first; once one fails, larger
			// ones will too (capacity is the binding constraint).
			break
		}
	}

	// DRAM allocation over HBM+DDR banks.
	offIdx := sys.OffChipBanks()
	type offBank struct {
		free   int64
		busyNS float64
		count  int
	}
	offBanks := make([]offBank, len(offIdx))
	for i, bi := range offIdx {
		offBanks[i] = offBank{free: sys.Banks[bi].Capacity}
	}
	var rest []int
	for _, ti := range order {
		if bankOf[ti] < 0 {
			rest = append(rest, ti)
		}
	}
	// Largest first: by storage bytes for RoundRobin (the paper sorts by
	// table size), by per-inference cost for LPT.
	sort.SliceStable(rest, func(a, b int) bool {
		ta, tb := layout.Tables[rest[a]], layout.Tables[rest[b]]
		if opts.Allocator == LPT {
			return tableCostNS(ta, memsim.HBMTiming) > tableCostNS(tb, memsim.HBMTiming)
		}
		return ta.Bytes() > tb.Bytes()
	})
	rrPtr := 0
	for _, ti := range rest {
		t := layout.Tables[ti]
		bestBank := -1
		for k := 0; k < len(offBanks); k++ {
			// Scan in rotating order so RoundRobin ties spread out.
			i := (rrPtr + k) % len(offBanks)
			if t.Bytes() > offBanks[i].free {
				continue
			}
			if bestBank < 0 {
				bestBank = i
				continue
			}
			a, b := offBanks[i], offBanks[bestBank]
			switch opts.Allocator {
			case LPT:
				if less2(a.busyNS, a.free, b.busyNS, b.free) {
					bestBank = i
				}
			default: // RoundRobin: balance counts, first feasible wins ties
				if a.count < b.count {
					bestBank = i
				}
			}
		}
		if bestBank < 0 {
			return nil, fmt.Errorf("placement: table %q (%d bytes) fits no off-chip bank", t.Name(), t.Bytes())
		}
		cost := float64(t.Lookups()) * sys.Banks[offIdx[bestBank]].Timing.AccessNS(t.VectorBytes())
		offBanks[bestBank].busyNS += cost
		offBanks[bestBank].free -= t.Bytes()
		offBanks[bestBank].count++
		bankOf[ti] = offIdx[bestBank]
		rrPtr = (bestBank + 1) % len(offBanks)
	}

	res := &Result{Layout: layout, BankOf: bankOf, System: sys}
	rep, err := sys.Evaluate(res.Loads())
	if err != nil {
		return nil, err
	}
	res.Report = rep
	return res, nil
}

// less2 orders banks by (busy time, then most free capacity).
func less2(busyA float64, freeA int64, busyB float64, freeB int64) bool {
	if busyA != busyB {
		return busyA < busyB
	}
	return freeA > freeB
}

func tableCostNS(t cartesian.PhysicalTable, tm memsim.Timing) float64 {
	return float64(t.Lookups()) * tm.AccessNS(t.VectorBytes())
}
