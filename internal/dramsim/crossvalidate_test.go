package dramsim

import (
	"math/rand"
	"testing"

	"microrec/internal/memsim"
)

// TestChannelRoundsMatchAnalyticModel cross-validates the two memory models:
// a placement that puts k tables on one channel costs k serialised accesses
// in the analytic model (memsim); replaying the same per-inference access
// pattern through the device simulator must produce the same per-item
// latency within a few percent.
func TestChannelRoundsMatchAnalyticModel(t *testing.T) {
	cases := []struct {
		name       string
		vecBytes   []int // one table per entry, all on one channel
		inferences int
	}{
		{"one-table", []int{64}, 50},
		{"two-tables", []int{64, 64}, 50},
		{"mixed-dims", []int{16, 128}, 50},
		{"three-tables", []int{16, 32, 64}, 50},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Analytic: serialised accesses on one bank.
			var analytic float64
			for _, b := range c.vecBytes {
				analytic += memsim.HBMTiming.AccessNS(b)
			}

			// Device: back-to-back inferences; each issues one random-row
			// read per table. Requests for inference i arrive when
			// inference i-1's data is complete (the lookup unit retires
			// items in order).
			d, err := New(U280Channel())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			var at float64
			var totalLatency float64
			warmup := 5
			counted := 0
			for i := 0; i < c.inferences; i++ {
				start := at
				for _, bytes := range c.vecBytes {
					r, err := d.Serve(Request{
						Bank:      rng.Intn(4),
						Row:       rng.Int63n(1 << 30), // always a row miss
						Bytes:     bytes,
						ArrivalNS: at,
					})
					if err != nil {
						t.Fatal(err)
					}
					at = r.DoneNS
				}
				if i >= warmup {
					totalLatency += at - start
					counted++
				}
			}
			device := totalLatency / float64(counted)
			if !memsim.ApproxEqual(device, analytic, 0.08) {
				t.Errorf("device per-inference %.1f ns vs analytic %.1f ns (>8%% apart)",
					device, analytic)
			}
		})
	}
}

// TestCartesianBenefitEmergesFromDevice replays the small production model's
// bottleneck channel, with and without a Cartesian merge, through the device
// simulator: merging two tables into one longer-vector access must save
// roughly the analytic ratio.
func TestCartesianBenefitEmergesFromDevice(t *testing.T) {
	run := func(vecBytes []int) float64 {
		d, err := New(U280Channel())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		var at float64
		var total float64
		const n = 40
		for i := 0; i < n; i++ {
			start := at
			for _, b := range vecBytes {
				r, err := d.Serve(Request{Bank: rng.Intn(4), Row: rng.Int63n(1 << 30), Bytes: b, ArrivalNS: at})
				if err != nil {
					t.Fatal(err)
				}
				at = r.DoneNS
			}
			total += at - start
		}
		return total / n
	}
	separate := run([]int{16, 16}) // two dim-4 tables
	merged := run([]int{32})       // their product: one dim-8 access
	gain := separate / merged
	analytic := memsim.MergeGain(memsim.HBMTiming, 16, 16)
	if !memsim.ApproxEqual(gain, analytic, 0.10) {
		t.Errorf("device merge gain %.2f vs analytic %.2f (>10%% apart)", gain, analytic)
	}
	if gain < 1.5 {
		t.Errorf("device merge gain %.2f — the Cartesian benefit did not emerge", gain)
	}
}
