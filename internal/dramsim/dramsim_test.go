package dramsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microrec/internal/memsim"
)

func TestParamsValidate(t *testing.T) {
	if err := U280Channel().Validate(); err != nil {
		t.Errorf("calibrated params invalid: %v", err)
	}
	bad := U280Channel()
	bad.Banks = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 banks: want error")
	}
	bad = U280Channel()
	bad.BytePerNS = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 bandwidth: want error")
	}
	bad = U280Channel()
	bad.TRPNS = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative timing: want error")
	}
}

// TestCalibrationMatchesMemsim verifies the headline property: an isolated
// random-row access on the device model reproduces the analytic
// memsim.HBMTiming latency the rest of the system is calibrated on.
func TestCalibrationMatchesMemsim(t *testing.T) {
	p := U280Channel()
	for _, dim := range []int{4, 8, 16, 32, 64} {
		bytes := dim * 4
		device := p.RandomMissLatencyNS(bytes)
		analytic := memsim.HBMTiming.AccessNS(bytes)
		if !memsim.ApproxEqual(device, analytic, 0.02) {
			t.Errorf("dim %d: device %.1f ns vs analytic %.1f ns (>2%% apart)", dim, device, analytic)
		}
	}
}

func TestServeIsolatedMiss(t *testing.T) {
	d, err := New(U280Channel())
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Serve(Request{Bank: 0, Row: 42, Bytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.RowHit {
		t.Error("first access cannot be a row hit")
	}
	// A cold bank pays no precharge.
	want := U280Channel().ColdMissLatencyNS(64)
	if !memsim.ApproxEqual(r.LatencyNS(), want, 0.01) {
		t.Errorf("latency %.1f, want %.1f", r.LatencyNS(), want)
	}
	// Steady state (stale row open) pays the full analytic cost.
	r2, err := d.Serve(Request{Bank: 0, Row: 43, Bytes: 64, ArrivalNS: r.DoneNS})
	if err != nil {
		t.Fatal(err)
	}
	wantSteady := U280Channel().RandomMissLatencyNS(64)
	if !memsim.ApproxEqual(r2.LatencyNS(), wantSteady, 0.01) {
		t.Errorf("steady-state latency %.1f, want %.1f", r2.LatencyNS(), wantSteady)
	}
}

func TestOpenPageHitIsCheaper(t *testing.T) {
	d, err := New(U280Channel())
	if err != nil {
		t.Fatal(err)
	}
	miss, err := d.Serve(Request{Bank: 0, Row: 42, Bytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := d.Serve(Request{Bank: 0, Row: 42, Bytes: 64, ArrivalNS: miss.DoneNS})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.RowHit {
		t.Fatal("same-row access should hit the row buffer")
	}
	if hit.LatencyNS() >= miss.LatencyNS() {
		t.Errorf("hit %.1f ns not cheaper than miss %.1f ns", hit.LatencyNS(), miss.LatencyNS())
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.Served != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestClosedPageNeverHits(t *testing.T) {
	p := U280Channel()
	p.OpenPage = false
	d, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var at float64
	for i := 0; i < 5; i++ {
		r, err := d.Serve(Request{Bank: 0, Row: 7, Bytes: 32, ArrivalNS: at})
		if err != nil {
			t.Fatal(err)
		}
		if r.RowHit {
			t.Error("closed-page policy must never report hits")
		}
		at = r.DoneNS + 100
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	d, err := New(U280Channel())
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.Serve(Request{Bank: 0, Row: 1, Bytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	// A different row on the same bank: precharge + activate.
	conflict, err := d.Serve(Request{Bank: 0, Row: 2, Bytes: 32, ArrivalNS: first.DoneNS})
	if err != nil {
		t.Fatal(err)
	}
	if conflict.LatencyNS() <= first.LatencyNS() {
		t.Errorf("row conflict %.1f ns should exceed cold miss %.1f ns (extra tRP)",
			conflict.LatencyNS(), first.LatencyNS())
	}
}

func TestBankParallelismOverlapsActivation(t *testing.T) {
	// Two simultaneous requests to different banks overlap their row
	// activations; two to the same bank serialise fully.
	mk := func(bankB int) float64 {
		d, err := New(U280Channel())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Serve(Request{Bank: 0, Row: 1, Bytes: 64}); err != nil {
			t.Fatal(err)
		}
		r2, err := d.Serve(Request{Bank: bankB, Row: 2, Bytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		return r2.DoneNS
	}
	sameBank := mk(0)
	diffBank := mk(1)
	if diffBank >= sameBank {
		t.Errorf("different-bank completion %.1f should beat same-bank %.1f", diffBank, sameBank)
	}
}

func TestBusSerializesTransfers(t *testing.T) {
	// Even across banks, the shared data bus serialises the bursts: total
	// completion grows with every transfer.
	d, err := New(U280Channel())
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for b := 0; b < 4; b++ {
		r, err := d.Serve(Request{Bank: b, Row: 5, Bytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if r.DoneNS <= last {
			t.Errorf("bank %d finished at %.1f, not after previous %.1f", b, r.DoneNS, last)
		}
		last = r.DoneNS
	}
}

func TestServeErrors(t *testing.T) {
	d, err := New(U280Channel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Serve(Request{Bank: -1, Row: 0, Bytes: 4}); err == nil {
		t.Error("negative bank: want error")
	}
	if _, err := d.Serve(Request{Bank: 99, Row: 0, Bytes: 4}); err == nil {
		t.Error("bank out of range: want error")
	}
	if _, err := d.Serve(Request{Bank: 0, Row: 0, Bytes: 0}); err == nil {
		t.Error("zero bytes: want error")
	}
	if _, err := d.Serve(Request{Bank: 0, Row: -1, Bytes: 4}); err == nil {
		t.Error("negative row: want error")
	}
	if _, err := New(Params{}); err == nil {
		t.Error("zero params: want error")
	}
}

func TestReplayEmbeddingTrace(t *testing.T) {
	// An embedding-lookup trace — random rows over random banks — must
	// show a near-zero row-hit rate (the paper's premise, §2.2, citing
	// Ke et al.'s cache-miss observation).
	d, err := New(U280Channel())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	trace := make([]Request, 500)
	var at float64
	for i := range trace {
		trace[i] = Request{
			Bank:      rng.Intn(4),
			Row:       rng.Int63n(1 << 20),
			Bytes:     64,
			ArrivalNS: at,
		}
		at += 500
	}
	results, err := d.Replay(trace)
	if err != nil {
		t.Fatal(err)
	}
	if hr := d.Stats().HitRate(); hr > 0.01 {
		t.Errorf("random-row trace hit rate %.3f, want ~0", hr)
	}
	// Every request's latency must be at least the ideal miss latency.
	floor := U280Channel().OpenRowLatencyNS(64)
	for i, r := range results {
		if r.LatencyNS() < floor {
			t.Errorf("request %d latency %.1f below floor %.1f", i, r.LatencyNS(), floor)
		}
	}
	if _, err := d.Replay([]Request{{Bank: 0, Row: 0, Bytes: 0}}); err == nil {
		t.Error("bad trace entry: want error")
	}
}

func TestMergedVectorCheaperThanTwoAccesses(t *testing.T) {
	// The Cartesian-product argument at device level: reading one 2x-long
	// vector costs less than two separate random reads.
	p := U280Channel()
	two := 2 * p.RandomMissLatencyNS(64)
	merged := p.RandomMissLatencyNS(128)
	if merged >= two {
		t.Errorf("merged access %.1f not cheaper than two accesses %.1f", merged, two)
	}
	gain := two / merged
	if gain < 1.5 {
		t.Errorf("device-level merge gain %.2f, want >= 1.5 for 64 B vectors", gain)
	}
}

// Property: completion times are monotone along any trace (the device never
// reorders) and hits never exceed total requests.
func TestMonotoneCompletionProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		d, err := New(U280Channel())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var last float64
		var at float64
		for i := 0; i < int(n%64)+1; i++ {
			r, err := d.Serve(Request{
				Bank:      rng.Intn(4),
				Row:       rng.Int63n(64),
				Bytes:     4 + rng.Intn(256),
				ArrivalNS: at,
			})
			if err != nil {
				return false
			}
			if r.DoneNS < last {
				return false
			}
			last = r.DoneNS
			at += rng.Float64() * 300
		}
		st := d.Stats()
		return st.RowHits+st.RowMisses == st.Served
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkServe(b *testing.B) {
	d, err := New(U280Channel())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Serve(Request{Bank: i % 4, Row: int64(i % 1024), Bytes: 64, ArrivalNS: float64(i) * 500}); err != nil {
			b.Fatal(err)
		}
	}
}
