// Package dramsim is a discrete-event model of a single DRAM device behind
// one channel (an HBM pseudo-channel or a DDR4 channel): banks with row
// buffers, activate/precharge/CAS timing, bank-level parallelism and a
// shared data bus.
//
// It grounds the calibrated analytic constants of package memsim in device
// behaviour: embedding lookups are row-buffer misses (random rows across
// huge tables, §2.2), so each access pays the full activate+CAS cost, while
// the tail of a long (Cartesian-merged) vector streams from an open row at
// bus speed. dramsim_test.go verifies that the analytic model's access
// latencies emerge from these micro parameters.
package dramsim

import (
	"fmt"
	"math"
)

// Params holds device timing parameters in nanoseconds.
type Params struct {
	// CtrlNS is the controller/AXI round-trip added to every request
	// (the memsim "pipe" component; dominated by the Vitis-generated
	// memory controller, §3.2.2).
	CtrlNS float64
	// TRPNS is the precharge time (closing an open row).
	TRPNS float64
	// TRCDNS is the row activation time.
	TRCDNS float64
	// TCLNS is the CAS (column access) latency.
	TCLNS float64
	// BytePerNS is the data-bus bandwidth in bytes per nanosecond.
	BytePerNS float64
	// Banks is the number of banks sharing the channel.
	Banks int
	// OpenPage keeps rows open after an access (open-page policy);
	// closed-page precharges immediately.
	OpenPage bool
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.CtrlNS < 0 || p.TRPNS < 0 || p.TRCDNS < 0 || p.TCLNS < 0 {
		return fmt.Errorf("dramsim: negative timing parameter: %+v", p)
	}
	if p.BytePerNS <= 0 {
		return fmt.Errorf("dramsim: bus bandwidth %v bytes/ns", p.BytePerNS)
	}
	if p.Banks <= 0 {
		return fmt.Errorf("dramsim: %d banks", p.Banks)
	}
	return nil
}

// U280Channel returns parameters calibrated so that a random-row access
// reproduces memsim.HBMTiming: CtrlNS matches the pipe component and
// TRP+TRCD+TCL the row component (164 ns — much larger than raw DRAM tRC
// because it includes the soft memory controller's scheduling overhead).
func U280Channel() Params {
	return Params{
		CtrlNS:    150,
		TRPNS:     50,
		TRCDNS:    60,
		TCLNS:     54,
		BytePerNS: 1 / 1.3,
		Banks:     4,
		OpenPage:  true,
	}
}

// Request is one read: bytes from a row of a bank.
type Request struct {
	Bank  int
	Row   int64
	Bytes int
	// ArrivalNS is when the request reaches the controller.
	ArrivalNS float64
}

// Result describes one serviced request.
type Result struct {
	Request
	StartNS  float64 // service start (post queueing)
	DoneNS   float64 // data fully returned
	RowHit   bool
	QueueNS  float64 // time spent waiting for bank/bus
	ActiveNS float64 // activation + CAS + transfer time
}

// LatencyNS returns the request's total latency.
func (r Result) LatencyNS() float64 { return r.DoneNS - r.ArrivalNS }

// Device is the discrete-event simulator state.
type Device struct {
	p         Params
	openRow   []int64 // per bank; -1 = closed
	bankFree  []float64
	busFree   float64
	served    int64
	rowHits   int64
	rowMisses int64
}

// New creates a device.
func New(p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		p:        p,
		openRow:  make([]int64, p.Banks),
		bankFree: make([]float64, p.Banks),
	}
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d, nil
}

// Serve processes one request and returns its timing.
func (d *Device) Serve(req Request) (Result, error) {
	if req.Bank < 0 || req.Bank >= d.p.Banks {
		return Result{}, fmt.Errorf("dramsim: bank %d out of range (%d banks)", req.Bank, d.p.Banks)
	}
	if req.Bytes <= 0 {
		return Result{}, fmt.Errorf("dramsim: request for %d bytes", req.Bytes)
	}
	if req.Row < 0 {
		return Result{}, fmt.Errorf("dramsim: negative row %d", req.Row)
	}
	start := math.Max(req.ArrivalNS, d.bankFree[req.Bank])

	var rowNS float64
	hit := d.p.OpenPage && d.openRow[req.Bank] == req.Row
	if hit {
		d.rowHits++
	} else {
		d.rowMisses++
		if d.openRow[req.Bank] >= 0 {
			rowNS += d.p.TRPNS // close the stale row
		}
		rowNS += d.p.TRCDNS
	}
	// Column access, then the data burst over the shared bus.
	dataReady := start + rowNS + d.p.TCLNS
	busStart := math.Max(dataReady, d.busFree)
	transfer := float64(req.Bytes) / d.p.BytePerNS
	done := busStart + transfer + d.p.CtrlNS

	d.busFree = busStart + transfer
	d.bankFree[req.Bank] = busStart + transfer
	if d.p.OpenPage {
		d.openRow[req.Bank] = req.Row
	} else {
		d.openRow[req.Bank] = -1
		d.bankFree[req.Bank] += d.p.TRPNS
	}
	d.served++
	return Result{
		Request:  req,
		StartNS:  start,
		DoneNS:   done,
		RowHit:   hit,
		QueueNS:  start - req.ArrivalNS + (busStart - dataReady),
		ActiveNS: done - start - (busStart - dataReady),
	}, nil
}

// Replay services a request trace in order and returns per-request results.
func (d *Device) Replay(trace []Request) ([]Result, error) {
	out := make([]Result, len(trace))
	for i, req := range trace {
		r, err := d.Serve(req)
		if err != nil {
			return nil, fmt.Errorf("dramsim: request %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// Stats summarises device behaviour.
type Stats struct {
	Served    int64
	RowHits   int64
	RowMisses int64
}

// HitRate returns the row-buffer hit rate.
func (s Stats) HitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// Stats returns a snapshot.
func (d *Device) Stats() Stats {
	return Stats{Served: d.served, RowHits: d.rowHits, RowMisses: d.rowMisses}
}

// ColdMissLatencyNS returns the analytic latency of the very first access to
// a bank (no row open yet, so no precharge is paid).
func (p Params) ColdMissLatencyNS(bytes int) float64 {
	return p.CtrlNS + p.TRCDNS + p.TCLNS + float64(bytes)/p.BytePerNS
}

// RandomMissLatencyNS returns the analytic steady-state latency of a
// random-row access under the open-page policy: the previous (stale) row is
// open, so the access pays precharge + activate + CAS — what every embedding
// lookup costs (§2.2). This is the quantity memsim's row component is
// calibrated to.
func (p Params) RandomMissLatencyNS(bytes int) float64 {
	return p.TRPNS + p.ColdMissLatencyNS(bytes)
}

// OpenRowLatencyNS returns the analytic latency of a row-buffer hit.
func (p Params) OpenRowLatencyNS(bytes int) float64 {
	return p.CtrlNS + p.TCLNS + float64(bytes)/p.BytePerNS
}
