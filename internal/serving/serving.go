// Package serving implements the batched online-inference subsystem: a
// dynamic micro-batcher that coalesces concurrent predict requests into
// hardware-sized batches (flush on max batch size or a deadline window),
// drained through the staged pipeline executor — gather, dense GEMM and
// tail/response stages overlapped over a ring of batch planes — with
// per-request response futures. A flat engine worker pool remains available
// as a fallback mode (Options.Pipeline.WorkerPool).
//
// This is the serving seam the paper argues for (§2.3): per-query serving —
// one synchronous inference per HTTP request, the TensorFlow-Serving
// baseline's pattern — leaves the engine streaming every FC weight matrix
// once per query, while a micro-batch amortises the weight traffic across
// all queries in flight. The pipelined drain adds the second hardware pillar
// (§4.1): while batch i occupies the GEMM stage, batch i+1's gather is
// already running, so memory latency hides behind compute. The window bounds
// the latency cost of coalescing and can be validated against an SLA budget
// (see internal/sla).
//
//	requests ──► Submit ──► micro-batcher ──► dispatcher ──► pipeline executor
//	   ▲                    (size/window         │          (gather │ GEMM │ tail)
//	   └──── response futures ◄──────────────────┴──────────────────┘
package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microrec/internal/cluster"
	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/kernels"
	"microrec/internal/metrics"
	"microrec/internal/obs"
	"microrec/internal/pipeline"
	"microrec/internal/sla"
	"microrec/internal/tieredstore"
)

// traceRingSize is the flight recorder's span ring capacity. 4096 spans ≈
// 0.5 MiB of slots; at the default 1-in-8 sampling it holds the last ~32k
// requests' worth of traffic, comfortably covering a /trace scrape window.
const traceRingSize = 4096

// DefaultTraceSample is the default head-sampling rate of the flight
// recorder: one request in 8 is recorded.
const DefaultTraceSample = 8

// ErrServerClosed is returned by Submit after Close.
var ErrServerClosed = errors.New("serving: server closed")

// ErrInvalidQuery wraps a query that failed shape/range validation in
// Submit — a client fault, as opposed to an engine failure during batch
// service (a server fault).
var ErrInvalidQuery = errors.New("serving: invalid query")

// ErrOverloaded is the fast-fail shed path: Submit returns it immediately
// when Options.Admission.Shed is set and the bounded submit queue is full. Callers
// should back off for about Server.RetryAfter before retrying (the HTTP
// layer maps this to 429 with a Retry-After header).
var ErrOverloaded = errors.New("serving: overloaded, submit queue full")

// ErrExpired resolves requests whose serving deadline (Options.Admission.SLA, or an
// earlier context deadline) passed while they were still queued: the batch
// former drops them at plane-fill time instead of spending gather and GEMM
// cycles on an answer nobody is waiting for.
var ErrExpired = errors.New("serving: deadline expired before service")

// Engine is the slice of the inference engine the server drives: admission
// validation, the monolithic batched datapath (worker-pool mode), the
// stage-callable plane datapath (pipelined mode, via pipeline.StageEngine)
// and the timing model behind SLA admission and per-batch reports.
// *core.Engine implements it; overload tests substitute deterministic slow
// engines to saturate the queue without depending on host speed.
//
// Engine is the mandatory seam. Engines may additionally implement the named
// optional capabilities declared in options.go — Tiered and Prefetcher (tiered
// backing store + cold-row prefetch), Reloadable (hot model swap) — which the
// server and the replicated router tier discover by interface assertion and
// engage only when present.
type Engine interface {
	pipeline.StageEngine
	// ValidateQuery checks a query's shape and index ranges at admission.
	ValidateQuery(q embedding.Query) error
	// InferBatchValidated runs the monolithic batched datapath on
	// pre-validated queries (worker-pool mode).
	InferBatchValidated(queries []embedding.Query, dst []float32, scratch *core.BatchScratch) ([]float32, error)
	// TimingAt models a batch's accelerator timing at a lookup latency.
	TimingAt(items int, lookupNS float64) (core.TimingReport, error)
	// LookupNS is the plan's cache-cold embedding-lookup latency.
	LookupNS() float64
	// EffectiveLookupNS is the lookup latency at the current hot-row cache
	// hit rate (equal to LookupNS without a cache).
	EffectiveLookupNS() float64
	// HotCacheHitRate reports the live cache's hit rate, if one is attached.
	HotCacheHitRate() (float64, bool)
	// HotCache snapshots the live cache, if one is attached.
	HotCache() (core.HotCacheInfo, bool)
}

// Compile-time capability checks: the production engine implements the
// optional tier capabilities explicitly (the sharded tier's twin assertions
// live in internal/cluster's tests — serving cannot import cluster's test
// package without a cycle).
var (
	_ Tiered     = (*core.Engine)(nil)
	_ Prefetcher = (*core.Engine)(nil)
)

// Result is one query's response: the prediction plus the modeled
// accelerator latency and the observed serving-side latency.
type Result struct {
	// CTR is the predicted click-through rate in [0, 1].
	CTR float32
	// ModeledLatencyUS is the accelerator's modeled single-item latency.
	ModeledLatencyUS float64
	// WallTime is the observed submit-to-response latency.
	WallTime time.Duration
	// BatchSize is the size of the micro-batch that served this query.
	BatchSize int
}

type outcome struct {
	res Result
	err error
}

type request struct {
	q   embedding.Query
	enq time.Time
	// ctx is the submitter's context; the batch former consults it at
	// plane-fill time so a request whose caller has already gone does not
	// burn gather/GEMM cycles.
	ctx context.Context
	// deadline is the serving deadline (zero = none): the earlier of
	// enq+Options.Admission.SLA and the context deadline.
	deadline time.Time
	done     chan outcome // buffered(1): workers never block on abandoned waiters
	// sampled marks the request as flight-recorded (decided once at Submit);
	// flushed is when the batcher dispatched its micro-batch (stamped for
	// sampled requests only — it splits queue wait from batch wait).
	sampled bool
	flushed time.Time
}

// expired returns the error a stale request resolves with at batch-formation
// time, or nil while the request is still worth serving. cutoff is now plus
// the expected service time: a request whose deadline lands before service
// could complete is already a lost cause, so spending gather/GEMM on it only
// manufactures a late answer.
func (r *request) expired(cutoff time.Time) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if !r.deadline.IsZero() && cutoff.After(r.deadline) {
		return ErrExpired
	}
	return nil
}

// Server coalesces concurrent Submit calls into micro-batches and drains
// them through the staged pipeline executor (or, in fallback mode, a pool of
// engine workers).
type Server struct {
	eng  Engine
	opts Options

	mu     sync.RWMutex // guards closed vs the admission gate below
	closed bool
	// accepting counts Submits that passed the closed check but have not
	// finished their (potentially blocking) queue send. Close waits for it
	// after flipping closed and before closing the submit channel, so the
	// closed-check/send race resolves without any Submit holding a lock
	// across a blocking send.
	accepting sync.WaitGroup

	submit  chan *request
	batches chan []*request
	// pipe is the staged executor of the default pipelined drain; nil in
	// worker-pool mode.
	pipe *pipeline.Executor
	// clu is the sharded tier coordinator when Options.Tier.Shards > 1 (it is
	// also the server's eng); ownsCluster marks the one New built itself,
	// which Close must stop after the drain has emptied.
	clu         *cluster.Cluster
	ownsCluster bool
	// tiered is non-nil when the engine's Tiered capability reports an
	// attached backing store (/stats gains a "tiers" section); prefetch is
	// the matching Prefetcher capability, engaged alongside it so the drains
	// run the cold-row prefetch pass at plane-fill time.
	tiered   Tiered
	prefetch Prefetcher
	// replica is this server's 1-based id inside the replicated router tier
	// (Options.Router.ReplicaID), stamped on every flight-recorder span;
	// 0 on an unrouted server.
	replica int32
	wg      sync.WaitGroup

	// Admission counters (see AdmissionStats).
	shed          atomic.Uint64
	deadlineDrops atomic.Uint64
	cancelDrops   atomic.Uint64
	late          atomic.Uint64

	// Worker-pool-mode batch service meter (the pipelined drain meters its
	// stages inside the executor instead): feeds the deadline-drop headroom.
	wpServiceNS atomic.Int64
	wpBatches   atomic.Uint64

	// Cached pipesim prediction (see predictedIntervalNS): every shed 429's
	// Retry-After reads it, so it must not cost a simulation per rejection.
	predMu sync.Mutex // single-flight refresh
	predNS atomic.Int64
	predAt atomic.Int64 // unix nanos of the last successful refresh

	latencyUS *metrics.Rolling // per-query wall latency, µs
	occupancy *metrics.Rolling // dispatched batch sizes
	// latencyHist is the lifetime log-bucketed latency histogram behind the
	// /metrics exposition's _bucket series (the Rolling window above feeds
	// the /stats quantiles; both observe the same stamps).
	latencyHist *metrics.Histogram
	// rec is the always-on flight recorder (see internal/obs); buildInfo the
	// binary's provenance, surfaced in /stats and /metrics.
	rec       *obs.Recorder
	buildInfo obs.BuildInfo

	timingMu    sync.Mutex
	timingCache map[timingKey]core.TimingReport
}

// timingKey caches timing reports per batch size. With a live hot-row cache
// attached, the lookup stage's latency tracks the observed hit rate, so the
// key also carries the hit rate bucketed to whole percent (reports within a
// bucket are indistinguishable at serving granularity). coldPct marks the
// cache-cold reports SLA admission uses.
type timingKey struct {
	items  int
	hitPct int
}

const coldPct = -1

// New starts a server around an engine (in production *core.Engine; the
// Engine seam lets overload tests drive deterministic fakes). The returned
// server owns background goroutines; callers must Close it.
func New(eng Engine, opts Options) (*Server, error) {
	if eng == nil || eng == Engine((*core.Engine)(nil)) {
		return nil, fmt.Errorf("serving: nil engine")
	}
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var (
		clu         *cluster.Cluster
		ownsCluster bool
	)
	if opts.Tier.Shards > 1 {
		switch e := eng.(type) {
		case *cluster.Cluster:
			// Caller-built tier: serve on it and surface its stats, but the
			// caller keeps ownership (and Close responsibility). Its shard
			// planes must fit this server's batches.
			if cap := e.Options().MaxBatch; cap < opts.Batching.MaxBatch {
				return nil, fmt.Errorf("serving: cluster plane capacity %d below MaxBatch %d", cap, opts.Batching.MaxBatch)
			}
			clu = e
		case *core.Engine:
			// Per-shard rings sized to the drain's in-flight bound: the
			// pipelined drain holds PipelineDepth planes, the worker pool
			// runs Workers batches — one partial per in-flight batch, plus
			// headroom so a shard can gather ahead of a straggling merge.
			ringDepth := opts.Pipeline.Depth
			if opts.Pipeline.WorkerPool {
				ringDepth = opts.Pipeline.Workers + 1
			}
			c, err := cluster.New(e, cluster.Options{
				Shards:    opts.Tier.Shards,
				MaxBatch:  opts.Batching.MaxBatch,
				RingDepth: ringDepth,
			})
			if err != nil {
				return nil, err
			}
			eng = c
			clu = c
			ownsCluster = true
		default:
			return nil, fmt.Errorf("serving: Options.Tier.Shards needs a *core.Engine or *cluster.Cluster (got %T)", eng)
		}
	}
	s := &Server{
		eng:         eng,
		opts:        opts,
		clu:         clu,
		ownsCluster: ownsCluster,
		submit:      make(chan *request, opts.Admission.QueueDepth),
		batches:     make(chan []*request, 2*opts.Pipeline.Workers),
		// Latencies span µs (warm single-query) to seconds (overload tails);
		// 1% relative error over [1, 10^7] µs.
		latencyHist: metrics.NewHistogram(0.01, 1e7),
		latencyUS:   metrics.NewRolling(opts.Batching.StatsWindow),
		occupancy:   metrics.NewRolling(opts.Batching.StatsWindow),
		rec:         obs.NewRecorder(traceRingSize, opts.Trace.Sample),
		buildInfo:   obs.ReadBuild(kernels.Features()),
		timingCache: make(map[timingKey]core.TimingReport),
	}
	// The capability assertions run on the possibly cluster-wrapped engine so
	// the sharded tier's delegating hooks are the ones engaged. Both hooks
	// key off the Tiered snapshot reporting an attached store: an all-DRAM
	// engine pays no prefetch pass even if it implements Prefetcher.
	if te, ok := eng.(Tiered); ok {
		if _, attached := te.Tier(); attached {
			s.tiered = te
			if pf, ok := eng.(Prefetcher); ok {
				s.prefetch = pf
			}
		}
	}
	s.replica = int32(opts.Router.ReplicaID)
	if opts.Pipeline.WorkerPool {
		s.wg.Add(1 + opts.Pipeline.Workers)
		go s.batcher()
		for i := 0; i < opts.Pipeline.Workers; i++ {
			go s.worker()
		}
		return s, nil
	}
	pipe, err := pipeline.New(eng, pipeline.Options{
		Depth:    opts.Pipeline.Depth,
		MaxBatch: opts.Batching.MaxBatch,
		Deliver:  s.deliver,
		Prepare:  s.prepare,
	})
	if err != nil {
		if ownsCluster {
			_ = clu.Close()
		}
		return nil, err
	}
	s.pipe = pipe
	s.wg.Add(2)
	go s.batcher()
	go s.dispatcher()
	return s, nil
}

// Options returns the server's effective (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// Submit enqueues one query and blocks until its micro-batch has been
// served, the context is cancelled, or the server closes. Malformed queries
// are rejected immediately without joining a batch. With Options.Admission.Shed set it
// instead fails fast with ErrOverloaded when the submit queue is full; with
// a serving deadline (Options.Admission.SLA or a context deadline) it fails with
// ErrExpired if the deadline passes before the request reaches a plane.
func (s *Server) Submit(ctx context.Context, q embedding.Query) (Result, error) {
	if err := s.eng.ValidateQuery(q); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	req := &request{q: q, ctx: ctx, enq: time.Now(), done: make(chan outcome, 1)}
	req.sampled = s.rec.Sample()
	if s.opts.Admission.SLA > 0 {
		req.deadline = req.enq.Add(s.opts.Admission.SLA)
	}
	if d, ok := ctx.Deadline(); ok && (req.deadline.IsZero() || d.Before(req.deadline)) {
		req.deadline = d
	}
	if err := s.enqueue(ctx, req); err != nil {
		return Result{}, err
	}
	select {
	case out := <-req.done:
		if out.err == nil && !req.deadline.IsZero() && time.Now().After(req.deadline) {
			// The batch completed, but past this request's deadline: the
			// answer is late no matter how quickly the caller drains it.
			// Deadline-aware dropping minimises these (the work was already
			// spent); the counter tracks the residue.
			s.late.Add(1)
			return Result{}, ErrExpired
		}
		return out.res, out.err
	case <-ctx.Done():
		// The query is already in a batch; the buffered done channel lets
		// the worker complete it without us.
		return Result{}, ctx.Err()
	}
}

// enqueue is the admission gate. The closed check and the in-flight
// registration happen under a briefly held read lock; the potentially
// blocking queue send happens outside any lock, so Close's write-lock
// acquisition never couples to queue backpressure (it waits on the accepting
// gate instead, which the still-running batcher is guaranteed to drain).
func (s *Server) enqueue(ctx context.Context, req *request) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrServerClosed
	}
	s.accepting.Add(1)
	s.mu.RUnlock()
	defer s.accepting.Done()

	if s.opts.Admission.Shed {
		select {
		case s.submit <- req:
			return nil
		default:
			s.shed.Add(1)
			if req.sampled {
				s.rec.Record(obs.Span{
					Start:      req.enq.UnixNano(),
					EndToEndNS: int64(time.Since(req.enq)),
					Replica:    s.replica,
					Verdict:    obs.VerdictShed,
				})
			}
			return ErrOverloaded
		}
	}
	select {
	case s.submit <- req:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting queries, drains every in-flight request — through
// the remaining pipeline stages in pipelined mode — and waits for the
// background goroutines to exit. No accepted request is dropped. It is
// idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Every Submit that won admission before the flag flipped holds a slot
	// in the accepting gate; the batcher keeps draining the queue until the
	// gate empties, so those sends complete and no sender can touch the
	// channel after it closes.
	s.accepting.Wait()
	close(s.submit)
	// Batcher flushes and closes s.batches; the dispatcher (or workers)
	// drains it. Only then may the executor close: every accepted batch has
	// been submitted, and the executor's Close delivers the in-flight ones.
	s.wg.Wait()
	var err error
	if s.pipe != nil {
		err = s.pipe.Close()
	}
	// Only now is the drain empty — no worker or stage can issue another
	// scatter round — so an owned sharded tier's workers may stop.
	if s.ownsCluster {
		if cerr := s.clu.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// drainQueued non-blockingly moves already-queued requests into pending, up
// to MaxBatch. The bool is false once the submit channel is closed and
// empty.
func (s *Server) drainQueued(pending []*request) ([]*request, bool) {
	for len(pending) < s.opts.Batching.MaxBatch {
		select {
		case req, ok := <-s.submit:
			if !ok {
				return pending, false
			}
			pending = append(pending, req)
		default:
			return pending, true
		}
	}
	return pending, true
}

// batcher owns batch formation: flush on size, on window expiry, and on
// shutdown.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.batches)
	var (
		pending []*request
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) > 0 {
			// Stamp the flush for sampled requests: it splits a span's queue
			// wait (batch formation) from its batch wait (dispatch to service).
			var now time.Time
			for _, r := range pending {
				if r.sampled {
					if now.IsZero() {
						now = time.Now()
					}
					r.flushed = now
				}
			}
			s.batches <- pending
			pending = nil
		}
	}
	for {
		select {
		case req, ok := <-s.submit:
			if !ok {
				flush()
				return
			}
			pending = append(pending, req)
			pending, ok = s.drainQueued(pending)
			if !ok {
				flush()
				return
			}
			switch {
			case len(pending) >= s.opts.Batching.MaxBatch:
				flush()
			case timerC == nil:
				timer = time.NewTimer(s.opts.Batching.Window)
				timerC = timer.C
			}
		case <-timerC:
			timer = nil
			timerC = nil
			flush()
		}
	}
}

// serviceHeadroomNS estimates the time a batch entering service now still
// needs to complete: the pipelined drain's lifetime mean plane service (sum
// of stage means), or the worker pool's mean monolithic batch time. 0 until
// traffic has measured it.
func (s *Server) serviceHeadroomNS() float64 {
	if s.pipe != nil {
		return s.pipe.MeanBatchServiceNS()
	}
	n := s.wpBatches.Load()
	if n == 0 {
		return 0
	}
	return float64(s.wpServiceNS.Load()) / float64(n)
}

// resolveExpired classifies one request at service time: nil while it is
// still worth serving; otherwise its future is resolved with the error, the
// matching drop counter is bumped, and the error is returned. Shared by both
// drain modes' plane-fill filters so drop semantics cannot diverge.
func (s *Server) resolveExpired(r *request, cutoff time.Time) error {
	err := r.expired(cutoff)
	if err == nil {
		return nil
	}
	verdict := obs.VerdictCanceled
	if errors.Is(err, ErrExpired) {
		s.deadlineDrops.Add(1)
		verdict = obs.VerdictExpired
	} else {
		s.cancelDrops.Add(1)
	}
	if r.sampled {
		now := time.Now()
		sp := obs.Span{
			Start:      r.enq.UnixNano(),
			EndToEndNS: int64(now.Sub(r.enq)),
			Replica:    s.replica,
			Verdict:    verdict,
		}
		// A dropped request's whole life is queue + batch wait: no stage was
		// ever entered.
		if !r.flushed.IsZero() {
			sp.QueueNS = int64(r.flushed.Sub(r.enq))
			sp.BatchWaitNS = int64(now.Sub(r.flushed))
		} else {
			sp.QueueNS = sp.EndToEndNS
		}
		s.rec.Record(sp)
	}
	r.done <- outcome{err: err}
	return err
}

// dropExpired filters a batch at plane-fill time: requests whose context was
// cancelled after enqueue, or whose serving deadline cannot be met even if
// service starts immediately (deadline before now + expected service), are
// resolved with their error and counted — the gather and GEMM cycles they
// would have occupied go to requests that can still answer in time. This is
// the wasted-work fix the admission layer exists to exploit: under overload
// the queue is exactly where stale requests accumulate.
func (s *Server) dropExpired(batch []*request) []*request {
	cutoff := time.Now().Add(time.Duration(s.serviceHeadroomNS()))
	live := batch[:0]
	for _, r := range batch {
		if s.resolveExpired(r, cutoff) == nil {
			live = append(live, r)
		}
	}
	return live
}

// worker drains batches through the engine's monolithic blocked batch
// datapath — the worker-pool fallback mode. Each worker owns a private
// scratch; the engine itself is immutable and shared. Queries were validated
// once at admission (Submit), so workers use the validated fast path and
// skip the second shape/range pass. dropExpired runs right before service —
// this drain has no later admission point.
func (s *Server) worker() {
	defer s.wg.Done()
	var scratch core.BatchScratch
	queries := make([]embedding.Query, 0, s.opts.Batching.MaxBatch)
	preds := make([]float32, s.opts.Batching.MaxBatch)
	for batch := range s.batches {
		batch = s.dropExpired(batch)
		if len(batch) == 0 {
			continue
		}
		queries = queries[:0]
		for _, r := range batch {
			queries = append(queries, r.q)
		}
		if s.prefetch != nil {
			s.prefetch.PrefetchBatch(queries)
		}
		var bt batchTrace
		bt.serviceStart = time.Now()
		_, err := s.eng.InferBatchValidated(queries, preds[:len(batch)], &scratch)
		bt.serviceEnd = time.Now()
		bt.gather = scratch.GatherObs()
		s.wpServiceNS.Add(int64(bt.serviceEnd.Sub(bt.serviceStart)))
		s.wpBatches.Add(1)
		s.complete(batch, preds[:len(batch)], err, &bt)
	}
}

// batchTrace carries one batch's stage boundary stamps and gather record from
// the drain to complete(), where sampled requests' spans are assembled. The
// pipelined drain fills it through pipeline.PlaneObserver (plain stores on the
// stage goroutines, read only after delivery — the executor's channel
// hand-offs order the accesses); the worker pool stamps its monolithic
// service window directly. It lives inside the batch's payload (pipelined) or
// on the worker's stack, so steady-state tracing allocates nothing.
type batchTrace struct {
	stageStart [pipeline.NumStages]time.Time
	stageEnd   [pipeline.NumStages]time.Time
	// serviceStart/End bracket the worker pool's monolithic
	// InferBatchValidated call (zero in pipelined mode).
	serviceStart, serviceEnd time.Time
	gather                   core.GatherObs
}

// ObserveStage implements pipeline.PlaneObserver.
func (t *batchTrace) ObserveStage(stage int, start, end time.Time) {
	if stage >= 0 && stage < pipeline.NumStages {
		t.stageStart[stage] = start
		t.stageEnd[stage] = end
	}
}

// ObserveGather implements pipeline.PlaneObserver.
func (t *batchTrace) ObserveGather(o core.GatherObs) { t.gather = o }

// planeBatch carries a batch through the pipeline executor. The Prepare hook
// rewrites reqs when it drops expired requests, so the tail-stage Deliver
// always sees exactly the requests whose queries were gathered. The embedded
// batchTrace makes the payload a pipeline.PlaneObserver, so the executor's
// stage loops stamp it as the plane moves through.
type planeBatch struct {
	batchTrace
	reqs []*request
}

// dispatcher drains formed batches into the pipeline executor — the default
// pipelined mode. Submit copies the query headers onto a plane, so the local
// buffer is reusable immediately; the batch itself rides through the stages
// as the plane's payload and resurfaces in deliver. Expiry is checked by the
// prepare hook on the gather stage, not here: Submit can block waiting for a
// free plane under backpressure, and requests keep aging through that wait.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	queries := make([]embedding.Query, 0, s.opts.Batching.MaxBatch)
	for batch := range s.batches {
		queries = queries[:0]
		for _, r := range batch {
			queries = append(queries, r.q)
		}
		pb := &planeBatch{reqs: batch}
		if err := s.pipe.Submit(queries, pb); err != nil {
			s.complete(batch, nil, err, nil)
		}
	}
}

// prepare is the executor's gather-stage admission hook: the last moment
// before a plane's work is committed. It drops expired requests from the
// batch and filters the plane's query headers in lockstep — batch[i] and
// queries[i] are index-aligned by construction (the dispatcher built one
// from the other, and the executor copies queries in order) — so preds
// indices in deliver stay aligned with the surviving requests.
func (s *Server) prepare(payload interface{}, queries []embedding.Query) []embedding.Query {
	pb := payload.(*planeBatch)
	cutoff := time.Now().Add(time.Duration(s.serviceHeadroomNS()))
	live := pb.reqs[:0]
	kept := queries[:0]
	for i, r := range pb.reqs {
		if s.resolveExpired(r, cutoff) == nil {
			live = append(live, r)
			kept = append(kept, queries[i])
		}
	}
	pb.reqs = live
	// Warm the cold tier for the surviving queries before the gather stage
	// commits: the prefetch fans the plane's cold rows out here, so a cold
	// row's modeled fault stalls only this plane's fill while the GEMM stage
	// keeps draining earlier planes.
	if s.prefetch != nil && len(kept) > 0 {
		s.prefetch.PrefetchBatch(kept)
	}
	return kept
}

// deliver receives completed batches on the executor's tail stage. preds is
// plane-owned and only valid during the call; complete resolves every future
// synchronously (buffered done channels), so nothing outlives it.
func (s *Server) deliver(payload interface{}, preds []float32) {
	pb := payload.(*planeBatch)
	s.complete(pb.reqs, preds, nil, &pb.batchTrace)
}

// complete finishes one batch: the per-batch timing report, serving metrics,
// flight-recorder spans for the batch's sampled requests, and the response
// future of every request. On error all futures carry the error instead.
func (s *Server) complete(batch []*request, preds []float32, err error, bt *batchTrace) {
	var rep core.TimingReport
	if err == nil {
		rep, err = s.timing(len(batch))
	}
	// Record stats before resolving any future, so a Stats() call racing a
	// just-returned Submit always sees the batch.
	now := time.Now()
	s.occupancy.Observe(now, float64(len(batch)))
	if err == nil {
		for _, r := range batch {
			lat := now.Sub(r.enq).Seconds() * 1e6
			s.latencyUS.Observe(now, lat)
			s.latencyHist.Observe(lat)
		}
	}
	s.recordSpans(batch, bt, now, err)
	for i, r := range batch {
		if err != nil {
			r.done <- outcome{err: err}
			continue
		}
		r.done <- outcome{res: Result{
			CTR:              preds[i],
			ModeledLatencyUS: rep.LatencyNS / 1e3,
			WallTime:         now.Sub(r.enq),
			BatchSize:        len(batch),
		}}
	}
}

// recordSpans writes the batch's sampled requests into the flight recorder.
// now is the same stamp the latency metrics observed, so a span's EndToEndNS
// and the rolling latency window agree exactly. The stage segments come from
// the batch trace and are shared by every request in the batch — a request's
// span is its own queue/batch waits followed by the batch's service timeline.
func (s *Server) recordSpans(batch []*request, bt *batchTrace, now time.Time, err error) {
	verdict := obs.VerdictOK
	if err != nil {
		verdict = obs.VerdictError
	}
	for _, r := range batch {
		if !r.sampled {
			continue
		}
		sp := obs.Span{
			Start:      r.enq.UnixNano(),
			EndToEndNS: int64(now.Sub(r.enq)),
			Batch:      int32(len(batch)),
			Replica:    s.replica,
			Verdict:    verdict,
		}
		flushed := r.flushed
		if flushed.IsZero() {
			flushed = r.enq
		}
		sp.QueueNS = int64(flushed.Sub(r.enq))
		switch {
		case bt != nil && !bt.stageStart[pipeline.StageGather].IsZero():
			// Pipelined drain: batch wait runs from flush to gather entry
			// (plane acquisition + prepare + prefetch); inter-stage waits are
			// the gaps between one stage's exit and the next one's entry.
			sp.BatchWaitNS = int64(bt.stageStart[pipeline.StageGather].Sub(flushed))
			sp.GatherNS = int64(bt.stageEnd[pipeline.StageGather].Sub(bt.stageStart[pipeline.StageGather]))
			sp.DenseWaitNS = int64(bt.stageStart[pipeline.StageDense].Sub(bt.stageEnd[pipeline.StageGather]))
			sp.DenseNS = int64(bt.stageEnd[pipeline.StageDense].Sub(bt.stageStart[pipeline.StageDense]))
			sp.TailWaitNS = int64(bt.stageStart[pipeline.StageTail].Sub(bt.stageEnd[pipeline.StageDense]))
			sp.TailNS = int64(bt.stageEnd[pipeline.StageTail].Sub(bt.stageStart[pipeline.StageTail]))
		case bt != nil && !bt.serviceStart.IsZero():
			// Worker pool: one monolithic service segment.
			sp.BatchWaitNS = int64(bt.serviceStart.Sub(flushed))
			sp.ServiceNS = int64(bt.serviceEnd.Sub(bt.serviceStart))
		default:
			// No trace (dispatcher-submit failure): everything after the
			// flush is batch wait.
			sp.BatchWaitNS = int64(now.Sub(flushed))
		}
		if bt != nil {
			sp.ColdFaults = int32(bt.gather.ColdFaults)
			sp.Shards = int32(bt.gather.Shards)
			sp.ShardMaxNS = bt.gather.ShardMaxNS
			sp.MergeWaitNS = bt.gather.MergeWaitNS
		}
		s.rec.Record(sp)
	}
}

// Trace snapshots up to `last` recent spans from the flight recorder (last
// <= 0 means the whole ring), dropping spans that started before `since` when
// it is non-zero — the data behind GET /trace.
func (s *Server) Trace(last int, since time.Time) []obs.Span {
	return s.rec.Snapshot(last, since)
}

// QueueLen is the submit queue's current occupancy — the queueing half of the
// router's least-loaded score. One channel-length read; safe at any rate.
func (s *Server) QueueLen() int { return len(s.submit) }

// InFlightBatches counts micro-batches dispatched but not yet delivered: the
// dispatch channel's backlog plus, in pipelined mode, the executor's occupied
// planes. (The worker pool exposes no in-service count; its dispatch backlog
// alone carries the signal.)
func (s *Server) InFlightBatches() int {
	n := len(s.batches)
	if s.pipe != nil {
		n += s.pipe.InFlight()
	}
	return n
}

// LoadScore is the router's least-loaded scoring input, in queued-request
// units: the submit queue's occupancy plus the in-flight batches weighted by
// the flush size (a dispatched batch represents up to MaxBatch requests the
// replica has committed to serve before a newly routed one).
//
//	score = QueueLen + MaxBatch · InFlightBatches
func (s *Server) LoadScore() int {
	return s.QueueLen() + s.opts.Batching.MaxBatch*s.InFlightBatches()
}

// LoadCapacity is the LoadScore at which the replica is fully occupied —
// submit queue full and every dispatch slot and plane (or pool worker)
// holding a full batch. LoadScore/LoadCapacity is the occupancy figure the
// /stats router section reports per replica.
func (s *Server) LoadCapacity() int {
	inFlight := cap(s.batches)
	if s.pipe != nil {
		inFlight += s.opts.Pipeline.Depth
	}
	return s.opts.Admission.QueueDepth + s.opts.Batching.MaxBatch*inFlight
}

// HotCacheCounts reports the engine's live hot-row cache lifetime hit/miss
// counters; ok is false without a cache. The router's affinity hit-rate
// baseline needs the raw counters — a rate alone cannot be windowed into a
// since-mark delta.
func (s *Server) HotCacheCounts() (hits, misses int64, ok bool) {
	info, ok := s.eng.HotCache()
	if !ok {
		return 0, 0, false
	}
	return info.Hits, info.Misses, true
}

// BuildInfo returns the binary's build provenance as surfaced in /stats.
func (s *Server) BuildInfo() obs.BuildInfo { return s.buildInfo }

// timing returns the modeled timing report for a batch size at the engine's
// current effective lookup latency, cached per (size, hit-rate bucket) — the
// report is deterministic in those inputs at percent granularity. The bucket
// comes from a coherent snapshot of the cache's per-shard counters (one
// brief lock acquisition per shard), cheap enough for a per-batch call.
func (s *Server) timing(items int) (core.TimingReport, error) {
	key := timingKey{items: items}
	if hr, ok := s.eng.HotCacheHitRate(); ok {
		key.hitPct = int(hr*100 + 0.5)
	}
	return s.timingFor(key, s.eng.EffectiveLookupNS())
}

// coldTiming returns the timing report with a cold hot-row cache (the plan's
// unassisted lookup latency). SLA admission must use this: a warm cache
// improves the expected latency, never the worst-case bound.
func (s *Server) coldTiming(items int) (core.TimingReport, error) {
	return s.timingFor(timingKey{items: items, hitPct: coldPct}, s.eng.LookupNS())
}

// timingFor memoises one timing-model run per key.
func (s *Server) timingFor(key timingKey, lookupNS float64) (core.TimingReport, error) {
	s.timingMu.Lock()
	defer s.timingMu.Unlock()
	if rep, ok := s.timingCache[key]; ok {
		return rep, nil
	}
	rep, err := s.eng.TimingAt(key.items, lookupNS)
	if err == nil {
		s.timingCache[key] = rep
	}
	return rep, err
}

// LatencySummary is the rolling latency distribution in µs.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// HotCacheStats is the serving-side view of the engine's live hot-row cache.
type HotCacheStats struct {
	CapacityBytes int64   `json:"capacity_bytes"`
	UsedBytes     int64   `json:"used_bytes"`
	Entries       int     `json:"entries"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	// EffectiveLookupNS is the modeled embedding-lookup latency at the
	// current hit rate; ColdLookupNS is the uncached plan latency.
	EffectiveLookupNS float64 `json:"effective_lookup_ns"`
	ColdLookupNS      float64 `json:"cold_lookup_ns"`
}

// PipelineStats is the serving-side view of the staged pipeline executor:
// ring depth, in-flight batch count, per-stage occupancy/service times and
// the measured vs pipesim-predicted steady-state initiation interval.
type PipelineStats = pipeline.Snapshot

// ClusterStats is the serving-side view of the sharded tier: shard count and
// partition, per-shard occupancy, the straggler merge-wait histogram and the
// imbalance ratio.
type ClusterStats = cluster.Stats

// TierStats is the serving-side view of the tiered backing store: per-tier
// residency, read split, promotion/demotion counters and the current
// cold-latency bound.
type TierStats = tieredstore.Snapshot

// BuildInfo is the binary's build/version provenance (git revision, Go
// toolchain, kernel dispatch) as surfaced in /stats and /metrics.
type BuildInfo = obs.BuildInfo

// TraceStats is the flight recorder's own counters: ring size, sampling rate,
// arrivals and recorded spans.
type TraceStats = obs.Stats

// ReplicaStats is one replica's row in the /stats "router" section. The
// routing counters come from the router's scoreboard; the serving figures are
// the replica's own Stats condensed to the numbers a routing decision (or a
// capacity dashboard) reads.
type ReplicaStats struct {
	// ID is the replica's 1-based id (Span.Replica on its traces).
	ID int `json:"id"`
	// State is "active", "draining" or "drained".
	State string `json:"state"`
	// Routed counts requests the router sent to this replica; InFlight is
	// the number currently between route and completion.
	Routed   uint64 `json:"routed"`
	InFlight int64  `json:"in_flight"`
	// QueueDepth and PipelineInFlight are the live load-score inputs
	// (Server.QueueLen, Server.InFlightBatches); LoadScore combines them and
	// Occupancy normalises the score by the replica's LoadCapacity.
	QueueDepth       int     `json:"queue_depth"`
	PipelineInFlight int     `json:"pipeline_in_flight"`
	LoadScore        int     `json:"load_score"`
	Occupancy        float64 `json:"occupancy"`
	// Queries/QPS/P99US echo the replica's own rolling serving stats.
	Queries uint64  `json:"queries"`
	QPS     float64 `json:"qps"`
	P99US   float64 `json:"p99_us"`
	// HitRate is the replica's live hot-row cache hit rate (0 without a
	// cache) — the per-replica view behind the affinity lift.
	HitRate float64 `json:"hit_rate"`
}

// PolicyDecisionStats counts one policy's routing decisions. Every policy the
// router has used appears, so a policy switch mid-run (the loadtest affinity
// comparison does this) leaves both policies' volumes visible.
type PolicyDecisionStats struct {
	Policy string `json:"policy"`
	// Total is the lifetime decision count; PerSec the rolling decision
	// rate over the router's stats window.
	Total  uint64  `json:"total"`
	PerSec float64 `json:"per_sec"`
}

// RouterStats is the /stats "router" section: the replicated tier's routing
// scoreboard. It is populated by internal/router's merged Stats — the Server
// itself never fills Stats.Router (an unrouted server reports none).
type RouterStats struct {
	// Policy is the active routing policy ("round-robin", "least-loaded",
	// "affinity"); Replicas the active replica count.
	Policy   string `json:"policy"`
	Replicas int    `json:"replicas"`
	// Drained counts replicas removed (or swapped) under live traffic.
	Drained uint64 `json:"drained"`
	// Decisions breaks routing decisions down per policy.
	Decisions []PolicyDecisionStats `json:"decisions"`
	// PerReplica is the per-replica scoreboard, ordered by replica id.
	PerReplica []ReplicaStats `json:"per_replica"`
	// AggregateHitRate is the replicas' pooled hot-cache hit rate
	// (sum hits / sum lookups). BaselineHitRate and HitRateDelta are
	// populated once a baseline mark is set (Router.MarkHitRateBaseline):
	// baseline is the pooled rate before the mark, aggregate then covers
	// only post-mark traffic, and the delta is their difference — the
	// affinity lift measurement.
	AggregateHitRate float64 `json:"aggregate_hit_rate"`
	BaselineHitRate  float64 `json:"baseline_hit_rate"`
	HitRateDelta     float64 `json:"hit_rate_delta"`
}

// AdmissionStats is the /stats view of the admission gate: current queue
// pressure, the shed and drop counters, and the server's own estimate of its
// knee — the offered load beyond which it starts shedding.
type AdmissionStats struct {
	// QueueDepth is the submit queue's current occupancy; QueueCapacity is
	// its bound (Options.Admission.QueueDepth).
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Shedding reports whether the fast-fail shed path is enabled.
	Shedding bool `json:"shedding"`
	// SLAMS is the per-request serving deadline in ms (0 = none).
	SLAMS float64 `json:"sla_ms,omitempty"`
	// Shed counts Submits fast-failed with ErrOverloaded (queue full).
	Shed uint64 `json:"shed"`
	// DeadlineDrops counts requests dropped at plane-fill time because
	// their serving deadline could not be met; CancelDrops counts those
	// dropped because their context was cancelled after enqueue. Neither
	// spent any gather or GEMM cycles.
	DeadlineDrops uint64 `json:"deadline_drops"`
	CancelDrops   uint64 `json:"cancel_drops"`
	// LateCompletions counts requests that were served but whose batch
	// completed after their deadline — work the deadline-aware dropper
	// failed to save (its headroom estimate lagged). They fail with
	// ErrExpired like drops, but their gather/GEMM cycles were spent.
	LateCompletions uint64 `json:"late_completions"`
	// KneeQPS is the current capacity estimate (see Server.CapacityQPS);
	// 0 until the pipelined drain has measured its stages.
	KneeQPS float64 `json:"knee_qps"`
	// RetryAfterMS is the backoff hint handed to shed clients.
	RetryAfterMS float64 `json:"retry_after_ms"`
}

// Stats is a point-in-time view of the server's rolling serving statistics.
type Stats struct {
	// Configuration echo. Mode is "pipeline" or "worker-pool".
	Mode     string  `json:"mode"`
	MaxBatch int     `json:"max_batch"`
	WindowUS float64 `json:"window_us"`
	Workers  int     `json:"workers"`
	// Lifetime counters.
	Queries uint64 `json:"queries"`
	Batches uint64 `json:"batches"`
	// Rolling-window statistics (last StatsWindow queries).
	QPS            float64        `json:"qps"`
	LatencyUS      LatencySummary `json:"latency_us"`
	MeanBatch      float64        `json:"mean_batch"`
	BatchOccupancy float64        `json:"batch_occupancy"`
	// Admission reports the admission gate: queue pressure, shed and
	// deadline-drop counters, and the knee estimate.
	Admission AdmissionStats `json:"admission"`
	// Pipeline reports the staged executor when the server runs the
	// pipelined drain (nil in worker-pool mode).
	Pipeline *PipelineStats `json:"pipeline,omitempty"`
	// Cluster reports the sharded tier when Options.Tier.Shards > 1 (nil on a
	// single engine).
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// HotCache reports the engine's live hot-row cache when one is
	// attached (nil otherwise).
	HotCache *HotCacheStats `json:"hotcache,omitempty"`
	// Tiers reports the tiered backing store when one is attached (nil on
	// all-DRAM engines).
	Tiers *TierStats `json:"tiers,omitempty"`
	// Router reports the replicated router tier when the stats come from a
	// router-merged snapshot (internal/router fills it; a Server's own Stats
	// never does — nil on an unrouted server).
	Router *RouterStats `json:"router,omitempty"`
	// Trace reports the flight recorder: ring size, head-sampling rate,
	// arrivals and recorded spans (the spans themselves are on /trace).
	Trace TraceStats `json:"trace"`
	// LatencyHistUS summarises the lifetime log-bucketed latency histogram
	// behind the /metrics _bucket series (the rolling LatencyUS above covers
	// only the last StatsWindow queries).
	LatencyHistUS metrics.HistogramSnapshot `json:"latency_hist_us"`
	// BuildInfo is the binary's build/version provenance.
	BuildInfo BuildInfo `json:"build_info"`
}

// Mode reports the server's drain mode: "pipeline" or "worker-pool".
func (s *Server) Mode() string {
	if s.pipe != nil {
		return "pipeline"
	}
	return "worker-pool"
}

// Stats snapshots the rolling serving statistics.
func (s *Server) Stats() Stats {
	now := time.Now()
	lat := s.latencyUS.Snapshot(now)
	occ := s.occupancy.Snapshot(now)
	st := Stats{
		Mode:     s.Mode(),
		MaxBatch: s.opts.Batching.MaxBatch,
		WindowUS: float64(s.opts.Batching.Window) / float64(time.Microsecond),
		Workers:  s.opts.Pipeline.Workers,
		Queries:  lat.Total,
		Batches:  occ.Total,
		QPS:      lat.RatePerSec,
		LatencyUS: LatencySummary{
			Mean: lat.Summary.Mean,
			P50:  lat.Summary.P50,
			P95:  lat.Summary.P95,
			P99:  lat.Summary.P99,
			Max:  lat.Summary.Max,
		},
		MeanBatch:     occ.Summary.Mean,
		Trace:         s.rec.Stats(),
		LatencyHistUS: s.latencyHist.Snapshot(),
		BuildInfo:     s.buildInfo,
		Admission: AdmissionStats{
			QueueDepth:      len(s.submit),
			QueueCapacity:   s.opts.Admission.QueueDepth,
			Shedding:        s.opts.Admission.Shed,
			SLAMS:           float64(s.opts.Admission.SLA) / float64(time.Millisecond),
			Shed:            s.shed.Load(),
			DeadlineDrops:   s.deadlineDrops.Load(),
			CancelDrops:     s.cancelDrops.Load(),
			LateCompletions: s.late.Load(),
			KneeQPS:         s.CapacityQPS(),
			RetryAfterMS:    float64(s.RetryAfter()) / float64(time.Millisecond),
		},
	}
	if s.pipe != nil {
		snap := s.pipe.Snapshot()
		st.Pipeline = &snap
	}
	if s.clu != nil {
		cs := s.clu.Stats()
		st.Cluster = &cs
	}
	if st.MaxBatch > 0 {
		st.BatchOccupancy = st.MeanBatch / float64(st.MaxBatch)
	}
	if s.tiered != nil {
		if snap, ok := s.tiered.Tier(); ok {
			st.Tiers = &snap
		}
	}
	if info, ok := s.eng.HotCache(); ok {
		st.HotCache = &HotCacheStats{
			CapacityBytes:     info.CapacityBytes,
			UsedBytes:         info.UsedBytes,
			Entries:           info.Entries,
			Hits:              info.Hits,
			Misses:            info.Misses,
			HitRate:           info.HitRate,
			EffectiveLookupNS: info.EffectiveLookupNS,
			ColdLookupNS:      s.eng.LookupNS(),
		}
	}
	return st
}

// predictedTTL bounds how often the pipesim prediction is recomputed: the
// figure feeds every shed response's Retry-After and the /stats knee
// estimate, and one recompute runs a discrete-event simulation plus
// per-stage window sorts under the stage meters' locks — far too heavy to
// pay per rejection during a shed storm, which is exactly when it is read
// the most.
const predictedTTL = 250 * time.Millisecond

// predictedIntervalNS returns the pipelined drain's pipesim-predicted
// steady-state batch interval, cached for predictedTTL with a single-flight
// refresh. 0 in worker-pool mode and until every stage has served traffic
// (warm-up recomputes are cheap: the simulator is skipped while any stage
// window is empty).
func (s *Server) predictedIntervalNS() float64 {
	if s.pipe == nil {
		return 0
	}
	now := time.Now().UnixNano()
	if cached := s.predNS.Load(); cached > 0 && now-s.predAt.Load() < int64(predictedTTL) {
		return float64(cached)
	}
	if !s.predMu.TryLock() {
		// Another goroutine is refreshing; serve the stale value.
		return float64(s.predNS.Load())
	}
	defer s.predMu.Unlock()
	ns := s.pipe.PredictedIntervalNS()
	if ns > 0 {
		s.predNS.Store(int64(ns))
		s.predAt.Store(now)
	}
	return ns
}

// CapacityQPS estimates the server's steady-state serving capacity — the
// knee the open-loop load harness measures — as MaxBatch queries per
// steady-state batch interval, where the interval is pipesim's predicted
// initiation interval over the pipelined drain's measured stage service
// times. It returns 0 until every stage has served traffic, and always in
// worker-pool mode (which has no stage meters to feed the simulator).
func (s *Server) CapacityQPS() float64 {
	ns := s.predictedIntervalNS()
	if ns <= 0 {
		return 0
	}
	return float64(s.opts.Batching.MaxBatch) * 1e9 / ns
}

// RetryAfter is the backoff hint a shedding server hands rejected clients:
// one pipesim-predicted steady-state batch interval — the time until the
// drain frees the next queue slot. Before any traffic has measured the
// stages (or in worker-pool mode) it falls back to the timing model's
// cache-cold full-batch makespan, and to 1ms if even that is unavailable.
func (s *Server) RetryAfter() time.Duration {
	if ns := s.predictedIntervalNS(); ns > 0 {
		return time.Duration(ns)
	}
	if rep, err := s.coldTiming(s.opts.Batching.MaxBatch); err == nil && rep.MakespanNS > 0 {
		return time.Duration(rep.MakespanNS)
	}
	return time.Millisecond
}

// ValidateSLA checks the server's batching window against a tail-latency
// budget for any *admitted* query, including the backlog the server itself
// can hold: full batches in the submit queue, in the dispatch channel and in
// service, drained by the worker pool (see sla.WorstCaseAdmittedLatencyMS).
// The full-batch service time comes from the engine's timing model with a
// cold hot-row cache: admission must hold even before the cache warms (and
// after any invalidation empties it).
func (s *Server) ValidateSLA(budget time.Duration) error {
	rep, err := s.coldTiming(s.opts.Batching.MaxBatch)
	if err != nil {
		return err
	}
	windowMS := float64(s.opts.Batching.Window) / float64(time.Millisecond)
	budgetMS := float64(budget) / float64(time.Millisecond)
	return sla.ValidateAdmittedWindow(windowMS, rep.MakespanNS/1e6, budgetMS, s.backlogBatches(), s.drainWorkers())
}

// AdmittedLatencyBounds returns the worst-case admitted latency (computed
// from the cache-cold full-batch service time, the figure ValidateSLA
// enforces) alongside the expected latency at the engine's current effective
// lookup latency — identical without a hot-row cache, and an increasingly
// tighter pair as the cache warms.
func (s *Server) AdmittedLatencyBounds() (worst, expected time.Duration, err error) {
	cold, err := s.coldTiming(s.opts.Batching.MaxBatch)
	if err != nil {
		return 0, 0, err
	}
	warm, err := s.timing(s.opts.Batching.MaxBatch)
	if err != nil {
		return 0, 0, err
	}
	windowMS := float64(s.opts.Batching.Window) / float64(time.Millisecond)
	worstMS, expectedMS := sla.AdmittedLatencyBoundsMS(
		windowMS, cold.MakespanNS/1e6, warm.MakespanNS/1e6, s.backlogBatches(), s.drainWorkers())
	return time.Duration(worstMS * float64(time.Millisecond)),
		time.Duration(expectedMS * float64(time.Millisecond)), nil
}

// MaxWindowUnderSLA returns the largest flush window that keeps the
// worst-case admitted latency within the budget, or an error when no window
// does (the backlog and batch size alone exceed the budget). Like
// ValidateSLA it uses the cache-cold service time.
func (s *Server) MaxWindowUnderSLA(budget time.Duration) (time.Duration, error) {
	rep, err := s.coldTiming(s.opts.Batching.MaxBatch)
	if err != nil {
		return 0, err
	}
	budgetMS := float64(budget) / float64(time.Millisecond)
	ms, err := sla.MaxWindowUnderBudget(rep.MakespanNS/1e6, budgetMS, s.backlogBatches(), s.drainWorkers())
	if err != nil {
		return 0, err
	}
	return time.Duration(ms * float64(time.Millisecond)), nil
}

// backlogBatches bounds the batches ahead of a freshly admitted query: the
// submit queue can hold ceil(QueueDepth/MaxBatch) batches, plus — in
// worker-pool mode — 2*Workers in the dispatch channel and one in service
// per worker; in pipelined mode the dispatch channel, the dispatcher's hand
// and the plane ring bound the in-flight batches instead.
func (s *Server) backlogBatches() int {
	queued := (s.opts.Admission.QueueDepth + s.opts.Batching.MaxBatch - 1) / s.opts.Batching.MaxBatch
	if s.pipe != nil {
		return queued + 2*s.opts.Pipeline.Workers + 1 + s.opts.Pipeline.Depth
	}
	return queued + 3*s.opts.Pipeline.Workers
}

// drainWorkers is the batch-drain parallelism the SLA backlog model divides
// by: the worker pool drains Workers batches concurrently; the pipeline is
// modeled conservatively as one worker with the full (un-overlapped) batch
// service time — stage overlap only shortens the real drain, so the
// worst-case admitted bound stays valid.
func (s *Server) drainWorkers() int {
	if s.pipe != nil {
		return 1
	}
	return s.opts.Pipeline.Workers
}
