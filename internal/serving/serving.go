// Package serving implements the batched online-inference subsystem: a
// dynamic micro-batcher that coalesces concurrent predict requests into
// hardware-sized batches (flush on max batch size or a deadline window),
// drained through the staged pipeline executor — gather, dense GEMM and
// tail/response stages overlapped over a ring of batch planes — with
// per-request response futures. A flat engine worker pool remains available
// as a fallback mode (Options.WorkerPool).
//
// This is the serving seam the paper argues for (§2.3): per-query serving —
// one synchronous inference per HTTP request, the TensorFlow-Serving
// baseline's pattern — leaves the engine streaming every FC weight matrix
// once per query, while a micro-batch amortises the weight traffic across
// all queries in flight. The pipelined drain adds the second hardware pillar
// (§4.1): while batch i occupies the GEMM stage, batch i+1's gather is
// already running, so memory latency hides behind compute. The window bounds
// the latency cost of coalescing and can be validated against an SLA budget
// (see internal/sla).
//
//	requests ──► Submit ──► micro-batcher ──► dispatcher ──► pipeline executor
//	   ▲                    (size/window         │          (gather │ GEMM │ tail)
//	   └──── response futures ◄──────────────────┴──────────────────┘
package serving

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/metrics"
	"microrec/internal/pipeline"
	"microrec/internal/sla"
)

// ErrServerClosed is returned by Submit after Close.
var ErrServerClosed = errors.New("serving: server closed")

// ErrInvalidQuery wraps a query that failed shape/range validation in
// Submit — a client fault, as opposed to an engine failure during batch
// service (a server fault).
var ErrInvalidQuery = errors.New("serving: invalid query")

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// MaxBatch is the flush size: a forming batch is dispatched as soon as
	// it holds this many queries. Default 64.
	MaxBatch int
	// Window is the deadline flush: a forming batch is dispatched at most
	// this long after its first query arrived, full or not. Default 200µs.
	// (For per-query serving set MaxBatch to 1; the size flush then fires
	// on every submit and the window never starts.)
	Window time.Duration
	// Workers is the number of engine workers draining batches in the
	// worker-pool fallback mode (unused by the pipelined drain, which owns
	// one goroutine per stage). Default GOMAXPROCS.
	Workers int
	// QueueDepth is the capacity of the submit queue (backpressure bound).
	// Default 4*MaxBatch.
	QueueDepth int
	// StatsWindow is the number of recent queries retained for the rolling
	// latency statistics. Default 4096.
	StatsWindow int
	// WorkerPool selects the flat worker-pool drain (each batch runs
	// gather + GEMM monolithically on one of Workers goroutines) instead of
	// the default staged pipeline executor.
	WorkerPool bool
	// PipelineDepth is the batch-plane ring size of the pipelined drain:
	// the bound on micro-batches in flight across the gather, GEMM and tail
	// stages. Minimum 2 (overlap needs two planes). Default 3 — one plane
	// per stage. Ignored in worker-pool mode.
	PipelineDepth int
}

// withDefaults returns o with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.Window == 0 {
		o.Window = 200 * time.Microsecond
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.MaxBatch
	}
	if o.StatsWindow == 0 {
		o.StatsWindow = 4096
	}
	if o.PipelineDepth == 0 {
		o.PipelineDepth = 3
	}
	return o
}

// Validate checks the options after defaulting.
func (o Options) Validate() error {
	if o.MaxBatch < 1 {
		return fmt.Errorf("serving: max batch %d", o.MaxBatch)
	}
	if o.Window < 0 {
		return fmt.Errorf("serving: negative window %v", o.Window)
	}
	if o.Workers < 1 {
		return fmt.Errorf("serving: %d workers", o.Workers)
	}
	if o.QueueDepth < 1 {
		return fmt.Errorf("serving: queue depth %d", o.QueueDepth)
	}
	if o.StatsWindow < 1 {
		return fmt.Errorf("serving: stats window %d", o.StatsWindow)
	}
	if !o.WorkerPool && o.PipelineDepth < 2 {
		return fmt.Errorf("serving: pipeline depth %d (need >= 2 planes; use WorkerPool for the flat drain)", o.PipelineDepth)
	}
	return nil
}

// Result is one query's response: the prediction plus the modeled
// accelerator latency and the observed serving-side latency.
type Result struct {
	// CTR is the predicted click-through rate in [0, 1].
	CTR float32
	// ModeledLatencyUS is the accelerator's modeled single-item latency.
	ModeledLatencyUS float64
	// WallTime is the observed submit-to-response latency.
	WallTime time.Duration
	// BatchSize is the size of the micro-batch that served this query.
	BatchSize int
}

type outcome struct {
	res Result
	err error
}

type request struct {
	q    embedding.Query
	enq  time.Time
	done chan outcome // buffered(1): workers never block on abandoned waiters
}

// Server coalesces concurrent Submit calls into micro-batches and drains
// them through the staged pipeline executor (or, in fallback mode, a pool of
// engine workers).
type Server struct {
	eng  *core.Engine
	opts Options

	mu     sync.RWMutex // guards closed vs in-flight Submits
	closed bool

	submit  chan *request
	batches chan []*request
	// pipe is the staged executor of the default pipelined drain; nil in
	// worker-pool mode.
	pipe *pipeline.Executor
	wg   sync.WaitGroup

	latencyUS *metrics.Rolling // per-query wall latency, µs
	occupancy *metrics.Rolling // dispatched batch sizes

	timingMu    sync.Mutex
	timingCache map[timingKey]core.TimingReport
}

// timingKey caches timing reports per batch size. With a live hot-row cache
// attached, the lookup stage's latency tracks the observed hit rate, so the
// key also carries the hit rate bucketed to whole percent (reports within a
// bucket are indistinguishable at serving granularity). coldPct marks the
// cache-cold reports SLA admission uses.
type timingKey struct {
	items  int
	hitPct int
}

const coldPct = -1

// New starts a server around an engine. The returned server owns background
// goroutines; callers must Close it.
func New(eng *core.Engine, opts Options) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("serving: nil engine")
	}
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		eng:         eng,
		opts:        opts,
		submit:      make(chan *request, opts.QueueDepth),
		batches:     make(chan []*request, 2*opts.Workers),
		latencyUS:   metrics.NewRolling(opts.StatsWindow),
		occupancy:   metrics.NewRolling(opts.StatsWindow),
		timingCache: make(map[timingKey]core.TimingReport),
	}
	if opts.WorkerPool {
		s.wg.Add(1 + opts.Workers)
		go s.batcher()
		for i := 0; i < opts.Workers; i++ {
			go s.worker()
		}
		return s, nil
	}
	pipe, err := pipeline.New(eng, pipeline.Options{
		Depth:    opts.PipelineDepth,
		MaxBatch: opts.MaxBatch,
		Deliver:  s.deliver,
	})
	if err != nil {
		return nil, err
	}
	s.pipe = pipe
	s.wg.Add(2)
	go s.batcher()
	go s.dispatcher()
	return s, nil
}

// Options returns the server's effective (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// Submit enqueues one query and blocks until its micro-batch has been
// served, the context is cancelled, or the server closes. Malformed queries
// are rejected immediately without joining a batch.
func (s *Server) Submit(ctx context.Context, q embedding.Query) (Result, error) {
	if err := s.eng.ValidateQuery(q); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	req := &request{q: q, enq: time.Now(), done: make(chan outcome, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{}, ErrServerClosed
	}
	select {
	case s.submit <- req:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		return Result{}, ctx.Err()
	}

	select {
	case out := <-req.done:
		return out.res, out.err
	case <-ctx.Done():
		// The query is already in a batch; the buffered done channel lets
		// the worker complete it without us.
		return Result{}, ctx.Err()
	}
}

// Close stops accepting queries, drains every in-flight request — through
// the remaining pipeline stages in pipelined mode — and waits for the
// background goroutines to exit. No accepted request is dropped. It is
// idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.submit)
	// Batcher flushes and closes s.batches; the dispatcher (or workers)
	// drains it. Only then may the executor close: every accepted batch has
	// been submitted, and the executor's Close delivers the in-flight ones.
	s.wg.Wait()
	if s.pipe != nil {
		return s.pipe.Close()
	}
	return nil
}

// drainQueued non-blockingly moves already-queued requests into pending, up
// to MaxBatch. The bool is false once the submit channel is closed and
// empty.
func (s *Server) drainQueued(pending []*request) ([]*request, bool) {
	for len(pending) < s.opts.MaxBatch {
		select {
		case req, ok := <-s.submit:
			if !ok {
				return pending, false
			}
			pending = append(pending, req)
		default:
			return pending, true
		}
	}
	return pending, true
}

// batcher owns batch formation: flush on size, on window expiry, and on
// shutdown.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.batches)
	var (
		pending []*request
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) > 0 {
			s.batches <- pending
			pending = nil
		}
	}
	for {
		select {
		case req, ok := <-s.submit:
			if !ok {
				flush()
				return
			}
			pending = append(pending, req)
			pending, ok = s.drainQueued(pending)
			if !ok {
				flush()
				return
			}
			switch {
			case len(pending) >= s.opts.MaxBatch:
				flush()
			case timerC == nil:
				timer = time.NewTimer(s.opts.Window)
				timerC = timer.C
			}
		case <-timerC:
			timer = nil
			timerC = nil
			flush()
		}
	}
}

// worker drains batches through the engine's monolithic blocked batch
// datapath — the worker-pool fallback mode. Each worker owns a private
// scratch; the engine itself is immutable and shared. Queries were validated
// once at admission (Submit), so workers use the validated fast path and
// skip the second shape/range pass.
func (s *Server) worker() {
	defer s.wg.Done()
	var scratch core.BatchScratch
	queries := make([]embedding.Query, 0, s.opts.MaxBatch)
	preds := make([]float32, s.opts.MaxBatch)
	for batch := range s.batches {
		queries = queries[:0]
		for _, r := range batch {
			queries = append(queries, r.q)
		}
		_, err := s.eng.InferBatchValidated(queries, preds[:len(batch)], &scratch)
		s.complete(batch, preds[:len(batch)], err)
	}
}

// dispatcher drains formed batches into the pipeline executor — the default
// pipelined mode. Submit copies the query headers onto a plane, so the local
// buffer is reusable immediately; the batch itself rides through the stages
// as the plane's payload and resurfaces in deliver.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	queries := make([]embedding.Query, 0, s.opts.MaxBatch)
	for batch := range s.batches {
		queries = queries[:0]
		for _, r := range batch {
			queries = append(queries, r.q)
		}
		if err := s.pipe.Submit(queries, batch); err != nil {
			s.complete(batch, nil, err)
		}
	}
}

// deliver receives completed batches on the executor's tail stage. preds is
// plane-owned and only valid during the call; complete resolves every future
// synchronously (buffered done channels), so nothing outlives it.
func (s *Server) deliver(payload interface{}, preds []float32) {
	s.complete(payload.([]*request), preds, nil)
}

// complete finishes one batch: the per-batch timing report, serving metrics,
// and the response future of every request. On error all futures carry the
// error instead.
func (s *Server) complete(batch []*request, preds []float32, err error) {
	var rep core.TimingReport
	if err == nil {
		rep, err = s.timing(len(batch))
	}
	// Record stats before resolving any future, so a Stats() call racing a
	// just-returned Submit always sees the batch.
	now := time.Now()
	s.occupancy.Observe(now, float64(len(batch)))
	if err == nil {
		for _, r := range batch {
			s.latencyUS.Observe(now, now.Sub(r.enq).Seconds()*1e6)
		}
	}
	for i, r := range batch {
		if err != nil {
			r.done <- outcome{err: err}
			continue
		}
		r.done <- outcome{res: Result{
			CTR:              preds[i],
			ModeledLatencyUS: rep.LatencyNS / 1e3,
			WallTime:         now.Sub(r.enq),
			BatchSize:        len(batch),
		}}
	}
}

// timing returns the modeled timing report for a batch size at the engine's
// current effective lookup latency, cached per (size, hit-rate bucket) — the
// report is deterministic in those inputs at percent granularity. The bucket
// comes from the cache's lock-free atomic counters, so the per-batch call
// stays off the gather path's shard locks.
func (s *Server) timing(items int) (core.TimingReport, error) {
	key := timingKey{items: items}
	if hr, ok := s.eng.HotCacheHitRate(); ok {
		key.hitPct = int(hr*100 + 0.5)
	}
	return s.timingFor(key, s.eng.EffectiveLookupNS())
}

// coldTiming returns the timing report with a cold hot-row cache (the plan's
// unassisted lookup latency). SLA admission must use this: a warm cache
// improves the expected latency, never the worst-case bound.
func (s *Server) coldTiming(items int) (core.TimingReport, error) {
	return s.timingFor(timingKey{items: items, hitPct: coldPct}, s.eng.LookupNS())
}

// timingFor memoises one timing-model run per key.
func (s *Server) timingFor(key timingKey, lookupNS float64) (core.TimingReport, error) {
	s.timingMu.Lock()
	defer s.timingMu.Unlock()
	if rep, ok := s.timingCache[key]; ok {
		return rep, nil
	}
	rep, err := s.eng.TimingAt(key.items, lookupNS)
	if err == nil {
		s.timingCache[key] = rep
	}
	return rep, err
}

// LatencySummary is the rolling latency distribution in µs.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// HotCacheStats is the serving-side view of the engine's live hot-row cache.
type HotCacheStats struct {
	CapacityBytes int64   `json:"capacity_bytes"`
	UsedBytes     int64   `json:"used_bytes"`
	Entries       int     `json:"entries"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	// EffectiveLookupNS is the modeled embedding-lookup latency at the
	// current hit rate; ColdLookupNS is the uncached plan latency.
	EffectiveLookupNS float64 `json:"effective_lookup_ns"`
	ColdLookupNS      float64 `json:"cold_lookup_ns"`
}

// PipelineStats is the serving-side view of the staged pipeline executor:
// ring depth, in-flight batch count, per-stage occupancy/service times and
// the measured vs pipesim-predicted steady-state initiation interval.
type PipelineStats = pipeline.Snapshot

// Stats is a point-in-time view of the server's rolling serving statistics.
type Stats struct {
	// Configuration echo. Mode is "pipeline" or "worker-pool".
	Mode     string  `json:"mode"`
	MaxBatch int     `json:"max_batch"`
	WindowUS float64 `json:"window_us"`
	Workers  int     `json:"workers"`
	// Lifetime counters.
	Queries uint64 `json:"queries"`
	Batches uint64 `json:"batches"`
	// Rolling-window statistics (last StatsWindow queries).
	QPS            float64        `json:"qps"`
	LatencyUS      LatencySummary `json:"latency_us"`
	MeanBatch      float64        `json:"mean_batch"`
	BatchOccupancy float64        `json:"batch_occupancy"`
	// Pipeline reports the staged executor when the server runs the
	// pipelined drain (nil in worker-pool mode).
	Pipeline *PipelineStats `json:"pipeline,omitempty"`
	// HotCache reports the engine's live hot-row cache when one is
	// attached (nil otherwise).
	HotCache *HotCacheStats `json:"hotcache,omitempty"`
}

// Mode reports the server's drain mode: "pipeline" or "worker-pool".
func (s *Server) Mode() string {
	if s.pipe != nil {
		return "pipeline"
	}
	return "worker-pool"
}

// Stats snapshots the rolling serving statistics.
func (s *Server) Stats() Stats {
	now := time.Now()
	lat := s.latencyUS.Snapshot(now)
	occ := s.occupancy.Snapshot(now)
	st := Stats{
		Mode:     s.Mode(),
		MaxBatch: s.opts.MaxBatch,
		WindowUS: float64(s.opts.Window) / float64(time.Microsecond),
		Workers:  s.opts.Workers,
		Queries:  lat.Total,
		Batches:  occ.Total,
		QPS:      lat.RatePerSec,
		LatencyUS: LatencySummary{
			Mean: lat.Summary.Mean,
			P50:  lat.Summary.P50,
			P95:  lat.Summary.P95,
			P99:  lat.Summary.P99,
			Max:  lat.Summary.Max,
		},
		MeanBatch: occ.Summary.Mean,
	}
	if s.pipe != nil {
		snap := s.pipe.Snapshot()
		st.Pipeline = &snap
	}
	if st.MaxBatch > 0 {
		st.BatchOccupancy = st.MeanBatch / float64(st.MaxBatch)
	}
	if info, ok := s.eng.HotCache(); ok {
		st.HotCache = &HotCacheStats{
			CapacityBytes:     info.CapacityBytes,
			UsedBytes:         info.UsedBytes,
			Entries:           info.Entries,
			Hits:              info.Hits,
			Misses:            info.Misses,
			HitRate:           info.HitRate,
			EffectiveLookupNS: info.EffectiveLookupNS,
			ColdLookupNS:      s.eng.LookupNS(),
		}
	}
	return st
}

// ValidateSLA checks the server's batching window against a tail-latency
// budget for any *admitted* query, including the backlog the server itself
// can hold: full batches in the submit queue, in the dispatch channel and in
// service, drained by the worker pool (see sla.WorstCaseAdmittedLatencyMS).
// The full-batch service time comes from the engine's timing model with a
// cold hot-row cache: admission must hold even before the cache warms (and
// after any invalidation empties it).
func (s *Server) ValidateSLA(budget time.Duration) error {
	rep, err := s.coldTiming(s.opts.MaxBatch)
	if err != nil {
		return err
	}
	windowMS := float64(s.opts.Window) / float64(time.Millisecond)
	budgetMS := float64(budget) / float64(time.Millisecond)
	return sla.ValidateAdmittedWindow(windowMS, rep.MakespanNS/1e6, budgetMS, s.backlogBatches(), s.drainWorkers())
}

// AdmittedLatencyBounds returns the worst-case admitted latency (computed
// from the cache-cold full-batch service time, the figure ValidateSLA
// enforces) alongside the expected latency at the engine's current effective
// lookup latency — identical without a hot-row cache, and an increasingly
// tighter pair as the cache warms.
func (s *Server) AdmittedLatencyBounds() (worst, expected time.Duration, err error) {
	cold, err := s.coldTiming(s.opts.MaxBatch)
	if err != nil {
		return 0, 0, err
	}
	warm, err := s.timing(s.opts.MaxBatch)
	if err != nil {
		return 0, 0, err
	}
	windowMS := float64(s.opts.Window) / float64(time.Millisecond)
	worstMS, expectedMS := sla.AdmittedLatencyBoundsMS(
		windowMS, cold.MakespanNS/1e6, warm.MakespanNS/1e6, s.backlogBatches(), s.drainWorkers())
	return time.Duration(worstMS * float64(time.Millisecond)),
		time.Duration(expectedMS * float64(time.Millisecond)), nil
}

// MaxWindowUnderSLA returns the largest flush window that keeps the
// worst-case admitted latency within the budget, or an error when no window
// does (the backlog and batch size alone exceed the budget). Like
// ValidateSLA it uses the cache-cold service time.
func (s *Server) MaxWindowUnderSLA(budget time.Duration) (time.Duration, error) {
	rep, err := s.coldTiming(s.opts.MaxBatch)
	if err != nil {
		return 0, err
	}
	budgetMS := float64(budget) / float64(time.Millisecond)
	ms, err := sla.MaxWindowUnderBudget(rep.MakespanNS/1e6, budgetMS, s.backlogBatches(), s.drainWorkers())
	if err != nil {
		return 0, err
	}
	return time.Duration(ms * float64(time.Millisecond)), nil
}

// backlogBatches bounds the batches ahead of a freshly admitted query: the
// submit queue can hold ceil(QueueDepth/MaxBatch) batches, plus — in
// worker-pool mode — 2*Workers in the dispatch channel and one in service
// per worker; in pipelined mode the dispatch channel, the dispatcher's hand
// and the plane ring bound the in-flight batches instead.
func (s *Server) backlogBatches() int {
	queued := (s.opts.QueueDepth + s.opts.MaxBatch - 1) / s.opts.MaxBatch
	if s.pipe != nil {
		return queued + 2*s.opts.Workers + 1 + s.opts.PipelineDepth
	}
	return queued + 3*s.opts.Workers
}

// drainWorkers is the batch-drain parallelism the SLA backlog model divides
// by: the worker pool drains Workers batches concurrently; the pipeline is
// modeled conservatively as one worker with the full (un-overlapped) batch
// service time — stage overlap only shortens the real drain, so the
// worst-case admitted bound stays valid.
func (s *Server) drainWorkers() int {
	if s.pipe != nil {
		return 1
	}
	return s.opts.Workers
}
