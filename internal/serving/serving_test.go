package serving

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"microrec/internal/cluster"
	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
)

// testEngine builds a small (capacity-scaled) production engine.
func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SmallFP16()
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func randomQueries(t testing.TB, spec *model.Spec, n int, seed int64) []embedding.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	qs := make([]embedding.Query, n)
	for i := range qs {
		q := make(embedding.Query, len(spec.Tables))
		for ti, tab := range spec.Tables {
			idxs := make([]int64, tab.Lookups)
			for k := range idxs {
				idxs[k] = rng.Int63n(tab.Rows)
			}
			q[ti] = idxs
		}
		qs[i] = q
	}
	return qs
}

func newServer(t testing.TB, eng Engine, opts Options) *Server {
	t.Helper()
	s, err := New(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOptionsDefaultsAndValidate(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxBatch != 64 || o.Window != 200*time.Microsecond || o.Workers < 1 || o.QueueDepth != 256 || o.StatsWindow != 4096 {
		t.Errorf("defaults = %+v", o)
	}
	for _, bad := range []Options{
		{MaxBatch: -1},
		{Window: -time.Second},
		{Workers: -2},
		{QueueDepth: -1},
		{StatsWindow: -1},
	} {
		if err := bad.withDefaults().Validate(); err == nil {
			t.Errorf("options %+v: want error", bad)
		}
	}
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil engine: want error")
	}
}

// TestSizeFlush fills exactly one max-size batch with an effectively
// infinite window: only the size trigger can flush it.
func TestSizeFlush(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 8, Window: time.Hour, Workers: 1})
	qs := randomQueries(t, eng.Spec(), 8, 1)
	var wg sync.WaitGroup
	results := make([]Result, len(qs))
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := srv.Submit(context.Background(), qs[i])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		want, err := eng.InferOne(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.CTR != want {
			t.Errorf("query %d: CTR %v, want %v", i, res.CTR, want)
		}
		if res.BatchSize != 8 {
			t.Errorf("query %d: batch size %d, want 8 (size flush)", i, res.BatchSize)
		}
		if res.ModeledLatencyUS <= 0 {
			t.Errorf("query %d: modeled latency %v", i, res.ModeledLatencyUS)
		}
	}
}

// TestWindowFlush submits fewer queries than MaxBatch and relies on the
// window deadline to dispatch the partial batch.
func TestWindowFlush(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 64, Window: 2 * time.Millisecond, Workers: 1})
	qs := randomQueries(t, eng.Spec(), 3, 2)
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := srv.Submit(context.Background(), qs[i])
			if err != nil {
				t.Error(err)
				return
			}
			if res.BatchSize >= 64 {
				t.Errorf("batch size %d for a 3-query burst", res.BatchSize)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Queries != 3 || st.Batches == 0 {
		t.Errorf("stats after window flush: %+v", st)
	}
}

// TestConcurrentSubmitters races many submitters against size and window
// flushes and checks every result against the per-query datapath. Run under
// -race this is the batcher's main integrity test.
func TestConcurrentSubmitters(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 16, Window: 300 * time.Microsecond, Workers: 4})
	const (
		submitters = 24
		perG       = 20
	)
	qs := randomQueries(t, eng.Spec(), submitters, 3)
	want := make([]float32, submitters)
	for i, q := range qs {
		w, err := eng.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < perG; rep++ {
				res, err := srv.Submit(context.Background(), qs[g])
				if err != nil {
					t.Error(err)
					return
				}
				if res.CTR != want[g] {
					t.Errorf("submitter %d rep %d: CTR %v, want %v", g, rep, res.CTR, want[g])
					return
				}
				if res.BatchSize < 1 || res.BatchSize > 16 {
					t.Errorf("batch size %d out of range", res.BatchSize)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Queries != submitters*perG {
		t.Errorf("served %d queries, want %d", st.Queries, submitters*perG)
	}
	if st.MeanBatch <= 1 {
		t.Errorf("mean batch %v: no coalescing happened", st.MeanBatch)
	}
	if st.LatencyUS.P99 <= 0 || st.QPS <= 0 || st.BatchOccupancy <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCloseDrainsInFlight races Close against a wave of submitters: every
// Submit must either return a valid result or ErrServerClosed, and Close
// must not strand any accepted request.
func TestCloseDrainsInFlight(t *testing.T) {
	eng := testEngine(t)
	srv, err := New(eng, Options{MaxBatch: 8, Window: 200 * time.Microsecond, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := randomQueries(t, eng.Spec(), 16, 4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, closed := 0, 0
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				_, err := srv.Submit(context.Background(), qs[g])
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrServerClosed):
					closed++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no request served before close")
	}
	if closed == 0 {
		t.Error("no request observed the closed server")
	}
	// Idempotent close; submit after close fails fast.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), qs[0]); !errors.Is(err, ErrServerClosed) {
		t.Errorf("submit after close = %v, want ErrServerClosed", err)
	}
}

// TestSubmitContextCancel checks both cancellation points: before enqueue
// (queue full) and while waiting for the result.
func TestSubmitContextCancel(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 4, Window: time.Hour, Workers: 1, QueueDepth: 4})
	q := randomQueries(t, eng.Spec(), 1, 5)[0]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Submit(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled submit = %v", err)
	}

	// A waiter whose context expires while its batch is still forming gets
	// the context error; the worker later resolves the future harmlessly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	if _, err := srv.Submit(ctx2, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired waiter = %v", err)
	}
}

// TestSubmitRejectsMalformed checks validation happens before batching, so
// a bad query cannot poison its neighbours.
func TestSubmitRejectsMalformed(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 4, Window: time.Millisecond, Workers: 1})
	if _, err := srv.Submit(context.Background(), embedding.Query{}); err == nil {
		t.Error("empty query: want error")
	}
	bad := randomQueries(t, eng.Spec(), 1, 6)[0]
	bad[0] = []int64{eng.Spec().Tables[0].Rows + 1}
	if _, err := srv.Submit(context.Background(), bad); err == nil {
		t.Error("out-of-range query: want error")
	}
	st := srv.Stats()
	if st.Queries != 0 {
		t.Errorf("malformed queries reached the batcher: %+v", st)
	}
}

// TestValidateSLA exercises the window-vs-budget check through the engine's
// timing model.
func TestValidateSLA(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond, Workers: 1})
	// The modeled service time for 8 items is well under a generous budget.
	if err := srv.ValidateSLA(100 * time.Millisecond); err != nil {
		t.Errorf("generous budget rejected: %v", err)
	}
	// A sub-window budget must fail.
	if err := srv.ValidateSLA(50 * time.Microsecond); err == nil {
		t.Error("impossible budget accepted")
	}
}

// testEngineWithCache builds the test engine with a live hot-row cache.
func testEngineWithCache(t testing.TB, capacity int64) *core.Engine {
	t.Helper()
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SmallFP16()
	cfg.HotCacheBytes = capacity
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestStatsHotCache checks the serving stats surface the live cache: absent
// without one, populated (with a warming hit rate and an effective lookup
// latency below the cold one) when attached.
func TestStatsHotCache(t *testing.T) {
	plain := newServer(t, testEngine(t), Options{MaxBatch: 8, Window: 50 * time.Microsecond})
	if st := plain.Stats(); st.HotCache != nil {
		t.Error("stats report a hot cache on an engine without one")
	}

	eng := testEngineWithCache(t, 1<<18)
	srv := newServer(t, eng, Options{MaxBatch: 8, Window: 50 * time.Microsecond, Workers: 2})
	qs := randomQueries(t, eng.Spec(), 16, 3)
	ctx := context.Background()
	for rep := 0; rep < 4; rep++ {
		var wg sync.WaitGroup
		for _, q := range qs {
			wg.Add(1)
			go func(q embedding.Query) {
				defer wg.Done()
				if _, err := srv.Submit(ctx, q); err != nil {
					t.Errorf("submit: %v", err)
				}
			}(q)
		}
		wg.Wait()
	}
	st := srv.Stats()
	if st.HotCache == nil {
		t.Fatal("stats missing hot cache section")
	}
	hc := st.HotCache
	if hc.CapacityBytes != 1<<18 {
		t.Errorf("capacity %d, want %d", hc.CapacityBytes, 1<<18)
	}
	if hc.Hits+hc.Misses == 0 {
		t.Error("cache saw no traffic")
	}
	if hc.Hits == 0 {
		t.Error("repeated queries should produce hits")
	}
	if hc.EffectiveLookupNS >= hc.ColdLookupNS {
		t.Errorf("warm cache: effective %v should beat cold %v", hc.EffectiveLookupNS, hc.ColdLookupNS)
	}
}

// TestAdmittedLatencyBounds checks the cold/expected pair: without a cache
// the bounds coincide; with a warm cache the expected latency is no worse
// than the cold worst case, and the worst case is what ValidateSLA enforces.
func TestAdmittedLatencyBounds(t *testing.T) {
	srv := newServer(t, testEngine(t), Options{MaxBatch: 8, Window: 100 * time.Microsecond})
	worst, expected, err := srv.AdmittedLatencyBounds()
	if err != nil {
		t.Fatal(err)
	}
	if worst != expected {
		t.Errorf("no cache: worst %v != expected %v", worst, expected)
	}
	if worst <= 0 {
		t.Errorf("worst-case bound %v should be positive", worst)
	}

	eng := testEngineWithCache(t, 1<<18)
	csrv := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond})
	ctx := context.Background()
	qs := randomQueries(t, eng.Spec(), 8, 9)
	for rep := 0; rep < 3; rep++ {
		for _, q := range qs {
			if _, err := csrv.Submit(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	cworst, cexpected, err := csrv.AdmittedLatencyBounds()
	if err != nil {
		t.Fatal(err)
	}
	if cexpected > cworst {
		t.Errorf("expected %v exceeds cache-cold worst case %v", cexpected, cworst)
	}
}

// TestServeHotCacheRace drives a cache-fronted server with many concurrent
// submitters while polling Stats — the shared live cache under the worker
// pool, the scenario the -race CI job pins down.
func TestServeHotCacheRace(t *testing.T) {
	eng := testEngineWithCache(t, 1<<16)
	srv := newServer(t, eng, Options{MaxBatch: 16, Window: 100 * time.Microsecond, Workers: 4})
	ctx := context.Background()
	qs := randomQueries(t, eng.Spec(), 64, 21)
	want := make([]float32, len(qs))
	for i, q := range qs {
		res, err := srv.Submit(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.CTR
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				qi := (w*31 + i) % len(qs)
				res, err := srv.Submit(ctx, qs[qi])
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if res.CTR != want[qi] {
					t.Errorf("query %d: CTR %v, want %v", qi, res.CTR, want[qi])
					return
				}
				if i%10 == 0 {
					_ = srv.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := srv.Stats()
	if st.HotCache == nil || st.HotCache.Hits == 0 {
		t.Error("expected cache hits under repeated concurrent traffic")
	}
}

// TestPipelineModeDefaults checks the default drain is the staged pipeline
// and that its options validate: depth below 2 is rejected unless the
// worker-pool fallback is selected.
func TestPipelineModeDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.PipelineDepth != 3 || o.WorkerPool {
		t.Errorf("defaults = %+v, want pipelined drain with depth 3", o)
	}
	if err := (Options{PipelineDepth: 1}).withDefaults().Validate(); err == nil {
		t.Error("pipeline depth 1: want error")
	}
	if err := (Options{PipelineDepth: 1, WorkerPool: true}).withDefaults().Validate(); err != nil {
		t.Errorf("worker pool ignores pipeline depth: %v", err)
	}

	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond})
	if srv.Mode() != "pipeline" {
		t.Errorf("mode = %q, want pipeline", srv.Mode())
	}
	pool := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond, WorkerPool: true})
	if pool.Mode() != "worker-pool" {
		t.Errorf("mode = %q, want worker-pool", pool.Mode())
	}
	if st := pool.Stats(); st.Pipeline != nil || st.Mode != "worker-pool" {
		t.Errorf("worker-pool stats carry a pipeline section: %+v", st)
	}
}

// TestWorkerPoolFallbackServes drives the fallback drain end to end: results
// stay bit-identical to the per-query datapath and close drains in flight —
// the PR 2 behaviour, preserved behind the flag.
func TestWorkerPoolFallbackServes(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 8, Window: 200 * time.Microsecond, Workers: 2, WorkerPool: true})
	qs := randomQueries(t, eng.Spec(), 16, 31)
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := srv.Submit(context.Background(), qs[i])
			if err != nil {
				t.Error(err)
				return
			}
			want, err := eng.InferOne(qs[i])
			if err != nil {
				t.Error(err)
				return
			}
			if res.CTR != want {
				t.Errorf("query %d: CTR %v, want %v", i, res.CTR, want)
			}
		}(i)
	}
	wg.Wait()
	if st := srv.Stats(); st.Queries != 16 || st.Mode != "worker-pool" {
		t.Errorf("stats = %+v", st)
	}
}

// TestStatsPipelineSection checks /stats' pipeline block: depth, in-flight
// bound, per-stage counters that agree with the batch count, and the
// measured/predicted interval pair once traffic has flowed.
func TestStatsPipelineSection(t *testing.T) {
	eng := testEngine(t)
	srv := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond, PipelineDepth: 4})
	qs := randomQueries(t, eng.Spec(), 16, 37)
	ctx := context.Background()
	for rep := 0; rep < 4; rep++ {
		var wg sync.WaitGroup
		for _, q := range qs {
			wg.Add(1)
			go func(q embedding.Query) {
				defer wg.Done()
				if _, err := srv.Submit(ctx, q); err != nil {
					t.Errorf("submit: %v", err)
				}
			}(q)
		}
		wg.Wait()
	}
	st := srv.Stats()
	if st.Mode != "pipeline" || st.Pipeline == nil {
		t.Fatalf("stats missing pipeline section: %+v", st)
	}
	p := st.Pipeline
	if p.Depth != 4 {
		t.Errorf("depth %d, want 4", p.Depth)
	}
	if p.InFlight < 0 || p.InFlight > p.Depth {
		t.Errorf("in-flight %d outside [0, %d]", p.InFlight, p.Depth)
	}
	if p.Completed == 0 || p.Completed != st.Batches {
		t.Errorf("pipeline completed %d batches, server dispatched %d", p.Completed, st.Batches)
	}
	if len(p.Stages) != 3 {
		t.Fatalf("stages = %d, want 3 (gather, dense-gemm, tail)", len(p.Stages))
	}
	for _, stage := range p.Stages {
		if stage.Batches != p.Completed {
			t.Errorf("stage %s served %d batches, want %d", stage.Name, stage.Batches, p.Completed)
		}
		if stage.MeanServiceUS <= 0 {
			t.Errorf("stage %s mean service %v", stage.Name, stage.MeanServiceUS)
		}
		if stage.Occupancy < 0 || stage.Occupancy > 1 {
			t.Errorf("stage %s occupancy %v", stage.Name, stage.Occupancy)
		}
	}
	if p.PredictedIntervalUS <= 0 {
		t.Errorf("predicted interval %v us after traffic", p.PredictedIntervalUS)
	}
	if p.SerialIntervalUS < p.PredictedIntervalUS {
		t.Errorf("serial interval %v us below overlapped prediction %v us",
			p.SerialIntervalUS, p.PredictedIntervalUS)
	}
}

// TestPipelineCloseDrainsInFlight is the pipelined twin of
// TestCloseDrainsInFlight: closing mid-wave must resolve every accepted
// request through the remaining stages (run under -race in CI).
func TestPipelineCloseDrainsInFlight(t *testing.T) {
	eng := testEngine(t)
	srv, err := New(eng, Options{MaxBatch: 8, Window: 200 * time.Microsecond, PipelineDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := randomQueries(t, eng.Spec(), 16, 41)
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, closed := 0, 0
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				_, err := srv.Submit(context.Background(), qs[g])
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrServerClosed):
					closed++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no request served before close")
	}
	if closed == 0 {
		t.Error("no request observed the closed server")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), qs[0]); !errors.Is(err, ErrServerClosed) {
		t.Errorf("submit after close = %v, want ErrServerClosed", err)
	}
}

// TestShardsClusterCapacityValidated pins the caller-built-cluster wrap rule:
// a tier whose shard planes are smaller than the server's MaxBatch would
// overrun them at gather time, so New must reject the pairing up front.
func TestShardsClusterCapacityValidated(t *testing.T) {
	eng := testEngine(t)
	clu, err := cluster.New(eng, cluster.Options{Shards: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	if _, err := New(clu, Options{MaxBatch: 8, Shards: 2}); err == nil {
		t.Fatal("undersized cluster planes accepted")
	}
	// A matching capacity is accepted and served on the caller's tier.
	srv, err := New(clu, Options{MaxBatch: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Cluster == nil || st.Cluster.Shards != 2 {
		t.Fatalf("caller-built cluster not surfaced in stats: %+v", st.Cluster)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The caller still owns the tier: it must remain usable after the
	// server closed.
	qs := randomQueries(t, eng.Spec(), 2, 1)
	if _, err := clu.InferBatch(qs, nil, nil); err != nil {
		t.Fatalf("caller-owned cluster unusable after server close: %v", err)
	}
}
