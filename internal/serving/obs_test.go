package serving

import (
	"bufio"
	"bytes"
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"microrec/internal/model"
	"microrec/internal/obs"
)

// submitTraced pushes n queries through the server concurrently and waits for
// them all, returning when every span has been recorded.
func submitTraced(t *testing.T, s *Server, n int) {
	t.Helper()
	spec := model.SmallProduction()
	queries := randomQueries(t, spec, n, 42)
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), q); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// checkSpanDecomposition asserts the flight recorder's core properties on
// every served span: non-negative (monotone-boundary) segments and a stage
// sum within tolerance of the measured end-to-end latency. The residue is the
// future-resolution overhead in complete() after the last stage; tolFrac
// bounds it as a fraction of e2e (with a small absolute floor for µs-scale
// requests on noisy CI hosts).
func checkSpanDecomposition(t *testing.T, spans []obs.Span, wantService bool, tolFrac float64) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, sp := range spans {
		if sp.Verdict != obs.VerdictOK {
			continue
		}
		for name, v := range map[string]int64{
			"queue": sp.QueueNS, "batch_wait": sp.BatchWaitNS,
			"gather": sp.GatherNS, "dense_wait": sp.DenseWaitNS, "dense": sp.DenseNS,
			"tail_wait": sp.TailWaitNS, "tail": sp.TailNS, "service": sp.ServiceNS,
			"e2e": sp.EndToEndNS,
		} {
			if v < 0 {
				t.Fatalf("span %d: negative %s segment %d ns (stage boundaries not monotone): %+v", sp.ID, name, v, sp)
			}
		}
		if wantService {
			if sp.ServiceNS == 0 || sp.GatherNS != 0 {
				t.Fatalf("span %d: worker-pool span should carry ServiceNS only: %+v", sp.ID, sp)
			}
		} else if sp.ServiceNS != 0 || sp.GatherNS == 0 || sp.DenseNS == 0 || sp.TailNS == 0 {
			t.Fatalf("span %d: pipelined span should carry the stage triplet: %+v", sp.ID, sp)
		}
		sum := sp.StageSumNS()
		if sum > sp.EndToEndNS {
			t.Fatalf("span %d: stage sum %d ns exceeds e2e %d ns", sp.ID, sum, sp.EndToEndNS)
		}
		residue := sp.EndToEndNS - sum
		slack := int64(tolFrac*float64(sp.EndToEndNS)) + 200_000 // 200µs absolute floor
		if residue > slack {
			t.Errorf("span %d: stage sum %d ns vs e2e %d ns (residue %d > slack %d)",
				sp.ID, sum, sp.EndToEndNS, residue, slack)
		}
		if sp.Batch < 1 {
			t.Errorf("span %d: batch %d", sp.ID, sp.Batch)
		}
	}
}

func TestSpanDecompositionPipeline(t *testing.T) {
	eng := testEngine(t)
	s := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond, TraceSample: 1})
	// Warm-up: the first batch per size pays the one-time pipesim timing run
	// inside complete(), which would dominate its spans' residue.
	submitTraced(t, s, 32)
	warmedAt := time.Now()
	submitTraced(t, s, 64)

	spans := s.Trace(0, warmedAt)
	checkSpanDecomposition(t, spans, false, 0.10)

	st := s.rec.Stats()
	if st.SampleEvery != 1 || st.Recorded == 0 {
		t.Fatalf("recorder stats: %+v", st)
	}
}

func TestSpanDecompositionWorkerPool(t *testing.T) {
	eng := testEngine(t)
	s := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond, WorkerPool: true, Workers: 2, TraceSample: 1})
	submitTraced(t, s, 32)
	warmedAt := time.Now()
	submitTraced(t, s, 64)
	checkSpanDecomposition(t, s.Trace(0, warmedAt), true, 0.10)
}

func TestTraceSampling(t *testing.T) {
	eng := testEngine(t)
	s := newServer(t, eng, Options{MaxBatch: 4, Window: 50 * time.Microsecond, TraceSample: 4})
	submitTraced(t, s, 64)
	st := s.Stats()
	if st.Trace.SampleEvery != 4 {
		t.Fatalf("sample rate %d, want 4", st.Trace.SampleEvery)
	}
	if st.Trace.Arrivals != 64 {
		t.Fatalf("arrivals %d, want 64", st.Trace.Arrivals)
	}
	if st.Trace.Recorded != 16 {
		t.Fatalf("recorded %d spans at 1-in-4 over 64, want 16", st.Trace.Recorded)
	}
}

// expositionLine matches a valid Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)( [0-9]+)?$`)

func TestWriteMetricsExposition(t *testing.T) {
	eng := testEngine(t)
	s := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond, TraceSample: 1})
	submitTraced(t, s, 64)

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, family := range []string{
		"microrec_build_info", "microrec_queries_total", "microrec_qps",
		"microrec_latency_us_bucket", "microrec_latency_us_sum", "microrec_latency_us_count",
		"microrec_latency_rolling_us", "microrec_queue_depth", "microrec_shed_total",
		"microrec_deadline_drops_total", "microrec_pipeline_measured_interval_us",
		"microrec_stage_mean_service_us", "microrec_trace_recorded_total",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing family %q", family)
		}
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Error("latency histogram missing +Inf bucket")
	}

	// Every line must be a comment or a well-formed sample.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCarriesBuildInfo(t *testing.T) {
	eng := testEngine(t)
	s := newServer(t, eng, Options{MaxBatch: 4})
	st := s.Stats()
	if st.BuildInfo.Revision == "" || st.BuildInfo.GoVersion == "" {
		t.Fatalf("build info not populated: %+v", st.BuildInfo)
	}
	if st.BuildInfo != s.BuildInfo() {
		t.Fatal("Stats build info disagrees with Server.BuildInfo")
	}
}
