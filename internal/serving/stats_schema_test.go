package serving

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"time"

	"microrec/internal/cluster"
	"microrec/internal/metrics"
	"microrec/internal/obs"
	"microrec/internal/pipeline"
)

// fullStats builds a Stats value with every optional section present and
// every omitempty field non-zero, so the marshalled JSON exposes the complete
// schema surface.
func fullStats() Stats {
	return Stats{
		Mode:     "pipeline",
		MaxBatch: 64, WindowUS: 200, Workers: 4,
		Queries: 1000, Batches: 20, QPS: 5000,
		LatencyUS: LatencySummary{Mean: 100, P50: 90, P95: 150, P99: 200, Max: 300},
		MeanBatch: 50, BatchOccupancy: 0.78,
		Admission: AdmissionStats{
			QueueDepth: 3, QueueCapacity: 256, Shedding: true, SLAMS: 5,
			Shed: 7, DeadlineDrops: 2, CancelDrops: 1, LateCompletions: 1,
			KneeQPS: 9000, RetryAfterMS: 0.4,
		},
		Pipeline: &PipelineStats{
			Depth: 3, MaxBatch: 64, InFlight: 2, Completed: 20,
			Stages: []pipeline.StageSnapshot{
				{Name: "gather", Batches: 20, MeanServiceUS: 40, P99ServiceUS: 60, Occupancy: 0.5},
			},
			MeasuredIntervalUS: 50, PredictedIntervalUS: 48, SerialIntervalUS: 120,
		},
		Cluster: &ClusterStats{
			Shards: 2, RingDepth: 2, Batches: 20,
			ColdLookupNS: 900, EffectiveLookupNS: 700,
			MergeWaitUS: metrics.HistogramSnapshot{
				Count: 20, Mean: 5, Min: 1, Max: 20, P50: 4, P95: 10, P99: 15, P999: 19,
			},
			ImbalanceRatio: 1.2,
			PerShard: []cluster.ShardStats{
				{ID: 0, Tables: 13, ColdLookupNS: 900, Batches: 20,
					MeanServiceUS: 20, P99ServiceUS: 30, Occupancy: 0.4, CacheHitRate: 0.9},
			},
		},
		HotCache: &HotCacheStats{
			CapacityBytes: 1 << 20, UsedBytes: 1 << 19, Entries: 100, Hits: 900,
			Misses: 100, HitRate: 0.9, EffectiveLookupNS: 700, ColdLookupNS: 900,
		},
		Tiers: &TierStats{
			Path: "/tmp/cold.bin", ColdLatencyNS: 2000, HotBudgetBytes: 1 << 20,
			TotalBytes: 1 << 22, HotRows: 100, ColdRows: 900, HotBytes: 1 << 19,
			HotReads: 800, ColdReads: 200, HotReadRate: 0.8,
			Promotions: 50, Demotions: 10, Sweeps: 5, Prefetches: 40, BoundNS: 1500,
		},
		Router: &RouterStats{
			Policy: "affinity", Replicas: 3, Drained: 1,
			Decisions: []PolicyDecisionStats{
				{Policy: "round-robin", Total: 500, PerSec: 100},
			},
			PerReplica: []ReplicaStats{
				{ID: 1, State: "active", Routed: 400, InFlight: 2,
					QueueDepth: 3, PipelineInFlight: 1, LoadScore: 67, Occupancy: 0.3,
					Queries: 400, QPS: 900, P99US: 210, HitRate: 0.85},
			},
			AggregateHitRate: 0.9, BaselineHitRate: 0.7, HitRateDelta: 0.2,
		},
		Trace: TraceStats{RingSize: 4096, SampleEvery: 8, Arrivals: 1000, Recorded: 125},
		LatencyHistUS: metrics.HistogramSnapshot{
			Count: 1000, Mean: 100, Min: 50, Max: 300, P50: 90, P95: 150, P99: 200, P999: 280,
		},
		BuildInfo: obs.BuildInfo{
			Revision: "abc123", Dirty: true, GoVersion: "go1.22", Kernels: "avx2-gemm",
		},
	}
}

// collectKeys walks marshalled JSON, returning every object key as a dotted
// path; array elements share their parent's path (the schema is per-element).
func collectKeys(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			collectKeys(p, child, out)
		}
	case []any:
		for _, child := range x {
			collectKeys(prefix, child, out)
		}
	}
}

// statsSchema is the pinned field-name surface of the /stats JSON document —
// the serving tier's de-facto API. A failure here means a field was renamed,
// removed, or added: deliberate changes update this list (and the consumers:
// dashboards, the loadtest harness, benchdiff's environment gate); accidental
// ones get caught before they ship.
var statsSchema = []string{
	"admission",
	"admission.cancel_drops",
	"admission.deadline_drops",
	"admission.knee_qps",
	"admission.late_completions",
	"admission.queue_capacity",
	"admission.queue_depth",
	"admission.retry_after_ms",
	"admission.shed",
	"admission.shedding",
	"admission.sla_ms",
	"batch_occupancy",
	"batches",
	"build_info",
	"build_info.dirty",
	"build_info.go_version",
	"build_info.kernels",
	"build_info.revision",
	"cluster",
	"cluster.batches",
	"cluster.cold_lookup_ns",
	"cluster.effective_lookup_ns",
	"cluster.imbalance_ratio",
	"cluster.merge_wait_us",
	"cluster.merge_wait_us.count",
	"cluster.merge_wait_us.max",
	"cluster.merge_wait_us.mean",
	"cluster.merge_wait_us.min",
	"cluster.merge_wait_us.p50",
	"cluster.merge_wait_us.p95",
	"cluster.merge_wait_us.p99",
	"cluster.merge_wait_us.p999",
	"cluster.per_shard",
	"cluster.per_shard.batches",
	"cluster.per_shard.cache_hit_rate",
	"cluster.per_shard.cold_lookup_ns",
	"cluster.per_shard.id",
	"cluster.per_shard.mean_service_us",
	"cluster.per_shard.occupancy",
	"cluster.per_shard.p99_service_us",
	"cluster.per_shard.tables",
	"cluster.ring_depth",
	"cluster.shards",
	"hotcache",
	"hotcache.capacity_bytes",
	"hotcache.cold_lookup_ns",
	"hotcache.effective_lookup_ns",
	"hotcache.entries",
	"hotcache.hit_rate",
	"hotcache.hits",
	"hotcache.misses",
	"hotcache.used_bytes",
	"latency_hist_us",
	"latency_hist_us.count",
	"latency_hist_us.max",
	"latency_hist_us.mean",
	"latency_hist_us.min",
	"latency_hist_us.p50",
	"latency_hist_us.p95",
	"latency_hist_us.p99",
	"latency_hist_us.p999",
	"latency_us",
	"latency_us.max",
	"latency_us.mean",
	"latency_us.p50",
	"latency_us.p95",
	"latency_us.p99",
	"max_batch",
	"mean_batch",
	"mode",
	"pipeline",
	"pipeline.completed",
	"pipeline.depth",
	"pipeline.in_flight",
	"pipeline.max_batch",
	"pipeline.measured_interval_us",
	"pipeline.predicted_interval_us",
	"pipeline.serial_interval_us",
	"pipeline.stages",
	"pipeline.stages.batches",
	"pipeline.stages.mean_service_us",
	"pipeline.stages.name",
	"pipeline.stages.occupancy",
	"pipeline.stages.p99_service_us",
	"qps",
	"queries",
	"router",
	"router.aggregate_hit_rate",
	"router.baseline_hit_rate",
	"router.decisions",
	"router.decisions.per_sec",
	"router.decisions.policy",
	"router.decisions.total",
	"router.drained",
	"router.hit_rate_delta",
	"router.per_replica",
	"router.per_replica.hit_rate",
	"router.per_replica.id",
	"router.per_replica.in_flight",
	"router.per_replica.load_score",
	"router.per_replica.occupancy",
	"router.per_replica.p99_us",
	"router.per_replica.pipeline_in_flight",
	"router.per_replica.qps",
	"router.per_replica.queries",
	"router.per_replica.queue_depth",
	"router.per_replica.routed",
	"router.per_replica.state",
	"router.policy",
	"router.replicas",
	"tiers",
	"tiers.bound_ns",
	"tiers.cold_latency_ns",
	"tiers.cold_reads",
	"tiers.cold_rows",
	"tiers.demotions",
	"tiers.hot_budget_bytes",
	"tiers.hot_bytes",
	"tiers.hot_read_rate",
	"tiers.hot_reads",
	"tiers.hot_rows",
	"tiers.path",
	"tiers.prefetches",
	"tiers.promotions",
	"tiers.sweeps",
	"tiers.total_bytes",
	"trace",
	"trace.arrivals",
	"trace.recorded",
	"trace.ring_size",
	"trace.sample_every",
	"window_us",
	"workers",
}

// TestStatsJSONSchemaGolden pins the /stats JSON field names. The document is
// consumed by dashboards, the bench/loadtest reports and scripts that have no
// compile-time coupling to this package, so a field rename is a breaking API
// change — this test turns it from a silent one into a loud one.
func TestStatsJSONSchemaGolden(t *testing.T) {
	raw, err := json.Marshal(fullStats())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	collectKeys("", doc, keys)
	got := make([]string, 0, len(keys))
	for k := range keys {
		got = append(got, k)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, statsSchema) {
		want := map[string]bool{}
		for _, k := range statsSchema {
			want[k] = true
		}
		for _, k := range got {
			if !want[k] {
				t.Errorf("new /stats field %q: if intentional, add it to statsSchema", k)
			}
		}
		for _, k := range statsSchema {
			if !keys[k] {
				t.Errorf("/stats field %q disappeared: renames break dashboards and scripts", k)
			}
		}
		if !t.Failed() {
			t.Errorf("schema drift:\n got %v\nwant %v", got, statsSchema)
		}
	}
}

// TestStatsLiveMatchesSchema cross-checks a real server's Stats against the
// same pinned schema: every key a live (pipelined, untiered, unsharded)
// snapshot emits must be in the golden list. This catches fields that exist
// on the wire but were never added to fullStats.
func TestStatsLiveMatchesSchema(t *testing.T) {
	eng := testEngine(t)
	s := newServer(t, eng, Options{MaxBatch: 8, Window: 100 * time.Microsecond})
	submitTraced(t, s, 16)
	raw, err := json.Marshal(s.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	collectKeys("", doc, keys)
	want := map[string]bool{}
	for _, k := range statsSchema {
		want[k] = true
	}
	for k := range keys {
		if !want[k] {
			t.Errorf("live /stats emits %q, absent from the golden schema", k)
		}
	}
}
