package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"microrec/internal/core"
	"microrec/internal/embedding"
)

// slowEngine is a deterministic Engine fake whose dense stage (and monolithic
// batch path) sleeps a fixed service time per batch. Overload tests saturate
// the bounded queue against it without depending on host speed; predictions
// are the query's first index so results stay checkable.
type slowEngine struct {
	service time.Duration
	batches atomic.Uint64 // batches that reached the datapath
	served  atomic.Uint64 // queries that reached the datapath
}

func (e *slowEngine) ValidateQuery(q embedding.Query) error {
	if len(q) == 0 {
		return errors.New("slowEngine: empty query")
	}
	return nil
}

func (e *slowEngine) EnsurePlane(s *core.BatchScratch, b int) {}

func (e *slowEngine) GatherIntoPlane(queries []embedding.Query, s *core.BatchScratch) {}

func (e *slowEngine) DenseFromPlane(b int, s *core.BatchScratch) {
	time.Sleep(e.service)
}

func (e *slowEngine) TailFromPlane(b int, s *core.BatchScratch, dst []float32) {
	e.batches.Add(1)
	e.served.Add(uint64(b))
	for i := range dst[:b] {
		dst[i] = 0.5
	}
}

func (e *slowEngine) InferBatchValidated(queries []embedding.Query, dst []float32, s *core.BatchScratch) ([]float32, error) {
	time.Sleep(e.service)
	e.batches.Add(1)
	e.served.Add(uint64(len(queries)))
	for i := range queries {
		dst[i] = 0.5
	}
	return dst[:len(queries)], nil
}

func (e *slowEngine) TimingAt(items int, lookupNS float64) (core.TimingReport, error) {
	ns := float64(e.service.Nanoseconds())
	return core.TimingReport{Items: items, LatencyNS: ns, MakespanNS: ns, LookupNS: lookupNS}, nil
}

func (e *slowEngine) LookupNS() float64                { return 1000 }
func (e *slowEngine) EffectiveLookupNS() float64       { return 1000 }
func (e *slowEngine) HotCacheHitRate() (float64, bool) { return 0, false }
func (e *slowEngine) HotCache() (core.HotCacheInfo, bool) {
	return core.HotCacheInfo{}, false
}

var slowQuery = embedding.Query{[]int64{1}}

// TestShedUnderOverload saturates a tiny bounded queue against a slow engine
// and checks the shed path: ErrOverloaded fails fast (well under the service
// time), the shed counter matches the failures, and every admitted request
// still completes. Deterministic: the burst arrives in microseconds while
// the drain needs tens of milliseconds per batch, so the queue must fill.
func TestShedUnderOverload(t *testing.T) {
	eng := &slowEngine{service: 20 * time.Millisecond}
	srv := newServer(t, eng, Options{
		MaxBatch: 1, Window: 50 * time.Microsecond, Workers: 1,
		QueueDepth: 2, PipelineDepth: 2, Shed: true,
	})
	const burst = 64
	var (
		wg       sync.WaitGroup
		admitted atomic.Uint64
		shed     atomic.Uint64
		slowShed atomic.Uint64
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			_, err := srv.Submit(context.Background(), slowQuery)
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
				// "Fast" relative to the 20ms service time; generous bound
				// for scheduler noise.
				if time.Since(t0) > 5*time.Millisecond {
					slowShed.Add(1)
				}
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("64-query burst into a depth-2 queue at 20ms/batch shed nothing")
	}
	if admitted.Load() == 0 {
		t.Fatal("no request admitted")
	}
	if admitted.Load()+shed.Load() != burst {
		t.Errorf("admitted %d + shed %d != %d", admitted.Load(), shed.Load(), burst)
	}
	if slowShed.Load() > 0 {
		t.Errorf("%d sheds took longer than 5ms — the shed path must not block", slowShed.Load())
	}
	st := srv.Stats()
	if st.Admission.Shed != shed.Load() {
		t.Errorf("stats shed = %d, submitters saw %d", st.Admission.Shed, shed.Load())
	}
	if !st.Admission.Shedding || st.Admission.QueueCapacity != 2 {
		t.Errorf("admission stats = %+v", st.Admission)
	}
	// Every query the engine served corresponds to an admitted submitter.
	if eng.served.Load() != uint64(admitted.Load()) {
		t.Errorf("engine served %d queries, %d admitted", eng.served.Load(), admitted.Load())
	}
}

// TestShedNoDroppedAcceptedOnClose races Close against a shedding burst:
// every Submit must resolve as served, shed, or closed — none may hang, and
// no accepted request may be silently dropped.
func TestShedNoDroppedAcceptedOnClose(t *testing.T) {
	eng := &slowEngine{service: 5 * time.Millisecond}
	srv, err := New(eng, Options{
		MaxBatch: 2, Window: 100 * time.Microsecond, Workers: 1,
		QueueDepth: 4, PipelineDepth: 2, Shed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg                   sync.WaitGroup
		ok, shed, closedErrs atomic.Uint64
	)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				_, err := srv.Submit(context.Background(), slowQuery)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, ErrServerClosed):
					closedErrs.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	time.Sleep(3 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no request served before close")
	}
	// Every admitted request reached the engine: accepted-but-dropped would
	// show up as ok < served… or as a hung Submit, which wg.Wait catches.
	if eng.served.Load() != ok.Load() {
		t.Errorf("engine served %d, %d submitters got results", eng.served.Load(), ok.Load())
	}
	if _, err := srv.Submit(context.Background(), slowQuery); !errors.Is(err, ErrServerClosed) {
		t.Errorf("submit after close = %v, want ErrServerClosed", err)
	}
}

// TestDeadlineDropsSkipWork queues a wave behind a slow first batch with a
// short SLA: requests whose deadline passes while queued must fail with
// ErrExpired without reaching the engine, and the drops must be counted.
func TestDeadlineDropsSkipWork(t *testing.T) {
	eng := &slowEngine{service: 30 * time.Millisecond}
	srv := newServer(t, eng, Options{
		MaxBatch: 1, Window: 50 * time.Microsecond, Workers: 1,
		QueueDepth: 32, PipelineDepth: 2, SLA: 5 * time.Millisecond,
	})
	const wave = 12
	var (
		wg          sync.WaitGroup
		ok, expired atomic.Uint64
		otherErrs   atomic.Uint64
	)
	for i := 0; i < wave; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Submit(context.Background(), slowQuery)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrExpired):
				expired.Add(1)
			default:
				otherErrs.Add(1)
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if expired.Load() == 0 {
		t.Fatal("a 12-query wave at 30ms/batch with a 5ms SLA expired nothing")
	}
	st := srv.Stats()
	// Work conservation: the engine served exactly the successes plus the
	// late completions (requests in flight before the headroom estimate
	// warmed); every other expiration was dropped before gather/GEMM.
	if eng.served.Load() != ok.Load()+st.Admission.LateCompletions {
		t.Errorf("engine served %d queries; %d succeeded + %d late — dropped requests burned work",
			eng.served.Load(), ok.Load(), st.Admission.LateCompletions)
	}
	if st.Admission.DeadlineDrops+st.Admission.LateCompletions != expired.Load() {
		t.Errorf("stats drops %d + late %d != %d submitter expirations",
			st.Admission.DeadlineDrops, st.Admission.LateCompletions, expired.Load())
	}
	if st.Admission.DeadlineDrops == 0 {
		t.Error("no request was dropped before service")
	}
	if st.Admission.SLAMS != 5 {
		t.Errorf("stats SLA = %vms, want 5", st.Admission.SLAMS)
	}
}

// TestCancelDropsSkipWork cancels waiters after enqueue and checks the batch
// former skips them: the engine sees only the live request, and the drop is
// counted as a cancellation, not a deadline expiry.
func TestCancelDropsSkipWork(t *testing.T) {
	eng := &slowEngine{service: 25 * time.Millisecond}
	srv := newServer(t, eng, Options{
		MaxBatch: 1, Window: 50 * time.Microsecond, Workers: 1,
		QueueDepth: 16, PipelineDepth: 2,
	})
	// Request 0 occupies the engine; a wave queues behind it and is
	// cancelled while waiting. A few wave members may already have passed
	// the plane-fill check when the cancel fires (one per plane, one in the
	// dispatcher's hand) — the conservation law below pins that every other
	// member was dropped without touching the engine.
	var first sync.WaitGroup
	first.Add(1)
	go func() {
		defer first.Done()
		if _, err := srv.Submit(context.Background(), slowQuery); err != nil {
			t.Errorf("head request: %v", err)
		}
	}()
	time.Sleep(2 * time.Millisecond) // head batch is in service
	const wave = 8
	ctx, cancel := context.WithCancel(context.Background())
	var waveWG sync.WaitGroup
	for i := 0; i < wave; i++ {
		waveWG.Add(1)
		go func() {
			defer waveWG.Done()
			if _, err := srv.Submit(ctx, slowQuery); !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled waiter = %v, want context.Canceled", err)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // the wave is enqueued behind the head
	cancel()
	waveWG.Wait()
	first.Wait()
	// Wait for every wave member to be accounted for: dropped at plane-fill
	// time or (if it slipped into a plane before the cancel) served.
	deadline := time.Now().Add(5 * time.Second)
	accounted := func() (drops, waveServed uint64) {
		drops = srv.Stats().Admission.CancelDrops
		waveServed = eng.served.Load() - 1 // minus the head request
		return
	}
	for {
		drops, waveServed := accounted()
		if drops+waveServed >= wave || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := srv.Stats()
	drops, waveServed := accounted()
	if drops+waveServed != wave {
		t.Errorf("cancel drops %d + served wave members %d != %d", drops, waveServed, wave)
	}
	if drops == 0 {
		t.Error("no cancelled request was dropped at plane-fill time")
	}
	// At most one plane's worth plus the dispatcher's hand can slip through.
	if waveServed > 3 {
		t.Errorf("engine served %d cancelled wave members — the batch former is not checking contexts", waveServed)
	}
	if st.Admission.DeadlineDrops != 0 {
		t.Errorf("deadline drops = %d, want 0 (these were cancellations)", st.Admission.DeadlineDrops)
	}
}

// TestSubmitDoesNotHoldLockAcrossSend pins the Close-vs-backpressure
// decoupling: with the queue full and no shed, Close must still complete
// promptly (draining the blocked senders) instead of deadlocking behind a
// reader that holds the lock across its blocking send.
func TestSubmitDoesNotHoldLockAcrossSend(t *testing.T) {
	eng := &slowEngine{service: 10 * time.Millisecond}
	srv, err := New(eng, Options{
		MaxBatch: 1, Window: 50 * time.Microsecond, Workers: 1,
		QueueDepth: 1, PipelineDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Submit(context.Background(), slowQuery)
			if err != nil && !errors.Is(err, ErrServerClosed) {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // senders are blocked on the full queue
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not complete while submitters were blocked on a full queue")
	}
	wg.Wait()
}

// TestWorkerPoolDeadlineDrops runs the deadline-drop path through the
// worker-pool drain too — both drain modes must skip expired work.
func TestWorkerPoolDeadlineDrops(t *testing.T) {
	eng := &slowEngine{service: 30 * time.Millisecond}
	srv := newServer(t, eng, Options{
		MaxBatch: 1, Window: 50 * time.Microsecond, Workers: 1,
		QueueDepth: 16, WorkerPool: true, SLA: 5 * time.Millisecond,
	})
	const wave = 10
	var (
		wg          sync.WaitGroup
		ok, expired atomic.Uint64
	)
	for i := 0; i < wave; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Submit(context.Background(), slowQuery)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrExpired):
				expired.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if expired.Load() == 0 {
		t.Fatal("worker-pool drain expired nothing")
	}
	st := srv.Stats()
	if eng.served.Load() != ok.Load()+st.Admission.LateCompletions {
		t.Errorf("engine served %d; %d succeeded + %d late — dropped requests burned worker time",
			eng.served.Load(), ok.Load(), st.Admission.LateCompletions)
	}
	if st.Admission.DeadlineDrops+st.Admission.LateCompletions != expired.Load() {
		t.Errorf("stats drops %d + late %d != %d submitter expirations",
			st.Admission.DeadlineDrops, st.Admission.LateCompletions, expired.Load())
	}
	if st.Admission.DeadlineDrops == 0 {
		t.Error("no request was dropped before service")
	}
}

// TestAdmissionOptionValidation covers the new option edges.
func TestAdmissionOptionValidation(t *testing.T) {
	if err := (Options{SLA: -time.Second}).withDefaults().Validate(); err == nil {
		t.Error("negative SLA: want error")
	}
	// Shed with defaults is valid.
	o := Options{Shed: true}.withDefaults()
	if err := o.Validate(); err != nil {
		t.Errorf("shed defaults: %v", err)
	}
	// A typed-nil *core.Engine must be rejected like an untyped nil.
	if _, err := New((*core.Engine)(nil), Options{}); err == nil {
		t.Error("typed-nil engine: want error")
	}
}

// TestRetryAfterAndCapacity checks the knee estimate and backoff hint: both
// come from the pipesim-predicted interval once the stages have measured
// traffic, and the capacity estimate tracks the engine's actual service
// rate within an order of magnitude (slow fake: 20ms dense stage → ~50
// batches/s of capacity at MaxBatch 1).
func TestRetryAfterAndCapacity(t *testing.T) {
	eng := &slowEngine{service: 20 * time.Millisecond}
	srv := newServer(t, eng, Options{
		MaxBatch: 1, Window: 50 * time.Microsecond, Workers: 1, PipelineDepth: 2,
	})
	if got := srv.CapacityQPS(); got != 0 {
		t.Errorf("capacity before traffic = %v, want 0", got)
	}
	// RetryAfter falls back to the fake's modeled makespan (20ms).
	if ra := srv.RetryAfter(); ra != 20*time.Millisecond {
		t.Errorf("cold retry-after = %v, want 20ms (modeled makespan)", ra)
	}
	for i := 0; i < 6; i++ {
		if _, err := srv.Submit(context.Background(), slowQuery); err != nil {
			t.Fatal(err)
		}
	}
	cap := srv.CapacityQPS()
	if cap <= 0 {
		t.Fatal("capacity estimate still 0 after traffic")
	}
	// The dense stage alone dictates ≤50 batches/s; allow generous slack
	// above for measurement noise, none below 10.
	if cap < 10 || cap > 75 {
		t.Errorf("capacity estimate %v qps implausible for a 20ms/batch engine", cap)
	}
	if ra := srv.RetryAfter(); ra < 15*time.Millisecond || ra > 100*time.Millisecond {
		t.Errorf("warm retry-after = %v, want about one 20ms batch interval", ra)
	}
	if st := srv.Stats(); st.Admission.KneeQPS != cap && st.Admission.KneeQPS <= 0 {
		t.Errorf("stats knee = %v", st.Admission.KneeQPS)
	}
}
