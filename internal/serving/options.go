package serving

import (
	"fmt"
	"runtime"
	"time"

	"microrec/internal/embedding"
	"microrec/internal/tieredstore"
)

// BatchingOptions groups the micro-batcher knobs: how requests coalesce into
// hardware-sized batches.
type BatchingOptions struct {
	// MaxBatch is the flush size: a forming batch is dispatched as soon as
	// it holds this many queries. Default 64.
	MaxBatch int
	// Window is the deadline flush: a forming batch is dispatched at most
	// this long after its first query arrived, full or not. Default 200µs.
	// (For per-query serving set MaxBatch to 1; the size flush then fires
	// on every submit and the window never starts.)
	Window time.Duration
	// StatsWindow is the number of recent queries retained for the rolling
	// latency statistics. Default 4096.
	StatsWindow int
}

// AdmissionOptions groups the overload-protection knobs: the bounded submit
// queue, the fast-fail shed path and the per-request serving deadline.
type AdmissionOptions struct {
	// QueueDepth is the capacity of the submit queue (backpressure bound).
	// Default 4*MaxBatch.
	QueueDepth int
	// Shed makes Submit fail fast with ErrOverloaded when the submit queue
	// is full, instead of blocking on backpressure — the admission-control
	// posture for open-loop traffic, where blocking just moves the queue
	// into the clients. Combine with QueueDepth to bound the worst-case
	// queueing delay of every admitted request.
	Shed bool
	// SLA, when positive, gives every request a serving deadline of SLA
	// after its submit time (tightened by an earlier context deadline).
	// Requests still queued when their deadline passes are dropped at
	// batch-formation time — no gather or GEMM is spent on them — and fail
	// with ErrExpired. Zero disables server-side deadlines; a request's own
	// context deadline is still honoured at batch formation.
	SLA time.Duration
}

// PipelineOptions groups the drain knobs: the staged pipeline executor (the
// default) or the flat engine worker pool.
type PipelineOptions struct {
	// Depth is the batch-plane ring size of the pipelined drain: the bound
	// on micro-batches in flight across the gather, GEMM and tail stages.
	// Minimum 2 (overlap needs two planes). Default 3 — one plane per
	// stage. Ignored in worker-pool mode.
	Depth int
	// WorkerPool selects the flat worker-pool drain (each batch runs
	// gather + GEMM monolithically on one of Workers goroutines) instead of
	// the default staged pipeline executor.
	WorkerPool bool
	// Workers is the number of engine workers draining batches in the
	// worker-pool fallback mode (unused by the pipelined drain, which owns
	// one goroutine per stage). Default GOMAXPROCS.
	Workers int
}

// TierOptions groups the intra-replica scale-out knobs: the sharded
// scatter/gather serving tier.
type TierOptions struct {
	// Shards, when > 1, runs the sharded serving tier: the engine's
	// embedding tables are partitioned across that many gather shards
	// (placement's LPT shard assignment), every micro-batch is scattered to
	// the shards and their partial planes merged before the FC stack runs
	// once — bit-identical to single-engine service by construction. The
	// server wraps the engine in an internal/cluster coordinator it owns
	// (requires a *core.Engine or a caller-built *cluster.Cluster); SLA
	// admission then uses the tier's max-over-shards lookup bound, and
	// /stats gains a "cluster" section. 0 or 1 serves on the engine
	// directly.
	Shards int
}

// TraceOptions groups the flight-recorder knobs.
type TraceOptions struct {
	// Sample is the flight recorder's head-sampling rate: one request in
	// Sample is recorded as a full stage-decomposition span (readable via
	// GET /trace or Server.Trace). 1 records every request; default
	// DefaultTraceSample (8). The recorder is always on — an unsampled
	// request pays a single atomic increment.
	Sample int
}

// RouterOptions groups the replicated-tier identity knobs. A server inside
// the replicated router tier (internal/router) is one of N full replicas; the
// router stamps each replica's identity here so the replica can label its
// telemetry.
type RouterOptions struct {
	// ReplicaID is this server's 1-based id in the replicated tier; it is
	// stamped on every flight-recorder span (Span.Replica) so routed traces
	// decompose per replica. 0 (the default) marks an unrouted server.
	ReplicaID int
}

// Options configures a Server. The zero value gets sensible defaults.
//
// Knobs are grouped by concern into the nested sub-structs (Batching,
// Admission, Pipeline, Tier, Trace, Router). The flat fields below the groups
// are the pre-grouping spelling, kept for one release as deprecated
// pass-throughs: a flat field set while its nested twin is zero is copied
// into the nested field before defaulting, so existing callers keep working
// unchanged. Setting both spellings to different values is a configuration
// error caught by Validate. After New (or withDefaults) the two spellings
// mirror each other, so Server.Options() readers can use either during the
// deprecation window.
type Options struct {
	// Batching configures the micro-batcher (flush size and window).
	Batching BatchingOptions
	// Admission configures overload protection (queue bound, shed, SLA).
	Admission AdmissionOptions
	// Pipeline configures the drain (plane ring, or worker-pool fallback).
	Pipeline PipelineOptions
	// Tier configures intra-replica scale-out (gather shards).
	Tier TierOptions
	// Trace configures the flight recorder (head-sampling rate).
	Trace TraceOptions
	// Router carries the server's identity inside the replicated tier.
	Router RouterOptions

	// MaxBatch is the flat spelling of Batching.MaxBatch.
	//
	// Deprecated: set Batching.MaxBatch.
	MaxBatch int
	// Window is the flat spelling of Batching.Window.
	//
	// Deprecated: set Batching.Window.
	Window time.Duration
	// Workers is the flat spelling of Pipeline.Workers.
	//
	// Deprecated: set Pipeline.Workers.
	Workers int
	// QueueDepth is the flat spelling of Admission.QueueDepth.
	//
	// Deprecated: set Admission.QueueDepth.
	QueueDepth int
	// StatsWindow is the flat spelling of Batching.StatsWindow.
	//
	// Deprecated: set Batching.StatsWindow.
	StatsWindow int
	// WorkerPool is the flat spelling of Pipeline.WorkerPool.
	//
	// Deprecated: set Pipeline.WorkerPool.
	WorkerPool bool
	// PipelineDepth is the flat spelling of Pipeline.Depth.
	//
	// Deprecated: set Pipeline.Depth.
	PipelineDepth int
	// SLA is the flat spelling of Admission.SLA.
	//
	// Deprecated: set Admission.SLA.
	SLA time.Duration
	// Shed is the flat spelling of Admission.Shed.
	//
	// Deprecated: set Admission.Shed.
	Shed bool
	// Shards is the flat spelling of Tier.Shards.
	//
	// Deprecated: set Tier.Shards.
	Shards int
	// TraceSample is the flat spelling of Trace.Sample.
	//
	// Deprecated: set Trace.Sample.
	TraceSample int

	// conflictErr remembers a flat-vs-nested disagreement found while
	// merging; Validate surfaces it.
	conflictErr error
}

// mergeInt routes one deprecated flat int (or duration) into its nested twin:
// the flat value fills a zero nested field; a non-zero disagreement is a
// configuration error.
func mergeInt[T int | int64 | time.Duration](dst *T, flat T, name string) error {
	if flat == 0 {
		return nil
	}
	if *dst == 0 {
		*dst = flat
		return nil
	}
	if *dst != flat {
		return fmt.Errorf("serving: %s set to %v via the deprecated flat field but %v via the nested group — set one spelling", name, flat, *dst)
	}
	return nil
}

// merge routes every deprecated flat field into its nested twin and then
// mirrors the nested values back onto the flat fields, so both spellings
// agree for the rest of the options' life. Boolean knobs OR (a zero bool is
// indistinguishable from "unset").
func (o Options) merge() Options {
	type pair struct {
		dst  *int
		flat int
		name string
	}
	for _, p := range []pair{
		{&o.Batching.MaxBatch, o.MaxBatch, "MaxBatch"},
		{&o.Batching.StatsWindow, o.StatsWindow, "StatsWindow"},
		{&o.Pipeline.Workers, o.Workers, "Workers"},
		{&o.Pipeline.Depth, o.PipelineDepth, "PipelineDepth"},
		{&o.Admission.QueueDepth, o.QueueDepth, "QueueDepth"},
		{&o.Tier.Shards, o.Shards, "Shards"},
		{&o.Trace.Sample, o.TraceSample, "TraceSample"},
	} {
		if err := mergeInt(p.dst, p.flat, p.name); err != nil && o.conflictErr == nil {
			o.conflictErr = err
		}
	}
	if err := mergeInt(&o.Batching.Window, o.Window, "Window"); err != nil && o.conflictErr == nil {
		o.conflictErr = err
	}
	if err := mergeInt(&o.Admission.SLA, o.SLA, "SLA"); err != nil && o.conflictErr == nil {
		o.conflictErr = err
	}
	o.Pipeline.WorkerPool = o.Pipeline.WorkerPool || o.WorkerPool
	o.Admission.Shed = o.Admission.Shed || o.Shed
	return o.mirror()
}

// mirror copies the nested fields back over the flat pass-throughs.
func (o Options) mirror() Options {
	o.MaxBatch = o.Batching.MaxBatch
	o.Window = o.Batching.Window
	o.StatsWindow = o.Batching.StatsWindow
	o.Workers = o.Pipeline.Workers
	o.PipelineDepth = o.Pipeline.Depth
	o.WorkerPool = o.Pipeline.WorkerPool
	o.QueueDepth = o.Admission.QueueDepth
	o.Shed = o.Admission.Shed
	o.SLA = o.Admission.SLA
	o.Shards = o.Tier.Shards
	o.TraceSample = o.Trace.Sample
	return o
}

// withDefaults merges the deprecated flat fields into the nested groups and
// replaces zero fields with defaults. Both spellings mirror each other in the
// result.
func (o Options) withDefaults() Options {
	o = o.merge()
	if o.Batching.MaxBatch == 0 {
		o.Batching.MaxBatch = 64
	}
	if o.Batching.Window == 0 {
		o.Batching.Window = 200 * time.Microsecond
	}
	if o.Pipeline.Workers == 0 {
		o.Pipeline.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Admission.QueueDepth == 0 {
		o.Admission.QueueDepth = 4 * o.Batching.MaxBatch
	}
	if o.Batching.StatsWindow == 0 {
		o.Batching.StatsWindow = 4096
	}
	if o.Pipeline.Depth == 0 {
		o.Pipeline.Depth = 3
	}
	if o.Trace.Sample == 0 {
		o.Trace.Sample = DefaultTraceSample
	}
	return o.mirror()
}

// Validate checks the options after defaulting.
func (o Options) Validate() error {
	if o.conflictErr != nil {
		return o.conflictErr
	}
	if o.Batching.MaxBatch < 1 {
		return fmt.Errorf("serving: max batch %d", o.Batching.MaxBatch)
	}
	if o.Batching.Window < 0 {
		return fmt.Errorf("serving: negative window %v", o.Batching.Window)
	}
	if o.Pipeline.Workers < 1 {
		return fmt.Errorf("serving: %d workers", o.Pipeline.Workers)
	}
	if o.Admission.QueueDepth < 1 {
		return fmt.Errorf("serving: queue depth %d", o.Admission.QueueDepth)
	}
	if o.Batching.StatsWindow < 1 {
		return fmt.Errorf("serving: stats window %d", o.Batching.StatsWindow)
	}
	if o.Admission.SLA < 0 {
		return fmt.Errorf("serving: negative SLA %v", o.Admission.SLA)
	}
	if !o.Pipeline.WorkerPool && o.Pipeline.Depth < 2 {
		return fmt.Errorf("serving: pipeline depth %d (need >= 2 planes; use Pipeline.WorkerPool for the flat drain)", o.Pipeline.Depth)
	}
	if o.Tier.Shards < 0 {
		return fmt.Errorf("serving: shard count %d", o.Tier.Shards)
	}
	if o.Trace.Sample < 1 {
		return fmt.Errorf("serving: trace sample %d (1 records every request)", o.Trace.Sample)
	}
	if o.Router.ReplicaID < 0 {
		return fmt.Errorf("serving: replica id %d (0 = unrouted, replicas are 1-based)", o.Router.ReplicaID)
	}
	return nil
}

// Optional engine capabilities.
//
// The Engine interface is the mandatory seam every serving engine implements.
// The capabilities below are optional: the server (and the replicated router
// tier) discover them by interface assertion at construction and engage the
// matching hooks only when present. Fakes and alternative backends opt in by
// implementing the named interface — never by accidentally matching an
// undocumented type assertion. *core.Engine and *cluster.Cluster implement
// Tiered and Prefetcher; internal/router's HotEngine implements Reloadable.

// Tiered is the optional capability of an engine backed by the tiered
// embedding store (core.Config.ColdTier): a tier snapshot for the /stats
// "tiers" section. An engine may implement the method and still report
// ok=false (no store attached, all-DRAM); the server engages the tier hooks
// only when a store is attached.
type Tiered interface {
	// Tier snapshots the tiered backing store; ok is false on an all-DRAM
	// engine.
	Tier() (snap tieredstore.Snapshot, ok bool)
}

// Prefetcher is the optional capability to pre-fault the rows a batch will
// gather. The drains call it at plane-fill time — after the deadline-drop
// filter, before the gather commits — so a cold row's modeled fault is
// absorbed while filling that plane only instead of serialising into the
// gather. The server engages it only on engines whose Tiered capability
// reports an attached store.
type Prefetcher interface {
	// PrefetchBatch touches the cold rows a batch will gather.
	PrefetchBatch(queries []embedding.Query)
}

// Reloadable is the optional capability of an engine that can hot-swap the
// model it serves: Reload atomically replaces the serving datapath with
// next's, under live traffic, without a server restart. The replacement must
// be timing-compatible (same spec geometry and placement shape — refreshed
// parameters, not a different architecture): the server memoises timing
// reports per batch size and does not re-derive them on reload. The
// replicated router tier uses it for in-place model swaps; engines without it
// are swapped at replica granularity instead (drain + replace, Router.Swap).
type Reloadable interface {
	// Reload replaces the served model with next. It returns an error (and
	// leaves the current model serving) when next is not a compatible
	// engine.
	Reload(next Engine) error
}
