package serving

import (
	"io"
	"strconv"

	"microrec/internal/obs"
)

// WriteMetrics renders the server's telemetry in Prometheus text exposition
// format (version 0.0.4) — the GET /metrics payload. Every figure is derived
// from the same Stats() snapshot that backs GET /stats (plus the lifetime
// latency histogram's buckets), so the two endpoints can never disagree: one
// registry, two renderings.
func (s *Server) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	m := obs.NewMetricWriter(w)

	m.Info("microrec_build_info", "Build provenance of the serving binary.",
		"revision", st.BuildInfo.Revision,
		"go_version", st.BuildInfo.GoVersion,
		"kernels", st.BuildInfo.Kernels,
		"dirty", strconv.FormatBool(st.BuildInfo.Dirty),
		"mode", st.Mode,
	)

	// Serving throughput and batching.
	m.Counter("microrec_queries_total", "Queries served (rolling-window total).", float64(st.Queries))
	m.Counter("microrec_batches_total", "Micro-batches dispatched (rolling-window total).", float64(st.Batches))
	m.Gauge("microrec_qps", "Rolling queries per second.", st.QPS)
	m.Gauge("microrec_mean_batch", "Rolling mean micro-batch size.", st.MeanBatch)
	m.Gauge("microrec_batch_occupancy", "Rolling mean batch size over MaxBatch.", st.BatchOccupancy)

	// Latency: the lifetime log-bucketed histogram as a real Prometheus
	// histogram, plus the rolling-window quantiles as labeled gauges.
	buckets, sum, count := s.latencyHist.CumulativeBuckets()
	hist := m.Family("microrec_latency_us", "Per-query wall latency in microseconds (lifetime histogram).", "histogram")
	for _, b := range buckets {
		hist.Sample("microrec_latency_us_bucket", float64(b.Count),
			"le", strconv.FormatFloat(b.UpperEdge, 'g', 6, 64))
	}
	hist.Sample("microrec_latency_us_bucket", float64(count), "le", "+Inf")
	hist.Sample("microrec_latency_us_sum", sum)
	hist.Sample("microrec_latency_us_count", float64(count))
	roll := m.Family("microrec_latency_rolling_us", "Rolling-window latency summary in microseconds.", "gauge")
	roll.Obs(st.LatencyUS.Mean, "stat", "mean")
	roll.Obs(st.LatencyUS.P50, "stat", "p50")
	roll.Obs(st.LatencyUS.P95, "stat", "p95")
	roll.Obs(st.LatencyUS.P99, "stat", "p99")
	roll.Obs(st.LatencyUS.Max, "stat", "max")

	// Admission gate.
	adm := st.Admission
	m.Gauge("microrec_queue_depth", "Submit queue occupancy.", float64(adm.QueueDepth))
	m.Gauge("microrec_queue_capacity", "Submit queue capacity.", float64(adm.QueueCapacity))
	m.Gauge("microrec_shedding", "1 when the fast-fail shed path is enabled.", boolGauge(adm.Shedding))
	m.Counter("microrec_shed_total", "Submits fast-failed with queue-full.", float64(adm.Shed))
	m.Counter("microrec_deadline_drops_total", "Requests dropped at plane fill: deadline unmeetable.", float64(adm.DeadlineDrops))
	m.Counter("microrec_cancel_drops_total", "Requests dropped at plane fill: context cancelled.", float64(adm.CancelDrops))
	m.Counter("microrec_late_completions_total", "Requests served past their deadline.", float64(adm.LateCompletions))
	m.Gauge("microrec_knee_qps", "Estimated serving capacity (pipesim-predicted knee).", adm.KneeQPS)
	m.Gauge("microrec_retry_after_ms", "Backoff hint handed to shed clients.", adm.RetryAfterMS)
	if adm.SLAMS > 0 {
		m.Gauge("microrec_sla_ms", "Per-request serving deadline.", adm.SLAMS)
	}

	// Pipelined drain: per-stage occupancy and the measured vs predicted
	// steady-state initiation interval.
	if p := st.Pipeline; p != nil {
		m.Gauge("microrec_pipeline_depth", "Batch-plane ring size.", float64(p.Depth))
		m.Gauge("microrec_pipeline_in_flight", "Planes currently occupied.", float64(p.InFlight))
		m.Counter("microrec_pipeline_completed_total", "Batches delivered by the pipeline.", float64(p.Completed))
		m.Gauge("microrec_pipeline_measured_interval_us", "Measured steady-state initiation interval.", p.MeasuredIntervalUS)
		m.Gauge("microrec_pipeline_predicted_interval_us", "Pipesim-predicted initiation interval.", p.PredictedIntervalUS)
		m.Gauge("microrec_pipeline_serial_interval_us", "Sum of mean stage times (non-overlapped interval).", p.SerialIntervalUS)
		sb := m.Family("microrec_stage_batches_total", "Batches served per pipeline stage.", "counter")
		sm := m.Family("microrec_stage_mean_service_us", "Rolling mean stage service time.", "gauge")
		sp := m.Family("microrec_stage_p99_service_us", "Rolling p99 stage service time.", "gauge")
		so := m.Family("microrec_stage_occupancy", "Fraction of recent wall time the stage was busy.", "gauge")
		for _, stg := range p.Stages {
			sb.Obs(float64(stg.Batches), "stage", stg.Name)
			sm.Obs(stg.MeanServiceUS, "stage", stg.Name)
			sp.Obs(stg.P99ServiceUS, "stage", stg.Name)
			so.Obs(stg.Occupancy, "stage", stg.Name)
		}
	}

	// Sharded tier: straggler merge waits and per-shard gather occupancy.
	if c := st.Cluster; c != nil {
		m.Gauge("microrec_cluster_shards", "Effective gather shard count.", float64(c.Shards))
		m.Counter("microrec_cluster_batches_total", "Scatter/gather rounds.", float64(c.Batches))
		m.Gauge("microrec_cluster_imbalance_ratio", "Rolling mean per-batch max/mean shard service.", c.ImbalanceRatio)
		mw := m.Family("microrec_cluster_merge_wait_us", "Coordinator straggler wait (last minus first shard completion).", "summary")
		mw.Obs(c.MergeWaitUS.P50, "quantile", "0.5")
		mw.Obs(c.MergeWaitUS.P99, "quantile", "0.99")
		mw.Sample("microrec_cluster_merge_wait_us_sum", c.MergeWaitUS.Mean*float64(c.MergeWaitUS.Count))
		mw.Sample("microrec_cluster_merge_wait_us_count", float64(c.MergeWaitUS.Count))
		shb := m.Family("microrec_shard_batches_total", "Scatter rounds served per shard.", "counter")
		shm := m.Family("microrec_shard_mean_service_us", "Rolling mean shard gather service time.", "gauge")
		sho := m.Family("microrec_shard_occupancy", "Fraction of recent wall time the shard was gathering.", "gauge")
		for _, sh := range c.PerShard {
			id := strconv.Itoa(sh.ID)
			shb.Obs(float64(sh.Batches), "shard", id)
			shm.Obs(sh.MeanServiceUS, "shard", id)
			sho.Obs(sh.Occupancy, "shard", id)
		}
	}

	// Hot-row cache.
	if hc := st.HotCache; hc != nil {
		m.Gauge("microrec_hotcache_hit_rate", "Live hot-row cache hit rate.", hc.HitRate)
		m.Gauge("microrec_hotcache_used_bytes", "Hot-row cache bytes in use.", float64(hc.UsedBytes))
		m.Gauge("microrec_hotcache_capacity_bytes", "Hot-row cache capacity.", float64(hc.CapacityBytes))
		m.Gauge("microrec_effective_lookup_ns", "Modeled lookup latency at the current hit rate.", hc.EffectiveLookupNS)
	}

	// Tiered store residency and read split.
	if t := st.Tiers; t != nil {
		rows := m.Family("microrec_tier_rows", "Embedding rows resident per tier.", "gauge")
		rows.Obs(float64(t.HotRows), "tier", "hot")
		rows.Obs(float64(t.ColdRows), "tier", "cold")
		reads := m.Family("microrec_tier_reads_total", "Row reads per tier.", "counter")
		reads.Obs(float64(t.HotReads), "tier", "hot")
		reads.Obs(float64(t.ColdReads), "tier", "cold")
		m.Gauge("microrec_tier_hot_read_rate", "Fraction of reads served from the hot tier.", t.HotReadRate)
		m.Gauge("microrec_tier_hot_bytes", "Bytes pinned in the hot tier.", float64(t.HotBytes))
		m.Counter("microrec_tier_promotions_total", "Rows promoted to the hot tier.", float64(t.Promotions))
		m.Counter("microrec_tier_demotions_total", "Rows demoted to the cold tier.", float64(t.Demotions))
		m.Counter("microrec_tier_prefetches_total", "Cold rows prefetched at plane fill.", float64(t.Prefetches))
		m.Gauge("microrec_tier_bound_ns", "Residency-weighted per-inference cold-tier latency bound.", t.BoundNS)
	}

	// Flight recorder.
	m.Gauge("microrec_trace_ring_size", "Flight-recorder span ring capacity.", float64(st.Trace.RingSize))
	m.Gauge("microrec_trace_sample_every", "Head-sampling rate (1 = every request).", float64(st.Trace.SampleEvery))
	m.Counter("microrec_trace_arrivals_total", "Requests seen by the sampling decision.", float64(st.Trace.Arrivals))
	m.Counter("microrec_trace_recorded_total", "Spans written to the ring.", float64(st.Trace.Recorded))

	return m.Err()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
