// Package hotcache implements an extension the paper positions as
// complementary future work (§6, citing RecNMP's memory-side caching): an
// on-chip cache of frequently accessed embedding rows in front of the DRAM
// lookup path.
//
// Production embedding traffic is heavily skewed, so a small cache of hot
// rows absorbs a large share of random DRAM accesses. The package provides a
// byte-capacity LRU over (table, row) keys and a simulator that measures hit
// rates and the modeled effective lookup latency for a query stream.
package hotcache

import (
	"container/list"
	"fmt"

	"microrec/internal/embedding"
	"microrec/internal/model"
)

// key identifies one cached embedding row.
type key struct {
	table int
	row   int64
}

type entry struct {
	key   key
	bytes int
	// hits counts lookups that found this entry resident, since insertion.
	// The tiered store's placement sweep reads it as the row's access
	// frequency; ResetStats leaves it alone (it describes the entry, not a
	// measurement window).
	hits int64
}

// Cache is a byte-capacity LRU of embedding rows.
type Cache struct {
	capacity int64
	used     int64
	ll       *list.List
	index    map[key]*list.Element
	hits     int64
	misses   int64
}

// New creates a cache with the given byte capacity.
func New(capacityBytes int64) (*Cache, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("hotcache: capacity %d", capacityBytes)
	}
	return &Cache{
		capacity: capacityBytes,
		ll:       list.New(),
		index:    make(map[key]*list.Element),
	}, nil
}

// Lookup checks whether (table, row) is cached; on a miss the row is
// inserted (evicting least-recently-used rows as needed). bytes is the row's
// storage size. Returns true on a hit.
func (c *Cache) Lookup(table int, row int64, bytes int) bool {
	if bytes <= 0 || int64(bytes) > c.capacity {
		// Uncacheable row: count as a miss without perturbing the cache.
		c.misses++
		return false
	}
	k := key{table: table, row: row}
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*entry)
		e.hits++
		return true
	}
	c.misses++
	for c.used+int64(bytes) > c.capacity {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ev := oldest.Value.(*entry)
		c.used -= int64(ev.bytes)
		delete(c.index, ev.key)
		c.ll.Remove(oldest)
	}
	c.index[k] = c.ll.PushFront(&entry{key: k, bytes: bytes})
	c.used += int64(bytes)
	return false
}

// ForEachEntry calls fn for every cached row, most- to least-recently used,
// with the entry's byte size and per-entry hit count. Callers must not touch
// the cache from fn.
func (c *Cache) ForEachEntry(fn func(table int, row int64, bytes int, hits int64)) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		fn(e.key.table, e.key.row, e.bytes, e.hits)
	}
}

// Stats summarises cache behaviour.
type Stats struct {
	Hits, Misses int64
	UsedBytes    int64
	Entries      int
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, UsedBytes: c.used, Entries: c.ll.Len()}
}

// HitRate returns hits / (hits+misses), 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Reset clears counters but keeps cached contents (for warmup/measure
// protocols).
func (c *Cache) ResetStats() {
	c.hits, c.misses = 0, 0
}

// Result is the outcome of simulating a query stream against the cache.
type Result struct {
	Stats Stats
	// EffectiveAccessNS is the modeled per-access latency:
	// hitRate*hitNS + (1-hitRate)*missNS.
	EffectiveAccessNS float64
	// MissAccessNS and HitAccessNS echo the model inputs.
	HitAccessNS, MissAccessNS float64
}

// Simulate runs queries against a fresh cache for the given model, counting
// one access per table lookup. hitNS/missNS are the per-access latencies of
// the on-chip cache and the DRAM path. A warmup fraction of the stream
// populates the cache before counters start.
func Simulate(spec *model.Spec, queries []embedding.Query, capacityBytes int64, hitNS, missNS float64, warmup int) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if warmup < 0 || warmup >= len(queries) {
		return Result{}, fmt.Errorf("hotcache: warmup %d out of range for %d queries", warmup, len(queries))
	}
	if hitNS < 0 || missNS < hitNS {
		return Result{}, fmt.Errorf("hotcache: implausible latencies hit=%v miss=%v", hitNS, missNS)
	}
	c, err := New(capacityBytes)
	if err != nil {
		return Result{}, err
	}
	for qi, q := range queries {
		if qi == warmup {
			c.ResetStats()
		}
		if len(q) != len(spec.Tables) {
			return Result{}, fmt.Errorf("hotcache: query %d covers %d tables, model has %d", qi, len(q), len(spec.Tables))
		}
		for ti, idxs := range q {
			rowBytes := spec.Tables[ti].VectorBytes()
			for _, row := range idxs {
				c.Lookup(ti, row, rowBytes)
			}
		}
	}
	st := c.Stats()
	hr := st.HitRate()
	return Result{
		Stats:             st,
		EffectiveAccessNS: hr*hitNS + (1-hr)*missNS,
		HitAccessNS:       hitNS,
		MissAccessNS:      missNS,
	}, nil
}
