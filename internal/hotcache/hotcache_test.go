package hotcache

import (
	"testing"
	"testing/quick"

	"microrec/internal/embedding"
	"microrec/internal/model"
	"microrec/internal/workload"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("capacity 0: want error")
	}
	if _, err := New(-5); err == nil {
		t.Error("negative capacity: want error")
	}
}

func TestLookupHitMiss(t *testing.T) {
	c, err := New(1024)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup(0, 1, 16) {
		t.Error("first access should miss")
	}
	if !c.Lookup(0, 1, 16) {
		t.Error("second access should hit")
	}
	if c.Lookup(1, 1, 16) {
		t.Error("different table should miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 || st.UsedBytes != 32 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(48) // room for 3 x 16B rows
	if err != nil {
		t.Fatal(err)
	}
	c.Lookup(0, 1, 16)
	c.Lookup(0, 2, 16)
	c.Lookup(0, 3, 16)
	// Touch row 1 so row 2 becomes the LRU victim.
	if !c.Lookup(0, 1, 16) {
		t.Fatal("row 1 should hit")
	}
	c.Lookup(0, 4, 16) // evicts row 2
	if c.Lookup(0, 2, 16) {
		t.Error("row 2 should have been evicted")
	}
	if !c.Lookup(0, 1, 16) {
		t.Error("row 1 should still be cached")
	}
	if got := c.Stats().UsedBytes; got > 48 {
		t.Errorf("used %d bytes > capacity", got)
	}
}

func TestOversizedRowUncacheable(t *testing.T) {
	c, err := New(32)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup(0, 1, 64) {
		t.Error("oversized row should miss")
	}
	if c.Lookup(0, 1, 64) {
		t.Error("oversized row should keep missing (not inserted)")
	}
	if c.Stats().Entries != 0 {
		t.Error("oversized row was inserted")
	}
	if c.Lookup(0, 2, 0) {
		t.Error("zero-byte row should miss")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c, err := New(1024)
	if err != nil {
		t.Fatal(err)
	}
	c.Lookup(0, 1, 16)
	c.ResetStats()
	if !c.Lookup(0, 1, 16) {
		t.Error("contents lost on ResetStats")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestSimulateZipfBeatsUniform(t *testing.T) {
	spec := model.SmallProduction()
	const n = 400
	mk := func(dist workload.Distribution) Result {
		g, err := workload.NewGenerator(spec, dist, 5)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := g.Batch(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(spec, qs, 4<<20, 110, 480, n/4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zipf := mk(workload.Zipf)
	uni := mk(workload.Uniform)
	if zipf.Stats.HitRate() <= uni.Stats.HitRate() {
		t.Errorf("zipf hit rate %.2f <= uniform %.2f — skew should help the cache",
			zipf.Stats.HitRate(), uni.Stats.HitRate())
	}
	if zipf.Stats.HitRate() < 0.5 {
		t.Errorf("zipf hit rate %.2f — expected a hot-head workload to mostly hit", zipf.Stats.HitRate())
	}
	if zipf.EffectiveAccessNS >= uni.EffectiveAccessNS {
		t.Error("zipf effective latency should beat uniform")
	}
	if zipf.EffectiveAccessNS < zipf.HitAccessNS || zipf.EffectiveAccessNS > zipf.MissAccessNS {
		t.Errorf("effective latency %.0f outside [hit, miss]", zipf.EffectiveAccessNS)
	}
}

func TestSimulateErrors(t *testing.T) {
	spec := model.SmallProduction()
	g, err := workload.NewGenerator(spec, workload.Uniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.Batch(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(spec, qs, 1024, 100, 400, 4); err == nil {
		t.Error("warmup == len: want error")
	}
	if _, err := Simulate(spec, qs, 1024, 400, 100, 0); err == nil {
		t.Error("miss faster than hit: want error")
	}
	if _, err := Simulate(spec, qs, 0, 100, 400, 0); err == nil {
		t.Error("zero capacity: want error")
	}
	bad := qs[0][:3]
	if _, err := Simulate(spec, []embedding.Query{bad}, 1024, 100, 400, 0); err == nil {
		t.Error("short query: want error")
	}
	if _, err := Simulate(&model.Spec{Name: "bad"}, qs, 1024, 100, 400, 0); err == nil {
		t.Error("invalid spec: want error")
	}
}

// Property: used bytes never exceed capacity, regardless of access pattern.
func TestCapacityInvariantProperty(t *testing.T) {
	prop := func(rows []uint8) bool {
		c, err := New(64)
		if err != nil {
			return false
		}
		for _, r := range rows {
			c.Lookup(int(r)%3, int64(r), int(r)%24+4)
			if c.Stats().UsedBytes > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hit rate is always within [0, 1] and hits+misses equals accesses.
func TestStatsConsistencyProperty(t *testing.T) {
	prop := func(rows []uint16) bool {
		c, err := New(256)
		if err != nil {
			return false
		}
		for _, r := range rows {
			c.Lookup(0, int64(r%32), 16)
		}
		st := c.Stats()
		if st.Hits+st.Misses != int64(len(rows)) {
			return false
		}
		hr := st.HitRate()
		return hr >= 0 && hr <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	c, err := New(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(i%47, int64(i%4096), 64)
	}
}
