package hotcache

import (
	"sync"
	"testing"
)

func TestNewLiveValidation(t *testing.T) {
	if _, err := NewLive(0, 4); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := NewLive(-5, 4); err == nil {
		t.Error("negative capacity: want error")
	}
	l, err := NewLive(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.CapacityBytes(); got != 3 {
		t.Errorf("capacity %d, want 3", got)
	}
	// Shard count clamps so every shard holds at least one byte.
	if n := len(l.shards); n != 3 {
		t.Errorf("%d shards for 3 bytes, want 3", n)
	}
}

func TestLiveCapacitySplit(t *testing.T) {
	l, err := NewLive(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range l.shards {
		total += l.shards[i].c.capacity
	}
	if total != 100 {
		t.Errorf("shard capacities sum to %d, want 100", total)
	}
}

func TestLiveHitMissAggregation(t *testing.T) {
	l, err := NewLive(1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two streams: stream 0 repeats one row (hits after the first access),
	// stream 1 streams distinct rows (all misses).
	for i := 0; i < 10; i++ {
		l.Lookup(0, 7, 64)
		l.Lookup(1, int64(i), 64)
	}
	st := l.Stats()
	if st.Hits != 9 {
		t.Errorf("hits %d, want 9", st.Hits)
	}
	if st.Misses != 11 {
		t.Errorf("misses %d, want 11", st.Misses)
	}
	if st.Entries != 11 {
		t.Errorf("entries %d, want 11", st.Entries)
	}
	if st.UsedBytes != 11*64 {
		t.Errorf("used %d, want %d", st.UsedBytes, 11*64)
	}
	l.ResetStats()
	st = l.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("after reset: hits=%d misses=%d, want 0/0", st.Hits, st.Misses)
	}
	if st.Entries != 11 {
		t.Errorf("reset should keep contents, entries %d", st.Entries)
	}
	// Contents survive: the hot row still hits.
	if !l.Lookup(0, 7, 64) {
		t.Error("hot row evicted by ResetStats")
	}
}

// TestLiveConcurrent hammers the cache from concurrent goroutines across
// overlapping streams, interleaving Stats/ResetStats readers — the access
// pattern of the engine's sharded gather plus the /stats endpoint (run
// under -race).
func TestLiveConcurrent(t *testing.T) {
	l, err := NewLive(1<<14, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lookup(w%4, int64(i%97), 32)
				if i%101 == 0 {
					_ = l.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Hits+st.Misses != 8*2000 {
		t.Errorf("accesses %d, want %d", st.Hits+st.Misses, 8*2000)
	}
	if st.UsedBytes > l.CapacityBytes() {
		t.Errorf("used %d exceeds capacity %d", st.UsedBytes, l.CapacityBytes())
	}
}
