package hotcache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewLiveValidation(t *testing.T) {
	if _, err := NewLive(0, 4); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := NewLive(-5, 4); err == nil {
		t.Error("negative capacity: want error")
	}
	l, err := NewLive(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.CapacityBytes(); got != 3 {
		t.Errorf("capacity %d, want 3", got)
	}
	// Shard count clamps so every shard holds at least one byte.
	if n := len(l.shards); n != 3 {
		t.Errorf("%d shards for 3 bytes, want 3", n)
	}
}

func TestLiveCapacitySplit(t *testing.T) {
	l, err := NewLive(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := range l.shards {
		total += l.shards[i].c.capacity
	}
	if total != 100 {
		t.Errorf("shard capacities sum to %d, want 100", total)
	}
}

func TestLiveHitMissAggregation(t *testing.T) {
	l, err := NewLive(1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two streams: stream 0 repeats one row (hits after the first access),
	// stream 1 streams distinct rows (all misses).
	for i := 0; i < 10; i++ {
		l.Lookup(0, 7, 64)
		l.Lookup(1, int64(i), 64)
	}
	st := l.Stats()
	if st.Hits != 9 {
		t.Errorf("hits %d, want 9", st.Hits)
	}
	if st.Misses != 11 {
		t.Errorf("misses %d, want 11", st.Misses)
	}
	if st.Entries != 11 {
		t.Errorf("entries %d, want 11", st.Entries)
	}
	if st.UsedBytes != 11*64 {
		t.Errorf("used %d, want %d", st.UsedBytes, 11*64)
	}
	l.ResetStats()
	st = l.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("after reset: hits=%d misses=%d, want 0/0", st.Hits, st.Misses)
	}
	if st.Entries != 11 {
		t.Errorf("reset should keep contents, entries %d", st.Entries)
	}
	// Contents survive: the hot row still hits.
	if !l.Lookup(0, 7, 64) {
		t.Error("hot row evicted by ResetStats")
	}
}

// TestLiveConcurrent hammers the cache from concurrent goroutines across
// overlapping streams, interleaving Stats/ResetStats readers — the access
// pattern of the engine's sharded gather plus the /stats endpoint (run
// under -race).
func TestLiveConcurrent(t *testing.T) {
	l, err := NewLive(1<<14, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lookup(w%4, int64(i%97), 32)
				if i%101 == 0 {
					_ = l.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Hits+st.Misses != 8*2000 {
		t.Errorf("accesses %d, want %d", st.Hits+st.Misses, 8*2000)
	}
	if st.UsedBytes > l.CapacityBytes() {
		t.Errorf("used %d exceeds capacity %d", st.UsedBytes, l.CapacityBytes())
	}
}

// TestLiveStatsCoherent pins the snapshot-coherence contract: Stats and
// HitRate must observe each shard's (hits, misses) pair under the shard lock,
// as one consistent snapshot. The pre-fix implementation kept cache-wide
// atomics updated outside the shard locks and loaded them independently, so a
// reader racing lookups or a ResetStats could observe wildly torn pairs.
//
// The harness makes tearing detectable as an invariant violation: W writers
// each strictly alternate a guaranteed hit (their pre-populated row 0, never
// evicted — capacity exceeds everything ever inserted) with a guaranteed miss
// (a fresh row each iteration). At any coherent instant each writer has
// completed at most one more hit than miss, and a racing ResetStats can
// strand at most one pending miss per writer, so every snapshot must satisfy
// |hits - misses| <= W. Run under -race.
func TestLiveStatsCoherent(t *testing.T) {
	const (
		writers  = 4
		iters    = 40000
		rowBytes = 64
	)
	// Capacity holds every row the test ever inserts, so nothing is evicted
	// and the hit/miss pattern is deterministic per writer.
	l, err := NewLive(int64((writers*iters+writers+16)*rowBytes), 1)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		l.Lookup(w, 0, rowBytes) // pre-populate each writer's hot row
	}
	l.ResetStats()

	var (
		writerWG, auxWG sync.WaitGroup
		done            atomic.Bool
		torn            atomic.Int64
	)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 1; i <= iters; i++ {
				l.Lookup(w, 0, rowBytes)        // hit
				l.Lookup(w, int64(i), rowBytes) // miss: fresh row
			}
		}(w)
	}
	// Snapshot readers: any |hits-misses| beyond the in-flight bound is a
	// torn pair.
	for r := 0; r < 2; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			for !done.Load() {
				st := l.Stats()
				if d := st.Hits - st.Misses; d < -writers || d > writers {
					torn.Add(1)
				}
				if hr := l.HitRate(); hr < 0 || hr > 1 {
					torn.Add(1)
				}
			}
		}()
	}
	// A resetter interleaves ResetStats with live traffic — the race the
	// issue describes. Post-fix the reset runs under the same shard lock as
	// lookups and snapshots, so readers still never see a torn pair.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for !done.Load() {
			l.ResetStats()
			time.Sleep(5 * time.Microsecond)
		}
	}()

	writerWG.Wait()
	done.Store(true)
	auxWG.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn hit/miss snapshots (|hits-misses| > %d or hit-rate outside [0,1])", n, writers)
	}
}
