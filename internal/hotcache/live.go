package hotcache

import (
	"fmt"
	"sync"
)

// DefaultLiveShards is the shard count NewLive uses when the caller passes 0.
// Eight shards keep lock contention negligible for the engine's gather
// goroutines (which are themselves capped well below typical core counts)
// while keeping the aggregate LRU close to a single global one.
const DefaultLiveShards = 8

// Live is a thread-safe hot-row cache fronting the engine's batched gather
// datapath. Where Simulate replays a recorded query stream offline, Live is
// wired into the real inference path: every physical-table access the gather
// unit resolves is recorded against it, and the observed hit rate drives the
// engine's modeled effective lookup latency (EffectiveLookupNS).
//
// The cache is sharded by a hash of the (access stream, row) key, each shard
// a mutex-protected LRU holding an equal slice of the byte capacity, so one
// hot table spreads over every shard (using the full capacity) and
// concurrent lookups against the same table land on different locks. Hit and
// miss counts live in the per-shard caches and are only ever touched under
// the shard lock, so a snapshot reads each shard's (hits, misses) pair
// coherently — a reader can never observe a hit recorded without its lookup,
// or a half-applied ResetStats. (An earlier design kept cache-wide totals in
// atomics updated outside the locks; loading the two counters independently
// let a stats reader racing traffic or a reset see torn, mutually
// inconsistent pairs.)
type Live struct {
	shards   []liveShard
	capacity int64
}

type liveShard struct {
	mu sync.Mutex
	c  *Cache
	// pad rounds the shard to 64 bytes so neighbouring shard locks sit on
	// distinct cache lines.
	_ [48]byte
}

// NewLive creates a live cache with the given byte capacity split over
// `shards` LRU shards (DefaultLiveShards when 0). The shard count is clamped
// so every shard holds at least one byte of capacity.
func NewLive(capacityBytes int64, shards int) (*Live, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("hotcache: capacity %d", capacityBytes)
	}
	if shards <= 0 {
		shards = DefaultLiveShards
	}
	if int64(shards) > capacityBytes {
		shards = int(capacityBytes)
	}
	l := &Live{shards: make([]liveShard, shards), capacity: capacityBytes}
	per := capacityBytes / int64(shards)
	rem := capacityBytes % int64(shards)
	for i := range l.shards {
		cap := per
		if int64(i) < rem {
			cap++
		}
		c, err := New(cap)
		if err != nil {
			return nil, err
		}
		l.shards[i].c = c
	}
	return l, nil
}

// CapacityBytes returns the total configured capacity.
func (l *Live) CapacityBytes() int64 { return l.capacity }

// shardOf hashes the (stream, row) key onto a shard so one stream's rows
// spread over every shard (splitmix64-style mixing).
func (l *Live) shardOf(id int, row int64) *liveShard {
	h := uint64(id)*0x9E3779B97F4A7C15 + uint64(row)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return &l.shards[h%uint64(len(l.shards))]
}

// Lookup records one access of `bytes` bytes against row `row` of access
// stream `id`, inserting on miss (see Cache.Lookup). It is safe for
// concurrent use.
func (l *Live) Lookup(id int, row int64, bytes int) bool {
	s := l.shardOf(id, row)
	s.mu.Lock()
	hit := s.c.Lookup(id, row, bytes)
	s.mu.Unlock()
	return hit
}

// HitRate returns hits/(hits+misses) (0 when idle), aggregated one shard at
// a time under the shard locks. The serving path reads it once per batch, so
// the brief per-shard lock hold is negligible next to the gather itself.
func (l *Live) HitRate() float64 {
	return l.Stats().HitRate()
}

// Stats aggregates a snapshot over all shards, one shard at a time under the
// shard lock, so every shard contributes a coherent (hits, misses,
// occupancy) triple. The cross-shard aggregate is still approximate under
// concurrent traffic, but it can no longer be torn: each shard's hits and
// misses were recorded by the same locked lookups.
func (l *Live) Stats() Stats {
	var agg Stats
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		st := s.c.Stats()
		s.mu.Unlock()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.UsedBytes += st.UsedBytes
		agg.Entries += st.Entries
	}
	return agg
}

// ResetStats clears hit/miss counters, keeping cached contents. Each shard
// resets under its lock, so a concurrent snapshot sees every shard either
// before or after its reset — never a half-applied pair.
func (l *Live) ResetStats() {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		s.c.ResetStats()
		s.mu.Unlock()
	}
}

// ForEachEntry enumerates every cached row with its per-entry hit count,
// shard by shard (each shard locked only while it is walked). The tiered
// store's placement sweep uses this as its row-frequency signal: residency
// in the LRU plus accumulated hits identify the rows worth pinning in the
// DRAM hot tier.
func (l *Live) ForEachEntry(fn func(id int, row int64, bytes int, hits int64)) {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		s.c.ForEachEntry(fn)
		s.mu.Unlock()
	}
}
