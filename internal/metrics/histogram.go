package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Histogram is a thread-safe, log-bucketed latency histogram: observations
// land in exponentially spaced buckets, so tail quantiles (p50/p95/p99/p99.9)
// are recoverable within a configured relative error without storing a single
// sample. This is what the open-loop load harness records into — at overload
// the sample count is exactly what explodes, so the recorder must be O(1) per
// observation and fixed-size overall (a DDSketch-style store; the Rolling
// ring, which keeps raw samples, stays the right tool for the bounded /stats
// windows).
//
// Bucket i covers (gamma^i, gamma^(i+1)] with gamma = (1+eps)/(1-eps); a
// quantile reported from a bucket's geometric interior is within eps of the
// true sample quantile. Values in [0, 1] share the first bucket (sub-unit
// values are below the resolution anyone asks of a latency histogram in µs or
// ns); values beyond the configured maximum clamp into the last bucket.
type Histogram struct {
	mu       sync.Mutex
	counts   []uint64
	logGamma float64
	gamma    float64

	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram builds a histogram resolving quantiles within eps relative
// error over the value range [1, maxValue] (same unit as the observations).
// eps outside (0, 0.5) defaults to 1%; maxValue below gamma is raised to it.
func NewHistogram(eps, maxValue float64) *Histogram {
	if math.IsNaN(eps) || eps <= 0 || eps >= 0.5 {
		eps = 0.01
	}
	gamma := (1 + eps) / (1 - eps)
	logGamma := math.Log(gamma)
	if math.IsNaN(maxValue) || math.IsInf(maxValue, 0) || maxValue < gamma {
		maxValue = gamma
	}
	buckets := int(math.Ceil(math.Log(maxValue)/logGamma)) + 1
	return &Histogram{
		counts:   make([]uint64, buckets),
		logGamma: logGamma,
		gamma:    gamma,
		min:      math.Inf(1),
	}
}

// bucket maps a value to its bucket index, clamping at both ends.
func (h *Histogram) bucket(v float64) int {
	if v <= 1 {
		return 0
	}
	i := int(math.Log(v) / h.logGamma)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// bucketRange returns the value range a bucket covers for interpolation:
// nominally (gamma^i, gamma^(i+1)], with bucket 0 opening down to 0 (it
// absorbs every sub-unit value) and the edges clamped into the exactly
// tracked [min, max] — the first occupied bucket contains min, the last
// contains max, and the overflow bucket holds values well past its nominal
// upper edge.
func (h *Histogram) bucketRange(i int) (lo, hi float64) {
	if i == 0 {
		lo = 0
	} else {
		lo = math.Pow(h.gamma, float64(i))
	}
	if i == len(h.counts)-1 {
		hi = h.max
	} else {
		hi = math.Pow(h.gamma, float64(i+1))
	}
	if lo < h.min {
		lo = h.min
	}
	if hi > h.max {
		hi = h.max
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Observe records one value. Negative values count as zero; NaN and ±Inf
// are dropped — a latency can be neither, and the bucket-index conversion
// int(Log(v)/logGamma) turns both into an enormous negative index.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[h.bucket(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds — the unit the serving
// and load-harness latency figures share.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Microsecond))
}

// HistogramSnapshot is a point-in-time quantile summary of a Histogram.
// Count/Mean/Min/Max are exact; the quantiles carry the histogram's relative
// error.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot summarises the histogram. Quantiles locate the nearest-rank bucket
// and interpolate within it by rank; bucket edges are clamped to the exact
// observed min/max so an eps-wide bucket never reports a tail beyond reality.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count: h.count,
		Mean:  h.sum / float64(h.count),
		Min:   h.min,
		Max:   h.max,
	}
	qs := [...]struct {
		p   float64
		dst *float64
	}{
		{0.50, &snap.P50},
		{0.95, &snap.P95},
		{0.99, &snap.P99},
		{0.999, &snap.P999},
	}
	for i := range qs {
		*qs[i].dst = h.quantileLocked(qs[i].p)
	}
	return snap
}

// quantileLocked locates the bucket holding the nearest-rank sample and
// interpolates within it by rank: the rank's relative position among the
// bucket's occupants maps linearly onto the bucket's (clamped) value range.
// Returning a fixed per-bucket representative instead would bias every
// quantile toward one edge of a wide bucket — catastrophically so in the
// clamped overflow and sub-unit buckets, whose real value span is unbounded
// by gamma. Callers hold h.mu.
func (h *Histogram) quantileLocked(p float64) float64 {
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		if cum+c >= rank && c > 0 {
			lo, hi := h.bucketRange(i)
			// Midpoint rule: rank r of c occupants sits at fraction
			// (r-0.5)/c through the bucket, so a single occupant reports
			// the bucket middle and c occupants spread evenly across it.
			frac := (float64(rank-cum) - 0.5) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.max
}

// Quantile returns the p-quantile of the observations so far (0 when empty);
// p is clamped to [0, 1].
func (h *Histogram) Quantile(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.quantileLocked(p)
}

// CumulativeBucket is one Prometheus-style cumulative histogram bucket:
// Count observations landed at or below the bucket's upper edge.
type CumulativeBucket struct {
	UpperEdge float64
	Count     uint64
}

// CumulativeBuckets renders the histogram as Prometheus cumulative buckets:
// only occupied log-buckets are emitted (each with its nominal upper edge and
// the running count), so the /metrics exposition stays proportional to the
// observed value spread rather than the configured range. The final +Inf
// bucket is the caller's to write (its count is the returned total). Also
// returns the exact sum and total count for the _sum/_count series.
func (h *Histogram) CumulativeBuckets() (buckets []CumulativeBucket, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		buckets = append(buckets, CumulativeBucket{
			UpperEdge: math.Pow(h.gamma, float64(i+1)),
			Count:     cum,
		})
	}
	return buckets, h.sum, h.count
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// String renders a compact one-line summary for logs.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f p99.9=%.1f max=%.1f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.P999, s.Max)
}
