package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Histogram is a thread-safe, log-bucketed latency histogram: observations
// land in exponentially spaced buckets, so tail quantiles (p50/p95/p99/p99.9)
// are recoverable within a configured relative error without storing a single
// sample. This is what the open-loop load harness records into — at overload
// the sample count is exactly what explodes, so the recorder must be O(1) per
// observation and fixed-size overall (a DDSketch-style store; the Rolling
// ring, which keeps raw samples, stays the right tool for the bounded /stats
// windows).
//
// Bucket i covers (gamma^i, gamma^(i+1)] with gamma = (1+eps)/(1-eps); a
// quantile reported from a bucket's geometric interior is within eps of the
// true sample quantile. Values in [0, 1] share the first bucket (sub-unit
// values are below the resolution anyone asks of a latency histogram in µs or
// ns); values beyond the configured maximum clamp into the last bucket.
type Histogram struct {
	mu       sync.Mutex
	counts   []uint64
	logGamma float64
	gamma    float64

	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram builds a histogram resolving quantiles within eps relative
// error over the value range [1, maxValue] (same unit as the observations).
// eps outside (0, 0.5) defaults to 1%; maxValue below gamma is raised to it.
func NewHistogram(eps, maxValue float64) *Histogram {
	if eps <= 0 || eps >= 0.5 {
		eps = 0.01
	}
	gamma := (1 + eps) / (1 - eps)
	logGamma := math.Log(gamma)
	if maxValue < gamma {
		maxValue = gamma
	}
	buckets := int(math.Ceil(math.Log(maxValue)/logGamma)) + 1
	return &Histogram{
		counts:   make([]uint64, buckets),
		logGamma: logGamma,
		gamma:    gamma,
		min:      math.Inf(1),
	}
}

// bucket maps a value to its bucket index, clamping at both ends.
func (h *Histogram) bucket(v float64) int {
	if v <= 1 {
		return 0
	}
	i := int(math.Log(v) / h.logGamma)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// value returns the representative value of a bucket: the midpoint of its
// (gamma^i, gamma^(i+1)] range, which bounds the relative error at eps.
func (h *Histogram) value(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Pow(h.gamma, float64(i)) * (1 + h.gamma) / 2
}

// Observe records one value. Negative values count as zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[h.bucket(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds — the unit the serving
// and load-harness latency figures share.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Microsecond))
}

// HistogramSnapshot is a point-in-time quantile summary of a Histogram.
// Count/Mean/Min/Max are exact; the quantiles carry the histogram's relative
// error.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot summarises the histogram. Quantiles use the nearest-rank rule over
// the bucket counts; the extreme ranks are clamped to the exact observed
// min/max so an eps-wide bucket never reports a tail beyond reality.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count: h.count,
		Mean:  h.sum / float64(h.count),
		Min:   h.min,
		Max:   h.max,
	}
	qs := [...]struct {
		p   float64
		dst *float64
	}{
		{0.50, &snap.P50},
		{0.95, &snap.P95},
		{0.99, &snap.P99},
		{0.999, &snap.P999},
	}
	for i := range qs {
		*qs[i].dst = h.quantileLocked(qs[i].p)
	}
	return snap
}

// quantileLocked returns the p-quantile by nearest rank. Callers hold h.mu.
func (h *Histogram) quantileLocked(p float64) float64 {
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.value(i)
			// Clamp into the exactly tracked range: the first and last
			// occupied buckets contain min and max respectively.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Quantile returns the p-quantile of the observations so far (0 when empty);
// p is clamped to [0, 1].
func (h *Histogram) Quantile(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.quantileLocked(p)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// String renders a compact one-line summary for logs.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f p99.9=%.1f max=%.1f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.P999, s.Max)
}
