package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.Count != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := percentile(sorted, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(sorted, 1); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(sorted, 0.5); got != 25 {
		t.Errorf("p50 = %v, want 25 (interpolated)", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestSpeedupAndGOPs(t *testing.T) {
	if got := Speedup(28.18, 2.26e-2); math.Abs(got-1246.9) > 1 {
		t.Errorf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup with zero denominator should be +Inf")
	}
	if got := GOPs(2.03e6*3.05e5, 1); math.Abs(got-619.15)/619.15 > 0.01 {
		t.Errorf("GOPs = %v, want ~619", got)
	}
	if !math.IsInf(GOPs(1, 0), 1) {
		t.Error("GOPs with zero time should be +Inf")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "col", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name") // short row padded
	tb.AddNote("calibrated against %s", "Table 5")
	out := tb.String()
	for _, want := range []string{"Table X", "col", "longer-name", "note: calibrated against Table 5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Columns must align: every data line has the same prefix width for
	// the second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected table shape:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV did not quote comma field: %s", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("CSV did not escape quotes: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header wrong: %s", csv)
	}
}

func TestFormatters(t *testing.T) {
	if FmtF(3.14159, 2) != "3.14" {
		t.Error("FmtF")
	}
	if FmtSpeedup(13.82) != "13.82x" {
		t.Error("FmtSpeedup")
	}
	if FmtPct(0.032) != "3.2%" {
		t.Error("FmtPct")
	}
	if FmtBytes(1536) != "1.50 KiB" {
		t.Errorf("FmtBytes(1536) = %s", FmtBytes(1536))
	}
	if FmtBytes(3<<20) != "3.00 MiB" {
		t.Error("FmtBytes MiB")
	}
	gib := 1.3 * float64(1<<30)
	if FmtBytes(int64(gib)) != "1.30 GiB" {
		t.Error("FmtBytes GiB")
	}
	if FmtBytes(12) != "12 B" {
		t.Error("FmtBytes B")
	}
	if FmtSI(305000) != "3.05e+05" {
		t.Errorf("FmtSI = %s", FmtSI(305000))
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) should be 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		lo, hi := math.Mod(math.Abs(p1), 1), math.Mod(math.Abs(p2), 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		a, b := percentile(sorted, lo), percentile(sorted, hi)
		return a <= b+1e-9 && s.Min <= a+1e-9 && b <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
