package metrics

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzHistogramQuantile feeds the log-bucketed histogram raw float64
// observations (including the non-finite bit patterns that used to panic the
// bucket-index conversion) and checks the quantile invariants that every
// consumer of a latency summary leans on: quantiles are finite, lie inside
// the exact observed [min, max], and are monotone in p — both through
// Quantile and through the Snapshot's fixed p50/p95/p99/p999 ladder.
func FuzzHistogramQuantile(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(0.01, 1e9, seed(1, 10, 100, 1000, 1e6))
	f.Add(0.05, 1e6, seed(0.25, 0.5, 0.75))
	f.Add(0.01, 1e9, seed(math.NaN(), math.Inf(1), math.Inf(-1), 42))
	f.Add(0.3, 2.0, seed(-5, 0, 1e18)) // negatives clamp, overflow bucket
	f.Add(0.001, 1e12, seed(7))
	f.Fuzz(func(t *testing.T, eps, maxValue float64, data []byte) {
		h := NewHistogram(eps, maxValue) // constructor guards bad eps/max itself
		var (
			n   int
			min = math.Inf(1)
			max = math.Inf(-1)
		)
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			h.Observe(v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue // dropped by contract
			}
			if v < 0 {
				v = 0 // clamped by contract
			}
			n++
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if n == 0 {
			if q := h.Quantile(0.5); q != 0 {
				t.Fatalf("empty histogram Quantile(0.5) = %v, want 0", q)
			}
			return
		}
		if got := h.Count(); got != uint64(n) {
			t.Fatalf("Count = %d, want %d", got, n)
		}
		ps := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
		prev := math.Inf(-1)
		for _, p := range ps {
			q := h.Quantile(p)
			if math.IsNaN(q) || math.IsInf(q, 0) {
				t.Fatalf("Quantile(%v) = %v on %d finite observations", p, q, n)
			}
			if q < min || q > max {
				t.Fatalf("Quantile(%v) = %v outside observed [%v, %v]", p, q, min, max)
			}
			if q < prev {
				t.Fatalf("Quantile(%v) = %v < Quantile at lower p = %v: quantiles not monotone", p, q, prev)
			}
			prev = q
		}
		snap := h.Snapshot()
		if snap.P50 > snap.P95 || snap.P95 > snap.P99 || snap.P99 > snap.P999 {
			t.Fatalf("snapshot quantile ladder not monotone: %+v", snap)
		}
		if snap.Min != min || snap.Max != max {
			t.Fatalf("snapshot min/max = %v/%v, want exact %v/%v", snap.Min, snap.Max, min, max)
		}
		if snap.P999 > snap.Max || snap.P50 < snap.Min {
			t.Fatalf("snapshot quantiles escape [min, max]: %+v", snap)
		}
	})
}
