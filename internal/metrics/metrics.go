// Package metrics provides the statistics and report formatting shared by
// the experiment harness: latency summaries, throughput conversions, and
// aligned text tables in the style of the paper's result tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample of latencies (or any values).
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P95, P99  float64
}

// Summarize computes a Summary. It copies the input before sorting.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count: len(s),
		Mean:  sum / float64(len(s)),
		Min:   s[0],
		Max:   s[len(s)-1],
		P50:   percentile(s, 0.50),
		P95:   percentile(s, 0.95),
		P99:   percentile(s, 0.99),
	}
}

// percentile returns the p-quantile of a sorted sample using nearest-rank
// interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Speedup returns baseline/accelerated, the paper's speedup convention.
// A zero denominator yields +Inf.
func Speedup(baseline, accelerated float64) float64 {
	if accelerated == 0 {
		return math.Inf(1)
	}
	return baseline / accelerated
}

// GOPs converts (operations, seconds) into GOP/s.
func GOPs(ops float64, seconds float64) float64 {
	if seconds == 0 {
		return math.Inf(1)
	}
	return ops / seconds / 1e9
}

// Table renders aligned text tables for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	notes  []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line rendered below the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows), with
// fields containing commas or quotes escaped per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Formatting helpers used across experiment reports.

// FmtF formats a float with the given decimals.
func FmtF(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// FmtSI formats a value in engineering notation (e.g. 3.05e+05).
func FmtSI(v float64) string { return fmt.Sprintf("%.3g", v) }

// FmtSpeedup formats a speedup factor like the paper ("13.82x").
func FmtSpeedup(v float64) string { return fmt.Sprintf("%.2fx", v) }

// FmtPct formats a ratio as a percentage.
func FmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// FmtBytes renders a byte count human-readably (GiB/MiB/KiB).
func FmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// RelErr returns |got-want|/|want| (0 when both are 0, +Inf when only want
// is 0), the deviation metric EXPERIMENTS.md reports.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
