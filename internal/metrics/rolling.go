package metrics

import (
	"sync"
	"time"
)

// Rolling is a fixed-capacity, thread-safe ring of timestamped observations.
// It backs the serving /stats endpoint: the ring keeps the most recent N
// samples, and Snapshot summarises them (order statistics plus an arrival
// rate over the retained span).
type Rolling struct {
	mu    sync.Mutex
	vals  []float64
	times []time.Time
	head  int    // next write position
	n     int    // live samples, <= len(vals)
	total uint64 // lifetime observation count
}

// NewRolling creates a ring retaining the last `capacity` observations.
func NewRolling(capacity int) *Rolling {
	if capacity < 1 {
		capacity = 1
	}
	return &Rolling{
		vals:  make([]float64, capacity),
		times: make([]time.Time, capacity),
	}
}

// Observe records one sample at the given time. Times are expected to be
// roughly monotone (the rate estimate divides by the retained span).
func (r *Rolling) Observe(now time.Time, v float64) {
	r.mu.Lock()
	r.vals[r.head] = v
	r.times[r.head] = now
	r.head = (r.head + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// RollingSnapshot is a point-in-time view of a Rolling window.
type RollingSnapshot struct {
	// Summary holds order statistics over the retained samples.
	Summary Summary
	// RatePerSec is the observation rate (e.g. QPS) over the retained
	// window: (n-1) inter-arrival intervals divided by the oldest→newest
	// sample span. Zero with fewer than two samples or a zero span.
	RatePerSec float64
	// Total is the lifetime observation count.
	Total uint64
}

// Snapshot summarises the retained window. n samples delimit n-1 intervals,
// so the rate is (n-1) over the oldest→newest span — dividing n by the
// oldest→now span (the previous behaviour) overstated the rate for small n
// and made it depend on when the snapshot was taken.
func (r *Rolling) Snapshot(now time.Time) RollingSnapshot {
	r.mu.Lock()
	n := r.n
	vals := make([]float64, n)
	var oldest, newest time.Time
	if n > 0 {
		start := (r.head - n + len(r.vals)) % len(r.vals)
		for i := 0; i < n; i++ {
			vals[i] = r.vals[(start+i)%len(r.vals)]
		}
		oldest = r.times[start]
		newest = r.times[(start+n-1)%len(r.vals)]
	}
	total := r.total
	r.mu.Unlock()

	snap := RollingSnapshot{Summary: Summarize(vals), Total: total}
	if n >= 2 {
		if span := newest.Sub(oldest).Seconds(); span > 0 {
			snap.RatePerSec = float64(n-1) / span
		}
	}
	return snap
}
