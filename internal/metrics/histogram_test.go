package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0.01, 1e9)
	if snap := h.Snapshot(); snap != (HistogramSnapshot{}) {
		t.Errorf("empty snapshot = %+v", snap)
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

// TestHistogramQuantileAccuracy checks every reported quantile lands within
// the configured relative error of the exact sample quantile, across three
// shapes (uniform, exponential tail, bimodal).
func TestHistogramQuantileAccuracy(t *testing.T) {
	const eps = 0.01
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]func() float64{
		"uniform":     func() float64 { return 1 + 9999*rng.Float64() },
		"exponential": func() float64 { return 100 * rng.ExpFloat64() },
		"bimodal": func() float64 {
			if rng.Intn(10) == 0 {
				return 50000 + 1000*rng.Float64() // the overloaded tail
			}
			return 200 + 50*rng.Float64()
		},
	}
	for name, draw := range shapes {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram(eps, 1e9)
			samples := make([]float64, 20000)
			for i := range samples {
				samples[i] = draw()
				h.Observe(samples[i])
			}
			sort.Float64s(samples)
			for _, p := range []float64{0.5, 0.95, 0.99, 0.999} {
				rank := int(math.Ceil(p*float64(len(samples)))) - 1
				exact := samples[rank]
				got := h.Quantile(p)
				if relErr := math.Abs(got-exact) / exact; relErr > 2*eps {
					t.Errorf("p%v: got %v, exact %v (rel err %.4f > %.4f)", p*100, got, exact, relErr, 2*eps)
				}
			}
			snap := h.Snapshot()
			if snap.Count != 20000 {
				t.Errorf("count = %d", snap.Count)
			}
			if snap.Min != samples[0] || snap.Max != samples[len(samples)-1] {
				t.Errorf("min/max = %v/%v, want %v/%v", snap.Min, snap.Max, samples[0], samples[len(samples)-1])
			}
			if snap.P50 > snap.P95 || snap.P95 > snap.P99 || snap.P99 > snap.P999 || snap.P999 > snap.Max {
				t.Errorf("quantiles not monotone: %+v", snap)
			}
		})
	}
}

// TestHistogramBounds checks the clamping edges: sub-unit and negative values
// share the first bucket, values beyond the configured max land in the last
// bucket, and tail quantiles never exceed the exact observed max.
func TestHistogramBounds(t *testing.T) {
	h := NewHistogram(0.01, 1000)
	h.Observe(-5)
	h.Observe(0.25)
	h.Observe(1e12) // far beyond maxValue: clamps, exact max still tracked
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Errorf("count = %d", snap.Count)
	}
	if snap.Min != 0 {
		t.Errorf("min = %v, want 0 (negative clamps to zero)", snap.Min)
	}
	if snap.Max != 1e12 {
		t.Errorf("max = %v", snap.Max)
	}
	if snap.P999 > snap.Max {
		t.Errorf("p99.9 %v exceeds exact max %v", snap.P999, snap.Max)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0.01, 1e9)
	h.ObserveDuration(3 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Mean != 3000 {
		t.Errorf("3ms observed as %v µs (snapshot %+v)", snap.Mean, snap)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshotting (run under -race).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0.02, 1e7)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(w*500 + i + 1))
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}
