package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0.01, 1e9)
	if snap := h.Snapshot(); snap != (HistogramSnapshot{}) {
		t.Errorf("empty snapshot = %+v", snap)
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

// TestHistogramQuantileAccuracy checks every reported quantile lands within
// the configured relative error of the exact sample quantile, across three
// shapes (uniform, exponential tail, bimodal).
func TestHistogramQuantileAccuracy(t *testing.T) {
	const eps = 0.01
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]func() float64{
		"uniform":     func() float64 { return 1 + 9999*rng.Float64() },
		"exponential": func() float64 { return 100 * rng.ExpFloat64() },
		"bimodal": func() float64 {
			if rng.Intn(10) == 0 {
				return 50000 + 1000*rng.Float64() // the overloaded tail
			}
			return 200 + 50*rng.Float64()
		},
	}
	for name, draw := range shapes {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram(eps, 1e9)
			samples := make([]float64, 20000)
			for i := range samples {
				samples[i] = draw()
				h.Observe(samples[i])
			}
			sort.Float64s(samples)
			for _, p := range []float64{0.5, 0.95, 0.99, 0.999} {
				rank := int(math.Ceil(p*float64(len(samples)))) - 1
				exact := samples[rank]
				got := h.Quantile(p)
				if relErr := math.Abs(got-exact) / exact; relErr > 2*eps {
					t.Errorf("p%v: got %v, exact %v (rel err %.4f > %.4f)", p*100, got, exact, relErr, 2*eps)
				}
			}
			snap := h.Snapshot()
			if snap.Count != 20000 {
				t.Errorf("count = %d", snap.Count)
			}
			if snap.Min != samples[0] || snap.Max != samples[len(samples)-1] {
				t.Errorf("min/max = %v/%v, want %v/%v", snap.Min, snap.Max, samples[0], samples[len(samples)-1])
			}
			if snap.P50 > snap.P95 || snap.P95 > snap.P99 || snap.P99 > snap.P999 || snap.P999 > snap.Max {
				t.Errorf("quantiles not monotone: %+v", snap)
			}
		})
	}
}

// TestHistogramBounds checks the clamping edges: sub-unit and negative values
// share the first bucket, values beyond the configured max land in the last
// bucket, and tail quantiles never exceed the exact observed max.
func TestHistogramBounds(t *testing.T) {
	h := NewHistogram(0.01, 1000)
	h.Observe(-5)
	h.Observe(0.25)
	h.Observe(1e12) // far beyond maxValue: clamps, exact max still tracked
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Errorf("count = %d", snap.Count)
	}
	if snap.Min != 0 {
		t.Errorf("min = %v, want 0 (negative clamps to zero)", snap.Min)
	}
	if snap.Max != 1e12 {
		t.Errorf("max = %v", snap.Max)
	}
	if snap.P999 > snap.Max {
		t.Errorf("p99.9 %v exceeds exact max %v", snap.P999, snap.Max)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0.01, 1e9)
	h.ObserveDuration(3 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Mean != 3000 {
		t.Errorf("3ms observed as %v µs (snapshot %+v)", snap.Mean, snap)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshotting (run under -race).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0.02, 1e7)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(w*500 + i + 1))
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

// TestHistogramSingleSample pins the n=1 distribution edge: every quantile of
// a one-sample histogram must report exactly that sample (the clamp against
// the tracked min/max must hide the eps-wide bucket interior).
func TestHistogramSingleSample(t *testing.T) {
	for _, v := range []float64{0.5, 1, 37, 999, 5e5} {
		h := NewHistogram(0.01, 1e6)
		h.Observe(v)
		snap := h.Snapshot()
		if snap.Count != 1 {
			t.Fatalf("v=%v: count %d", v, snap.Count)
		}
		// One exact expectation for every v — including sub-unit values,
		// which share bucket 0 but keep exact min/max, and the clamp must
		// surface those rather than the bucket representative.
		want := v
		for name, got := range map[string]float64{
			"p50": snap.P50, "p95": snap.P95, "p99": snap.P99, "p999": snap.P999,
			"min": snap.Min, "max": snap.Max, "mean": snap.Mean,
		} {
			if got != want {
				t.Fatalf("v=%v: %s = %v, want exactly the sample", v, name, got)
			}
		}
		if q := h.Quantile(0); q != want {
			t.Fatalf("v=%v: Quantile(0) = %v", v, q)
		}
		if q := h.Quantile(1); q != want {
			t.Fatalf("v=%v: Quantile(1) = %v", v, q)
		}
	}
}

// TestHistogramAllEqualSamples pins the degenerate distribution: when every
// observation is the same value, all quantiles collapse to it exactly — the
// bucket midpoint may sit up to eps away, but min/max clamping must win.
func TestHistogramAllEqualSamples(t *testing.T) {
	for _, v := range []float64{1, 2.5, 128, 77777} {
		h := NewHistogram(0.01, 1e6)
		for i := 0; i < 1000; i++ {
			h.Observe(v)
		}
		snap := h.Snapshot()
		if snap.P50 != v || snap.P95 != v || snap.P99 != v || snap.P999 != v {
			t.Fatalf("v=%v: quantiles %+v, want all exactly %v", v, snap, v)
		}
		if snap.Mean != v || snap.Min != v || snap.Max != v {
			t.Fatalf("v=%v: mean/min/max %+v", v, snap)
		}
	}
}

// TestHistogramBelowSmallestBucket pins the sub-unit edge: values in [0, 1]
// share the first bucket (below the resolution of a latency histogram), so a
// distribution living entirely under 1 must still report sane, clamped
// quantiles inside the exactly tracked [min, max] — never bucket 0's nominal
// representative when the data sits below it.
func TestHistogramBelowSmallestBucket(t *testing.T) {
	h := NewHistogram(0.01, 1e6)
	vals := []float64{0.001, 0.01, 0.2, 0.4, 0.9}
	for _, v := range vals {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Min != 0.001 || snap.Max != 0.9 {
		t.Fatalf("min/max %v/%v, want exact 0.001/0.9", snap.Min, snap.Max)
	}
	for name, q := range map[string]float64{"p50": snap.P50, "p99": snap.P99, "p999": snap.P999} {
		if q < snap.Min || q > snap.Max {
			t.Fatalf("%s = %v escapes the observed range [%v, %v]", name, q, snap.Min, snap.Max)
		}
	}
	// Mixing one large value: the sub-unit mass still dominates p50.
	h.Observe(5000)
	snap = h.Snapshot()
	if snap.P50 > 1 {
		t.Fatalf("p50 %v > 1 with 5/6 of mass below 1", snap.P50)
	}
	if snap.Max != 5000 || snap.P999 > 5000 {
		t.Fatalf("tail %+v", snap)
	}
}

// TestHistogramOverflowBucketInterpolation pins the wide-bucket quantile bug:
// when every observation clamps into the overflow bucket (values beyond the
// configured maxValue), the nearest-rank answer used to collapse to the
// bucket's clamped lower edge — reporting p50 = min for a distribution
// spanning 2000..10000. Rank interpolation within the bucket must recover the
// interior quantiles.
func TestHistogramOverflowBucketInterpolation(t *testing.T) {
	h := NewHistogram(0.01, 1000) // maxValue 1000: everything below lands beyond the last resolved bucket
	n := 8001
	for i := 0; i < n; i++ {
		h.Observe(2000 + float64(i)) // uniform over [2000, 10000]
	}
	snap := h.Snapshot()
	for _, q := range []struct {
		name string
		got  float64
		p    float64
	}{
		{"p50", snap.P50, 0.5},
		{"p95", snap.P95, 0.95},
		{"p99", snap.P99, 0.99},
	} {
		exact := 2000 + q.p*8000
		if relErr := math.Abs(q.got-exact) / exact; relErr > 0.05 {
			t.Errorf("%s = %v, exact %v (rel err %.3f): overflow-bucket quantile collapsed", q.name, q.got, exact, relErr)
		}
	}
	if snap.P50 >= snap.P95 || snap.P95 >= snap.P99 {
		t.Errorf("quantiles not strictly ordered inside the overflow bucket: %+v", snap)
	}
}

// TestHistogramSubUnitBucketInterpolation pins the same bug at the other
// clamped edge: a distribution living entirely inside bucket 0 (sub-unit
// values) used to report every quantile as the clamped bucket representative
// (= max), biasing p50 to the top of the range.
func TestHistogramSubUnitBucketInterpolation(t *testing.T) {
	h := NewHistogram(0.01, 1e6)
	n := 901
	for i := 0; i < n; i++ {
		h.Observe(0.05 + 0.001*float64(i)) // uniform over [0.05, 0.95]
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.4 || p50 > 0.6 {
		t.Errorf("p50 = %v for uniform [0.05, 0.95], want ~0.5", p50)
	}
	p90 := h.Quantile(0.9)
	if p90 <= p50 {
		t.Errorf("p90 %v <= p50 %v inside bucket 0", p90, p50)
	}
}

// TestHistogramRelativeErrorBound asserts the documented eps relative-error
// contract across magnitudes (1e0..1e6, log-uniform) for several resolutions:
// every reported quantile lands within 2*eps of the exact sample quantile
// (the bucket width is a factor of gamma = (1+eps)/(1-eps), so any in-bucket
// answer is within gamma-1 ~= 2*eps of the truth).
func TestHistogramRelativeErrorBound(t *testing.T) {
	for _, eps := range []float64{0.005, 0.01, 0.02} {
		rng := rand.New(rand.NewSource(42))
		h := NewHistogram(eps, 1e7)
		samples := make([]float64, 30000)
		for i := range samples {
			samples[i] = math.Pow(10, 6*rng.Float64()) // log-uniform 1..1e6
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
			rank := int(math.Ceil(p*float64(len(samples)))) - 1
			exact := samples[rank]
			got := h.Quantile(p)
			if relErr := math.Abs(got-exact) / exact; relErr > 2*eps {
				t.Errorf("eps=%v p%v: got %v, exact %v (rel err %.5f > %.5f)", eps, p*100, got, exact, relErr, 2*eps)
			}
		}
	}
}
