package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestRollingBasics(t *testing.T) {
	r := NewRolling(8)
	base := time.Unix(0, 0)
	snap := r.Snapshot(base)
	if snap.Summary.Count != 0 || snap.RatePerSec != 0 || snap.Total != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
	for i := 0; i < 4; i++ {
		r.Observe(base.Add(time.Duration(i)*time.Second), float64(i+1))
	}
	snap = r.Snapshot(base.Add(4 * time.Second))
	if snap.Summary.Count != 4 || snap.Summary.Min != 1 || snap.Summary.Max != 4 {
		t.Errorf("snapshot = %+v", snap.Summary)
	}
	// 4 samples delimit 3 intervals over the 3s oldest→newest span.
	if snap.RatePerSec != 1 {
		t.Errorf("rate = %v, want 1", snap.RatePerSec)
	}
	if snap.Total != 4 {
		t.Errorf("total = %d", snap.Total)
	}
}

func TestRollingWraparound(t *testing.T) {
	r := NewRolling(4)
	base := time.Unix(100, 0)
	for i := 0; i < 10; i++ {
		r.Observe(base.Add(time.Duration(i)*time.Millisecond), float64(i))
	}
	snap := r.Snapshot(base.Add(10 * time.Millisecond))
	// Only the last 4 samples (6..9) are retained.
	if snap.Summary.Count != 4 || snap.Summary.Min != 6 || snap.Summary.Max != 9 {
		t.Errorf("after wrap: %+v", snap.Summary)
	}
	if snap.Total != 10 {
		t.Errorf("total = %d, want 10", snap.Total)
	}
	if snap.RatePerSec <= 0 {
		t.Errorf("rate = %v", snap.RatePerSec)
	}
}

// TestRollingRateSmallN pins the rate estimate for small sample counts: n
// samples delimit n-1 intervals, so two samples 1s apart are exactly 1/s —
// not 2 divided by however long ago the oldest sample is, which both
// overstated the rate and made it drift with the snapshot time.
func TestRollingRateSmallN(t *testing.T) {
	r := NewRolling(8)
	base := time.Unix(50, 0)
	r.Observe(base, 1)
	r.Observe(base.Add(time.Second), 2)
	for _, lag := range []time.Duration{0, time.Second, 10 * time.Second} {
		if got := r.Snapshot(base.Add(time.Second + lag)).RatePerSec; got != 1 {
			t.Errorf("2 samples 1s apart, snapshot +%v: rate = %v, want exactly 1", lag, got)
		}
	}
	// A third sample 500ms later: 2 intervals over 1.5s = 4/3 per second.
	r.Observe(base.Add(1500*time.Millisecond), 3)
	if got, want := r.Snapshot(base.Add(time.Minute)).RatePerSec, 2/1.5; got != want {
		t.Errorf("3 samples over 1.5s: rate = %v, want exactly %v", got, want)
	}
	// A single sample has no interval to estimate from.
	one := NewRolling(4)
	one.Observe(base, 9)
	if got := one.Snapshot(base.Add(time.Second)).RatePerSec; got != 0 {
		t.Errorf("1 sample: rate = %v, want 0", got)
	}
}

func TestRollingZeroCapacity(t *testing.T) {
	r := NewRolling(0) // clamped to 1
	now := time.Unix(0, 0)
	r.Observe(now, 7)
	r.Observe(now, 9)
	snap := r.Snapshot(now)
	if snap.Summary.Count != 1 || snap.Summary.P50 != 9 {
		t.Errorf("snapshot = %+v", snap.Summary)
	}
}

// TestRollingConcurrent hammers one ring from many goroutines (run under
// -race).
func TestRollingConcurrent(t *testing.T) {
	r := NewRolling(128)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Observe(start.Add(time.Duration(i)*time.Microsecond), float64(w*200+i))
				if i%50 == 0 {
					r.Snapshot(time.Now())
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot(time.Now())
	if snap.Total != 1600 {
		t.Errorf("total = %d, want 1600", snap.Total)
	}
	if snap.Summary.Count != 128 {
		t.Errorf("count = %d, want 128", snap.Summary.Count)
	}
}
