package core

import (
	"context"
	"testing"
	"time"

	"microrec/internal/model"
)

func TestStreamServesInOrder(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	qs := randomQueries(spec, 10, 13)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan StreamRequest)
	out := e.Stream(ctx, in)
	go func() {
		for i, q := range qs {
			in <- StreamRequest{Seq: uint64(i), Query: q}
		}
		close(in)
	}()
	var got []StreamResponse
	for resp := range out {
		got = append(got, resp)
	}
	if len(got) != len(qs) {
		t.Fatalf("stream returned %d responses for %d requests", len(got), len(qs))
	}
	for i, resp := range got {
		if resp.Seq != uint64(i) {
			t.Errorf("response %d has seq %d — order not preserved", i, resp.Seq)
		}
		if resp.Err != nil {
			t.Errorf("response %d: %v", i, resp.Err)
		}
		want, err := e.InferOne(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if resp.CTR != want {
			t.Errorf("response %d: CTR %v, want %v", i, resp.CTR, want)
		}
	}
}

func TestStreamReportsPerQueryErrors(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	good := randomQueries(spec, 1, 1)[0]
	bad := randomQueries(spec, 1, 2)[0]
	bad[0] = []int64{spec.Tables[0].Rows + 1}

	ctx := context.Background()
	in := make(chan StreamRequest, 2)
	in <- StreamRequest{Seq: 0, Query: bad}
	in <- StreamRequest{Seq: 1, Query: good}
	close(in)
	out := e.Stream(ctx, in)
	first := <-out
	if first.Err == nil {
		t.Error("bad query: want per-query error")
	}
	second := <-out
	if second.Err != nil {
		t.Errorf("good query after bad one failed: %v", second.Err)
	}
	if _, more := <-out; more {
		t.Error("stream did not close after drain")
	}
}

func TestStreamHonorsCancellation(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan StreamRequest) // never written
	out := e.Stream(ctx, in)
	cancel()
	select {
	case _, more := <-out:
		if more {
			t.Error("got a response from a cancelled stream")
		}
	case <-time.After(2 * time.Second):
		t.Error("stream did not close after cancellation")
	}
}
