package core

import (
	"fmt"
	"sort"

	"microrec/internal/embedding"
	"microrec/internal/hotcache"
)

// This file exposes the gather datapath in table-subset pieces — the entry
// points the sharded cluster tier is built on. A shard owns a subset of the
// engine's physical tables; it gathers that subset into a shard-local plane
// (GatherPartialIntoPlane), and the coordinator copies each shard's feature
// columns into its own plane (MergePartialPlane). Physical tables write
// disjoint feature columns, so the merged plane is bit-identical to a
// monolithic GatherIntoPlane over the same queries by construction: the same
// quantize loop produced every value, and the merge only moves bits.

// ColSpan is a contiguous range of feature-vector columns.
type ColSpan struct {
	Off int
	Len int
}

// PhysicalTables reports the number of physical tables in the engine's
// compiled gather plan (Cartesian products count once). Table indices in
// [0, PhysicalTables) are the currency of the partial-gather entry points and
// of placement.ShardTables.
func (e *Engine) PhysicalTables() int { return len(e.gplan.tables) }

// PartialSpans returns the merged, ascending feature-column spans written by
// the listed physical tables' gathers. Adjacent and overlapping spans are
// coalesced, so a merge loop touches each byte once. The spans of disjoint
// table subsets never overlap; the spans of a partition of all physical
// tables exactly cover [0, featureLen-denseDim).
func (e *Engine) PartialSpans(tables []int) ([]ColSpan, error) {
	var spans []ColSpan
	for _, ti := range tables {
		if ti < 0 || ti >= len(e.gplan.tables) {
			return nil, fmt.Errorf("core: physical table %d out of range (engine has %d)", ti, len(e.gplan.tables))
		}
		for si := range e.gplan.tables[ti].srcs {
			src := &e.gplan.tables[ti].srcs[si]
			spans = append(spans, ColSpan{Off: src.featOff, Len: src.lookups * src.dim})
		}
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].Off < spans[b].Off })
	merged := spans[:0]
	for _, sp := range spans {
		if n := len(merged); n > 0 && merged[n-1].Off+merged[n-1].Len >= sp.Off {
			if end := sp.Off + sp.Len; end > merged[n-1].Off+merged[n-1].Len {
				merged[n-1].Len = end - merged[n-1].Off
			}
			continue
		}
		merged = append(merged, sp)
	}
	return merged, nil
}

// GatherPartialIntoPlane gathers only the listed physical tables into the
// plane's feature rows, quantizing exactly as the monolithic gather would.
// Accesses are recorded against cache when non-nil (the cluster tier passes a
// per-shard cache; nil disables accounting). Queries must have passed
// ValidateQuery and the plane must be sized (EnsurePlane) for at least
// len(queries); the call performs no validation, no allocation, and does not
// touch columns outside the listed tables' spans — in particular the dense
// tail, which the coordinator owns (ZeroDenseTail).
//
//microrec:noalloc
func (e *Engine) GatherPartialIntoPlane(tables []int, queries []embedding.Query, s *BatchScratch, cache *hotcache.Live) {
	s.coldFaults.Store(0)
	e.gatherTables(tables, queries, s, cache)
	s.obs = GatherObs{ColdFaults: s.coldFaults.Load()}
}

// ZeroDenseTail zeroes the dense tail of the plane's first b feature rows —
// the one feature region no table gather overwrites. The monolithic gather
// does this implicitly; a scatter/gather coordinator calls it once on its
// merged plane.
//
//microrec:noalloc
func (e *Engine) ZeroDenseTail(b int, s *BatchScratch) {
	w := e.width
	for qi := 0; qi < b; qi++ {
		row := s.x[qi*w+e.gplan.denseOff : qi*w+e.featureLen]
		for i := range row {
			row[i] = 0
		}
	}
}

// MergePartialPlane copies the given feature-column spans of the first b rows
// from src into dst — the coordinator's fan-in step. Both planes must be
// sized (EnsurePlane) for at least b. Spans from disjoint table subsets are
// disjoint, so merges of different shards' partials into one plane commute.
func (e *Engine) MergePartialPlane(b int, spans []ColSpan, src, dst *BatchScratch) {
	w := e.width
	for qi := 0; qi < b; qi++ {
		base := qi * w
		for _, sp := range spans {
			copy(dst.x[base+sp.Off:base+sp.Off+sp.Len], src.x[base+sp.Off:base+sp.Off+sp.Len])
		}
	}
}

// CacheHitScale is the modeled on-chip/DRAM per-access latency ratio of the
// engine's gather plan: a hot-row cache hit costs this fraction of a DRAM
// access. The cluster tier uses it to model per-shard effective lookup
// latency from per-shard cache hit rates, mirroring effectiveLookupNS.
func (e *Engine) CacheHitScale() float64 { return e.gplan.hitScale }
