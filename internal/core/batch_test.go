package core

import (
	"strings"
	"sync"
	"testing"

	"microrec/internal/model"
)

// oddSpec is a tiny model whose feature length, hidden widths and batch
// tails exercise every edge of the blocked GEMM (odd in/out dims, dense
// tail, column-block remainders).
func oddSpec() *model.Spec {
	return &model.Spec{
		Name: "odd-batch",
		Tables: []model.TableSpec{
			{ID: 0, Name: "a", Rows: 97, Dim: 3, Lookups: 1},
			{ID: 1, Name: "b", Rows: 41, Dim: 5, Lookups: 2},
			{ID: 2, Name: "c", Rows: 203, Dim: 7, Lookups: 1},
		},
		DenseDim: 3,
		Hidden:   []int{31, 17},
	}
}

// TestInferBatchMatchesInferOne checks bit-identical predictions between the
// blocked batch kernel and the per-query datapath, across batch sizes that
// cover the 4-query and 2-output register-block tails.
func TestInferBatchMatchesInferOne(t *testing.T) {
	specs := []*model.Spec{model.SmallProduction(), oddSpec()}
	for _, spec := range specs {
		cfg := ConfigFor(spec.Name, SmallFP16().Precision)
		e := buildEngine(t, spec, cfg, true)
		for _, b := range []int{1, 2, 3, 4, 5, 7, 8, 64, 67} {
			qs := randomQueries(spec, b, int64(b))
			got, err := e.InferBatch(qs, nil, nil)
			if err != nil {
				t.Fatalf("%s b=%d: %v", spec.Name, b, err)
			}
			for i, q := range qs {
				want, err := e.InferOne(q)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("%s b=%d query %d: batch %v, one-at-a-time %v", spec.Name, b, i, got[i], want)
				}
			}
		}
	}
}

// TestInferBatchScratchReuse reuses one scratch across growing and shrinking
// batch sizes and checks results stay exact (stale dense tails or stale
// activations would show up here).
func TestInferBatchScratchReuse(t *testing.T) {
	spec := oddSpec()
	e := buildEngine(t, spec, ConfigFor(spec.Name, SmallFP16().Precision), true)
	var scratch BatchScratch
	for _, b := range []int{5, 64, 3, 1, 32} {
		qs := randomQueries(spec, b, int64(100+b))
		got, err := e.InferBatch(qs, nil, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want, _ := e.InferOne(q)
			if got[i] != want {
				t.Fatalf("b=%d query %d: %v != %v", b, i, got[i], want)
			}
		}
	}
}

// TestInferBatchErrors covers argument validation and per-query failures.
func TestInferBatchErrors(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	if _, err := e.InferBatch(nil, nil, nil); err == nil {
		t.Error("empty batch: want error")
	}
	qs := randomQueries(spec, 3, 1)
	if _, err := e.InferBatch(qs, make([]float32, 2), nil); err == nil {
		t.Error("short dst: want error")
	}
	bad := randomQueries(spec, 3, 1)
	bad[1] = bad[1][:5] // wrong table count
	if _, err := e.InferBatch(bad, nil, nil); err == nil {
		t.Error("malformed query: want error")
	} else if !strings.Contains(err.Error(), "query 1") {
		t.Errorf("error should name the failing query: %v", err)
	}
}

// TestValidateQuery checks shape and range validation without inference.
func TestValidateQuery(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	q := randomQueries(spec, 1, 9)[0]
	if err := e.ValidateQuery(q); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	if err := e.ValidateQuery(q[:3]); err == nil {
		t.Error("short query: want error")
	}
	bad := randomQueries(spec, 1, 9)[0]
	bad[0] = []int64{spec.Tables[0].Rows}
	if err := e.ValidateQuery(bad); err == nil {
		t.Error("out-of-range index: want error")
	}
	bad2 := randomQueries(spec, 1, 9)[0]
	bad2[2] = append(bad2[2], 0)
	if err := e.ValidateQuery(bad2); err == nil {
		t.Error("wrong lookup count: want error")
	}
}

// TestInferBatchConcurrent runs many batches through one shared engine from
// concurrent goroutines, each with a private scratch — the shared-engine
// path the serving worker pool relies on (run under -race).
func TestInferBatchConcurrent(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	qs := randomQueries(spec, 16, 5)
	want, err := e.InferBatch(qs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch BatchScratch
			for rep := 0; rep < 4; rep++ {
				got, err := e.InferBatch(qs, nil, &scratch)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("concurrent batch diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
