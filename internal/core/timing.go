package core

import (
	"fmt"
	"math"

	"microrec/internal/model"
	"microrec/internal/pipesim"
)

// gemmCycles returns the initiation interval, in cycles, of one FC layer's
// GEMM stage (§4.3): each PE computes ceil(out/PEs) output chunks; a chunk
// streams ceil(in/lanes) partial sums through the multiplier array plus the
// add-tree drain overhead.
func gemmCycles(in, out, pes, lanes, overhead int) int {
	chunks := ceilDiv(out, pes)
	perChunk := ceilDiv(in, lanes) + overhead
	return chunks * perChunk
}

// addTreeDepth returns the pipeline depth of a PE's adder tree.
func addTreeDepth(lanes int) int {
	d := 0
	for n := 1; n < lanes; n *= 2 {
		d++
	}
	return d
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// BuildPipeline assembles the accelerator's stage pipeline for a model
// (Figure 6): embedding lookup, then broadcast / GEMM / gather per hidden
// layer, then the output layer and sigmoid. lookupNS is the per-inference
// embedding-lookup latency delivered by the memory system (placement report);
// it forms both the latency and the initiation interval of the lookup stage,
// since a memory channel cannot overlap accesses of consecutive items.
func (c Config) BuildPipeline(spec *model.Spec, lookupNS float64) (*pipesim.Pipeline, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dims := spec.LayerDims()
	hidden := dims[:len(dims)-1]
	if len(hidden) != len(c.PEsPerLayer) {
		return nil, fmt.Errorf("core: config has %d PE layers, model has %d hidden layers",
			len(c.PEsPerLayer), len(hidden))
	}
	cyc := c.CycleNS()
	var stages []pipesim.Stage
	if c.HostStreamGBps > 0 {
		// Input features: one 8-byte (table, index) pair per lookup plus
		// the dense features. GB/s equals bytes/ns.
		bytes := float64(spec.NumLookups()*8 + spec.DenseDim*model.FloatBytes)
		ns := bytes / c.HostStreamGBps
		stages = append(stages, pipesim.Stage{
			Name:       "host-stream",
			LatencyNS:  ns,
			IntervalNS: ns,
			FIFODepth:  c.FIFODepth,
		})
	}
	stages = append(stages, pipesim.Stage{
		Name:       "lookup",
		LatencyNS:  lookupNS,
		IntervalNS: lookupNS,
		FIFODepth:  c.FIFODepth,
	})
	treeNS := float64(addTreeDepth(c.LanesPerPE)) * cyc
	for l, d := range hidden {
		in, out := d[0], d[1]
		bcast := float64(ceilDiv(in, c.BroadcastWidth)+4) * cyc
		stages = append(stages, pipesim.Stage{
			Name:       fmt.Sprintf("fc%d-broadcast", l+1),
			LatencyNS:  bcast,
			IntervalNS: bcast,
			FIFODepth:  c.FIFODepth,
		})
		ii := float64(gemmCycles(in, out, c.PEsPerLayer[l], c.LanesPerPE, c.ChunkOverheadCycles)) * cyc
		stages = append(stages, pipesim.Stage{
			Name:       fmt.Sprintf("fc%d-gemm", l+1),
			LatencyNS:  ii + treeNS,
			IntervalNS: ii,
			FIFODepth:  c.FIFODepth,
		})
		gather := float64(ceilDiv(out, c.GatherWidth)+4) * cyc
		stages = append(stages, pipesim.Stage{
			Name:       fmt.Sprintf("fc%d-gather", l+1),
			LatencyNS:  gather,
			IntervalNS: gather,
			FIFODepth:  c.FIFODepth,
		})
	}
	// Output layer: a single dot product on one PE, then the sigmoid LUT.
	outDim := dims[len(dims)-1]
	outNS := float64(gemmCycles(outDim[0], outDim[1], 1, c.LanesPerPE, c.ChunkOverheadCycles))*cyc + treeNS
	stages = append(stages, pipesim.Stage{
		Name:       "output",
		LatencyNS:  outNS,
		IntervalNS: outNS,
		FIFODepth:  c.FIFODepth,
	})
	sigmoidNS := 8 * cyc
	stages = append(stages, pipesim.Stage{
		Name:       "sigmoid",
		LatencyNS:  sigmoidNS,
		IntervalNS: sigmoidNS,
		FIFODepth:  c.FIFODepth,
	})
	return pipesim.New(stages...)
}

// TimingReport summarises the accelerator's modeled performance for a run.
type TimingReport struct {
	// Items processed.
	Items int
	// LatencyNS is the end-to-end single-item latency (pipeline fill) —
	// the paper's 16.3–31.0 µs headline (§5.3).
	LatencyNS float64
	// SteadyIntervalNS is the bottleneck initiation interval.
	SteadyIntervalNS float64
	// MakespanNS covers all items including pipeline fill and drain,
	// which is what Table 2's FPGA batch-latency speedups divide by.
	MakespanNS float64
	// ThroughputItemsPerSec is Items / Makespan.
	ThroughputItemsPerSec float64
	// ThroughputGOPs is the FC-tower operation throughput, the paper's
	// GOP/s metric.
	ThroughputGOPs float64
	// LookupNS is the embedding-lookup stage latency.
	LookupNS float64
	// BottleneckStage names the II-limiting stage.
	BottleneckStage string
}

// Simulate runs `items` through the pipeline and converts the result into a
// timing report.
func (c Config) Simulate(spec *model.Spec, lookupNS float64, items int) (TimingReport, error) {
	p, err := c.BuildPipeline(spec, lookupNS)
	if err != nil {
		return TimingReport{}, err
	}
	res, err := p.Simulate(items)
	if err != nil {
		return TimingReport{}, err
	}
	_, bottleneck := p.Bottleneck()
	ops := float64(spec.OpsPerItem()) * float64(items)
	return TimingReport{
		Items:                 items,
		LatencyNS:             p.FillLatencyNS(),
		SteadyIntervalNS:      p.BottleneckIntervalNS(),
		MakespanNS:            res.MakespanNS,
		ThroughputItemsPerSec: res.ThroughputPerSec,
		ThroughputGOPs:        ops / res.MakespanNS,
		LookupNS:              lookupNS,
		BottleneckStage:       bottleneck,
	}, nil
}

// SteadyThroughputItemsPerSec returns the asymptotic throughput implied by
// the bottleneck interval, without pipeline fill effects.
func (r TimingReport) SteadyThroughputItemsPerSec() float64 {
	if r.SteadyIntervalNS == 0 {
		return math.Inf(1)
	}
	return 1e9 / r.SteadyIntervalNS
}
