package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"microrec/internal/cartesian"
	"microrec/internal/embedding"
	"microrec/internal/hotcache"
	"microrec/internal/model"
	"microrec/internal/pipesim"
	"microrec/internal/placement"
	"microrec/internal/tensor"
	"microrec/internal/tieredstore"
)

// Engine is a built MicroRec accelerator instance: a placement plan bound to
// materialised parameters, quantized weights, and the timing model. It
// computes real CTR predictions in the configured fixed-point format while
// reporting the calibrated hardware timing.
type Engine struct {
	cfg    Config
	spec   *model.Spec
	plan   *placement.Result
	store  *embedding.Store
	params *model.Parameters

	// featureOffset[srcID] is where source table srcID's vectors start in
	// the concatenated feature vector (spec order, lookup-minor).
	featureOffset []int
	featureLen    int
	// width is the widest activation plane of the datapath (feature length
	// or any layer output), the row stride of every batch buffer.
	width int

	// Quantized FC tower, held transposed (out x in row-major, i.e. one
	// contiguous weight row per output) so both the per-query GEMV and the
	// blocked batch GEMM stream weights sequentially; raw values in the
	// engine's fixed-point format.
	qweightsT [][]int64
	qbiases   [][]int64
	dims      [][2]int

	// products holds the physically materialised Cartesian tables, one
	// per physical table (nil for single tables and for products too
	// large to materialise, which fall back to virtual per-source reads).
	products []*cartesian.Materialized

	// gplan is the compiled batched-gather schedule (see gather.go).
	gplan gatherPlan
	// cache is the optional live hot-row cache (Config.HotCacheBytes).
	cache *hotcache.Live
	// tier is the optional tiered backing store (Config.ColdTier): hot rows
	// pinned in DRAM, the full row set in an mmap'd cold file. Engines with
	// a tier must be Closed.
	tier *tieredstore.Store

	// onePool recycles the batch-of-one scratch InferOne runs on, keeping
	// the single-query path allocation-free in steady state. The engine
	// is otherwise immutable after Build.
	onePool sync.Pool

	pipelineNS float64 // cached cold-cache lookup latency from the plan
}

// oneScratch is the pooled state of one InferOne call.
type oneScratch struct {
	s   BatchScratch
	qs  [1]embedding.Query
	out [1]float32
}

// Build assembles an engine from materialised parameters, a placement plan
// for the same model, and an accelerator configuration.
func Build(params *model.Parameters, plan *placement.Result, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if params == nil || plan == nil {
		return nil, fmt.Errorf("core: nil parameters or plan")
	}
	spec := params.Spec
	if plan.Layout.Spec != spec {
		return nil, fmt.Errorf("core: plan is for model %q, parameters for %q",
			plan.Layout.Spec.Name, spec.Name)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid plan: %w", err)
	}
	store, err := embedding.NewStore(params)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		spec:       spec,
		plan:       plan,
		store:      store,
		params:     params,
		dims:       spec.LayerDims(),
		pipelineNS: plan.Report.LatencyNS,
	}
	e.onePool.New = func() interface{} { return new(oneScratch) }
	e.featureOffset = make([]int, len(spec.Tables))
	off := 0
	for i, t := range spec.Tables {
		e.featureOffset[i] = off
		off += t.Dim * t.Lookups
	}
	e.featureLen = off + spec.DenseDim
	if got := spec.FeatureLen(); e.featureLen != got {
		return nil, fmt.Errorf("core: feature length mismatch %d vs %d", e.featureLen, got)
	}
	e.width = e.featureLen
	for _, d := range e.dims {
		if d[1] > e.width {
			e.width = d[1]
		}
	}
	f := cfg.Precision
	for l, w := range params.Weights {
		in, out := e.dims[l][0], e.dims[l][1]
		if len(w.Data) != in*out {
			return nil, fmt.Errorf("core: layer %d weights have %d values, want %d", l, len(w.Data), in*out)
		}
		// Transpose while quantizing: source is in x out row-major, the
		// engine stores out x in so output j's weights are contiguous.
		raw := make([]int64, len(w.Data))
		for i := 0; i < in; i++ {
			for j := 0; j < out; j++ {
				raw[j*in+i] = f.Quantize(float64(w.Data[i*out+j]))
			}
		}
		e.qweightsT = append(e.qweightsT, raw)
		braw := make([]int64, len(params.Biases[l]))
		for i, v := range params.Biases[l] {
			braw[i] = f.Quantize(float64(v))
		}
		e.qbiases = append(e.qbiases, braw)
	}
	// Physically materialise the (capacity-scaled) Cartesian products, as
	// the DRAM image on the FPGA would hold them; oversized products keep
	// the virtual per-source path.
	e.products = make([]*cartesian.Materialized, len(plan.Layout.Tables))
	for pi, pt := range plan.Layout.Tables {
		if !pt.IsProduct() {
			continue
		}
		srcs := make([]*embedding.Table, len(pt.Sources))
		for i, src := range pt.Sources {
			tab, err := store.Table(src.ID)
			if err != nil {
				return nil, err
			}
			srcs[i] = tab
		}
		m, err := cartesian.MaterializeProduct(pt, srcs)
		if err != nil {
			continue // too large: virtual fallback
		}
		e.products[pi] = m
	}
	if cfg.HotCacheBytes > 0 {
		live, err := hotcache.NewLive(cfg.HotCacheBytes, 0)
		if err != nil {
			return nil, err
		}
		e.cache = live
	}
	if e.gplan, err = e.compileGatherPlan(); err != nil {
		return nil, err
	}
	if cfg.ColdTier != nil {
		if err := e.attachTier(); err != nil {
			return nil, err
		}
		if e.cache == nil {
			// Tiered placement is harvested from the live cache, so a tiered
			// engine needs one: default to the hot-tier budget (floored so an
			// all-cold budget still leaves a usable harvest window).
			capacity := e.tier.HotBudgetBytes()
			if capacity < 1<<20 {
				capacity = 1 << 20
			}
			live, err := hotcache.NewLive(capacity, 0)
			if err != nil {
				e.tier.Close()
				return nil, err
			}
			e.cache = live
		}
		e.tier.AddSource(e.cache)
	}
	return e, nil
}

// Close releases the engine's tiered backing store (stopping its placement
// sweep and removing the cold-tier file). A no-op for all-DRAM engines.
// Callers must have stopped every in-flight inference first.
func (e *Engine) Close() error {
	if e.tier != nil {
		return e.tier.Close()
	}
	return nil
}

// MaterializedProducts reports how many Cartesian products are physically
// materialised (vs. served by the virtual per-source fallback).
func (e *Engine) MaterializedProducts() int {
	n := 0
	for _, m := range e.products {
		if m != nil {
			n++
		}
	}
	return n
}

// Spec returns the engine's model.
func (e *Engine) Spec() *model.Spec { return e.spec }

// Plan returns the engine's placement.
func (e *Engine) Plan() *placement.Result { return e.plan }

// Config returns the engine's build configuration.
func (e *Engine) Config() Config { return e.cfg }

// LookupNS returns the modeled per-inference embedding-lookup latency with a
// cold (or absent) hot-row cache — the conservative figure SLA admission
// uses. With a tiered store attached it adds the residency-weighted
// cold-tier bound, which at admission time (empty hot tier) is the fully
// cold figure. See EffectiveLookupNS for the live-adjusted value.
func (e *Engine) LookupNS() float64 { return e.pipelineNS + e.TierBoundNS() }

// Gather resolves one query into the concatenated float feature vector,
// walking the compiled gather plan over the *physical* layout: one access per
// physical table retrieves the vectors of all its merged sources (the
// Cartesian-product payoff), which are then scattered to their spec-order
// feature positions. It is the float reference of the quantized GatherBatch
// path and performs no hot-cache accounting.
func (e *Engine) Gather(q embedding.Query, dst []float32) ([]float32, error) {
	if err := e.ValidateQuery(q); err != nil {
		return nil, err
	}
	if dst == nil {
		dst = make([]float32, e.featureLen)
	} else if len(dst) != e.featureLen {
		return nil, fmt.Errorf("core: dst length %d, want %d", len(dst), e.featureLen)
	}
	for ti := range e.gplan.tables {
		gt := &e.gplan.tables[ti]
		if gt.mat != nil {
			dim := gt.dim
			for r := 0; r < gt.lookups; r++ {
				var row int64
				for si := range gt.srcs {
					src := &gt.srcs[si]
					row += (q[src.srcID][r] % src.actualRows) * src.stride
				}
				var payload []float32
				if gt.tier != nil {
					payload = gt.tier.Row(row)
				} else {
					payload = gt.mat[row*dim : row*dim+dim]
				}
				seg := 0
				for si := range gt.srcs {
					src := &gt.srcs[si]
					off := src.featOff + r*src.dim
					copy(dst[off:off+src.dim], payload[seg:seg+src.dim])
					seg += src.dim
				}
			}
			continue
		}
		for si := range gt.srcs {
			src := &gt.srcs[si]
			d64 := int64(src.dim)
			for r := 0; r < src.lookups; r++ {
				mrow := q[src.srcID][r] % src.actualRows
				off := src.featOff + r*src.dim
				copy(dst[off:off+src.dim], src.data[mrow*d64:mrow*d64+d64])
			}
		}
	}
	return dst, nil
}

// InferOne runs one query through the fixed-point datapath and returns the
// predicted CTR in [0, 1]. It shares the batched gather + GEMM datapath as a
// batch of one (bit-identical by construction) on a pooled scratch, so the
// single-query path is allocation-free in steady state and feeds the live
// hot-row cache like any other traffic.
func (e *Engine) InferOne(q embedding.Query) (float32, error) {
	if err := e.ValidateQuery(q); err != nil {
		return 0, err
	}
	os := e.onePool.Get().(*oneScratch)
	os.qs[0] = q
	_, err := e.inferBatchValidated(os.qs[:], os.out[:], &os.s)
	pred := os.out[0]
	os.qs[0] = nil
	e.onePool.Put(os)
	if err != nil {
		return 0, err
	}
	return pred, nil
}

// ReferenceOne computes the same prediction in float32 (the software
// reference used to measure quantization error).
func (e *Engine) ReferenceOne(q embedding.Query) (float32, error) {
	feat, err := e.Gather(q, nil)
	if err != nil {
		return 0, err
	}
	x := feat
	for l := range e.dims {
		y, err := tensor.MatVec(e.params.Weights[l].Transpose(), x, nil)
		if err != nil {
			return 0, err
		}
		for j := range y {
			y[j] += e.params.Biases[l][j]
		}
		if l < len(e.dims)-1 {
			tensor.ReLU(y)
		}
		x = y
	}
	out := []float32{x[0]}
	tensor.Sigmoid(out)
	return out[0], nil
}

// InferResult bundles predictions with the hardware timing model's report.
type InferResult struct {
	Predictions []float32
	Timing      TimingReport
}

// Infer runs a batch of queries: functionally through the fixed-point
// datapath, and through the timing model as a back-to-back item stream (the
// accelerator has no batching, §4.1). Queries are validated once at entry;
// the functional computation then splits the batch across goroutines, each
// running the blocked batch kernel with its own scratch — the engine is
// immutable after Build, so concurrent chunks are safe. Predictions are
// bit-identical to per-query InferOne.
func (e *Engine) Infer(queries []embedding.Query) (*InferResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	if err := e.validateBatch(queries, 0); err != nil {
		return nil, err
	}
	preds := make([]float32, len(queries))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	chunk := (len(queries) + workers - 1) / workers
	for lo := 0; lo < len(queries); lo += chunk {
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if _, err := e.inferBatchValidated(queries[lo:hi], preds[lo:hi], nil); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rep, err := e.cfg.Simulate(e.spec, e.EffectiveLookupNS(), len(queries))
	if err != nil {
		return nil, err
	}
	return &InferResult{Predictions: preds, Timing: rep}, nil
}

// Timing runs only the timing model for `items` inferences (no functional
// computation), useful for large sweeps. The lookup stage runs at the
// engine's current effective lookup latency — identical to the cold plan
// latency unless a live hot-row cache is attached and warm.
func (e *Engine) Timing(items int) (TimingReport, error) {
	return e.TimingAt(items, e.EffectiveLookupNS())
}

// TimingAt runs the timing model with an explicit embedding-lookup latency,
// letting callers pin the lookup stage (e.g. SLA admission uses the
// cache-cold LookupNS; dashboards use EffectiveLookupNS).
func (e *Engine) TimingAt(items int, lookupNS float64) (TimingReport, error) {
	return e.cfg.Simulate(e.spec, lookupNS, items)
}

// TracePipeline is the SIMULATED tracer: it runs `items` inferences through
// the pipesim timing model (no functional computation, no live traffic) and
// writes a Chrome-trace JSON of every modeled stage occupancy to w (open it
// in chrome://tracing or Perfetto to inspect pipeline balance). For traces of
// real requests use the serving tier's flight recorder instead — GET /trace
// on a running server, or `microrec trace -live`. Both writers share the
// trace-event format code in internal/obs, so the outputs load identically.
func (e *Engine) TracePipeline(items int, w io.Writer) (TimingReport, error) {
	p, err := e.cfg.BuildPipeline(e.spec, e.pipelineNS)
	if err != nil {
		return TimingReport{}, err
	}
	events, res, err := p.Trace(items)
	if err != nil {
		return TimingReport{}, err
	}
	if err := pipesim.ChromeTrace(w, events); err != nil {
		return TimingReport{}, err
	}
	_, bottleneck := p.Bottleneck()
	return TimingReport{
		Items:                 items,
		LatencyNS:             p.FillLatencyNS(),
		SteadyIntervalNS:      p.BottleneckIntervalNS(),
		MakespanNS:            res.MakespanNS,
		ThroughputItemsPerSec: res.ThroughputPerSec,
		ThroughputGOPs:        float64(e.spec.OpsPerItem()) * float64(items) / res.MakespanNS,
		LookupNS:              e.pipelineNS,
		BottleneckStage:       bottleneck,
	}, nil
}
