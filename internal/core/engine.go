package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"microrec/internal/cartesian"
	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
	"microrec/internal/model"
	"microrec/internal/pipesim"
	"microrec/internal/placement"
	"microrec/internal/tensor"
)

// Engine is a built MicroRec accelerator instance: a placement plan bound to
// materialised parameters, quantized weights, and the timing model. It
// computes real CTR predictions in the configured fixed-point format while
// reporting the calibrated hardware timing.
type Engine struct {
	cfg    Config
	spec   *model.Spec
	plan   *placement.Result
	store  *embedding.Store
	params *model.Parameters

	// featureOffset[srcID] is where source table srcID's vectors start in
	// the concatenated feature vector (spec order, lookup-minor).
	featureOffset []int
	featureLen    int

	// Quantized FC tower: weights held column-major per layer for the
	// GEMV; raw values in the engine's fixed-point format.
	qweights [][]int64 // layer -> in*out raw values, row-major (in x out)
	qbiases  [][]int64
	dims     [][2]int

	// products holds the physically materialised Cartesian tables, one
	// per physical table (nil for single tables and for products too
	// large to materialise, which fall back to virtual per-source reads).
	products []*cartesian.Materialized

	pipelineNS float64 // cached lookup latency from the plan
}

// Build assembles an engine from materialised parameters, a placement plan
// for the same model, and an accelerator configuration.
func Build(params *model.Parameters, plan *placement.Result, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if params == nil || plan == nil {
		return nil, fmt.Errorf("core: nil parameters or plan")
	}
	spec := params.Spec
	if plan.Layout.Spec != spec {
		return nil, fmt.Errorf("core: plan is for model %q, parameters for %q",
			plan.Layout.Spec.Name, spec.Name)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid plan: %w", err)
	}
	store, err := embedding.NewStore(params)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		spec:       spec,
		plan:       plan,
		store:      store,
		params:     params,
		dims:       spec.LayerDims(),
		pipelineNS: plan.Report.LatencyNS,
	}
	e.featureOffset = make([]int, len(spec.Tables))
	off := 0
	for i, t := range spec.Tables {
		e.featureOffset[i] = off
		off += t.Dim * t.Lookups
	}
	e.featureLen = off + spec.DenseDim
	if got := spec.FeatureLen(); e.featureLen != got {
		return nil, fmt.Errorf("core: feature length mismatch %d vs %d", e.featureLen, got)
	}
	f := cfg.Precision
	for l, w := range params.Weights {
		raw := make([]int64, len(w.Data))
		for i, v := range w.Data {
			raw[i] = f.Quantize(float64(v))
		}
		e.qweights = append(e.qweights, raw)
		braw := make([]int64, len(params.Biases[l]))
		for i, v := range params.Biases[l] {
			braw[i] = f.Quantize(float64(v))
		}
		e.qbiases = append(e.qbiases, braw)
	}
	// Physically materialise the (capacity-scaled) Cartesian products, as
	// the DRAM image on the FPGA would hold them; oversized products keep
	// the virtual per-source path.
	e.products = make([]*cartesian.Materialized, len(plan.Layout.Tables))
	for pi, pt := range plan.Layout.Tables {
		if !pt.IsProduct() {
			continue
		}
		srcs := make([]*embedding.Table, len(pt.Sources))
		for i, src := range pt.Sources {
			tab, err := store.Table(src.ID)
			if err != nil {
				return nil, err
			}
			srcs[i] = tab
		}
		m, err := cartesian.MaterializeProduct(pt, srcs)
		if err != nil {
			continue // too large: virtual fallback
		}
		e.products[pi] = m
	}
	return e, nil
}

// MaterializedProducts reports how many Cartesian products are physically
// materialised (vs. served by the virtual per-source fallback).
func (e *Engine) MaterializedProducts() int {
	n := 0
	for _, m := range e.products {
		if m != nil {
			n++
		}
	}
	return n
}

// Spec returns the engine's model.
func (e *Engine) Spec() *model.Spec { return e.spec }

// Plan returns the engine's placement.
func (e *Engine) Plan() *placement.Result { return e.plan }

// Config returns the engine's build configuration.
func (e *Engine) Config() Config { return e.cfg }

// LookupNS returns the modeled per-inference embedding-lookup latency.
func (e *Engine) LookupNS() float64 { return e.pipelineNS }

// Gather resolves one query into the concatenated float feature vector,
// walking the *physical* layout: one access per physical table retrieves the
// vectors of all its merged sources (the Cartesian-product payoff), which are
// then scattered to their spec-order feature positions.
func (e *Engine) Gather(q embedding.Query, dst []float32) ([]float32, error) {
	if len(q) != len(e.spec.Tables) {
		return nil, fmt.Errorf("core: query covers %d tables, model has %d", len(q), len(e.spec.Tables))
	}
	if dst == nil {
		dst = make([]float32, e.featureLen)
	} else if len(dst) != e.featureLen {
		return nil, fmt.Errorf("core: dst length %d, want %d", len(dst), e.featureLen)
	}
	for pi, pt := range e.plan.Layout.Tables {
		// One physical access serves lookup round r of every source.
		lookups := pt.Lookups()
		for r := 0; r < lookups; r++ {
			if m := e.products[pi]; m != nil {
				// The merged table is physically materialised: one read
				// returns every source's vector, which is then scattered
				// to its spec-order feature position (Figure 5).
				if err := e.gatherMaterialized(m, pt, q, r, dst); err != nil {
					return nil, err
				}
				continue
			}
			for _, src := range pt.Sources {
				idxs := q[src.ID]
				if len(idxs) != src.Lookups {
					return nil, fmt.Errorf("core: table %q expects %d lookups, query has %d",
						src.Name, src.Lookups, len(idxs))
				}
				tab, err := e.store.Table(src.ID)
				if err != nil {
					return nil, err
				}
				v, err := tab.Lookup(idxs[r])
				if err != nil {
					return nil, err
				}
				off := e.featureOffset[src.ID] + r*src.Dim
				copy(dst[off:off+src.Dim], v)
			}
		}
	}
	return dst, nil
}

// gatherMaterialized serves lookup round r of a merged table with a single
// read of the materialised product, scattering the concatenated payload.
func (e *Engine) gatherMaterialized(m *cartesian.Materialized, pt cartesian.PhysicalTable, q embedding.Query, r int, dst []float32) error {
	scaled := make([]int64, len(pt.Sources))
	for i, src := range pt.Sources {
		idxs := q[src.ID]
		if len(idxs) != src.Lookups {
			return fmt.Errorf("core: table %q expects %d lookups, query has %d",
				src.Name, src.Lookups, len(idxs))
		}
		idx := idxs[r]
		if idx < 0 || idx >= src.Rows {
			return fmt.Errorf("core: index %d out of range for table %q (%d rows)", idx, src.Name, src.Rows)
		}
		// Map the logical index onto the capacity-scaled storage the
		// product was materialised from.
		scaled[i] = idx % e.params.ActualRows[src.ID]
	}
	payload, err := m.Lookup(scaled)
	if err != nil {
		return err
	}
	seg := 0
	for _, src := range pt.Sources {
		off := e.featureOffset[src.ID] + r*src.Dim
		copy(dst[off:off+src.Dim], payload[seg:seg+src.Dim])
		seg += src.Dim
	}
	return nil
}

// InferOne runs one query through the fixed-point datapath and returns the
// predicted CTR in [0, 1].
func (e *Engine) InferOne(q embedding.Query) (float32, error) {
	feat, err := e.Gather(q, nil)
	if err != nil {
		return 0, err
	}
	return e.forward(feat)
}

// forward runs the quantized FC tower on a float feature vector.
func (e *Engine) forward(feat []float32) (float32, error) {
	f := e.cfg.Precision
	x := make([]int64, len(feat))
	for i, v := range feat {
		x[i] = f.Quantize(float64(v))
	}
	for l, d := range e.dims {
		in, out := d[0], d[1]
		if len(x) != in {
			return 0, fmt.Errorf("core: layer %d input %d, want %d", l, len(x), in)
		}
		w := e.qweights[l]
		y := make([]int64, out)
		for j := 0; j < out; j++ {
			var acc int64
			for i := 0; i < in; i++ {
				acc = f.MulAcc(acc, x[i], w[i*out+j])
			}
			y[j] = f.Add(f.Finish(acc), e.qbiases[l][j])
		}
		if l < len(e.dims)-1 {
			fixedpoint.ReLU(y)
		}
		x = y
	}
	logit := x[0]
	return float32(f.Dequantize(f.Sigmoid(logit))), nil
}

// ReferenceOne computes the same prediction in float32 (the software
// reference used to measure quantization error).
func (e *Engine) ReferenceOne(q embedding.Query) (float32, error) {
	feat, err := e.Gather(q, nil)
	if err != nil {
		return 0, err
	}
	x := feat
	for l := range e.dims {
		y, err := tensor.MatVec(e.params.Weights[l].Transpose(), x, nil)
		if err != nil {
			return 0, err
		}
		for j := range y {
			y[j] += e.params.Biases[l][j]
		}
		if l < len(e.dims)-1 {
			tensor.ReLU(y)
		}
		x = y
	}
	out := []float32{x[0]}
	tensor.Sigmoid(out)
	return out[0], nil
}

// InferResult bundles predictions with the hardware timing model's report.
type InferResult struct {
	Predictions []float32
	Timing      TimingReport
}

// Infer runs a batch of queries: functionally through the fixed-point
// datapath, and through the timing model as a back-to-back item stream (the
// accelerator has no batching, §4.1). The functional computation splits the
// batch across goroutines, each running the blocked batch kernel with its own
// scratch — the engine is immutable after Build, so concurrent chunks are
// safe. Predictions are bit-identical to per-query InferOne.
func (e *Engine) Infer(queries []embedding.Query) (*InferResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	preds := make([]float32, len(queries))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	chunk := (len(queries) + workers - 1) / workers
	for lo := 0; lo < len(queries); lo += chunk {
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if _, err := e.inferBatch(queries[lo:hi], preds[lo:hi], nil, lo); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rep, err := e.cfg.Simulate(e.spec, e.pipelineNS, len(queries))
	if err != nil {
		return nil, err
	}
	return &InferResult{Predictions: preds, Timing: rep}, nil
}

// Timing runs only the timing model for `items` inferences (no functional
// computation), useful for large sweeps.
func (e *Engine) Timing(items int) (TimingReport, error) {
	return e.cfg.Simulate(e.spec, e.pipelineNS, items)
}

// TracePipeline simulates `items` inferences and writes a Chrome-trace JSON
// of every stage occupancy to w (open it in chrome://tracing or Perfetto to
// inspect pipeline balance).
func (e *Engine) TracePipeline(items int, w io.Writer) (TimingReport, error) {
	p, err := e.cfg.BuildPipeline(e.spec, e.pipelineNS)
	if err != nil {
		return TimingReport{}, err
	}
	events, res, err := p.Trace(items)
	if err != nil {
		return TimingReport{}, err
	}
	if err := pipesim.ChromeTrace(w, events); err != nil {
		return TimingReport{}, err
	}
	_, bottleneck := p.Bottleneck()
	return TimingReport{
		Items:                 items,
		LatencyNS:             p.FillLatencyNS(),
		SteadyIntervalNS:      p.BottleneckIntervalNS(),
		MakespanNS:            res.MakespanNS,
		ThroughputItemsPerSec: res.ThroughputPerSec,
		ThroughputGOPs:        float64(e.spec.OpsPerItem()) * float64(items) / res.MakespanNS,
		LookupNS:              e.pipelineNS,
		BottleneckStage:       bottleneck,
	}, nil
}
