package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"microrec/internal/model"
)

// randomSpec generates a small random model: table counts, dims, lookup
// cadences, dense tails and tower shapes all vary, so the batched gather's
// product strides, virtual fallbacks and GEMM tails are exercised across
// geometries no hand-written fixture would cover.
func randomSpec(rng *rand.Rand, name string) *model.Spec {
	nt := 3 + rng.Intn(5)
	tables := make([]model.TableSpec, nt)
	for i := range tables {
		tables[i] = model.TableSpec{
			ID:      i,
			Name:    fmt.Sprintf("%s-t%d", name, i),
			Rows:    int64(8 + rng.Intn(300)),
			Dim:     1 + rng.Intn(12),
			Lookups: 1 + rng.Intn(3),
		}
	}
	nh := 1 + rng.Intn(3)
	hidden := make([]int, nh)
	for i := range hidden {
		hidden[i] = 5 + rng.Intn(36)
	}
	return &model.Spec{
		Name:     name,
		Tables:   tables,
		DenseDim: rng.Intn(7),
		Hidden:   hidden,
	}
}

// TestGatherBatchMatchesGather checks that the batched table-major gather
// produces, for every query and feature position, exactly the quantized
// value of the per-query float Gather — the bit-identity contract the whole
// batched datapath rests on.
func TestGatherBatchMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []*model.Spec{model.SmallProduction(), oddSpec()}
	for i := 0; i < 4; i++ {
		specs = append(specs, randomSpec(rng, fmt.Sprintf("rand-%d", i)))
	}
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: invalid spec: %v", spec.Name, err)
		}
		cfg := ConfigFor(spec.Name, SmallFP16().Precision)
		e := buildEngine(t, spec, cfg, true)
		f := e.cfg.Precision
		var scratch BatchScratch
		for _, b := range []int{1, 3, 33, 64} {
			qs := randomQueries(spec, b, int64(100*b))
			feats, stride, err := e.GatherBatch(qs, &scratch)
			if err != nil {
				t.Fatalf("%s b=%d: %v", spec.Name, b, err)
			}
			for qi, q := range qs {
				want, err := e.Gather(q, nil)
				if err != nil {
					t.Fatal(err)
				}
				row := feats[qi*stride : qi*stride+e.featureLen]
				for k, v := range want {
					if row[k] != f.Quantize(float64(v)) {
						t.Fatalf("%s b=%d query %d feature %d: batched %d, quantized gather %d",
							spec.Name, b, qi, k, row[k], f.Quantize(float64(v)))
					}
				}
			}
		}
	}
}

// TestInferBatchPropertyRandomSpecs is the end-to-end property test: across
// random model geometries and batch sizes, the batched gather + blocked GEMM
// datapath is bit-identical to per-query InferOne — with and without a live
// hot-row cache attached (the cache must never change predictions).
func TestInferBatchPropertyRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		spec := randomSpec(rng, fmt.Sprintf("prop-%d", trial))
		cfg := ConfigFor(spec.Name, SmallFP16().Precision)
		if trial%2 == 1 {
			cfg.Precision = SmallFP32().Precision
		}
		cached := cfg
		cached.HotCacheBytes = 1 << 16
		plain := buildEngine(t, spec, cfg, true)
		withCache := buildEngine(t, spec, cached, true)
		if !withCache.HotCacheEnabled() {
			t.Fatal("hot cache not attached")
		}
		for _, b := range []int{1, 2, 5, 8, 31, 64, 67} {
			qs := randomQueries(spec, b, int64(trial*1000+b))
			got, err := plain.InferBatch(qs, nil, nil)
			if err != nil {
				t.Fatalf("%s b=%d: %v", spec.Name, b, err)
			}
			gotCached, err := withCache.InferBatch(qs, nil, nil)
			if err != nil {
				t.Fatalf("%s b=%d cached: %v", spec.Name, b, err)
			}
			for i, q := range qs {
				want, err := plain.InferOne(q)
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("%s b=%d query %d: batch %v, one-at-a-time %v", spec.Name, b, i, got[i], want)
				}
				if gotCached[i] != want {
					t.Fatalf("%s b=%d query %d: cached engine %v, want %v (cache must be transparent)",
						spec.Name, b, i, gotCached[i], want)
				}
			}
		}
		if info, ok := withCache.HotCache(); !ok || info.Hits+info.Misses == 0 {
			t.Fatalf("%s: cache saw no traffic (info=%+v ok=%v)", spec.Name, info, ok)
		}
	}
}

// TestGatherBatchSteadyStateAllocs pins the amortised cost of the gather's
// channel-sharded parallel path: the per-batch goroutine fan-out stays well
// under one allocation per query. The inline path's strict zero-allocation
// contract is pinned centrally by the consolidated //microrec:noalloc table
// in the repo root's zeroalloc_test.go.
func TestGatherBatchSteadyStateAllocs(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	var scratch BatchScratch

	parallel := randomQueries(spec, 64, 4)
	if _, _, err := e.GatherBatch(parallel, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := e.GatherBatch(parallel, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if perQuery := allocs / 64; perQuery >= 1 {
		t.Errorf("parallel gather: %v allocs per query (%v per batch), want < 1", perQuery, allocs)
	}
}

// TestGatherShardsCoverAllTables checks the channel-group sharding: every
// physical table appears in exactly one shard, and the shard count respects
// the cap.
func TestGatherShardsCoverAllTables(t *testing.T) {
	for _, spec := range []*model.Spec{model.SmallProduction(), model.LargeProduction(), oddSpec()} {
		e := buildEngine(t, spec, ConfigFor(spec.Name, SmallFP16().Precision), true)
		seen := make(map[int]int)
		for si, shard := range e.gplan.shards {
			if len(shard) == 0 {
				t.Errorf("%s: shard %d is empty", spec.Name, si)
			}
			for _, ti := range shard {
				if prev, dup := seen[ti]; dup {
					t.Errorf("%s: table %d in shards %d and %d", spec.Name, ti, prev, si)
				}
				seen[ti] = si
			}
		}
		if len(seen) != len(e.plan.Layout.Tables) {
			t.Errorf("%s: shards cover %d of %d physical tables", spec.Name, len(seen), len(e.plan.Layout.Tables))
		}
		if got := e.GatherShards(); got > maxGatherShards {
			t.Errorf("%s: %d shards, cap %d", spec.Name, got, maxGatherShards)
		}
	}
}

// TestGatherBatchParallelShards forces a multi-shard gather plan (the shard
// count is capped by GOMAXPROCS, which is 1 on single-core CI boxes) and
// checks the goroutine fan-out path produces the same bits as the per-query
// gather — with a live hot cache attached so the sharded cache is hammered
// from the gather goroutines too (run under -race).
func TestGatherBatchParallelShards(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	spec := model.SmallProduction()
	cfg := SmallFP16()
	cfg.HotCacheBytes = 1 << 16
	e := buildEngine(t, spec, cfg, true)
	if e.GatherShards() < 2 {
		t.Fatalf("want a multi-shard plan, got %d shards", e.GatherShards())
	}
	f := e.cfg.Precision
	var scratch BatchScratch
	b := 2 * gatherParallelMinBatch // well past the inline threshold
	qs := randomQueries(spec, b, 23)
	for rep := 0; rep < 3; rep++ {
		feats, stride, err := e.GatherBatch(qs, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			want, err := e.Gather(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			row := feats[qi*stride : qi*stride+e.featureLen]
			for k, v := range want {
				if row[k] != f.Quantize(float64(v)) {
					t.Fatalf("rep %d query %d feature %d: parallel %d, want %d",
						rep, qi, k, row[k], f.Quantize(float64(v)))
				}
			}
		}
	}
	if info, ok := e.HotCache(); !ok || info.Hits == 0 {
		t.Errorf("repeated batches through the sharded cache should hit (info=%+v)", info)
	}
}

// TestGatherBatchValidation checks the public GatherBatch rejects malformed
// batches with the failing query named.
func TestGatherBatchValidation(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	if _, _, err := e.GatherBatch(nil, nil); err == nil {
		t.Error("empty batch: want error")
	}
	qs := randomQueries(spec, 3, 1)
	qs[2] = qs[2][:4]
	_, _, err := e.GatherBatch(qs, nil)
	if err == nil {
		t.Fatal("malformed query: want error")
	}
	if want := "query 2"; !contains(err.Error(), want) {
		t.Errorf("error %q should name %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestHotCacheConcurrentWorkers drives one shared engine with a live hot-row
// cache from concurrent goroutines mixing batched inference and stats reads —
// the serving worker-pool pattern — and checks predictions stay bit-identical
// throughout (run under -race in CI).
func TestHotCacheConcurrentWorkers(t *testing.T) {
	spec := model.SmallProduction()
	cfg := SmallFP16()
	cfg.HotCacheBytes = 1 << 18
	e := buildEngine(t, spec, cfg, true)
	qs := randomQueries(spec, 64, 17)
	want, err := e.InferBatch(qs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var scratch BatchScratch
			preds := make([]float32, len(qs))
			for rep := 0; rep < 5; rep++ {
				if _, err := e.InferBatchValidated(qs, preds, &scratch); err != nil {
					t.Errorf("worker: %v", err)
					return
				}
				for i := range preds {
					if preds[i] != want[i] {
						t.Errorf("worker diverged at query %d", i)
						return
					}
				}
				if _, ok := e.HotCache(); !ok {
					t.Error("hot cache vanished")
					return
				}
				_ = e.EffectiveLookupNS()
			}
		}(int64(w))
	}
	wg.Wait()
	info, ok := e.HotCache()
	if !ok {
		t.Fatal("no cache info")
	}
	if info.Hits == 0 {
		t.Error("repeated identical batches should hit the cache")
	}
	if info.EffectiveLookupNS >= e.LookupNS() {
		t.Errorf("warm cache: effective lookup %v should beat cold %v", info.EffectiveLookupNS, e.LookupNS())
	}
}

// TestEffectiveLookupNS checks the hit-rate scaling of the modeled lookup
// latency: cold == plan latency, warm strictly faster, floor at the on-chip
// fraction.
func TestEffectiveLookupNS(t *testing.T) {
	spec := oddSpec()
	cfg := ConfigFor(spec.Name, SmallFP16().Precision)
	plain := buildEngine(t, spec, cfg, true)
	if got := plain.EffectiveLookupNS(); got != plain.LookupNS() {
		t.Errorf("no cache: effective %v != cold %v", got, plain.LookupNS())
	}
	if _, ok := plain.HotCache(); ok {
		t.Error("no cache expected")
	}
	cfg.HotCacheBytes = 1 << 20
	e := buildEngine(t, spec, cfg, true)
	if got := e.EffectiveLookupNS(); got != e.LookupNS() {
		t.Errorf("idle cache: effective %v != cold %v", got, e.LookupNS())
	}
	qs := randomQueries(spec, 48, 5)
	for rep := 0; rep < 4; rep++ {
		if _, err := e.InferBatch(qs, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	eff := e.EffectiveLookupNS()
	if eff >= e.LookupNS() {
		t.Errorf("warm cache: effective %v should beat cold %v", eff, e.LookupNS())
	}
	if floor := e.LookupNS() * e.gplan.hitScale; eff < floor-1e-9 {
		t.Errorf("effective %v below on-chip floor %v", eff, floor)
	}
}
