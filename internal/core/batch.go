package core

import (
	"fmt"
	"sync/atomic"

	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
	"microrec/internal/kernels"
)

// The batched datapath below is the CPU-side analogue of the paper's
// throughput argument: per-query inference streams every FC weight matrix
// from memory once per query, while a micro-batch reuses each weight block
// across the whole batch. Features arrive already quantized from GatherBatch
// (gather.go); the GEMM itself lives in internal/kernels — a column-blocked
// fixed-point kernel over the transposed (out x in) weight layout, so every
// weight access is sequential and each L2-resident block is reused by the
// whole batch, with an AVX2 path selected at init where the host supports
// it. The wide accumulators match the per-query GEMV exactly (and the
// optimized kernels are property-tested bit-identical to the portable
// reference), so batched predictions are bit-identical to InferOne.

// GatherObs is the per-batch gather observability record the flight recorder
// folds into a request span: cold-tier faults suffered by the batch's gather,
// and — when the gather was a cluster scatter — the scatter width, slowest
// shard service and merge wait. A single-engine gather leaves Shards at 0.
type GatherObs struct {
	ColdFaults  int64
	Shards      int
	ShardMaxNS  int64
	MergeWaitNS int64
}

// BatchScratch holds the reusable buffers of the batched datapath. A scratch
// is owned by one goroutine at a time; distinct goroutines must use distinct
// scratches (the engine itself stays immutable and shareable). Scratches are
// never copied by value — the embedded atomic pins that contract.
type BatchScratch struct {
	x []int64 // batch x width quantized activations (gathered features / layer input)
	y []int64 // batch x width wide accumulators / layer output

	// coldFaults accumulates tiered-store cold reads across the gather's
	// shard goroutines (atomic because shards of one batch add concurrently);
	// the gather entry point resets it and folds the total into obs.
	coldFaults atomic.Int64
	obs        GatherObs
}

// GatherObs returns the observability record of the scratch's most recent
// gather. Valid between a gather's return and the next gather on the scratch.
func (s *BatchScratch) GatherObs() GatherObs { return s.obs }

// SetGatherObs overwrites the record — the cluster coordinator uses this to
// replace a partial-gather record with the merged scatter-wide one.
func (s *BatchScratch) SetGatherObs(o GatherObs) { s.obs = o }

// ensure grows the scratch to hold a batch of b queries for engine e.
func (s *BatchScratch) ensure(e *Engine, b int) {
	n := b * e.width
	if cap(s.x) < n {
		s.x = make([]int64, n)
		s.y = make([]int64, n)
	}
	s.x = s.x[:n]
	s.y = s.y[:n]
}

// EnsurePlane sizes a scratch to hold batches of up to b queries, so later
// stage calls on it never allocate. The staged pipeline executor uses this to
// pre-allocate its ring of batch planes at construction.
func (e *Engine) EnsurePlane(s *BatchScratch, b int) { s.ensure(e, b) }

// ValidateQuery checks a query's shape and index ranges against the model
// without running inference, so servers can reject a malformed query at
// admission. The validated hot paths (InferBatchValidated, the gather loop)
// rely on this having been called exactly once per query.
func (e *Engine) ValidateQuery(q embedding.Query) error {
	if len(q) != len(e.spec.Tables) {
		return fmt.Errorf("core: query covers %d tables, model has %d", len(q), len(e.spec.Tables))
	}
	for i, t := range e.spec.Tables {
		if len(q[i]) != t.Lookups {
			return fmt.Errorf("core: table %q expects %d lookups, query has %d", t.Name, t.Lookups, len(q[i]))
		}
		for _, idx := range q[i] {
			if idx < 0 || idx >= t.Rows {
				return fmt.Errorf("core: index %d out of range for table %q (%d rows)", idx, t.Name, t.Rows)
			}
		}
	}
	return nil
}

// validateBatch runs ValidateQuery over a batch, naming the failing query
// with indexBase added (so chunked callers report caller-visible indices).
func (e *Engine) validateBatch(queries []embedding.Query, indexBase int) error {
	for i, q := range queries {
		if err := e.ValidateQuery(q); err != nil {
			return fmt.Errorf("core: query %d: %w", indexBase+i, err)
		}
	}
	return nil
}

// InferBatch runs a batch of queries through the batched fixed-point
// datapath, writing predictions into dst (allocated when nil) and returning
// it. scratch may be nil (buffers are then allocated per call); passing a
// reused scratch makes the call allocation-free in steady state. Predictions
// are bit-identical to calling InferOne per query.
func (e *Engine) InferBatch(queries []embedding.Query, dst []float32, scratch *BatchScratch) ([]float32, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	if err := e.validateBatch(queries, 0); err != nil {
		return nil, err
	}
	return e.inferBatchValidated(queries, dst, scratch)
}

// InferBatchValidated is InferBatch minus the per-query validation pass, for
// callers that already validated every query at admission (ValidateQuery) —
// the serving path validates in Submit, so its batches skip the second pass.
// Passing an unvalidated query is a contract violation: out-of-range indices
// panic rather than returning an error.
func (e *Engine) InferBatchValidated(queries []embedding.Query, dst []float32, scratch *BatchScratch) ([]float32, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	return e.inferBatchValidated(queries, dst, scratch)
}

// inferBatchValidated is the validated hot path, composed of the three stage
// entry points the pipelined executor also drives (gather plane → hidden GEMM
// tower → output tail). Running them back-to-back here IS the monolithic
// datapath, so the pipelined path is bit-identical by construction.
func (e *Engine) inferBatchValidated(queries []embedding.Query, dst []float32, scratch *BatchScratch) ([]float32, error) {
	b := len(queries)
	if dst == nil {
		dst = make([]float32, b)
	} else if len(dst) != b {
		return nil, fmt.Errorf("core: dst length %d, want %d", len(dst), b)
	}
	if scratch == nil {
		scratch = &BatchScratch{}
	}
	scratch.ensure(e, b)
	e.GatherIntoPlane(queries, scratch)
	e.DenseFromPlane(b, scratch)
	e.TailFromPlane(b, scratch, dst)
	return dst, nil
}

// GatherIntoPlane is the pipeline's first stage: the batched table-major
// gather, quantizing each embedding vector directly into the plane's feature
// rows (no intermediate float plane). Queries must have passed ValidateQuery
// and the plane must be sized (EnsurePlane or a prior stage run) for at least
// len(queries); the call then performs no validation and no allocation beyond
// the sharded gather's goroutine fan-out.
//
//microrec:noalloc
func (e *Engine) GatherIntoPlane(queries []embedding.Query, s *BatchScratch) {
	e.gatherBatchValidated(queries, s)
}

// DenseFromPlane is the pipeline's second stage: the hidden FC tower as
// blocked GEMMs over a gathered plane, ping-ponging the plane's x and y
// buffers (bias add + ReLU per hidden layer). It touches only the plane, so
// distinct planes can occupy the gather and GEMM stages concurrently.
//
//microrec:noalloc
func (e *Engine) DenseFromPlane(b int, s *BatchScratch) {
	f := e.cfg.Precision
	width := e.width
	x, y := s.x, s.y
	for l := 0; l < len(e.dims)-1; l++ {
		in, out := e.dims[l][0], e.dims[l][1]
		kernels.Gemm(x, y, b, in, out, width, e.qweightsT[l])
		bias := e.qbiases[l]
		for qi := 0; qi < b; qi++ {
			yrow := y[qi*width : qi*width+out]
			for j := range yrow {
				yrow[j] = f.Add(f.Finish(yrow[j]), bias[j])
			}
			fixedpoint.ReLU(yrow)
		}
		x, y = y, x
	}
}

// TailFromPlane is the pipeline's final stage: the output FC layer (bias, no
// ReLU) plus the sigmoid, dequantizing one prediction per query into dst.
// The hidden tower left its activations in x or y depending on layer parity;
// the same swap cadence recovers the right buffer.
//
//microrec:noalloc
func (e *Engine) TailFromPlane(b int, s *BatchScratch, dst []float32) {
	f := e.cfg.Precision
	width := e.width
	l := len(e.dims) - 1
	x, y := s.x, s.y
	if l%2 == 1 {
		x, y = y, x
	}
	in, out := e.dims[l][0], e.dims[l][1]
	kernels.Gemm(x, y, b, in, out, width, e.qweightsT[l])
	bias := e.qbiases[l]
	for qi := 0; qi < b; qi++ {
		yrow := y[qi*width : qi*width+out]
		for j := range yrow {
			yrow[j] = f.Add(f.Finish(yrow[j]), bias[j])
		}
		dst[qi] = float32(f.Dequantize(f.Sigmoid(yrow[0])))
	}
}
