package core

import (
	"fmt"

	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
)

// The batched datapath below is the CPU-side analogue of the paper's
// throughput argument: per-query inference streams every FC weight matrix
// from memory once per query, while a micro-batch reuses each weight block
// across the whole batch. The kernel is a register-blocked (4 queries x 2
// outputs), column-blocked fixed-point GEMM whose wide accumulators match
// forward() exactly, so batched predictions are bit-identical to InferOne.

// gemmColBlock is the number of output columns processed per weight pass;
// 16 columns of int64 weights keep the working set L1-resident while every
// query in the batch reuses it.
const gemmColBlock = 16

// BatchScratch holds the reusable buffers of the batched datapath. A scratch
// is owned by one goroutine at a time; distinct goroutines must use distinct
// scratches (the engine itself stays immutable and shareable).
type BatchScratch struct {
	feat []float32 // batch x featureLen gathered features
	x    []int64   // batch x maxWidth quantized activations (layer input)
	y    []int64   // batch x maxWidth wide accumulators / layer output
}

// ensure grows the scratch to hold a batch of b queries for engine e.
func (s *BatchScratch) ensure(e *Engine, b int) {
	if n := b * e.featureLen; cap(s.feat) < n {
		s.feat = make([]float32, n)
	}
	s.feat = s.feat[:b*e.featureLen]
	w := e.maxWidth()
	if n := b * w; cap(s.x) < n {
		s.x = make([]int64, n)
		s.y = make([]int64, n)
	}
	s.x = s.x[:b*w]
	s.y = s.y[:b*w]
}

// maxWidth returns the widest activation vector of the datapath (input
// feature or any layer output).
func (e *Engine) maxWidth() int {
	w := e.featureLen
	for _, d := range e.dims {
		if d[1] > w {
			w = d[1]
		}
	}
	return w
}

// ValidateQuery checks a query's shape and index ranges against the model
// without running inference, so servers can reject a malformed query before
// it joins a batch.
func (e *Engine) ValidateQuery(q embedding.Query) error {
	if len(q) != len(e.spec.Tables) {
		return fmt.Errorf("core: query covers %d tables, model has %d", len(q), len(e.spec.Tables))
	}
	for i, t := range e.spec.Tables {
		if len(q[i]) != t.Lookups {
			return fmt.Errorf("core: table %q expects %d lookups, query has %d", t.Name, t.Lookups, len(q[i]))
		}
		for _, idx := range q[i] {
			if idx < 0 || idx >= t.Rows {
				return fmt.Errorf("core: index %d out of range for table %q (%d rows)", idx, t.Name, t.Rows)
			}
		}
	}
	return nil
}

// InferBatch runs a batch of queries through the batched fixed-point
// datapath, writing predictions into dst (allocated when nil) and returning
// it. scratch may be nil (buffers are then allocated per call); passing a
// reused scratch makes the call allocation-free in steady state. Predictions
// are bit-identical to calling InferOne per query.
func (e *Engine) InferBatch(queries []embedding.Query, dst []float32, scratch *BatchScratch) ([]float32, error) {
	return e.inferBatch(queries, dst, scratch, 0)
}

// inferBatch is InferBatch with an index base for error messages, so chunked
// callers (Infer) report the caller-visible query index.
func (e *Engine) inferBatch(queries []embedding.Query, dst []float32, scratch *BatchScratch, indexBase int) ([]float32, error) {
	b := len(queries)
	if b == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	if dst == nil {
		dst = make([]float32, b)
	} else if len(dst) != b {
		return nil, fmt.Errorf("core: dst length %d, want %d", len(dst), b)
	}
	if scratch == nil {
		scratch = &BatchScratch{}
	}
	scratch.ensure(e, b)
	f := e.cfg.Precision

	// Gather + quantize each query's feature row. The dense tail of every
	// row is zeroed explicitly because the scratch is reused.
	fl := e.featureLen
	denseOff := fl - e.spec.DenseDim
	for qi, q := range queries {
		row := scratch.feat[qi*fl : (qi+1)*fl]
		for i := denseOff; i < fl; i++ {
			row[i] = 0
		}
		if _, err := e.Gather(q, row); err != nil {
			return nil, fmt.Errorf("core: query %d: %w", indexBase+qi, err)
		}
	}
	width := e.maxWidth()
	for qi := 0; qi < b; qi++ {
		row := scratch.feat[qi*fl : (qi+1)*fl]
		xrow := scratch.x[qi*width : qi*width+fl]
		for i, v := range row {
			xrow[i] = f.Quantize(float64(v))
		}
	}

	x, y := scratch.x, scratch.y
	for l, d := range e.dims {
		in, out := d[0], d[1]
		gemmBatch(x, y, b, in, out, width, e.qweights[l])
		bias := e.qbiases[l]
		last := l == len(e.dims)-1
		for qi := 0; qi < b; qi++ {
			yrow := y[qi*width : qi*width+out]
			for j := range yrow {
				yrow[j] = f.Add(f.Finish(yrow[j]), bias[j])
			}
			if !last {
				fixedpoint.ReLU(yrow)
			}
		}
		x, y = y, x
	}
	// After the swap, x holds the final layer's output (one logit per query).
	for qi := 0; qi < b; qi++ {
		logit := x[qi*width]
		dst[qi] = float32(f.Dequantize(f.Sigmoid(logit)))
	}
	return dst, nil
}

// gemmBatch computes Y = X * W for a batch of b activation rows. X and Y are
// flat with a fixed row stride (so the same buffers serve every layer); W is
// in x out row-major. Accumulation is exact wide int64, identical to
// forward()'s per-output loop. The loop nest is column-blocked so each
// L1-resident block of W is reused by all b queries, and register-blocked
// 4 queries x 2 outputs to amortize weight loads.
func gemmBatch(X, Y []int64, b, in, out, stride int, W []int64) {
	for j0 := 0; j0 < out; j0 += gemmColBlock {
		j1 := j0 + gemmColBlock
		if j1 > out {
			j1 = out
		}
		qi := 0
		for ; qi+4 <= b; qi += 4 {
			x0 := X[(qi+0)*stride : (qi+0)*stride+in]
			x1 := X[(qi+1)*stride : (qi+1)*stride+in]
			x2 := X[(qi+2)*stride : (qi+2)*stride+in]
			x3 := X[(qi+3)*stride : (qi+3)*stride+in]
			y0 := Y[(qi+0)*stride : (qi+0)*stride+out]
			y1 := Y[(qi+1)*stride : (qi+1)*stride+out]
			y2 := Y[(qi+2)*stride : (qi+2)*stride+out]
			y3 := Y[(qi+3)*stride : (qi+3)*stride+out]
			j := j0
			for ; j+2 <= j1; j += 2 {
				var a00, a01, a10, a11, a20, a21, a30, a31 int64
				wj := W[j:]
				for i := 0; i < in; i++ {
					w0 := wj[i*out]
					w1 := wj[i*out+1]
					v0, v1, v2, v3 := x0[i], x1[i], x2[i], x3[i]
					a00 += v0 * w0
					a01 += v0 * w1
					a10 += v1 * w0
					a11 += v1 * w1
					a20 += v2 * w0
					a21 += v2 * w1
					a30 += v3 * w0
					a31 += v3 * w1
				}
				y0[j], y0[j+1] = a00, a01
				y1[j], y1[j+1] = a10, a11
				y2[j], y2[j+1] = a20, a21
				y3[j], y3[j+1] = a30, a31
			}
			for ; j < j1; j++ {
				var a0, a1, a2, a3 int64
				wj := W[j:]
				for i := 0; i < in; i++ {
					w0 := wj[i*out]
					a0 += x0[i] * w0
					a1 += x1[i] * w0
					a2 += x2[i] * w0
					a3 += x3[i] * w0
				}
				y0[j], y1[j], y2[j], y3[j] = a0, a1, a2, a3
			}
		}
		for ; qi < b; qi++ {
			xr := X[qi*stride : qi*stride+in]
			yr := Y[qi*stride : qi*stride+out]
			for j := j0; j < j1; j++ {
				var acc int64
				wj := W[j:]
				for i := 0; i < in; i++ {
					acc += xr[i] * wj[i*out]
				}
				yr[j] = acc
			}
		}
	}
}
