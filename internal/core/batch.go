package core

import (
	"fmt"

	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
)

// The batched datapath below is the CPU-side analogue of the paper's
// throughput argument: per-query inference streams every FC weight matrix
// from memory once per query, while a micro-batch reuses each weight block
// across the whole batch. Features arrive already quantized from GatherBatch
// (gather.go); the kernel is a register-blocked (4 queries x 2 outputs),
// column-blocked fixed-point GEMM over the transposed (out x in) weight
// layout, so every weight access is sequential and each L2-resident block is
// reused by the whole batch. The wide accumulators match the per-query GEMV
// exactly, so batched predictions are bit-identical to InferOne.

// gemmColBlock is the number of output columns processed per weight pass;
// a block of 16 contiguous transposed weight rows stays cache-resident while
// every query in the batch reuses it.
const gemmColBlock = 16

// BatchScratch holds the reusable buffers of the batched datapath. A scratch
// is owned by one goroutine at a time; distinct goroutines must use distinct
// scratches (the engine itself stays immutable and shareable).
type BatchScratch struct {
	x []int64 // batch x width quantized activations (gathered features / layer input)
	y []int64 // batch x width wide accumulators / layer output
}

// ensure grows the scratch to hold a batch of b queries for engine e.
func (s *BatchScratch) ensure(e *Engine, b int) {
	n := b * e.width
	if cap(s.x) < n {
		s.x = make([]int64, n)
		s.y = make([]int64, n)
	}
	s.x = s.x[:n]
	s.y = s.y[:n]
}

// EnsurePlane sizes a scratch to hold batches of up to b queries, so later
// stage calls on it never allocate. The staged pipeline executor uses this to
// pre-allocate its ring of batch planes at construction.
func (e *Engine) EnsurePlane(s *BatchScratch, b int) { s.ensure(e, b) }

// ValidateQuery checks a query's shape and index ranges against the model
// without running inference, so servers can reject a malformed query at
// admission. The validated hot paths (InferBatchValidated, the gather loop)
// rely on this having been called exactly once per query.
func (e *Engine) ValidateQuery(q embedding.Query) error {
	if len(q) != len(e.spec.Tables) {
		return fmt.Errorf("core: query covers %d tables, model has %d", len(q), len(e.spec.Tables))
	}
	for i, t := range e.spec.Tables {
		if len(q[i]) != t.Lookups {
			return fmt.Errorf("core: table %q expects %d lookups, query has %d", t.Name, t.Lookups, len(q[i]))
		}
		for _, idx := range q[i] {
			if idx < 0 || idx >= t.Rows {
				return fmt.Errorf("core: index %d out of range for table %q (%d rows)", idx, t.Name, t.Rows)
			}
		}
	}
	return nil
}

// validateBatch runs ValidateQuery over a batch, naming the failing query
// with indexBase added (so chunked callers report caller-visible indices).
func (e *Engine) validateBatch(queries []embedding.Query, indexBase int) error {
	for i, q := range queries {
		if err := e.ValidateQuery(q); err != nil {
			return fmt.Errorf("core: query %d: %w", indexBase+i, err)
		}
	}
	return nil
}

// InferBatch runs a batch of queries through the batched fixed-point
// datapath, writing predictions into dst (allocated when nil) and returning
// it. scratch may be nil (buffers are then allocated per call); passing a
// reused scratch makes the call allocation-free in steady state. Predictions
// are bit-identical to calling InferOne per query.
func (e *Engine) InferBatch(queries []embedding.Query, dst []float32, scratch *BatchScratch) ([]float32, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	if err := e.validateBatch(queries, 0); err != nil {
		return nil, err
	}
	return e.inferBatchValidated(queries, dst, scratch)
}

// InferBatchValidated is InferBatch minus the per-query validation pass, for
// callers that already validated every query at admission (ValidateQuery) —
// the serving path validates in Submit, so its batches skip the second pass.
// Passing an unvalidated query is a contract violation: out-of-range indices
// panic rather than returning an error.
func (e *Engine) InferBatchValidated(queries []embedding.Query, dst []float32, scratch *BatchScratch) ([]float32, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	return e.inferBatchValidated(queries, dst, scratch)
}

// inferBatchValidated is the validated hot path, composed of the three stage
// entry points the pipelined executor also drives (gather plane → hidden GEMM
// tower → output tail). Running them back-to-back here IS the monolithic
// datapath, so the pipelined path is bit-identical by construction.
func (e *Engine) inferBatchValidated(queries []embedding.Query, dst []float32, scratch *BatchScratch) ([]float32, error) {
	b := len(queries)
	if dst == nil {
		dst = make([]float32, b)
	} else if len(dst) != b {
		return nil, fmt.Errorf("core: dst length %d, want %d", len(dst), b)
	}
	if scratch == nil {
		scratch = &BatchScratch{}
	}
	scratch.ensure(e, b)
	e.GatherIntoPlane(queries, scratch)
	e.DenseFromPlane(b, scratch)
	e.TailFromPlane(b, scratch, dst)
	return dst, nil
}

// GatherIntoPlane is the pipeline's first stage: the batched table-major
// gather, quantizing each embedding vector directly into the plane's feature
// rows (no intermediate float plane). Queries must have passed ValidateQuery
// and the plane must be sized (EnsurePlane or a prior stage run) for at least
// len(queries); the call then performs no validation and no allocation beyond
// the sharded gather's goroutine fan-out.
func (e *Engine) GatherIntoPlane(queries []embedding.Query, s *BatchScratch) {
	e.gatherBatchValidated(queries, s)
}

// DenseFromPlane is the pipeline's second stage: the hidden FC tower as
// blocked GEMMs over a gathered plane, ping-ponging the plane's x and y
// buffers (bias add + ReLU per hidden layer). It touches only the plane, so
// distinct planes can occupy the gather and GEMM stages concurrently.
func (e *Engine) DenseFromPlane(b int, s *BatchScratch) {
	f := e.cfg.Precision
	width := e.width
	x, y := s.x, s.y
	for l := 0; l < len(e.dims)-1; l++ {
		in, out := e.dims[l][0], e.dims[l][1]
		gemmBatch(x, y, b, in, out, width, e.qweightsT[l])
		bias := e.qbiases[l]
		for qi := 0; qi < b; qi++ {
			yrow := y[qi*width : qi*width+out]
			for j := range yrow {
				yrow[j] = f.Add(f.Finish(yrow[j]), bias[j])
			}
			fixedpoint.ReLU(yrow)
		}
		x, y = y, x
	}
}

// TailFromPlane is the pipeline's final stage: the output FC layer (bias, no
// ReLU) plus the sigmoid, dequantizing one prediction per query into dst.
// The hidden tower left its activations in x or y depending on layer parity;
// the same swap cadence recovers the right buffer.
func (e *Engine) TailFromPlane(b int, s *BatchScratch, dst []float32) {
	f := e.cfg.Precision
	width := e.width
	l := len(e.dims) - 1
	x, y := s.x, s.y
	if l%2 == 1 {
		x, y = y, x
	}
	in, out := e.dims[l][0], e.dims[l][1]
	gemmBatch(x, y, b, in, out, width, e.qweightsT[l])
	bias := e.qbiases[l]
	for qi := 0; qi < b; qi++ {
		yrow := y[qi*width : qi*width+out]
		for j := range yrow {
			yrow[j] = f.Add(f.Finish(yrow[j]), bias[j])
		}
		dst[qi] = float32(f.Dequantize(f.Sigmoid(yrow[0])))
	}
}

// gemmBatch computes Y = X * W for a batch of b activation rows. X and Y are
// flat with a fixed row stride (so the same buffers serve every layer); WT is
// the transposed weight matrix, out x in row-major, so output j's weights are
// the contiguous row WT[j*in : (j+1)*in] and every access below is
// sequential. Accumulation is exact wide int64 in ascending-i order,
// identical to the per-query GEMV. The loop nest is column-blocked so each
// cache-resident group of weight rows is reused by all b queries, and
// register-blocked 4 queries x 2 outputs to amortize weight loads.
func gemmBatch(X, Y []int64, b, in, out, stride int, WT []int64) {
	for j0 := 0; j0 < out; j0 += gemmColBlock {
		j1 := j0 + gemmColBlock
		if j1 > out {
			j1 = out
		}
		qi := 0
		for ; qi+4 <= b; qi += 4 {
			x0 := X[(qi+0)*stride : (qi+0)*stride+in]
			x1 := X[(qi+1)*stride : (qi+1)*stride+in]
			x2 := X[(qi+2)*stride : (qi+2)*stride+in]
			x3 := X[(qi+3)*stride : (qi+3)*stride+in]
			y0 := Y[(qi+0)*stride : (qi+0)*stride+out]
			y1 := Y[(qi+1)*stride : (qi+1)*stride+out]
			y2 := Y[(qi+2)*stride : (qi+2)*stride+out]
			y3 := Y[(qi+3)*stride : (qi+3)*stride+out]
			j := j0
			for ; j+2 <= j1; j += 2 {
				var a00, a01, a10, a11, a20, a21, a30, a31 int64
				w0 := WT[j*in : j*in+in]
				w1 := WT[(j+1)*in : (j+1)*in+in]
				for i := 0; i < in; i++ {
					wa := w0[i]
					wb := w1[i]
					v0, v1, v2, v3 := x0[i], x1[i], x2[i], x3[i]
					a00 += v0 * wa
					a01 += v0 * wb
					a10 += v1 * wa
					a11 += v1 * wb
					a20 += v2 * wa
					a21 += v2 * wb
					a30 += v3 * wa
					a31 += v3 * wb
				}
				y0[j], y0[j+1] = a00, a01
				y1[j], y1[j+1] = a10, a11
				y2[j], y2[j+1] = a20, a21
				y3[j], y3[j+1] = a30, a31
			}
			for ; j < j1; j++ {
				var a0, a1, a2, a3 int64
				w0 := WT[j*in : j*in+in]
				for i := 0; i < in; i++ {
					wa := w0[i]
					a0 += x0[i] * wa
					a1 += x1[i] * wa
					a2 += x2[i] * wa
					a3 += x3[i] * wa
				}
				y0[j], y1[j], y2[j], y3[j] = a0, a1, a2, a3
			}
		}
		for ; qi < b; qi++ {
			xr := X[qi*stride : qi*stride+in]
			yr := Y[qi*stride : qi*stride+out]
			for j := j0; j < j1; j++ {
				var acc int64
				w0 := WT[j*in : j*in+in]
				for i := 0; i < in; i++ {
					acc += xr[i] * w0[i]
				}
				yr[j] = acc
			}
		}
	}
}
