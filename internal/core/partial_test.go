package core

import (
	"fmt"
	"math/rand"
	"testing"

	"microrec/internal/model"
)

// randomPartition splits [0, n) into up to k non-empty groups.
func randomPartition(rng *rand.Rand, n, k int) [][]int {
	if k > n {
		k = n
	}
	groups := make([][]int, k)
	perm := rng.Perm(n)
	for i, ti := range perm {
		if i < k {
			groups[i] = append(groups[i], ti) // every group non-empty
			continue
		}
		g := rng.Intn(k)
		groups[g] = append(groups[g], ti)
	}
	return groups
}

// TestPartialSpansCoverEmbeddingRegion checks that a partition's merged spans
// are disjoint across groups and together cover exactly the embedding region
// [0, featureLen-denseDim) — the invariant the cluster merge relies on.
func TestPartialSpansCoverEmbeddingRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		spec := randomSpec(rng, fmt.Sprintf("span-%d", trial))
		e := buildEngine(t, spec, ConfigFor(spec.Name, SmallFP16().Precision), true)
		nt := e.PhysicalTables()
		for _, k := range []int{1, 2, 3} {
			parts := randomPartition(rng, nt, k)
			covered := make([]int, e.featureLen)
			for _, tables := range parts {
				spans, err := e.PartialSpans(tables)
				if err != nil {
					t.Fatal(err)
				}
				last := -1
				for _, sp := range spans {
					if sp.Off <= last {
						t.Fatalf("spans not ascending/merged: %+v", spans)
					}
					last = sp.Off + sp.Len - 1
					for c := sp.Off; c < sp.Off+sp.Len; c++ {
						covered[c]++
					}
				}
			}
			embEnd := e.featureLen - e.spec.DenseDim
			for c := 0; c < embEnd; c++ {
				if covered[c] != 1 {
					t.Fatalf("%s k=%d: column %d covered %d times", spec.Name, k, c, covered[c])
				}
			}
			for c := embEnd; c < e.featureLen; c++ {
				if covered[c] != 0 {
					t.Fatalf("%s k=%d: dense column %d claimed by a table span", spec.Name, k, c)
				}
			}
		}
	}
}

// TestPartialGatherMergeMatchesMonolithic is the datapath half of the
// cluster's bit-identity argument, pinned at the core layer: gathering a
// random partition's subsets into separate planes and merging their spans
// reproduces the monolithic GatherIntoPlane bit for bit.
func TestPartialGatherMergeMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		spec := randomSpec(rng, fmt.Sprintf("pmerge-%d", trial))
		e := buildEngine(t, spec, ConfigFor(spec.Name, SmallFP16().Precision), true)
		nt := e.PhysicalTables()
		for _, b := range []int{1, 5, 33} {
			qs := randomQueries(spec, b, int64(trial*100+b))
			var want BatchScratch
			e.EnsurePlane(&want, b)
			e.GatherIntoPlane(qs, &want)

			k := 1 + rng.Intn(4)
			parts := randomPartition(rng, nt, k)
			var merged BatchScratch
			e.EnsurePlane(&merged, b)
			// Poison the plane so untouched columns are caught.
			for i := range merged.x {
				merged.x[i] = -7777
			}
			e.ZeroDenseTail(b, &merged)
			for _, tables := range parts {
				var partial BatchScratch
				e.EnsurePlane(&partial, b)
				spans, err := e.PartialSpans(tables)
				if err != nil {
					t.Fatal(err)
				}
				e.GatherPartialIntoPlane(tables, qs, &partial, nil)
				e.MergePartialPlane(b, spans, &partial, &merged)
			}
			w := e.width
			for qi := 0; qi < b; qi++ {
				for c := 0; c < e.featureLen; c++ {
					if merged.x[qi*w+c] != want.x[qi*w+c] {
						t.Fatalf("%s b=%d k=%d query %d col %d: merged %d, monolithic %d",
							spec.Name, b, k, qi, c, merged.x[qi*w+c], want.x[qi*w+c])
					}
				}
			}
		}
	}
}

// TestPartialSpansErrors covers the index contract.
func TestPartialSpansErrors(t *testing.T) {
	e := buildEngine(t, model.SmallProduction(), SmallFP16(), true)
	if _, err := e.PartialSpans([]int{-1}); err == nil {
		t.Fatal("negative table index did not error")
	}
	if _, err := e.PartialSpans([]int{e.PhysicalTables()}); err == nil {
		t.Fatal("out-of-range table index did not error")
	}
}
