package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"microrec/internal/embedding"
	"microrec/internal/hotcache"
	"microrec/internal/kernels"
	"microrec/internal/memsim"
	"microrec/internal/tieredstore"
)

// This file implements the batched gather datapath: a gather plan compiled
// once at Build (per-physical-table feature offsets, materialised-product
// index scalers, channel-group shards) feeding GatherBatch, which resolves a
// whole micro-batch's lookups table-major — one pass per physical table
// across all queries — and quantizes each embedding vector directly into the
// fixed-point batch buffer. That eliminates the per-query float feature
// vector of the original Gather→quantize pipeline and every per-call
// allocation in the hot loop.
//
// Sharding mirrors the hardware: the placement plan assigns physical tables
// to HBM/DDR/on-chip banks that operate in parallel; the plan's bank ("HBM
// channel") groups are balanced into at most maxGatherShards goroutine
// shards. Tables write disjoint feature columns, so shards need no locks.

// gatherParallelMinBatch is the batch size below which GatherBatch stays on
// the calling goroutine: for small batches the per-shard spawn overhead
// exceeds the gather work (which is ~1 µs/query on the small model). The
// inline path is also strictly allocation-free, which the steady-state
// zero-alloc test relies on.
const gatherParallelMinBatch = 32

// maxGatherShards caps the goroutines one GatherBatch call fans out to.
const maxGatherShards = 8

// gatherSource is one source table's slot inside a physical table.
type gatherSource struct {
	srcID int // index into the query / spec tables
	dim   int
	// lookups is the per-inference lookup count (mirrors the physical
	// table's; kept here so the virtual path needs no parent access).
	lookups int
	// actualRows is the materialised row count: a validated logical index
	// maps onto storage as idx % actualRows (capacity scaling).
	actualRows int64
	// stride is the source's mixed-radix multiplier inside the
	// materialised product's row index (1 for the last source). Unused on
	// the virtual path.
	stride int64
	// featOff is where this source's lookup round 0 starts in the
	// concatenated feature vector; round r adds r*dim.
	featOff int
	// data is the source table's row-major storage for the virtual path
	// (nil when the physical table is materialised).
	data []float32
	// vecBytes is the byte size of one access on the virtual path.
	vecBytes int
	// cacheID is the hot-row cache's key namespace for this access stream.
	cacheID int
	// tier, when non-nil, resolves this stream's rows through the tiered
	// store instead of data (virtual path of a tiered engine).
	tier *tieredstore.Stream
}

// gatherTable is one physical table's compiled lookup recipe.
type gatherTable struct {
	lookups  int
	vecBytes int       // bytes moved by one materialised access
	dim      int64     // materialised row length (sum of source dims)
	mat      []float32 // materialised product rows; nil => virtual path
	cacheID  int       // cache key namespace of the materialised stream
	// tier, when non-nil, resolves the materialised rows through the tiered
	// store instead of mat.
	tier *tieredstore.Stream
	srcs []gatherSource
}

// gatherPlan is the whole model's compiled gather schedule.
type gatherPlan struct {
	tables []gatherTable
	// shards groups physical-table indices by the placement plan's memory
	// banks, balanced over at most maxGatherShards goroutines.
	shards [][]int
	// denseOff is where the dense tail starts in the feature vector.
	denseOff int
	// hitScale is the modeled on-chip/DRAM per-access latency ratio: a
	// hot-row cache hit costs hitScale of a DRAM access, so the effective
	// lookup latency is pipelineNS*(1 - hitRate*(1-hitScale)).
	hitScale float64
	// accessesPerItem is the total embedding-row accesses one inference
	// performs across every stream — the multiplier the tiered store's
	// per-access cold penalty scales by.
	accessesPerItem float64
}

// compileGatherPlan builds the engine's gather plan from the placement plan,
// the embedding store and the materialised products. Called once in Build.
func (e *Engine) compileGatherPlan() (gatherPlan, error) {
	layout := e.plan.Layout
	p := gatherPlan{
		tables:   make([]gatherTable, len(layout.Tables)),
		denseOff: e.featureLen - e.spec.DenseDim,
	}
	cacheID := 0
	var accBytes, accCount float64
	for pi, pt := range layout.Tables {
		gt := gatherTable{
			lookups:  pt.Lookups(),
			vecBytes: pt.VectorBytes(),
			dim:      int64(pt.Dim()),
			srcs:     make([]gatherSource, len(pt.Sources)),
		}
		for i, src := range pt.Sources {
			tab, err := e.store.Table(src.ID)
			if err != nil {
				return gatherPlan{}, err
			}
			gt.srcs[i] = gatherSource{
				srcID:      src.ID,
				dim:        src.Dim,
				lookups:    src.Lookups,
				actualRows: tab.Rows(),
				featOff:    e.featureOffset[src.ID],
				vecBytes:   src.Dim * 4,
			}
		}
		if m := e.products[pi]; m != nil {
			gt.mat = m.Data
			gt.cacheID = cacheID
			cacheID++
			// Mixed-radix strides over the materialised source row
			// counts: the first source varies slowest.
			stride := int64(1)
			for i := len(gt.srcs) - 1; i >= 0; i-- {
				gt.srcs[i].stride = stride
				stride *= gt.srcs[i].actualRows
			}
			accBytes += float64(gt.lookups * gt.vecBytes)
			accCount += float64(gt.lookups)
		} else {
			for i := range gt.srcs {
				s := &gt.srcs[i]
				tab, err := e.store.Table(s.srcID)
				if err != nil {
					return gatherPlan{}, err
				}
				s.data = tab.Data()
				s.cacheID = cacheID
				cacheID++
				accBytes += float64(s.lookups * s.vecBytes)
				accCount += float64(s.lookups)
			}
		}
		p.tables[pi] = gt
	}
	meanBytes := 0
	if accCount > 0 {
		meanBytes = int(accBytes / accCount)
	}
	p.hitScale = memsim.OnChipTiming.AccessNS(meanBytes) / memsim.HBMTiming.AccessNS(meanBytes)
	p.accessesPerItem = accCount
	p.shards = e.shardByChannelGroup()
	return p, nil
}

// attachTier opens the tiered backing store over every compiled access
// stream and points the gather plan's row resolution at it. Called from
// Build after compileGatherPlan when Config.ColdTier is set. The stream IDs
// are the plan's cacheIDs, which compileGatherPlan assigns densely in table
// order, so the spec list is already ID-sorted.
func (e *Engine) attachTier() error {
	var specs []tieredstore.StreamSpec
	for ti := range e.gplan.tables {
		gt := &e.gplan.tables[ti]
		if gt.mat != nil {
			specs = append(specs, tieredstore.StreamSpec{
				ID: gt.cacheID, Data: gt.mat, Dim: int(gt.dim), Lookups: gt.lookups,
			})
			continue
		}
		for si := range gt.srcs {
			s := &gt.srcs[si]
			specs = append(specs, tieredstore.StreamSpec{
				ID: s.cacheID, Data: s.data, Dim: s.dim, Lookups: s.lookups,
			})
		}
	}
	store, err := tieredstore.Open(*e.cfg.ColdTier, specs)
	if err != nil {
		return err
	}
	for ti := range e.gplan.tables {
		gt := &e.gplan.tables[ti]
		if gt.mat != nil {
			gt.tier = store.Stream(gt.cacheID)
			continue
		}
		for si := range gt.srcs {
			s := &gt.srcs[si]
			s.tier = store.Stream(s.cacheID)
		}
	}
	e.tier = store
	return nil
}

// shardByChannelGroup groups physical tables by their assigned memory bank
// and balances the bank groups over at most maxGatherShards shards by
// estimated per-bank access cost (longest-processing-time greedy) — the
// software analogue of the paper's parallel HBM channels.
func (e *Engine) shardByChannelGroup() [][]int {
	layout := e.plan.Layout
	byBank := make(map[int][]int)
	for ti := range layout.Tables {
		b := e.plan.BankOf[ti]
		byBank[b] = append(byBank[b], ti)
	}
	type group struct {
		tables []int
		cost   float64
	}
	groups := make([]group, 0, len(byBank))
	for b, tables := range byBank {
		g := group{tables: tables}
		for _, ti := range tables {
			pt := layout.Tables[ti]
			g.cost += float64(pt.Lookups()) * e.plan.System.Banks[b].Timing.AccessNS(pt.VectorBytes())
		}
		groups = append(groups, g)
	}
	// Deterministic order: largest cost first, ties by first table index.
	sort.SliceStable(groups, func(a, b int) bool {
		if groups[a].cost != groups[b].cost {
			return groups[a].cost > groups[b].cost
		}
		return groups[a].tables[0] < groups[b].tables[0]
	})
	n := maxGatherShards
	if p := runtime.GOMAXPROCS(0); p < n {
		n = p
	}
	if len(groups) < n {
		n = len(groups)
	}
	if n < 1 {
		n = 1
	}
	shards := make([][]int, n)
	costs := make([]float64, n)
	for _, g := range groups {
		best := 0
		for i := 1; i < n; i++ {
			if costs[i] < costs[best] {
				best = i
			}
		}
		shards[best] = append(shards[best], g.tables...)
		costs[best] += g.cost
	}
	// Drop empty shards (possible when there are fewer groups than n), and
	// put each survivor in memory-locality order: bank-grouped, index-sorted,
	// so a shard goroutine streams one bank's address range at a time.
	out := shards[:0]
	for _, s := range shards {
		if len(s) > 0 {
			out = append(out, e.plan.LocalityOrder(s))
		}
	}
	return out
}

// GatherShards reports how many parallel channel-group shards the compiled
// gather plan uses.
func (e *Engine) GatherShards() int { return len(e.gplan.shards) }

// GatherBatch resolves a whole micro-batch's embedding lookups table-major —
// one pass per physical table across all queries, sharded across goroutines
// by the placement plan's channel groups for batches of at least
// gatherParallelMinBatch — quantizing every vector directly into the
// scratch's fixed-point feature rows. It returns the quantized feature
// matrix backed by the scratch: row qi is feats[qi*stride : qi*stride+n]
// where n is the model's feature length (the dense tail is zeroed). The
// row values are bit-identical to quantizing Gather's float output.
func (e *Engine) GatherBatch(queries []embedding.Query, scratch *BatchScratch) (feats []int64, stride int, err error) {
	if len(queries) == 0 {
		return nil, 0, fmt.Errorf("core: no queries")
	}
	if err := e.validateBatch(queries, 0); err != nil {
		return nil, 0, err
	}
	if scratch == nil {
		scratch = &BatchScratch{}
	}
	scratch.ensure(e, len(queries))
	e.gatherBatchValidated(queries, scratch)
	return scratch.x, e.width, nil
}

// gatherBatchValidated is the hot gather path. Queries must already have
// passed ValidateQuery; the loop performs no validation and no allocation.
func (e *Engine) gatherBatchValidated(queries []embedding.Query, s *BatchScratch) {
	b := len(queries)
	s.coldFaults.Store(0)
	// The scratch is reused, so zero the dense tail of every feature row;
	// the embedding region is fully overwritten by the table passes.
	e.ZeroDenseTail(b, s)
	if b < gatherParallelMinBatch || len(e.gplan.shards) <= 1 {
		for _, shard := range e.gplan.shards {
			e.gatherTables(shard, queries, s, e.cache)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(e.gplan.shards))
		for _, shard := range e.gplan.shards {
			go e.gatherShard(&wg, shard, queries, s)
		}
		wg.Wait()
	}
	s.obs = GatherObs{ColdFaults: s.coldFaults.Load()}
}

func (e *Engine) gatherShard(wg *sync.WaitGroup, tables []int, queries []embedding.Query, s *BatchScratch) {
	defer wg.Done()
	e.gatherTables(tables, queries, s, e.cache)
}

// gatherTables runs the table-major gather for one shard's physical tables:
// for each table (and lookup round) it walks the whole batch, computes the
// physical row, optionally records the access against the given live hot-row
// cache, and quantizes the payload into each query's fixed-point feature row
// with the batched row-quantize kernel (one precomputed scale per row
// segment instead of a per-element Quantize call). The walk is
// prefetch-ahead: while query q's row is being quantized, query q+1's row —
// already index-resolved one step early — is hinted toward the cache
// non-temporally, so the random-access row fetch overlaps the copy instead
// of stalling it (the paper's data-movement thesis applied to a CPU gather).
// Distinct tables write disjoint feature columns, so shards never overlap.
// cache is a parameter (not always e.cache) because the cluster tier's
// partial gathers account against per-shard caches.
//
//microrec:noalloc
func (e *Engine) gatherTables(tables []int, queries []embedding.Query, s *BatchScratch, cache *hotcache.Live) {
	f := e.cfg.Precision
	w := e.width
	// Cold-tier faults accumulate in a local and fold into the scratch once
	// at the end: shards of one batch share the scratch concurrently, and one
	// atomic add per shard beats one per row.
	var cold int64
	for _, ti := range tables {
		gt := &e.gplan.tables[ti]
		if gt.mat != nil {
			dim := gt.dim
			for r := 0; r < gt.lookups; r++ {
				row := gt.matRow(queries[0], r)
				for qi := range queries {
					var next int64
					if qi+1 < len(queries) {
						next = gt.matRow(queries[qi+1], r)
						gt.prefetchMatRow(next)
					}
					if cache != nil {
						cache.Lookup(gt.cacheID, row, gt.vecBytes)
					}
					var payload []float32
					if gt.tier != nil {
						var wasCold bool
						payload, wasCold = gt.tier.RowTagged(row)
						if wasCold {
							cold++
						}
					} else {
						payload = gt.mat[row*dim : row*dim+dim]
					}
					out := s.x[qi*w : qi*w+e.featureLen]
					seg := 0
					for si := range gt.srcs {
						src := &gt.srcs[si]
						off := src.featOff + r*src.dim
						kernels.QuantizeRow(f, payload[seg:seg+src.dim], out[off:off+src.dim])
						seg += src.dim
					}
					row = next
				}
			}
			continue
		}
		for si := range gt.srcs {
			src := &gt.srcs[si]
			d := src.dim
			d64 := int64(d)
			for r := 0; r < src.lookups; r++ {
				off := src.featOff + r*d
				for qi, q := range queries {
					mrow := q[src.srcID][r] % src.actualRows
					if qi+1 < len(queries) {
						next := queries[qi+1][src.srcID][r] % src.actualRows
						src.prefetchRow(next, d64)
					}
					if cache != nil {
						cache.Lookup(src.cacheID, mrow, src.vecBytes)
					}
					var vec []float32
					if src.tier != nil {
						var wasCold bool
						vec, wasCold = src.tier.RowTagged(mrow)
						if wasCold {
							cold++
						}
					} else {
						vec = src.data[mrow*d64 : mrow*d64+d64]
					}
					out := s.x[qi*w+off : qi*w+off+d]
					kernels.QuantizeRow(f, vec, out)
				}
			}
		}
	}
	if cold != 0 {
		s.coldFaults.Add(cold)
	}
}

// matRow resolves one query's materialised-product row index for lookup
// round r: the mixed-radix combination of the per-source logical indices.
//
//microrec:noalloc
func (gt *gatherTable) matRow(q embedding.Query, r int) int64 {
	var row int64
	for si := range gt.srcs {
		src := &gt.srcs[si]
		row += (q[src.srcID][r] % src.actualRows) * src.stride
	}
	return row
}

// prefetchMatRow hints the storage of one materialised row toward the cache
// ahead of its gather: the DRAM copy directly, or the tiered store's backing
// copy for a tiered engine (which skips rows already pinned hot).
//
//microrec:noalloc
func (gt *gatherTable) prefetchMatRow(row int64) {
	if gt.tier != nil {
		gt.tier.PrefetchRow(row)
		return
	}
	kernels.PrefetchNT(gt.mat[row*gt.dim : row*gt.dim+gt.dim])
}

// prefetchRow is prefetchMatRow for a virtual (single-source) stream.
//
//microrec:noalloc
func (src *gatherSource) prefetchRow(row, dim int64) {
	if src.tier != nil {
		src.tier.PrefetchRow(row)
		return
	}
	kernels.PrefetchNT(src.data[row*dim : row*dim+dim])
}

// ---- live hot-row cache ----

// HotCacheInfo is a snapshot of the engine's live hot-row cache.
type HotCacheInfo struct {
	CapacityBytes int64
	UsedBytes     int64
	Entries       int
	Hits          int64
	Misses        int64
	// HitRate is Hits/(Hits+Misses), 0 when idle.
	HitRate float64
	// EffectiveLookupNS is the modeled per-inference lookup latency at the
	// current hit rate (LookupNS when the cache is cold or idle).
	EffectiveLookupNS float64
}

// HotCacheEnabled reports whether a live hot-row cache is attached
// (Config.HotCacheBytes > 0 at Build).
func (e *Engine) HotCacheEnabled() bool { return e.cache != nil }

// HotCache snapshots the live hot-row cache; ok is false when none is
// attached.
func (e *Engine) HotCache() (info HotCacheInfo, ok bool) {
	if e.cache == nil {
		return HotCacheInfo{}, false
	}
	st := e.cache.Stats()
	hr := st.HitRate()
	return HotCacheInfo{
		CapacityBytes:     e.cache.CapacityBytes(),
		UsedBytes:         st.UsedBytes,
		Entries:           st.Entries,
		Hits:              st.Hits,
		Misses:            st.Misses,
		HitRate:           hr,
		EffectiveLookupNS: e.effectiveLookupNS(hr),
	}, true
}

func (e *Engine) effectiveLookupNS(hitRate float64) float64 {
	return e.pipelineNS * (1 - hitRate*(1-e.gplan.hitScale))
}

// HotCacheHitRate returns the live cache's current hit rate, aggregated
// coherently under the cache's shard locks — read once per batch by the
// serving tier, which is cheap next to the gather itself; ok is false when
// no cache is attached.
func (e *Engine) HotCacheHitRate() (rate float64, ok bool) {
	if e.cache == nil {
		return 0, false
	}
	return e.cache.HitRate(), true
}

// EffectiveLookupNS returns the modeled per-inference embedding-lookup
// latency at the live hot-row cache's current hit rate: a hit costs the
// on-chip fraction of a DRAM access, so the plan latency shrinks as the
// cache warms. Without a cache or cold tier it equals LookupNS.
//
// With a tiered store attached, the observed cold-read fraction adds a
// tier-weighted penalty: accessesPerItem * (1 - cacheHitRate) *
// coldReadRate * coldLatencyNS. The on-chip cache fronts the tier, so only
// cache misses pay a backing-store access; treating the two rates as
// independent is an approximation that underestimates correlation between
// cache-missing and cold rows (both are tail rows), which the conservative
// admission bound (LookupNS) covers.
func (e *Engine) EffectiveLookupNS() float64 {
	hr := 0.0
	if e.cache != nil {
		hr = e.cache.HitRate()
	}
	ns := e.effectiveLookupNS(hr)
	if e.tier != nil {
		ns += e.gplan.accessesPerItem * (1 - hr) * e.tier.ColdReadRate() * e.tier.ColdLatencyNS()
	}
	return ns
}

// ---- tiered backing store ----

// TierStore returns the engine's tiered backing store, nil when the engine
// is all-DRAM. The cluster tier uses it to register its per-shard caches as
// placement-harvest sources.
func (e *Engine) TierStore() *tieredstore.Store { return e.tier }

// Tier snapshots the tiered store; ok is false for an all-DRAM engine.
func (e *Engine) Tier() (tieredstore.Snapshot, bool) {
	if e.tier == nil {
		return tieredstore.Snapshot{}, false
	}
	return e.tier.Snapshot(), true
}

// TierBoundNS returns the residency-weighted per-inference cold-tier
// latency bound (0 for an all-DRAM engine). See tieredstore.Store.BoundNS.
func (e *Engine) TierBoundNS() float64 {
	if e.tier == nil {
		return 0
	}
	return e.tier.BoundNS()
}

// PrefetchBatch touches the cold-tier pages a batch's gather will read,
// fanning the page faults over a few goroutines. The serving tier calls it
// from the pipeline's gather-stage Prepare hook, so a cold row's fault is
// absorbed while filling that plane only — the other in-flight planes'
// compute stages keep draining. Queries must already be validated; no-op
// for an all-DRAM engine.
func (e *Engine) PrefetchBatch(queries []embedding.Query) {
	if e.tier == nil || len(queries) == 0 {
		return
	}
	type ref struct {
		id  int
		row int64
	}
	var cold []ref
	for ti := range e.gplan.tables {
		gt := &e.gplan.tables[ti]
		if gt.mat != nil {
			for r := 0; r < gt.lookups; r++ {
				for _, q := range queries {
					row := gt.matRow(q, r)
					if !gt.tier.IsHot(row) {
						cold = append(cold, ref{gt.cacheID, row})
					}
				}
			}
			continue
		}
		for si := range gt.srcs {
			src := &gt.srcs[si]
			for r := 0; r < src.lookups; r++ {
				for _, q := range queries {
					mrow := q[src.srcID][r] % src.actualRows
					if !src.tier.IsHot(mrow) {
						cold = append(cold, ref{src.cacheID, mrow})
					}
				}
			}
		}
	}
	if len(cold) == 0 {
		return
	}
	workers := 4
	if len(cold) < 64 {
		workers = 1
	}
	chunk := (len(cold) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(cold); lo += chunk {
		hi := lo + chunk
		if hi > len(cold) {
			hi = len(cold)
		}
		wg.Add(1)
		go func(refs []ref) {
			defer wg.Done()
			for _, c := range refs {
				e.tier.Prefetch(c.id, c.row)
			}
		}(cold[lo:hi])
	}
	wg.Wait()
}
