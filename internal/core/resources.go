package core

import (
	"fmt"

	"microrec/internal/model"
)

// Resources estimates the FPGA resource utilisation of a build, mirroring
// the appendix's Table 6. Like Vivado HLS's reports, it is an estimate
// assembled from per-component contributions; constants are calibrated
// against the paper's post-route numbers (see resources_test.go for the
// tolerances achieved).
type Resources struct {
	BRAM18K  int
	DSP48E   int
	FlipFlop int
	LUT      int
	URAM     int
	ClockMHz float64
}

// U280 device totals for utilisation percentages.
const (
	U280BRAM18K = 2016
	U280DSP48E  = 9024
	U280FF      = 2607360
	U280LUT     = 1303680
	U280URAM    = 960
)

// Utilization returns each resource as a fraction of the U280's capacity.
func (r Resources) Utilization() map[string]float64 {
	return map[string]float64{
		"BRAM18K": float64(r.BRAM18K) / U280BRAM18K,
		"DSP48E":  float64(r.DSP48E) / U280DSP48E,
		"FF":      float64(r.FlipFlop) / U280FF,
		"LUT":     float64(r.LUT) / U280LUT,
		"URAM":    float64(r.URAM) / U280URAM,
	}
}

// Resource model calibration constants. Derivations:
//   - DSP: each PE holds LanesPerPE multipliers plus add-tree/accumulate
//     logic; measured totals divide to ~16 DSP/PE at 16-bit and ~18 at
//     32-bit across all four builds.
//   - BRAM: PE-local weight/accumulator buffers (~4 slices per PE after
//     synthesis sharing) plus the long per-channel DRAM FIFOs the appendix
//     discusses (12 BRAM18K per off-chip channel at 32-bit AXI width).
//   - FF/LUT: dominated by PE datapaths with a per-feature term for the
//     broadcast/gather networks and a fixed lookup/control overhead.
//   - URAM: statically provisioned weight and table partitions; the paper
//     reports identical URAM for both models, so it is a per-precision
//     design constant.
const (
	offChipChannels = 34 // 32 HBM + 2 DDR
	fifoBRAMPerChan = 12
)

// EstimateResources models the build's utilisation for a given model spec.
func (c Config) EstimateResources(spec *model.Spec) (Resources, error) {
	if err := c.Validate(); err != nil {
		return Resources{}, err
	}
	if err := spec.Validate(); err != nil {
		return Resources{}, err
	}
	pes := 1 // output-layer PE
	for _, n := range c.PEsPerLayer {
		pes += n
	}
	feat := spec.FeatureLen()

	var dspPerPE, ffPerPE, lutPerPE float64
	var bramPerPE float64
	var uram int
	if c.Precision.Bits == 16 {
		dspPerPE, bramPerPE = 16, 4.0
		ffPerPE, lutPerPE = 2300, 1550
		uram = 642
	} else {
		dspPerPE, bramPerPE = 18, 4.3
		ffPerPE, lutPerPE = 2580, 1800
		uram = 770
	}
	res := Resources{
		DSP48E:   int(dspPerPE * float64(pes)),
		BRAM18K:  int(bramPerPE*float64(pes)) + fifoBRAMPerChan*offChipChannels,
		FlipFlop: int(ffPerPE*float64(pes)) + feat*14 + 12000,
		LUT:      int(lutPerPE*float64(pes)) + feat*56 + 17000,
		URAM:     uram,
		ClockMHz: c.ClockMHz,
	}
	return res, nil
}

// AXIWidthTradeoff models the appendix's design-space note: widening the AXI
// interface from 32 to 512 bits cuts per-vector transfer cycles 16x but
// multiplies FIFO BRAM cost and degrades the achievable clock, which slows
// the (compute-bound) pipeline. It returns the FIFO BRAM slices and a clock
// estimate for a given AXI width.
func AXIWidthTradeoff(axiBits int, base Config) (fifoBRAM int, clockMHz float64, err error) {
	switch axiBits {
	case 32, 64, 128, 256, 512:
	default:
		return 0, 0, fmt.Errorf("core: unsupported AXI width %d", axiBits)
	}
	// FIFO storage grows linearly with width; the paper reports >half of
	// all BRAM at 512-bit.
	fifoBRAM = fifoBRAMPerChan * offChipChannels * axiBits / 32
	// Routing pressure degrades clock roughly 8% per doubling beyond 32.
	clockMHz = base.ClockMHz
	for w := 32; w < axiBits; w *= 2 {
		clockMHz *= 0.92
	}
	return fifoBRAM, clockMHz, nil
}
