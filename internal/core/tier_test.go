package core

import (
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"microrec/internal/model"
	"microrec/internal/tieredstore"
)

// tierTestConfig returns a build config with a manual-sweep cold tier (tests
// drive placement explicitly for determinism).
func tierTestConfig(hotBytes int64) Config {
	cfg := SmallFP16()
	cfg.ColdTier = &tieredstore.Config{
		HotBytes:   hotBytes,
		SweepEvery: -1,
	}
	return cfg
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// randomPlacement pins a random subset of every stream's rows.
func randomPlacement(store *tieredstore.Store, rng *rand.Rand, frac float64) {
	for id := 0; id < store.Streams(); id++ {
		st := store.Stream(id)
		var rows []int64
		for r := int64(0); r < st.Rows(); r++ {
			if rng.Float64() < frac {
				rows = append(rows, r)
			}
		}
		store.SetPlacement(id, rows)
	}
}

// TestTierBitIdentityRandomPlacements is the tentpole property test: gather
// and inference output must be bit-identical to the all-DRAM engine across
// random hot/cold placements, including the all-cold store.
func TestTierBitIdentityRandomPlacements(t *testing.T) {
	spec := model.SmallProduction()
	ref := buildEngine(t, spec, SmallFP16(), true)
	tiered := buildEngine(t, spec, tierTestConfig(-1), true) // all-cold budget
	defer tiered.Close()
	store := tiered.TierStore()
	if store == nil {
		t.Fatal("no tier store attached")
	}

	queries := randomQueries(spec, 64, 99)
	wantRes, err := ref.Infer(queries)
	if err != nil {
		t.Fatal(err)
	}
	wantFeat, err := ref.Gather(queries[0], nil)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	// Round 0 runs all-cold (no placement yet); later rounds pin random
	// subsets at varying fractions, including everything-hot.
	for round := 0; round < 6; round++ {
		if round > 0 {
			randomPlacement(store, rng, []float64{0.1, 0.5, 0.9, 1.0, 0.25}[round-1])
		}
		got, err := tiered.Infer(queries)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got.Predictions, wantRes.Predictions) {
			t.Fatalf("round %d: predictions diverge from all-DRAM engine", round)
		}
		feat, err := tiered.Gather(queries[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(feat, wantFeat) {
			t.Fatalf("round %d: float gather diverges", round)
		}
		p1, err := tiered.InferOne(queries[3])
		if err != nil {
			t.Fatal(err)
		}
		p2, err := ref.InferOne(queries[3])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float32bits(p1) != math.Float32bits(p2) {
			t.Fatalf("round %d: InferOne diverges", round)
		}
	}
}

// TestTierBitIdentityUnderChurn keeps repinning placements from another
// goroutine while batches run — mid-batch promotion and demotion must never
// change a prediction (the copy-on-write placement maps guarantee a gather
// holding an old map still reads valid, identical bits).
func TestTierBitIdentityUnderChurn(t *testing.T) {
	spec := model.SmallProduction()
	ref := buildEngine(t, spec, SmallFP16(), true)
	tiered := buildEngine(t, spec, tierTestConfig(0), true)
	defer tiered.Close()
	store := tiered.TierStore()

	queries := randomQueries(spec, 48, 5)
	want, err := ref.Infer(queries)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for {
			select {
			case <-stop:
				return
			default:
			}
			randomPlacement(store, rng, rng.Float64())
			for id := 0; id < store.Streams(); id++ {
				if rng.Intn(3) == 0 {
					store.SetPlacement(id, nil) // demote everything mid-flight
				}
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; time.Now().Before(deadline) || i < 5; i++ {
		got, err := tiered.Infer(queries)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got.Predictions, want.Predictions) {
			t.Fatalf("iteration %d: churn changed a prediction", i)
		}
		if i >= 200 {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestTierSweepEndToEnd drives skewed traffic through the engine, sweeps,
// and checks rows promote, the timing terms move the right way, and
// predictions stay bit-identical afterwards.
func TestTierSweepEndToEnd(t *testing.T) {
	spec := model.SmallProduction()
	ref := buildEngine(t, spec, SmallFP16(), true)
	tiered := buildEngine(t, spec, tierTestConfig(0), true)
	defer tiered.Close()
	store := tiered.TierStore()

	coldBound := tiered.TierBoundNS()
	if coldBound <= 0 {
		t.Fatal("empty hot tier must carry a positive cold bound")
	}
	if got, want := tiered.LookupNS(), ref.LookupNS()+coldBound; got != want {
		t.Fatalf("LookupNS %v, want pipeline %v + bound %v", got, ref.LookupNS(), want-ref.LookupNS())
	}

	// Skewed stream: a handful of hot queries repeated, so the live cache
	// accumulates per-entry hits for a small row set.
	hot := randomQueries(spec, 4, 7)
	for i := 0; i < 200; i++ {
		if _, err := tiered.InferOne(hot[i%len(hot)]); err != nil {
			t.Fatal(err)
		}
	}
	store.SweepNow()
	snap, ok := tiered.Tier()
	if !ok {
		t.Fatal("Tier() not ok on a tiered engine")
	}
	if snap.HotRows == 0 || snap.Promotions == 0 {
		t.Fatalf("sweep pinned nothing: %+v", snap)
	}
	if snap.HotBytes > snap.HotBudgetBytes {
		t.Fatalf("hot bytes %d exceed budget %d", snap.HotBytes, snap.HotBudgetBytes)
	}
	if tiered.TierBoundNS() >= coldBound {
		t.Fatalf("bound did not shrink after promotion: %v >= %v", tiered.TierBoundNS(), coldBound)
	}

	// Post-sweep traffic must hit the hot tier and stay bit-identical.
	want, err := ref.Infer(hot)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tiered.Infer(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Predictions, want.Predictions) {
		t.Fatal("post-sweep predictions diverge")
	}
	snap2, _ := tiered.Tier()
	if snap2.HotReads <= snap.HotReads {
		t.Fatalf("no hot-tier reads after promotion: %+v", snap2)
	}
}

// TestTierPrefetchBatch checks the prefetch pass touches exactly the cold
// rows of a batch.
func TestTierPrefetchBatch(t *testing.T) {
	spec := model.SmallProduction()
	tiered := buildEngine(t, spec, tierTestConfig(0), true)
	defer tiered.Close()

	queries := randomQueries(spec, 8, 11)
	before, _ := tiered.Tier()
	tiered.PrefetchBatch(queries)
	after, _ := tiered.Tier()
	if after.Prefetches <= before.Prefetches {
		t.Fatalf("no cold rows prefetched: %+v", after)
	}
	// Prefetching must not count as tier reads.
	if after.HotReads != before.HotReads || after.ColdReads != before.ColdReads {
		t.Fatal("prefetch perturbed the read counters")
	}
}

// TestTierEngineClose checks Close removes the cold file and is safe to call
// twice; all-DRAM engines are no-ops.
func TestTierEngineClose(t *testing.T) {
	spec := model.SmallProduction()
	tiered := buildEngine(t, spec, tierTestConfig(0), true)
	path := tiered.TierStore().Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cold file missing while open: %v", err)
	}
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("cold file survives engine Close")
	}
	if err := tiered.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	ref := buildEngine(t, spec, SmallFP16(), true)
	if err := ref.Close(); err != nil {
		t.Errorf("all-DRAM Close: %v", err)
	}
	if _, ok := ref.Tier(); ok {
		t.Error("all-DRAM engine reports a tier")
	}
}
