package core

import (
	"testing"

	"microrec/internal/model"
)

func TestProductsAreMaterialized(t *testing.T) {
	// The small model's plan merges 5 pairs; the capacity-scaled products
	// are small enough that all of them materialise physically.
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	if got := e.MaterializedProducts(); got != 5 {
		t.Errorf("materialized products = %d, want 5 (Table 3's merge count)", got)
	}
	// Without Cartesian there is nothing to materialise.
	plain := buildEngine(t, spec, SmallFP16(), false)
	if got := plain.MaterializedProducts(); got != 0 {
		t.Errorf("plain engine materialized %d products", got)
	}
}

func TestMaterializedGatherMatchesVirtual(t *testing.T) {
	// Force the virtual fallback by clearing the materialised tables and
	// compare against the materialised path: they must agree bit-exactly.
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	if e.MaterializedProducts() == 0 {
		t.Fatal("no products materialised; test is vacuous")
	}
	virtual := buildEngine(t, spec, SmallFP16(), true)
	for i := range virtual.products {
		virtual.products[i] = nil
	}
	for _, q := range randomQueries(spec, 10, 99) {
		a, err := e.Gather(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := virtual.Gather(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("materialized and virtual gathers differ at %d", k)
			}
		}
	}
}

func TestParallelInferMatchesSequential(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	qs := randomQueries(spec, 24, 7)
	batch, err := e.Infer(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := e.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Predictions[i] != single {
			t.Fatalf("query %d: parallel batch %v != sequential %v", i, batch.Predictions[i], single)
		}
	}
}

func TestParallelInferPropagatesErrors(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	qs := randomQueries(spec, 8, 7)
	qs[5][0] = []int64{spec.Tables[0].Rows + 10}
	if _, err := e.Infer(qs); err == nil {
		t.Error("bad query in batch: want error")
	}
}
