// Package core implements the MicroRec accelerator itself (§3, §4): the
// embedding lookup unit over the hybrid memory system, the deeply pipelined
// DNN computation units, and the end-to-end inference engine that combines
// functional fixed-point computation with a calibrated cycle-level timing
// model of the Alveo U280 design.
package core

import (
	"fmt"

	"microrec/internal/fixedpoint"
	"microrec/internal/tieredstore"
)

// Config describes one accelerator build, mirroring the implementation
// parameters of §4 and the appendix.
type Config struct {
	// Precision is the datapath fixed-point format (16- or 32-bit, §5.3).
	Precision fixedpoint.Format
	// ClockMHz is the achieved clock after place-and-route (Table 6:
	// 120–140 MHz depending on model and precision).
	ClockMHz float64
	// PEsPerLayer is the number of GEMM processing elements instantiated
	// for each hidden layer: (128, 128, 32) for both production models
	// (appendix).
	PEsPerLayer []int
	// LanesPerPE is the number of parallel multipliers feeding each PE's
	// add tree (§4.3). Calibrated: 12 at 16-bit, 6 at 32-bit.
	LanesPerPE int
	// ChunkOverheadCycles is the add-tree drain + pipeline overhead paid
	// per output chunk.
	ChunkOverheadCycles int
	// BroadcastWidth is the elements-per-cycle of the input feature
	// broadcast stage (§4.3).
	BroadcastWidth int
	// GatherWidth is the elements-per-cycle of the result gathering stage.
	GatherWidth int
	// FIFODepth is the depth of the inter-stage FIFOs (§4.1).
	FIFODepth int
	// OnChipBanks is the number of single-table on-chip lookup banks the
	// build instantiates (8 for the small model, 16 for the large).
	OnChipBanks int
	// HostStreamGBps, when positive, models streaming input features from
	// the host over PCIe at the given bandwidth as an extra pipeline
	// stage. Zero reproduces the paper's prototype, which caches input
	// features on the FPGA (footnote 2).
	HostStreamGBps float64
	// HotCacheBytes, when positive, attaches a live hot-row cache of the
	// given byte capacity in front of the modeled DRAM lookup path (the
	// memory-side caching the paper positions as complementary work, §6).
	// The cache is functionally transparent — it never changes
	// predictions — but its observed hit rate scales the modeled
	// embedding-lookup latency (Engine.EffectiveLookupNS).
	HotCacheBytes int64
	// ColdTier, when non-nil, backs every embedding access stream with a
	// two-tier store: frequency-hot rows pinned in a DRAM budget, the full
	// row set in an mmap'd cold file with a modeled per-access latency
	// (internal/tieredstore). Functionally transparent by construction —
	// both tiers hold identical float32 bits — while LookupNS gains the
	// residency-weighted cold bound and EffectiveLookupNS the observed
	// cold-read penalty. Engines built with a cold tier must be Closed.
	ColdTier *tieredstore.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Precision.Validate(); err != nil {
		return err
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("core: clock %v MHz", c.ClockMHz)
	}
	if len(c.PEsPerLayer) == 0 {
		return fmt.Errorf("core: no PE layers configured")
	}
	for i, n := range c.PEsPerLayer {
		if n <= 0 {
			return fmt.Errorf("core: layer %d has %d PEs", i, n)
		}
	}
	if c.LanesPerPE <= 0 {
		return fmt.Errorf("core: %d lanes per PE", c.LanesPerPE)
	}
	if c.ChunkOverheadCycles < 0 {
		return fmt.Errorf("core: negative chunk overhead")
	}
	if c.BroadcastWidth <= 0 || c.GatherWidth <= 0 {
		return fmt.Errorf("core: broadcast/gather widths must be positive")
	}
	if c.FIFODepth < 0 {
		return fmt.Errorf("core: negative FIFO depth")
	}
	if c.OnChipBanks < 0 {
		return fmt.Errorf("core: negative on-chip bank count")
	}
	if c.HostStreamGBps < 0 {
		return fmt.Errorf("core: negative host-stream bandwidth")
	}
	if c.HotCacheBytes < 0 {
		return fmt.Errorf("core: negative hot-cache capacity")
	}
	if c.ColdTier != nil {
		if err := c.ColdTier.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CycleNS returns the duration of one clock cycle in nanoseconds.
func (c Config) CycleNS() float64 { return 1e3 / c.ClockMHz }

// Build targets, matching Table 6's four configurations.

// SmallFP16 is the small production model at 16-bit fixed point, 120 MHz.
func SmallFP16() Config { return makeConfig(fixedpoint.Fixed16, 120, 8) }

// SmallFP32 is the small production model at 32-bit fixed point, 140 MHz.
func SmallFP32() Config { return makeConfig(fixedpoint.Fixed32, 140, 8) }

// LargeFP16 is the large production model at 16-bit fixed point, 120 MHz.
func LargeFP16() Config { return makeConfig(fixedpoint.Fixed16, 120, 16) }

// LargeFP32 is the large production model at 32-bit fixed point, 135 MHz.
func LargeFP32() Config { return makeConfig(fixedpoint.Fixed32, 135, 16) }

func makeConfig(f fixedpoint.Format, clockMHz float64, onChipBanks int) Config {
	cfg := Config{
		Precision:      f,
		ClockMHz:       clockMHz,
		PEsPerLayer:    []int{128, 128, 32},
		BroadcastWidth: 4,
		GatherWidth:    4,
		FIFODepth:      4,
		OnChipBanks:    onChipBanks,
	}
	if f.Bits == 16 {
		cfg.LanesPerPE = 12
		cfg.ChunkOverheadCycles = 8
	} else {
		cfg.LanesPerPE = 6
		cfg.ChunkOverheadCycles = 7
	}
	return cfg
}

// ConfigFor returns the calibrated build for a model name and precision,
// defaulting to a small-model-style build with the requested on-chip banks
// for custom models.
func ConfigFor(modelName string, precision fixedpoint.Format) Config {
	switch {
	case modelName == "production-small" && precision.Bits == 16:
		return SmallFP16()
	case modelName == "production-small" && precision.Bits == 32:
		return SmallFP32()
	case modelName == "production-large" && precision.Bits == 16:
		return LargeFP16()
	case modelName == "production-large" && precision.Bits == 32:
		return LargeFP32()
	case precision.Bits == 32:
		return makeConfig(precision, 135, 8)
	default:
		return makeConfig(precision, 120, 8)
	}
}
