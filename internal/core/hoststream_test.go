package core

import (
	"testing"

	"microrec/internal/model"
)

func TestHostStreamingHiddenAtPCIeBandwidth(t *testing.T) {
	// Footnote 2: the prototype caches features on the FPGA; a real
	// deployment streams them from the host. At PCIe-class bandwidth the
	// pipelined design hides the transfer entirely.
	spec := model.SmallProduction()
	base := SmallFP16()
	baseRep, err := base.Simulate(spec, 480, 4000)
	if err != nil {
		t.Fatal(err)
	}
	streamed := base
	streamed.HostStreamGBps = 12 // PCIe gen3 x16 effective
	streamRep, err := streamed.Simulate(spec, 480, 4000)
	if err != nil {
		t.Fatal(err)
	}
	lossless := streamRep.SteadyThroughputItemsPerSec() / baseRep.SteadyThroughputItemsPerSec()
	if lossless < 0.999 {
		t.Errorf("PCIe streaming cost %.1f%% throughput — should be hidden by the pipeline",
			100*(1-lossless))
	}
	if streamRep.LatencyNS <= baseRep.LatencyNS {
		t.Error("streaming must add some fill latency")
	}
}

func TestHostStreamingBottleneckAtLowBandwidth(t *testing.T) {
	spec := model.SmallProduction()
	cfg := SmallFP16()
	cfg.HostStreamGBps = 0.05 // pathological 50 MB/s link
	rep, err := cfg.Simulate(spec, 480, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BottleneckStage != "host-stream" {
		t.Errorf("bottleneck = %s, want host-stream at 50 MB/s", rep.BottleneckStage)
	}
}

func TestHostStreamValidation(t *testing.T) {
	cfg := SmallFP16()
	cfg.HostStreamGBps = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative bandwidth: want error")
	}
}
