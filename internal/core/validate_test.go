package core

import (
	"testing"

	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
)

// TestBuildRejectsCorruptPlans injects structural faults into an otherwise
// valid plan and requires Build to refuse each one.
func TestBuildRejectsCorruptPlans(t *testing.T) {
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 32})
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *placement.Result {
		plan, err := placement.Plan(spec, memsim.U280(8), placement.Options{EnableCartesian: true})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}

	// Sanity: the untouched plan builds.
	if _, err := Build(params, fresh(), SmallFP16()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}

	corruptions := map[string]func(*placement.Result){
		"bank out of range": func(p *placement.Result) { p.BankOf[0] = len(p.System.Banks) + 5 },
		"negative bank":     func(p *placement.Result) { p.BankOf[3] = -1 },
		"short assignment":  func(p *placement.Result) { p.BankOf = p.BankOf[:2] },
		"over capacity": func(p *placement.Result) {
			// Pile every table onto a single 256 KB on-chip bank.
			onchip := p.System.OnChipBanks()[0]
			for i := range p.BankOf {
				p.BankOf[i] = onchip
			}
		},
	}
	for name, corrupt := range corruptions {
		plan := fresh()
		corrupt(plan)
		if _, err := Build(params, plan, SmallFP16()); err == nil {
			t.Errorf("%s: Build accepted a corrupt plan", name)
		}
	}
}
