package core

import (
	"context"
	"fmt"

	"microrec/internal/embedding"
)

// StreamRequest is one query in a streaming session; Seq is echoed on the
// response so callers can correlate out-of-order completion (the engine
// preserves order, but callers shouldn't have to rely on it).
type StreamRequest struct {
	Seq   uint64
	Query embedding.Query
}

// StreamResponse carries one prediction or a per-query error.
type StreamResponse struct {
	Seq uint64
	CTR float32
	Err error
}

// Stream serves queries item by item — the deployment model of §4.1, where
// the host streams features continuously and the accelerator never batches.
// It consumes requests from in until the channel closes or ctx is cancelled,
// and emits exactly one response per request on the returned channel, in
// order. The response channel is closed when the stream drains.
func (e *Engine) Stream(ctx context.Context, in <-chan StreamRequest) <-chan StreamResponse {
	out := make(chan StreamResponse)
	go func() {
		defer close(out)
		for {
			select {
			case <-ctx.Done():
				return
			case req, ok := <-in:
				if !ok {
					return
				}
				ctr, err := e.InferOne(req.Query)
				resp := StreamResponse{Seq: req.Seq, CTR: ctr}
				if err != nil {
					resp.Err = fmt.Errorf("core: query %d: %w", req.Seq, err)
				}
				select {
				case out <- resp:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}
