package core

import (
	"math"
	"math/rand"
	"testing"

	"microrec/internal/embedding"
	"microrec/internal/fixedpoint"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
)

func buildEngine(t testing.TB, spec *model.Spec, cfg Config, cart bool) *Engine {
	t.Helper()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 256})
	if err != nil {
		t.Fatal(err)
	}
	sys := memsim.U280(cfg.OnChipBanks)
	plan, err := placement.Plan(spec, sys, placement.Options{EnableCartesian: cart})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomQueries(spec *model.Spec, n int, seed int64) []embedding.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]embedding.Query, n)
	for i := range qs {
		q := make(embedding.Query, len(spec.Tables))
		for ti, tab := range spec.Tables {
			idxs := make([]int64, tab.Lookups)
			for k := range idxs {
				idxs[k] = rng.Int63n(tab.Rows)
			}
			q[ti] = idxs
		}
		qs[i] = q
	}
	return qs
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{SmallFP16(), SmallFP32(), LargeFP16(), LargeFP32()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	bad := SmallFP16()
	bad.ClockMHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock: want error")
	}
	bad = SmallFP16()
	bad.PEsPerLayer = nil
	if err := bad.Validate(); err == nil {
		t.Error("no PEs: want error")
	}
	bad = SmallFP16()
	bad.LanesPerPE = 0
	if err := bad.Validate(); err == nil {
		t.Error("no lanes: want error")
	}
}

func TestConfigForDispatch(t *testing.T) {
	if got := ConfigFor("production-small", fixedpoint.Fixed16); got.ClockMHz != 120 || got.OnChipBanks != 8 {
		t.Errorf("small fp16 config = %+v", got)
	}
	if got := ConfigFor("production-large", fixedpoint.Fixed32); got.ClockMHz != 135 || got.OnChipBanks != 16 {
		t.Errorf("large fp32 config = %+v", got)
	}
	if got := ConfigFor("custom", fixedpoint.Fixed16); got.OnChipBanks != 8 {
		t.Errorf("custom config = %+v", got)
	}
}

func TestGemmCycles(t *testing.T) {
	// Layer 2 of the production models: 1024x512 over 128 PEs, 12 lanes,
	// 8 cycles overhead: 4 chunks * (86+8) = 376 cycles.
	if got := gemmCycles(1024, 512, 128, 12, 8); got != 376 {
		t.Errorf("gemmCycles = %d, want 376", got)
	}
	if got := gemmCycles(1, 1, 1, 1, 0); got != 1 {
		t.Errorf("gemmCycles minimal = %d, want 1", got)
	}
}

func TestAddTreeDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 6: 3, 12: 4, 16: 4}
	for lanes, want := range cases {
		if got := addTreeDepth(lanes); got != want {
			t.Errorf("addTreeDepth(%d) = %d, want %d", lanes, got, want)
		}
	}
}

// TestThroughputMatchesTable2 checks the timing model's steady-state
// throughput against the paper's Table 2 FPGA columns within 12%.
func TestThroughputMatchesTable2(t *testing.T) {
	cases := []struct {
		name      string
		spec      *model.Spec
		cfg       Config
		wantItems float64 // items/s from Table 2
		wantLatUS float64 // single-item latency, µs
	}{
		{"small-fp16", model.SmallProduction(), SmallFP16(), 3.05e5, 16.3},
		{"small-fp32", model.SmallProduction(), SmallFP32(), 1.81e5, 22.6},
		{"large-fp16", model.LargeProduction(), LargeFP16(), 1.95e5, 22.6},
		{"large-fp32", model.LargeProduction(), LargeFP32(), 1.22e5, 31.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := memsim.U280(c.cfg.OnChipBanks)
			plan, err := placement.Plan(c.spec, sys, placement.Options{EnableCartesian: true})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.cfg.Simulate(c.spec, plan.Report.LatencyNS, 10000)
			if err != nil {
				t.Fatal(err)
			}
			items := rep.SteadyThroughputItemsPerSec()
			if !memsim.ApproxEqual(items, c.wantItems, 0.12) {
				t.Errorf("throughput %.3g items/s, paper %.3g (>12%% off)", items, c.wantItems)
			}
			latUS := rep.LatencyNS / 1e3
			if !memsim.ApproxEqual(latUS, c.wantLatUS, 0.12) {
				t.Errorf("latency %.1f µs, paper %.1f (>12%% off)", latUS, c.wantLatUS)
			}
		})
	}
}

func TestBuildPipelineErrors(t *testing.T) {
	cfg := SmallFP16()
	spec := model.SmallProduction()
	bad := spec.Clone()
	bad.Hidden = []int{10, 20} // 2 layers vs 3 PE groups
	if _, err := cfg.BuildPipeline(bad, 400); err == nil {
		t.Error("layer count mismatch: want error")
	}
	badCfg := cfg
	badCfg.ClockMHz = -1
	if _, err := badCfg.BuildPipeline(spec, 400); err == nil {
		t.Error("invalid config: want error")
	}
}

func TestEngineGatherMatchesStore(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	qs := randomQueries(spec, 5, 7)
	// The engine's physical-layout gather must equal the plain
	// spec-order store gather: Cartesian merging is invisible to the
	// feature vector.
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 256})
	if err != nil {
		t.Fatal(err)
	}
	store, err := embedding.NewStore(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		got, err := e.Gather(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := store.Gather(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("gather length %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("gather[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestInferOneInRange(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	for _, q := range randomQueries(spec, 10, 3) {
		p, err := e.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Errorf("CTR prediction %v outside [0,1]", p)
		}
	}
}

func TestQuantizationErrorSmall(t *testing.T) {
	// Fixed-point predictions must track the float reference; 16-bit
	// should be within a few percent absolute CTR, 32-bit much tighter.
	spec := model.SmallProduction()
	e16 := buildEngine(t, spec, SmallFP16(), true)
	e32 := buildEngine(t, spec, SmallFP32(), true)
	var max16, max32 float64
	for _, q := range randomQueries(spec, 20, 11) {
		ref, err := e16.ReferenceOne(q)
		if err != nil {
			t.Fatal(err)
		}
		p16, err := e16.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		p32, err := e32.InferOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(float64(p16 - ref)); d > max16 {
			max16 = d
		}
		if d := math.Abs(float64(p32 - ref)); d > max32 {
			max32 = d
		}
	}
	if max16 > 0.05 {
		t.Errorf("fp16 max CTR error %.4f > 0.05", max16)
	}
	if max32 > 0.002 {
		t.Errorf("fp32 max CTR error %.5f > 0.002", max32)
	}
	if max32 > max16+1e-9 {
		t.Errorf("fp32 error %.5f exceeds fp16 error %.5f", max32, max16)
	}
}

func TestInferBatch(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	qs := randomQueries(spec, 32, 5)
	res, err := e.Infer(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 32 {
		t.Fatalf("predictions = %d", len(res.Predictions))
	}
	if res.Timing.Items != 32 {
		t.Errorf("timing items = %d", res.Timing.Items)
	}
	if res.Timing.ThroughputItemsPerSec <= 0 || res.Timing.LatencyNS <= 0 {
		t.Errorf("degenerate timing: %+v", res.Timing)
	}
	if _, err := e.Infer(nil); err == nil {
		t.Error("empty batch: want error")
	}
}

func TestInferDeterministic(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	qs := randomQueries(spec, 4, 9)
	a, err := e.Infer(qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Infer(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatal("inference is not deterministic")
		}
	}
}

func TestBuildErrors(t *testing.T) {
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 16})
	if err != nil {
		t.Fatal(err)
	}
	sys := memsim.U280(8)
	plan, err := placement.Plan(spec, sys, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(nil, plan, SmallFP16()); err == nil {
		t.Error("nil params: want error")
	}
	if _, err := Build(params, nil, SmallFP16()); err == nil {
		t.Error("nil plan: want error")
	}
	other := model.LargeProduction()
	otherPlan, err := placement.Plan(other, memsim.U280(16), placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(params, otherPlan, SmallFP16()); err == nil {
		t.Error("mismatched plan/params: want error")
	}
	bad := SmallFP16()
	bad.LanesPerPE = -1
	if _, err := Build(params, plan, bad); err == nil {
		t.Error("invalid config: want error")
	}
}

func TestGatherQueryErrors(t *testing.T) {
	spec := model.SmallProduction()
	e := buildEngine(t, spec, SmallFP16(), true)
	if _, err := e.Gather(embedding.Query{{0}}, nil); err == nil {
		t.Error("short query: want error")
	}
	q := randomQueries(spec, 1, 1)[0]
	q[0] = nil
	if _, err := e.Gather(q, nil); err == nil {
		t.Error("missing lookups: want error")
	}
	q = randomQueries(spec, 1, 1)[0]
	q[0] = []int64{spec.Tables[0].Rows + 5}
	if _, err := e.Gather(q, nil); err == nil {
		t.Error("out-of-range index: want error")
	}
	q = randomQueries(spec, 1, 1)[0]
	if _, err := e.Gather(q, make([]float32, 3)); err == nil {
		t.Error("short dst: want error")
	}
}

func TestResourcesMatchTable6(t *testing.T) {
	cases := []struct {
		name string
		spec *model.Spec
		cfg  Config
		want Resources
	}{
		{"small-fp16", model.SmallProduction(), SmallFP16(),
			Resources{BRAM18K: 1566, DSP48E: 4625, FlipFlop: 683641, LUT: 485323, URAM: 642, ClockMHz: 120}},
		{"small-fp32", model.SmallProduction(), SmallFP32(),
			Resources{BRAM18K: 1657, DSP48E: 5193, FlipFlop: 764067, LUT: 568864, URAM: 770, ClockMHz: 140}},
		{"large-fp16", model.LargeProduction(), LargeFP16(),
			Resources{BRAM18K: 1566, DSP48E: 4625, FlipFlop: 691042, LUT: 514517, URAM: 642, ClockMHz: 120}},
		{"large-fp32", model.LargeProduction(), LargeFP32(),
			Resources{BRAM18K: 1721, DSP48E: 5193, FlipFlop: 777527, LUT: 584220, URAM: 770, ClockMHz: 135}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.cfg.EstimateResources(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			check := func(label string, g, w int, tol float64) {
				if !memsim.ApproxEqual(float64(g), float64(w), tol) {
					t.Errorf("%s: modeled %d, paper %d (>%.0f%% off)", label, g, w, tol*100)
				}
			}
			check("BRAM", got.BRAM18K, c.want.BRAM18K, 0.10)
			check("DSP", got.DSP48E, c.want.DSP48E, 0.10)
			check("FF", got.FlipFlop, c.want.FlipFlop, 0.10)
			check("LUT", got.LUT, c.want.LUT, 0.10)
			check("URAM", got.URAM, c.want.URAM, 0.10)
			if got.ClockMHz != c.want.ClockMHz {
				t.Errorf("clock %v, want %v", got.ClockMHz, c.want.ClockMHz)
			}
		})
	}
}

func TestUtilizationFractions(t *testing.T) {
	r := Resources{BRAM18K: 1008, DSP48E: 4512, FlipFlop: 1303680, LUT: 651840, URAM: 480}
	u := r.Utilization()
	if u["BRAM18K"] != 0.5 || u["DSP48E"] != 0.5 || u["FF"] != 0.5 || u["LUT"] != 0.5 || u["URAM"] != 0.5 {
		t.Errorf("utilization = %v, want all 0.5", u)
	}
}

func TestAXIWidthTradeoff(t *testing.T) {
	base := SmallFP16()
	b32, c32, err := AXIWidthTradeoff(32, base)
	if err != nil {
		t.Fatal(err)
	}
	b512, c512, err := AXIWidthTradeoff(512, base)
	if err != nil {
		t.Fatal(err)
	}
	if b512 != 16*b32 {
		t.Errorf("512-bit FIFO BRAM = %d, want 16x the 32-bit %d", b512, b32)
	}
	// Appendix: at 512-bit the FIFOs consume over half of the U280's BRAM.
	if b512 <= U280BRAM18K/2 {
		t.Errorf("512-bit FIFO BRAM %d should exceed half of %d", b512, U280BRAM18K)
	}
	if c512 >= c32 {
		t.Errorf("512-bit clock %v should be below 32-bit %v", c512, c32)
	}
	if _, _, err := AXIWidthTradeoff(48, base); err == nil {
		t.Error("bad width: want error")
	}
}

func BenchmarkInferOneSmallFP16(b *testing.B) {
	spec := model.SmallProduction()
	e := buildEngine(b, spec, SmallFP16(), true)
	q := randomQueries(spec, 1, 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.InferOne(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimingModelSmall(b *testing.B) {
	spec := model.SmallProduction()
	e := buildEngine(b, spec, SmallFP16(), true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Timing(2048); err != nil {
			b.Fatal(err)
		}
	}
}
