//go:build amd64 && !noasm

#include "textflag.h"

// func gemmDot4x8(x, w *int64, stride, n int, y *int64)
//
// Four fixed-point dot products: y[r] = sum_i x[i] * w[r*stride + i] for
// r in 0..3, i in 0..n (n > 0, n % 8 == 0, caller-enforced).
//
// Operands are format-saturated raws (|v| < 2^31), so the signed low-32x32
// multiply VPMULDQ yields the exact int64 product of the int64 lanes. Eight
// ymm accumulators — rows 0..3 times even/odd lane groups — give an 8-wide
// unroll with two independent add chains per row; int64 lane sums commute
// exactly, so the final reduction is bit-identical to the scalar
// ascending-i accumulation.
TEXT ·gemmDot4x8(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), R9
	MOVQ stride+16(FP), DX
	SHLQ $3, DX              // stride in bytes
	MOVQ n+24(FP), CX
	SHRQ $3, CX              // 8-element iterations
	MOVQ y+32(FP), R8

	LEAQ (R9)(DX*1), R10     // weight row 1
	LEAQ (R10)(DX*1), R11    // weight row 2
	LEAQ (R11)(DX*1), R12    // weight row 3

	VPXOR X0, X0, X0         // row 0 even lanes (VPXOR on xmm zeroes the ymm)
	VPXOR X1, X1, X1         // row 0 odd lanes
	VPXOR X2, X2, X2         // row 1 even
	VPXOR X3, X3, X3         // row 1 odd
	VPXOR X4, X4, X4         // row 2 even
	VPXOR X5, X5, X5         // row 2 odd
	VPXOR X6, X6, X6         // row 3 even
	VPXOR X7, X7, X7         // row 3 odd

loop:
	VMOVDQU (SI), Y8         // x[i..i+3]
	VMOVDQU 32(SI), Y9       // x[i+4..i+7]

	VMOVDQU (R9), Y10
	VMOVDQU 32(R9), Y11
	VPMULDQ Y8, Y10, Y10
	VPMULDQ Y9, Y11, Y11
	VPADDQ  Y10, Y0, Y0
	VPADDQ  Y11, Y1, Y1

	VMOVDQU (R10), Y12
	VMOVDQU 32(R10), Y13
	VPMULDQ Y8, Y12, Y12
	VPMULDQ Y9, Y13, Y13
	VPADDQ  Y12, Y2, Y2
	VPADDQ  Y13, Y3, Y3

	VMOVDQU (R11), Y10
	VMOVDQU 32(R11), Y11
	VPMULDQ Y8, Y10, Y10
	VPMULDQ Y9, Y11, Y11
	VPADDQ  Y10, Y4, Y4
	VPADDQ  Y11, Y5, Y5

	VMOVDQU (R12), Y12
	VMOVDQU 32(R12), Y13
	VPMULDQ Y8, Y12, Y12
	VPMULDQ Y9, Y13, Y13
	VPADDQ  Y12, Y6, Y6
	VPADDQ  Y13, Y7, Y7

	ADDQ $64, SI
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	DECQ CX
	JNZ  loop

	// Merge even/odd chains, then horizontal-sum each row's four lanes.
	VPADDQ Y1, Y0, Y0
	VPADDQ Y3, Y2, Y2
	VPADDQ Y5, Y4, Y4
	VPADDQ Y7, Y6, Y6

	VEXTRACTI128 $1, Y0, X8
	VPADDQ       X8, X0, X0
	VPSRLDQ      $8, X0, X8
	VPADDQ       X8, X0, X0
	VMOVQ        X0, (R8)

	VEXTRACTI128 $1, Y2, X8
	VPADDQ       X8, X2, X2
	VPSRLDQ      $8, X2, X8
	VPADDQ       X8, X2, X2
	VMOVQ        X2, 8(R8)

	VEXTRACTI128 $1, Y4, X8
	VPADDQ       X8, X4, X4
	VPSRLDQ      $8, X4, X8
	VPADDQ       X8, X4, X4
	VMOVQ        X4, 16(R8)

	VEXTRACTI128 $1, Y6, X8
	VPADDQ       X8, X6, X6
	VPSRLDQ      $8, X6, X8
	VPADDQ       X8, X6, X6
	VMOVQ        X6, 24(R8)

	VZEROUPPER
	RET

// func prefetchNT(p unsafe.Pointer)
TEXT ·prefetchNT(SB), NOSPLIT, $0-8
	MOVQ       p+0(FP), AX
	PREFETCHNTA (AX)
	RET

// func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL  op+0(FP), AX
	MOVL  sub+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL  CX, CX
	XGETBV
	MOVL  AX, eax+0(FP)
	MOVL  DX, edx+4(FP)
	RET
