// Package kernels holds the innermost loops of the serving datapath — the
// fixed-point batch GEMM, the embedding row-quantize, and software prefetch —
// in two implementations selected once at init: a portable pure-Go reference
// (the loops the engine has always run, kept verbatim) and a build-tagged
// optimized path (AVX2 assembly on amd64, plus a batched pure-Go quantize).
//
// The paper's thesis is that recommendation inference is bounded by data
// movement, not FLOPs, so the inner loops must be shaped for the hardware:
// wide lanes for the GEMM inner product, one precomputed scale per embedding
// row instead of a per-element quantize call, and prefetch of the next row
// while the current one is being copied. Everything above this package — the
// scalar engine, the staged pipeline, the cluster shards, the tiered store —
// calls through the dispatch variables below and inherits whichever path the
// host supports, with zero API change.
//
// Bit-identity is the contract, not an aspiration: every optimized kernel
// must produce the exact int64 planes of the portable reference (property
// tests run both side by side). For the GEMM this holds because int64
// addition is associative and commutative even under wraparound, so lane
// reassociation cannot change the sum, and because datapath operands are
// format-saturated raws (|v| <= 2^31, Format.Bits <= 32) whose products are
// exact in 64 bits. For the quantize it holds because scaling by a power of
// two is exact in float64 and the bias trick below reproduces
// round-half-to-even exactly inside the format's representable range.
//
// Building with the `noasm` tag forces the reference path everywhere (a CI
// leg keeps that fallback working); Features reports which path is live so
// recorded baselines are attributable to the ISA that produced them.
package kernels

import (
	"strings"

	"microrec/internal/fixedpoint"
)

// GemmFunc computes Y = X * W for a batch of b activation rows. X and Y are
// flat with a fixed row stride (so the same buffers serve every layer); WT is
// the transposed weight matrix, out x in row-major, so output j's weights are
// the contiguous row WT[j*in : (j+1)*in]. Accumulation is exact wide int64.
//
// Contract: X and WT hold format-saturated raws of a validated
// fixedpoint.Format (Bits <= 32), so every operand fits in a signed 32-bit
// lane and every product is exact in int64. The engine guarantees this by
// construction — activations come out of Quantize/Finish saturation and
// weights out of calibration-time quantization.
type GemmFunc func(X, Y []int64, b, in, out, stride int, WT []int64)

// QuantizeRowFunc converts one contiguous float32 row to fixed-point raws,
// dst[i] = f.Quantize(float64(src[i])), len(dst) == len(src).
type QuantizeRowFunc func(f fixedpoint.Format, src []float32, dst []int64)

// Dispatch variables, assigned once by the build-tagged init functions below
// (and never after), so the steady-state hot loops pay one indirect call and
// no branches. Under the noasm tag no init runs and the references stay.
var (
	// Gemm is the active batch-GEMM kernel.
	Gemm GemmFunc = GemmRef
	// QuantizeRow is the active row-quantize kernel.
	QuantizeRow QuantizeRowFunc = QuantizeRowRef
)

// featureTags collects the optimized paths the init functions enabled, in
// registration order; empty means the pure reference path.
var featureTags []string

// Features reports which kernel paths are live, e.g.
// "avx2-gemm+batched-quantize+prefetch-nt", or "portable" when every
// dispatch variable still points at the reference (the noasm build, or a
// host without the required ISA). bench/loadtest record this string in their
// JSON output so committed baselines name the path that produced them.
func Features() string {
	if len(featureTags) == 0 {
		return "portable"
	}
	return strings.Join(featureTags, "+")
}

// gemmColBlock is the number of output columns processed per weight pass; a
// block of 16 contiguous transposed weight rows stays cache-resident while
// every query in the batch reuses it. Shared by the reference and the
// optimized wrapper so both walk memory in the same order.
const gemmColBlock = 16

// GemmRef is the portable reference GEMM: the register-blocked (4 queries x
// 2 outputs), column-blocked fixed-point loop the engine has always run,
// moved here verbatim. Accumulation is exact wide int64 in ascending-i
// order, identical to the per-query GEMV. The loop nest is column-blocked so
// each cache-resident group of weight rows is reused by all b queries, and
// register-blocked to amortize weight loads.
//
//microrec:noalloc
func GemmRef(X, Y []int64, b, in, out, stride int, WT []int64) {
	for j0 := 0; j0 < out; j0 += gemmColBlock {
		j1 := j0 + gemmColBlock
		if j1 > out {
			j1 = out
		}
		qi := 0
		for ; qi+4 <= b; qi += 4 {
			x0 := X[(qi+0)*stride : (qi+0)*stride+in]
			x1 := X[(qi+1)*stride : (qi+1)*stride+in]
			x2 := X[(qi+2)*stride : (qi+2)*stride+in]
			x3 := X[(qi+3)*stride : (qi+3)*stride+in]
			y0 := Y[(qi+0)*stride : (qi+0)*stride+out]
			y1 := Y[(qi+1)*stride : (qi+1)*stride+out]
			y2 := Y[(qi+2)*stride : (qi+2)*stride+out]
			y3 := Y[(qi+3)*stride : (qi+3)*stride+out]
			j := j0
			for ; j+2 <= j1; j += 2 {
				var a00, a01, a10, a11, a20, a21, a30, a31 int64
				w0 := WT[j*in : j*in+in]
				w1 := WT[(j+1)*in : (j+1)*in+in]
				for i := 0; i < in; i++ {
					wa := w0[i]
					wb := w1[i]
					v0, v1, v2, v3 := x0[i], x1[i], x2[i], x3[i]
					a00 += v0 * wa
					a01 += v0 * wb
					a10 += v1 * wa
					a11 += v1 * wb
					a20 += v2 * wa
					a21 += v2 * wb
					a30 += v3 * wa
					a31 += v3 * wb
				}
				y0[j], y0[j+1] = a00, a01
				y1[j], y1[j+1] = a10, a11
				y2[j], y2[j+1] = a20, a21
				y3[j], y3[j+1] = a30, a31
			}
			for ; j < j1; j++ {
				var a0, a1, a2, a3 int64
				w0 := WT[j*in : j*in+in]
				for i := 0; i < in; i++ {
					wa := w0[i]
					a0 += x0[i] * wa
					a1 += x1[i] * wa
					a2 += x2[i] * wa
					a3 += x3[i] * wa
				}
				y0[j], y1[j], y2[j], y3[j] = a0, a1, a2, a3
			}
		}
		for ; qi < b; qi++ {
			xr := X[qi*stride : qi*stride+in]
			yr := Y[qi*stride : qi*stride+out]
			for j := j0; j < j1; j++ {
				var acc int64
				w0 := WT[j*in : j*in+in]
				for i := 0; i < in; i++ {
					acc += xr[i] * w0[i]
				}
				yr[j] = acc
			}
		}
	}
}

// QuantizeRowRef is the portable reference row-quantize: one Format.Quantize
// call per element, exactly the loop the gather path has always run.
//
//microrec:noalloc
func QuantizeRowRef(f fixedpoint.Format, src []float32, dst []int64) {
	for i, x := range src {
		dst[i] = f.Quantize(float64(x))
	}
}
