package kernels

import (
	"math"
	"math/rand"
	"testing"

	"microrec/internal/fixedpoint"
)

// Under the noasm tag the dispatch variables still point at the references
// and these identity tests reduce to ref-vs-ref — that is intentional: the
// noasm CI leg proves the portable path itself keeps passing, while the
// default leg proves the optimized path matches it bit for bit.

// randRaw returns a random format-saturated raw value: the full signed
// 32-bit domain the GEMM contract admits, not just the values a calibrated
// model would produce, so lane-width mistakes in the optimized kernel
// (e.g. a 32x32 multiply that loses sign or high bits) cannot hide.
func randRaw(rng *rand.Rand) int64 {
	return int64(int32(rng.Uint32()))
}

// gemmCase runs one shape through GemmRef and the dispatched Gemm and
// demands identical Y planes.
func gemmCase(t *testing.T, rng *rand.Rand, b, in, out, stride int) {
	t.Helper()
	X := make([]int64, b*stride)
	for i := range X {
		X[i] = randRaw(rng)
	}
	WT := make([]int64, out*in)
	for i := range WT {
		WT[i] = randRaw(rng)
	}
	// Poison both Y planes differently so stale values cannot fake a match.
	Yref := make([]int64, b*stride)
	Yopt := make([]int64, b*stride)
	for i := range Yref {
		Yref[i] = 1<<62 + int64(i)
		Yopt[i] = -(1<<61 + int64(i))
	}
	GemmRef(X, Yref, b, in, out, stride, WT)
	Gemm(X, Yopt, b, in, out, stride, WT)
	for qi := 0; qi < b; qi++ {
		for j := 0; j < out; j++ {
			if Yref[qi*stride+j] != Yopt[qi*stride+j] {
				t.Fatalf("b=%d in=%d out=%d stride=%d: Y[%d][%d] = %d (opt) want %d (ref)",
					b, in, out, stride, qi, j, Yopt[qi*stride+j], Yref[qi*stride+j])
			}
		}
	}
}

// TestGemmBitIdentityRandomShapes sweeps random shapes whose b, in and out
// remainders exercise every unroll tail: the 8-wide element tail (in % 8),
// the 4-row tail (out % 4 and out % gemmColBlock), and the 4-query tail of
// the reference blocking (b % 4).
func TestGemmBitIdentityRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		b := 1 + rng.Intn(9)
		in := 1 + rng.Intn(70)
		out := 1 + rng.Intn(70)
		stride := in
		if out > stride {
			stride = out
		}
		stride += rng.Intn(5) // slack between rows, as in real planes
		gemmCase(t, rng, b, in, out, stride)
	}
}

// TestGemmBitIdentityEdgeShapes pins the boundary shapes: every unroll
// boundary on both sides, single rows/columns, and a plane-sized case.
func TestGemmBitIdentityEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct{ b, in, out int }{
		{1, 1, 1},
		{1, 7, 1},   // below one 8-wide step
		{1, 8, 1},   // exactly one step
		{1, 9, 1},   // step plus tail
		{3, 16, 3},  // out below the 4-row unroll
		{4, 16, 4},  // exact 4-row block
		{5, 17, 5},  // both tails
		{2, 8, 16},  // exact column block
		{2, 8, 17},  // column block plus one row
		{6, 24, 33}, // multiple column blocks plus tail
		{8, 352, 31},
	}
	for _, s := range shapes {
		stride := s.in
		if s.out > stride {
			stride = s.out
		}
		gemmCase(t, rng, s.b, s.in, s.out, stride)
	}
}

// TestGemmWraparoundIdentity drives accumulators into int64 overflow: raws
// at the 32-bit extremes over a long row make partial sums wrap. Wrapping
// addition still commutes, so the kernels must agree bit for bit even here.
func TestGemmWraparoundIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const b, in, out = 2, 2048, 4
	X := make([]int64, b*in)
	WT := make([]int64, out*in)
	extremes := []int64{math.MinInt32, math.MaxInt32}
	for i := range X {
		X[i] = extremes[rng.Intn(2)]
	}
	for i := range WT {
		WT[i] = extremes[rng.Intn(2)]
	}
	Yref := make([]int64, b*in)
	Yopt := make([]int64, b*in)
	GemmRef(X, Yref, b, in, out, in, WT)
	Gemm(X, Yopt, b, in, out, in, WT)
	for i := 0; i < b*in; i++ {
		if Yref[i] != Yopt[i] {
			t.Fatalf("wraparound: Y[%d] = %d (opt) want %d (ref)", i, Yopt[i], Yref[i])
		}
	}
}

// quantFormats are the formats the identity tests sweep: the two datapath
// formats plus odd widths FormatFor can produce.
var quantFormats = []fixedpoint.Format{
	fixedpoint.Fixed16,
	fixedpoint.Fixed32,
	{Bits: 16, Frac: 1},
	{Bits: 16, Frac: 14},
	{Bits: 32, Frac: 1},
	{Bits: 32, Frac: 30},
}

// TestQuantizeRowBitIdentity compares the dispatched QuantizeRow against the
// reference over adversarial values: exact halves (the round-to-even
// cases), saturation boundaries, NaN, infinities, subnormals, and random
// magnitudes across the whole float32 exponent range.
func TestQuantizeRowBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, f := range quantFormats {
		if err := f.Validate(); err != nil {
			t.Fatalf("bad test format %v: %v", f, err)
		}
		scale := f.Scale()
		src := []float32{
			0, float32(math.Copysign(0, -1)),
			float32(0.5 / scale), float32(-0.5 / scale), // exact .5 raws
			float32(1.5 / scale), float32(-1.5 / scale),
			float32(f.MaxValue()), float32(f.MinValue()),
			float32(f.MaxValue() * 2), float32(f.MinValue() * 2), // saturate
			float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
			math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
			math.MaxFloat32, -math.MaxFloat32,
		}
		for i := 0; i < 1000; i++ {
			mag := math.Ldexp(rng.Float64()*2-1, rng.Intn(80)-40)
			src = append(src, float32(mag))
		}
		ref := make([]int64, len(src))
		opt := make([]int64, len(src))
		QuantizeRowRef(f, src, ref)
		QuantizeRow(f, src, opt)
		for i := range src {
			if ref[i] != opt[i] {
				t.Fatalf("format %v: src[%d]=%v -> %d (opt) want %d (ref)",
					f, i, src[i], opt[i], ref[i])
			}
		}
	}
}

// TestQuantizeRowEmpty ensures the kernels accept zero-length rows.
func TestQuantizeRowEmpty(t *testing.T) {
	QuantizeRow(fixedpoint.Fixed16, nil, nil)
	QuantizeRowRef(fixedpoint.Fixed16, nil, nil)
}

// TestPrefetchNT exercises the hint path (crash-freedom is the contract:
// prefetch must tolerate any resident span and a nil row).
func TestPrefetchNT(t *testing.T) {
	PrefetchNT(nil)
	row := make([]float32, 33) // spans 3 cache lines
	PrefetchNT(row)
}

// TestFeaturesNonEmpty pins the Features contract: a non-empty string that
// is "portable" exactly when no optimized path was installed.
func TestFeaturesNonEmpty(t *testing.T) {
	s := Features()
	if s == "" {
		t.Fatal("Features() empty")
	}
	if (len(featureTags) == 0) != (s == "portable") {
		t.Fatalf("Features() = %q with tags %v", s, featureTags)
	}
	t.Logf("kernel features: %s", s)
}
