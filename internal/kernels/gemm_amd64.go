//go:build amd64 && !noasm

package kernels

func init() {
	if hasAVX2() {
		Gemm = gemmAVX2
		featureTags = append(featureTags, "avx2-gemm")
	}
	// The prefetch stub is plain SSE (PREFETCHNTA), available on every
	// amd64; see prefetch_amd64.go.
	prefetchLine = prefetchNT
	featureTags = append(featureTags, "prefetch-nt")
}

// cpuid executes CPUID with the given leaf and subleaf; implemented in
// kernels_amd64.s.
func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE); implemented in kernels_amd64.s.
func xgetbv() (eax, edx uint32)

// hasAVX2 reports whether the CPU supports AVX2 and the OS preserves the
// YMM state across context switches (OSXSAVE set and XCR0 enabling both
// SSE and AVX state), the standard dance before touching 256-bit registers.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit, avxBit = 1 << 27, 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 { // XMM and YMM state both OS-managed
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// gemmDot4x8 is the AVX2 inner kernel (kernels_amd64.s): four dot products
// of one activation row x against the four consecutive transposed weight
// rows starting at w (each stride elements long), over the first n elements
// (n > 0, n % 8 == 0), written to y[0..3]. Eight ymm accumulators — two per
// weight row, four int64 lanes each — with VPMULDQ providing the exact
// signed 32x32->64 products; lane sums are reduced at the end, which is
// exact reassociation of the reference's ascending-i sum.
//
//go:noescape
func gemmDot4x8(x, w *int64, stride, n int, y *int64)

// gemmAVX2 is the optimized batch GEMM: the same column-blocked walk as
// GemmRef (so weight-block cache residency is preserved), with the inner
// product handed to the 4-row x 8-wide assembly kernel. Unroll tails — the
// in%8 element remainder and the out%4 row remainder — run the reference
// scalar loops; int64 addition commutes exactly, so the split cannot change
// a single bit of the result.
//
//microrec:noalloc
func gemmAVX2(X, Y []int64, b, in, out, stride int, WT []int64) {
	n8 := in &^ 7
	for j0 := 0; j0 < out; j0 += gemmColBlock {
		j1 := j0 + gemmColBlock
		if j1 > out {
			j1 = out
		}
		for qi := 0; qi < b; qi++ {
			x := X[qi*stride : qi*stride+in]
			y := Y[qi*stride : qi*stride+out]
			j := j0
			for ; j+4 <= j1; j += 4 {
				if n8 > 0 {
					gemmDot4x8(&x[0], &WT[j*in], in, n8, &y[j])
				} else {
					y[j], y[j+1], y[j+2], y[j+3] = 0, 0, 0, 0
				}
				for i := n8; i < in; i++ {
					v := x[i]
					y[j+0] += v * WT[(j+0)*in+i]
					y[j+1] += v * WT[(j+1)*in+i]
					y[j+2] += v * WT[(j+2)*in+i]
					y[j+3] += v * WT[(j+3)*in+i]
				}
			}
			for ; j < j1; j++ {
				var acc int64
				w := WT[j*in : j*in+in]
				for i := 0; i < in; i++ {
					acc += x[i] * w[i]
				}
				y[j] = acc
			}
		}
	}
}
