//go:build amd64 && !noasm

package kernels

import "unsafe"

// prefetchNT issues PREFETCHNTA for the line containing p; implemented in
// kernels_amd64.s. Installed as prefetchLine by the amd64 init.
//
//go:noescape
func prefetchNT(p unsafe.Pointer)
