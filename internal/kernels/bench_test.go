package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"microrec/internal/fixedpoint"
)

// BenchmarkGEMMKernel measures the active GEMM against the reference on the
// production-small layer shapes, so kernel wins (and regressions) are
// visible independently of the serving stack. MACs/ns is the figure to
// watch; the paper's per-core throughput argument lives or dies here.
func BenchmarkGEMMKernel(b *testing.B) {
	shapes := []struct{ batch, in, out int }{
		{64, 352, 1024}, // production-small layer 1
		{64, 1024, 512}, // layer 2
		{64, 512, 256},  // layer 3
		{1, 1024, 512},  // latency-bound single query
	}
	impls := []struct {
		name string
		fn   GemmFunc
	}{
		{"ref", GemmRef},
		{"active/" + Features(), Gemm},
	}
	for _, s := range shapes {
		stride := s.in
		if s.out > stride {
			stride = s.out
		}
		rng := rand.New(rand.NewSource(1))
		X := make([]int64, s.batch*stride)
		Y := make([]int64, s.batch*stride)
		WT := make([]int64, s.out*s.in)
		for i := range X {
			X[i] = int64(int32(rng.Uint32() >> 16)) // small raws, as calibrated
		}
		for i := range WT {
			WT[i] = int64(int32(rng.Uint32() >> 16))
		}
		macs := float64(s.batch) * float64(s.in) * float64(s.out)
		for _, impl := range impls {
			b.Run(fmt.Sprintf("%s/b%d_%dx%d", impl.name, s.batch, s.in, s.out), func(b *testing.B) {
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					impl.fn(X, Y, s.batch, s.in, s.out, stride, WT)
				}
				b.ReportMetric(macs*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "MACs/ns")
			})
		}
	}
}

// BenchmarkQuantizeRow measures the active row-quantize against the
// reference at the gather path's working sizes (one embedding vector, one
// materialised product row).
func BenchmarkQuantizeRow(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{8, 32, 352} {
		src := make([]float32, n)
		dst := make([]int64, n)
		for i := range src {
			src[i] = rng.Float32()*16 - 8
		}
		impls := []struct {
			name string
			fn   QuantizeRowFunc
		}{
			{"ref", QuantizeRowRef},
			{"active/" + Features(), QuantizeRow},
		}
		for _, impl := range impls {
			b.Run(fmt.Sprintf("%s/n%d", impl.name, n), func(b *testing.B) {
				b.SetBytes(int64(n * 4))
				for i := 0; i < b.N; i++ {
					impl.fn(fixedpoint.Fixed16, src, dst)
				}
			})
		}
	}
}
