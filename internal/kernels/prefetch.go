package kernels

import "unsafe"

// cacheLineBytes is the prefetch granularity. 64 bytes on every CPU this
// code targets; a wrong guess only costs an extra hint.
const cacheLineBytes = 64

// prefetchLine is the active single-line prefetch, a no-op unless an
// architecture init installed a real hint instruction. Indirect-call cost is
// ~2ns, negligible against the ~100ns DRAM access it hides; the no-op
// default keeps the portable build free of unsafe assumptions.
var prefetchLine = func(p unsafe.Pointer) {}

// PrefetchNT hints the cache lines of one embedding row (or any contiguous
// float32 span) for a near-future read, non-temporally where the ISA allows:
// gathered rows are quantized once and never re-read, so they should stream
// past the cache hierarchy rather than evict hot weights. The gather loop
// calls this for query q+1's row while copying query q's; the tiered store
// calls it for a cold row's mmap'd bytes after faulting the page in.
//
// No-op on a nil/empty row, under the noasm tag, and on architectures
// without a wired hint. Never faults: prefetch instructions are hints, so
// issuing one for a not-yet-resident mmap page is safe.
//
//microrec:noalloc
func PrefetchNT(row []float32) {
	if len(row) == 0 {
		return
	}
	p := unsafe.Pointer(&row[0])
	n := uintptr(len(row)) * unsafe.Sizeof(row[0])
	for off := uintptr(0); off < n; off += cacheLineBytes {
		prefetchLine(unsafe.Add(p, off))
	}
}
