//go:build !noasm

package kernels

import "microrec/internal/fixedpoint"

func init() {
	QuantizeRow = quantizeRowBatch
	featureTags = append(featureTags, "batched-quantize")
}

// rtBias is 1.5 * 2^52: adding it to a float64 v with |v| < 2^51 lands the
// sum in [2^52, 2^53), where the float64 ULP is exactly 1, so the add itself
// rounds v to the nearest integer under the IEEE-754 default
// round-half-to-even mode — the same rounding math.RoundToEven implements
// with bit manipulation, for the cost of two additions. (2^52 alone would
// only work for non-negative v: sums just below 2^52 have a 0.5 ULP.)
const rtBias = 1<<52 + 1<<51

// quantizeRowBatch converts a whole row with one precomputed scale and clamp
// pair, replacing the per-element Format.Quantize call (which re-derives the
// scale, runs a NaN test through math, and rounds by exponent surgery).
//
// Bit-identity with QuantizeRowRef:
//   - float32→float64 conversion and scaling by 2^Frac are both exact, so v
//     here is the exact value Quantize rounds;
//   - for |v| < 2^51 the rtBias round-trip is exactly round-half-to-even;
//   - for |v| >= 2^51 the round-trip may be off by a few ULP, but any such t
//     still lies far beyond the clamp bounds (|raw| < 2^31 for every
//     validated format), so both paths saturate to the same raw;
//   - NaN and ±Inf are handled before/by the clamps exactly as in Quantize.
//
// The loop is branch-light and inlines the whole format state into
// registers; on amd64 it compiles to a multiply, two adds and two compares
// per element.
//
//microrec:noalloc
func quantizeRowBatch(f fixedpoint.Format, src []float32, dst []int64) {
	scale := f.Scale()
	maxRaw := int64(1)<<uint(f.Bits-1) - 1
	minRaw := -(int64(1) << uint(f.Bits-1))
	maxF, minF := float64(maxRaw), float64(minRaw)
	dst = dst[:len(src)]
	for i, x := range src {
		v := float64(x) * scale
		if v != v { // NaN quantizes to zero
			dst[i] = 0
			continue
		}
		t := (v + rtBias) - rtBias
		if t > maxF {
			dst[i] = maxRaw
			continue
		}
		if t < minF {
			dst[i] = minRaw
			continue
		}
		dst[i] = int64(t)
	}
}
