package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// IsMutex reports whether t (or the type it points to) is sync.Mutex or
// sync.RWMutex, and whether it is the RW flavor.
func IsMutex(t types.Type) (isMutex, isRW bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// ExprPath renders a selector chain rooted at an identifier as a stable
// string ("s.shards.mu"). It returns ok=false for anything else — indexed
// paths, call results, parenthesized trees — because those do not name one
// lock identity an analyzer can safely track.
func ExprPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := ExprPath(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// PathRoot returns the leading identifier of a rendered ExprPath.
func PathRoot(path string) string {
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i]
	}
	return path
}

// FuncsOf yields every function with a body in the package: declarations
// first, in file order. Function literals are not included — analyzers that
// care about them walk bodies themselves.
func FuncsOf(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// RecvIdent returns the name of fd's receiver identifier, or "" when fd is
// not a method or the receiver is anonymous.
func RecvIdent(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// HasDirective reports whether the declaration's doc comment block contains
// the given //microrec:* directive line (exact match after trimming).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// CalleeFunc resolves a call expression to the *types.Func it invokes, when
// it statically invokes one (method calls and direct function calls; not
// calls through function-typed variables or interfaces when the concrete
// method is unknown — for those it returns the interface method).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: sync.OnceFunc, atomic.AddInt64, ...
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FuncPkgPath returns the import path of the package a function belongs to,
// or "" for builtins.
func FuncPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}
