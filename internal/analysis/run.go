package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// Run executes every analyzer over every package of prog and returns the
// surviving diagnostics in file/line order. Phase one walks packages in
// dependency order calling Run (local checks and fact collection); phase two
// revisits them calling RunPost where defined, with the complete fact set
// available. Findings on a line carrying a `//microrec:allow <name>` comment
// for the reporting analyzer are suppressed — the escape hatch for the rare
// deliberate violation, kept grep'able.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	r := &run{
		facts:  make(map[factKey]any),
		shared: make(map[*Analyzer]map[string]any),
	}
	for phase := 0; phase < 2; phase++ {
		for _, pkg := range prog.Packages {
			for _, a := range analyzers {
				fn := a.Run
				if phase == 1 {
					fn = a.RunPost
				}
				if fn == nil {
					continue
				}
				pass := &Pass{
					Analyzer: a,
					Fset:     prog.Fset,
					Files:    pkg.Syntax,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					run:      r,
				}
				if err := fn(pass); err != nil {
					return nil, err
				}
			}
		}
	}

	allowed := allowLines(prog)
	var kept []Diagnostic
	for _, d := range r.diagnostics {
		pos := prog.Fset.Position(d.Pos)
		if names, ok := allowed[lineKey{pos.Filename, pos.Line}]; ok && names[d.Analyzer.Name] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := prog.Fset.Position(kept[i].Pos), prog.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

type lineKey struct {
	file string
	line int
}

// allowLines indexes every `//microrec:allow name[,name...]` comment by the
// file/line it sits on.
func allowLines(prog *Program) map[lineKey]map[string]bool {
	out := make(map[lineKey]map[string]bool)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//microrec:allow")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					if out[k] == nil {
						out[k] = make(map[string]bool)
					}
					for _, name := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
						out[k][name] = true
					}
				}
			}
		}
	}
	return out
}

// Position is a convenience wrapper for formatting a diagnostic's location.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}
