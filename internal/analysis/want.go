package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the fixture harness needs; declared here so
// the harness can live in the non-test build without importing testing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunWant loads the fixture package at pkgdir (relative to the calling
// test's working directory, conventionally testdata/src/<name>), runs the
// analyzers over it, and diffs the diagnostics against `// want "regexp"`
// comments in the fixture: every want must be matched by a diagnostic on its
// line, and every diagnostic must match a want. This is the analysistest
// contract, so fixtures carry both flagged variants (with wants) and
// accepted variants (without) of each bug class.
func RunWant(t TB, analyzers []*Analyzer, pkgdir string) {
	t.Helper()
	prog, err := Load(".", "./"+strings.TrimPrefix(pkgdir, "./"))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgdir, err)
	}
	diags, err := Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", pkgdir, err)
	}

	type want struct {
		rx      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[lineKey][]*want)
	// Only fixture-package files carry expectations; dependencies (if the
	// fixture ever grows any) are not scanned.
	fixture := prog.Packages[len(prog.Packages)-1]
	for _, f := range fixture.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, raw := range splitQuoted(text) {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[k] = append(wants[k], &want{rx: rx, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		var hit bool
		for _, w := range wants[k] {
			if w.rx.MatchString(d.Message) {
				w.matched = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer.Name, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %s, got none", k.file, k.line, w.raw)
			}
		}
	}
}

// splitQuoted extracts the sequence of double-quoted strings from a want
// comment's tail, honoring backslash escapes inside them.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		if s[i] != '"' {
			continue
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			break
		}
		out = append(out, s[i:j+1])
		i = j
	}
	if len(out) == 0 {
		// Malformed want comment: surface it as an impossible pattern so the
		// harness reports it rather than silently ignoring the expectation.
		out = append(out, fmt.Sprintf("%q", "malformed want: "+s))
	}
	return out
}
