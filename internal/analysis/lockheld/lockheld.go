// Package lockheld reports sync.Mutex/RWMutex locks held across blocking
// operations — a channel send or receive, a default-less select, or a call
// into the network stack. Holding a lock across any of these couples every
// other lock holder to an unbounded wait: exactly the PR 4 bug, where
// pipeline Submit held the executor's RLock while receiving a plane from the
// free ring, so a full ring stalled Close (and with it every Stats reader)
// behind in-flight batches.
//
// The analyzer is deliberately conservative in the direction of silence:
// lock identities are tracked only for plain selector paths (s.mu — not
// s.shards[i].mu), branch-local acquisitions are not propagated past the
// branch, and an unlock on any branch of a conditional counts as an unlock.
// False negatives are possible; a report is always worth reading. The rare
// deliberate violation is suppressed with //microrec:allow lockheld on the
// reported line.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"

	"microrec/internal/analysis"
)

// Analyzer is the lockheld analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "reports mutexes held across blocking channel operations or network calls",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncsOf(pass.Files) {
		if fd.Body == nil {
			continue
		}
		checkBody(pass, fd.Body)
	}
	// Function literals run on their own schedule (goroutines, callbacks),
	// so each body is analyzed independently with an empty lock set.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkBody(pass, fl.Body)
			}
			return true
		})
	}
	return nil
}

// held tracks the lock paths currently believed held, keyed by ExprPath.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	walkStmts(pass, body.List, make(held))
}

// walkStmts scans a statement list in order, maintaining the held-lock set.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, h held) {
	for _, s := range stmts {
		walkStmt(pass, s, h)
	}
}

func walkStmt(pass *analysis.Pass, s ast.Stmt, h held) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if path, op, ok := lockOp(pass, call); ok {
				switch op {
				case opLock:
					h[path] = call.Pos()
				case opUnlock:
					delete(h, path)
				}
				return
			}
		}
		checkExpr(pass, st.X, h)

	case *ast.SendStmt:
		report(pass, st.Arrow, h, "blocking channel send")
		checkExpr(pass, st.Chan, h)
		checkExpr(pass, st.Value, h)

	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			checkExpr(pass, e, h)
		}
		for _, e := range st.Lhs {
			checkExpr(pass, e, h)
		}

	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool { return inspectExpr(pass, n, h) })

	case *ast.ReturnStmt:
		for _, e := range st.Results {
			checkExpr(pass, e, h)
		}

	case *ast.IncDecStmt:
		checkExpr(pass, st.X, h)

	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end — exactly
		// the shape that turns a blocking send into the PR 4 bug — so it
		// must NOT clear the held set. Deferred call arguments, however,
		// are evaluated now.
		if _, op, ok := lockOp(pass, st.Call); ok && op == opUnlock {
			return
		}
		for _, a := range st.Call.Args {
			checkExpr(pass, a, h)
		}

	case *ast.GoStmt:
		// The spawned body runs elsewhere; only the arguments are
		// evaluated under the current locks.
		for _, a := range st.Call.Args {
			checkExpr(pass, a, h)
		}

	case *ast.IfStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, h)
		}
		thenHeld := h.clone()
		// `if mu.TryLock() { ... }` holds mu inside the then-branch only.
		if call, ok := st.Cond.(*ast.CallExpr); ok {
			if path, op, ok := lockOp(pass, call); ok && op == opTryLock {
				thenHeld[path] = call.Pos()
			}
		}
		checkExpr(pass, st.Cond, h)
		branches := []held{thenHeld}
		walkStmts(pass, st.Body.List, thenHeld)
		if st.Else != nil {
			elseHeld := h.clone()
			branches = append(branches, elseHeld)
			walkStmt(pass, st.Else, elseHeld)
		}
		releaseBranchUnlocks(h, branches)

	case *ast.ForStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, h)
		}
		if st.Cond != nil {
			checkExpr(pass, st.Cond, h)
		}
		body := h.clone()
		walkStmts(pass, st.Body.List, body)
		releaseBranchUnlocks(h, []held{body})

	case *ast.RangeStmt:
		if isChanType(pass, st.X) {
			report(pass, st.For, h, "range over channel")
		}
		checkExpr(pass, st.X, h)
		body := h.clone()
		walkStmts(pass, st.Body.List, body)
		releaseBranchUnlocks(h, []held{body})

	case *ast.SelectStmt:
		blocking := true
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false
			}
		}
		if blocking {
			report(pass, st.Select, h, "blocking select")
		}
		var branches []held
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			b := h.clone()
			branches = append(branches, b)
			walkStmts(pass, cc.Body, b)
		}
		releaseBranchUnlocks(h, branches)

	case *ast.SwitchStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, h)
		}
		if st.Tag != nil {
			checkExpr(pass, st.Tag, h)
		}
		walkCaseBodies(pass, st.Body, h)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, h)
		}
		walkCaseBodies(pass, st.Body, h)

	case *ast.BlockStmt:
		walkStmts(pass, st.List, h)

	case *ast.LabeledStmt:
		walkStmt(pass, st.Stmt, h)
	}
}

func walkCaseBodies(pass *analysis.Pass, body *ast.BlockStmt, h held) {
	var branches []held
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b := h.clone()
		branches = append(branches, b)
		walkStmts(pass, cc.Body, b)
	}
	releaseBranchUnlocks(h, branches)
}

// releaseBranchUnlocks removes from h any lock that at least one branch
// released: the optimistic merge that keeps conditional-unlock patterns
// (early-return error paths) from producing false positives downstream.
func releaseBranchUnlocks(h held, branches []held) {
	for path := range h {
		for _, b := range branches {
			if _, still := b[path]; !still {
				delete(h, path)
				break
			}
		}
	}
}

// checkExpr inspects an expression tree (skipping function literals) for
// blocking operations performed while locks are held.
func checkExpr(pass *analysis.Pass, e ast.Expr, h held) {
	ast.Inspect(e, func(n ast.Node) bool { return inspectExpr(pass, n, h) })
}

func inspectExpr(pass *analysis.Pass, n ast.Node, h held) bool {
	switch x := n.(type) {
	case *ast.FuncLit:
		return false
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			report(pass, x.OpPos, h, "blocking channel receive")
		}
	case *ast.CallExpr:
		if name, ok := blockingCall(pass, x); ok {
			report(pass, x.Pos(), h, "call to "+name+" (may block)")
		}
	}
	return true
}

func report(pass *analysis.Pass, pos token.Pos, h held, what string) {
	for path := range h {
		pass.Reportf(pos, "%s held across %s", path, what)
	}
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opTryLock
)

// lockOp classifies a call as a mutex acquisition/release on a trackable
// path. Indexed or computed receivers return ok=false and are not tracked.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (path string, op lockOpKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	case "TryLock", "TryRLock":
		op = opTryLock
	default:
		return "", 0, false
	}
	recv := ast.Unparen(sel.X)
	t, okT := pass.Info.Types[recv]
	if !okT {
		return "", 0, false
	}
	if isMu, _ := analysis.IsMutex(t.Type); !isMu {
		// Embedded mutex: s.Lock() where s's type embeds sync.Mutex still
		// resolves the method to sync; track the embedding value's path.
		selInfo, okS := pass.Info.Selections[sel]
		if !okS || selInfo.Obj().Pkg() == nil || selInfo.Obj().Pkg().Path() != "sync" {
			return "", 0, false
		}
	}
	p, okP := analysis.ExprPath(recv)
	if !okP {
		return "", 0, false
	}
	return p, op, true
}

// blockingCall reports whether the call may block indefinitely: WaitGroup
// and Cond waits, time.Sleep, and anything in the net / net/http packages.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	f := analysis.CalleeFunc(pass.Info, call)
	if f == nil {
		return "", false
	}
	switch analysis.FuncPkgPath(f) {
	case "net", "net/http":
		return f.FullName(), true
	case "time":
		if f.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if f.Name() == "Wait" {
			return f.FullName(), true
		}
	}
	return "", false
}

// isChanType reports whether e's type is a channel.
func isChanType(pass *analysis.Pass, e ast.Expr) bool {
	t, ok := pass.Info.Types[e]
	if !ok || t.Type == nil {
		return false
	}
	_, isChan := t.Type.Underlying().(*types.Chan)
	return isChan
}
