package lockheld_test

import (
	"testing"

	"microrec/internal/analysis"
	"microrec/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	analysis.RunWant(t, []*analysis.Analyzer{lockheld.Analyzer}, "testdata/src/a")
}
