// Package a is the lockheld fixture: flagged and accepted variants of every
// shape the analyzer covers. The flagged shapes are real bug classes — the
// first pair below is the exact PR 4 pipeline.Submit bug.
package a

import (
	"net"
	"sync"
	"time"
)

type ring struct {
	mu        sync.RWMutex
	closed    bool
	accepting sync.WaitGroup
	free      chan *int
	out       chan *int
	done      chan struct{}
}

// submitBad is the PR 4 bug shape: the read lock (kept by the deferred
// RUnlock) is held across both the blocking ring receive and the queue send.
func (r *ring) submitBad(v *int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return false
	}
	p := <-r.free // want "r\\.mu held across blocking channel receive"
	_ = p
	r.out <- v // want "r\\.mu held across blocking channel send"
	return true
}

// submitGood is the accept-gate fix: the lock covers only the closed check
// and the accounting; every blocking operation happens after RUnlock.
func (r *ring) submitGood(v *int) bool {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return false
	}
	r.accepting.Add(1)
	r.mu.RUnlock()
	defer r.accepting.Done()
	p := <-r.free
	_ = p
	r.out <- v
	return true
}

// selectBad blocks in a default-less select with the write lock held.
func (r *ring) selectBad() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want "r\\.mu held across blocking select"
	case <-r.done:
	case v := <-r.free:
		_ = v
	}
}

// selectGood has a default clause: the select cannot block, and neither can
// anything in its arms here.
func (r *ring) selectGood() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-r.done:
	default:
	}
}

// rangeBad drains a channel while holding the lock.
func (r *ring) rangeBad() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for v := range r.free { // want "r\\.mu held across range over channel"
		_ = v
	}
}

// waitBad parks on a WaitGroup with the lock held.
func (r *ring) waitBad() {
	r.mu.Lock()
	r.accepting.Wait() // want "held across call to \\(\\*sync\\.WaitGroup\\)\\.Wait"
	r.mu.Unlock()
}

// sleepBad holds the lock across a sleep (a bounded stall, but every other
// lock user pays it).
func (r *ring) sleepBad() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want "held across call to time\\.Sleep"
	r.mu.Unlock()
}

// netBad performs a network call under the lock.
func (r *ring) netBad() {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, err := net.Dial("tcp", "localhost:1") // want "held across call to net\\.Dial"
	if err == nil {
		c.Close() // want "held across call to \\(net\\.Conn\\)\\.Close"
	}
}

// branchUnlockGood releases on the early-return branch; the send below runs
// unlocked on both paths.
func (r *ring) branchUnlockGood(v *int) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.out <- v
}

// tryLockBad holds a try-acquired lock across a blocking send inside the
// success branch.
func (r *ring) tryLockBad(v *int) {
	if r.mu.TryLock() {
		defer r.mu.Unlock()
		r.out <- v // want "r\\.mu held across blocking channel send"
	}
}

// goroutineGood: the literal's body runs on its own goroutine with its own
// (empty) lock context; the spawn itself does not block.
func (r *ring) goroutineGood(v *int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.out <- v
	}()
}

// unlockedSendGood is the baseline: blocking operations with no lock held.
func (r *ring) unlockedSendGood(v *int) {
	p := <-r.free
	_ = p
	r.out <- v
}

// shardedGood locks an indexed mutex the analyzer does not track: per-shard
// lock identity cannot be named statically, so no report (documented false
// negative, never a false positive).
type sharded struct {
	shards [4]struct {
		mu sync.Mutex
	}
	out chan int
}

func (s *sharded) shardedGood(i int) {
	s.shards[i].mu.Lock()
	s.out <- i
	s.shards[i].mu.Unlock()
}
