package atomicfield_test

import (
	"testing"

	"microrec/internal/analysis"
	"microrec/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysis.RunWant(t, []*analysis.Analyzer{atomicfield.Analyzer}, "testdata/src/a")
}
