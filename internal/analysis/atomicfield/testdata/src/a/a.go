// Package a is the atomicfield fixture: a field accessed through sync/atomic
// in one function must never be touched plainly in another — the torn-stats
// bug class — and typed atomics must never be copied.
package a

import "sync/atomic"

type counter struct {
	n     int64 // atomic everywhere
	plain int64 // never atomic: plain access is fine
	typed atomic.Int64
	ptr   atomic.Pointer[counter]
}

// incr is the sanctioning site: &c.n reaching atomic.AddInt64 marks n as an
// atomic field program-wide.
func incr(c *counter) {
	atomic.AddInt64(&c.n, 1)
}

// loadBad reads n without the atomic package: a racy read the race detector
// only catches when the interleaving cooperates.
func loadBad(c *counter) int64 {
	return c.n // want "field n is accessed with sync/atomic elsewhere"
}

// storeBad writes n plainly.
func storeBad(c *counter) {
	c.n = 0 // want "field n is accessed with sync/atomic elsewhere"
}

// atomicGood uses the atomic package everywhere: both the sanctioned sites
// and a second atomic reader are fine.
func atomicGood(c *counter) int64 {
	return atomic.LoadInt64(&c.n)
}

// initGood: composite-literal keys are pre-publication initialization, not
// shared access.
func initGood() *counter {
	return &counter{n: 0, plain: 1}
}

// plainGood: a field never touched atomically may be accessed plainly.
func plainGood(c *counter) int64 {
	c.plain++
	return c.plain
}

// typedGood: typed atomics used through their methods, or by address.
func typedGood(c *counter) int64 {
	c.typed.Add(1)
	p := &c.typed
	_ = p
	if old := c.ptr.Load(); old != nil {
		return old.typed.Load()
	}
	return c.typed.Load()
}

// typedCopyBad copies a typed atomic out of its struct: the copy is a
// detached snapshot that silently stops being atomic with the original.
func typedCopyBad(c *counter) int64 {
	cp := c.typed // want "typed atomic field typed copied or accessed non-atomically"
	return cp.Load()
}
