// Package atomicfield enforces all-or-nothing atomicity on struct fields:
// a field that is accessed through sync/atomic anywhere in the program must
// never be read or written plainly anywhere else. A single plain load
// against a field that racing writers update atomically is a data race the
// race detector only catches when the interleaving cooperates — the torn
// hotcache.Live.Stats counters fixed in PR 6 were exactly this class.
//
// Two shapes are checked:
//
//   - Old-style fields (plain int64/uint64/pointer passed to atomic.AddX,
//     LoadX, StoreX, SwapX, CompareAndSwapX): the collect phase records
//     every field whose address reaches such a call; the report phase then
//     flags every other selector touching that field. Composite-literal
//     keys are exempt (pre-publication initialization).
//   - Typed atomics (atomic.Int64, atomic.Uint64, atomic.Pointer[T], ...):
//     plain access is only expressible by copying the struct, so any use of
//     such a field other than a method call or taking its address is
//     flagged.
//
// The tree itself uses typed atomics exclusively; the old-style rule exists
// because one regressed call site is all it takes to reintroduce the class.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"microrec/internal/analysis"
)

// Analyzer is the atomicfield analysis.
var Analyzer = &analysis.Analyzer{
	Name:    "atomicfield",
	Doc:     "reports plain accesses to struct fields that are accessed atomically elsewhere",
	Run:     collect,
	RunPost: report,
}

// collect records, program-wide, every field whose address is passed to a
// sync/atomic function, and sanctions those call sites so the report phase
// does not flag them. It also performs the (purely local) typed-atomic
// misuse check.
func collect(pass *analysis.Pass) error {
	shared := pass.Shared()
	fields, _ := shared["fields"].(map[*types.Var]bool)
	if fields == nil {
		fields = make(map[*types.Var]bool)
		shared["fields"] = fields
	}
	sanctioned, _ := shared["sanctioned"].(map[*ast.SelectorExpr]bool)
	if sanctioned == nil {
		sanctioned = make(map[*ast.SelectorExpr]bool)
		shared["sanctioned"] = sanctioned
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if !isAtomicCall(pass, x) || len(x.Args) == 0 {
					return true
				}
				un, ok := ast.Unparen(x.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					return true
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if fv := fieldOf(pass, sel); fv != nil {
					fields[fv] = true
					sanctioned[sel] = true
				}
			case *ast.SelectorExpr:
				checkTypedAtomic(pass, f, x)
			}
			return true
		})
	}
	return nil
}

// report flags plain accesses to collected fields; it runs after every
// package's collect, so a field made atomic in one package poisons plain
// accesses in all of them.
func report(pass *analysis.Pass) error {
	shared := pass.Shared()
	fields, _ := shared["fields"].(map[*types.Var]bool)
	sanctioned, _ := shared["sanctioned"].(map[*ast.SelectorExpr]bool)
	if len(fields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := fieldOf(pass, sel)
			if fv == nil || !fields[fv] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere; non-atomic access", fv.Name())
			return true
		})
	}
	return nil
}

// checkTypedAtomic flags uses of a typed-atomic field (atomic.Int64 etc.)
// that are neither a method call nor an address-of — i.e. copies.
func checkTypedAtomic(pass *analysis.Pass, file *ast.File, sel *ast.SelectorExpr) {
	// Only the INNER selector (s.ctr) matters; s.ctr.Load resolves the
	// outer selector to a method, which fieldOf rejects.
	fv := fieldOf(pass, sel)
	if fv == nil || !isTypedAtomic(fv.Type()) {
		return
	}
	if ok := usedSafely(file, sel); !ok {
		pass.Reportf(sel.Sel.Pos(), "typed atomic field %s copied or accessed non-atomically (use its methods or take its address)", fv.Name())
	}
}

// usedSafely reports whether sel's immediate parent is a method selector or
// an address-of operation.
func usedSafely(file *ast.File, sel *ast.SelectorExpr) bool {
	safe := false
	ast.Inspect(file, func(n ast.Node) bool {
		if safe {
			return false
		}
		switch p := n.(type) {
		case *ast.SelectorExpr:
			if ast.Unparen(p.X) == sel {
				safe = true
				return false
			}
		case *ast.UnaryExpr:
			if p.Op.String() == "&" && ast.Unparen(p.X) == sel {
				safe = true
				return false
			}
		}
		return true
	})
	return safe
}

// fieldOf resolves a selector to the struct field it selects, or nil.
// Composite-literal keys resolve through Uses, not Selections, so they are
// naturally exempt here.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicCall reports whether the call invokes a sync/atomic package-level
// read-modify-write or load/store function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.Info, call)
	if f == nil || analysis.FuncPkgPath(f) != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(f.Name(), prefix) {
			return true
		}
	}
	return false
}

// isTypedAtomic reports whether t is one of sync/atomic's struct types
// (Int32, Int64, Uint32, Uint64, Uintptr, Bool, Value, Pointer[T]).
func isTypedAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
