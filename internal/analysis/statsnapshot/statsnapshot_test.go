package statsnapshot_test

import (
	"testing"

	"microrec/internal/analysis"
	"microrec/internal/analysis/statsnapshot"
)

func TestStatsnapshot(t *testing.T) {
	analysis.RunWant(t, []*analysis.Analyzer{statsnapshot.Analyzer}, "testdata/src/a")
}
