// Package a is the statsnapshot fixture: snapshot methods must assemble
// their result under a single acquisition of any given mutex. The flagged
// variant below is the tieredstore Store.Snapshot bug this analyzer first
// caught on the real tree: a helper that locks internally, called next to a
// direct acquisition of the same mutex.
package a

import "sync"

type store struct {
	mu    sync.Mutex
	bound float64
	rows  int64
}

// Bound locks internally — fine on its own.
func (s *store) Bound() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bound
}

// boundLocked is the single-acquisition building block.
func (s *store) boundLocked() float64 { return s.bound }

// BadSnapshot pairs a value read under the helper's acquisition with values
// read under its own: a writer slipping between the two produces a bound and
// a row count no real instant ever exhibited.
func (s *store) BadSnapshot() (float64, int64) {
	b := s.Bound()
	s.mu.Lock() // want "BadSnapshot acquires s\\.mu more than once"
	r := s.rows
	s.mu.Unlock()
	return b, r
}

// GoodSnapshot reads everything under one acquisition, using the locked
// helper.
func (s *store) GoodSnapshot() (float64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boundLocked(), s.rows
}

// relock is a nested helper chain: Stats -> relock -> Bound, two levels of
// calls away from the direct acquisition.
func (s *store) relock() float64 { return s.Bound() }

// NestedStats mixes a direct acquisition with one reached transitively.
func (s *store) NestedStats() (float64, int64) {
	s.mu.Lock()
	r := s.rows
	s.mu.Unlock()
	b := s.relock() // want "NestedStats acquires s\\.mu more than once"
	return b, r
}

// server has two independent mutexes and a try-lock single-flight.
type server struct {
	mu     sync.Mutex
	predMu sync.Mutex
	qps    float64
	pred   float64
	hist   store
}

// predicted uses a try-lock single-flight (the serving tier's predictor
// refresh): opting out of blocking opts out of the acquisition count too.
func (s *server) predicted() float64 {
	if s.predMu.TryLock() {
		defer s.predMu.Unlock()
		s.pred++
	}
	return s.pred
}

// GoodStats touches each mutex at most once: its own under one acquisition,
// a sub-object's through one call, and the try-lock path not at all.
func (s *server) GoodStats() (float64, float64, float64) {
	s.mu.Lock()
	q := s.qps
	s.mu.Unlock()
	return q, s.predicted(), s.hist.Bound()
}

// TwoMutexStats acquires two DIFFERENT mutexes — not a violation.
func (s *server) TwoMutexStats() (float64, float64) {
	s.mu.Lock()
	q := s.qps
	s.mu.Unlock()
	s.predMu.Lock()
	p := s.pred
	s.predMu.Unlock()
	return q, p
}

// SubStats calls the same sub-object helper twice: two acquisitions of
// s.hist.mu, flagged through the call-path rebasing.
func (s *server) SubStats() float64 {
	a := s.hist.Bound()
	b := s.hist.Bound() // want "SubStats acquires s\\.hist\\.mu more than once"
	return a + b
}

// sharded aggregates under per-shard indexed locks, which have no static
// identity: not tracked, not flagged.
type sharded struct {
	shards [4]struct {
		mu sync.Mutex
		n  int64
	}
}

func (s *sharded) Stats() int64 {
	var total int64
	for i := range s.shards {
		s.shards[i].mu.Lock()
		total += s.shards[i].n
		s.shards[i].mu.Unlock()
	}
	return total
}
