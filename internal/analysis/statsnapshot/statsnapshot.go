// Package statsnapshot checks that Stats()/Snapshot()-style methods are
// coherent: a snapshot must not assemble its result from more than one
// acquisition of the same mutex. Two acquisitions mean another writer can
// slip between them, and the "snapshot" pairs numbers no real instant ever
// exhibited — counters that don't add up, a bound computed against one
// placement map reported next to row counts from another. PR 6's torn
// hotcache stats were the runtime-visible version; the tieredstore
// Store.Snapshot fixed in this PR (BoundNS locking s.mu, then Snapshot
// locking it again for the row counts) was this analyzer's first find.
//
// The check is interprocedural: the collect phase records, for every
// method, which receiver-rooted mutexes it acquires (directly or through
// calls on receiver-rooted paths — s.BoundNS(), s.latencyUS.Snapshot());
// the report phase takes the transitive closure and flags any snapshot
// method whose acquisition events name the same mutex path twice.
// TryLock is not an acquisition: a try-lock single-flight (the serving
// tier's predictor refresh) opts out of blocking and of this rule.
// Indexed paths (s.shards[i].mu) are not tracked — per-shard aggregation
// under per-shard locks is a different, legitimate pattern.
package statsnapshot

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"microrec/internal/analysis"
)

// Analyzer is the statsnapshot analysis.
var Analyzer = &analysis.Analyzer{
	Name:    "statsnapshot",
	Doc:     "reports snapshot methods that mix values from multiple acquisitions of one mutex",
	Run:     collect,
	RunPost: report,
}

// funcLocks is the per-method fact: mutex paths acquired directly (relative
// to the receiver, e.g. ".mu") and call edges to other methods reached
// through receiver-rooted paths (prefix ".latencyUS" + callee Snapshot).
type funcLocks struct {
	direct []lockEvent
	calls  []callEdge
}

type lockEvent struct {
	path string // receiver-relative, ".mu"
	pos  token.Pos
}

type callEdge struct {
	prefix string // receiver-relative path of the callee's receiver, "" for the receiver itself
	callee *types.Func
	pos    token.Pos
}

func collect(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncsOf(pass.Files) {
		recv := analysis.RecvIdent(fd)
		if fd.Body == nil || recv == "" {
			continue
		}
		obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		var fl funcLocks
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // closures run on their own schedule
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, okPath := analysis.ExprPath(ast.Unparen(sel.X))
			if !okPath || analysis.PathRoot(path) != recv {
				return true
			}
			rel := strings.TrimPrefix(path, recv)
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if isMu, _ := analysis.IsMutex(pass.TypeOf(sel.X)); isMu {
					fl.direct = append(fl.direct, lockEvent{path: rel, pos: call.Pos()})
					return true
				}
			case "Unlock", "RUnlock", "TryLock", "TryRLock":
				return true
			}
			if callee := analysis.CalleeFunc(pass.Info, call); callee != nil && callee.Pkg() != nil {
				fl.calls = append(fl.calls, callEdge{prefix: rel, callee: callee, pos: call.Pos()})
			}
			return true
		})
		pass.SetObjectFact(obj, fl)
	}
	return nil
}

func report(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncsOf(pass.Files) {
		recv := analysis.RecvIdent(fd)
		if fd.Body == nil || recv == "" || !isSnapshotName(fd.Name.Name) {
			continue
		}
		obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		factAny, ok := pass.ObjectFact(obj)
		if !ok {
			continue
		}
		fl := factAny.(funcLocks)

		// Flatten this method's acquisition events: each direct Lock is one
		// event; each receiver-rooted call contributes every mutex its
		// transitive closure acquires, rebased onto the call path.
		type event struct {
			path string
			pos  token.Pos
		}
		var events []event
		for _, d := range fl.direct {
			events = append(events, event(d))
		}
		for _, c := range fl.calls {
			for _, p := range closureLocks(pass, c.callee, make(map[*types.Func]bool), 0) {
				events = append(events, event{path: c.prefix + p, pos: c.pos})
			}
		}
		// Source order, so the duplicate reported is the later acquisition —
		// the line a reader (and a fixture want-comment) points at.
		sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		seen := make(map[string]token.Pos)
		for _, e := range events {
			if _, dup := seen[e.path]; dup {
				pass.Reportf(e.pos, "%s acquires %s%s more than once; snapshot mixes values from separate lock acquisitions", fd.Name.Name, recv, e.path)
			} else {
				seen[e.path] = e.pos
			}
		}
	}
	return nil
}

// closureLocks returns the receiver-relative mutex paths f acquires,
// following receiver-rooted call edges transitively. Cycles and pathological
// depth terminate the walk.
func closureLocks(pass *analysis.Pass, f *types.Func, visiting map[*types.Func]bool, depth int) []string {
	if depth > 10 || visiting[f] {
		return nil
	}
	factAny, ok := pass.ObjectFact(f)
	if !ok {
		return nil
	}
	fl := factAny.(funcLocks)
	visiting[f] = true
	var out []string
	for _, d := range fl.direct {
		out = append(out, d.path)
	}
	for _, c := range fl.calls {
		for _, p := range closureLocks(pass, c.callee, visiting, depth+1) {
			out = append(out, c.prefix+p)
		}
	}
	delete(visiting, f)
	return out
}

// isSnapshotName reports whether a method name marks a snapshot-style
// aggregation: Stats, Snapshot, and suffixed variants (AdmissionStats,
// CacheSnapshot, ...).
func isSnapshotName(name string) bool {
	return name == "Stats" || name == "Snapshot" ||
		strings.HasSuffix(name, "Stats") || strings.HasSuffix(name, "Snapshot")
}
