// Package analysis is a self-contained, dependency-free re-creation of the
// golang.org/x/tools/go/analysis driver stack, sized for this repo's custom
// vet suite (cmd/microrec-vet). The real x/tools module is not vendored here
// — the module has zero third-party dependencies and keeps it that way — so
// this package provides the three pieces the suite needs with the same shape
// the upstream API has:
//
//   - Analyzer/Pass/Diagnostic (analysis.Analyzer et al.): an analyzer is a
//     named check over one type-checked package that reports findings at
//     token positions.
//   - A loader + driver (go/packages + multichecker): packages are
//     enumerated and their dependency export data compiled by
//     `go list -export -json -deps`, module packages are type-checked from
//     source in dependency order against that export data, and every
//     analyzer runs over every package in one process. Because all module
//     packages share one FileSet and one type-checker universe,
//     types.Object identities are global — cross-package facts are a plain
//     shared map, no fact serialization needed.
//   - A `// want` fixture harness (analysistest): testdata packages carry
//     expectations as comments on the flagged lines, and the harness
//     diff's them against the diagnostics the analyzers produce.
//
// Whole-program checks (a field must be atomic everywhere, a helper's lock
// footprint matters to its callers) run in two phases: every analyzer's Run
// visits every package first (collect), then RunPost revisits them (report)
// with the complete fact set in hand.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run is invoked once per package in
// dependency order; RunPost, when non-nil, is invoked once per package after
// every package's Run has completed, so it sees whole-program facts.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //microrec:allow suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the per-package (or fact-collection) pass.
	Run func(*Pass) error
	// RunPost optionally performs a second, whole-program-aware pass.
	RunPost func(*Pass) error
}

// Pass carries one package's syntax and types to one analyzer, plus the
// program-wide fact store shared by all packages in the run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	run *run
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer *Analyzer
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.run.diagnostics = append(p.run.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or Invalid when the checker
// recorded none — never nil, so callers can chase Underlying unconditionally.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil && obj.Type() != nil {
			return obj.Type()
		}
	}
	return types.Typ[types.Invalid]
}

// SetObjectFact attaches a fact to obj for this analyzer, visible to every
// later Run and every RunPost in the same driver run. Object identity is
// global across packages (one type-checker universe), so a fact set while
// analyzing the defining package is found when analyzing its importers.
func (p *Pass) SetObjectFact(obj types.Object, fact any) {
	p.run.facts[factKey{p.Analyzer, obj}] = fact
}

// ObjectFact retrieves the fact attached to obj by this analyzer, if any.
func (p *Pass) ObjectFact(obj types.Object) (any, bool) {
	v, ok := p.run.facts[factKey{p.Analyzer, obj}]
	return v, ok
}

// Shared returns a scratch map private to this analyzer but shared across
// every package of the run — the place for analyzer-global state like a
// transitive-closure cache computed once at the start of the RunPost sweep.
func (p *Pass) Shared() map[string]any {
	m, ok := p.run.shared[p.Analyzer]
	if !ok {
		m = make(map[string]any)
		p.run.shared[p.Analyzer] = m
	}
	return m
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
}

// run is the mutable state of one driver invocation.
type run struct {
	facts       map[factKey]any
	shared      map[*Analyzer]map[string]any
	diagnostics []Diagnostic
}
