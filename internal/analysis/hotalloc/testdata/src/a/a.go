// Package a is the hotalloc fixture: one annotated function per flagged
// construct, plus an annotated function exercising every allowed idiom and
// an unannotated allocator the analyzer must ignore.
package a

import "fmt"

type scratch struct {
	buf  []int64
	tmp  [8]int64
	sink any
}

//microrec:noalloc
func makeBad(n int) []int64 {
	return make([]int64, n) // want "make allocates in noalloc function makeBad"
}

//microrec:noalloc
func newBad() *scratch {
	return new(scratch) // want "new allocates in noalloc function newBad"
}

//microrec:noalloc
func appendBad(s *scratch, v int64) {
	s.buf = append(s.buf, v) // want "append allocates in noalloc function appendBad"
}

//microrec:noalloc
func sliceLitBad() []int64 {
	return []int64{1, 2, 3} // want "slice literal allocates in noalloc function sliceLitBad"
}

//microrec:noalloc
func mapLitBad() map[int]int {
	return map[int]int{1: 2} // want "map literal allocates in noalloc function mapLitBad"
}

//microrec:noalloc
func addrLitBad() *scratch {
	return &scratch{} // want "&composite literal escapes to heap in noalloc function addrLitBad"
}

//microrec:noalloc
func closureBad() func() {
	return func() {} // want "function literal \\(closure\\) in noalloc function closureBad"
}

//microrec:noalloc
func goBad(ch chan int) {
	go fn(ch) // want "go statement in noalloc function goBad"
}

func fn(chan int) {}

//microrec:noalloc
func concatBad(a, b string) string {
	return a + b // want "string concatenation allocates in noalloc function concatBad"
}

//microrec:noalloc
func stringConvBad(b []byte) string {
	return string(b) // want "string conversion copies in noalloc function stringConvBad"
}

//microrec:noalloc
func boxBad(s *scratch, v int64) {
	s.sink = v // want "boxes int64 into interface in noalloc function boxBad"
}

//microrec:noalloc
func boxArgBad(v int64) {
	sink(v) // want "argument boxes int64 into interface in noalloc function boxArgBad"
}

func sink(any) {}

//microrec:noalloc
func fmtBad(v int64) string {
	return fmt.Sprintf("%d", v) // want "call to fmt\\.Sprintf allocates in noalloc function fmtBad"
}

// allowedGood exercises every idiom the hot path legitimately uses: value
// struct literals, address-of locals, slicing, indexing, type assertions,
// channel sends of pointers, pointer boxing, arithmetic.
//
//microrec:noalloc
func allowedGood(s *scratch, rows []int64, ch chan *scratch, v any) int64 {
	var w [4]int64
	fill(&w)
	local := scratch{buf: rows}
	head := rows[:2]
	var acc int64
	for i := range head {
		acc += head[i] * w[i&3]
	}
	if p, ok := v.(*scratch); ok {
		acc += p.tmp[0]
	}
	s.sink = &local // pointers box without allocating
	select {
	case ch <- s:
	default:
	}
	return acc
}

func fill(*[4]int64) {}

// unannotatedGood allocates freely: no directive, no reports.
func unannotatedGood(n int) []int64 {
	out := make([]int64, 0, n)
	out = append(out, int64(n))
	return out
}
