// Package hotalloc enforces the //microrec:noalloc annotation: a function so
// marked is part of the steady-state datapath (the gather row loop, the
// GEMM, the span recorder) and must not contain an allocating construct.
// The repo's zero-alloc claims were previously guarded only by scattered
// testing.AllocsPerRun pins; this analyzer catches the construct at review
// time and names it, and the consolidated zeroalloc test (zeroalloc_test.go
// at the repo root) keeps the dynamic side honest.
//
// Flagged constructs: make/new/append, map and slice literals, &composite
// literals, function literals (closure capture), go statements, string
// concatenation, string<->[]byte/[]rune conversions, explicit and implicit
// interface conversions of non-pointer-shaped values (boxing), and calls
// into fmt/errors/log. Taking the address of a variable, value struct
// literals, slicing, type assertions, and channel operations are allowed —
// none of them allocate by themselves.
//
// The check is syntactic over the annotated body only; callees are covered
// dynamically by the consolidated AllocsPerRun table, which derives its
// required coverage from the same annotations.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"microrec/internal/analysis"
)

// Directive is the annotation marking a function as alloc-free.
const Directive = "//microrec:noalloc"

// Analyzer is the hotalloc analysis.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reports allocating constructs inside //microrec:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncsOf(pass.Files) {
		if fd.Body == nil || !analysis.HasDirective(fd.Doc, Directive) {
			continue
		}
		checkFunc(pass, fd)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "function literal (closure) in noalloc function %s", fd.Name.Name)
			return false // the literal's own body runs elsewhere

		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement in noalloc function %s", fd.Name.Name)

		case *ast.CompositeLit:
			switch pass.TypeOf(x).Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates in noalloc function %s", fd.Name.Name)
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates in noalloc function %s", fd.Name.Name)
			}

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
					pass.Reportf(x.Pos(), "&composite literal escapes to heap in noalloc function %s", fd.Name.Name)
				}
			}

		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypeOf(x)) {
				pass.Reportf(x.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
			}

		case *ast.CallExpr:
			checkCall(pass, fd, x)

		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Rhs {
					checkConversion(pass, fd, x.Rhs[i].Pos(), pass.TypeOf(x.Rhs[i]), pass.TypeOf(x.Lhs[i]), "assignment")
				}
			}

		case *ast.ReturnStmt:
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return true
			}
			results := obj.Type().(*types.Signature).Results()
			if len(x.Results) == results.Len() {
				for i, r := range x.Results {
					checkConversion(pass, fd, r.Pos(), pass.TypeOf(r), results.At(i).Type(), "return")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s allocates in noalloc function %s", b.Name(), fd.Name.Name)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := pass.TypeOf(call.Args[0])
			checkConversion(pass, fd, call.Pos(), src, dst, "conversion")
		}
		return
	}

	// fmt/errors/log allocate (boxing, buffers, error values).
	if f := analysis.CalleeFunc(pass.Info, call); f != nil {
		switch analysis.FuncPkgPath(f) {
		case "fmt", "errors", "log":
			pass.Reportf(call.Pos(), "call to %s allocates in noalloc function %s", f.FullName(), fd.Name.Name)
			return
		}
	}

	// Implicit interface conversions at the call boundary box their
	// operands.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkConversion(pass, fd, arg.Pos(), pass.TypeOf(arg), pt, "argument")
	}
}

// checkConversion reports conversions that allocate: boxing a non-pointer-
// shaped value into an interface, and string<->byte/rune-slice copies.
func checkConversion(pass *analysis.Pass, fd *ast.FuncDecl, pos token.Pos, src, dst types.Type, what string) {
	if src == nil || dst == nil {
		return
	}
	if types.IsInterface(dst) && !types.IsInterface(src) && boxingAllocates(src) {
		pass.Reportf(pos, "%s boxes %s into interface in noalloc function %s", what, src.String(), fd.Name.Name)
		return
	}
	sb, db := src.Underlying(), dst.Underlying()
	if isString(sb) && isByteOrRuneSlice(db) || isByteOrRuneSlice(sb) && isString(db) {
		pass.Reportf(pos, "string %s copies in noalloc function %s", what, fd.Name.Name)
	}
}

// boxingAllocates reports whether storing a value of type t in an interface
// heap-allocates: pointer-shaped types (pointers, channels, maps, funcs,
// unsafe.Pointer) fit the interface data word directly; everything else is
// copied to the heap. Untyped nil never allocates.
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UnsafePointer, types.UntypedNil:
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
