package hotalloc_test

import (
	"testing"

	"microrec/internal/analysis"
	"microrec/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysis.RunWant(t, []*analysis.Analyzer{hotalloc.Analyzer}, "testdata/src/a")
}
