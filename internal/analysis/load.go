package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one module package loaded from source with full type
// information.
type Package struct {
	PkgPath string
	Dir     string
	Files   []string // absolute paths, parse order matches Syntax
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info

	imports   []string
	importMap map[string]string
}

// Program is a set of module packages sharing one FileSet and one
// type-checker universe, plus the export data needed to import everything
// outside the module.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // dependency order: imports precede importers
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
	ForTest    string
	DepOnly    bool
}

// Load enumerates the packages matching patterns (relative patterns resolve
// against dir), compiles export data for every dependency, and type-checks
// each module package from source in dependency order. Packages outside the
// module (the standard library) are imported from export data; packages
// inside it are always built from source so that types.Object identities —
// and therefore analyzer facts — are consistent program-wide.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	byPath := make(map[string]*listPkg)
	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", p.ImportPath, p.Error.Err)
		}
		q := p
		byPath[p.ImportPath] = &q
		order = append(order, p.ImportPath)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	// One gc-export-data importer serves every stdlib import in the run, so
	// repeated imports resolve to the same *types.Package.
	stdImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	inModule := func(p *listPkg) bool { return p.Module != nil }

	// Topologically sort module packages: dependencies first.
	var modPaths []string
	for _, path := range order {
		if inModule(byPath[path]) {
			modPaths = append(modPaths, path)
		}
	}
	sort.Strings(modPaths)
	var topo []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := byPath[path]
		for _, imp := range p.Imports {
			if r, ok := p.ImportMap[imp]; ok {
				imp = r
			}
			if dep, ok := byPath[imp]; ok && inModule(dep) {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		topo = append(topo, path)
		return nil
	}
	for _, path := range modPaths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	prog := &Program{Fset: fset}
	checked := make(map[string]*types.Package)
	for _, path := range topo {
		lp := byPath[path]
		pkg := &Package{
			PkgPath:   path,
			Dir:       lp.Dir,
			imports:   lp.Imports,
			importMap: lp.ImportMap,
		}
		for _, gf := range lp.GoFiles {
			abs := filepath.Join(lp.Dir, gf)
			f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", abs, err)
			}
			pkg.Files = append(pkg.Files, abs)
			pkg.Syntax = append(pkg.Syntax, f)
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: &progImporter{
				importMap: lp.ImportMap,
				checked:   checked,
				std:       stdImporter,
			},
		}
		tpkg, err := conf.Check(path, fset, pkg.Syntax, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
		}
		pkg.Types = tpkg
		checked[path] = tpkg
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// progImporter resolves one package's imports: module packages come from the
// source-checked set, everything else from shared export data. The per-
// package ImportMap handles vendored stdlib paths.
type progImporter struct {
	importMap map[string]string
	checked   map[string]*types.Package
	std       types.Importer
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if r, ok := pi.importMap[path]; ok {
		path = r
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := pi.checked[path]; ok {
		return p, nil
	}
	return pi.std.Import(path)
}
