package cpu

import (
	"fmt"
	"runtime"
	"sync"

	"microrec/internal/embedding"
	"microrec/internal/model"
	"microrec/internal/tensor"
)

// Engine is a real CPU inference engine: batched embedding gathers plus a
// float32 FC tower parallelised across goroutines. It is the executable
// counterpart of the analytic Model — what a CPU deployment of these models
// actually runs.
type Engine struct {
	spec    *model.Spec
	store   *embedding.Store
	weights []*tensor.Matrix // layer l: (in x out)
	biases  [][]float32
	dims    [][2]int
}

// NewEngine builds an engine from materialised parameters.
func NewEngine(params *model.Parameters) (*Engine, error) {
	if params == nil {
		return nil, fmt.Errorf("cpu: nil parameters")
	}
	store, err := embedding.NewStore(params)
	if err != nil {
		return nil, err
	}
	return &Engine{
		spec:    params.Spec,
		store:   store,
		weights: params.Weights,
		biases:  params.Biases,
		dims:    params.Spec.LayerDims(),
	}, nil
}

// Spec returns the engine's model.
func (e *Engine) Spec() *model.Spec { return e.spec }

// EmbedBatch gathers a batch of queries into a (B x featureLen) matrix — the
// embedding layer of Figure 1.
func (e *Engine) EmbedBatch(queries []embedding.Query) (*tensor.Matrix, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("cpu: empty batch")
	}
	feat := e.spec.FeatureLen()
	out := tensor.NewMatrix(len(queries), feat)
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	chunk := (len(queries) + workers - 1) / workers
	for lo := 0; lo < len(queries); lo += chunk {
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				row := out.Row(i)
				if _, err := e.store.Gather(queries[i], row[:0]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cpu: query %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Forward runs the FC tower on a batch of features, returning CTR
// predictions.
func (e *Engine) Forward(features *tensor.Matrix) ([]float32, error) {
	if features == nil {
		return nil, fmt.Errorf("cpu: nil features")
	}
	x := features
	for l := range e.dims {
		y, err := tensor.MatMul(x, e.weights[l], nil)
		if err != nil {
			return nil, fmt.Errorf("cpu: layer %d: %w", l, err)
		}
		if err := tensor.AddBias(y, e.biases[l]); err != nil {
			return nil, err
		}
		if l < len(e.dims)-1 {
			tensor.ReLU(y.Data)
		}
		x = y
	}
	preds := make([]float32, x.Rows)
	for i := 0; i < x.Rows; i++ {
		preds[i] = x.At(i, 0)
	}
	tensor.Sigmoid(preds)
	return preds, nil
}

// InferBatch runs the complete inference for a batch of queries.
func (e *Engine) InferBatch(queries []embedding.Query) ([]float32, error) {
	features, err := e.EmbedBatch(queries)
	if err != nil {
		return nil, err
	}
	return e.Forward(features)
}
