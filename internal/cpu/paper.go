// Package cpu provides the CPU-baseline side of the evaluation: a real,
// multi-goroutine batched inference engine (actual gathers and GEMMs a
// downstream user can run), and an analytic performance model of the paper's
// baseline testbed — TensorFlow Serving on a 16-vCPU Xeon E5-2686 v4 with
// 8-channel DDR4 (§5.1) — calibrated against Tables 2 and 4.
//
// The analytic model exists because the paper's speedups are measured
// against that specific software stack; reproducing its *numbers* requires
// modelling its framework behaviour (§2.3: 37 embedding-related operator
// types invoked per batch), not just raw arithmetic. See DESIGN.md.
package cpu

import (
	"fmt"
	"math"

	"microrec/internal/model"
)

// PhaseModel models one phase (embedding layer or FC tower) of TF-Serving
// batch inference:
//
//	latency_ms(B) = BaseMS + PerItemMS*B + LogMS*log2(1+B)
//
// Mechanistic reading: BaseMS is the per-batch framework dispatch floor (the
// operator-call overhead that makes B=1 and B=64 cost nearly the same,
// Figure 3); PerItemMS is the asymptotic per-item memory/compute cost; LogMS
// captures sub-linear growth of operator scheduling with batch size.
type PhaseModel struct {
	BaseMS    float64
	PerItemMS float64
	LogMS     float64
}

// LatencyMS returns the phase latency for a batch.
func (p PhaseModel) LatencyMS(batch int) float64 {
	if batch < 1 {
		return 0
	}
	return p.BaseMS + p.PerItemMS*float64(batch) + p.LogMS*math.Log2(1+float64(batch))
}

// Model is the full two-phase CPU baseline model for one recommendation
// model.
type Model struct {
	// Spec is the modelled recommendation model.
	Spec *model.Spec
	// Embedding covers the embedding layer (lookups + related operators).
	Embedding PhaseModel
	// DNN covers the FC tower.
	DNN PhaseModel
}

// Calibration constants fitted to the paper's measured CPU latencies
// (Tables 2 and 4; every cell reproduced within 9%, see paper_test.go).
var (
	paperSmallEmbedding = PhaseModel{BaseMS: 2.384, PerItemMS: 0.00408, LogMS: 0.2018}
	paperSmallDNN       = PhaseModel{BaseMS: 0.668, PerItemMS: 0.00670, LogMS: 0.0753}
	paperLargeEmbedding = PhaseModel{BaseMS: 6.020, PerItemMS: 0.011145, LogMS: 0.2187}
	paperLargeDNN       = PhaseModel{BaseMS: 1.182, PerItemMS: 0.012260, LogMS: 0.0354}
)

// PaperSmall returns the calibrated baseline for the small production model.
func PaperSmall() Model {
	return Model{Spec: model.SmallProduction(), Embedding: paperSmallEmbedding, DNN: paperSmallDNN}
}

// PaperLarge returns the calibrated baseline for the large production model.
func PaperLarge() Model {
	return Model{Spec: model.LargeProduction(), Embedding: paperLargeEmbedding, DNN: paperLargeDNN}
}

// Calibrated extrapolates the baseline model to an arbitrary spec by scaling
// the small-production constants with the embedding-lookup count (embedding
// phase) and FC operation count (DNN phase). It is approximate — use the
// Paper* constructors for the production models.
func Calibrated(spec *model.Spec) Model {
	small := model.SmallProduction()
	embScale := float64(spec.NumLookups()) / float64(small.NumLookups())
	dnnScale := float64(spec.OpsPerItem()) / float64(small.OpsPerItem())
	scale := func(p PhaseModel, s float64) PhaseModel {
		return PhaseModel{BaseMS: p.BaseMS * s, PerItemMS: p.PerItemMS * s, LogMS: p.LogMS * s}
	}
	return Model{
		Spec:      spec,
		Embedding: scale(paperSmallEmbedding, embScale),
		DNN:       scale(paperSmallDNN, dnnScale),
	}
}

// EmbeddingMS returns the modelled embedding-layer latency for a batch
// (Table 4's CPU rows).
func (m Model) EmbeddingMS(batch int) float64 { return m.Embedding.LatencyMS(batch) }

// EndToEndMS returns the full inference latency for a batch (Table 2's CPU
// rows).
func (m Model) EndToEndMS(batch int) float64 {
	return m.Embedding.LatencyMS(batch) + m.DNN.LatencyMS(batch)
}

// ThroughputItemsPerSec returns items/s at the given batch size.
func (m Model) ThroughputItemsPerSec(batch int) float64 {
	if batch < 1 {
		return 0
	}
	return float64(batch) * 1e3 / m.EndToEndMS(batch)
}

// ThroughputGOPs returns the FC-tower GOP/s at the given batch size, the
// metric of Table 2.
func (m Model) ThroughputGOPs(batch int) float64 {
	if m.Spec == nil || batch < 1 {
		return 0
	}
	ops := float64(m.Spec.OpsPerItem()) * float64(batch)
	return ops / (m.EndToEndMS(batch) * 1e6)
}

// EmbeddingShare returns the fraction of end-to-end latency spent in the
// embedding layer (Figure 3).
func (m Model) EmbeddingShare(batch int) float64 {
	e2e := m.EndToEndMS(batch)
	if e2e == 0 {
		return 0
	}
	return m.EmbeddingMS(batch) / e2e
}

// FacebookRMC2EmbeddingNSPerItem is the published per-item embedding-layer
// time of Facebook's DLRM-RMC2 baseline (2-socket Broadwell, batch 256),
// back-derived from Table 5: every cell's speedup x latency product equals
// 24.2 µs.
const FacebookRMC2EmbeddingNSPerItem = 24_200.0

// BatchSizes are the batch sizes the paper sweeps in Tables 2 and 4.
var BatchSizes = []int{1, 64, 256, 512, 1024, 2048}

// ValidateBatch rejects non-positive batch sizes with a uniform error.
func ValidateBatch(batch int) error {
	if batch < 1 {
		return fmt.Errorf("cpu: batch size %d", batch)
	}
	return nil
}
