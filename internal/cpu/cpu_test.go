package cpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"microrec/internal/embedding"
	"microrec/internal/memsim"
	"microrec/internal/model"
)

// TestPaperSmallMatchesTable4 validates the embedding-phase calibration
// against every CPU cell of Table 4 (small model).
func TestPaperSmallMatchesTable4(t *testing.T) {
	m := PaperSmall()
	want := map[int]float64{1: 2.59, 64: 3.86, 256: 4.71, 512: 5.96, 1024: 8.39, 2048: 12.96}
	for b, w := range want {
		got := m.EmbeddingMS(b)
		if !memsim.ApproxEqual(got, w, 0.09) {
			t.Errorf("small embedding B=%d: modeled %.2f ms, paper %.2f (>9%% off)", b, got, w)
		}
	}
}

func TestPaperLargeMatchesTable4(t *testing.T) {
	m := PaperLarge()
	want := map[int]float64{1: 6.25, 64: 8.05, 256: 10.92, 512: 13.67, 1024: 18.11, 2048: 31.25}
	for b, w := range want {
		got := m.EmbeddingMS(b)
		if !memsim.ApproxEqual(got, w, 0.09) {
			t.Errorf("large embedding B=%d: modeled %.2f ms, paper %.2f (>9%% off)", b, got, w)
		}
	}
}

// TestPaperMatchesTable2 validates end-to-end latency against Table 2's CPU
// rows for both models.
func TestPaperMatchesTable2(t *testing.T) {
	cases := []struct {
		name string
		m    Model
		want map[int]float64
	}{
		{"small", PaperSmall(), map[int]float64{1: 3.34, 64: 5.41, 256: 8.15, 512: 11.15, 1024: 17.17, 2048: 28.18}},
		{"large", PaperLarge(), map[int]float64{1: 7.48, 64: 10.23, 256: 15.62, 512: 21.06, 1024: 31.72, 2048: 56.98}},
	}
	for _, c := range cases {
		for b, w := range c.want {
			got := c.m.EndToEndMS(b)
			if !memsim.ApproxEqual(got, w, 0.09) {
				t.Errorf("%s e2e B=%d: modeled %.2f ms, paper %.2f (>9%% off)", c.name, b, got, w)
			}
		}
	}
}

func TestThroughputMatchesTable2(t *testing.T) {
	// Table 2: small model at B=2048 reaches 7.27e4 items/s and 147.65
	// GOP/s.
	m := PaperSmall()
	if got := m.ThroughputItemsPerSec(2048); !memsim.ApproxEqual(got, 7.27e4, 0.09) {
		t.Errorf("items/s = %.3g, paper 7.27e4", got)
	}
	if got := m.ThroughputGOPs(2048); !memsim.ApproxEqual(got, 147.65, 0.09) {
		t.Errorf("GOP/s = %.1f, paper 147.65", got)
	}
	l := PaperLarge()
	if got := l.ThroughputItemsPerSec(2048); !memsim.ApproxEqual(got, 3.59e4, 0.09) {
		t.Errorf("large items/s = %.3g, paper 3.59e4", got)
	}
}

func TestEmbeddingShareMatchesFigure3(t *testing.T) {
	// Figure 3's message: the embedding layer dominates CPU inference at
	// small batch sizes.
	for _, m := range []Model{PaperSmall(), PaperLarge()} {
		for _, b := range []int{1, 64} {
			share := m.EmbeddingShare(b)
			if share < 0.6 || share > 0.95 {
				t.Errorf("%s B=%d embedding share = %.2f, want dominant (0.6-0.95)", m.Spec.Name, b, share)
			}
		}
	}
}

func TestPhaseModelEdgeCases(t *testing.T) {
	p := PhaseModel{BaseMS: 1, PerItemMS: 1, LogMS: 0}
	if p.LatencyMS(0) != 0 || p.LatencyMS(-1) != 0 {
		t.Error("non-positive batch should cost 0")
	}
	m := PaperSmall()
	if m.ThroughputItemsPerSec(0) != 0 || m.ThroughputGOPs(0) != 0 {
		t.Error("zero batch throughput should be 0")
	}
	if (Model{}).ThroughputGOPs(16) != 0 {
		t.Error("nil-spec GOPs should be 0")
	}
	if err := ValidateBatch(0); err == nil {
		t.Error("ValidateBatch(0): want error")
	}
	if err := ValidateBatch(5); err != nil {
		t.Errorf("ValidateBatch(5): %v", err)
	}
}

func TestCalibratedScales(t *testing.T) {
	spec, err := model.DLRMRMC2(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := Calibrated(spec)
	small := PaperSmall()
	// 8 tables x 4 lookups = 32 lookups vs small's 47: embedding should
	// scale down.
	if c.EmbeddingMS(64) >= small.EmbeddingMS(64) {
		t.Errorf("calibrated embedding %.2f should be below small %.2f",
			c.EmbeddingMS(64), small.EmbeddingMS(64))
	}
	if c.Spec != spec {
		t.Error("calibrated model lost its spec")
	}
}

// Property: latency is monotone non-decreasing in batch size.
func TestLatencyMonotoneProperty(t *testing.T) {
	m := PaperSmall()
	prop := func(b uint16) bool {
		batch := int(b%4096) + 1
		return m.EndToEndMS(batch+1) >= m.EndToEndMS(batch)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: throughput improves (or holds) with batch size — the motivation
// for the paper's B=2048 baseline choice.
func TestThroughputMonotoneProperty(t *testing.T) {
	for _, m := range []Model{PaperSmall(), PaperLarge()} {
		last := 0.0
		for _, b := range BatchSizes {
			tp := m.ThroughputItemsPerSec(b)
			if tp < last {
				t.Errorf("%s: throughput dropped from %.0f to %.0f at B=%d", m.Spec.Name, last, tp, b)
			}
			last = tp
		}
	}
}

func testEngine(t testing.TB) (*Engine, *model.Spec) {
	spec := model.SmallProduction()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 3, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(params)
	if err != nil {
		t.Fatal(err)
	}
	return e, spec
}

func randomQueries(spec *model.Spec, n int, seed int64) []embedding.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]embedding.Query, n)
	for i := range qs {
		q := make(embedding.Query, len(spec.Tables))
		for ti, tab := range spec.Tables {
			idxs := make([]int64, tab.Lookups)
			for k := range idxs {
				idxs[k] = rng.Int63n(tab.Rows)
			}
			q[ti] = idxs
		}
		qs[i] = q
	}
	return qs
}

func TestEngineInferBatch(t *testing.T) {
	e, spec := testEngine(t)
	qs := randomQueries(spec, 17, 1)
	preds, err := e.InferBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 17 {
		t.Fatalf("predictions = %d", len(preds))
	}
	for i, p := range preds {
		if p < 0 || p > 1 || math.IsNaN(float64(p)) {
			t.Errorf("prediction[%d] = %v outside [0,1]", i, p)
		}
	}
}

func TestEngineBatchMatchesSingle(t *testing.T) {
	// Batch inference must equal per-item inference (no cross-item
	// contamination).
	e, spec := testEngine(t)
	qs := randomQueries(spec, 8, 2)
	batch, err := e.InferBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := e.InferBatch([]embedding.Query{q})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(batch[i]-single[0])) > 1e-6 {
			t.Errorf("item %d: batch %v != single %v", i, batch[i], single[0])
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e, spec := testEngine(t)
	if _, err := e.InferBatch(nil); err == nil {
		t.Error("empty batch: want error")
	}
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil params: want error")
	}
	q := randomQueries(spec, 1, 1)[0]
	q[0] = []int64{spec.Tables[0].Rows + 1}
	if _, err := e.InferBatch([]embedding.Query{q}); err == nil {
		t.Error("bad index: want error")
	}
	if _, err := e.Forward(nil); err == nil {
		t.Error("nil features: want error")
	}
}

func TestEmbedBatchShape(t *testing.T) {
	e, spec := testEngine(t)
	qs := randomQueries(spec, 5, 4)
	m, err := e.EmbedBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 5 || m.Cols != spec.FeatureLen() {
		t.Errorf("embed matrix %dx%d, want 5x%d", m.Rows, m.Cols, spec.FeatureLen())
	}
	// No row may be all zeros (embeddings are uniform in [-1,1)).
	for i := 0; i < m.Rows; i++ {
		allZero := true
		for _, v := range m.Row(i) {
			if v != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			t.Errorf("row %d is all zeros — gather failed silently", i)
		}
	}
}

func BenchmarkEngineInferB64(b *testing.B) {
	e, spec := testEngine(b)
	qs := randomQueries(spec, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.InferBatch(qs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineEmbedB256(b *testing.B) {
	e, spec := testEngine(b)
	qs := randomQueries(spec, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EmbedBatch(qs); err != nil {
			b.Fatal(err)
		}
	}
}
