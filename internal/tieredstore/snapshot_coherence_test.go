package tieredstore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSnapshotCoherentUnderPlacementChurn is the regression test for the
// microrec-vet statsnapshot finding on Store.Snapshot: BoundNS was computed
// through the public BoundNS() wrapper (one s.mu acquisition) while the
// row/byte counts were read under a second acquisition, so a placement
// published between the two produced a snapshot pairing a bound from one
// placement with row counts from another. The store here has a single
// stream flipping between all-hot and all-cold — every placement change is
// a full state transition, so any snapshot whose bound and counts straddle
// one is directly incoherent: the bound must be zero exactly when no rows
// are cold, and must equal the fully-cold bound exactly when no rows are
// hot. Post-fix both values come from a single acquisition (boundNSLocked
// inside the same critical section), so every snapshot satisfies the
// invariant.
//
// The stale window between the two acquisitions is a handful of
// instructions, so catching it needs the mutator parked on the mutex when
// the first one releases. With a single P the mutator only runs on async
// preemption and the window is never hit; raising GOMAXPROCS puts the
// mutator and readers on their own OS threads, where kernel preemption and
// the mutex's starvation-mode handoff interleave them often enough that the
// time-bound loop below observes the mix every pre-fix run, even on a
// one-core host (measured ≥14 incoherent snapshots per 2s window).
func TestSnapshotCoherentUnderPlacementChurn(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		rows    = 64
		dim     = 4
		readers = 4
	)
	rng := rand.New(rand.NewSource(7))
	data := make([]float32, rows*dim)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	spec := StreamSpec{ID: 0, Data: data, Dim: dim, Lookups: 2}
	s, err := Open(Config{SweepEvery: -1, HotBytes: 1 << 30}, []StreamSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	allRows := make([]int64, rows)
	for r := range allRows {
		allRows[r] = int64(r)
	}
	fullColdBound := float64(spec.Lookups) * s.ColdLatencyNS()

	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.SetPlacement(0, allRows)
			} else {
				s.SetPlacement(0, nil)
			}
		}
	}()

	const eps = 1e-9
	deadline := time.Now().Add(2 * time.Second)
	violations := make(chan string, readers)
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for time.Now().Before(deadline) {
				snap := s.Snapshot()
				switch {
				case snap.ColdRows == 0 && snap.BoundNS > eps:
					violations <- fmt.Sprintf("snapshot pairs ColdRows=0 with BoundNS=%v (bound from a stale placement)", snap.BoundNS)
					return
				case snap.HotRows == 0 && snap.BoundNS < fullColdBound-eps:
					violations <- fmt.Sprintf("snapshot pairs HotRows=0 with BoundNS=%v, want fully-cold bound %v", snap.BoundNS, fullColdBound)
					return
				}
			}
		}()
	}
	rg.Wait()
	close(stop)
	mutator.Wait()
	select {
	case v := <-violations:
		t.Fatal(v)
	default:
	}
}
