// Package tieredstore implements a two-tier embedding backing store: hot
// rows are pinned in DRAM while the full row set lives in an mmap'd cold
// file with a modeled per-access latency, in the style of the repo's
// dramsim/memsim timing models.
//
// The motivation is the frequency skew of production embedding traffic
// (RecFlash, RecSSD): the hot minority of rows absorbs most accesses, so
// pinning them in a DRAM budget far smaller than the model lets tables grow
// well past machine memory while the long tail pays a bounded, modeled
// cold-tier latency. Placement is decided by per-row access frequency
// harvested from the live hot-row cache (hotcache.Live residency plus
// per-entry hit counts) by a background promote/demote sweep with
// hysteresis.
//
// Bit-identity by construction: the cold file holds the exact float32 bits
// of every stream's rows, and a promotion copies those bits into the DRAM
// hot tier, so a gather reads identical values whichever tier serves the
// row — placement can change under a running batch without perturbing a
// single prediction.
package tieredstore

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"microrec/internal/hotcache"
	"microrec/internal/kernels"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultColdLatencyNS models one cold-tier row access: NVMe-read scale,
	// two orders of magnitude above the DRAM lookup path.
	DefaultColdLatencyNS = 20000
	// DefaultPromoteMinHits is the per-entry hit count a resident row needs
	// before the sweep considers it hot.
	DefaultPromoteMinHits = 2
	// DefaultDemoteAfter is how many consecutive sweeps a pinned row may go
	// unseen in the harvest before it is demoted (the hysteresis band).
	DefaultDemoteAfter = 3
	// DefaultSweepEvery is the background sweep period.
	DefaultSweepEvery = 200 * time.Millisecond
)

// Config describes one tiered store.
type Config struct {
	// Path is the cold-tier backing file. Empty means a temp file. The store
	// owns the file either way — it is created (truncated) at Open and
	// removed at Close — so the path must be unique per store.
	Path string
	// ColdLatencyNS is the modeled latency of one cold-tier row access
	// (DefaultColdLatencyNS when 0).
	ColdLatencyNS float64
	// HotBytes is the DRAM hot-tier byte budget. When 0 it defaults to a
	// quarter of the tierable bytes — i.e. the model is 4x larger than the
	// hot tier out of the box. Explicit all-cold operation is HotBytes < 0
	// (normalised to a zero budget).
	HotBytes int64
	// PromoteMinHits and DemoteAfter tune the placement hysteresis
	// (defaults above when 0).
	PromoteMinHits int64
	DemoteAfter    int
	// SweepEvery is the background promote/demote period. 0 means
	// DefaultSweepEvery; negative disables the background loop entirely
	// (tests drive placement via SweepNow/SetPlacement).
	SweepEvery time.Duration
}

// Validate rejects nonsense configurations.
func (c Config) Validate() error {
	if c.ColdLatencyNS < 0 {
		return fmt.Errorf("tieredstore: negative cold latency %v ns", c.ColdLatencyNS)
	}
	if c.PromoteMinHits < 0 {
		return fmt.Errorf("tieredstore: negative promote threshold %d", c.PromoteMinHits)
	}
	if c.DemoteAfter < 0 {
		return fmt.Errorf("tieredstore: negative demote-after %d", c.DemoteAfter)
	}
	return nil
}

func (c Config) withDefaults(totalBytes int64) Config {
	if c.ColdLatencyNS == 0 {
		c.ColdLatencyNS = DefaultColdLatencyNS
	}
	if c.HotBytes == 0 {
		c.HotBytes = totalBytes / 4
	}
	if c.HotBytes < 0 {
		c.HotBytes = 0
	}
	if c.PromoteMinHits == 0 {
		c.PromoteMinHits = DefaultPromoteMinHits
	}
	if c.DemoteAfter == 0 {
		c.DemoteAfter = DefaultDemoteAfter
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = DefaultSweepEvery
	}
	return c
}

// StreamSpec describes one access stream to back: a row-major float32
// payload, its row length, and the per-inference lookup count against it
// (for the latency bound). IDs must be dense 0..n-1 in slice order — they
// are the gather plan's cache/access-stream IDs.
type StreamSpec struct {
	ID      int
	Data    []float32
	Dim     int
	Lookups int
}

// hotEntry is one pinned row in the sweep's master state.
type hotEntry struct {
	vec  []float32
	idle int // consecutive sweeps without a harvest sighting
}

// hotMap is the published (copy-on-write) placement of one stream: readers
// load it wait-free via Stream.hot, the sweep replaces it wholesale. A
// superseded map stays valid for any gather still holding it, which is what
// makes mid-batch demotion safe.
type hotMap struct {
	rows map[int64][]float32
}

// Stream is one access stream's view of the store: the gather datapath
// resolves rows through it instead of the original DRAM slice.
type Stream struct {
	id       int
	dim      int64
	rows     int64
	lookups  int
	vecBytes int64
	cold     []float32 // this stream's window of the mmap'd cold file
	hot      atomic.Pointer[hotMap]

	hotReads  atomic.Int64
	coldReads atomic.Int64
}

// Row returns row `row` of the stream: the pinned DRAM copy when the row is
// hot, otherwise a slice of the mmap'd cold file. Both hold identical
// float32 bits. Wait-free and allocation-free.
//
//microrec:noalloc
func (st *Stream) Row(row int64) []float32 {
	v, _ := st.RowTagged(row)
	return v
}

// RowTagged is Row plus a cold flag, for callers that attribute cold-tier
// faults to the batch that suffered them (the flight recorder's per-span
// cold_faults count). Same wait-free, allocation-free path.
//
//microrec:noalloc
func (st *Stream) RowTagged(row int64) ([]float32, bool) {
	if m := st.hot.Load(); m != nil {
		if v, ok := m.rows[row]; ok {
			st.hotReads.Add(1)
			return v, false
		}
	}
	st.coldReads.Add(1)
	return st.cold[row*st.dim : (row+1)*st.dim], true
}

// IsHot reports whether the row is currently pinned (placement may change at
// the next sweep).
func (st *Stream) IsHot(row int64) bool {
	m := st.hot.Load()
	if m == nil {
		return false
	}
	_, ok := m.rows[row]
	return ok
}

// Rows returns the stream's row count.
func (st *Stream) Rows() int64 { return st.rows }

// PrefetchRow issues a non-temporal cache hint for the copy of the row the
// next Row call will return — the pinned DRAM vector when hot, the mmap'd
// cold window otherwise — without touching the read counters. The gather
// loop calls it one query ahead so the row fetch overlaps the previous
// query's quantize instead of stalling it. Unlike Store.Prefetch (a
// page-fault absorber that dereferences the page), this is hint-only:
// out-of-range rows are ignored and no fault is forced.
//
//microrec:noalloc
func (st *Stream) PrefetchRow(row int64) {
	if row < 0 || row >= st.rows {
		return
	}
	if m := st.hot.Load(); m != nil {
		if v, ok := m.rows[row]; ok {
			kernels.PrefetchNT(v)
			return
		}
	}
	kernels.PrefetchNT(st.cold[row*st.dim : (row+1)*st.dim])
}

// Store is the two-tier backing store for a set of access streams.
type Store struct {
	cfg        Config
	path       string
	f          *os.File
	mapped     []byte
	streams    []*Stream
	totalBytes int64

	mu       sync.Mutex
	sources  []*hotcache.Live
	master   []map[int64]*hotEntry // per stream, sweep-owned
	hotBytes int64
	closed   bool

	promotions atomic.Int64
	demotions  atomic.Int64
	sweeps     atomic.Int64
	prefetches atomic.Int64
	// prefetchSink keeps prefetch loads observable so they cannot be elided.
	prefetchSink atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// floatBytes views a float32 slice as raw bytes (host endianness — the cold
// file is process-private scratch, written and mapped by the same process).
func floatBytes(f []float32) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*4)
}

// Open creates the cold-tier file, writes every stream's payload into it,
// maps it read-only, and starts the background placement sweep (unless
// cfg.SweepEvery < 0). The caller must Close the store to stop the sweep,
// unmap, and remove the file.
func Open(cfg Config, specs []StreamSpec) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("tieredstore: no streams")
	}
	var total int64
	for i, sp := range specs {
		if sp.ID != i {
			return nil, fmt.Errorf("tieredstore: stream %d has ID %d, want dense IDs", i, sp.ID)
		}
		if sp.Dim <= 0 || len(sp.Data) == 0 || len(sp.Data)%sp.Dim != 0 {
			return nil, fmt.Errorf("tieredstore: stream %d: %d floats, dim %d", i, len(sp.Data), sp.Dim)
		}
		total += int64(len(sp.Data)) * 4
	}
	cfg = cfg.withDefaults(total)

	var (
		f   *os.File
		err error
	)
	if cfg.Path == "" {
		f, err = os.CreateTemp("", "microrec-coldtier-*.bin")
	} else {
		f, err = os.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	}
	if err != nil {
		return nil, fmt.Errorf("tieredstore: cold file: %w", err)
	}
	s := &Store{cfg: cfg, path: f.Name(), f: f, totalBytes: total}
	for _, sp := range specs {
		if _, err := f.Write(floatBytes(sp.Data)); err != nil {
			f.Close()
			os.Remove(s.path)
			return nil, fmt.Errorf("tieredstore: write cold file: %w", err)
		}
	}
	if s.mapped, err = mapFile(f, int(total)); err != nil {
		f.Close()
		os.Remove(s.path)
		return nil, fmt.Errorf("tieredstore: map cold file: %w", err)
	}
	cold := unsafe.Slice((*float32)(unsafe.Pointer(&s.mapped[0])), total/4)
	off := int64(0)
	s.streams = make([]*Stream, len(specs))
	s.master = make([]map[int64]*hotEntry, len(specs))
	for i, sp := range specs {
		n := int64(len(sp.Data))
		s.streams[i] = &Stream{
			id:       i,
			dim:      int64(sp.Dim),
			rows:     n / int64(sp.Dim),
			lookups:  sp.Lookups,
			vecBytes: int64(sp.Dim) * 4,
			cold:     cold[off : off+n],
		}
		off += n
	}
	if cfg.SweepEvery > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.loop()
	}
	return s, nil
}

// Stream returns the backing stream for access-stream id.
func (s *Store) Stream(id int) *Stream { return s.streams[id] }

// Streams returns the stream count.
func (s *Store) Streams() int { return len(s.streams) }

// Path returns the cold-tier file path.
func (s *Store) Path() string { return s.path }

// TotalBytes returns the tierable bytes (the whole cold file).
func (s *Store) TotalBytes() int64 { return s.totalBytes }

// ColdLatencyNS returns the modeled per-access cold-tier latency.
func (s *Store) ColdLatencyNS() float64 { return s.cfg.ColdLatencyNS }

// HotBudgetBytes returns the (defaulted) DRAM hot-tier budget.
func (s *Store) HotBudgetBytes() int64 { return s.cfg.HotBytes }

// AddSource registers a live hot-row cache whose residency and per-entry hit
// counts the placement sweep harvests. The engine registers its own cache;
// the cluster tier additionally registers its per-shard caches.
func (s *Store) AddSource(l *hotcache.Live) {
	if l == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, l)
	s.mu.Unlock()
}

func (s *Store) loop() {
	t := time.NewTicker(s.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			close(s.done)
			return
		case <-t.C:
			s.SweepNow()
		}
	}
}

type streamRow struct {
	id  int
	row int64
}

// SweepNow runs one synchronous promote/demote pass: harvest row frequencies
// from the registered caches, score rows, and repin the hot tier within the
// byte budget.
//
// Policy: a row qualifies when it is resident in a source cache with at
// least PromoteMinHits per-entry hits (LRU residency is the recency filter,
// accumulated hits the frequency signal). Qualifying rows rank by hits;
// already-pinned rows that fell out of the harvest keep their pin at the
// lowest priority for up to DemoteAfter sweeps (hysteresis), so a row
// oscillating around the threshold is not thrashed between tiers, and under
// budget pressure idle rows are evicted before any active one.
func (s *Store) SweepNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.sweeps.Add(1)

	cand := make(map[streamRow]int64)
	for _, src := range s.sources {
		src.ForEachEntry(func(id int, row int64, bytes int, hits int64) {
			if id >= 0 && id < len(s.streams) {
				cand[streamRow{id, row}] += hits
			}
		})
	}

	type scored struct {
		streamRow
		score int64
		ent   *hotEntry // nil for a prospective promotion
	}
	var list []scored
	pinned := make(map[streamRow]bool)
	for id, m := range s.master {
		for row, ent := range m {
			k := streamRow{id, row}
			pinned[k] = true
			if h, ok := cand[k]; ok && h >= s.cfg.PromoteMinHits {
				ent.idle = 0
				list = append(list, scored{k, h, ent})
				continue
			}
			ent.idle++
			if ent.idle <= s.cfg.DemoteAfter {
				// Hysteresis: keep the pin at the lowest priority, so an
				// oscillating row is not thrashed between tiers but budget
				// pressure evicts idle rows before active ones.
				list = append(list, scored{k, 0, ent})
			}
		}
	}
	for k, h := range cand {
		if h >= s.cfg.PromoteMinHits && !pinned[k] {
			list = append(list, scored{k, h, nil})
		}
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].score != list[b].score {
			return list[a].score > list[b].score
		}
		if list[a].id != list[b].id {
			return list[a].id < list[b].id
		}
		return list[a].row < list[b].row
	})

	newMaster := make([]map[int64]*hotEntry, len(s.streams))
	var used, promoted int64
	for _, c := range list {
		st := s.streams[c.id]
		if used+st.vecBytes > s.cfg.HotBytes {
			continue // smaller rows of other streams may still fit
		}
		ent := c.ent
		if ent == nil {
			vec := make([]float32, st.dim)
			copy(vec, st.cold[c.row*st.dim:(c.row+1)*st.dim])
			ent = &hotEntry{vec: vec}
			promoted++
		}
		if newMaster[c.id] == nil {
			newMaster[c.id] = make(map[int64]*hotEntry)
		}
		newMaster[c.id][c.row] = ent
		used += st.vecBytes
	}
	// A demotion is any previously pinned row absent from the new placement,
	// whether it idled past the hysteresis band or lost the budget race.
	var demoted int64
	for k := range pinned {
		if newMaster[k.id] == nil || newMaster[k.id][k.row] == nil {
			demoted++
		}
	}
	s.publishLocked(newMaster, used)
	s.promotions.Add(promoted)
	s.demotions.Add(demoted)
}

// publishLocked swaps in a new master placement and publishes the per-stream
// read-only maps. Callers hold s.mu.
func (s *Store) publishLocked(newMaster []map[int64]*hotEntry, usedBytes int64) {
	for id, st := range s.streams {
		m := newMaster[id]
		if len(m) == 0 {
			st.hot.Store(nil)
			continue
		}
		pub := make(map[int64][]float32, len(m))
		for row, ent := range m {
			pub[row] = ent.vec
		}
		st.hot.Store(&hotMap{rows: pub})
	}
	s.master = newMaster
	s.hotBytes = usedBytes
}

// SetPlacement force-pins exactly the given rows of stream id, replacing its
// current placement and bypassing the frequency policy and byte budget. Rows
// out of range are ignored; nil clears the stream's hot set. Test hook for
// the bit-identity property tests.
func (s *Store) SetPlacement(id int, rows []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || id < 0 || id >= len(s.streams) {
		return
	}
	st := s.streams[id]
	old := s.master[id]
	var m map[int64]*hotEntry
	for _, row := range rows {
		if row < 0 || row >= st.rows {
			continue
		}
		if m == nil {
			m = make(map[int64]*hotEntry)
		}
		if e, ok := old[row]; ok {
			m[row] = e
			continue
		}
		vec := make([]float32, st.dim)
		copy(vec, st.cold[row*st.dim:(row+1)*st.dim])
		m[row] = &hotEntry{vec: vec}
	}
	next := make([]map[int64]*hotEntry, len(s.streams))
	copy(next, s.master)
	next[id] = m
	var used int64
	for sid, sm := range next {
		used += int64(len(sm)) * s.streams[sid].vecBytes
	}
	s.publishLocked(next, used)
}

// Prefetch touches the cold copy of one row so its page is faulted in before
// the synchronous gather needs it. Hot rows are skipped. Returns true when a
// cold touch happened.
func (s *Store) Prefetch(id int, row int64) bool {
	if id < 0 || id >= len(s.streams) {
		return false
	}
	st := s.streams[id]
	if row < 0 || row >= st.rows {
		return false
	}
	if st.IsHot(row) {
		return false
	}
	// Touch one float per page the row spans, not just the first: a row
	// crossing a page boundary would otherwise still fault synchronously in
	// the gather for its tail pages.
	const floatsPerPage = 4096 / 4
	lo, hi := row*st.dim, (row+1)*st.dim
	var acc int64
	for i := lo; i < hi; i += floatsPerPage {
		acc += int64(math.Float32bits(st.cold[i]))
	}
	acc += int64(math.Float32bits(st.cold[hi-1]))
	s.prefetchSink.Add(acc)
	s.prefetches.Add(1)
	return true
}

// BoundNS returns the residency-weighted per-inference cold-tier latency
// bound: for each stream, its per-inference lookups times the fraction of
// rows NOT pinned hot times the modeled cold latency. With an empty hot tier
// (startup) this is the fully cold bound SLA admission memoizes; it is
// conservative under skew, since pinned rows absorb far more than their
// row-count share of accesses.
func (s *Store) BoundNS() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boundNSLocked()
}

// boundNSLocked computes the bound against the current master placement.
// Callers hold s.mu — Snapshot uses this so the bound and the row counts it
// reports come from the same placement, not two acquisitions apart.
func (s *Store) boundNSLocked() float64 {
	var ns float64
	for id, st := range s.streams {
		coldFrac := 1 - float64(len(s.master[id]))/float64(st.rows)
		ns += float64(st.lookups) * coldFrac * s.cfg.ColdLatencyNS
	}
	return ns
}

// ColdReadRate returns the observed fraction of row reads served by the cold
// tier (1 when idle — conservative until traffic arrives).
func (s *Store) ColdReadRate() float64 {
	var hot, cold int64
	for _, st := range s.streams {
		hot += st.hotReads.Load()
		cold += st.coldReads.Load()
	}
	if hot+cold == 0 {
		return 1
	}
	return float64(cold) / float64(hot+cold)
}

// Snapshot is a point-in-time view of the store for /stats and reports.
type Snapshot struct {
	Path           string  `json:"path"`
	ColdLatencyNS  float64 `json:"cold_latency_ns"`
	HotBudgetBytes int64   `json:"hot_budget_bytes"`
	TotalBytes     int64   `json:"total_bytes"`
	HotRows        int64   `json:"hot_rows"`
	ColdRows       int64   `json:"cold_rows"`
	HotBytes       int64   `json:"hot_bytes"`
	HotReads       int64   `json:"hot_reads"`
	ColdReads      int64   `json:"cold_reads"`
	// HotReadRate is HotReads/(HotReads+ColdReads), 0 when idle.
	HotReadRate float64 `json:"hot_read_rate"`
	Promotions  int64   `json:"promotions"`
	Demotions   int64   `json:"demotions"`
	Sweeps      int64   `json:"sweeps"`
	Prefetches  int64   `json:"prefetches"`
	// BoundNS is the current residency-weighted per-inference cold-tier
	// latency bound (see Store.BoundNS).
	BoundNS float64 `json:"bound_ns"`
}

// Snapshot summarises the store.
func (s *Store) Snapshot() Snapshot {
	snap := Snapshot{
		Path:           s.path,
		ColdLatencyNS:  s.cfg.ColdLatencyNS,
		HotBudgetBytes: s.cfg.HotBytes,
		TotalBytes:     s.totalBytes,
		Promotions:     s.promotions.Load(),
		Demotions:      s.demotions.Load(),
		Sweeps:         s.sweeps.Load(),
		Prefetches:     s.prefetches.Load(),
	}
	// One acquisition covers the bound AND the row/byte counts: computing
	// BoundNS through its public wrapper took s.mu separately, so a sweep
	// publishing a new placement between the two locks could pair a bound
	// from one placement with row counts from another (statsnapshot's bug
	// class — a snapshot no real instant ever exhibited).
	s.mu.Lock()
	snap.BoundNS = s.boundNSLocked()
	for id, st := range s.streams {
		snap.HotRows += int64(len(s.master[id]))
		snap.ColdRows += st.rows - int64(len(s.master[id]))
	}
	snap.HotBytes = s.hotBytes
	s.mu.Unlock()
	var hot, cold int64
	for _, st := range s.streams {
		hot += st.hotReads.Load()
		cold += st.coldReads.Load()
	}
	snap.HotReads, snap.ColdReads = hot, cold
	if hot+cold > 0 {
		snap.HotReadRate = float64(hot) / float64(hot+cold)
	}
	return snap
}

// Close stops the sweep loop, unmaps the cold file, and removes it. Safe to
// call twice. Callers must have stopped every reader first: a Row on a
// closed store reads unmapped memory.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.stop != nil {
		close(s.stop)
		<-s.done
	}
	var first error
	if err := unmapFile(s.mapped); err != nil {
		first = err
	}
	s.mapped = nil
	if err := s.f.Close(); err != nil && first == nil {
		first = err
	}
	if err := os.Remove(s.path); err != nil && first == nil {
		first = err
	}
	return first
}
