//go:build !unix

package tieredstore

import (
	"fmt"
	"os"
)

// mapFile on platforms without syscall.Mmap falls back to reading the whole
// cold file into memory: functionally identical (same bits, same offsets),
// with the cold-tier latency still modeled rather than physical.
func mapFile(f *os.File, size int) ([]byte, error) {
	b := make([]byte, size)
	n, err := f.ReadAt(b, 0)
	if err != nil && n != size {
		return nil, fmt.Errorf("tieredstore: read cold file: %w", err)
	}
	return b, nil
}

func unmapFile(b []byte) error { return nil }
