package tieredstore

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"microrec/internal/hotcache"
)

// testSpecs builds two deterministic streams: stream 0 with 64 rows of dim
// 4, stream 1 with 32 rows of dim 8.
func testSpecs(t *testing.T) []StreamSpec {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	mk := func(id, rows, dim, lookups int) StreamSpec {
		data := make([]float32, rows*dim)
		for i := range data {
			data[i] = rng.Float32()*2 - 1
		}
		return StreamSpec{ID: id, Data: data, Dim: dim, Lookups: lookups}
	}
	return []StreamSpec{mk(0, 64, 4, 2), mk(1, 32, 8, 1)}
}

func openTest(t *testing.T, cfg Config) (*Store, []StreamSpec) {
	t.Helper()
	specs := testSpecs(t)
	cfg.SweepEvery = -1 // tests drive sweeps explicitly
	s, err := Open(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, specs
}

// TestColdReadsBitIdentical checks every row read back from the mmap'd cold
// tier is bit-identical to the source payload, before and after promotions.
func TestColdReadsBitIdentical(t *testing.T) {
	s, specs := openTest(t, Config{})
	for id, sp := range specs {
		st := s.Stream(id)
		if st.Rows() != int64(len(sp.Data)/sp.Dim) {
			t.Fatalf("stream %d rows %d", id, st.Rows())
		}
		for row := int64(0); row < st.Rows(); row++ {
			got := st.Row(row)
			for k := 0; k < sp.Dim; k++ {
				want := sp.Data[int(row)*sp.Dim+k]
				if math.Float32bits(got[k]) != math.Float32bits(want) {
					t.Fatalf("stream %d row %d[%d]: %v != %v", id, row, k, got[k], want)
				}
			}
		}
	}
	// Pin half of stream 0 and re-check both tiers.
	s.SetPlacement(0, []int64{0, 1, 2, 3, 30, 31, 62, 63})
	st := s.Stream(0)
	if !st.IsHot(31) || st.IsHot(29) {
		t.Fatal("placement not applied")
	}
	for row := int64(0); row < st.Rows(); row++ {
		got := st.Row(row)
		for k := 0; k < specs[0].Dim; k++ {
			want := specs[0].Data[int(row)*specs[0].Dim+k]
			if math.Float32bits(got[k]) != math.Float32bits(want) {
				t.Fatalf("post-placement row %d[%d]: %v != %v", row, k, got[k], want)
			}
		}
	}
}

// TestSweepPromotesByFrequency drives traffic through a source cache and
// checks the sweep pins the frequent rows, within the byte budget, ranked by
// hits.
func TestSweepPromotesByFrequency(t *testing.T) {
	// Budget for exactly 3 rows of stream 0 (dim 4 => 16 bytes each).
	s, _ := openTest(t, Config{HotBytes: 48, PromoteMinHits: 2, DemoteAfter: 1})
	cache, err := hotcache.NewLive(1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.AddSource(cache)
	// Rows 5, 6, 7 of stream 0 get 10/5/3 hits; row 8 only 1 (below the
	// threshold); row 9 of stream 1 gets 20 hits but each of its rows costs
	// 32 bytes.
	touch := func(id int, row int64, n int) {
		for i := 0; i < n; i++ {
			cache.Lookup(id, row, 16)
		}
	}
	touch(0, 5, 11) // 1 miss + 10 hits
	touch(0, 6, 6)
	touch(0, 7, 4)
	touch(0, 8, 2) // 1 hit: below PromoteMinHits
	touch(1, 9, 21)

	s.SweepNow()
	st0, st1 := s.Stream(0), s.Stream(1)
	// Ranking: (1,9) 20 hits = 32 bytes, then (0,5) 10 hits = 16 bytes;
	// (0,6) would overflow the 48-byte budget... 32+16=48, so (0,6)/(0,7)
	// are out.
	if !st1.IsHot(9) {
		t.Error("highest-frequency row not pinned")
	}
	if !st0.IsHot(5) {
		t.Error("second-ranked row not pinned")
	}
	if st0.IsHot(6) || st0.IsHot(7) || st0.IsHot(8) {
		t.Error("budget-overflowing or sub-threshold rows pinned")
	}
	snap := s.Snapshot()
	if snap.HotBytes > 48 {
		t.Errorf("hot bytes %d exceed budget", snap.HotBytes)
	}
	if snap.Promotions != 2 || snap.HotRows != 2 {
		t.Errorf("promotions %d hot rows %d, want 2/2", snap.Promotions, snap.HotRows)
	}
}

// TestSweepHysteresis checks a pinned row survives DemoteAfter sweeps
// without traffic before demotion.
func TestSweepHysteresis(t *testing.T) {
	s, _ := openTest(t, Config{HotBytes: 1 << 16, PromoteMinHits: 2, DemoteAfter: 2})
	cache, err := hotcache.NewLive(64, 1) // tiny: row falls out of the LRU fast
	if err != nil {
		t.Fatal(err)
	}
	s.AddSource(cache)
	for i := 0; i < 5; i++ {
		cache.Lookup(0, 12, 16)
	}
	s.SweepNow()
	if !s.Stream(0).IsHot(12) {
		t.Fatal("frequent row not promoted")
	}
	// Evict row 12 from the cache: the harvest no longer sees it.
	for i := 0; i < 8; i++ {
		cache.Lookup(0, int64(40+i), 16)
	}
	if cache.Lookup(0, 12, 16) {
		t.Fatal("test premise broken: row 12 still cache-resident")
	}
	// Remove the fresh rows too so nothing else promotes/interferes; the
	// lookup above re-inserted row 12, so evict again with big rows.
	cache.Lookup(0, 50, 64)

	for i := 1; i <= 2; i++ {
		s.SweepNow()
		if !s.Stream(0).IsHot(12) {
			t.Fatalf("row demoted after %d idle sweeps, hysteresis is %d", i, 2)
		}
	}
	s.SweepNow() // third idle sweep: past the band
	if s.Stream(0).IsHot(12) {
		t.Fatal("row still pinned past the hysteresis band")
	}
	if d := s.Snapshot().Demotions; d < 1 {
		t.Errorf("demotions %d, want >= 1", d)
	}
}

// TestCloseRemovesFile pins the cleanup contract for both temp and explicit
// paths, and that Close is idempotent.
func TestCloseRemovesFile(t *testing.T) {
	specs := testSpecs(t)
	s, err := Open(Config{SweepEvery: -1}, specs)
	if err != nil {
		t.Fatal(err)
	}
	tmp := s.Path()
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("temp cold file missing while open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp cold file survives Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	explicit := t.TempDir() + "/cold.bin"
	s2, err := Open(Config{Path: explicit, SweepEvery: -1}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Path() != explicit {
		t.Fatalf("path %q", s2.Path())
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(explicit); !os.IsNotExist(err) {
		t.Fatalf("explicit cold file survives Close: %v", err)
	}
}

// TestBoundNS checks the residency-weighted latency bound: fully cold at
// startup, shrinking as rows pin.
func TestBoundNS(t *testing.T) {
	s, _ := openTest(t, Config{ColdLatencyNS: 1000})
	// Stream 0: 2 lookups, stream 1: 1 lookup — all cold.
	if got, want := s.BoundNS(), 3000.0; got != want {
		t.Fatalf("cold bound %v, want %v", got, want)
	}
	// Pin half of stream 0's 64 rows: its term halves.
	rows := make([]int64, 32)
	for i := range rows {
		rows[i] = int64(i)
	}
	s.SetPlacement(0, rows)
	if got, want := s.BoundNS(), 2.0*0.5*1000+1000; got != want {
		t.Fatalf("half-hot bound %v, want %v", got, want)
	}
}

// TestPrefetchAndCounters checks Prefetch touches only cold rows and the
// read counters split by tier.
func TestPrefetchAndCounters(t *testing.T) {
	s, _ := openTest(t, Config{})
	s.SetPlacement(0, []int64{3})
	if s.Prefetch(0, 3) {
		t.Error("prefetch touched a hot row")
	}
	if !s.Prefetch(0, 4) {
		t.Error("prefetch skipped a cold row")
	}
	if s.Prefetch(0, -1) || s.Prefetch(0, 1<<40) || s.Prefetch(9, 0) {
		t.Error("out-of-range prefetch accepted")
	}
	st := s.Stream(0)
	st.Row(3)
	st.Row(4)
	snap := s.Snapshot()
	if snap.HotReads != 1 || snap.ColdReads != 1 || snap.Prefetches != 1 {
		t.Errorf("reads hot=%d cold=%d prefetches=%d, want 1/1/1", snap.HotReads, snap.ColdReads, snap.Prefetches)
	}
	if snap.HotReadRate != 0.5 {
		t.Errorf("hot read rate %v", snap.HotReadRate)
	}
}

// TestHotBytesDefault checks the 4x default: an unset budget becomes a
// quarter of the tierable bytes.
func TestHotBytesDefault(t *testing.T) {
	s, specs := openTest(t, Config{})
	var total int64
	for _, sp := range specs {
		total += int64(len(sp.Data)) * 4
	}
	if got := s.HotBudgetBytes(); got != total/4 {
		t.Fatalf("default hot budget %d, want %d", got, total/4)
	}
	if s.TotalBytes() != total {
		t.Fatalf("total bytes %d, want %d", s.TotalBytes(), total)
	}
	// Explicit all-cold: negative budget normalises to zero.
	s2, err := Open(Config{HotBytes: -1, SweepEvery: -1}, testSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.HotBudgetBytes() != 0 {
		t.Fatalf("all-cold budget %d", s2.HotBudgetBytes())
	}
}

// TestOpenValidation covers the spec/config error paths.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{SweepEvery: -1}, nil); err == nil {
		t.Error("no streams accepted")
	}
	if _, err := Open(Config{SweepEvery: -1}, []StreamSpec{{ID: 1, Data: []float32{1}, Dim: 1}}); err == nil {
		t.Error("non-dense IDs accepted")
	}
	if _, err := Open(Config{SweepEvery: -1}, []StreamSpec{{ID: 0, Data: []float32{1, 2, 3}, Dim: 2}}); err == nil {
		t.Error("ragged payload accepted")
	}
	if _, err := Open(Config{ColdLatencyNS: -1, SweepEvery: -1}, testSpecs(t)); err == nil {
		t.Error("negative cold latency accepted")
	}
}
