//go:build unix

package tieredstore

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The mapping is shared with the
// page cache, so cold-row reads fault pages in on demand — the behaviour
// the modeled cold-tier latency stands in for.
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
