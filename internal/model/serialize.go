package model

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"microrec/internal/tensor"
)

func newMatrixFromWire(m matrixWire) *tensor.Matrix {
	return &tensor.Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data}
}

// Serialization lets deployments persist model specifications (portable
// JSON) and materialised parameters (gob) — the artefacts a serving fleet
// ships around.

// SaveSpec writes the spec as indented JSON.
func SaveSpec(w io.Writer, s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("model: encoding spec: %w", err)
	}
	return nil
}

// LoadSpec reads a JSON spec and validates it.
func LoadSpec(r io.Reader) (*Spec, error) {
	var s Spec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// parametersWire is the gob wire format of Parameters. Weights are flattened
// because tensor.Matrix's fields are already exported but we keep the wire
// format independent of its layout.
type parametersWire struct {
	Spec       *Spec
	Embeddings [][]float32
	ActualRows []int64
	Weights    []matrixWire
	Biases     [][]float32
}

type matrixWire struct {
	Rows, Cols int
	Data       []float32
}

// SaveParameters writes materialised parameters in gob format.
func SaveParameters(w io.Writer, p *Parameters) error {
	if p == nil || p.Spec == nil {
		return fmt.Errorf("model: nil parameters")
	}
	wire := parametersWire{
		Spec:       p.Spec,
		Embeddings: p.Embeddings,
		ActualRows: p.ActualRows,
		Biases:     p.Biases,
	}
	for _, m := range p.Weights {
		wire.Weights = append(wire.Weights, matrixWire{Rows: m.Rows, Cols: m.Cols, Data: m.Data})
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("model: encoding parameters: %w", err)
	}
	return nil
}

// LoadParameters reads gob-encoded parameters and validates shape
// consistency against the embedded spec.
func LoadParameters(r io.Reader) (*Parameters, error) {
	var wire parametersWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("model: decoding parameters: %w", err)
	}
	if wire.Spec == nil {
		return nil, fmt.Errorf("model: parameters missing spec")
	}
	if err := wire.Spec.Validate(); err != nil {
		return nil, err
	}
	p := &Parameters{
		Spec:       wire.Spec,
		Embeddings: wire.Embeddings,
		ActualRows: wire.ActualRows,
		Biases:     wire.Biases,
	}
	for _, m := range wire.Weights {
		if m.Rows*m.Cols != len(m.Data) {
			return nil, fmt.Errorf("model: weight matrix %dx%d carries %d values", m.Rows, m.Cols, len(m.Data))
		}
		p.Weights = append(p.Weights, newMatrixFromWire(m))
	}
	if err := p.validateShapes(); err != nil {
		return nil, err
	}
	return p, nil
}

// validateShapes cross-checks loaded parameters against their spec.
func (p *Parameters) validateShapes() error {
	s := p.Spec
	if len(p.Embeddings) != len(s.Tables) || len(p.ActualRows) != len(s.Tables) {
		return fmt.Errorf("model: parameters cover %d tables, spec has %d", len(p.Embeddings), len(s.Tables))
	}
	for i, t := range s.Tables {
		rows := p.ActualRows[i]
		if rows < 1 || rows > t.Rows {
			return fmt.Errorf("model: table %q actual rows %d out of range", t.Name, rows)
		}
		if int64(len(p.Embeddings[i])) != rows*int64(t.Dim) {
			return fmt.Errorf("model: table %q storage %d floats, want %d", t.Name, len(p.Embeddings[i]), rows*int64(t.Dim))
		}
	}
	dims := s.LayerDims()
	if len(p.Weights) != len(dims) || len(p.Biases) != len(dims) {
		return fmt.Errorf("model: parameters carry %d layers, spec needs %d", len(p.Weights), len(dims))
	}
	for l, d := range dims {
		if p.Weights[l].Rows != d[0] || p.Weights[l].Cols != d[1] {
			return fmt.Errorf("model: layer %d weights %dx%d, want %dx%d",
				l, p.Weights[l].Rows, p.Weights[l].Cols, d[0], d[1])
		}
		if len(p.Biases[l]) != d[1] {
			return fmt.Errorf("model: layer %d bias %d, want %d", l, len(p.Biases[l]), d[1])
		}
	}
	return nil
}
