package model

import (
	"strings"
	"testing"
)

func TestCharacterizeSmall(t *testing.T) {
	s := SmallProduction()
	c, err := Characterize(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tables != 47 || c.LookupsPerItem != 47 {
		t.Errorf("tables/lookups = %d/%d", c.Tables, c.LookupsPerItem)
	}
	// Bytes gathered per inference = featureLen * 4 (each table looked up
	// once, no dense features).
	if c.EmbeddingBytesItem != int64(s.FeatureLen()*4) {
		t.Errorf("gathered bytes = %d, want %d", c.EmbeddingBytesItem, s.FeatureLen()*4)
	}
	// The model is compute-heavy per gathered byte (FC ops dominate), but
	// the *memory accesses* are random — both facts the paper leans on.
	if c.OpsPerByte < 100 {
		t.Errorf("ops/byte = %.0f, expected >> 1 (FC tower dominates arithmetic)", c.OpsPerByte)
	}
	if c.LargestTableBytes < 1_000_000_000 {
		t.Errorf("largest table %d B, want ~1 GB (user_id)", c.LargestTableBytes)
	}
	if c.SmallestTableBytes > 64<<10 {
		t.Errorf("smallest table %d B, want tiny", c.SmallestTableBytes)
	}
	if !strings.Contains(c.String(), "production-small") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCharacterizeHistogramCoversAllTables(t *testing.T) {
	for _, s := range []*Spec{SmallProduction(), LargeProduction()} {
		c, err := Characterize(s)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range c.SizeHistogram {
			total += b.Count
		}
		if total != len(s.Tables) {
			t.Errorf("%s: histogram covers %d of %d tables", s.Name, total, len(s.Tables))
		}
	}
}

func TestCharacterizeErrors(t *testing.T) {
	if _, err := Characterize(&Spec{Name: "bad"}); err == nil {
		t.Error("invalid spec: want error")
	}
}

func TestDimDistribution(t *testing.T) {
	s := SmallProduction()
	dist := DimDistribution(s)
	// Table 1 construction: 30 dim-4, 10 dim-8, 4 dim-16, 1 dim-24, 2 dim-32.
	want := map[int]int{4: 30, 8: 10, 16: 4, 24: 1, 32: 2}
	for d, n := range want {
		if dist[d] != n {
			t.Errorf("dim %d count = %d, want %d", d, dist[d], n)
		}
	}
	dims := DimsSorted(s)
	for i := 1; i < len(dims); i++ {
		if dims[i] <= dims[i-1] {
			t.Error("DimsSorted not ascending")
		}
	}
	// §3.3: vectors have 4 to 64 elements in most cases.
	if dims[0] < 4 || dims[len(dims)-1] > 64 {
		t.Errorf("dims %v outside the paper's 4-64 range", dims)
	}
}
