package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	s := SmallProduction()
	var buf bytes.Buffer
	if err := SaveSpec(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Tables) != len(s.Tables) || got.FeatureLen() != s.FeatureLen() {
		t.Errorf("round trip lost data: %+v", got)
	}
	for i := range s.Tables {
		if got.Tables[i] != s.Tables[i] {
			t.Fatalf("table %d differs: %+v vs %+v", i, got.Tables[i], s.Tables[i])
		}
	}
}

func TestSaveSpecRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveSpec(&buf, &Spec{Name: "bad"}); err == nil {
		t.Error("invalid spec: want error")
	}
}

func TestLoadSpecRejectsBadInput(t *testing.T) {
	if _, err := LoadSpec(strings.NewReader("{not json")); err == nil {
		t.Error("bad json: want error")
	}
	// Valid JSON but invalid spec (no tables).
	if _, err := LoadSpec(strings.NewReader(`{"Name":"x","Hidden":[8]}`)); err == nil {
		t.Error("spec without tables: want error")
	}
}

func TestParametersGobRoundTrip(t *testing.T) {
	s := SmallProduction()
	p, err := s.Materialize(MaterializeOptions{Seed: 9, MaxRowsPerTable: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveParameters(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParameters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != s.Name {
		t.Errorf("spec name %q", got.Spec.Name)
	}
	for i := range p.Embeddings {
		if len(got.Embeddings[i]) != len(p.Embeddings[i]) {
			t.Fatalf("table %d storage differs", i)
		}
		for j := range p.Embeddings[i] {
			if got.Embeddings[i][j] != p.Embeddings[i][j] {
				t.Fatalf("table %d value %d differs", i, j)
			}
		}
	}
	for l := range p.Weights {
		if got.Weights[l].Rows != p.Weights[l].Rows || got.Weights[l].Cols != p.Weights[l].Cols {
			t.Fatalf("layer %d shape differs", l)
		}
		for j := range p.Weights[l].Data {
			if got.Weights[l].Data[j] != p.Weights[l].Data[j] {
				t.Fatalf("layer %d weight %d differs", l, j)
			}
		}
	}
}

func TestLoadParametersValidates(t *testing.T) {
	if _, err := LoadParameters(strings.NewReader("garbage")); err == nil {
		t.Error("garbage gob: want error")
	}
	if err := SaveParameters(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil params: want error")
	}
	// Corrupt shape: serialize then tamper via the wire structs.
	s := SmallProduction()
	p, err := s.Materialize(MaterializeOptions{Seed: 1, MaxRowsPerTable: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.Embeddings[0] = p.Embeddings[0][:4] // break table 0's storage
	var buf bytes.Buffer
	if err := SaveParameters(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParameters(&buf); err == nil {
		t.Error("corrupted embedding storage: want error on load")
	}
}

func TestValidateShapesCatchesWeightMismatch(t *testing.T) {
	s := SmallProduction()
	p, err := s.Materialize(MaterializeOptions{Seed: 1, MaxRowsPerTable: 8})
	if err != nil {
		t.Fatal(err)
	}
	p.Biases[0] = p.Biases[0][:3]
	if err := p.validateShapes(); err == nil {
		t.Error("short bias: want error")
	}
}
