package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmallProductionMatchesTable1(t *testing.T) {
	s := SmallProduction()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Tables); got != 47 {
		t.Errorf("small model table count = %d, want 47 (Table 1)", got)
	}
	if got := s.FeatureLen(); got != 352 {
		t.Errorf("small model feature length = %d, want 352 (Table 1)", got)
	}
	wantHidden := []int{1024, 512, 256}
	for i, h := range wantHidden {
		if s.Hidden[i] != h {
			t.Errorf("small hidden[%d] = %d, want %d", i, s.Hidden[i], h)
		}
	}
	gb := float64(s.TotalBytes()) / (1 << 30)
	if gb < 1.1 || gb > 1.5 {
		t.Errorf("small model size = %.2f GiB, want ~1.3 (Table 1)", gb)
	}
}

func TestLargeProductionMatchesTable1(t *testing.T) {
	s := LargeProduction()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Tables); got != 98 {
		t.Errorf("large model table count = %d, want 98 (Table 1)", got)
	}
	if got := s.FeatureLen(); got != 876 {
		t.Errorf("large model feature length = %d, want 876 (Table 1)", got)
	}
	gb := float64(s.TotalBytes()) / (1 << 30)
	if gb < 14 || gb > 16.5 {
		t.Errorf("large model size = %.2f GiB, want ~15.1 (Table 1)", gb)
	}
}

func TestProductionOpsPerItem(t *testing.T) {
	// GOP/item must match the paper's implied operation counts: Table 2's
	// small model reports 619.5 GOP/s at 3.05e5 items/s => ~2.03 MOP/item.
	small := SmallProduction()
	if got := small.OpsPerItem(); got != 2*(352*1024+1024*512+512*256+256*1) {
		t.Errorf("small OpsPerItem = %d", got)
	}
	mops := float64(small.OpsPerItem()) / 1e6
	if mops < 2.0 || mops > 2.1 {
		t.Errorf("small model %.3f MOP/item, want ~2.03", mops)
	}
	large := LargeProduction()
	mopsL := float64(large.OpsPerItem()) / 1e6
	if mopsL < 3.0 || mopsL > 3.2 {
		t.Errorf("large model %.3f MOP/item, want ~3.11", mopsL)
	}
}

func TestProductionLookupCounts(t *testing.T) {
	// Production models look up each table exactly once (footnote 1).
	for _, s := range []*Spec{SmallProduction(), LargeProduction()} {
		if s.NumLookups() != len(s.Tables) {
			t.Errorf("%s: %d lookups for %d tables", s.Name, s.NumLookups(), len(s.Tables))
		}
	}
}

func TestTableSpecValidate(t *testing.T) {
	bad := []TableSpec{
		{Name: "a", Rows: 0, Dim: 4, Lookups: 1},
		{Name: "b", Rows: 10, Dim: 0, Lookups: 1},
		{Name: "c", Rows: 10, Dim: 4, Lookups: 0},
	}
	for _, ts := range bad {
		if err := ts.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", ts)
		}
	}
	good := TableSpec{Name: "d", Rows: 10, Dim: 4, Lookups: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", good, err)
	}
}

func TestSpecValidateCatchesBadIDs(t *testing.T) {
	s := SmallProduction()
	s.Tables[3].ID = 99
	if err := s.Validate(); err == nil {
		t.Error("Validate with shuffled ID: want error")
	}
}

func TestSpecValidateCatchesEmpty(t *testing.T) {
	if err := (&Spec{Name: "x", Hidden: []int{8}}).Validate(); err == nil {
		t.Error("Validate with no tables: want error")
	}
	if err := (&Spec{Name: "x", Tables: []TableSpec{{Rows: 1, Dim: 1, Lookups: 1}}}).Validate(); err == nil {
		t.Error("Validate with no hidden layers: want error")
	}
}

func TestDLRMRMC2(t *testing.T) {
	s, err := DLRMRMC2(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tables) != 8 {
		t.Errorf("tables = %d, want 8", len(s.Tables))
	}
	if s.NumLookups() != 32 {
		t.Errorf("lookups = %d, want 32 (4 per table, §5.4.2)", s.NumLookups())
	}
	// Every table must fit a 256 MB HBM bank.
	for _, tab := range s.Tables {
		if tab.Bytes() > 256<<20 {
			t.Errorf("table %q is %d bytes, exceeds one HBM bank", tab.Name, tab.Bytes())
		}
	}
	if _, err := DLRMRMC2(0, 16); err == nil {
		t.Error("DLRMRMC2(0, _): want error")
	}
	if _, err := DLRMRMC2(8, 0); err == nil {
		t.Error("DLRMRMC2(_, 0): want error")
	}
}

func TestWithLookupRounds(t *testing.T) {
	s := SmallProduction()
	r3, err := s.WithLookupRounds(3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.NumLookups() != 3*s.NumLookups() {
		t.Errorf("rounds=3 lookups = %d, want %d", r3.NumLookups(), 3*s.NumLookups())
	}
	// Original is untouched.
	if s.NumLookups() != len(s.Tables) {
		t.Error("WithLookupRounds mutated the original spec")
	}
	if _, err := s.WithLookupRounds(0); err == nil {
		t.Error("WithLookupRounds(0): want error")
	}
}

func TestLayerDims(t *testing.T) {
	s := SmallProduction()
	dims := s.LayerDims()
	want := [][2]int{{352, 1024}, {1024, 512}, {512, 256}, {256, 1}}
	if len(dims) != len(want) {
		t.Fatalf("LayerDims length = %d, want %d", len(dims), len(want))
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Errorf("LayerDims[%d] = %v, want %v", i, dims[i], want[i])
		}
	}
}

func TestMaterializeDeterminism(t *testing.T) {
	s := SmallProduction()
	a, err := s.Materialize(MaterializeOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Materialize(MaterializeOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Embeddings {
		for j := range a.Embeddings[i] {
			if a.Embeddings[i][j] != b.Embeddings[i][j] {
				t.Fatalf("embedding table %d differs at %d between same-seed materialisations", i, j)
			}
		}
	}
	c, err := s.Materialize(MaterializeOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Embeddings[0][0] == c.Embeddings[0][0] && a.Embeddings[0][1] == c.Embeddings[0][1] {
		t.Error("different seeds produced identical leading values")
	}
}

func TestMaterializeCapsRows(t *testing.T) {
	s := SmallProduction()
	p, err := s.Materialize(MaterializeOptions{Seed: 1, MaxRowsPerTable: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i, t2 := range s.Tables {
		wantRows := t2.Rows
		if wantRows > 64 {
			wantRows = 64
		}
		if p.ActualRows[i] != wantRows {
			t.Errorf("table %d ActualRows = %d, want %d", i, p.ActualRows[i], wantRows)
		}
		if int64(len(p.Embeddings[i])) != wantRows*int64(t2.Dim) {
			t.Errorf("table %d storage = %d floats", i, len(p.Embeddings[i]))
		}
	}
	if _, err := s.Materialize(MaterializeOptions{MaxRowsPerTable: -1}); err == nil {
		t.Error("negative row cap: want error")
	}
}

func TestMaterializeWeightShapes(t *testing.T) {
	s := SmallProduction()
	p, err := s.Materialize(MaterializeOptions{Seed: 1, MaxRowsPerTable: 16})
	if err != nil {
		t.Fatal(err)
	}
	dims := s.LayerDims()
	if len(p.Weights) != len(dims) {
		t.Fatalf("weights = %d layers, want %d", len(p.Weights), len(dims))
	}
	for l, d := range dims {
		if p.Weights[l].Rows != d[0] || p.Weights[l].Cols != d[1] {
			t.Errorf("layer %d weight %dx%d, want %dx%d", l, p.Weights[l].Rows, p.Weights[l].Cols, d[0], d[1])
		}
		if len(p.Biases[l]) != d[1] {
			t.Errorf("layer %d bias length %d, want %d", l, len(p.Biases[l]), d[1])
		}
	}
}

func TestRowWrapsLogicalIndex(t *testing.T) {
	s := SmallProduction()
	p, err := s.Materialize(MaterializeOptions{Seed: 1, MaxRowsPerTable: 8})
	if err != nil {
		t.Fatal(err)
	}
	// user_id is the last table with 8M logical rows; index 1e6 must wrap.
	last := len(s.Tables) - 1
	big, err := p.Row(last, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := p.Row(last, 1_000_000%8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range big {
		if big[i] != wrapped[i] {
			t.Fatal("logical index did not wrap through scaled storage")
		}
	}
	if _, err := p.Row(last, s.Tables[last].Rows); err == nil {
		t.Error("Row beyond logical rows: want error")
	}
	if _, err := p.Row(-1, 0); err == nil {
		t.Error("Row with negative table: want error")
	}
	if _, err := p.Row(last, -1); err == nil {
		t.Error("Row with negative index: want error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := SmallProduction()
	c := s.Clone()
	c.Tables[0].Rows = 999999
	c.Hidden[0] = 7
	if s.Tables[0].Rows == 999999 || s.Hidden[0] == 7 {
		t.Error("Clone shares storage with original")
	}
}

func TestWeightInitBounded(t *testing.T) {
	s := SmallProduction()
	p, err := s.Materialize(MaterializeOptions{Seed: 2, MaxRowsPerTable: 4})
	if err != nil {
		t.Fatal(err)
	}
	for l, w := range p.Weights {
		bound := float32(1/math.Sqrt(float64(w.Rows))) + 1e-6
		for _, v := range w.Data {
			if v > bound || v < -bound {
				t.Fatalf("layer %d weight %v exceeds Xavier bound %v", l, v, bound)
			}
		}
	}
}

// Property: FeatureLen scales linearly with lookup rounds for any valid round
// count.
func TestFeatureLenRoundsProperty(t *testing.T) {
	s := SmallProduction()
	base := s.FeatureLen()
	prop := func(r uint8) bool {
		rounds := int(r%6) + 1
		m, err := s.WithLookupRounds(rounds)
		if err != nil {
			return false
		}
		return m.FeatureLen() == base*rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: table Bytes is always rows*dim*4 and non-negative for valid specs.
func TestBytesProperty(t *testing.T) {
	prop := func(rows uint16, dim uint8) bool {
		ts := TableSpec{Rows: int64(rows) + 1, Dim: int(dim)%64 + 1, Lookups: 1}
		return ts.Bytes() == ts.Rows*int64(ts.Dim)*4 && ts.Bytes() > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
