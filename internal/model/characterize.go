package model

import (
	"fmt"
	"sort"
)

// Characterization quantifies a model's workload the way Figure 1's
// specification panel does: the embedding stage is dominated by many small
// random memory accesses, the FC tower by dense arithmetic.
type Characterization struct {
	Name string
	// Embedding stage.
	Tables             int
	LookupsPerItem     int
	EmbeddingBytesItem int64 // bytes gathered per inference
	AvgVectorBytes     float64
	StorageBytes       int64
	LargestTableBytes  int64
	SmallestTableBytes int64
	// FC tower.
	FCOpsPerItem int64
	FCParamBytes int64
	FeatureLen   int
	// OpsPerByte is the FC operations per embedding byte gathered — the
	// arithmetic intensity that decides memory- vs compute-boundedness.
	OpsPerByte float64
	// SizeHistogram counts tables per size class.
	SizeHistogram []SizeBucket
}

// SizeBucket is one size-class count.
type SizeBucket struct {
	Label string
	Max   int64 // inclusive upper bound in bytes; 0 = unbounded
	Count int
}

// Characterize computes the workload characterization of a spec.
func Characterize(s *Spec) (Characterization, error) {
	if err := s.Validate(); err != nil {
		return Characterization{}, err
	}
	c := Characterization{
		Name:           s.Name,
		Tables:         len(s.Tables),
		LookupsPerItem: s.NumLookups(),
		StorageBytes:   s.TotalBytes(),
		FCOpsPerItem:   s.OpsPerItem(),
		FeatureLen:     s.FeatureLen(),
	}
	c.SmallestTableBytes = s.Tables[0].Bytes()
	for _, t := range s.Tables {
		c.EmbeddingBytesItem += int64(t.VectorBytes() * t.Lookups)
		if b := t.Bytes(); b > c.LargestTableBytes {
			c.LargestTableBytes = b
		}
		if b := t.Bytes(); b < c.SmallestTableBytes {
			c.SmallestTableBytes = b
		}
	}
	c.AvgVectorBytes = float64(c.EmbeddingBytesItem) / float64(c.LookupsPerItem)
	for _, d := range s.LayerDims() {
		c.FCParamBytes += int64(d[0]) * int64(d[1]) * FloatBytes
	}
	if c.EmbeddingBytesItem > 0 {
		c.OpsPerByte = float64(c.FCOpsPerItem) / float64(c.EmbeddingBytesItem)
	}
	c.SizeHistogram = histogram(s)
	return c, nil
}

func histogram(s *Spec) []SizeBucket {
	buckets := []SizeBucket{
		{Label: "<= 64 KiB", Max: 64 << 10},
		{Label: "<= 1 MiB", Max: 1 << 20},
		{Label: "<= 64 MiB", Max: 64 << 20},
		{Label: "<= 1 GiB", Max: 1 << 30},
		{Label: "> 1 GiB", Max: 0},
	}
	for _, t := range s.Tables {
		b := t.Bytes()
		placed := false
		for i := range buckets {
			if buckets[i].Max > 0 && b <= buckets[i].Max {
				buckets[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			buckets[len(buckets)-1].Count++
		}
	}
	return buckets
}

// DimDistribution returns the sorted distinct embedding dims with counts —
// the "4 to 64 elements in most cases" observation of §3.3.
func DimDistribution(s *Spec) map[int]int {
	out := make(map[int]int)
	for _, t := range s.Tables {
		out[t.Dim]++
	}
	return out
}

// DimsSorted returns the distinct dims ascending.
func DimsSorted(s *Spec) []int {
	set := DimDistribution(s)
	dims := make([]int, 0, len(set))
	for d := range set {
		dims = append(dims, d)
	}
	sort.Ints(dims)
	return dims
}

// String renders a compact one-line summary.
func (c Characterization) String() string {
	return fmt.Sprintf("%s: %d tables, %d lookups/item, %d B gathered/item, %.2f MOP/item, %.0f op/B",
		c.Name, c.Tables, c.LookupsPerItem, c.EmbeddingBytesItem,
		float64(c.FCOpsPerItem)/1e6, c.OpsPerByte)
}
