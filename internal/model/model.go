// Package model defines recommendation model specifications: embedding table
// shapes, the MLP tower, and deterministic parameter materialisation.
//
// A specification separates *logical* sizes (used for storage accounting and
// placement decisions, exactly as the paper's production models with up to
// hundreds of millions of rows) from *materialised* parameters (functional
// arrays capacity-scaled so a 15.1 GB model does not need 15.1 GB of RAM).
// All placement, Cartesian-product and timing decisions depend only on the
// logical sizes, so the scaling preserves the paper's behaviour; see
// DESIGN.md "Hardware substitution".
package model

import (
	"fmt"
	"math"
	"math/rand"

	"microrec/internal/tensor"
)

// FloatBytes is the storage width of one embedding element. The paper assumes
// 32-bit floating-point storage for the tables (§3.3).
const FloatBytes = 4

// TableSpec describes one embedding table.
type TableSpec struct {
	// ID is the table's index within the model, stable across transforms.
	ID int
	// Name is a human-readable label ("user_id", "province_id", ...).
	Name string
	// Rows is the logical number of entries. Production tables reach
	// hundreds of millions of rows (§2.2).
	Rows int64
	// Dim is the embedding vector length (4–64 in most cases, §3.3).
	Dim int
	// Lookups is the number of vectors retrieved from this table per
	// inference. The production models use 1; DLRM-RMC2 uses 4 (§5.4.2).
	Lookups int
}

// Bytes returns the logical storage footprint of the table.
func (t TableSpec) Bytes() int64 { return t.Rows * int64(t.Dim) * FloatBytes }

// VectorBytes returns the byte size of one embedding vector, which is what a
// single memory access must transfer.
func (t TableSpec) VectorBytes() int { return t.Dim * FloatBytes }

// Validate checks the spec for internal consistency.
func (t TableSpec) Validate() error {
	if t.Rows <= 0 {
		return fmt.Errorf("model: table %q has %d rows", t.Name, t.Rows)
	}
	if t.Dim <= 0 {
		return fmt.Errorf("model: table %q has dim %d", t.Name, t.Dim)
	}
	if t.Lookups <= 0 {
		return fmt.Errorf("model: table %q has %d lookups", t.Name, t.Lookups)
	}
	return nil
}

// Spec describes a complete CTR-prediction model: sparse features resolved
// through embedding tables, concatenated (optionally with dense features) and
// fed through a fully-connected tower ending in a sigmoid (Figure 1).
type Spec struct {
	// Name identifies the model ("production-small", ...).
	Name string
	// Tables are the embedding tables.
	Tables []TableSpec
	// DenseDim is the number of raw dense features concatenated with the
	// embeddings. The production models contain none (footnote 1).
	DenseDim int
	// Hidden are the sizes of the hidden fully-connected layers, e.g.
	// (1024, 512, 256) for both production models (Table 1).
	Hidden []int
}

// FeatureLen returns the concatenated feature-vector length fed to the first
// FC layer: one vector per table lookup plus dense features.
func (s *Spec) FeatureLen() int {
	n := s.DenseDim
	for _, t := range s.Tables {
		n += t.Dim * t.Lookups
	}
	return n
}

// NumLookups returns the total embedding lookups per inference.
func (s *Spec) NumLookups() int {
	n := 0
	for _, t := range s.Tables {
		n += t.Lookups
	}
	return n
}

// TotalBytes returns the logical storage of all embedding tables.
func (s *Spec) TotalBytes() int64 {
	var n int64
	for _, t := range s.Tables {
		n += t.Bytes()
	}
	return n
}

// LayerDims returns the (in, out) dimensions of every FC layer including the
// final single-logit output layer.
func (s *Spec) LayerDims() [][2]int {
	dims := make([][2]int, 0, len(s.Hidden)+1)
	in := s.FeatureLen()
	for _, h := range s.Hidden {
		dims = append(dims, [2]int{in, h})
		in = h
	}
	dims = append(dims, [2]int{in, 1})
	return dims
}

// MACsPerItem returns the multiply-accumulate count of one inference through
// the FC tower, the quantity behind the paper's GOP/s figures (2 ops per MAC).
func (s *Spec) MACsPerItem() int64 {
	var macs int64
	for _, d := range s.LayerDims() {
		macs += int64(d[0]) * int64(d[1])
	}
	return macs
}

// OpsPerItem returns floating/fixed-point operations per inference
// (2 per MAC: multiply + add), matching the paper's GOP accounting.
func (s *Spec) OpsPerItem() int64 { return 2 * s.MACsPerItem() }

// Validate checks the whole spec.
func (s *Spec) Validate() error {
	if len(s.Tables) == 0 {
		return fmt.Errorf("model %q: no embedding tables", s.Name)
	}
	if len(s.Hidden) == 0 {
		return fmt.Errorf("model %q: no hidden layers", s.Name)
	}
	for i, t := range s.Tables {
		if t.ID != i {
			return fmt.Errorf("model %q: table %d has ID %d", s.Name, i, t.ID)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("model %q: %w", s.Name, err)
		}
	}
	for _, h := range s.Hidden {
		if h <= 0 {
			return fmt.Errorf("model %q: hidden size %d", s.Name, h)
		}
	}
	return nil
}

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Tables = append([]TableSpec(nil), s.Tables...)
	c.Hidden = append([]int(nil), s.Hidden...)
	return &c
}

// tableGroup is a helper for building specs: count tables of identical shape.
type tableGroup struct {
	count  int
	prefix string
	rows   int64
	dim    int
}

func buildTables(groups []tableGroup) []TableSpec {
	var tables []TableSpec
	for _, g := range groups {
		for i := 0; i < g.count; i++ {
			tables = append(tables, TableSpec{
				ID:      len(tables),
				Name:    fmt.Sprintf("%s_%d", g.prefix, i),
				Rows:    g.rows,
				Dim:     g.dim,
				Lookups: 1,
			})
		}
	}
	return tables
}

// SmallProduction returns a synthetic stand-in for the paper's smaller
// production model: 47 tables, 352-dim concatenated feature, hidden layers
// (1024, 512, 256), ~1.3 GB of embeddings (Table 1).
//
// The size distribution is engineered so the placement study reproduces
// Table 3: ten tiny tables (Cartesian candidates merging into five products),
// eight on-chip-cacheable tables, and a long tail up to a 1 GB user-ID table.
func SmallProduction() *Spec {
	groups := []tableGroup{
		// Ten tiny Cartesian candidates (dim 4, hundreds to ~2k rows).
		// Row counts are tuned so the five products cost ~3% extra
		// storage, matching Table 3's 103.2%.
		{1, "geo_region", 110, 4},
		{1, "device_class", 170, 4},
		{1, "ad_slot", 260, 4},
		{1, "hour_bucket", 380, 4},
		{1, "os_version", 520, 4},
		{1, "network_type", 620, 4},
		{1, "page_type", 780, 4},
		{1, "creative_kind", 950, 4},
		{1, "city_tier", 1300, 4},
		{1, "category_l1", 1700, 4},
		// Eight on-chip-cacheable tables (<= 256 KB each).
		{8, "ctx_small", 12000, 4},
		// Twelve mid dim-4 tables.
		{12, "ctx_mid", 24000, 4},
		// Ten dim-8 tables.
		{10, "behavior", 50000, 8},
		// Four dim-16 tables.
		{4, "merchant", 150000, 16},
		// One dim-24 table.
		{1, "brand", 200000, 24},
		// Two large dim-32 tables dominating storage.
		{1, "item_id", 1500000, 32},
		{1, "user_id", 8000000, 32},
	}
	return &Spec{
		Name:   "production-small",
		Tables: buildTables(groups),
		Hidden: []int{1024, 512, 256},
	}
}

// LargeProduction returns a synthetic stand-in for the paper's larger
// production model: 98 tables, 876-dim feature, hidden (1024, 512, 256),
// ~15.1 GB of embeddings (Table 1). Twenty-eight tiny tables act as Cartesian
// candidates (merging into fourteen products) and sixteen tables are
// on-chip-cacheable, reproducing Table 3's counts.
func LargeProduction() *Spec {
	groups := []tableGroup{
		// Twenty-eight tiny Cartesian candidates (dim 4). Row counts are
		// tuned so the fourteen products cost ~1.9% extra storage,
		// matching Table 3's 101.9%.
		{4, "flag", 200, 4},
		{4, "slot", 420, 4},
		{4, "bucket", 680, 4},
		{4, "kind", 900, 4},
		{4, "tier", 1120, 4},
		{4, "group", 1450, 4},
		{4, "zone", 2100, 4},
		// Sixteen on-chip-cacheable tables.
		{16, "ctx_small", 12000, 4},
		// Thirty dim-8 tables.
		{30, "behavior", 250000, 8},
		// One dim-12 table.
		{1, "session", 300000, 12},
		// Twenty dim-16 tables.
		{20, "merchant", 2000000, 16},
		// Two dim-32 tables.
		{2, "shop_id", 8000000, 32},
		// One dim-64 user table dominating storage.
		{1, "user_id", 40000000, 64},
	}
	return &Spec{
		Name:   "production-large",
		Tables: buildTables(groups),
		Hidden: []int{1024, 512, 256},
	}
}

// DLRMRMC2 returns a model of Facebook's embedding-dominated DLRM-RMC2 class
// (Gupta et al. 2020): numTables small tables (8–12 published range), each
// looked up four times, embedding dimension dim (the paper sweeps 4–64). Each
// table fits one 256 MB HBM bank, per the paper's §5.4.2 assumptions.
func DLRMRMC2(numTables, dim int) (*Spec, error) {
	if numTables < 1 {
		return nil, fmt.Errorf("model: DLRM-RMC2 needs at least one table, got %d", numTables)
	}
	if dim < 1 {
		return nil, fmt.Errorf("model: DLRM-RMC2 dim %d", dim)
	}
	const rows = 1_000_000 // 1M x 64 x 4B = 256 MB worst case: fits one bank
	tables := make([]TableSpec, numTables)
	for i := range tables {
		tables[i] = TableSpec{
			ID:      i,
			Name:    fmt.Sprintf("rmc2_table_%d", i),
			Rows:    rows,
			Dim:     dim,
			Lookups: 4,
		}
	}
	return &Spec{
		Name:   fmt.Sprintf("dlrm-rmc2-%dx%d", numTables, dim),
		Tables: tables,
		Hidden: []int{256, 128, 64},
	}, nil
}

// WithLookupRounds returns a copy of the spec with every table's lookup count
// multiplied by rounds, modelling the multi-round retrieval scenario of
// Figure 7.
func (s *Spec) WithLookupRounds(rounds int) (*Spec, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("model: lookup rounds %d", rounds)
	}
	c := s.Clone()
	c.Name = fmt.Sprintf("%s-rounds%d", s.Name, rounds)
	for i := range c.Tables {
		c.Tables[i].Lookups *= rounds
	}
	return c, nil
}

// Parameters holds materialised (possibly capacity-scaled) model parameters.
type Parameters struct {
	Spec *Spec
	// Embeddings[i] is table i's materialised rows, row-major
	// (ActualRows[i] x Dim). Logical row r maps to r % ActualRows[i].
	Embeddings [][]float32
	// ActualRows[i] is the materialised row count of table i.
	ActualRows []int64
	// Weights[l] is FC layer l's (in x out) weight matrix; Biases[l] its
	// output bias. The last layer is the single-logit output layer.
	Weights []*tensor.Matrix
	Biases  [][]float32
}

// MaterializeOptions controls parameter materialisation.
type MaterializeOptions struct {
	// Seed makes materialisation deterministic.
	Seed int64
	// MaxRowsPerTable caps the materialised rows of any table
	// (capacity scaling). Zero means the default of 2048.
	MaxRowsPerTable int64
}

// DefaultMaxRows is the default materialised-row cap.
const DefaultMaxRows = 2048

// Materialize creates deterministic parameters for the spec. Embedding values
// are drawn uniform in [-1, 1); FC weights use scaled uniform (Xavier-style)
// initialisation so activations stay inside the fixed-point range.
func (s *Spec) Materialize(opts MaterializeOptions) (*Parameters, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	maxRows := opts.MaxRowsPerTable
	if maxRows == 0 {
		maxRows = DefaultMaxRows
	}
	if maxRows < 1 {
		return nil, fmt.Errorf("model: MaxRowsPerTable %d", maxRows)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	p := &Parameters{
		Spec:       s,
		Embeddings: make([][]float32, len(s.Tables)),
		ActualRows: make([]int64, len(s.Tables)),
	}
	for i, t := range s.Tables {
		rows := t.Rows
		if rows > maxRows {
			rows = maxRows
		}
		p.ActualRows[i] = rows
		data := make([]float32, rows*int64(t.Dim))
		for j := range data {
			data[j] = rng.Float32()*2 - 1
		}
		p.Embeddings[i] = data
	}
	for _, d := range s.LayerDims() {
		in, out := d[0], d[1]
		w := tensor.NewMatrix(in, out)
		scale := float32(1 / math.Sqrt(float64(in)))
		for j := range w.Data {
			w.Data[j] = (rng.Float32()*2 - 1) * scale
		}
		b := make([]float32, out)
		for j := range b {
			b[j] = (rng.Float32()*2 - 1) * 0.1
		}
		p.Weights = append(p.Weights, w)
		p.Biases = append(p.Biases, b)
	}
	return p, nil
}

// Row returns the materialised embedding vector for logical row index of
// table i (wrapping through the capacity-scaled storage).
func (p *Parameters) Row(table int, index int64) ([]float32, error) {
	if table < 0 || table >= len(p.Embeddings) {
		return nil, fmt.Errorf("model: table %d out of range", table)
	}
	spec := p.Spec.Tables[table]
	if index < 0 || index >= spec.Rows {
		return nil, fmt.Errorf("model: row %d out of range for table %q (%d rows)", index, spec.Name, spec.Rows)
	}
	r := index % p.ActualRows[table]
	dim := int64(spec.Dim)
	return p.Embeddings[table][r*dim : (r+1)*dim], nil
}
