package pipeline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"microrec/internal/embedding"
)

// TestSubmitBackpressureDoesNotWedgeClose is the regression test for the
// microrec-vet lockheld finding on Submit: the read lock was held (via a
// deferred RUnlock) across the blocking plane acquisition and gather-queue
// send. With the ring full, a parked Submit left a pending Close stuck on
// the write lock, and the RWMutex's writer priority then wedged every later
// Submit behind that pending writer — the whole front door frozen by one
// batch's backpressure wait. Post-fix (accept-gate: lock covers only the
// closed check), Close marks the executor closed immediately and later
// Submits fail fast with ErrClosed, while Submits already past the gate
// still drain normally.
func TestSubmitBackpressureDoesNotWedgeClose(t *testing.T) {
	release := make(chan struct{})
	fe := &fakeEngine{}
	x, err := New(fe, Options{
		Depth:    2,
		MaxBatch: 4,
		Deliver:  func(payload interface{}, preds []float32) {},
		// Prepare stalls the gather stage, pinning every plane in flight so
		// the third Submit parks on the free ring.
		Prepare: func(payload interface{}, queries []embedding.Query) []embedding.Query {
			<-release
			return queries
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := []embedding.Query{{}}
	for i := 0; i < 2; i++ {
		if err := x.Submit(qs, nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	var drain sync.WaitGroup
	parked := make(chan error, 1)
	drain.Add(1)
	go func() {
		defer drain.Done()
		parked <- x.Submit(qs, nil)
	}()
	time.Sleep(50 * time.Millisecond) // let the submit park on <-free

	closed := make(chan struct{})
	go func() {
		x.Close()
		close(closed)
	}()

	// Pre-fix this loop never completes: each fresh Submit blocks on RLock
	// behind the pending Close, which blocks behind the parked Submit's
	// read lock, which blocks on the full ring — a cycle only the stalled
	// gather stage could break. Post-fix, as soon as Close has flipped
	// closed, a Submit returns ErrClosed without touching the ring.
	deadline := time.After(5 * time.Second)
	extras := make(chan error, 64)
sawClosed:
	for {
		drain.Add(1)
		go func() {
			defer drain.Done()
			extras <- x.Submit(qs, nil)
		}()
		select {
		case err := <-extras:
			if errors.Is(err, ErrClosed) {
				break sawClosed
			}
			if err != nil {
				t.Fatalf("unexpected submit error: %v", err)
			}
		case <-time.After(100 * time.Millisecond):
			// This submit raced past the gate before closed was set and is
			// now parked too; try again — the next one must fail fast.
		case <-deadline:
			t.Fatal("Submit wedged behind a pending Close while another Submit was backpressure-blocked: lock held across plane acquisition")
		}
	}

	// Unstall the pipeline: the parked pre-close Submits complete, Close
	// drains and returns.
	close(release)
	if err := <-parked; err != nil {
		t.Fatalf("backpressure-blocked submit after release: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not complete after the pipeline was released")
	}
	drain.Wait()
}
