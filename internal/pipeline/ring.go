package pipeline

import (
	"fmt"

	"microrec/internal/core"
)

// PlaneRing is a fixed pool of pre-allocated fixed-point batch planes — the
// marked-graph token discipline the executor's in-flight bound is built on,
// exported as a standalone primitive so other fan-out layers reuse it. The
// cluster tier gives each engine shard its own ring of partial planes: a
// shard can gather for the next in-flight batch while the coordinator is
// still merging its previous partial, and the ring bounds the shard's
// outstanding planes exactly as the executor's ring bounds its batches.
//
// Acquire blocks while all planes are out; Release returns one. The ring
// never allocates after construction, so steady-state users stay
// allocation-free.
type PlaneRing struct {
	free chan *core.BatchScratch
}

// NewPlaneRing pre-allocates depth planes, each sized via the engine for
// batches of up to maxBatch queries.
func NewPlaneRing(eng StageEngine, depth, maxBatch int) (*PlaneRing, error) {
	if eng == nil {
		return nil, fmt.Errorf("pipeline: nil engine")
	}
	if depth < 1 {
		return nil, fmt.Errorf("pipeline: plane ring depth %d (want >= 1)", depth)
	}
	if maxBatch < 1 {
		return nil, fmt.Errorf("pipeline: plane ring max batch %d", maxBatch)
	}
	r := &PlaneRing{free: make(chan *core.BatchScratch, depth)}
	for i := 0; i < depth; i++ {
		s := &core.BatchScratch{}
		eng.EnsurePlane(s, maxBatch)
		r.free <- s
	}
	return r, nil
}

// Acquire takes a free plane, blocking until one is released.
func (r *PlaneRing) Acquire() *core.BatchScratch { return <-r.free }

// Release returns a plane to the ring. Releasing a plane that did not come
// from Acquire overfills the ring and panics — the ring is a token pool, not
// a free list.
func (r *PlaneRing) Release(s *core.BatchScratch) {
	select {
	case r.free <- s:
	default:
		panic("pipeline: PlaneRing.Release without matching Acquire")
	}
}

// Depth reports the ring's plane count.
func (r *PlaneRing) Depth() int { return cap(r.free) }

// Free reports how many planes are currently available.
func (r *PlaneRing) Free() int { return len(r.free) }
