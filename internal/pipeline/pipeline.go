// Package pipeline implements the pipelined execution subsystem: the
// software analogue of the paper's deeply pipelined dataflow (§4.1), in which
// embedding lookups and DNN compute for different items are in flight
// simultaneously so memory latency hides behind compute — the source of the
// "throughput is not the reciprocal of latency" observation (§5.3).
//
// The executor decouples the batched datapath into three stages — the
// channel-parallel gather, the hidden-layer GEMM tower, and the output
// tail/response — connected by bounded channels, over a ring of N
// pre-allocated fixed-point batch planes:
//
//	Submit ─► free ring ─► [gather] ─► [dense GEMM] ─► [tail ► Deliver] ─┐
//	             ▲                                                       │
//	             └────────────────── plane recycled ◄────────────────────┘
//
// While batch i occupies the GEMM stage, batch i+1's gather is already
// running on the next plane. The ring bounds the batches in flight, so
// backpressure propagates from a slow stage back to Submit exactly as in
// pipesim's marked-graph model: a ring of N planes is N tokens circulating
// through the stage graph. The steady-state initiation interval is therefore
// the slowest stage's service time, not the sum of all stages — Snapshot
// cross-feeds the measured per-stage times into pipesim to report the
// predicted interval next to the measured one, closing the loop between the
// simulator and the real executor.
//
// Stage methods are driven through the StageEngine seam (implemented by
// *core.Engine); planes are core.BatchScratch buffers pre-sized at
// construction, so the steady-state stage loops perform no allocation.
package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/metrics"
	"microrec/internal/pipesim"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("pipeline: executor closed")

// StageEngine is the slice of the inference engine the executor drives: the
// three stage-callable pieces of the batched datapath plus plane sizing.
// *core.Engine implements it; tests substitute deterministic fakes to
// cross-check the executor's measured interval against pipesim.
type StageEngine interface {
	// EnsurePlane sizes a plane for batches of up to b queries.
	EnsurePlane(s *core.BatchScratch, b int)
	// GatherIntoPlane resolves a validated micro-batch's embedding lookups
	// into the plane's fixed-point feature rows.
	GatherIntoPlane(queries []embedding.Query, s *core.BatchScratch)
	// DenseFromPlane runs the hidden FC tower on a gathered plane.
	DenseFromPlane(b int, s *core.BatchScratch)
	// TailFromPlane runs the output layer + sigmoid, writing one prediction
	// per query into dst.
	TailFromPlane(b int, s *core.BatchScratch, dst []float32)
}

// Deliver receives a completed batch on the tail stage's goroutine: the
// payload passed to Submit and the predictions, one per submitted query.
// preds is plane-owned and only valid until Deliver returns — consume it
// (resolve futures, copy) before returning.
type Deliver func(payload interface{}, preds []float32)

// Options configures an Executor.
type Options struct {
	// Depth is the number of planes in the ring — the bound on batches in
	// flight across the three stages. Default 3 (one plane per stage);
	// minimum 2 (below that no two stages can overlap).
	Depth int
	// MaxBatch is the plane capacity: the largest batch Submit accepts.
	// Default 64.
	MaxBatch int
	// Deliver receives every completed batch. Required.
	Deliver Deliver
	// Prepare, when set, runs on the gather stage immediately before a
	// plane is filled: it receives the batch payload and the plane's query
	// headers and returns the queries still worth serving (it may filter
	// the slice in place). Returning an empty slice skips the plane's
	// datapath work entirely; Deliver is not called for such a plane. The
	// serving layer uses this as its deadline-drop hook — the last
	// admission point before gather work is committed, after any time the
	// batch spent blocked waiting for a free plane.
	Prepare func(payload interface{}, queries []embedding.Query) []embedding.Query
	// StatsWindow is the number of recent batches retained for the
	// per-stage service-time and completion-interval statistics.
	// Default 512.
	StatsWindow int
}

// withDefaults returns o with zero fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.Depth == 0 {
		o.Depth = 3
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.StatsWindow == 0 {
		o.StatsWindow = 512
	}
	return o
}

// Validate checks the options after defaulting.
func (o Options) Validate() error {
	if o.Depth < 2 {
		return fmt.Errorf("pipeline: depth %d (need >= 2 planes to overlap stages)", o.Depth)
	}
	if o.MaxBatch < 1 {
		return fmt.Errorf("pipeline: max batch %d", o.MaxBatch)
	}
	if o.Deliver == nil {
		return fmt.Errorf("pipeline: nil Deliver")
	}
	if o.StatsWindow < 1 {
		return fmt.Errorf("pipeline: stats window %d", o.StatsWindow)
	}
	return nil
}

// plane is one slot of the in-flight ring: a pre-sized fixed-point batch
// plane plus the batch riding on it.
type plane struct {
	queries []embedding.Query // batch query headers, cap MaxBatch
	preds   []float32         // predictions, cap MaxBatch
	payload interface{}       // caller's batch handle, returned via Deliver
	entered time.Time         // when Submit handed the plane to the pipeline
	scratch core.BatchScratch
}

// Stage indices of the executor, in datapath order. Exported so observers
// (PlaneObserver) and the serving tier's flight recorder can name the stage a
// boundary timestamp belongs to.
const (
	StageGather = iota
	StageDense
	StageTail
	NumStages
)

// stageNames label the stages in snapshots, matching pipesim conventions.
var stageNames = [NumStages]string{"gather", "dense-gemm", "tail"}

// StageName returns the snapshot label of a stage index ("" out of range).
func StageName(stage int) string {
	if stage < 0 || stage >= NumStages {
		return ""
	}
	return stageNames[stage]
}

// PlaneObserver is the optional observability seam on a batch payload: when
// the payload passed to Submit implements it, each stage loop reports its
// boundary timestamps (and the gather stage its GatherObs) as the plane moves
// through. Calls arrive on the stage goroutines in datapath order —
// implementations must not block; the serving tier uses plain stores into a
// per-batch record that is only read after delivery. Payloads that do not
// implement the interface pay one type assertion per stage and nothing else.
type PlaneObserver interface {
	// ObserveStage reports one stage's service window on this plane.
	ObserveStage(stage int, start, end time.Time)
	// ObserveGather reports the gather's observability record (cold faults,
	// scatter detail); called once per plane, right after the gather stage.
	ObserveGather(obs core.GatherObs)
}

// stageMeter accumulates one stage's service observations.
type stageMeter struct {
	batches atomic.Uint64
	busyNS  atomic.Int64
	service *metrics.Rolling // per-batch service time, ns
}

func (m *stageMeter) record(now time.Time, d time.Duration) {
	m.batches.Add(1)
	m.busyNS.Add(int64(d))
	m.service.Observe(now, float64(d))
}

// Executor runs micro-batches through the staged datapath with overlapped
// stages. It owns three stage goroutines; callers must Close it.
type Executor struct {
	eng  StageEngine
	opts Options

	mu        sync.RWMutex // guards closed; never held across blocking ops
	closed    bool
	accepting sync.WaitGroup // in-flight Submits past the closed check

	free    chan *plane
	gatherQ chan *plane
	denseQ  chan *plane
	tailQ   chan *plane
	wg      sync.WaitGroup

	stages [NumStages]stageMeter
	// interval tracks per-completion pipeline-busy gaps: each batch observes
	// now - max(previous completion, its own Submit time). The entered floor
	// excludes idle time waiting for arrivals (which would measure load, not
	// the pipeline) while still charging queueing inside the pipeline, so
	// consecutive gaps telescope to busy-span/completions — the measured
	// initiation interval. An earlier scheme filtered on "batches remained in
	// flight at the previous completion" instead; on few-core hosts the OS
	// scheduler makes completions burst (the dense stage queues several
	// planes before the tail goroutine runs), and that filter kept only the
	// tiny intra-burst gaps, under-reporting the interval by ~4x at batch 1.
	interval  *metrics.Rolling
	completed atomic.Uint64
	lastDone  time.Time // tail goroutine only
	start     time.Time
}

// New builds an executor over a stage engine, pre-allocating the plane ring
// so the steady-state loop never allocates. The returned executor owns
// background goroutines; callers must Close it.
func New(eng StageEngine, opts Options) (*Executor, error) {
	if eng == nil {
		return nil, fmt.Errorf("pipeline: nil engine")
	}
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	x := &Executor{
		eng:  eng,
		opts: opts,
		// Stage channels hold up to Depth planes each, so a full ring never
		// blocks a send: the only backpressure point is plane acquisition,
		// which is exactly the marked-graph token discipline.
		free:     make(chan *plane, opts.Depth),
		gatherQ:  make(chan *plane, opts.Depth),
		denseQ:   make(chan *plane, opts.Depth),
		tailQ:    make(chan *plane, opts.Depth),
		interval: metrics.NewRolling(opts.StatsWindow),
		start:    time.Now(),
	}
	for i := range x.stages {
		x.stages[i].service = metrics.NewRolling(opts.StatsWindow)
	}
	for i := 0; i < opts.Depth; i++ {
		p := &plane{
			queries: make([]embedding.Query, 0, opts.MaxBatch),
			preds:   make([]float32, opts.MaxBatch),
		}
		eng.EnsurePlane(&p.scratch, opts.MaxBatch)
		x.free <- p
	}
	x.wg.Add(NumStages)
	go x.gatherLoop()
	go x.denseLoop()
	go x.tailLoop()
	return x, nil
}

// Options returns the executor's effective (defaulted) options.
func (x *Executor) Options() Options { return x.opts }

// Submit enqueues one validated micro-batch: it acquires a plane from the
// ring (blocking while all Depth planes are in flight — the backpressure
// bound), copies the query headers onto it and hands it to the gather stage.
// The queries slice is not retained; callers may reuse it as soon as Submit
// returns. payload is handed back through Deliver with the predictions.
// Queries must have passed Engine.ValidateQuery at admission.
func (x *Executor) Submit(queries []embedding.Query, payload interface{}) error {
	if len(queries) == 0 {
		return fmt.Errorf("pipeline: empty batch")
	}
	if len(queries) > x.opts.MaxBatch {
		return fmt.Errorf("pipeline: batch %d exceeds plane capacity %d", len(queries), x.opts.MaxBatch)
	}
	// Accept-gate: take the read lock only long enough to check closed and
	// register with the accepting group, then release it BEFORE the blocking
	// plane acquisition. Holding the lock across <-x.free coupled every
	// other mu user to this goroutine's backpressure wait: a pending Close
	// (writer) parked behind a ring-blocked Submit, and the RWMutex's writer
	// priority then stalled every later reader too. Close now waits on the
	// accepting group instead, which still guarantees the send below never
	// races the close of gatherQ.
	x.mu.RLock()
	if x.closed {
		x.mu.RUnlock()
		return ErrClosed
	}
	x.accepting.Add(1)
	x.mu.RUnlock()
	defer x.accepting.Done()
	// In-flight planes complete independently of this goroutine (the stage
	// loops keep draining until Close's accepting.Wait returns), so the
	// acquisition always terminates.
	p := <-x.free
	p.queries = append(p.queries[:0], queries...)
	p.payload = payload
	p.entered = time.Now()
	x.gatherQ <- p
	return nil
}

// Close stops accepting batches, drains every in-flight plane through the
// remaining stages (delivering their responses) and joins the stage
// goroutines. It is idempotent.
func (x *Executor) Close() error {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return nil
	}
	x.closed = true
	x.mu.Unlock()
	// Every Submit that saw closed==false has registered with accepting
	// before releasing the read lock, so after Wait returns no goroutine
	// will send on gatherQ again and the close below cannot race a send.
	x.accepting.Wait()
	close(x.gatherQ)
	x.wg.Wait()
	return nil
}

// gatherLoop drives stage 1: the channel-parallel batched gather into the
// plane's fixed-point feature rows. The Prepare hook runs first — this is
// the moment the plane's work is committed, so it is where a deadline-aware
// server sheds requests no longer worth gathering. A plane Prepare empties
// still traverses the ring (token discipline) but skips every engine call.
//
//microrec:noalloc
func (x *Executor) gatherLoop() {
	defer x.wg.Done()
	defer close(x.denseQ)
	for p := range x.gatherQ {
		if x.opts.Prepare != nil {
			p.queries = x.opts.Prepare(p.payload, p.queries)
		}
		if len(p.queries) == 0 {
			x.denseQ <- p
			continue
		}
		t0 := time.Now()
		x.eng.GatherIntoPlane(p.queries, &p.scratch)
		now := time.Now()
		x.stages[StageGather].record(now, now.Sub(t0))
		if ob, ok := p.payload.(PlaneObserver); ok {
			ob.ObserveStage(StageGather, t0, now)
			ob.ObserveGather(p.scratch.GatherObs())
		}
		x.denseQ <- p
	}
}

// denseLoop drives stage 2: the hidden-layer blocked GEMM tower.
//
//microrec:noalloc
func (x *Executor) denseLoop() {
	defer x.wg.Done()
	defer close(x.tailQ)
	for p := range x.denseQ {
		if len(p.queries) == 0 {
			x.tailQ <- p
			continue
		}
		t0 := time.Now()
		x.eng.DenseFromPlane(len(p.queries), &p.scratch)
		now := time.Now()
		x.stages[StageDense].record(now, now.Sub(t0))
		if ob, ok := p.payload.(PlaneObserver); ok {
			ob.ObserveStage(StageDense, t0, now)
		}
		x.tailQ <- p
	}
}

// tailLoop drives stage 3: the output layer + sigmoid, response delivery,
// and plane recycling.
//
//microrec:noalloc
func (x *Executor) tailLoop() {
	defer x.wg.Done()
	for p := range x.tailQ {
		b := len(p.queries)
		if b == 0 {
			p.payload = nil
			x.free <- p
			continue
		}
		t0 := time.Now()
		x.eng.TailFromPlane(b, &p.scratch, p.preds[:b])
		now := time.Now()
		x.stages[StageTail].record(now, now.Sub(t0))
		// The observer fires before Deliver so the batch record is complete
		// by the time futures resolve.
		if ob, ok := p.payload.(PlaneObserver); ok {
			ob.ObserveStage(StageTail, t0, now)
		}
		x.opts.Deliver(p.payload, p.preds[:b])
		// Busy gap: from the later of the previous completion and this
		// batch's Submit (see the interval field for why the floor matters).
		from := x.lastDone
		if from.Before(p.entered) {
			from = p.entered
		}
		x.interval.Observe(now, float64(now.Sub(from)))
		x.lastDone = now
		x.completed.Add(1)
		// Drop batch references before recycling so the ring never pins a
		// delivered batch's memory.
		p.payload = nil
		for i := range p.queries {
			p.queries[i] = nil
		}
		p.queries = p.queries[:0]
		x.free <- p
	}
}

// InFlight reports how many planes are currently occupied by batches.
func (x *Executor) InFlight() int { return x.opts.Depth - len(x.free) }

// StageSnapshot is one stage's point-in-time service statistics.
type StageSnapshot struct {
	Name string `json:"name"`
	// Batches is the lifetime count of batches the stage served.
	Batches uint64 `json:"batches"`
	// MeanServiceUS is the rolling mean per-batch service time — the
	// stage's effective initiation interval contribution.
	MeanServiceUS float64 `json:"mean_service_us"`
	// P99ServiceUS is the rolling p99 per-batch service time.
	P99ServiceUS float64 `json:"p99_service_us"`
	// Occupancy is the fraction of recent wall time the stage spent busy
	// (rolling batch rate x mean service time, capped at 1).
	Occupancy float64 `json:"occupancy"`
}

// Snapshot is a point-in-time view of the executor.
type Snapshot struct {
	// Depth is the plane-ring size (the in-flight bound).
	Depth int `json:"depth"`
	// MaxBatch is the plane capacity.
	MaxBatch int `json:"max_batch"`
	// InFlight is the number of planes currently occupied.
	InFlight int `json:"in_flight"`
	// Completed is the lifetime count of delivered batches.
	Completed uint64 `json:"completed"`
	// Stages holds per-stage service statistics in pipeline order.
	Stages []StageSnapshot `json:"stages"`
	// MeasuredIntervalUS is the rolling mean per-completion pipeline-busy
	// gap — each batch's completion minus the later of the previous
	// completion and the batch's own submission — i.e. the measured
	// steady-state initiation interval. Idle time waiting for arrivals is
	// excluded, so the figure reflects pipeline capability, not load (0
	// until a batch has completed).
	MeasuredIntervalUS float64 `json:"measured_interval_us"`
	// PredictedIntervalUS is pipesim's steady-state interval for a
	// three-stage pipeline with the measured mean service times and this
	// ring depth — the simulator's prediction for the executor it sits
	// next to (0 until every stage has served a batch).
	PredictedIntervalUS float64 `json:"predicted_interval_us"`
	// SerialIntervalUS is the sum of the mean stage times: the interval a
	// non-overlapped (worker-pool) execution of the same stages would
	// sustain. Measured < Serial demonstrates stage overlap.
	SerialIntervalUS float64 `json:"serial_interval_us"`
}

// Snapshot summarises the executor's rolling statistics and cross-feeds the
// measured stage times into pipesim for the predicted steady-state interval.
func (x *Executor) Snapshot() Snapshot {
	now := time.Now()
	snap := Snapshot{
		Depth:     x.opts.Depth,
		MaxBatch:  x.opts.MaxBatch,
		InFlight:  x.InFlight(),
		Completed: x.completed.Load(),
		Stages:    make([]StageSnapshot, NumStages),
	}
	meansNS := make([]float64, NumStages)
	for i := range x.stages {
		m := &x.stages[i]
		s := m.service.Snapshot(now)
		occ := s.RatePerSec * s.Summary.Mean / 1e9
		if occ > 1 {
			occ = 1
		}
		snap.Stages[i] = StageSnapshot{
			Name:          stageNames[i],
			Batches:       m.batches.Load(),
			MeanServiceUS: s.Summary.Mean / 1e3,
			P99ServiceUS:  s.Summary.P99 / 1e3,
			Occupancy:     occ,
		}
		meansNS[i] = s.Summary.Mean
		snap.SerialIntervalUS += s.Summary.Mean / 1e3
	}
	snap.MeasuredIntervalUS = x.interval.Snapshot(now).Summary.Mean / 1e3
	snap.PredictedIntervalUS = PredictIntervalNS(meansNS, x.opts.Depth) / 1e3
	return snap
}

// MeanBatchServiceNS returns the lifetime mean plane service time — the sum
// over stages of busy time per served batch — or 0 before any stage has
// served one. Built on the stages' lock-free counters, it is cheap enough
// for the serving layer to call per batch as the deadline-drop headroom: a
// request whose deadline lands within one mean service of now cannot finish
// in time, so starting its gather only manufactures a late answer.
func (x *Executor) MeanBatchServiceNS() float64 {
	var total float64
	for i := range x.stages {
		n := x.stages[i].batches.Load()
		if n == 0 {
			return 0
		}
		total += float64(x.stages[i].busyNS.Load()) / float64(n)
	}
	return total
}

// PredictedIntervalNS returns pipesim's steady-state initiation interval for
// the executor's current rolling mean stage service times and ring depth — 0
// until every stage has served a batch. This is the figure the serving
// admission layer converts into a capacity (knee) estimate and a Retry-After
// hint: one interval is the time until a shedding server frees its next
// queue slot.
func (x *Executor) PredictedIntervalNS() float64 {
	now := time.Now()
	meansNS := make([]float64, NumStages)
	for i := range x.stages {
		meansNS[i] = x.stages[i].service.Snapshot(now).Summary.Mean
	}
	return PredictIntervalNS(meansNS, x.opts.Depth)
}

// PredictIntervalNS runs pipesim over a linear pipeline whose stages have the
// given service times (ns; latency == initiation interval, the executor's
// stages are not internally pipelined) and the given token-ring depth as FIFO
// depth, returning the simulated steady-state inter-completion interval. It
// returns 0 when any stage has no measurement yet. This is the same
// marked-graph recurrence the accelerator timing model evaluates, applied to
// the real executor's measured stage times.
func PredictIntervalNS(stageNS []float64, depth int) float64 {
	stages := make([]pipesim.Stage, len(stageNS))
	for i, ns := range stageNS {
		if ns <= 0 {
			return 0
		}
		stages[i] = pipesim.Stage{
			Name:       fmt.Sprintf("stage-%d", i),
			LatencyNS:  ns,
			IntervalNS: ns,
			FIFODepth:  depth,
		}
	}
	p, err := pipesim.New(stages...)
	if err != nil {
		return 0
	}
	res, err := p.Simulate(4 * pipesim.DefaultFIFODepth * len(stages))
	if err != nil {
		return 0
	}
	return res.SteadyIntervalNS
}
