package pipeline

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"microrec/internal/core"
	"microrec/internal/embedding"
	"microrec/internal/memsim"
	"microrec/internal/model"
	"microrec/internal/placement"
)

// buildEngine assembles a real engine for a spec (capacity-scaled).
func buildEngine(t testing.TB, spec *model.Spec, cfg core.Config) *core.Engine {
	t.Helper()
	params, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 128})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := placement.Plan(spec, memsim.U280(cfg.OnChipBanks), placement.Options{EnableCartesian: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Build(params, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// randomSpec generates a small random model geometry, mirroring the core
// property tests: varying table counts, dims, lookup cadences, dense tails
// and tower shapes exercise the stage split across product strides, virtual
// fallbacks, GEMM tails and hidden-tower parities.
func randomSpec(rng *rand.Rand, name string) *model.Spec {
	nt := 3 + rng.Intn(5)
	tables := make([]model.TableSpec, nt)
	for i := range tables {
		tables[i] = model.TableSpec{
			ID:      i,
			Name:    fmt.Sprintf("%s-t%d", name, i),
			Rows:    int64(8 + rng.Intn(300)),
			Dim:     1 + rng.Intn(12),
			Lookups: 1 + rng.Intn(3),
		}
	}
	// 1-4 hidden layers: both tail parities (activations ending in x or y)
	// must be covered.
	nh := 1 + rng.Intn(4)
	hidden := make([]int, nh)
	for i := range hidden {
		hidden[i] = 5 + rng.Intn(36)
	}
	return &model.Spec{
		Name:     name,
		Tables:   tables,
		DenseDim: rng.Intn(7),
		Hidden:   hidden,
	}
}

func randomQueries(spec *model.Spec, n int, seed int64) []embedding.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]embedding.Query, n)
	for i := range qs {
		q := make(embedding.Query, len(spec.Tables))
		for ti, tab := range spec.Tables {
			idxs := make([]int64, tab.Lookups)
			for k := range idxs {
				idxs[k] = rng.Int63n(tab.Rows)
			}
			q[ti] = idxs
		}
		qs[i] = q
	}
	return qs
}

// collector is a Deliver sink that copies predictions out of the plane and
// signals completion.
type collector struct {
	mu    sync.Mutex
	preds map[int][]float32
	done  chan int
}

func newCollector(buf int) *collector {
	return &collector{preds: make(map[int][]float32), done: make(chan int, buf)}
}

func (c *collector) deliver(payload interface{}, preds []float32) {
	id := *(payload.(*int))
	c.mu.Lock()
	c.preds[id] = append([]float32(nil), preds...)
	c.mu.Unlock()
	c.done <- id
}

// TestOptionsValidate covers defaulting and rejection.
func TestOptionsValidate(t *testing.T) {
	o := Options{Deliver: func(interface{}, []float32) {}}.withDefaults()
	if o.Depth != 3 || o.MaxBatch != 64 || o.StatsWindow != 512 {
		t.Errorf("defaults = %+v", o)
	}
	for _, bad := range []Options{
		{Depth: 1, Deliver: func(interface{}, []float32) {}},
		{Depth: -1, Deliver: func(interface{}, []float32) {}},
		{MaxBatch: -1, Deliver: func(interface{}, []float32) {}},
		{StatsWindow: -1, Deliver: func(interface{}, []float32) {}},
		{}, // nil Deliver
	} {
		if err := bad.withDefaults().Validate(); err == nil {
			t.Errorf("options %+v: want error", bad)
		}
	}
	if _, err := New(nil, Options{Deliver: func(interface{}, []float32) {}}); err == nil {
		t.Error("nil engine: want error")
	}
}

// TestExecutorBitIdentityRandomSpecs is the pipelined path's bit-identity
// property test: across random model geometries (both tail parities), batch
// sizes and ring depths, the staged executor's predictions are identical to
// the monolithic Engine.InferBatch.
func TestExecutorBitIdentityRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		spec := randomSpec(rng, fmt.Sprintf("pipe-%d", trial))
		cfg := core.ConfigFor(spec.Name, core.SmallFP16().Precision)
		if trial%2 == 1 {
			cfg.Precision = core.SmallFP32().Precision
		}
		eng := buildEngine(t, spec, cfg)
		col := newCollector(64)
		x, err := New(eng, Options{Depth: 2 + trial%3, MaxBatch: 64, Deliver: col.deliver})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]*int, 0, 16)
		want := make(map[int][]float32)
		next := 0
		for _, b := range []int{1, 2, 7, 16, 33, 64} {
			qs := randomQueries(spec, b, int64(trial*1000+b))
			ref, err := eng.InferBatch(qs, nil, nil)
			if err != nil {
				t.Fatalf("%s b=%d: %v", spec.Name, b, err)
			}
			id := next
			next++
			want[id] = ref
			idp := new(int)
			*idp = id
			ids = append(ids, idp)
			if err := x.Submit(qs, idp); err != nil {
				t.Fatalf("%s b=%d: submit: %v", spec.Name, b, err)
			}
		}
		for range ids {
			<-col.done
		}
		if err := x.Close(); err != nil {
			t.Fatal(err)
		}
		col.mu.Lock()
		for id, ref := range want {
			got := col.preds[id]
			if len(got) != len(ref) {
				t.Fatalf("%s batch %d: %d predictions, want %d", spec.Name, id, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s batch %d query %d: pipelined %v, monolithic %v",
						spec.Name, id, i, got[i], ref[i])
				}
			}
		}
		col.mu.Unlock()
	}
}

// fakeEngine is a StageEngine with deterministic stage durations, used to
// cross-check the executor's measured steady-state interval against
// pipesim's marked-graph prediction.
type fakeEngine struct {
	gather, dense, tail time.Duration
}

func (f *fakeEngine) EnsurePlane(s *core.BatchScratch, b int) {}
func (f *fakeEngine) GatherIntoPlane(qs []embedding.Query, s *core.BatchScratch) {
	time.Sleep(f.gather)
}
func (f *fakeEngine) DenseFromPlane(b int, s *core.BatchScratch) { time.Sleep(f.dense) }
func (f *fakeEngine) TailFromPlane(b int, s *core.BatchScratch, dst []float32) {
	time.Sleep(f.tail)
	for i := range dst {
		dst[i] = 0.5
	}
}

// TestCrossCheckAgainstPipesim closes the loop between the simulator and the
// real executor: with known stage latencies, the measured steady-state
// inter-completion interval must match pipesim's prediction for the same
// stage graph (within scheduler tolerance) and must beat the serial sum of
// the stages — the overlap the paper's pipelined dataflow exists to deliver.
func TestCrossCheckAgainstPipesim(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive cross-check")
	}
	fe := &fakeEngine{gather: 2 * time.Millisecond, dense: 4 * time.Millisecond, tail: time.Millisecond}
	var (
		mu    sync.Mutex
		times []time.Time
	)
	x, err := New(fe, Options{
		Depth:    3,
		MaxBatch: 4,
		Deliver: func(payload interface{}, preds []float32) {
			mu.Lock()
			times = append(times, time.Now())
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 30
	qs := make([]embedding.Query, 1)
	for i := 0; i < batches; i++ {
		if err := x.Submit(qs, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if len(times) != batches {
		t.Fatalf("delivered %d batches, want %d", len(times), batches)
	}

	// Steady-state: skip the fill, average the remaining completion gaps.
	const skip = 5
	measured := times[len(times)-1].Sub(times[skip]).Seconds() * 1e9 / float64(len(times)-1-skip)

	predicted := PredictIntervalNS([]float64{
		float64(fe.gather), float64(fe.dense), float64(fe.tail),
	}, 3)
	serial := float64(fe.gather + fe.dense + fe.tail)

	if predicted <= 0 {
		t.Fatalf("pipesim prediction %v", predicted)
	}
	// The bottleneck stage (4 ms) bounds the interval from below; sleep
	// overshoot and scheduling add on top, so allow a generous band.
	if measured < 0.9*predicted || measured > 2.0*predicted {
		t.Errorf("measured interval %.2f ms vs pipesim prediction %.2f ms (outside [0.9, 2.0]x)",
			measured/1e6, predicted/1e6)
	}
	// Overlap: steady-state interval < gather + GEMM (+ tail) time.
	if measured >= 0.85*serial {
		t.Errorf("measured interval %.2f ms does not overlap stages (serial sum %.2f ms)",
			measured/1e6, serial/1e6)
	}

	snap := x.Snapshot()
	if snap.Completed != batches {
		t.Errorf("snapshot completed %d, want %d", snap.Completed, batches)
	}
	if len(snap.Stages) != NumStages {
		t.Fatalf("snapshot has %d stages", len(snap.Stages))
	}
	if snap.Stages[StageDense].MeanServiceUS < snap.Stages[StageTail].MeanServiceUS {
		t.Errorf("dense stage (%v us) should dominate tail (%v us)",
			snap.Stages[StageDense].MeanServiceUS, snap.Stages[StageTail].MeanServiceUS)
	}
	if snap.PredictedIntervalUS <= 0 || snap.MeasuredIntervalUS <= 0 {
		t.Errorf("snapshot intervals: measured %v us, predicted %v us",
			snap.MeasuredIntervalUS, snap.PredictedIntervalUS)
	}
	if snap.SerialIntervalUS <= snap.PredictedIntervalUS {
		t.Errorf("serial interval %v us should exceed the overlapped prediction %v us",
			snap.SerialIntervalUS, snap.PredictedIntervalUS)
	}
}

// TestPredictIntervalNS sanity-checks the pipesim cross-feed: the steady
// interval of a linear pipeline of non-internally-pipelined stages is the
// bottleneck stage time.
func TestPredictIntervalNS(t *testing.T) {
	got := PredictIntervalNS([]float64{2000, 4000, 1000}, 3)
	if got < 3900 || got > 4100 {
		t.Errorf("predicted interval %v ns, want ~4000 (bottleneck stage)", got)
	}
	if got := PredictIntervalNS([]float64{0, 4000, 1000}, 3); got != 0 {
		t.Errorf("unmeasured stage should yield 0, got %v", got)
	}
}

// TestCloseDrainsInFlightUnderLoad races Close against submitters: every
// batch accepted by Submit must be delivered exactly once, submits after
// close fail with ErrClosed, and Close is idempotent. Run under -race this
// is the executor's shutdown integrity test.
func TestCloseDrainsInFlightUnderLoad(t *testing.T) {
	eng := buildEngine(t, model.SmallProduction(), core.SmallFP16())
	var delivered atomic64
	x, err := New(eng, Options{
		Depth:    4,
		MaxBatch: 8,
		Deliver: func(payload interface{}, preds []float32) {
			if len(preds) == 0 {
				t.Error("empty delivery")
			}
			delivered.add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := randomQueries(model.SmallProduction(), 8, 9)
	var (
		wg       sync.WaitGroup
		accepted atomic64
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := x.Submit(qs, nil)
				switch {
				case err == nil:
					accepted.add(1)
				case errors.Is(err, ErrClosed):
					return
				default:
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got, want := delivered.load(), accepted.load(); got != want {
		t.Errorf("delivered %d batches, accepted %d — shutdown dropped responses", got, want)
	}
	if accepted.load() == 0 {
		t.Error("no batch accepted before close")
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if err := x.Submit(qs, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

// TestSubmitRejectsOversizedBatch checks plane-capacity enforcement.
func TestSubmitRejectsOversizedBatch(t *testing.T) {
	eng := buildEngine(t, model.SmallProduction(), core.SmallFP16())
	x, err := New(eng, Options{MaxBatch: 4, Deliver: func(interface{}, []float32) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.Submit(nil, nil); err == nil {
		t.Error("empty batch: want error")
	}
	if err := x.Submit(make([]embedding.Query, 5), nil); err == nil {
		t.Error("oversized batch: want error")
	}
}

// atomic64 is a tiny test counter (avoids importing sync/atomic types into
// every closure signature).
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
