package pipeline

import (
	"testing"
	"time"
)

// TestPlaneRingTokenDiscipline checks the ring's bound: depth planes out at
// most, Acquire blocks while empty, Release returns exactly one token, and a
// Release without a matching Acquire panics.
func TestPlaneRingTokenDiscipline(t *testing.T) {
	eng := &fakeEngine{}
	r, err := NewPlaneRing(eng, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth() != 2 || r.Free() != 2 {
		t.Fatalf("fresh ring depth=%d free=%d, want 2/2", r.Depth(), r.Free())
	}
	a := r.Acquire()
	b := r.Acquire()
	if a == nil || b == nil || a == b {
		t.Fatalf("acquired planes %p %p", a, b)
	}
	if r.Free() != 0 {
		t.Fatalf("free=%d with both planes out", r.Free())
	}
	// Acquire must block until a Release; verify via a timed goroutine.
	got := make(chan struct{})
	go func() {
		r.Acquire()
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("Acquire returned with no free plane")
	case <-time.After(10 * time.Millisecond):
	}
	r.Release(a)
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
	r.Release(b)
	// Ring is full again (one plane still out from the goroutine's acquire
	// — a was recycled to it). Releasing a foreign plane overfills.
	r.Release(a)
	defer func() {
		if recover() == nil {
			t.Fatal("over-Release did not panic")
		}
	}()
	r.Release(b)
}

// TestPlaneRingErrors covers the constructor contract.
func TestPlaneRingErrors(t *testing.T) {
	if _, err := NewPlaneRing(nil, 2, 8); err == nil {
		t.Fatal("nil engine did not error")
	}
	if _, err := NewPlaneRing(&fakeEngine{}, 0, 8); err == nil {
		t.Fatal("depth 0 did not error")
	}
	if _, err := NewPlaneRing(&fakeEngine{}, 2, 0); err == nil {
		t.Fatal("max batch 0 did not error")
	}
}
