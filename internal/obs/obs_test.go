package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewRecorderRounding(t *testing.T) {
	cases := []struct {
		size, want int
	}{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {4096, 4096}, {5000, 8192},
	}
	for _, c := range cases {
		if got := NewRecorder(c.size, 1).RingSize(); got != c.want {
			t.Errorf("NewRecorder(%d): ring size %d, want %d", c.size, got, c.want)
		}
	}
	if got := NewRecorder(64, 0).SampleEvery(); got != 1 {
		t.Errorf("sample floor: got %d, want 1", got)
	}
}

func TestSampleEvery(t *testing.T) {
	r := NewRecorder(64, 4)
	hits := 0
	for i := 0; i < 100; i++ {
		if r.Sample() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("sample=4 over 100 arrivals: %d hits, want 25", hits)
	}
	r1 := NewRecorder(64, 1)
	for i := 0; i < 10; i++ {
		if !r1.Sample() {
			t.Fatal("sample=1 must sample every arrival")
		}
	}
}

func testSpan(i int) Span {
	return Span{
		Start:       int64(1000 * i),
		EndToEndNS:  int64(900 + i),
		QueueNS:     100,
		BatchWaitNS: 50,
		GatherNS:    200,
		DenseWaitNS: 10,
		DenseNS:     300,
		TailWaitNS:  5,
		TailNS:      150,
		ShardMaxNS:  180,
		MergeWaitNS: 20,
		Batch:       int32(8 + i%8),
		Shards:      4,
		ColdFaults:  int32(i % 3),
		Verdict:     VerdictOK,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := NewRecorder(64, 1)
	want := testSpan(3)
	id := r.Record(want)
	if id != 1 {
		t.Fatalf("first claim id = %d, want 1", id)
	}
	got := r.Snapshot(0, time.Time{})
	if len(got) != 1 {
		t.Fatalf("snapshot length %d, want 1", len(got))
	}
	want.ID = 1
	if got[0] != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got[0], want)
	}
	st := r.Stats()
	if st.Recorded != 1 || st.RingSize != 64 || st.SampleEvery != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotOrderWrapAndFilters(t *testing.T) {
	r := NewRecorder(64, 1)
	const total = 200 // wraps a 64-slot ring three times
	for i := 1; i <= total; i++ {
		r.Record(Span{Start: int64(i), EndToEndNS: int64(i)})
	}
	all := r.Snapshot(0, time.Time{})
	if len(all) != 64 {
		t.Fatalf("full snapshot after wrap: %d spans, want 64", len(all))
	}
	for i, s := range all {
		wantID := uint64(total - 63 + i)
		if s.ID != wantID {
			t.Fatalf("span %d: id %d, want %d (ascending, newest 64)", i, s.ID, wantID)
		}
		if s.Start != int64(wantID) {
			t.Fatalf("span %d: slot content id mismatch", i)
		}
	}

	lastN := r.Snapshot(10, time.Time{})
	if len(lastN) != 10 || lastN[0].ID != total-9 || lastN[9].ID != total {
		t.Fatalf("last=10: got %d spans, ids [%d..%d]", len(lastN), lastN[0].ID, lastN[len(lastN)-1].ID)
	}

	since := r.Snapshot(0, time.Unix(0, int64(total-4)))
	if len(since) != 5 {
		t.Fatalf("since filter: %d spans, want 5", len(since))
	}
}

// TestRecorderConcurrent hammers the ring with concurrent writers while a
// reader snapshots: the race detector checks the protocol, and the writers
// stamp self-consistent spans (every duration word derived from Start) so any
// torn read that leaked through seqlock validation is caught by content.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128, 1)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i + 1)
				r.Record(Span{
					Start:      v,
					EndToEndNS: 2 * v,
					QueueNS:    3 * v,
					ServiceNS:  4 * v,
				})
			}
		}(w)
	}

	readerErr := make(chan error, 1)
	go func() {
		defer close(readerErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Snapshot(0, time.Time{}) {
				if s.EndToEndNS != 2*s.Start || s.QueueNS != 3*s.Start || s.ServiceNS != 4*s.Start {
					readerErr <- fmt.Errorf("torn span leaked: %+v", s)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-readerErr; err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Recorded; got != writers*perWriter {
		t.Fatalf("recorded %d spans, want %d", got, writers*perWriter)
	}
}

// TestSpanEventsDecomposition checks the trace-event conversion's core
// properties: per-span slices are contiguous and monotone in time, their
// durations sum to StageSumNS, and the summary args ride on the first slice.
func TestSpanEventsDecomposition(t *testing.T) {
	spans := []Span{testSpan(1), testSpan(2)}
	spans[0].ID, spans[1].ID = 1, 2
	events := SpanEvents(spans)
	if len(events) == 0 {
		t.Fatal("no events")
	}

	byReq := map[uint64][]TraceEvent{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		id := ev.Args["req"].(uint64)
		byReq[id] = append(byReq[id], ev)
	}
	for id, evs := range byReq {
		var span Span
		for _, s := range spans {
			if s.ID == id {
				span = s
			}
		}
		cursor := evs[0].TS
		var sumUS float64
		for i, ev := range evs {
			if ev.TS < cursor-1e-9 {
				t.Fatalf("req %d slice %d: ts %v regressed before %v", id, i, ev.TS, cursor)
			}
			if ev.TS != cursor {
				t.Fatalf("req %d slice %d: gap (ts %v, want contiguous %v)", id, i, ev.TS, cursor)
			}
			cursor = ev.TS + ev.Dur
			sumUS += ev.Dur
		}
		wantUS := float64(span.StageSumNS()) / 1e3
		if diff := sumUS - wantUS; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("req %d: slice durations sum %v us, want stage sum %v us", id, sumUS, wantUS)
		}
		args := evs[0].Args
		if args["verdict"] != "ok" || args["batch"] == nil || args["e2e_us"] == nil {
			t.Fatalf("req %d: summary args missing: %+v", id, args)
		}
		if args["shards"] == nil || args["merge_wait_us"] == nil {
			t.Fatalf("req %d: shard args missing on sharded span: %+v", id, args)
		}
	}
}

func TestSpanEventsWorkerPoolShape(t *testing.T) {
	s := Span{ID: 7, Start: 100, EndToEndNS: 500, QueueNS: 100, BatchWaitNS: 50, ServiceNS: 300, Batch: 4}
	events := SpanEvents([]Span{s})
	if len(events) != 3 {
		t.Fatalf("worker-pool span: %d slices, want 3 (queue, batch-wait, service)", len(events))
	}
	if events[2].Cat != "service" {
		t.Fatalf("final slice cat %q, want service", events[2].Cat)
	}
}

func TestWriteTraceEventsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil events: %q, want []", buf.String())
	}

	buf.Reset()
	events := SpanEvents([]Span{testSpan(1)})
	if err := WriteTraceEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, wrote %d", len(decoded), len(events))
	}
	for _, ev := range decoded {
		for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("trace event missing %q: %v", key, ev)
			}
		}
	}
}

func TestMetricWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	m := NewMetricWriter(&buf)
	m.Gauge("microrec_up", "Server liveness.", 1)
	m.Counter("microrec_requests_total", "Requests.", 1234)
	fam := m.Family("microrec_latency_us", "Latency.", "histogram")
	fam.Sample("microrec_latency_us_bucket", 10, "le", "100")
	fam.Sample("microrec_latency_us_bucket", 12, "le", "+Inf")
	fam.Sample("microrec_latency_us_sum", 420.5)
	fam.Sample("microrec_latency_us_count", 12)
	m.Info("microrec_build_info", "Build provenance.", "revision", "abc123", "kernels", `say "hi"`)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"# HELP microrec_up Server liveness.",
		"# TYPE microrec_up gauge",
		"microrec_up 1",
		"# TYPE microrec_requests_total counter",
		"microrec_requests_total 1234",
		"# TYPE microrec_latency_us histogram",
		`microrec_latency_us_bucket{le="100"} 10`,
		`microrec_latency_us_bucket{le="+Inf"} 12`,
		"microrec_latency_us_sum 420.5",
		"microrec_latency_us_count 12",
		`microrec_build_info{kernels="say \"hi\"",revision="abc123"} 1`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q in:\n%s", want, out)
		}
	}
}

func TestReadBuild(t *testing.T) {
	bi := ReadBuild("avx2-gemm")
	if bi.Revision == "" {
		t.Fatal("revision must never be empty (fallback is \"unknown\")")
	}
	if bi.GoVersion == "" {
		t.Fatal("go version must be populated")
	}
	if bi.Kernels != "avx2-gemm" {
		t.Fatalf("kernels = %q", bi.Kernels)
	}
}

func TestVerdictNames(t *testing.T) {
	for v, want := range map[uint8]string{
		VerdictOK: "ok", VerdictExpired: "expired", VerdictCanceled: "canceled",
		VerdictShed: "shed", VerdictError: "error", 99: "error",
	} {
		if got := VerdictName(v); got != want {
			t.Errorf("VerdictName(%d) = %q, want %q", v, got, want)
		}
	}
}

// BenchmarkSpanRecord measures both halves of the overhead claim: the
// unsampled hot path (one atomic increment per request at the default 1-in-8
// rate) and the sampled path (full 16-word seqlock store).
func BenchmarkSpanRecord(b *testing.B) {
	span := testSpan(1)
	b.Run("unsampled", func(b *testing.B) {
		r := NewRecorder(4096, 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r.Sample() {
				r.Record(span)
			}
		}
	})
	b.Run("sampled", func(b *testing.B) {
		r := NewRecorder(4096, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r.Sample() {
				r.Record(span)
			}
		}
	})
}
