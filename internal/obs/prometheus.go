package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricWriter emits Prometheus text exposition format (version 0.0.4): the
// one renderer behind GET /metrics. It is deliberately tiny — families,
// labeled samples, HELP/TYPE comments — because the repo takes no
// dependencies; the format is stable and simple enough to own.
//
// Errors are sticky: the first write failure is remembered and every later
// call is a no-op, so callers check Err() once at the end.
type MetricWriter struct {
	w   io.Writer
	err error
}

// NewMetricWriter wraps w.
func NewMetricWriter(w io.Writer) *MetricWriter { return &MetricWriter{w: w} }

// Err returns the first write error, if any.
func (m *MetricWriter) Err() error { return m.err }

func (m *MetricWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// Metric is one metric family being written: Family emitted its HELP/TYPE
// header; Sample lines follow.
type Metric struct {
	w    *MetricWriter
	name string
}

// Family starts a metric family: one HELP and one TYPE line. typ is
// "gauge", "counter", "histogram" or "summary".
func (m *MetricWriter) Family(name, help, typ string) *Metric {
	m.printf("# HELP %s %s\n", name, escapeHelp(help))
	m.printf("# TYPE %s %s\n", name, typ)
	return &Metric{w: m, name: name}
}

// Sample writes one sample line for the family under an explicit name (the
// family name itself, or a suffixed series like <name>_bucket / _sum /
// _count). labels are key/value pairs; keys are emitted sorted so the output
// is deterministic.
func (mt *Metric) Sample(name string, v float64, labels ...string) {
	if name == "" {
		name = mt.name
	}
	mt.w.printf("%s%s %s\n", name, formatLabels(labels), formatValue(v))
}

// Obs writes one sample line under the family's own name.
func (mt *Metric) Obs(v float64, labels ...string) { mt.Sample("", v, labels...) }

// Gauge is the one-line convenience: family header plus a single unlabeled
// sample.
func (m *MetricWriter) Gauge(name, help string, v float64) {
	m.Family(name, help, "gauge").Obs(v)
}

// Counter is Gauge for monotone counters.
func (m *MetricWriter) Counter(name, help string, v float64) {
	m.Family(name, help, "counter").Obs(v)
}

// Info writes an info-style gauge: constant value 1, identity carried in the
// labels (the Prometheus convention for build/version provenance).
func (m *MetricWriter) Info(name, help string, labels ...string) {
	m.Family(name, help, "gauge").Obs(1, labels...)
}

// formatLabels renders {k="v",...} with keys sorted, or "" when empty.
func formatLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	n := len(kv) / 2 * 2
	pairs := make([][2]string, 0, n/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, [2]string{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a][0] < pairs[b][0] })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: Go float formatting, with the
// exposition format's spellings for the non-finite cases.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
