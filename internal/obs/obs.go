// Package obs implements the serving stack's observability primitives: an
// always-on, low-overhead flight recorder of per-request span records, the
// Chrome/Perfetto trace-event writer shared by the live and simulated
// tracers, a minimal Prometheus text-exposition writer, and build/version
// provenance.
//
// The flight recorder answers the question aggregate /stats cannot: when a
// p99 blows past the SLA, *which* stage ate the budget for *which* request.
// MicroRec's end-to-end claim is that latency decomposes into overlappable
// stage latencies (§4.1, §5.3); the recorder captures that decomposition per
// request from live traffic — queue wait, batch wait, gather (with shard
// scatter/merge detail and cold-tier faults), dense GEMM, tail — into a
// fixed-size power-of-two ring written lock-free via atomic slot claim.
// Head-sampling (record every Nth request) keeps the unsampled hot path at a
// single atomic increment.
package obs

import (
	"sync/atomic"
	"time"
)

// Span stage verdicts: how the request left the server.
const (
	// VerdictOK is a served request (its future carried a prediction).
	VerdictOK uint8 = iota
	// VerdictExpired is a deadline drop: the serving deadline passed before
	// (or during the wait for) service, no gather/GEMM was spent.
	VerdictExpired
	// VerdictCanceled is a context cancellation observed at plane-fill time.
	VerdictCanceled
	// VerdictShed is a fast-fail admission rejection (queue full).
	VerdictShed
	// VerdictError is an engine failure during batch service.
	VerdictError
)

// VerdictName returns the label /trace and /metrics use for a verdict.
func VerdictName(v uint8) string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictExpired:
		return "expired"
	case VerdictCanceled:
		return "canceled"
	case VerdictShed:
		return "shed"
	default:
		return "error"
	}
}

// Span is one sampled request's stage decomposition. All stage fields are
// durations in nanoseconds; adjacent stages are contiguous (each wait starts
// where the previous stage ended), so their sum tracks EndToEndNS up to the
// final future-resolution overhead. In pipelined mode the Gather/Dense/Tail
// triplet (plus the inter-stage waits) is populated; in worker-pool mode the
// monolithic datapath cannot be split and ServiceNS carries the whole
// gather+GEMM+tail block instead.
type Span struct {
	// ID is the recorder's claim sequence number (1-based, monotone).
	ID uint64 `json:"id"`
	// Start is the request's enqueue time in unix nanoseconds.
	Start int64 `json:"start_unix_ns"`
	// EndToEndNS is submit-to-future-resolution wall time.
	EndToEndNS int64 `json:"e2e_ns"`
	// QueueNS is enqueue → micro-batch flush (time spent forming a batch).
	QueueNS int64 `json:"queue_ns"`
	// BatchWaitNS is flush → service start: plane acquisition under
	// backpressure, the deadline-drop filter, and the cold-tier prefetch.
	BatchWaitNS int64 `json:"batch_wait_ns"`
	// GatherNS / DenseNS / TailNS are the plane's stage service times;
	// DenseWaitNS / TailWaitNS the inter-stage queue waits between them
	// (pipelined drain only).
	GatherNS    int64 `json:"gather_ns"`
	DenseWaitNS int64 `json:"dense_wait_ns"`
	DenseNS     int64 `json:"dense_ns"`
	TailWaitNS  int64 `json:"tail_wait_ns"`
	TailNS      int64 `json:"tail_ns"`
	// ServiceNS is the worker-pool drain's monolithic batch service time
	// (0 in pipelined mode, where the stage triplet applies instead).
	ServiceNS int64 `json:"service_ns"`
	// ShardMaxNS is the slowest shard's gather service in the scatter round;
	// MergeWaitNS the last-minus-first shard completion gap (sharded tier
	// only, 0 on a single engine).
	ShardMaxNS  int64 `json:"shard_max_ns"`
	MergeWaitNS int64 `json:"merge_wait_ns"`
	// Batch is the size of the micro-batch that carried the request.
	Batch int32 `json:"batch"`
	// Replica is the 1-based id of the serving replica that carried the
	// request when the server runs behind the replicated router tier
	// (Options.Router.ReplicaID); 0 on an unrouted server.
	Replica int32 `json:"replica"`
	// Shards is the scatter width of the gather (0 on a single engine).
	Shards int32 `json:"shards"`
	// ColdFaults counts embedding rows the batch's gather read from the
	// tiered store's cold file.
	ColdFaults int32 `json:"cold_faults"`
	// Verdict is the request's deadline verdict (VerdictOK..VerdictError).
	Verdict uint8 `json:"verdict"`
}

// StageSumNS returns the sum of the span's contiguous stage segments — the
// figure the monotonicity/decomposition property tests compare against
// EndToEndNS (the residue is the future-resolution overhead after the tail).
func (s Span) StageSumNS() int64 {
	return s.QueueNS + s.BatchWaitNS + s.GatherNS + s.DenseWaitNS +
		s.DenseNS + s.TailWaitNS + s.TailNS + s.ServiceNS
}

// spanWords is the fixed word count of an encoded span (one atomic slot).
const spanWords = 17

// encode packs the span into the slot word layout. ID is not stored — the
// claim sequence that selected the slot is the ID, and decode restores it.
//
//microrec:noalloc
func (s *Span) encode(w *[spanWords]int64) {
	w[0] = s.Start
	w[1] = s.EndToEndNS
	w[2] = s.QueueNS
	w[3] = s.BatchWaitNS
	w[4] = s.GatherNS
	w[5] = s.DenseWaitNS
	w[6] = s.DenseNS
	w[7] = s.TailWaitNS
	w[8] = s.TailNS
	w[9] = s.ServiceNS
	w[10] = s.ShardMaxNS
	w[11] = s.MergeWaitNS
	w[12] = int64(s.Batch)
	w[13] = int64(s.Shards)
	w[14] = int64(s.ColdFaults)
	w[15] = int64(s.Verdict)
	w[16] = int64(s.Replica)
}

func decodeSpan(id uint64, w *[spanWords]int64) Span {
	return Span{
		ID:          id,
		Start:       w[0],
		EndToEndNS:  w[1],
		QueueNS:     w[2],
		BatchWaitNS: w[3],
		GatherNS:    w[4],
		DenseWaitNS: w[5],
		DenseNS:     w[6],
		TailWaitNS:  w[7],
		TailNS:      w[8],
		ServiceNS:   w[9],
		ShardMaxNS:  w[10],
		MergeWaitNS: w[11],
		Batch:       int32(w[12]),
		Shards:      int32(w[13]),
		ColdFaults:  int32(w[14]),
		Verdict:     uint8(w[15]),
		Replica:     int32(w[16]),
	}
}

// slot is one ring entry: a seqlock version counter (odd while a writer owns
// the slot) over the span's word array. Every word is an atomic so the
// protocol is race-detector-clean: a reader that copies the words while a
// writer is mid-store sees the version change and discards the copy.
type slot struct {
	seq   atomic.Uint64
	words [spanWords]atomic.Int64
}

// Recorder is the flight recorder: a power-of-two ring of span slots written
// lock-free. Writers claim a slot by bumping the global claim counter (the
// span ID); the slot's seqlock serializes the rare wraparound collision where
// two claims land on the same slot. Readers snapshot without blocking
// writers.
type Recorder struct {
	mask     uint64
	sample   uint64
	arrivals atomic.Uint64 // head-sampling counter: one Add per Sample call
	claimed  atomic.Uint64 // slot claim sequence == last span ID
	slots    []slot
}

// NewRecorder builds a recorder with at least `size` slots (rounded up to a
// power of two, minimum 64) recording every `sample`-th request (minimum 1 =
// every request).
func NewRecorder(size, sample int) *Recorder {
	n := 64
	for n < size {
		n <<= 1
	}
	if sample < 1 {
		sample = 1
	}
	return &Recorder{
		mask:   uint64(n - 1),
		sample: uint64(sample),
		slots:  make([]slot, n),
	}
}

// SampleEvery reports the recorder's head-sampling rate (record 1 in N).
func (r *Recorder) SampleEvery() int { return int(r.sample) }

// RingSize reports the ring's slot count.
func (r *Recorder) RingSize() int { return len(r.slots) }

// Sample is the head-sampling decision, taken once per request at admission.
// The unsampled path is one atomic increment plus a modulo — the "few
// nanoseconds" the hot path pays per request.
//
//microrec:noalloc
func (r *Recorder) Sample() bool {
	n := r.arrivals.Add(1)
	return r.sample == 1 || n%r.sample == 0
}

// Record writes one span into the ring, claiming the next slot. Safe for
// concurrent writers; never blocks a reader. The span's ID field is assigned
// from the claim sequence (any caller-set value is overwritten).
//
//microrec:noalloc
func (r *Recorder) Record(s Span) uint64 {
	id := r.claimed.Add(1)
	sl := &r.slots[(id-1)&r.mask]
	// Claim the slot's seqlock. Contention here needs two writers a full
	// ring apart to land on the same slot simultaneously — vanishingly rare
	// at ring sizes ≥ 64, so a bare CAS loop is fine.
	for {
		v := sl.seq.Load()
		if v&1 == 0 && sl.seq.CompareAndSwap(v, v+1) {
			break
		}
	}
	var w [spanWords]int64
	s.encode(&w)
	for i := range w {
		sl.words[i].Store(w[i])
	}
	sl.seq.Add(1)
	return id
}

// Stats is the recorder's own counters, surfaced in /stats and /metrics.
type Stats struct {
	// RingSize is the span ring's slot count; SampleEvery the head-sampling
	// rate (1 = every request).
	RingSize    int `json:"ring_size"`
	SampleEvery int `json:"sample_every"`
	// Arrivals counts sampling decisions (one per request); Recorded the
	// spans written to the ring.
	Arrivals uint64 `json:"arrivals"`
	Recorded uint64 `json:"recorded"`
}

// Stats snapshots the recorder's counters.
func (r *Recorder) Stats() Stats {
	return Stats{
		RingSize:    len(r.slots),
		SampleEvery: int(r.sample),
		Arrivals:    r.arrivals.Load(),
		Recorded:    r.claimed.Load(),
	}
}

// Snapshot copies up to `last` of the newest stable spans out of the ring
// (last <= 0 means the whole ring), newest first in the walk but returned in
// ascending ID order. When since is non-zero, spans that started before it
// are dropped. Slots mid-write or overwritten during the walk are skipped —
// the recorder never blocks a writer to satisfy a reader.
func (r *Recorder) Snapshot(last int, since time.Time) []Span {
	n := len(r.slots)
	if last <= 0 || last > n {
		last = n
	}
	var sinceNS int64
	if !since.IsZero() {
		sinceNS = since.UnixNano()
	}
	head := r.claimed.Load()
	out := make([]Span, 0, last)
	for i := 0; i < n && len(out) < last; i++ {
		id := head - uint64(i)
		if id == 0 || id > head { // ring younger than full, or wrapped past 0
			break
		}
		sl := &r.slots[(id-1)&r.mask]
		v := sl.seq.Load()
		if v&1 == 1 {
			continue // writer mid-store
		}
		var w [spanWords]int64
		for j := range w {
			w[j] = sl.words[j].Load()
		}
		if sl.seq.Load() != v {
			continue // torn read: a writer claimed the slot during the copy
		}
		s := decodeSpan(id, &w)
		if sinceNS != 0 && s.Start < sinceNS {
			continue
		}
		out = append(out, s)
	}
	// The walk collected newest→oldest; return oldest→newest.
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	return out
}
