package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"testing"
)

// FuzzSpanTraceEvents round-trips arbitrary span timings through SpanEvents
// and WriteTraceEvents: whatever a flight-recorder slot holds (including the
// negative and overflowing durations a torn or hand-rolled span could carry),
// the tracer must emit a valid JSON array of complete ("X") events that
// chrome://tracing would accept, never panic or corrupt the encoding.
func FuzzSpanTraceEvents(f *testing.F) {
	f.Add(int64(0), int64(10), int64(20), int64(30), int64(5), int64(40), int64(2), int64(8), int64(0), int32(16), int32(0), int64(100))
	f.Add(int64(1e18), int64(-5), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(77), int32(1), int32(3), int64(-1))
	f.Add(int64(-42), int64(math.MaxInt64), int64(math.MinInt64), int64(1), int64(1), int64(1), int64(1), int64(1), int64(0), int32(0), int32(0), int64(0))
	f.Fuzz(func(t *testing.T, start, queue, batchWait, gather, denseWait, dense, tailWait, tail, service int64, batch, shards int32, start2 int64) {
		spans := []Span{
			{
				ID: 1, Start: start, QueueNS: queue, BatchWaitNS: batchWait,
				GatherNS: gather, DenseWaitNS: denseWait, DenseNS: dense,
				TailWaitNS: tailWait, TailNS: tail, ServiceNS: service,
				Batch: batch, Shards: shards,
				EndToEndNS: queue + batchWait + gather + dense + tail,
			},
			{ID: 2, Start: start2, QueueNS: queue, ServiceNS: service, Batch: batch},
		}
		events := SpanEvents(spans)
		var buf bytes.Buffer
		if err := WriteTraceEvents(&buf, events); err != nil {
			t.Fatalf("WriteTraceEvents: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("trace output is not valid JSON: %q", buf.String())
		}
		var decoded []TraceEvent
		if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
			t.Fatalf("trace output does not decode as []TraceEvent: %v", err)
		}
		if len(decoded) != len(events) {
			t.Fatalf("decoded %d events, wrote %d", len(decoded), len(events))
		}
		for i, ev := range decoded {
			if ev.Ph != "X" {
				t.Fatalf("event %d: phase %q, want complete event \"X\"", i, ev.Ph)
			}
		}
	})
}

// promSampleLine is the exposition-format sample shape: metric name, optional
// {labels}, one space, one value token. Newlines inside HELP text or label
// values must be escaped away by the writer, so every emitted line matches
// either this or a # comment — an injected newline would produce a line that
// matches neither.
var promSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^\n]*\})? [^ \n]+$`)

// FuzzMetricWriter drives the Prometheus text writer with attacker-shaped
// runtime data — arbitrary HELP text and label values (metric and label
// names are compile-time constants in the tree, so the target sanitizes
// those) — and checks the output stays line-structured exposition format:
// exactly the expected number of lines, each a # comment or a well-formed
// sample.
func FuzzMetricWriter(f *testing.F) {
	f.Add("latency_us", "serving latency", "shard", "0", 12.5)
	f.Add("x", "help with \"quotes\" and \\slashes\\", "k", "line1\nline2", math.Inf(1))
	f.Add("m", "multi\nline\nhelp", "key", `tricky\"value`, math.NaN())
	f.Fuzz(func(t *testing.T, name, help, labelKey, labelVal string, v float64) {
		clean := func(s, fallback string) string {
			var b strings.Builder
			for _, r := range s {
				if r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
					(b.Len() > 0 && r >= '0' && r <= '9') {
					b.WriteRune(r)
				}
			}
			if b.Len() == 0 {
				return fallback
			}
			return b.String()
		}
		name = clean(name, "m")
		labelKey = clean(labelKey, "k")

		var buf bytes.Buffer
		w := NewMetricWriter(&buf)
		w.Gauge(name, help, v)
		w.Family(name+"_fam", help, "counter").Obs(v, labelKey, labelVal)
		w.Info(name+"_info", help, labelKey, labelVal)
		if err := w.Err(); err != nil {
			t.Fatalf("writer error on in-memory buffer: %v", err)
		}
		out := buf.String()
		// 3 families x (HELP + TYPE + sample) = 9 lines, newline-terminated.
		const wantLines = 9
		lines := strings.Split(out, "\n")
		if len(lines) != wantLines+1 || lines[wantLines] != "" {
			t.Fatalf("got %d lines, want %d (unescaped newline leaked?):\n%q", len(lines)-1, wantLines, out)
		}
		for i, line := range lines[:wantLines] {
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				continue
			}
			if !promSampleLine.MatchString(line) {
				t.Fatalf("line %d is neither comment nor well-formed sample: %q", i, line)
			}
		}
	})
}
