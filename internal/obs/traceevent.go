package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one entry of the Chrome trace-event format ("X" complete
// events): the JSON shape chrome://tracing and https://ui.perfetto.dev load
// directly. Both the live tracer (GET /trace, SpanEvents over flight-recorder
// spans) and the simulated tracer (`microrec trace`, pipesim stage events)
// serialize through this one type, so the two outputs can never drift apart
// in format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceEvents writes the events as a chrome://tracing / Perfetto
// compatible JSON array.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	if err := json.NewEncoder(w).Encode(events); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}

// Track (tid) assignment of live span events: one track per stage, in
// datapath order, so a request reads top-to-bottom as it flows through the
// server.
const (
	trackQueue = iota
	trackBatchWait
	trackGather
	trackDense
	trackTail
	trackService // worker-pool monolithic service
)

// spanSegment is one contiguous piece of a span's timeline.
type spanSegment struct {
	name string
	tid  int
	ns   int64
}

// segments returns the span's contiguous timeline pieces in order. Waits
// between pipeline stages are folded into the following stage's track (they
// render as one slice with the wait recorded in args instead of a separate
// sliver, keeping the trace readable); the queue and batch-wait segments get
// their own tracks because they are where overload shows up.
func (s Span) segments() []spanSegment {
	segs := []spanSegment{
		{"queue", trackQueue, s.QueueNS},
		{"batch-wait", trackBatchWait, s.BatchWaitNS},
	}
	if s.ServiceNS > 0 {
		segs = append(segs, spanSegment{"service", trackService, s.ServiceNS})
		return segs
	}
	segs = append(segs,
		spanSegment{"gather", trackGather, s.GatherNS},
		spanSegment{"dense-gemm", trackDense, s.DenseWaitNS + s.DenseNS},
		spanSegment{"tail", trackTail, s.TailWaitNS + s.TailNS},
	)
	return segs
}

// SpanEvents converts flight-recorder spans into trace events: per span, one
// "X" slice per non-empty timeline segment, laid out contiguously from the
// span's start. Timestamps are relative to the earliest span's start (Chrome
// trace ts is unanchored). The first slice of every span carries the span's
// summary args (e2e_us, batch, verdict, shard and cold-tier detail), so a
// scraper can join slices back into requests via args.req.
func SpanEvents(spans []Span) []TraceEvent {
	if len(spans) == 0 {
		return nil
	}
	base := spans[0].Start
	for _, s := range spans {
		if s.Start < base {
			base = s.Start
		}
	}
	events := make([]TraceEvent, 0, 4*len(spans))
	for _, s := range spans {
		ts := float64(s.Start-base) / 1e3
		first := true
		for _, seg := range s.segments() {
			if seg.ns <= 0 && !first {
				continue
			}
			ev := TraceEvent{
				Name: fmt.Sprintf("req %d", s.ID),
				Cat:  seg.name,
				Ph:   "X",
				TS:   ts,
				Dur:  float64(seg.ns) / 1e3,
				// One Chrome trace "process" per serving replica: routed
				// traffic renders as per-replica lanes (pid 0 = unrouted).
				PID:  int(s.Replica),
				TID:  seg.tid,
				Args: map[string]any{"req": s.ID},
			}
			if first {
				ev.Args["e2e_us"] = float64(s.EndToEndNS) / 1e3
				ev.Args["stage_sum_us"] = float64(s.StageSumNS()) / 1e3
				ev.Args["batch"] = s.Batch
				ev.Args["verdict"] = VerdictName(s.Verdict)
				if s.Replica > 0 {
					ev.Args["replica"] = s.Replica
				}
				if s.Shards > 0 {
					ev.Args["shards"] = s.Shards
					ev.Args["shard_max_us"] = float64(s.ShardMaxNS) / 1e3
					ev.Args["merge_wait_us"] = float64(s.MergeWaitNS) / 1e3
				}
				if s.ColdFaults > 0 {
					ev.Args["cold_faults"] = s.ColdFaults
				}
				first = false
			}
			events = append(events, ev)
			ts += float64(seg.ns) / 1e3
		}
	}
	return events
}
