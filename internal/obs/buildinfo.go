package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the build/version provenance record: which commit, toolchain
// and kernel dispatch produced a binary's numbers. It appears in /stats,
// /metrics (as an info gauge), the `version` subcommand and both BENCH JSONs,
// so two perf documents can be compared like for like — benchdiff's
// -require-same-commit gate reads it.
type BuildInfo struct {
	// Revision is the VCS commit the binary was built from; "unknown" when
	// the build carried no VCS stamp (go test binaries, source archives).
	Revision string `json:"revision"`
	// Dirty marks a build from a modified working tree.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Kernels records which optimized datapath kernels the build selected at
	// init ("portable" under the noasm tag or without CPU support).
	Kernels string `json:"kernels,omitempty"`
}

// ReadBuild assembles the build provenance from the binary's embedded build
// info plus the caller-supplied kernel dispatch string (obs cannot import the
// kernels package — it must stay a leaf).
func ReadBuild(kernels string) BuildInfo {
	bi := BuildInfo{
		Revision:  "unknown",
		GoVersion: runtime.Version(),
		Kernels:   kernels,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.GoVersion != "" {
			bi.GoVersion = info.GoVersion
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					bi.Revision = s.Value
				}
			case "vcs.modified":
				bi.Dirty = s.Value == "true"
			}
		}
	}
	return bi
}
