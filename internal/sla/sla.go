// Package sla models the serving-side tension the paper builds its latency
// argument on (§2.3): CPU engines need large batches for throughput, but the
// SLA of tens of milliseconds caps the feasible batch size — while the
// accelerator serves item-by-item and needs no batching at all (§4.1).
//
// It provides an SLA-aware batch-size chooser over the calibrated CPU model
// and a discrete-event simulation of a batching queue (arrivals, batch
// formation with a timeout, FIFO service), in the spirit of the DeepRecSys
// scheduler the paper cites (Gupta et al. 2020a).
package sla

import (
	"fmt"
	"math"
	"math/rand"

	"microrec/internal/cpu"
	"microrec/internal/metrics"
)

// MaxBatchUnderSLA returns the largest batch size in [1, maxBatch] whose
// modeled CPU service latency stays within the SLA, or 0 if even B=1 misses
// it. Service latency grows monotonically with B, so binary search applies.
func MaxBatchUnderSLA(m cpu.Model, slaMS float64, maxBatch int) int {
	if maxBatch < 1 || slaMS <= 0 {
		return 0
	}
	if m.EndToEndMS(1) > slaMS {
		return 0
	}
	lo, hi := 1, maxBatch
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.EndToEndMS(mid) <= slaMS {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Policy configures the batching queue.
type Policy struct {
	// MaxBatch is the largest batch the server forms.
	MaxBatch int
	// TimeoutMS bounds how long the first query of a forming batch may
	// wait before the batch is dispatched partially full.
	TimeoutMS float64
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.MaxBatch < 1 {
		return fmt.Errorf("sla: max batch %d", p.MaxBatch)
	}
	if p.TimeoutMS < 0 {
		return fmt.Errorf("sla: negative timeout")
	}
	return nil
}

// Result summarises a queue simulation.
type Result struct {
	// Queries served.
	Queries int
	// Latency is the distribution of per-query end-to-end latency
	// (queueing + batching delay + service), in ms.
	Latency metrics.Summary
	// MeanBatch is the average dispatched batch size.
	MeanBatch float64
	// ThroughputPerSec is queries / makespan.
	ThroughputPerSec float64
	// SLAViolations counts queries whose latency exceeded the given SLA
	// (only computed when slaMS > 0).
	SLAViolations int
}

// SimulateQueue runs `queries` arrivals with exponential inter-arrival times
// at the given rate through a single batching server whose service time
// follows the calibrated CPU model. slaMS, when positive, is only used to
// count violations.
func SimulateQueue(m cpu.Model, arrivalsPerSec float64, queries int, pol Policy, slaMS float64, seed int64) (Result, error) {
	if err := pol.Validate(); err != nil {
		return Result{}, err
	}
	if arrivalsPerSec <= 0 {
		return Result{}, fmt.Errorf("sla: arrival rate %v", arrivalsPerSec)
	}
	if queries < 1 {
		return Result{}, fmt.Errorf("sla: %d queries", queries)
	}
	rng := rand.New(rand.NewSource(seed))
	// Arrival times in ms.
	arrivals := make([]float64, queries)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() / arrivalsPerSec * 1e3
		arrivals[i] = t
	}
	latencies := make([]float64, 0, queries)
	var (
		serverFree float64
		idx        int
		batches    int
		totalBatch int
		makespan   float64
		violations int
	)
	for idx < queries {
		// The server picks up work at the later of its free time and the
		// first waiting query's arrival.
		start := math.Max(serverFree, arrivals[idx])
		// Batch formation: everything that has arrived by `start` joins,
		// up to MaxBatch. If the batch is still short, wait for more
		// arrivals until the first query's timeout expires.
		deadline := arrivals[idx] + pol.TimeoutMS
		if deadline < start {
			deadline = start
		}
		end := idx
		dispatch := start
		for end < queries && end-idx < pol.MaxBatch {
			if arrivals[end] <= start {
				end++
				continue
			}
			if arrivals[end] <= deadline {
				dispatch = math.Max(dispatch, arrivals[end])
				end++
				continue
			}
			break
		}
		b := end - idx
		service := m.EndToEndMS(b)
		done := dispatch + service
		for q := idx; q < end; q++ {
			lat := done - arrivals[q]
			latencies = append(latencies, lat)
			if slaMS > 0 && lat > slaMS {
				violations++
			}
		}
		batches++
		totalBatch += b
		serverFree = done
		makespan = done
		idx = end
	}
	return Result{
		Queries:          queries,
		Latency:          metrics.Summarize(latencies),
		MeanBatch:        float64(totalBatch) / float64(batches),
		ThroughputPerSec: float64(queries) / (makespan / 1e3),
		SLAViolations:    violations,
	}, nil
}

// ItemServeLatencyMS returns the accelerator-side per-query latency in ms
// for comparison columns: item-at-a-time service has no batching delay, so
// under moderate load the query latency is just the pipeline latency.
func ItemServeLatencyMS(latencyNS float64) float64 { return latencyNS / 1e6 }

// Micro-batch window validation. A dynamic micro-batcher (flush on max batch
// size or a deadline window) bounds the per-query latency under light load:
// in the worst case a query arrives just after a batch departs, waits its
// full window for the batch to fill, and is then served behind one still
// in-flight batch, i.e. window + 2*service(maxBatch). Under saturation a
// server also holds queued work ahead of a newly admitted query;
// WorstCaseAdmittedLatencyMS extends the bound with that backlog.

// WorstCaseBatchLatencyMS returns the micro-batcher's light-load worst-case
// per-query latency bound (window + 2*service: one in-flight batch ahead)
// for a flush window and a full-batch service time, both in ms.
func WorstCaseBatchLatencyMS(windowMS, serviceMS float64) float64 {
	return WorstCaseAdmittedLatencyMS(windowMS, serviceMS, 1, 1)
}

// WorstCaseAdmittedLatencyMS bounds the latency of any *admitted* query for
// a server that can hold up to queuedBatches full batches of backlog
// (forming, queued and in service) ahead of the query's own batch, drained
// by `workers` parallel workers: the query waits its window, the backlog
// drains in ceil(queuedBatches/workers) rounds of service, then its own
// batch is served.
func WorstCaseAdmittedLatencyMS(windowMS, serviceMS float64, queuedBatches, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	if queuedBatches < 0 {
		queuedBatches = 0
	}
	drain := math.Ceil(float64(queuedBatches) / float64(workers))
	return windowMS + (drain+1)*serviceMS
}

// AdmittedLatencyBoundsMS returns the pair of admitted-latency figures a
// cache-fronted server reports: the worst case computed from the cache-cold
// full-batch service time (the bound admission control must enforce — a
// hot-row cache improves the expectation, never the bound, since it can be
// cold at startup or after invalidation) and the expected latency at the
// currently observed warm service time. Without a cache the two coincide.
func AdmittedLatencyBoundsMS(windowMS, coldServiceMS, warmServiceMS float64, queuedBatches, workers int) (worstMS, expectedMS float64) {
	return WorstCaseAdmittedLatencyMS(windowMS, coldServiceMS, queuedBatches, workers),
		WorstCaseAdmittedLatencyMS(windowMS, warmServiceMS, queuedBatches, workers)
}

// ValidateAdmittedWindow checks a batching window against a tail-latency
// budget including admission backlog (see WorstCaseAdmittedLatencyMS).
func ValidateAdmittedWindow(windowMS, serviceMS, budgetMS float64, queuedBatches, workers int) error {
	if windowMS < 0 {
		return fmt.Errorf("sla: negative window %v ms", windowMS)
	}
	if serviceMS < 0 {
		return fmt.Errorf("sla: negative service time %v ms", serviceMS)
	}
	if budgetMS <= 0 {
		return fmt.Errorf("sla: latency budget %v ms", budgetMS)
	}
	worst := WorstCaseAdmittedLatencyMS(windowMS, serviceMS, queuedBatches, workers)
	if worst > budgetMS {
		return fmt.Errorf("sla: worst-case admitted latency %.3f ms (window %.3f + %d queued batches on %d workers at %.3f ms/batch) exceeds budget %.3f ms",
			worst, windowMS, queuedBatches, workers, serviceMS, budgetMS)
	}
	return nil
}

// ValidateWindow checks a batching window against a tail-latency budget
// under the light-load bound, given the full-batch service time, all in ms.
// It returns nil when the worst-case bound fits the budget and a
// descriptive error otherwise.
func ValidateWindow(windowMS, serviceMS, budgetMS float64) error {
	return ValidateAdmittedWindow(windowMS, serviceMS, budgetMS, 1, 1)
}

// MaxWindowUnderBudget returns the largest flush window (ms) whose
// worst-case admitted latency still fits the budget, or an error when even
// an immediate flush (window 0) misses it — meaning the backlog and batch
// size themselves are too large for the SLA.
func MaxWindowUnderBudget(serviceMS, budgetMS float64, queuedBatches, workers int) (float64, error) {
	if err := ValidateAdmittedWindow(0, serviceMS, budgetMS, queuedBatches, workers); err != nil {
		return 0, err
	}
	return budgetMS - WorstCaseAdmittedLatencyMS(0, serviceMS, queuedBatches, workers), nil
}
