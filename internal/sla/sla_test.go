package sla

import (
	"testing"
	"testing/quick"

	"microrec/internal/cpu"
)

func TestMaxBatchUnderSLA(t *testing.T) {
	m := cpu.PaperSmall()
	// Table 2: B=2048 costs 28.18 ms — so a 30 ms SLA admits ~2048 while
	// a 10 ms SLA admits far fewer.
	big := MaxBatchUnderSLA(m, 30, 4096)
	small := MaxBatchUnderSLA(m, 10, 4096)
	if big < 1800 {
		t.Errorf("30 ms SLA admits B=%d, want ~2048+", big)
	}
	if small >= big || small < 64 {
		t.Errorf("10 ms SLA admits B=%d (30 ms admits %d)", small, big)
	}
	// The chosen batch actually meets the SLA and B+1 does not.
	if m.EndToEndMS(small) > 10 {
		t.Errorf("B=%d misses its own SLA: %.2f ms", small, m.EndToEndMS(small))
	}
	if m.EndToEndMS(small+1) <= 10 {
		t.Errorf("B=%d+1 also fits — not maximal", small)
	}
}

func TestMaxBatchEdgeCases(t *testing.T) {
	m := cpu.PaperSmall()
	if got := MaxBatchUnderSLA(m, 0.001, 1024); got != 0 {
		t.Errorf("impossible SLA admits B=%d, want 0 (B=1 costs %.2f ms)", got, m.EndToEndMS(1))
	}
	if got := MaxBatchUnderSLA(m, 100, 0); got != 0 {
		t.Errorf("maxBatch=0 admits %d", got)
	}
	if got := MaxBatchUnderSLA(m, -5, 10); got != 0 {
		t.Errorf("negative SLA admits %d", got)
	}
	if got := MaxBatchUnderSLA(m, 1e9, 256); got != 256 {
		t.Errorf("infinite SLA admits %d, want the cap 256", got)
	}
}

// Property: the admitted batch is monotone in the SLA.
func TestMaxBatchMonotoneProperty(t *testing.T) {
	m := cpu.PaperLarge()
	prop := func(a, b uint8) bool {
		s1, s2 := float64(a)+1, float64(a)+1+float64(b)
		return MaxBatchUnderSLA(m, s1, 4096) <= MaxBatchUnderSLA(m, s2, 4096)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{MaxBatch: 0, TimeoutMS: 1}).Validate(); err == nil {
		t.Error("MaxBatch 0: want error")
	}
	if err := (Policy{MaxBatch: 1, TimeoutMS: -1}).Validate(); err == nil {
		t.Error("negative timeout: want error")
	}
	if err := (Policy{MaxBatch: 64, TimeoutMS: 5}).Validate(); err != nil {
		t.Errorf("valid policy: %v", err)
	}
}

func TestSimulateQueueBasics(t *testing.T) {
	m := cpu.PaperSmall()
	res, err := SimulateQueue(m, 5000, 2000, Policy{MaxBatch: 256, TimeoutMS: 5}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 2000 || res.Latency.Count != 2000 {
		t.Fatalf("served %d queries, summarized %d", res.Queries, res.Latency.Count)
	}
	if res.MeanBatch < 1 || res.MeanBatch > 256 {
		t.Errorf("mean batch %.1f out of range", res.MeanBatch)
	}
	// Latency must at least include one service time.
	if res.Latency.Min < m.EndToEndMS(1) {
		t.Errorf("min latency %.2f below single-item service %.2f", res.Latency.Min, m.EndToEndMS(1))
	}
	if res.ThroughputPerSec <= 0 {
		t.Error("degenerate throughput")
	}
}

func TestSimulateQueueErrors(t *testing.T) {
	m := cpu.PaperSmall()
	if _, err := SimulateQueue(m, 0, 10, Policy{MaxBatch: 1}, 0, 1); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := SimulateQueue(m, 100, 0, Policy{MaxBatch: 1}, 0, 1); err == nil {
		t.Error("zero queries: want error")
	}
	if _, err := SimulateQueue(m, 100, 10, Policy{MaxBatch: 0}, 0, 1); err == nil {
		t.Error("bad policy: want error")
	}
}

func TestBatchingTradeoffAcrossLoadRegimes(t *testing.T) {
	// The paper's trade-off, both sides:
	// (a) at low load, aggressive batching only adds waiting — the
	//     timeout inflates tail latency for no throughput need;
	// (b) at high load, small batches lack throughput (the server
	//     saturates and the queue — and tail latency — blow up), which is
	//     exactly why CPU baselines must batch large and eat the latency.
	m := cpu.PaperSmall()
	smallPol := Policy{MaxBatch: 64, TimeoutMS: 2}
	bigPol := Policy{MaxBatch: 2048, TimeoutMS: 20}

	// (a) Low load: 2k queries/s, far below either capacity.
	lowSmall, err := SimulateQueue(m, 2000, 3000, smallPol, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	lowBig, err := SimulateQueue(m, 2000, 3000, bigPol, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lowBig.Latency.P99 <= lowSmall.Latency.P99 {
		t.Errorf("low load: big-batch p99 %.1f ms should exceed small-batch p99 %.1f ms",
			lowBig.Latency.P99, lowSmall.Latency.P99)
	}

	// (b) High load: 20k queries/s exceeds the small policy's ~12k/s
	// capacity (64 / 5.41 ms) but not the big policy's.
	highSmall, err := SimulateQueue(m, 20000, 4000, smallPol, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	highBig, err := SimulateQueue(m, 20000, 4000, bigPol, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if highBig.MeanBatch <= highSmall.MeanBatch {
		t.Fatalf("high load: big policy batches %.1f <= small policy %.1f",
			highBig.MeanBatch, highSmall.MeanBatch)
	}
	if highSmall.Latency.P99 <= highBig.Latency.P99 {
		t.Errorf("high load: saturated small-batch p99 %.1f ms should exceed big-batch p99 %.1f ms",
			highSmall.Latency.P99, highBig.Latency.P99)
	}
	if highBig.ThroughputPerSec <= highSmall.ThroughputPerSec {
		t.Errorf("high load: big-batch throughput %.0f/s should exceed small-batch %.0f/s",
			highBig.ThroughputPerSec, highSmall.ThroughputPerSec)
	}
}

func TestOverloadDetectedViaViolations(t *testing.T) {
	// Offered load beyond the small-batch service capacity must blow the
	// SLA for most queries.
	m := cpu.PaperSmall()
	res, err := SimulateQueue(m, 60000, 3000, Policy{MaxBatch: 64, TimeoutMS: 1}, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLAViolations < res.Queries/2 {
		t.Errorf("only %d/%d violations under overload", res.SLAViolations, res.Queries)
	}
}

func TestItemServeLatencyMS(t *testing.T) {
	if got := ItemServeLatencyMS(17900); got != 0.0179 {
		t.Errorf("ItemServeLatencyMS = %v", got)
	}
}

func BenchmarkSimulateQueue(b *testing.B) {
	m := cpu.PaperSmall()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateQueue(m, 10000, 2000, Policy{MaxBatch: 512, TimeoutMS: 10}, 50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestValidateWindow(t *testing.T) {
	// 0.2ms window + 2*1.5ms service = 3.2ms fits a 5ms budget.
	if err := ValidateWindow(0.2, 1.5, 5); err != nil {
		t.Errorf("fitting window rejected: %v", err)
	}
	// 3ms window + 2*1.5ms service = 6ms misses a 5ms budget.
	if err := ValidateWindow(3, 1.5, 5); err == nil {
		t.Error("oversized window accepted")
	}
	for _, bad := range [][3]float64{{-1, 1, 5}, {1, -1, 5}, {1, 1, 0}} {
		if err := ValidateWindow(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("ValidateWindow(%v) accepted", bad)
		}
	}
}

func TestWorstCaseBatchLatencyMS(t *testing.T) {
	if got := WorstCaseBatchLatencyMS(0.2, 1.5); got != 3.2 {
		t.Errorf("worst case = %v, want 3.2", got)
	}
}

func TestMaxWindowUnderBudget(t *testing.T) {
	w, err := MaxWindowUnderBudget(1.5, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("max window = %v, want 2", w)
	}
	// Window w must validate, anything beyond must not.
	if err := ValidateWindow(w, 1.5, 5); err != nil {
		t.Errorf("max window rejected: %v", err)
	}
	if err := ValidateWindow(w+0.01, 1.5, 5); err == nil {
		t.Error("beyond-max window accepted")
	}
	// Service alone exceeding the budget is unservable at any window.
	if _, err := MaxWindowUnderBudget(3, 5, 1, 1); err == nil {
		t.Error("unservable batch accepted")
	}
}

func TestWorstCaseAdmittedLatencyMS(t *testing.T) {
	// No backlog degenerates to window + service.
	if got := WorstCaseAdmittedLatencyMS(0.2, 1.5, 0, 1); got != 1.7 {
		t.Errorf("no backlog = %v, want 1.7", got)
	}
	// 7 queued batches on 1 worker: window + (7+1)*service.
	if got := WorstCaseAdmittedLatencyMS(0.2, 1.5, 7, 1); got != 0.2+8*1.5 {
		t.Errorf("7 queued / 1 worker = %v", got)
	}
	// 7 queued batches on 4 workers drain in ceil(7/4)=2 rounds.
	if got := WorstCaseAdmittedLatencyMS(0.2, 1.5, 7, 4); got != 0.2+3*1.5 {
		t.Errorf("7 queued / 4 workers = %v", got)
	}
	// Degenerate inputs clamp instead of exploding.
	if got := WorstCaseAdmittedLatencyMS(0.2, 1.5, -3, 0); got != 1.7 {
		t.Errorf("clamped = %v, want 1.7", got)
	}
}

func TestValidateAdmittedWindow(t *testing.T) {
	// The light-load bound fits a 5ms budget, but 7 batches of backlog on
	// one worker must not.
	if err := ValidateAdmittedWindow(0.2, 1.5, 5, 0, 1); err != nil {
		t.Errorf("no backlog rejected: %v", err)
	}
	if err := ValidateAdmittedWindow(0.2, 1.5, 5, 7, 1); err == nil {
		t.Error("backlogged config accepted")
	}
	// More workers drain the same backlog inside the budget.
	if err := ValidateAdmittedWindow(0.2, 1.5, 13, 7, 8); err != nil {
		t.Errorf("parallel drain rejected: %v", err)
	}
	for _, bad := range [][3]float64{{-1, 1, 5}, {1, -1, 5}, {1, 1, 0}} {
		if err := ValidateAdmittedWindow(bad[0], bad[1], bad[2], 1, 1); err == nil {
			t.Errorf("ValidateAdmittedWindow(%v) accepted", bad)
		}
	}
}

func TestAdmittedLatencyBoundsMS(t *testing.T) {
	// Equal cold/warm service: bounds coincide (the no-cache case).
	worst, expected := AdmittedLatencyBoundsMS(1, 5, 5, 2, 1)
	if worst != expected {
		t.Errorf("equal service: worst %v != expected %v", worst, expected)
	}
	if want := WorstCaseAdmittedLatencyMS(1, 5, 2, 1); worst != want {
		t.Errorf("worst %v, want %v", worst, want)
	}
	// A warm cache shrinks the expectation, never the bound.
	worst, expected = AdmittedLatencyBoundsMS(1, 5, 3, 2, 1)
	if expected >= worst {
		t.Errorf("warm service 3 vs cold 5: expected %v should beat worst %v", expected, worst)
	}
	if want := WorstCaseAdmittedLatencyMS(1, 3, 2, 1); expected != want {
		t.Errorf("expected %v, want %v", expected, want)
	}
}

// TestAdmittedLatencyBoundsPipelineMode pins the bounds in the serving
// layer's pipelined-drain model: the pipeline is treated conservatively as a
// single drain worker (workers=1) with the full un-overlapped batch service
// time. With ring depth 1 batch of backlog the bound is window + 2*service
// (the classic one-in-flight form), and deeper backlogs grow linearly — one
// full service round per queued batch, since one "worker" drains them.
func TestAdmittedLatencyBoundsPipelineMode(t *testing.T) {
	const window, cold, warm = 0.2, 4.0, 2.5
	// Depth-1 backlog, pipeline drain (workers=1).
	worst, expected := AdmittedLatencyBoundsMS(window, cold, warm, 1, 1)
	if want := window + 2*cold; worst != want {
		t.Fatalf("depth-1 worst %v, want window+2*service = %v", worst, want)
	}
	if want := window + 2*warm; expected != want {
		t.Fatalf("depth-1 expected %v, want %v", expected, want)
	}
	if expected >= worst {
		t.Fatalf("warm expectation %v must beat cold bound %v", expected, worst)
	}
	// The pipelined drain's single conservative worker: each extra queued
	// batch adds exactly one cold service to the worst case.
	prevWorst := worst
	for backlog := 2; backlog <= 5; backlog++ {
		w, _ := AdmittedLatencyBoundsMS(window, cold, warm, backlog, 1)
		if diff := w - prevWorst; diff != cold {
			t.Fatalf("backlog %d: bound grew by %v, want one service (%v)", backlog, diff, cold)
		}
		prevWorst = w
	}
	// Sanity against the worker-pool model: with enough workers the same
	// backlog drains in one round, so the pipeline-mode bound dominates.
	poolWorst, _ := AdmittedLatencyBoundsMS(window, cold, warm, 5, 5)
	pipeWorst, _ := AdmittedLatencyBoundsMS(window, cold, warm, 5, 1)
	if pipeWorst <= poolWorst {
		t.Fatalf("pipeline-mode bound %v not conservative vs pool %v", pipeWorst, poolWorst)
	}
}
