package workload

import (
	"testing"

	"microrec/internal/model"
)

func TestGeneratorDeterminism(t *testing.T) {
	spec := model.SmallProduction()
	a, err := NewGenerator(spec, Uniform, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(spec, Uniform, 42)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 10; n++ {
		qa, qb := a.Next(), b.Next()
		for i := range qa {
			for k := range qa[i] {
				if qa[i][k] != qb[i][k] {
					t.Fatalf("same-seed generators diverged at query %d table %d", n, i)
				}
			}
		}
	}
}

func TestGeneratorBounds(t *testing.T) {
	spec := model.SmallProduction()
	for _, dist := range []Distribution{Uniform, Zipf} {
		g, err := NewGenerator(spec, dist, 7)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 50; n++ {
			q := g.Next()
			if len(q) != len(spec.Tables) {
				t.Fatalf("%v: query covers %d tables", dist, len(q))
			}
			for i, idxs := range q {
				if len(idxs) != spec.Tables[i].Lookups {
					t.Fatalf("%v: table %d has %d lookups", dist, i, len(idxs))
				}
				for _, idx := range idxs {
					if idx < 0 || idx >= spec.Tables[i].Rows {
						t.Fatalf("%v: index %d out of range for table %d (%d rows)",
							dist, idx, i, spec.Tables[i].Rows)
					}
				}
			}
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	spec := model.SmallProduction()
	g, err := NewGenerator(spec, Zipf, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The user_id table (last) has 8M rows; under Zipf most draws must be
	// small indices, under uniform essentially none would be < 1000.
	last := len(spec.Tables) - 1
	small := 0
	const draws = 500
	for n := 0; n < draws; n++ {
		q := g.Next()
		if q[last][0] < 1000 {
			small++
		}
	}
	if small < draws/2 {
		t.Errorf("zipf: only %d/%d draws below 1000 — not skewed", small, draws)
	}
}

func TestBatch(t *testing.T) {
	spec := model.SmallProduction()
	g, err := NewGenerator(spec, Uniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.Batch(16)
	if err != nil || len(qs) != 16 {
		t.Fatalf("Batch = %d queries, err %v", len(qs), err)
	}
	if _, err := g.Batch(0); err == nil {
		t.Error("Batch(0): want error")
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(&model.Spec{Name: "bad"}, Uniform, 1); err == nil {
		t.Error("invalid spec: want error")
	}
	if _, err := NewGenerator(model.SmallProduction(), Distribution(99), 1); err == nil {
		t.Error("unknown distribution: want error")
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Error("distribution strings wrong")
	}
	if Distribution(5).String() != "Distribution(5)" {
		t.Error("unknown distribution string wrong")
	}
}

func TestMultiLookupModel(t *testing.T) {
	spec, err := model.DLRMRMC2(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(spec, Uniform, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := g.Next()
	for i := range q {
		if len(q[i]) != 4 {
			t.Errorf("DLRM table %d: %d lookups, want 4", i, len(q[i]))
		}
	}
}

func BenchmarkNextSmall(b *testing.B) {
	g, err := NewGenerator(model.SmallProduction(), Uniform, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
