// Package workload generates deterministic synthetic query streams for the
// recommendation models: per-table sparse indices drawn from uniform or
// Zipfian distributions (production embedding accesses are heavily skewed —
// Ke et al. 2020's caching argument — while uniform is the adversarial case
// for any cache).
package workload

import (
	"fmt"
	"math/rand"

	"microrec/internal/embedding"
	"microrec/internal/model"
)

// Distribution selects how sparse indices are drawn.
type Distribution int

const (
	// Uniform draws indices uniformly over each table's logical rows.
	Uniform Distribution = iota
	// Zipf draws indices with a Zipfian popularity skew (s=1.2), hitting
	// a small set of hot rows most of the time.
	Zipf
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Generator produces query streams for one model.
type Generator struct {
	spec  *model.Spec
	rng   *rand.Rand
	dist  Distribution
	zipfs []*rand.Zipf
}

// NewGenerator builds a deterministic generator.
func NewGenerator(spec *model.Spec, dist Distribution, seed int64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch dist {
	case Uniform, Zipf:
	default:
		return nil, fmt.Errorf("workload: unknown distribution %d", int(dist))
	}
	g := &Generator{spec: spec, rng: rand.New(rand.NewSource(seed)), dist: dist}
	if dist == Zipf {
		g.zipfs = make([]*rand.Zipf, len(spec.Tables))
		for i, t := range spec.Tables {
			// rand.Zipf draws in [0, imax]; s=1.2, v=1 gives the classic
			// hot-head skew.
			g.zipfs[i] = rand.NewZipf(g.rng, 1.2, 1, uint64(t.Rows-1))
		}
	}
	return g, nil
}

// Spec returns the generator's model.
func (g *Generator) Spec() *model.Spec { return g.spec }

// Next produces one query.
func (g *Generator) Next() embedding.Query {
	q := make(embedding.Query, len(g.spec.Tables))
	for i, t := range g.spec.Tables {
		idxs := make([]int64, t.Lookups)
		for k := range idxs {
			switch g.dist {
			case Zipf:
				idxs[k] = int64(g.zipfs[i].Uint64())
			default:
				idxs[k] = g.rng.Int63n(t.Rows)
			}
		}
		q[i] = idxs
	}
	return q
}

// Batch produces n queries.
func (g *Generator) Batch(n int) ([]embedding.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: batch size %d", n)
	}
	qs := make([]embedding.Query, n)
	for i := range qs {
		qs[i] = g.Next()
	}
	return qs, nil
}
