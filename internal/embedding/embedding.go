// Package embedding implements the functional embedding-table storage used by
// both the CPU baseline and the accelerator model: flat row-major float32
// arrays with gather and concatenation, the operations behind the paper's
// "embedding layer" (§2.2).
package embedding

import (
	"fmt"

	"microrec/internal/model"
)

// Table is one materialised embedding table. Logical rows (the paper-scale
// row count) may exceed the materialised rows; lookups wrap, which preserves
// access-pattern randomness while capping memory (see DESIGN.md).
type Table struct {
	// Name is a human-readable label.
	Name string
	// Dim is the vector length.
	Dim int
	// LogicalRows is the advertised row count used for index validation.
	LogicalRows int64
	// data holds materialised rows row-major, len = rows*Dim.
	data []float32
	rows int64
}

// NewTable wraps existing row-major data. The data length must be a multiple
// of dim; logicalRows must be at least the materialised rows.
func NewTable(name string, dim int, logicalRows int64, data []float32) (*Table, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("embedding: table %q dim %d", name, dim)
	}
	if len(data) == 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("embedding: table %q data length %d not a positive multiple of dim %d", name, len(data), dim)
	}
	rows := int64(len(data) / dim)
	if logicalRows < rows {
		return nil, fmt.Errorf("embedding: table %q logical rows %d < materialised rows %d", name, logicalRows, rows)
	}
	return &Table{Name: name, Dim: dim, LogicalRows: logicalRows, data: data, rows: rows}, nil
}

// Rows returns the materialised row count.
func (t *Table) Rows() int64 { return t.rows }

// Lookup returns the vector for a logical row index. The returned slice
// aliases the table storage; callers must not modify it.
func (t *Table) Lookup(index int64) ([]float32, error) {
	if index < 0 || index >= t.LogicalRows {
		return nil, fmt.Errorf("embedding: index %d out of range for table %q (%d logical rows)", index, t.Name, t.LogicalRows)
	}
	r := index % t.rows
	return t.data[r*int64(t.Dim) : (r+1)*int64(t.Dim)], nil
}

// Bytes returns the materialised storage footprint.
func (t *Table) Bytes() int64 { return int64(len(t.data)) * model.FloatBytes }

// Data returns the table's materialised row-major storage (Rows()*Dim
// float32s). The slice aliases internal storage and must be treated as
// read-only. It exists for the engine's compiled gather plan, which resolves
// materialised rows directly without per-lookup validation; all other callers
// should use Lookup.
func (t *Table) Data() []float32 { return t.data }

// Store holds a model's embedding tables indexed by table ID and implements
// the gather-and-concatenate step of the embedding layer.
type Store struct {
	tables []*Table
	// featureLen caches the concatenated output length for one lookup of
	// every table.
	featureLen int
}

// NewStore builds a Store from materialised model parameters.
func NewStore(p *model.Parameters) (*Store, error) {
	s := &Store{tables: make([]*Table, len(p.Embeddings))}
	for i, data := range p.Embeddings {
		spec := p.Spec.Tables[i]
		t, err := NewTable(spec.Name, spec.Dim, spec.Rows, data)
		if err != nil {
			return nil, err
		}
		s.tables[i] = t
		s.featureLen += spec.Dim * spec.Lookups
	}
	return s, nil
}

// NumTables returns the number of tables.
func (s *Store) NumTables() int { return len(s.tables) }

// Table returns table i.
func (s *Store) Table(i int) (*Table, error) {
	if i < 0 || i >= len(s.tables) {
		return nil, fmt.Errorf("embedding: table %d out of range (%d tables)", i, len(s.tables))
	}
	return s.tables[i], nil
}

// FeatureLen returns the concatenated feature length produced by Gather.
func (s *Store) FeatureLen() int { return s.featureLen }

// Query is one inference's sparse input: for each table, the logical row
// indices to retrieve (len == the table's Lookups).
type Query [][]int64

// Gather resolves a query into the concatenated dense feature vector,
// appending into dst (allocated with the right capacity if nil). The layout
// is table-major, lookup-minor: t0.l0, t0.l1, ..., t1.l0, ... — matching the
// concatenation order the FC tower was trained with.
func (s *Store) Gather(q Query, dst []float32) ([]float32, error) {
	if len(q) != len(s.tables) {
		return nil, fmt.Errorf("embedding: query covers %d tables, store has %d", len(q), len(s.tables))
	}
	if dst == nil {
		dst = make([]float32, 0, s.featureLen)
	} else {
		dst = dst[:0]
	}
	for i, idxs := range q {
		t := s.tables[i]
		for _, idx := range idxs {
			v, err := t.Lookup(idx)
			if err != nil {
				return nil, err
			}
			dst = append(dst, v...)
		}
	}
	return dst, nil
}

// TotalBytes returns the materialised footprint of all tables.
func (s *Store) TotalBytes() int64 {
	var n int64
	for _, t := range s.tables {
		n += t.Bytes()
	}
	return n
}
