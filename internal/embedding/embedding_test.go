package embedding

import (
	"testing"
	"testing/quick"

	"microrec/internal/model"
)

func testParams(t *testing.T) *model.Parameters {
	t.Helper()
	spec := &model.Spec{
		Name: "tiny",
		Tables: []model.TableSpec{
			{ID: 0, Name: "a", Rows: 4, Dim: 2, Lookups: 1},
			{ID: 1, Name: "b", Rows: 1000, Dim: 3, Lookups: 2},
		},
		Hidden: []int{4},
	}
	p, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 8})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("x", 0, 4, []float32{1, 2}); err == nil {
		t.Error("dim 0: want error")
	}
	if _, err := NewTable("x", 3, 4, []float32{1, 2}); err == nil {
		t.Error("ragged data: want error")
	}
	if _, err := NewTable("x", 2, 0, []float32{1, 2}); err == nil {
		t.Error("logical < materialised: want error")
	}
	if _, err := NewTable("x", 2, 4, nil); err == nil {
		t.Error("empty data: want error")
	}
	tab, err := NewTable("x", 2, 8, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 || tab.Bytes() != 16 {
		t.Errorf("table rows=%d bytes=%d, want 2, 16", tab.Rows(), tab.Bytes())
	}
}

func TestLookupWrapsAndValidates(t *testing.T) {
	tab, err := NewTable("x", 2, 100, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	v0, err := tab.Lookup(0)
	if err != nil || v0[0] != 1 {
		t.Errorf("Lookup(0) = %v, %v", v0, err)
	}
	// Logical index 99 wraps to materialised row 99 % 2 == 1.
	v99, err := tab.Lookup(99)
	if err != nil || v99[0] != 3 {
		t.Errorf("Lookup(99) = %v, %v; want row 1", v99, err)
	}
	if _, err := tab.Lookup(100); err == nil {
		t.Error("Lookup beyond logical rows: want error")
	}
	if _, err := tab.Lookup(-1); err == nil {
		t.Error("Lookup(-1): want error")
	}
}

func TestStoreGather(t *testing.T) {
	p := testParams(t)
	s, err := NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTables() != 2 {
		t.Fatalf("NumTables = %d", s.NumTables())
	}
	if s.FeatureLen() != 2+2*3 {
		t.Errorf("FeatureLen = %d, want 8", s.FeatureLen())
	}
	out, err := s.Gather(Query{{1}, {0, 7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("gather length = %d, want 8", len(out))
	}
	// The concatenation must equal the individual lookups in order.
	t0, _ := s.Table(0)
	t1, _ := s.Table(1)
	v, _ := t0.Lookup(1)
	if out[0] != v[0] || out[1] != v[1] {
		t.Error("gather table-0 segment mismatch")
	}
	w0, _ := t1.Lookup(0)
	w7, _ := t1.Lookup(7)
	for i := 0; i < 3; i++ {
		if out[2+i] != w0[i] || out[5+i] != w7[i] {
			t.Error("gather table-1 segment mismatch")
		}
	}
}

func TestGatherReusesDst(t *testing.T) {
	p := testParams(t)
	s, err := NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 0, s.FeatureLen())
	out, err := s.Gather(Query{{0}, {1, 2}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	if cap(out) != cap(dst) {
		t.Error("Gather reallocated despite sufficient capacity")
	}
}

func TestGatherErrors(t *testing.T) {
	p := testParams(t)
	s, err := NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Gather(Query{{0}}, nil); err == nil {
		t.Error("short query: want error")
	}
	if _, err := s.Gather(Query{{0}, {99999}}, nil); err == nil {
		t.Error("out-of-range index: want error")
	}
	if _, err := s.Table(5); err == nil {
		t.Error("Table(5): want error")
	}
	if _, err := s.Table(-1); err == nil {
		t.Error("Table(-1): want error")
	}
}

func TestStoreTotalBytes(t *testing.T) {
	p := testParams(t)
	s, err := NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	// Table a: 4 rows x 2 dims; table b capped at 8 rows x 3 dims.
	want := int64((4*2 + 8*3) * 4)
	if got := s.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

// Property: gathering the same query twice yields identical vectors
// (lookup is pure).
func TestGatherDeterministicProperty(t *testing.T) {
	p := testParams(t)
	s, err := NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(i0 uint16, i1, i2 uint32) bool {
		q := Query{
			{int64(i0) % 4},
			{int64(i1) % 1000, int64(i2) % 1000},
		}
		a, err1 := s.Gather(q, nil)
		b, err2 := s.Gather(q, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGatherSmallModel(b *testing.B) {
	spec := model.SmallProduction()
	p, err := spec.Materialize(model.MaterializeOptions{Seed: 1, MaxRowsPerTable: 1024})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewStore(p)
	if err != nil {
		b.Fatal(err)
	}
	q := make(Query, len(spec.Tables))
	for i := range q {
		q[i] = []int64{int64(i*37) % spec.Tables[i].Rows}
	}
	dst := make([]float32, 0, s.FeatureLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Gather(q, dst); err != nil {
			b.Fatal(err)
		}
	}
}
