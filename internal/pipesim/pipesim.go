// Package pipesim simulates the deeply pipelined dataflow architecture of
// §4.1: a linear chain of stages (embedding lookup, per-layer broadcast /
// GEMM / gather) connected by bounded FIFOs, processing items one by one
// rather than batch by batch.
//
// Each stage s is characterised by a latency L_s (time one item spends in the
// stage) and an initiation interval II_s (minimum gap between consecutive
// item starts). The simulator evaluates the exact start-time recurrence of
// such a marked graph:
//
//	start[i][s] = max( start[i][s-1] + L_{s-1},   // data arrival
//	                   start[i-1][s] + II_s,      // stage occupancy
//	                   start[i-C_s][s+1] )        // FIFO backpressure
//
// yielding per-item latency, steady-state interval, and batch makespan — the
// quantities behind the paper's "throughput is not the reciprocal of latency"
// observation (§5.3).
package pipesim

import (
	"fmt"
)

// Stage describes one pipeline stage.
type Stage struct {
	// Name labels the stage in reports ("lookup", "fc1-gemm", ...).
	Name string
	// LatencyNS is the stage traversal time of one item.
	LatencyNS float64
	// IntervalNS is the initiation interval between consecutive items.
	// Must be <= LatencyNS for internally pipelined stages; a
	// non-pipelined stage has IntervalNS == LatencyNS.
	IntervalNS float64
	// FIFODepth is the capacity of the FIFO feeding the NEXT stage
	// (ignored for the last stage). Zero means DefaultFIFODepth.
	FIFODepth int
}

// DefaultFIFODepth is used when a stage leaves FIFODepth zero. The paper's
// implementation uses BRAM FIFOs deep enough that backpressure only occurs
// when a downstream stage is genuinely slower (§4.1, appendix).
const DefaultFIFODepth = 4

// Validate checks the stage parameters.
func (s Stage) Validate() error {
	if s.LatencyNS < 0 || s.IntervalNS < 0 {
		return fmt.Errorf("pipesim: stage %q has negative timing", s.Name)
	}
	if s.IntervalNS > s.LatencyNS && s.LatencyNS > 0 {
		return fmt.Errorf("pipesim: stage %q interval %.1f exceeds latency %.1f", s.Name, s.IntervalNS, s.LatencyNS)
	}
	if s.FIFODepth < 0 {
		return fmt.Errorf("pipesim: stage %q has negative FIFO depth", s.Name)
	}
	return nil
}

// Pipeline is a linear chain of stages.
type Pipeline struct {
	stages []Stage
}

// New builds a pipeline, validating every stage.
func New(stages ...Stage) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipesim: empty pipeline")
	}
	for i := range stages {
		if err := stages[i].Validate(); err != nil {
			return nil, err
		}
		if stages[i].FIFODepth == 0 {
			stages[i].FIFODepth = DefaultFIFODepth
		}
	}
	return &Pipeline{stages: append([]Stage(nil), stages...)}, nil
}

// Stages returns a copy of the pipeline's stages.
func (p *Pipeline) Stages() []Stage { return append([]Stage(nil), p.stages...) }

// FillLatencyNS returns the single-item end-to-end latency: the sum of stage
// latencies. This is the "16.3–31.0 microseconds" headline quantity of §5.3.
func (p *Pipeline) FillLatencyNS() float64 {
	var sum float64
	for _, s := range p.stages {
		sum += s.LatencyNS
	}
	return sum
}

// BottleneckIntervalNS returns the steady-state initiation interval: the
// largest stage II. Steady-state throughput is 1/BottleneckIntervalNS.
func (p *Pipeline) BottleneckIntervalNS() float64 {
	var m float64
	for _, s := range p.stages {
		if s.IntervalNS > m {
			m = s.IntervalNS
		}
	}
	return m
}

// Bottleneck returns the index and name of the slowest stage.
func (p *Pipeline) Bottleneck() (int, string) {
	idx := 0
	for i, s := range p.stages {
		if s.IntervalNS > p.stages[idx].IntervalNS {
			idx = i
		}
	}
	return idx, p.stages[idx].Name
}

// Result summarises a simulation run.
type Result struct {
	// Items processed.
	Items int
	// MakespanNS is the completion time of the last item.
	MakespanNS float64
	// FirstItemNS is the completion time of the first item (pipeline fill).
	FirstItemNS float64
	// MeanLatencyNS and MaxLatencyNS are per-item injection-to-completion
	// statistics.
	MeanLatencyNS float64
	MaxLatencyNS  float64
	// SteadyIntervalNS is the observed asymptotic inter-completion gap.
	SteadyIntervalNS float64
	// ThroughputPerSec is Items / MakespanNS.
	ThroughputPerSec float64
}

// Simulate runs `items` items through the pipeline, injected back-to-back
// (the host streams features continuously, §3.1). It evaluates the start-time
// recurrence exactly.
func (p *Pipeline) Simulate(items int) (Result, error) {
	return p.run(items, nil)
}

// run evaluates the start-time recurrence, optionally reporting every stage
// occupancy to record (used by Trace).
func (p *Pipeline) run(items int, record func(StageEvent)) (Result, error) {
	if items <= 0 {
		return Result{}, fmt.Errorf("pipesim: items %d", items)
	}
	ns := len(p.stages)
	// start[i][s]: ring buffer over items — we need up to maxDepth history.
	maxHist := 2
	for _, s := range p.stages {
		if s.FIFODepth+1 > maxHist {
			maxHist = s.FIFODepth + 1
		}
	}
	// hist[k][s] = start time of item (i-k) at stage s.
	hist := make([][]float64, maxHist)
	for k := range hist {
		hist[k] = make([]float64, ns)
		for s := range hist[k] {
			hist[k][s] = -1 // sentinel: no such item yet
		}
	}
	var (
		totalLatency float64
		maxLatency   float64
		firstDone    float64
		prevDone     float64
		lastGap      float64
		makespan     float64
	)
	cur := make([]float64, ns)
	for i := 0; i < items; i++ {
		for s := 0; s < ns; s++ {
			t := 0.0
			// Data arrival from upstream.
			if s > 0 {
				t = cur[s-1] + p.stages[s-1].LatencyNS
			}
			// Stage occupancy: previous item's start + II.
			if prev := hist[0][s]; prev >= 0 {
				if v := prev + p.stages[s].IntervalNS; v > t {
					t = v
				}
			}
			// FIFO backpressure: item i can only start at stage s if item
			// i-depth has started at stage s+1, freeing a slot.
			if s+1 < ns {
				depth := p.stages[s].FIFODepth
				if depth-1 < maxHist && depth >= 1 {
					if old := hist[depth-1][s+1]; old >= 0 && i >= depth {
						if old > t {
							t = old
						}
					}
				}
			}
			cur[s] = t
			if record != nil {
				record(StageEvent{
					Item:    i,
					Stage:   s,
					Name:    p.stages[s].Name,
					StartNS: t,
					EndNS:   t + p.stages[s].LatencyNS,
				})
			}
		}
		done := cur[ns-1] + p.stages[ns-1].LatencyNS
		makespan = done
		if i == 0 {
			firstDone = done
		} else {
			lastGap = done - prevDone
		}
		prevDone = done
		// Injection time of item i is its start at stage 0.
		lat := done - cur[0]
		totalLatency += lat
		if lat > maxLatency {
			maxLatency = lat
		}
		// Rotate history: the oldest row becomes the new front.
		last := hist[maxHist-1]
		for k := maxHist - 1; k > 0; k-- {
			hist[k] = hist[k-1]
		}
		hist[0] = last
		copy(hist[0], cur)
	}
	res := Result{
		Items:            items,
		MakespanNS:       makespan,
		FirstItemNS:      firstDone,
		MeanLatencyNS:    totalLatency / float64(items),
		MaxLatencyNS:     maxLatency,
		SteadyIntervalNS: lastGap,
		ThroughputPerSec: float64(items) / (makespan * 1e-9),
	}
	return res, nil
}
