package pipesim

import (
	"fmt"
	"io"

	"microrec/internal/obs"
)

// StageEvent records one item's occupancy of one stage during a simulation.
type StageEvent struct {
	Item    int
	Stage   int
	Name    string
	StartNS float64
	EndNS   float64
}

// Trace simulates `items` items and records every stage occupancy, for
// debugging pipeline balance and for visual inspection via ChromeTrace.
// The timing semantics are identical to Simulate (both evaluate the same
// recurrence).
func (p *Pipeline) Trace(items int) ([]StageEvent, Result, error) {
	events := make([]StageEvent, 0, items*len(p.stages))
	res, err := p.run(items, func(e StageEvent) { events = append(events, e) })
	if err != nil {
		return nil, Result{}, err
	}
	return events, res, nil
}

// ChromeTrace writes the events as a chrome://tracing / Perfetto-compatible
// JSON array. Each stage becomes a track (tid) and each item an event on it.
// Serialization goes through obs.TraceEvent — the same writer the live tracer
// (GET /trace) uses — so simulated and live traces share one wire format.
func ChromeTrace(w io.Writer, events []StageEvent) error {
	out := make([]obs.TraceEvent, len(events))
	for i, e := range events {
		out[i] = obs.TraceEvent{
			Name: fmt.Sprintf("item %d", e.Item),
			Cat:  e.Name,
			Ph:   "X",
			TS:   e.StartNS / 1e3,
			Dur:  (e.EndNS - e.StartNS) / 1e3,
			PID:  0,
			TID:  e.Stage,
			Args: map[string]any{"stage": e.Name},
		}
	}
	return obs.WriteTraceEvents(w, out)
}
