package pipesim

import (
	"encoding/json"
	"fmt"
	"io"
)

// StageEvent records one item's occupancy of one stage during a simulation.
type StageEvent struct {
	Item    int
	Stage   int
	Name    string
	StartNS float64
	EndNS   float64
}

// Trace simulates `items` items and records every stage occupancy, for
// debugging pipeline balance and for visual inspection via ChromeTrace.
// The timing semantics are identical to Simulate (both evaluate the same
// recurrence).
func (p *Pipeline) Trace(items int) ([]StageEvent, Result, error) {
	events := make([]StageEvent, 0, items*len(p.stages))
	res, err := p.run(items, func(e StageEvent) { events = append(events, e) })
	if err != nil {
		return nil, Result{}, err
	}
	return events, res, nil
}

// chromeEvent is the Chrome trace-event format (complete events, "X" phase).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// ChromeTrace writes the events as a chrome://tracing / Perfetto-compatible
// JSON array. Each stage becomes a track (tid) and each item an event on it.
func ChromeTrace(w io.Writer, events []StageEvent) error {
	out := make([]chromeEvent, len(events))
	for i, e := range events {
		out[i] = chromeEvent{
			Name: fmt.Sprintf("item %d", e.Item),
			Cat:  e.Name,
			Ph:   "X",
			TS:   e.StartNS / 1e3,
			Dur:  (e.EndNS - e.StartNS) / 1e3,
			PID:  0,
			TID:  e.Stage,
			Args: map[string]any{"stage": e.Name},
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("pipesim: encoding trace: %w", err)
	}
	return nil
}
