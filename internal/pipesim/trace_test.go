package pipesim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestTraceMatchesSimulate(t *testing.T) {
	p := mustPipeline(t,
		Stage{Name: "a", LatencyNS: 5, IntervalNS: 2, FIFODepth: 3},
		Stage{Name: "b", LatencyNS: 9, IntervalNS: 9},
		Stage{Name: "c", LatencyNS: 4, IntervalNS: 4},
	)
	for _, items := range []int{1, 7, 40} {
		events, traced, err := p.Trace(items)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := p.Simulate(items)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(traced.MakespanNS-plain.MakespanNS) > 1e-9 ||
			math.Abs(traced.MeanLatencyNS-plain.MeanLatencyNS) > 1e-9 {
			t.Errorf("items=%d: Trace result %+v differs from Simulate %+v", items, traced, plain)
		}
		if len(events) != items*3 {
			t.Errorf("items=%d: %d events, want %d", items, len(events), items*3)
		}
	}
}

func TestTraceEventInvariants(t *testing.T) {
	p := mustPipeline(t,
		Stage{Name: "x", LatencyNS: 10, IntervalNS: 5, FIFODepth: 2},
		Stage{Name: "y", LatencyNS: 20, IntervalNS: 20},
	)
	events, _, err := p.Trace(20)
	if err != nil {
		t.Fatal(err)
	}
	// Per item: stage s+1 must start no earlier than stage s ends.
	starts := map[[2]int]float64{}
	ends := map[[2]int]float64{}
	for _, e := range events {
		if e.EndNS < e.StartNS {
			t.Fatalf("event %+v ends before it starts", e)
		}
		starts[[2]int{e.Item, e.Stage}] = e.StartNS
		ends[[2]int{e.Item, e.Stage}] = e.EndNS
	}
	for item := 0; item < 20; item++ {
		if starts[[2]int{item, 1}] < ends[[2]int{item, 0}]-1e-9 {
			t.Errorf("item %d entered stage 1 before leaving stage 0", item)
		}
	}
	// Per stage: consecutive items respect the initiation interval.
	for item := 1; item < 20; item++ {
		for s := 0; s < 2; s++ {
			gap := starts[[2]int{item, s}] - starts[[2]int{item - 1, s}]
			ii := p.stages[s].IntervalNS
			if gap < ii-1e-9 {
				t.Errorf("stage %d items %d/%d: gap %.1f < II %.1f", s, item-1, item, gap, ii)
			}
		}
	}
}

func TestTraceErrors(t *testing.T) {
	p := mustPipeline(t, Stage{Name: "a", LatencyNS: 1, IntervalNS: 1})
	if _, _, err := p.Trace(0); err == nil {
		t.Error("Trace(0): want error")
	}
}

func TestChromeTraceJSON(t *testing.T) {
	p := mustPipeline(t,
		Stage{Name: "lookup", LatencyNS: 458, IntervalNS: 458},
		Stage{Name: "gemm", LatencyNS: 3400, IntervalNS: 3400},
	)
	events, _, err := p.Trace(5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(decoded) != 10 {
		t.Errorf("trace has %d events, want 10", len(decoded))
	}
	if decoded[0]["ph"] != "X" {
		t.Errorf("phase = %v, want X", decoded[0]["ph"])
	}
}
