package pipesim

import (
	"math"
	"testing"
	"testing/quick"
)

func mustPipeline(t *testing.T, stages ...Stage) *Pipeline {
	t.Helper()
	p, err := New(stages...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidates(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty pipeline: want error")
	}
	if _, err := New(Stage{Name: "bad", LatencyNS: -1}); err == nil {
		t.Error("negative latency: want error")
	}
	if _, err := New(Stage{Name: "bad", LatencyNS: 5, IntervalNS: 10}); err == nil {
		t.Error("interval > latency: want error")
	}
	if _, err := New(Stage{Name: "bad", LatencyNS: 5, IntervalNS: 5, FIFODepth: -2}); err == nil {
		t.Error("negative FIFO: want error")
	}
}

func TestDefaultFIFOApplied(t *testing.T) {
	p := mustPipeline(t, Stage{Name: "a", LatencyNS: 1, IntervalNS: 1})
	if got := p.Stages()[0].FIFODepth; got != DefaultFIFODepth {
		t.Errorf("FIFODepth = %d, want default %d", got, DefaultFIFODepth)
	}
}

func TestSingleStage(t *testing.T) {
	p := mustPipeline(t, Stage{Name: "s", LatencyNS: 10, IntervalNS: 10})
	res, err := p.Simulate(5)
	if err != nil {
		t.Fatal(err)
	}
	// Non-pipelined single stage: items serialize at II=10.
	if res.MakespanNS != 50 {
		t.Errorf("makespan = %v, want 50", res.MakespanNS)
	}
	if res.FirstItemNS != 10 {
		t.Errorf("first item = %v, want 10", res.FirstItemNS)
	}
	if res.SteadyIntervalNS != 10 {
		t.Errorf("steady interval = %v, want 10", res.SteadyIntervalNS)
	}
}

func TestBalancedPipelineMakespan(t *testing.T) {
	// Three stages, II == latency == 10 each: makespan = fill (30) +
	// (N-1)*10.
	p := mustPipeline(t,
		Stage{Name: "a", LatencyNS: 10, IntervalNS: 10},
		Stage{Name: "b", LatencyNS: 10, IntervalNS: 10},
		Stage{Name: "c", LatencyNS: 10, IntervalNS: 10},
	)
	res, err := p.Simulate(100)
	if err != nil {
		t.Fatal(err)
	}
	want := 30.0 + 99*10
	if math.Abs(res.MakespanNS-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.MakespanNS, want)
	}
	if math.Abs(res.FirstItemNS-30) > 1e-9 {
		t.Errorf("fill = %v, want 30", res.FirstItemNS)
	}
}

func TestBottleneckDominatesThroughput(t *testing.T) {
	// Middle stage is 5x slower; steady interval must equal its II.
	p := mustPipeline(t,
		Stage{Name: "fast1", LatencyNS: 10, IntervalNS: 10},
		Stage{Name: "slow", LatencyNS: 50, IntervalNS: 50},
		Stage{Name: "fast2", LatencyNS: 10, IntervalNS: 10},
	)
	res, err := p.Simulate(200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SteadyIntervalNS-50) > 1e-9 {
		t.Errorf("steady interval = %v, want 50", res.SteadyIntervalNS)
	}
	idx, name := p.Bottleneck()
	if idx != 1 || name != "slow" {
		t.Errorf("Bottleneck = %d %q", idx, name)
	}
	if p.BottleneckIntervalNS() != 50 {
		t.Errorf("BottleneckIntervalNS = %v", p.BottleneckIntervalNS())
	}
}

func TestInternallyPipelinedStage(t *testing.T) {
	// A stage with latency 100 but II 10 sustains one item per 10 ns.
	p := mustPipeline(t,
		Stage{Name: "deep", LatencyNS: 100, IntervalNS: 10, FIFODepth: 64},
	)
	res, err := p.Simulate(100)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 + 99*10
	if math.Abs(res.MakespanNS-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.MakespanNS, want)
	}
}

func TestFIFOBackpressure(t *testing.T) {
	// Fast producer into slow consumer through a depth-1 FIFO: the
	// producer must throttle to the consumer's interval.
	shallow := mustPipeline(t,
		Stage{Name: "prod", LatencyNS: 1, IntervalNS: 1, FIFODepth: 1},
		Stage{Name: "cons", LatencyNS: 20, IntervalNS: 20},
	)
	res, err := shallow.Simulate(50)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state is consumer-bound regardless of FIFO depth.
	if math.Abs(res.SteadyIntervalNS-20) > 1e-9 {
		t.Errorf("steady interval = %v, want 20", res.SteadyIntervalNS)
	}
	// With a shallow FIFO, per-item latency stays bounded: the producer
	// holds items back instead of queueing them.
	deep := mustPipeline(t,
		Stage{Name: "prod", LatencyNS: 1, IntervalNS: 1, FIFODepth: 40},
		Stage{Name: "cons", LatencyNS: 20, IntervalNS: 20},
	)
	resDeep, err := deep.Simulate(50)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLatencyNS >= resDeep.MaxLatencyNS {
		t.Errorf("shallow FIFO latency %v >= deep FIFO latency %v; backpressure not modeled",
			res.MaxLatencyNS, resDeep.MaxLatencyNS)
	}
	// Makespan is the same either way (consumer-bound).
	if math.Abs(res.MakespanNS-resDeep.MakespanNS) > 1e-9 {
		t.Errorf("makespan shallow %v != deep %v", res.MakespanNS, resDeep.MakespanNS)
	}
}

func TestFillLatency(t *testing.T) {
	p := mustPipeline(t,
		Stage{Name: "a", LatencyNS: 3, IntervalNS: 1},
		Stage{Name: "b", LatencyNS: 7, IntervalNS: 2},
	)
	if got := p.FillLatencyNS(); got != 10 {
		t.Errorf("FillLatencyNS = %v, want 10", got)
	}
	res, err := p.Simulate(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstItemNS != 10 || res.MeanLatencyNS != 10 || res.MakespanNS != 10 {
		t.Errorf("single-item result = %+v, want all 10", res)
	}
}

func TestSimulateErrors(t *testing.T) {
	p := mustPipeline(t, Stage{Name: "a", LatencyNS: 1, IntervalNS: 1})
	if _, err := p.Simulate(0); err == nil {
		t.Error("items=0: want error")
	}
	if _, err := p.Simulate(-3); err == nil {
		t.Error("items<0: want error")
	}
}

func TestThroughputNotReciprocalOfLatency(t *testing.T) {
	// §5.3: "the throughput of MicroRec is not the reciprocal of latency,
	// since multiple items are processed by the deep pipeline at the same
	// time". Verify the simulator reproduces that.
	p := mustPipeline(t,
		Stage{Name: "lookup", LatencyNS: 458, IntervalNS: 458},
		Stage{Name: "fc1", LatencyNS: 3000, IntervalNS: 3000},
		Stage{Name: "fc2", LatencyNS: 3200, IntervalNS: 3200},
		Stage{Name: "fc3", LatencyNS: 3400, IntervalNS: 3400},
	)
	res, err := p.Simulate(1000)
	if err != nil {
		t.Fatal(err)
	}
	latencyReciprocal := 1e9 / res.MeanLatencyNS
	if res.ThroughputPerSec < 2*latencyReciprocal {
		t.Errorf("throughput %.0f/s should far exceed 1/latency %.0f/s",
			res.ThroughputPerSec, latencyReciprocal)
	}
}

// Property: makespan is monotone in item count and never below the analytic
// lower bound fill + (N-1)*maxII.
func TestMakespanBoundsProperty(t *testing.T) {
	p := mustPipeline(t,
		Stage{Name: "a", LatencyNS: 5, IntervalNS: 2, FIFODepth: 8},
		Stage{Name: "b", LatencyNS: 9, IntervalNS: 3, FIFODepth: 8},
		Stage{Name: "c", LatencyNS: 4, IntervalNS: 4},
	)
	prop := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		res, err := p.Simulate(n)
		if err != nil {
			return false
		}
		lower := p.FillLatencyNS() + float64(n-1)*p.BottleneckIntervalNS()
		if res.MakespanNS < lower-1e-6 {
			return false
		}
		if n > 1 {
			prev, err := p.Simulate(n - 1)
			if err != nil || res.MakespanNS < prev.MakespanNS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: per-item latency is always at least the fill latency.
func TestLatencyFloorProperty(t *testing.T) {
	prop := func(l1, l2 uint8, n uint8) bool {
		p, err := New(
			Stage{Name: "a", LatencyNS: float64(l1%40) + 1, IntervalNS: 1},
			Stage{Name: "b", LatencyNS: float64(l2%40) + 1, IntervalNS: 1},
		)
		if err != nil {
			return false
		}
		res, err := p.Simulate(int(n%20) + 1)
		if err != nil {
			return false
		}
		return res.MeanLatencyNS >= p.FillLatencyNS()-1e-9 &&
			res.MaxLatencyNS >= res.MeanLatencyNS-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimulate11Stage(b *testing.B) {
	stages := make([]Stage, 11)
	for i := range stages {
		stages[i] = Stage{Name: "s", LatencyNS: float64(100 + i*10), IntervalNS: float64(50 + i*5), FIFODepth: 4}
	}
	p, err := New(stages...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Simulate(1000); err != nil {
			b.Fatal(err)
		}
	}
}
