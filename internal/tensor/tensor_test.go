package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// naiveMatMul is the O(mnk) reference used to validate the blocked kernel.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, sum)
		}
	}
	return c
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(-1, 2): want panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Errorf("FromRows produced %+v", m)
	}
	if _, err := FromRows([][]float32{{1, 2}, {3}}); err == nil {
		t.Error("FromRows with ragged rows: want error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("FromRows(nil) = %+v, %v", empty, err)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {17, 31, 13}, {64, 64, 64}, {100, 352, 64}, {3, 200, 1},
	}
	for _, s := range shapes {
		a := randomMatrix(rng, s.m, s.k)
		b := randomMatrix(rng, s.k, s.n)
		got, err := MatMul(a, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveMatMul(a, b)
		if !Equal(got, want, 1e-3) {
			t.Errorf("MatMul %dx%dx%d differs from naive", s.m, s.k, s.n)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 5)
	if _, err := MatMul(a, b, nil); err == nil {
		t.Error("MatMul with inner mismatch: want error")
	}
	b = NewMatrix(3, 5)
	bad := NewMatrix(1, 1)
	if _, err := MatMul(a, b, bad); err == nil {
		t.Error("MatMul with wrong output shape: want error")
	}
}

func TestMatMulReusesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 8, 8)
	b := randomMatrix(rng, 8, 8)
	c := NewMatrix(8, 8)
	// Pre-fill with garbage to verify the kernel overwrites.
	for i := range c.Data {
		c.Data[i] = 999
	}
	got, err := MatMul(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if &got.Data[0] != &c.Data[0] {
		t.Error("MatMul did not reuse provided output")
	}
	if !Equal(got, naiveMatMul(a, b), 1e-3) {
		t.Error("MatMul into reused output is wrong")
	}
}

func TestMatVec(t *testing.T) {
	a, _ := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	y, err := MatVec(a, []float32{1, 1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MatVec = %v, want [6 15]", y)
	}
	if _, err := MatVec(a, []float32{1}, nil); err == nil {
		t.Error("MatVec length mismatch: want error")
	}
	if _, err := MatVec(a, []float32{1, 1, 1}, make([]float32, 5)); err == nil {
		t.Error("MatVec bad output length: want error")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 0) != 3 || at.At(0, 1) != 4 {
		t.Errorf("Transpose = %+v", at)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 9, 14)
	if !Equal(a.Transpose().Transpose(), a, 0) {
		t.Error("double transpose differs from original")
	}
}

func TestAddBias(t *testing.T) {
	m, _ := FromRows([][]float32{{1, 2}, {3, 4}})
	if err := AddBias(m, []float32{10, 20}); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Errorf("AddBias = %+v", m.Data)
	}
	if err := AddBias(m, []float32{1}); err == nil {
		t.Error("AddBias length mismatch: want error")
	}
}

func TestReLUAndSigmoid(t *testing.T) {
	xs := []float32{-1, 0, 2}
	ReLU(xs)
	if xs[0] != 0 || xs[2] != 2 {
		t.Errorf("ReLU = %v", xs)
	}
	ys := []float32{0}
	Sigmoid(ys)
	if math.Abs(float64(ys[0]-0.5)) > 1e-6 {
		t.Errorf("Sigmoid(0) = %v, want 0.5", ys[0])
	}
}

func TestDotAndMaxAbsDiff(t *testing.T) {
	d, err := Dot([]float32{1, 2}, []float32{3, 4})
	if err != nil || d != 11 {
		t.Errorf("Dot = %v, %v; want 11", d, err)
	}
	if _, err := Dot([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("Dot length mismatch: want error")
	}
	m, err := MaxAbsDiff([]float32{1, 5}, []float32{2, 3})
	if err != nil || m != 2 {
		t.Errorf("MaxAbsDiff = %v, %v; want 2", m, err)
	}
	if _, err := MaxAbsDiff([]float32{1}, []float32{}); err == nil {
		t.Error("MaxAbsDiff length mismatch: want error")
	}
}

// Property: (A*B)^T == B^T * A^T within float tolerance.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		ab, err := MatMul(a, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		btat, err := MatMul(b.Transpose(), a.Transpose(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(ab.Transpose(), btat, 1e-3) {
			t.Fatalf("(AB)^T != B^T A^T for %dx%dx%d", m, k, n)
		}
	}
}

// Property: multiplying by the identity preserves the matrix.
func TestMatMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randomMatrix(rng, n, n)
		id := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		out, err := MatMul(a, id, nil)
		if err != nil {
			return false
		}
		return Equal(out, a, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatMul352x1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 64, 352)
	w := randomMatrix(rng, 352, 1024)
	c := NewMatrix(64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(a, w, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatVec1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 1024, 512)
	x := make([]float32, 512)
	y := make([]float32, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MatVec(a, x, y); err != nil {
			b.Fatal(err)
		}
	}
}
