// Package tensor provides the dense float32 linear algebra used by the
// reference model implementation and the CPU baseline engine: row-major
// matrices, a cache-blocked multi-goroutine GEMM, and the activations a CTR
// model needs.
//
// It deliberately covers only what recommendation inference requires; it is
// not a general array library.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float32) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("tensor: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Equal reports whether two matrices have identical shape and elements within
// tolerance eps.
func Equal(a, b *Matrix, eps float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// MatMul computes C = A * B. A is (m x k), B is (k x n), C is (m x n).
// C is allocated if nil; otherwise it must have the right shape. The
// computation is split across goroutines by row blocks, which is how the CPU
// baseline engine exploits the machine's cores.
func MatMul(a, b, c *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: MatMul shape mismatch (%dx%d)*(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if c == nil {
		c = NewMatrix(a.Rows, b.Cols)
	} else if c.Rows != a.Rows || c.Cols != b.Cols {
		return nil, fmt.Errorf("tensor: MatMul output shape %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols)
	}
	parallelRows(a.Rows, func(lo, hi int) {
		matMulRange(a, b, c, lo, hi)
	})
	return c, nil
}

// matMulRange computes rows [lo, hi) of C = A*B with k-blocked accumulation
// that keeps B panels hot in cache.
func matMulRange(a, b, c *Matrix, lo, hi int) {
	const kBlock = 64
	n := b.Cols
	for i := lo; i < hi; i++ {
		ci := c.Row(i)
		for x := range ci {
			ci[x] = 0
		}
		ai := a.Row(i)
		for k0 := 0; k0 < a.Cols; k0 += kBlock {
			k1 := k0 + kBlock
			if k1 > a.Cols {
				k1 = a.Cols
			}
			for k := k0; k < k1; k++ {
				aik := ai[k]
				if aik == 0 {
					continue
				}
				bk := b.Data[k*n : (k+1)*n]
				for j, bv := range bk {
					ci[j] += aik * bv
				}
			}
		}
	}
}

// MatVec computes y = A * x for a (m x k) matrix and length-k vector.
func MatVec(a *Matrix, x []float32, y []float32) ([]float32, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("tensor: MatVec shape mismatch (%dx%d)*%d", a.Rows, a.Cols, len(x))
	}
	if y == nil {
		y = make([]float32, a.Rows)
	} else if len(y) != a.Rows {
		return nil, fmt.Errorf("tensor: MatVec output length %d, want %d", len(y), a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y, nil
}

// AddBias adds bias (length Cols) to every row of m in place.
func AddBias(m *Matrix, bias []float32) error {
	if len(bias) != m.Cols {
		return fmt.Errorf("tensor: bias length %d, want %d", len(bias), m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	return nil
}

// ReLU applies max(0, x) elementwise in place.
func ReLU(xs []float32) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		}
	}
}

// Sigmoid applies the logistic function elementwise in place.
func Sigmoid(xs []float32) {
	for i, v := range xs {
		xs[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float32) (float32, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("tensor: Dot length mismatch %d vs %d", len(a), len(b))
	}
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum, nil
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// equal-length vectors, useful for accuracy assertions.
func MaxAbsDiff(a, b []float32) (float32, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("tensor: MaxAbsDiff length mismatch %d vs %d", len(a), len(b))
	}
	var m float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m, nil
}

// parallelRows splits [0, n) into contiguous chunks, one per worker, and runs
// fn on each concurrently. Small n runs inline to avoid goroutine overhead.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 16 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
