//go:build amd64 && !noasm

package microrec_test

import "microrec/internal/kernels"

// The AVX2 GEMM compiles on every amd64 !noasm build; on hosts with AVX2 it
// is also the kernels.Gemm dispatch target, so driving the dispatch pins the
// assembly path where it is live and the reference fallback elsewhere.
func init() {
	const b, in, out, stride = 4, 16, 8, 32
	x := make([]int64, b*stride)
	y := make([]int64, b*stride)
	wt := make([]int64, out*in)
	for i := range x {
		x[i] = int64(i%7 - 3)
	}
	for i := range wt {
		wt[i] = int64(i%5 - 2)
	}
	zeroallocArch = append(zeroallocArch, allocCase{
		name:   "kernels/gemm-dispatch",
		covers: []string{"internal/kernels.gemmAVX2"},
		run:    func() { kernels.Gemm(x, y, b, in, out, stride, wt) },
	})
}
