// Command microrec-vet is the repo's custom multichecker: it runs the four
// microrec-specific analyzers — lockheld, hotalloc, atomicfield,
// statsnapshot — over the packages named on the command line (default
// ./...) and exits non-zero if any invariant is violated. It is wired into
// `make vet-custom` (part of `make ci`) and the CI lint job, so the
// concurrency and zero-alloc properties the datapath depends on are
// machine-checked on every commit instead of re-proven in review.
//
// Usage:
//
//	microrec-vet [-list] [packages]
//
// Findings print in the standard file:line:col form. A deliberate
// violation is suppressed in source with //microrec:allow <analyzer> on
// the reported line.
package main

import (
	"flag"
	"fmt"
	"os"

	"microrec/internal/analysis"
	"microrec/internal/analysis/atomicfield"
	"microrec/internal/analysis/hotalloc"
	"microrec/internal/analysis/lockheld"
	"microrec/internal/analysis/statsnapshot"
)

var analyzers = []*analysis.Analyzer{
	lockheld.Analyzer,
	hotalloc.Analyzer,
	atomicfield.Analyzer,
	statsnapshot.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: microrec-vet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microrec-vet:", err)
		os.Exit(1)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microrec-vet:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		pos := d.Position(prog.Fset)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
