package main

import (
	"fmt"
	"os"

	"microrec/internal/metrics"
	"microrec/internal/model"
)

func cmdSpec(args []string) error {
	fs := newFlagSet("spec")
	modelName := fs.String("model", "small", "model: small or large")
	asJSON := fs.Bool("json", false, "emit the spec as JSON instead of a summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := specByName(*modelName)
	if err != nil {
		return err
	}
	if *asJSON {
		return model.SaveSpec(os.Stdout, spec)
	}
	c, err := model.Characterize(spec)
	if err != nil {
		return err
	}
	fmt.Printf("model:            %s\n", spec.Name)
	fmt.Printf("tables:           %d (%d lookups/item)\n", c.Tables, c.LookupsPerItem)
	fmt.Printf("feature length:   %d\n", c.FeatureLen)
	fmt.Printf("hidden layers:    %v\n", spec.Hidden)
	fmt.Printf("storage:          %s\n", metrics.FmtBytes(c.StorageBytes))
	fmt.Printf("gathered/item:    %d B (avg vector %.1f B)\n", c.EmbeddingBytesItem, c.AvgVectorBytes)
	fmt.Printf("FC work/item:     %.2f MOP (%s of parameters)\n",
		float64(c.FCOpsPerItem)/1e6, metrics.FmtBytes(c.FCParamBytes))
	fmt.Printf("table sizes:      %s .. %s\n",
		metrics.FmtBytes(c.SmallestTableBytes), metrics.FmtBytes(c.LargestTableBytes))
	fmt.Printf("dims:             %v\n", model.DimsSorted(spec))
	t := metrics.NewTable("size histogram", "class", "tables")
	for _, b := range c.SizeHistogram {
		t.AddRow(b.Label, fmt.Sprint(b.Count))
	}
	fmt.Println()
	fmt.Print(t.String())
	return nil
}
